package nvdimmc_test

import (
	"fmt"

	"nvdimmc"
)

// Example demonstrates the byte-addressable persistence path: store through
// the DAX mapping, read it back, and verify the system's core invariant
// (zero bus collisions).
func Example() {
	sys, err := nvdimmc.New(nvdimmc.DefaultConfig())
	if err != nil {
		panic(err)
	}

	msg := []byte("persistent bytes on a standard DDR4 channel")
	done := false
	sys.Store(4096, msg, func() {
		buf := make([]byte, len(msg))
		sys.Load(4096, buf, func() {
			fmt.Println(string(buf))
			done = true
		})
	})
	if err := sys.RunUntil(func() bool { return done }, nvdimmc.Milliseconds(100)); err != nil {
		panic(err)
	}
	if err := sys.CheckHealth(); err != nil {
		panic(err)
	}
	fmt.Println("no collisions")
	// Output:
	// persistent bytes on a standard DDR4 channel
	// no collisions
}

// Example_policies shows configuring the slot-replacement policy the paper
// discusses (§IV-B: the PoC ships LRC; LRU lifts TPC-H hit rates).
func Example_policies() {
	cfg := nvdimmc.DefaultConfig()
	cfg.Driver.Policy = nvdimmc.PolicyLRU
	sys, err := nvdimmc.New(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(sys.Driver.Config().Policy)
	// Output: lru
}

// Example_experiments lists the evaluation harnesses that regenerate the
// paper's tables and figures.
func Example_experiments() {
	names := nvdimmc.ExperimentNames()
	fmt.Println(len(names) >= 15)
	// Output: true
}
