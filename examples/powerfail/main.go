// Powerfail walks through the §V-C persistence story: dirty pages in the
// DRAM cache, a power failure, the battery-backed firmware flush via the
// metadata table (ignoring the tRFC rule — the host is dead), and recovery.
package main

import (
	"bytes"
	"fmt"
	"log"

	"nvdimmc"
	"nvdimmc/internal/sim"
)

func main() {
	cfg := nvdimmc.DefaultConfig()
	cfg.CacheBytes = 1 << 20
	sys, err := nvdimmc.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Dirty a handful of pages; do NOT wait for any writeback.
	records := map[int64][]byte{}
	for p := int64(0); p < 12; p++ {
		rec := []byte(fmt.Sprintf("record-%02d: committed transaction payload", p))
		records[p] = rec
		done := false
		sys.Store(p*4096, rec, func() { done = true })
		if err := sys.RunUntil(func() bool { return done }, sim.Second); err != nil {
			log.Fatal(err)
		}
	}
	st := sys.Driver.Stats()
	fmt.Printf("before failure: %d resident pages, %d explicit writebacks so far\n",
		st.ResidentPages, st.Writebacks)

	// Lights out. The iMC's ADR domain drains the WPQ into DRAM, then the
	// FPGA reads the metadata area and flushes dirty slots to Z-NAND.
	flushed, err := sys.PowerFail()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power failure: firmware flushed %d dirty pages to Z-NAND on battery\n", flushed)

	// "Reboot": verify every record against the NAND media via the FTL.
	ok := 0
	for p, want := range records {
		var got []byte
		sys.FTL.ReadPage(p, func(d []byte, err error) {
			if err != nil {
				log.Fatal(err)
			}
			got = d
		})
		sys.K.Run()
		if bytes.Equal(got[:len(want)], want) {
			ok++
		} else {
			fmt.Printf("  record %d LOST\n", p)
		}
	}
	fmt.Printf("after recovery: %d/%d records intact in persistent media\n", ok, len(records))

	// The driver can also rebuild its slot map from the metadata table.
	meta := make([]byte, sys.Layout.MetaSize)
	if err := sys.DRAM.CopyOut(sys.Layout.MetaOffset, meta); err != nil {
		log.Fatal(err)
	}
	n, err := sys.Driver.RecoverFromMetadata(meta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("driver recovery: %d mappings rebuilt from the metadata area\n", n)
}
