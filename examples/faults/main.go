// Faults walks the robustness story: a seeded fault-injection registry
// attached to every device model, the driver absorbing transient CP and
// media failures invisibly, monotonic degradation when a failure is hard
// (Degraded write-through, then ReadOnly), and the crash-consistency sweep
// that proves no acked write is ever lost to a power failure.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"nvdimmc"
	"nvdimmc/internal/experiments"
	"nvdimmc/internal/fault"
	"nvdimmc/internal/nvdc"
	"nvdimmc/internal/sim"
)

const page = 4096

func main() {
	cfg := nvdimmc.DefaultConfig()
	cfg.CacheBytes = 1 << 20
	cfg.Seed = 0x5EED      // master seed: every model RNG derives from it
	cfg.FaultSeed = 0xFA17 // attaches the registry as sys.Faults
	sys, err := nvdimmc.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Seed the Z-NAND media so loads below must cachefill through the CP
	// mailbox (unwritten blocks take the CP-free fast-fill path).
	for lpn := int64(5); lpn <= 6; lpn++ {
		data := make([]byte, page)
		for i := range data {
			data[i] = byte(0xA0 + lpn)
		}
		done := false
		sys.FTL.WritePage(lpn, data, func(err error) {
			if err != nil {
				log.Fatal(err)
			}
			done = true
		})
		mustRun(sys, &done)
	}

	// 1. Transient transport fault: the next CP ack vanishes. The driver's
	// ack deadline expires and it re-issues the command with a toggled
	// phase bit — the application just sees a slower load.
	fmt.Println("-- transient: one CP ack dropped --")
	sys.Faults.Always(fault.CPAckDrop).Times(1)
	buf := make([]byte, 64)
	done := false
	sys.LoadErr(5*page, buf, func(err error) {
		if err != nil {
			log.Fatal(err)
		}
		done = true
	})
	mustRun(sys, &done)
	fmt.Printf("load survived: data %q..., mode %v\n", buf[:4], sys.Driver.Mode())
	fmt.Printf("error counters: %v\n\n", sys.Driver.Counters())

	// 2. Hard media fault: every NAND read of lpn 6 comes back
	// uncorrectable. Retries exhaust, the slot involved is quarantined, and
	// the driver degrades to write-through.
	fmt.Println("-- hard: uncorrectable NAND reads --")
	sys.Faults.Always(fault.NANDReadBitFlip)
	var lerr error
	done = false
	sys.LoadErr(6*page, buf, func(err error) { lerr = err; done = true })
	mustRun(sys, &done)
	fmt.Printf("load failed as it must: %v (is ErrMediaRead: %v)\n",
		lerr, errors.Is(lerr, nvdc.ErrMediaRead))
	fmt.Printf("mode %v, %d slot(s) quarantined\n\n", sys.Driver.Mode(),
		len(sys.Driver.Quarantined()))
	sys.Faults.Clear(fault.NANDReadBitFlip)

	// 3. Degraded means write-through: an acked store is already on the
	// Z-NAND media, so the suspect DRAM cache never holds the only copy.
	fmt.Println("-- degraded: acked stores write through --")
	done = false
	sys.StoreErr(7*page, []byte("write-through me"), func(err error) {
		if err != nil {
			log.Fatal(err)
		}
		done = true
	})
	mustRun(sys, &done)
	sys.RunFor(sim.Millisecond) // let the posted program land
	fmt.Printf("lpn 7 on media right after the ack: %v\n", sys.FTL.IsMapped(7))
	fmt.Printf("registry: %v\n\n", sys.Faults)

	// 4. The §V-C acceptance gate: power fails at seeded mid-workload
	// instants; every acked write must be durable and untorn afterwards.
	fmt.Println("-- crash-consistency sweep (quick) --")
	res, err := experiments.CrashSweep(experiments.Options{Quick: true, Out: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Failures) > 0 {
		log.Fatalf("%d acked writes lost", len(res.Failures))
	}
}

func mustRun(sys *nvdimmc.System, done *bool) {
	if err := sys.RunUntil(func() bool { return *done }, 10*sim.Second); err != nil {
		log.Fatal(err)
	}
}
