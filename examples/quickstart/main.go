// Quickstart: assemble an NVDIMM-C system, store and load data through the
// DAX path, and observe the architecture's defining latency asymmetry —
// DRAM-speed hits vs refresh-window-quantized misses (§V-A).
package main

import (
	"fmt"
	"log"

	"nvdimmc"
	"nvdimmc/internal/sim"
)

func main() {
	sys, err := nvdimmc.New(nvdimmc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NVDIMM-C up: %d cache slots over %.0f MB of Z-NAND\n",
		sys.Layout.NumSlots, float64(sys.FTL.Capacity())/1e6)

	// Store a string; the first touch faults the page into a cache slot.
	msg := []byte("byte-addressable persistence on a standard DDR4 channel")
	wait(sys, func(done func()) { sys.Store(4096, msg, done) })

	// Read it back: the page is resident, so this is a DRAM-speed hit.
	buf := make([]byte, len(msg))
	hitLat := wait(sys, func(done func()) { sys.Load(4096, buf, done) })
	fmt.Printf("cached load:   %q in %v\n", buf, hitLat)

	// Fill the cache and touch one more page: the miss pays the CP-mailbox
	// round trips under the refresh windows (writeback + cachefill).
	for p := 2; p < sys.Layout.NumSlots+2; p++ {
		off := int64(p) * 4096
		wait(sys, func(done func()) { sys.Store(off, []byte{byte(p)}, done) })
	}
	missLat := wait(sys, func(done func()) {
		sys.Load(int64(sys.Layout.NumSlots+10)*4096, make([]byte, 64), done)
	})
	fmt.Printf("uncached load: 64 B in %v (%.1f refresh windows of 7.8 us)\n",
		missLat, float64(missLat)/float64(7800*sim.Microsecond/1000))

	st := sys.Driver.Stats()
	fmt.Printf("driver: hits=%d misses=%d evictions=%d writebacks=%d\n",
		st.Hits, st.Misses, st.Evictions, st.Writebacks)
	if err := sys.CheckHealth(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("health: no collisions, no protocol violations, detector clean")
}

// wait runs fn to completion on the simulated timeline and returns the
// elapsed simulated time.
func wait(sys *nvdimmc.System, fn func(done func())) sim.Duration {
	start := sys.K.Now()
	finished := false
	fn(func() { finished = true })
	if err := sys.RunUntil(func() bool { return finished }, 10*sim.Second); err != nil {
		log.Fatal(err)
	}
	return sys.K.Now().Sub(start)
}
