// Database runs the mini column-store IMDB (the HANA stand-in) on both the
// NVDIMM-C module and the pmem baseline, executing a scan-heavy and a
// probe-heavy TPC-H-style query on each — the Fig. 11 contrast in miniature
// — then a validated mixed-load burst on NVDIMM-C.
package main

import (
	"fmt"
	"log"

	"nvdimmc"
	"nvdimmc/internal/imdb"
	"nvdimmc/internal/pmem"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/tpch"
)

func main() {
	const dataset = 8 << 20 // 8 MB dataset over a ~1.3 MB cache

	// NVDIMM-C system scaled so the dataset exceeds the cache ~6x.
	cfg := nvdimmc.DefaultConfig()
	cfg.CacheBytes = 1 << 20
	sys, err := nvdimmc.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ndb := imdb.New(sys, sys.K, sys.FTL.Capacity(), imdb.DefaultCost())

	base, err := pmem.New(pmem.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	bdb := imdb.New(base, base.K, base.Capacity(), imdb.DefaultCost())

	fmt.Println("building the TPC-H-like dataset on both devices...")
	buildOn := func(db *imdb.DB, step func() bool) {
		done := false
		tpch.BuildDataset(db, tpch.Scale{TotalBytes: dataset}, func(err error) {
			if err != nil {
				log.Fatal(err)
			}
			done = true
		})
		for !done {
			if !step() {
				log.Fatal("build stalled")
			}
		}
	}
	buildOn(ndb, sys.K.Step)
	buildOn(bdb, base.K.Step)

	specs := tpch.Specs()
	for _, q := range []tpch.QuerySpec{specs[0], specs[19]} { // Q1, Q20
		nd := runQuery(ndb, sys.K.Step, sys.K, q, dataset)
		bd := runQuery(bdb, base.K.Step, base.K, q, dataset)
		fmt.Printf("%-4s nvdimm-c=%-12v baseline=%-12v slowdown=%.1fx\n",
			q.Name(), nd, bd, float64(nd)/float64(bd))
	}

	fmt.Println("\nmixed-load burst with per-transaction validation:")
	m, err := imdb.NewMixedLoad(ndb, 1000, 256)
	if err != nil {
		log.Fatal(err)
	}
	done := false
	m.Init(func() {
		m.Run(64, 10, func() { done = true })
	})
	if err := sys.RunUntil(func() bool { return done }, 600*sim.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d transactions, %d validation failures\n", m.Transactions, m.ValidationFailures)
	if err := sys.CheckHealth(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  health: OK")
}

func runQuery(db *imdb.DB, step func() bool, k tpch.Kernel, q tpch.QuerySpec, dataset int64) sim.Duration {
	var el sim.Duration
	done := false
	tpch.RunQuery(db, k, q, dataset, func(e sim.Duration, err error) {
		if err != nil {
			log.Fatal(err)
		}
		el, done = e, true
	})
	for !done {
		if !step() {
			log.Fatal("query stalled")
		}
	}
	return el
}
