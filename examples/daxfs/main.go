// Daxfs walks the §II-A Direct Access path end to end: mount a DAX
// filesystem on the NVDIMM-C block device, create a file, mmap it, and
// watch translations — first-touch page faults route through the driver's
// device_access (cachefill under refresh windows), later touches are
// TLB/PTE hits at DRAM speed (Fig. 6).
package main

import (
	"fmt"
	"log"

	"nvdimmc"
	"nvdimmc/internal/sim"
)

func main() {
	sys, err := nvdimmc.New(nvdimmc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fs := sys.MountDax()
	fmt.Printf("mounted: %d free 4 KB blocks\n", fs.FreePages())

	f, err := fs.Create("table.dat", 64<<10)
	if err != nil {
		log.Fatal(err)
	}
	m := f.Mmap(64)
	fmt.Printf("created %s: %d pages, mmapped with a 64-entry TLB\n", f.Name(), f.Pages())

	// Touch every page twice; measure fault vs hit cost.
	touch := func(off int64) sim.Duration {
		start := sys.K.Now()
		done := false
		m.Translate(off, true, func(phys int64, err error) {
			if err != nil {
				log.Fatal(err)
			}
			sys.IMC.Write(phys, []byte{0xDB}, func() { done = true })
		})
		if err := sys.RunUntil(func() bool { return done }, 10*sim.Second); err != nil {
			log.Fatal(err)
		}
		return sys.K.Now().Sub(start)
	}

	var firstTotal, secondTotal sim.Duration
	for p := int64(0); p < f.Pages(); p++ {
		firstTotal += touch(p * 4096)
	}
	for p := int64(0); p < f.Pages(); p++ {
		secondTotal += touch(p * 4096)
	}
	n := f.Pages()
	fmt.Printf("first touch : %v/page (page fault -> device_access; new blocks take the\n"+
		"              no-media fast path — blocks already on Z-NAND pay the CP cachefill)\n",
		sim.Duration(int64(firstTotal)/n))
	fmt.Printf("second touch: %v/page (TLB/PTE hit, DRAM speed)\n",
		sim.Duration(int64(secondTotal)/n))

	faults, pteHits, tlbHits, tlbMisses := m.Stats()
	fmt.Printf("mapping: faults=%d pte-walks=%d tlb-hits=%d tlb-misses=%d\n",
		faults, pteHits, tlbHits, tlbMisses)

	if err := fs.Remove("table.dat"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("removed: %d free blocks again (media trimmed, slots released)\n", fs.FreePages())
	if err := sys.CheckHealth(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("health: OK")
}
