// Filecopy reproduces the Fig. 7 scenario interactively: stream a file
// 1.25x the DRAM-cache size from a 520 MB/s SSD model onto the NVDIMM-C
// block device and watch the bandwidth collapse when the free slots run out.
package main

import (
	"fmt"
	"log"
	"os"

	"nvdimmc/internal/experiments"
	"nvdimmc/internal/report"
)

func main() {
	res, err := experiments.Fig7(experiments.Options{Quick: true, Out: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	report.Line(os.Stdout, "bandwidth over copy progress", res.Series.X, res.Series.Values, 10, "MB/s")
	fmt.Printf("\nfree-slot phase: %.0f MB/s (paper: 518, SSD-bound)\n", res.CachedMBps)
	fmt.Printf("exhausted phase: %.0f MB/s (paper: 68, writeback+cachefill per page)\n", res.UncachedMBps)
}
