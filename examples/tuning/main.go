// Tuning explores the architecture's central trade-off (§VII-D): shortening
// tREFI gives the NVMC more windows (more back-end bandwidth) but steals
// host bus time, and back-end media latency decides whether the Uncached
// path is storage-class (the paper's 1.85 us / 914 MB/s conclusion).
package main

import (
	"fmt"
	"log"
	"os"

	"nvdimmc/internal/experiments"
)

func main() {
	opts := experiments.Options{Quick: true, Out: os.Stdout}

	fmt.Println("--- host-side cost of faster refresh (Fig. 13) ---")
	if _, err := experiments.Fig13(opts); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n--- what the back-end media latency buys (Fig. 12) ---")
	f12, err := experiments.Fig12(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n--- window arithmetic (§V-A) ---")
	if _, err := experiments.Windows(opts); err != nil {
		log.Fatal(err)
	}

	best := f12.Rows[len(f12.Rows)-1]
	fmt.Printf("\nconclusion: with ~1.85 us media the uncached path reaches %.0f MB/s\n", best.Measured)
	fmt.Println("(the paper's bar for a balanced storage-class memory: ~914 MB/s —")
	fmt.Println(" within reach of STT-MRAM/PRAM, far beyond NAND)")
}
