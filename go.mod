module nvdimmc

go 1.22
