// Package nvdimmc is a production-quality Go reproduction of "NVDIMM-C: A
// Byte-Addressable Non-Volatile Memory Module for Compatibility with
// Standard DDR Memory Interfaces" (HPCA 2020): a DRAM-as-frontend NVDIMM in
// which an FPGA controller (NVMC) shares the standard DDR4 channel with the
// host iMC by confining its DRAM accesses to an extended refresh cycle
// (tRFC) window behind every REFRESH command it snoops off the CA bus.
//
// The package is a façade over the full simulated system in internal/:
//
//	sys, _ := nvdimmc.New(nvdimmc.DefaultConfig())
//	sys.Store(0, []byte("persistent"), nil)
//	sys.RunFor(nvdimmc.Microseconds(100))
//
// Everything the paper builds is here: the DDR4 protocol and DRAM model,
// the shared channel with collision detection, the refresh-detector RTL
// model, the Z-NAND array and FTL, the CP mailbox protocol, the nvdc driver
// with its LRC slot cache and coherence discipline, the pmem baseline, and
// harnesses that regenerate every table and figure of the evaluation
// (internal/experiments, cmd/nvdimmc-bench, bench_test.go).
package nvdimmc

import (
	"errors"
	"fmt"
	"io"

	"nvdimmc/internal/core"
	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/experiments"
	"nvdimmc/internal/nvdc"
	"nvdimmc/internal/pmem"
	"nvdimmc/internal/sim"
)

// Config parameterizes an NVDIMM-C system. It is core.Config re-exported;
// see that type for the full knob list.
type Config = core.Config

// System is a fully assembled NVDIMM-C machine (module + host).
type System = core.System

// Duration is simulated time in picoseconds.
type Duration = sim.Duration

// Convenience constructors for durations.
func Nanoseconds(n int64) Duration  { return Duration(n) * sim.Nanosecond }
func Microseconds(n int64) Duration { return Duration(n) * sim.Microsecond }
func Milliseconds(n int64) Duration { return Duration(n) * sim.Millisecond }

// Replacement policies for the DRAM cache slots.
const (
	PolicyLRC   = nvdc.PolicyLRC
	PolicyLRU   = nvdc.PolicyLRU
	PolicyClock = nvdc.PolicyClock
)

// Speed grades.
const (
	DDR4_1600 = ddr4.DDR4_1600
	DDR4_2400 = ddr4.DDR4_2400
)

// DefaultConfig returns the laptop-scale configuration preserving the PoC's
// ratios (16 MB DRAM cache : 128 MB Z-NAND standing in for 16 GB : 128 GB).
func DefaultConfig() Config { return core.DefaultConfig() }

// New assembles and boots a system.
func New(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// Baseline is the emulated-pmem comparator (/dev/pmem0 in the paper).
type Baseline = pmem.Device

// BaselineConfig mirrors Table I's baseline module.
func BaselineConfig() pmem.Config { return pmem.DefaultConfig() }

// NewBaseline builds the comparator device.
func NewBaseline(cfg pmem.Config) (*Baseline, error) { return pmem.New(cfg) }

// ExperimentOptions control the figure/table harnesses. Parallel fans the
// shardable experiments (crash, fig9, fig11, fig13) across that many
// workers with byte-identical output; Headline receives per-experiment
// headline metrics for machine-readable snapshots.
type ExperimentOptions = experiments.Options

// Experiments exposes every evaluation harness keyed by the paper's
// figure/table identifiers. Each prints its paper-vs-measured rows to
// opts.Out, reports its headline metrics through opts.Headline (when set),
// and returns an error if the run could not complete.
func Experiments(opts ExperimentOptions) map[string]func() error {
	hl := func(name string, v float64) {
		if opts.Headline != nil {
			opts.Headline(name, v)
		}
	}
	return map[string]func() error{
		"table1": func() error { experiments.Table1(opts); return nil },
		"table2": func() error { experiments.Table2(opts); return nil },
		"aging": func() error {
			res, err := experiments.Aging(opts)
			if err == nil {
				hl("windows", float64(res.WindowsSeen))
			}
			return err
		},
		"fig7": func() error {
			res, err := experiments.Fig7(opts)
			if err == nil {
				hl("cached-MBps", res.CachedMBps)
				hl("uncached-MBps", res.UncachedMBps)
			}
			return err
		},
		"fig8": func() error {
			res, err := experiments.Fig8(opts)
			if err == nil {
				hl("baseline-read-MBps", res.Get("baseline-read bandwidth"))
				hl("cached-read-MBps", res.Get("cached-read bandwidth"))
				hl("uncached-read-MBps", res.Get("uncached-read bandwidth"))
			}
			return err
		},
		"fig9": func() error {
			res, err := experiments.Fig9(opts)
			if err == nil {
				_, basePeak := res.Peak("baseline-read")
				_, cachedPeak := res.Peak("cached-read")
				hl("baseline-peak-MBps", basePeak)
				hl("cached-peak-MBps", cachedPeak)
			}
			return err
		},
		"fig10": func() error {
			res, err := experiments.Fig10(opts)
			if err == nil {
				hl("cached-128B-KIOPS", res.At("cached-read", 128).KIOPS)
				hl("cached-64K-MBps", res.At("cached-read", 65536).MBps)
			}
			return err
		},
		"fig11": func() error {
			res, err := experiments.Fig11(opts)
			if err == nil && len(res.Slowdown) > 0 {
				hl("Q1-slowdown-x", res.Slowdown[0])
				hl("Qlast-slowdown-x", res.Slowdown[len(res.Slowdown)-1])
			}
			return err
		},
		"fig12": func() error {
			res, err := experiments.Fig12(opts)
			if err == nil && len(res.Rows) > 0 {
				hl("tD1.85us-MBps", res.Rows[len(res.Rows)-1].Measured)
			}
			return err
		},
		"fig13": func() error {
			res, err := experiments.Fig13(opts)
			if err == nil && len(res.Rows) > 0 {
				hl("tREFI-MBps", res.Rows[0].Measured)
				hl("tREFI4-16T-MBps", res.Peak16T)
			}
			return err
		},
		"mixed": func() error {
			res, err := experiments.MixedLoad(opts)
			if err == nil {
				hl("transactions", float64(res.Transactions))
			}
			return err
		},
		"lru": func() error {
			res, err := experiments.LRUStudy(opts)
			if err == nil && len(res.LRU) > 0 {
				hl("LRU-first-hit-pct", 100*res.LRU[0])
				hl("LRU-last-hit-pct", 100*res.LRU[len(res.LRU)-1])
			}
			return err
		},
		"windows": func() error {
			res, err := experiments.Windows(opts)
			if err == nil {
				hl("pair-us", res.MeasuredPairUS)
			}
			return err
		},
		"ablations": func() error {
			res, err := experiments.Ablations(opts)
			if err == nil && len(res.Rows) > 4 {
				hl("PoC-MBps", res.Rows[0].Measured)
				hl("optimized-MBps", res.Rows[4].Measured)
			}
			return err
		},
		"endurance": func() error {
			res, err := experiments.Endurance(opts)
			if err == nil {
				hl("write-amp", res.WriteAmp)
			}
			return err
		},
		"frontend": func() error {
			res := experiments.FrontendAnalysis(opts)
			hl("budget-ns", res.Budget.Nanoseconds())
			return nil
		},
		"crash": func() error {
			res, err := experiments.CrashSweep(opts)
			if err == nil {
				hl("points", float64(res.Points))
				hl("acked-writes", float64(res.Acked))
				hl("flushed-pages", float64(res.Flushed))
				hl("acked-writes-lost", float64(len(res.Failures)))
			}
			if err == nil && len(res.Failures) > 0 {
				err = fmt.Errorf("crash sweep: %d acked writes lost (seed %#x)",
					len(res.Failures), res.Seed)
			}
			return err
		},
		"pool": func() error {
			res, err := experiments.Pool(opts)
			if err == nil {
				hl("1ch-4K-MBps", res.At(1, 4).MBps)
				hl("6ch-4K-MBps", res.At(6, 4).MBps)
				hl("scaling-x", res.ScalingX())
				hl("6ch-4K-p99-ns", float64(res.At(6, 4).P99.Nanoseconds()))
				// Harness-performance headlines from the idle-heavy rated
				// segment. The "~" prefix marks them advisory: wall-clock
				// derived, machine- and load-dependent, tracked in snapshots
				// but never gated by benchdiff.
				if res.IdleWallLockstepMS > 0 && res.IdleWallLookaheadMS > 0 {
					wallSecLock := res.IdleWallLockstepMS / 1000
					wallSecAhead := res.IdleWallLookaheadMS / 1000
					hl("~6ch-idle-epochs-per-sec-lockstep", float64(res.IdleEpochs)/wallSecLock)
					hl("~6ch-idle-epochs-per-sec-lookahead", float64(res.IdleEpochs)/wallSecAhead)
					hl("~6ch-idle-speedup-x", res.IdleSpeedupX())
				}
			}
			return err
		},
		"faultpool": func() error {
			res, err := experiments.FaultPool(opts)
			if err == nil {
				hl("points", float64(res.Points()))
				hl("acked-writes-lost", float64(res.AckedLostTotal()))
				hl("post-quarantine-dispatches", float64(res.PostQuarantineTotal()))
				hl("min-availability", res.MinAvailability())
				hl("failover-points", float64(res.Failovers()))
			}
			if err == nil && res.AckedLostTotal() > 0 {
				err = fmt.Errorf("faultpool: %d acked writes lost across %d points",
					res.AckedLostTotal(), res.Points())
			}
			if err == nil && res.PostQuarantineTotal() > 0 {
				err = fmt.Errorf("faultpool: %d fragments dispatched to quarantined members",
					res.PostQuarantineTotal())
			}
			return err
		},
		"overload": func() error {
			res, err := experiments.Overload(opts)
			if err == nil {
				hl("points", float64(res.Points()))
				hl("capacity-ops", res.CapacityOps)
				hl("4x-shed-goodput-ratio", res.ShedGoodputRatio())
				hl("shed", float64(res.ShedTotal()))
				hl("expired", float64(res.ExpiredTotal()))
				hl("acked-writes-lost", float64(res.AckedLostTotal()))
			}
			if err == nil && res.AckedLostTotal() > 0 {
				err = fmt.Errorf("overload: %d acked writes lost across %d points",
					res.AckedLostTotal(), res.Points())
			}
			if err == nil && res.ShedGoodputRatio() < 0.9 {
				err = fmt.Errorf("overload: 4x deadline-aware goodput %.2fx capacity, below the 0.9x graceful-degradation bound",
					res.ShedGoodputRatio())
			}
			if err == nil {
				err = res.ShedBeatsQueueing()
			}
			return err
		},
		"qos": func() error {
			res, err := experiments.QoS(opts)
			if err == nil {
				hl("points", float64(res.Points()))
				hl("capacity-ops", res.CapacityOps)
				hl("acked-writes-lost", float64(res.AckedLostTotal()))
				if on := res.Find(true, "none"); on != nil {
					hl("iso-light-violations", float64(on.LightViolations()))
					hl("iso-hot-throttled", float64(on.HotThrottled()))
					hl("iso-hot-bucket-ratio", on.HotRatio)
					hl("iso-worst-light-p99-us", float64(on.WorstLightP99().Microseconds()))
				}
				if off := res.Find(false, "none"); off != nil {
					hl("noiso-light-violations", float64(off.LightViolations()))
					hl("noiso-worst-light-p99-us", float64(off.WorstLightP99().Microseconds()))
				}
			}
			if err == nil && res.AckedLostTotal() > 0 {
				err = fmt.Errorf("qos: %d acked writes lost across %d points",
					res.AckedLostTotal(), res.Points())
			}
			if err == nil {
				if on := res.Find(true, "none"); on != nil {
					switch {
					case on.LightViolations() > 0:
						err = fmt.Errorf("qos: isolation on, %d light tenant(s) missed the p99 SLO (worst %v)",
							on.LightViolations(), on.WorstLightP99())
					case on.HotThrottled() == 0:
						err = fmt.Errorf("qos: hot tenant at %dx its bucket rate was never throttled", 4)
					case on.HotRatio < 0.75 || on.HotRatio > 1.25:
						err = fmt.Errorf("qos: hot goodput %.2fx its bucket rate, outside the 0.75-1.25 throttle-to-contract band",
							on.HotRatio)
					}
				}
			}
			if err == nil {
				if off := res.Find(false, "none"); off != nil && off.LightViolations() == 0 {
					err = fmt.Errorf("qos: isolation off, no light tenant violated its SLO — the campaign lost its control arm")
				}
			}
			return err
		},
		"numa": func() error {
			res, err := experiments.Numa(opts)
			if err == nil {
				hl("points", float64(res.Points()))
				hl("acked-writes-lost", float64(res.AckedLostTotal()))
				hl("post-evac-submissions", float64(res.PostEvacTotal()))
				hl("min-availability", res.MinAvailability())
				hl("evacuations", float64(res.Evacuations()))
			}
			if err == nil && res.AckedLostTotal() > 0 {
				err = fmt.Errorf("numa: %d acked writes lost across %d points",
					res.AckedLostTotal(), res.Points())
			}
			if err == nil && res.PostEvacTotal() > 0 {
				err = fmt.Errorf("numa: %d foreground submissions reached an evacuating socket",
					res.PostEvacTotal())
			}
			if err == nil {
				err = res.CheckLattice()
			}
			return err
		},
		"replay": func() error {
			res, err := experiments.Replay(opts)
			if err == nil {
				hl("ops", float64(res.Ops))
				hl("variants", float64(res.Points()))
				hl("divergent", float64(res.Divergent()))
				hl("retimed", float64(res.RetimedTotal()))
				hl("binary-bytes-per-op", float64(res.BinaryBytes)/float64(res.Ops))
				hl("compaction-x", res.CompactionX())
			}
			if err == nil && res.Divergent() > 0 {
				err = fmt.Errorf("replay: %d of %d variants diverged from the live run",
					res.Divergent(), res.Points())
			}
			if err == nil && res.RetimedTotal() > 0 {
				err = fmt.Errorf("replay: %d arrival clamps replaying a monotone capture", res.RetimedTotal())
			}
			if err == nil && res.CompactionX() < 2 {
				err = fmt.Errorf("replay: binary format only %.2fx smaller than text, below the 2x bound",
					res.CompactionX())
			}
			return err
		},
		"service": func() error {
			res, err := experiments.Service(opts)
			if err == nil {
				hl("points", float64(res.Points()))
				hl("clients", float64(res.Clients))
				hl("ops-total", float64(res.OpsTotal()))
				hl("violations", float64(res.ViolationTotal()))
				hl("acked-writes-lost", float64(res.AckedLostTotal()))
			}
			if err == nil && res.ViolationTotal() > 0 {
				err = fmt.Errorf("service: %d conservation violations across %d points",
					res.ViolationTotal(), res.Points())
			}
			if err == nil && res.AckedLostTotal() != 0 {
				err = fmt.Errorf("service: writes-conservation residual %d across %d points",
					res.AckedLostTotal(), res.Points())
			}
			return err
		},
		"conformance": func() error {
			res, err := experiments.Conformance(opts)
			if err == nil {
				hl("iterations", float64(res.Iterations))
				hl("ops", float64(res.OpsRun))
				hl("events-audited", float64(res.Events))
				hl("violations", float64(len(res.Failures)))
			}
			if err == nil && len(res.Failures) > 0 {
				err = fmt.Errorf("conformance: %d protocol violation(s) (seed %#x); first: %s",
					len(res.Failures), res.Seed, res.Failures[0])
			}
			return err
		},
	}
}

// ExperimentInfo pairs a harness name with a one-line description for
// listings (nvdimmc-bench -list).
type ExperimentInfo struct {
	Name string
	Desc string
}

// ExperimentList describes the harnesses in the paper's order. It is the
// single source of truth: ExperimentNames derives from it, and the
// Experiments map is checked against it by a façade test.
func ExperimentList() []ExperimentInfo {
	return []ExperimentInfo{
		{"table1", "module latency characteristics vs paper Table I"},
		{"table2", "DRAM-cache hit/miss service times vs paper Table II"},
		{"frontend", "refresh-window budget arithmetic behind the NVMC design"},
		{"aging", "modified-STREAM soak: zero inconsistencies under refresh traffic"},
		{"fig7", "single-thread cached vs uncached bandwidth"},
		{"fig8", "4KB random R/W bandwidth: baseline vs NVDC cached/uncached"},
		{"fig9", "thread-count sweep to channel saturation"},
		{"fig10", "block-size sweep 128B-64KB (KIOPS and MB/s)"},
		{"fig11", "TPC-H-style scan slowdown vs working-set spill"},
		{"mixed", "transactional mixed read/write load with persistence barriers"},
		{"lru", "slot replacement policy study: LRC vs LRU vs Clock hit rates"},
		{"fig12", "eviction-threshold (dirty-slot watermark) sweep"},
		{"fig13", "tREFI register sweep: refresh cadence vs bandwidth"},
		{"windows", "measured REFRESH-to-REFRESH window pairing vs tRFC budget"},
		{"ablations", "feature ablations from PoC to optimized configuration"},
		{"endurance", "write amplification and wear spread on the Z-NAND media"},
		{"crash", "power-fail sweep: no acked write lost at any crash instant"},
		{"conformance", "randomized DDR4 protocol conformance fuzzing (auditor-checked)"},
		{"pool", "socket scaling: 1-6 interleaved channels under open-loop multi-tenant load"},
		{"faultpool", "socket-scale fault campaign: quarantine, spare failover, rebuild, zero acked-write loss"},
		{"overload", "saturation campaign: deadlines, typed timeouts and admission shedding from 0.5x to 4x capacity"},
		{"qos", "multi-tenant noisy-neighbor campaign: token buckets, DRR dispatch and per-tenant SLO verdicts, isolation on vs off"},
		{"numa", "multi-socket fabric fault campaign: socket kill, slow socket and interconnect degrade with evacuation, migration and cross-socket failover"},
		{"replay", "trace-replay determinism: captured overload run reproduced byte-identically across formats, worker counts and scheduler modes"},
		{"service", "network-service conservation: concurrent HTTP clients per admission policy, client ledger reconciled against the drain audit"},
	}
}

// ExperimentNames lists the harnesses in the paper's order.
func ExperimentNames() []string {
	list := ExperimentList()
	names := make([]string, len(list))
	for i, e := range list {
		names[i] = e.Name
	}
	return names
}

// RunAll executes every harness in order, writing to out. A failing
// experiment no longer aborts the rest: every harness runs, and the joined
// per-experiment errors come back together (nil if all passed).
func RunAll(out io.Writer, quick bool) error {
	opts := ExperimentOptions{Quick: quick, Out: out}
	m := Experiments(opts)
	var errs []error
	for _, name := range ExperimentNames() {
		if err := m[name](); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
		}
	}
	return errors.Join(errs...)
}
