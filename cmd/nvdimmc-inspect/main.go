// Command nvdimmc-inspect builds an NVDIMM-C system, optionally applies a
// small workload, and dumps the internal state a bring-up engineer would
// want: region layout, slot-cache occupancy, FTL mapping/wear, NVMC window
// statistics and refresh-detector accuracy counters.
package main

import (
	"flag"
	"fmt"
	"os"

	"nvdimmc"
	"nvdimmc/internal/core"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/fio"
)

func main() {
	warm := flag.Int("warm", 2000, "warmup ops to apply before dumping state")
	traceN := flag.Int("trace", 0, "dump the last N channel/NVMC trace events")
	flag.Parse()

	cfg := nvdimmc.DefaultConfig()
	if *traceN > 0 {
		cfg.TraceCapacity = *traceN * 4
	}
	s, err := nvdimmc.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvdimmc-inspect:", err)
		os.Exit(1)
	}
	if *warm > 0 {
		tgt := s.NewFioTarget()
		if _, err := fio.Run(tgt, fio.Job{
			Pattern: fio.RandWrite, BlockSize: core.PageSize, NumJobs: 2,
			FileSize: tgt.Capacity() / 4, OpsPerThread: *warm / 2,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "nvdimmc-inspect: warmup:", err)
			os.Exit(1)
		}
	}

	fmt.Println("# NVDIMM-C module state")
	fmt.Printf("simulated time: %v\n\n", sim.Duration(s.K.Now()))

	l := s.Layout
	fmt.Println("## Reserved region layout (Fig. 5)")
	fmt.Printf("  CP area:   [%#x, %#x)\n", l.CPOffset, l.CPOffset+l.CPSize)
	fmt.Printf("  metadata:  [%#x, %#x)  (%d KB)\n", l.MetaOffset, l.MetaOffset+l.MetaSize, l.MetaSize>>10)
	fmt.Printf("  slots:     [%#x, ...)  %d x 4 KB (%.1f MB)\n\n", l.SlotsOffset, l.NumSlots, float64(l.NumSlots)*4096/1e6)

	d := s.Driver.Stats()
	fmt.Println("## nvdc driver")
	fmt.Printf("  resident=%d free=%d hits=%d misses=%d evictions=%d\n",
		d.ResidentPages, d.FreeSlots, d.Hits, d.Misses, d.Evictions)
	fmt.Printf("  writebacks=%d cachefills=%d fastfills=%d combined=%d ack-polls=%d\n\n",
		d.Writebacks, d.Cachefills, d.FastFills, d.CombinedCmds, d.AckPolls)

	n := s.NVMC.Stats()
	fmt.Println("## NVMC (FPGA)")
	fmt.Printf("  windows seen=%d used=%d (%.1f%% utilized) polls=%d\n",
		n.WindowsSeen, n.WindowsUsed, 100*float64(n.WindowsUsed)/float64(max64(n.WindowsSeen, 1)), n.Polls)
	fmt.Printf("  cachefills=%d writebacks=%d bytes to/from DRAM: %d/%d\n",
		n.Cachefills, n.Writebacks, n.BytesToDRAM, n.BytesFromDRAM)
	fmt.Printf("  windows per command: %.2f (PoC: ~4.4 per op half)\n\n", n.WindowsPerCmd)

	det := s.Detector.Stats()
	fmt.Println("## Refresh detector")
	fmt.Printf("  samples=%d detections=%d true+=%d false+=%d missed=%d\n\n",
		det.Samples, det.Detections, det.TruePositives, det.FalsePositives, det.MissedRefresh)

	hw, gw, gc, bad := s.FTL.Stats()
	fmt.Println("## FTL / Z-NAND")
	fmt.Printf("  host writes=%d gc writes=%d gc runs=%d grown bad=%d WA=%.3f\n",
		hw, gw, gc, bad, s.FTL.WriteAmplification())
	fmt.Printf("  free blocks=%d max wear=%d total erases=%d\n\n",
		s.FTL.FreeBlocks(), s.NAND.MaxWear(), s.NAND.TotalErases())

	fmt.Println("## Channel")
	hc, nc, hb, nb := s.Channel.Stats()
	fmt.Printf("  host cmds=%d nvmc cmds=%d host bytes=%d nvmc bytes=%d\n", hc, nc, hb, nb)
	fmt.Printf("  collisions=%d dram violations=%d\n", s.Channel.CollisionCount(), s.DRAM.ViolationCount())
	if err := s.CheckHealth(); err != nil {
		fmt.Printf("  HEALTH: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("  health: OK")

	if *traceN > 0 && s.Trace != nil {
		fmt.Printf("\n## Last %d trace events\n", *traceN)
		s.Trace.Dump(os.Stdout, *traceN)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
