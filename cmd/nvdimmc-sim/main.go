// Command nvdimmc-sim runs one fio-style job against the simulated NVDIMM-C
// module or the pmem baseline and prints the result, exposing the same knobs
// the paper sweeps.
//
// Usage:
//
//	nvdimmc-sim -target nvdc -rw randread -bs 4096 -numjobs 1 -ops 1000 [-uncached]
package main

import (
	"flag"
	"fmt"
	"os"

	"nvdimmc"
	"nvdimmc/internal/core"
	"nvdimmc/internal/workload/fio"
)

func main() {
	target := flag.String("target", "nvdc", "device: nvdc | pmem")
	rw := flag.String("rw", "randread", "pattern: read | write | randread | randwrite")
	bs := flag.Int("bs", 4096, "block size in bytes")
	jobs := flag.Int("numjobs", 1, "thread count")
	ops := flag.Int("ops", 1000, "operations per thread")
	uncached := flag.Bool("uncached", false, "nvdc: force misses (footprint >> cache, media prefilled)")
	policy := flag.String("policy", "lrc", "nvdc slot replacement: lrc | lru | clock")
	audit := flag.Bool("audit", true, "nvdc: run the protocol-invariant auditor on the trace stream")
	flag.Parse()

	var pat fio.Pattern
	switch *rw {
	case "read":
		pat = fio.SeqRead
	case "write":
		pat = fio.SeqWrite
	case "randread":
		pat = fio.RandRead
	case "randwrite":
		pat = fio.RandWrite
	default:
		fmt.Fprintf(os.Stderr, "nvdimmc-sim: unknown pattern %q\n", *rw)
		os.Exit(2)
	}

	var tgt fio.Target
	var sys *core.System
	switch *target {
	case "pmem":
		d, err := nvdimmc.NewBaseline(nvdimmc.BaselineConfig())
		die(err)
		tgt = d
	case "nvdc":
		cfg := nvdimmc.DefaultConfig()
		switch *policy {
		case "lru":
			cfg.Driver.Policy = nvdimmc.PolicyLRU
		case "clock":
			cfg.Driver.Policy = nvdimmc.PolicyClock
		}
		if *uncached {
			cfg.NAND.BlocksPerDie = 512
		}
		cfg.Audit = *audit
		s, err := nvdimmc.New(cfg)
		die(err)
		sys = s
		ft := s.NewFioTarget()
		if *uncached {
			die(prefill(s))
			ft.SetWalkFootprint(120 << 30)
		} else {
			pages := s.Layout.NumSlots * 9 / 10
			die(fio.Prefill(ft, int64(pages)*core.PageSize, core.PageSize))
			ft.SetWalkFootprint(15 << 30)
		}
		tgt = ft
	default:
		fmt.Fprintf(os.Stderr, "nvdimmc-sim: unknown target %q\n", *target)
		os.Exit(2)
	}

	job := fio.Job{
		Pattern: pat, BlockSize: *bs, NumJobs: *jobs,
		OpsPerThread: *ops, WarmupOps: *ops / 10, Align: 4096,
	}
	if *target == "nvdc" && !*uncached {
		job.FileSize = int64(sys.Layout.NumSlots*9/10) * core.PageSize
	}
	res, err := fio.Run(tgt, job)
	die(err)
	fmt.Println(res)
	fmt.Printf("latency: p50=%v p95=%v p99=%v p999=%v max=%v\n",
		res.Latency.Percentile(50), res.Latency.Percentile(95),
		res.Latency.Percentile(99), res.Latency.Percentile(99.9),
		res.Latency.Max())
	if sys != nil {
		st := sys.Driver.Stats()
		fmt.Printf("driver: hits=%d misses=%d evictions=%d writebacks=%d cachefills=%d fastfills=%d\n",
			st.Hits, st.Misses, st.Evictions, st.Writebacks, st.Cachefills, st.FastFills)
		nv := sys.NVMC.Stats()
		fmt.Printf("nvmc: windows=%d used=%d polls=%d windows/cmd=%.1f\n",
			nv.WindowsSeen, nv.WindowsUsed, nv.Polls, nv.WindowsPerCmd)
		if sys.Auditor != nil {
			fmt.Printf("audit: events=%d violations=%d\n",
				sys.Auditor.Events(), sys.Auditor.ViolationCount())
		}
		die(sys.CheckHealth())
	}
}

// prefill writes every logical NAND page (zero data, deduplicated by the
// NAND model) so uncached runs read real media.
func prefill(s *core.System) error {
	zero := make([]byte, core.PageSize)
	n := s.FTL.LogicalPages()
	pending := 0
	for p := int64(0); p < n; p++ {
		pending++
		s.FTL.WritePage(p, zero, func(error) { pending-- })
		if pending >= 512 {
			if err := s.RunUntil(func() bool { return pending < 64 }, nvdimmc.Milliseconds(30000)); err != nil {
				return err
			}
		}
	}
	return s.RunUntil(func() bool { return pending == 0 }, nvdimmc.Milliseconds(30000))
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvdimmc-sim:", err)
		os.Exit(1)
	}
}
