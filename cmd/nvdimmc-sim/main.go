// Command nvdimmc-sim runs one fio-style job against the simulated NVDIMM-C
// module or the pmem baseline and prints the result, exposing the same knobs
// the paper sweeps.
//
// Usage:
//
//	nvdimmc-sim -target nvdc -rw randread -bs 4096 -numjobs 1 -ops 1000 [-uncached]
//	nvdimmc-sim -channels 6 -dimms 2 -interleave 4096 -rate 2e6 -rw randread -ops 3000
//
// Passing -channels or -dimms above 1 switches to the pooled socket: N
// independent NVDIMM-C modules behind an interleaved decoder and an
// open-loop front-end scheduler (see internal/pool). -rate sets the
// open-loop arrival rate in ops per simulated second (0 = saturating).
// -spares adds hot-spare modules, and -faults arms seeded fault schedules
// on individual members:
//
//	nvdimmc-sim -channels 3 -spares 1 -faults 0:program:1 -rw randwrite -ops 500
//	nvdimmc-sim -channels 2 -faults "0:mediaread:5,1:dietimeout:0" -ops 900
//
// The pooled front-end's overload controls are exposed directly: -admission
// picks the shedding policy (block | shed-newest | shed-oldest |
// deadline-aware), -deadline stamps every request with a completion budget
// in microseconds, and -pendingcap bounds the per-channel admission-held
// backlog. Any of them switches to pooled mode:
//
//	nvdimmc-sim -channels 3 -rate 2e6 -admission deadline-aware -deadline 2000 -ops 3000
//
// -qos replaces the single open-loop tenant with a multi-tenant mix carrying
// per-tenant QoS contracts. Each comma-separated entry is one tenant,
// dist:weight:qosweight:limit:burst:slo_us — arrival distribution (zipf |
// uni), relative arrival weight, DRR service weight, token-bucket rate in
// ops/sec (0 = unpoliced), bucket burst, and p99 SLO in microseconds (0 =
// untracked). -isolation arms enforcement (buckets + deficit-round-robin
// dispatch); off, the contracts are tracked but not enforced. The run ends
// with a per-tenant table:
//
//	nvdimmc-sim -channels 3 -rate 5e5 -qos "zipf:8:1:40000:32:0,uni:1:1:0:0:1500" -ops 3000
//
// -sockets above 1 composes N pooled sockets into the multi-socket NUMA
// fabric (see internal/numa): one flat request plane, a METICULOUS-style
// interconnect (-xlat one-way nanoseconds, -xbw GB/s per directed link),
// socket-level health with evacuation and cross-socket failover, and an
// end-of-run socket state table. -sfaults schedules socket:kind:onset
// faults — kill (persistent program failures at the onset'th site
// occurrence: the socket evacuates, chunks re-home, resident pages
// migrate), slow (probabilistic die timeouts: latency tails only) and link
// (the socket's interconnect links degrade at fabric epoch onset):
//
//	nvdimmc-sim -sockets 3 -channels 2 -rate 1.5e6 -rw randwrite -ops 800 -sfaults 1:kill:1
//	nvdimmc-sim -sockets 2 -xlat 900 -xbw 4 -rate 1e6 -ops 500 -sfaults 0:link:8
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"nvdimmc"
	"nvdimmc/internal/core"
	"nvdimmc/internal/fault"
	"nvdimmc/internal/pool"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/fio"
	"nvdimmc/internal/workload/openloop"
)

func main() {
	target := flag.String("target", "nvdc", "device: nvdc | pmem")
	rw := flag.String("rw", "randread", "pattern: read | write | randread | randwrite")
	bs := flag.Int("bs", 4096, "block size in bytes")
	jobs := flag.Int("numjobs", 1, "thread count")
	ops := flag.Int("ops", 1000, "operations per thread")
	uncached := flag.Bool("uncached", false, "nvdc: force misses (footprint >> cache, media prefilled)")
	policy := flag.String("policy", "lrc", "nvdc slot replacement: lrc | lru | clock")
	audit := flag.Bool("audit", true, "nvdc: run the protocol-invariant auditor on the trace stream")
	channels := flag.Int("channels", 1, "pooled socket: memory channel count (>1 enables the interleaved pool)")
	dimms := flag.Int("dimms", 1, "pooled socket: DIMMs per channel")
	interleave := flag.Int64("interleave", 4096, "pooled socket: interleave granularity in bytes (e.g. 4096, 2097152)")
	rate := flag.Float64("rate", 0, "pooled socket: open-loop arrival rate in ops per simulated second (0 = saturating)")
	spares := flag.Int("spares", 0, "pooled socket: hot-spare modules for quarantine failover")
	faults := flag.String("faults", "", "pooled socket: comma-separated member:kind:nth fault schedules (kind: program | mediaread | dietimeout | ackdrop; nth = site occurrence the schedule starts at, 0 = 1)")
	admission := flag.String("admission", "block", "pooled socket: admission policy: block | shed-newest | shed-oldest | deadline-aware")
	deadline := flag.Float64("deadline", 0, "pooled socket: per-request completion budget in microseconds (0 = none)")
	pendingCap := flag.Int("pendingcap", 0, "pooled socket: per-channel admission-held backlog cap in fragments (0 = default)")
	qos := flag.String("qos", "", "pooled socket: comma-separated dist:weight:qosweight:limit:burst:slo_us tenant contracts (dist: zipf | uni)")
	isolation := flag.Bool("isolation", true, "pooled socket: with -qos, enforce the contracts (token buckets + DRR dispatch) rather than only tracking them")
	sockets := flag.Int("sockets", 1, "NUMA fabric: socket count (>1 composes per-socket pools behind one request plane)")
	xlat := flag.Float64("xlat", 400, "NUMA fabric: cross-socket one-way link latency in nanoseconds")
	xbw := flag.Float64("xbw", 8, "NUMA fabric: per-directed-link interconnect bandwidth in GB/s")
	sfaults := flag.String("sfaults", "", "NUMA fabric: comma-separated socket:kind:onset schedules (kind: kill | slow | link)")
	flag.Parse()

	if *sockets > 1 {
		runFabric(fabricOpts{
			sockets: *sockets, channels: *channels, dimms: *dimms,
			interleave: *interleave, rate: *rate, rw: *rw, bs: *bs, ops: *ops,
			spares: *spares, xlatNS: *xlat, xbwGBps: *xbw, sfaults: *sfaults,
		})
		return
	}

	if *channels > 1 || *dimms > 1 || *spares > 0 || *faults != "" ||
		*admission != "block" || *deadline > 0 || *pendingCap > 0 || *qos != "" {
		runPool(poolOpts{
			channels: *channels, dimms: *dimms, interleave: *interleave,
			rate: *rate, rw: *rw, bs: *bs, ops: *ops,
			spares: *spares, faults: *faults,
			admission: *admission, deadlineUS: *deadline, pendingCap: *pendingCap,
			qos: *qos, isolation: *isolation,
		})
		return
	}

	var pat fio.Pattern
	switch *rw {
	case "read":
		pat = fio.SeqRead
	case "write":
		pat = fio.SeqWrite
	case "randread":
		pat = fio.RandRead
	case "randwrite":
		pat = fio.RandWrite
	default:
		fmt.Fprintf(os.Stderr, "nvdimmc-sim: unknown pattern %q\n", *rw)
		os.Exit(2)
	}

	var tgt fio.Target
	var sys *core.System
	switch *target {
	case "pmem":
		d, err := nvdimmc.NewBaseline(nvdimmc.BaselineConfig())
		die(err)
		tgt = d
	case "nvdc":
		cfg := nvdimmc.DefaultConfig()
		switch *policy {
		case "lru":
			cfg.Driver.Policy = nvdimmc.PolicyLRU
		case "clock":
			cfg.Driver.Policy = nvdimmc.PolicyClock
		}
		if *uncached {
			cfg.NAND.BlocksPerDie = 512
		}
		cfg.Audit = *audit
		s, err := nvdimmc.New(cfg)
		die(err)
		sys = s
		ft := s.NewFioTarget()
		if *uncached {
			die(prefill(s))
			ft.SetWalkFootprint(120 << 30)
		} else {
			pages := s.Layout.NumSlots * 9 / 10
			die(fio.Prefill(ft, int64(pages)*core.PageSize, core.PageSize))
			ft.SetWalkFootprint(15 << 30)
		}
		tgt = ft
	default:
		fmt.Fprintf(os.Stderr, "nvdimmc-sim: unknown target %q\n", *target)
		os.Exit(2)
	}

	job := fio.Job{
		Pattern: pat, BlockSize: *bs, NumJobs: *jobs,
		OpsPerThread: *ops, WarmupOps: *ops / 10, Align: 4096,
	}
	if *target == "nvdc" && !*uncached {
		job.FileSize = int64(sys.Layout.NumSlots*9/10) * core.PageSize
	}
	res, err := fio.Run(tgt, job)
	die(err)
	fmt.Println(res)
	fmt.Printf("latency: p50=%v p95=%v p99=%v p999=%v max=%v\n",
		res.Latency.Percentile(50), res.Latency.Percentile(95),
		res.Latency.Percentile(99), res.Latency.Percentile(99.9),
		res.Latency.Max())
	if sys != nil {
		st := sys.Driver.Stats()
		fmt.Printf("driver: hits=%d misses=%d evictions=%d writebacks=%d cachefills=%d fastfills=%d\n",
			st.Hits, st.Misses, st.Evictions, st.Writebacks, st.Cachefills, st.FastFills)
		nv := sys.NVMC.Stats()
		fmt.Printf("nvmc: windows=%d used=%d polls=%d windows/cmd=%.1f\n",
			nv.WindowsSeen, nv.WindowsUsed, nv.Polls, nv.WindowsPerCmd)
		if sys.Auditor != nil {
			fmt.Printf("audit: events=%d violations=%d\n",
				sys.Auditor.Events(), sys.Auditor.ViolationCount())
		}
		die(sys.CheckHealth())
	}
}

// faultSpec is one parsed -faults entry: arm <kind> on member <member>
// starting at the site's <nth> consultation.
type faultSpec struct {
	member int
	kind   string
	nth    uint64
}

// parseFaults parses the -faults flag: "member:kind:nth[,member:kind:nth...]".
func parseFaults(spec string) []faultSpec {
	var out []faultSpec
	for _, part := range strings.Split(spec, ",") {
		f := strings.Split(strings.TrimSpace(part), ":")
		if len(f) != 3 {
			fmt.Fprintf(os.Stderr, "nvdimmc-sim: bad -faults entry %q (want member:kind:nth)\n", part)
			os.Exit(2)
		}
		member, err1 := strconv.Atoi(f[0])
		nth, err2 := strconv.ParseUint(f[2], 10, 64)
		if err1 != nil || err2 != nil || member < 0 {
			fmt.Fprintf(os.Stderr, "nvdimmc-sim: bad -faults entry %q: member and nth must be non-negative integers\n", part)
			os.Exit(2)
		}
		if nth == 0 {
			nth = 1
		}
		switch f[1] {
		case "program", "mediaread", "dietimeout", "ackdrop":
		default:
			fmt.Fprintf(os.Stderr, "nvdimmc-sim: unknown fault kind %q (want program | mediaread | dietimeout | ackdrop)\n", f[1])
			os.Exit(2)
		}
		out = append(out, faultSpec{member: member, kind: f[1], nth: nth})
	}
	return out
}

// armSpecs arms the parsed fault schedules on one member's registry.
func armSpecs(specs []faultSpec, member int, g *fault.Registry) {
	for _, sp := range specs {
		if sp.member != member {
			continue
		}
		switch sp.kind {
		case "program":
			g.OnOccurrence(fault.NANDProgramFail, sp.nth).Times(1 << 30)
		case "mediaread":
			g.OnOccurrence(fault.NANDReadBitFlip, sp.nth).Times(300)
		case "dietimeout":
			g.Prob(fault.NANDDieTimeout, 0.25).Param(400)
		case "ackdrop":
			g.OnOccurrence(fault.CPAckDrop, sp.nth).Times(12)
		}
	}
}

// poolOpts carries the pooled-mode CLI knobs into runPool.
type poolOpts struct {
	channels, dimms int
	interleave      int64
	rate            float64
	rw              string
	bs, ops         int
	spares          int
	faults          string
	admission       string
	deadlineUS      float64
	pendingCap      int
	qos             string
	isolation       bool
}

// parseQoS parses the -qos flag: one tenant per comma-separated
// dist:weight:qosweight:limit:burst:slo_us entry. Footprints are assigned by
// the caller (an even split of the pool footprint).
func parseQoS(spec string, readPct, bs int) []openloop.Tenant {
	var out []openloop.Tenant
	for i, part := range strings.Split(spec, ",") {
		f := strings.Split(strings.TrimSpace(part), ":")
		if len(f) != 6 {
			fmt.Fprintf(os.Stderr, "nvdimmc-sim: bad -qos entry %q (want dist:weight:qosweight:limit:burst:slo_us)\n", part)
			os.Exit(2)
		}
		var dist openloop.Dist
		switch f[0] {
		case "zipf":
			dist = openloop.Zipfian
		case "uni":
			dist = openloop.Uniform
		default:
			fmt.Fprintf(os.Stderr, "nvdimmc-sim: unknown -qos distribution %q (want zipf | uni)\n", f[0])
			os.Exit(2)
		}
		weight, err1 := strconv.ParseFloat(f[1], 64)
		qosWeight, err2 := strconv.ParseFloat(f[2], 64)
		limit, err3 := strconv.ParseFloat(f[3], 64)
		burst, err4 := strconv.Atoi(f[4])
		sloUS, err5 := strconv.ParseFloat(f[5], 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
			fmt.Fprintf(os.Stderr, "nvdimmc-sim: bad -qos entry %q: numeric fields required\n", part)
			os.Exit(2)
		}
		out = append(out, openloop.Tenant{
			Name: fmt.Sprintf("t%d", i), Dist: dist, Weight: weight, ReadPct: readPct,
			BlockSize: bs, QoSWeight: qosWeight, LimitPerSec: limit, Burst: burst,
			SLOP99: sim.Duration(sloUS * float64(sim.Microsecond)),
		})
	}
	return out
}

// runPool drives the interleaved multi-channel pool with a single-tenant
// open-loop stream and prints the pooled and per-channel stats. With -spares
// or -faults it also prints the end-of-run member state table.
func runPool(o poolOpts) {
	channels, dimms, interleave := o.channels, o.dimms, o.interleave
	rate, rw, bs, ops, spares, faults := o.rate, o.rw, o.bs, o.ops, o.spares, o.faults
	readPct := 0 // openloop default: read-only
	switch rw {
	case "randread":
	case "randwrite":
		readPct = -1
	default:
		fmt.Fprintf(os.Stderr, "nvdimmc-sim: pooled mode supports -rw randread|randwrite, not %q\n", rw)
		os.Exit(2)
	}
	specs := []faultSpec(nil)
	member := nvdimmc.DefaultConfig()
	walk := int64(15 << 30)
	if faults != "" {
		specs = parseFaults(faults)
		// Fault sites live on NAND and the CP transport, which a paper-scale
		// member at a cache-resident footprint never touches; shrink the
		// module and run near capacity so misses map pages onto media.
		member.CacheBytes = 1 << 20
		member.NAND.BlocksPerDie = 32
		member.NAND.PagesPerBlock = 16
		// Surface NAND program failures to the driver instead of letting the
		// FTL absorb them, and drop the auditor: it does not model deferred
		// program acks under pipelined load.
		member.NVMC.AckAfterProgram = true
		member.Audit = false
		walk = 0
	}
	policy, err := pool.ParseAdmissionPolicy(o.admission)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvdimmc-sim:", err)
		os.Exit(2)
	}
	var qosTenants []openloop.Tenant
	if o.qos != "" {
		qosTenants = parseQoS(o.qos, readPct, bs)
	}
	cfg := pool.Config{
		Channels:        channels,
		DIMMsPerChannel: dimms,
		Interleave:      interleave,
		Member:          member,
		Workers:         runtime.GOMAXPROCS(0),
		Seed:            7,
		PrefillPages:    -1,
		WalkFootprint:   walk,
		Spares:          spares,
		Admission:       policy,
		PendingCap:      o.pendingCap,
		QoS:             pool.QoSFromTenants(qosTenants, o.isolation && o.qos != ""),
	}
	if specs != nil {
		cfg.ArmFaults = func(m int, g *fault.Registry) { armSpecs(specs, m, g) }
	}
	p, err := pool.New(cfg)
	die(err)
	foot := p.CachedFootprint()
	if faults != "" {
		foot = p.Capacity() - p.Capacity()%interleave
	}
	tenants := []openloop.Tenant{
		{Name: "cli", Dist: openloop.Uniform, ReadPct: readPct,
			BlockSize: bs, Footprint: foot},
	}
	if qosTenants != nil {
		// Even page-aligned footprint split across the -qos tenants.
		per := (foot / int64(len(qosTenants))) &^ 4095
		for i := range qosTenants {
			qosTenants[i].Footprint = per
			qosTenants[i].Offset = int64(i) * per
		}
		tenants = qosTenants
	}
	gen, err := openloop.New(openloop.Config{
		Seed:       7,
		RatePerSec: rate,
		Deadline:   sim.Duration(o.deadlineUS * float64(sim.Microsecond)),
		Tenants:    tenants,
	})
	die(err)
	die(p.RunOpenLoop(gen, ops))
	s := p.Stats()
	fmt.Printf("pool: %d channels x %d DIMMs (+%d spare), interleave %d B, capacity %d MB, admission %v\n",
		channels, dimms, spares, interleave, p.Capacity()>>20, policy)
	fmt.Printf("requests=%d bw=%.0f MB/s epochs=%d held-peak=%d shed=%d expired=%d late=%d\n",
		s.Completed, s.Meter.BandwidthMBps(), s.Epochs, s.HeldPeak,
		s.Shed, s.Expired, s.CompletedLate)
	fmt.Printf("latency: p50=%v p95=%v p99=%v p999=%v max=%v\n",
		s.Lat.Percentile(50), s.Lat.Percentile(95),
		s.Lat.Percentile(99), s.Lat.Percentile(99.9), s.Lat.Max())
	for i, ch := range s.PerChannel {
		fmt.Printf("ch%d: reqs=%d bytes=%d p99=%v heldHW=%d queueHW=%d svc-ewma=%v breaker=%s\n",
			i, ch.Lat.Count(), ch.Meter.Bytes(), ch.Lat.Percentile(99),
			ch.HeldHW, ch.QueueHW, ch.ServiceEWMA, ch.Breaker)
	}
	if len(s.PerTenant) > 0 {
		fmt.Printf("qos: isolation=%v throttled=%d\n", o.isolation, s.Throttled)
		for _, ts := range s.PerTenant {
			slo, verdict := "-", "-"
			if ts.SLOP99 > 0 {
				slo = fmt.Sprint(ts.SLOP99)
				if ts.SLOViolated() {
					verdict = "VIOLATED"
				} else {
					verdict = "met"
				}
			}
			fmt.Printf("  %-4s w=%g bucket=%g/s burst=%d done=%d thr=%d shed=%d expired=%d failed=%d p99=%v p999=%v slo=%s %s\n",
				ts.Name, ts.Weight, ts.RatePerSec, ts.Burst, ts.Completed, ts.Throttled,
				ts.Shed, ts.Expired, ts.Failed, ts.Lat.Percentile(99), ts.Lat.Percentile(99.9),
				slo, verdict)
		}
	}
	if spares > 0 || faults != "" {
		fmt.Printf("faults: failed=%d retries=%d trips=%d suspects=%d quarantined=%d evacuated=%d spares-used=%d rebuild-pages=%d post-quarantine=%d\n",
			s.Failed, s.Ctr.Get("frags-retried"), s.Ctr.Get("breaker-trip"),
			s.Ctr.Get("member-suspect"), s.Quarantined, s.Evacuated,
			s.SparesUsed, s.Ctr.Get("rebuild-pages"), s.PostQuarantineDispatches)
		fmt.Printf("writes: in=%d acked=%d failed=%d lost=%d\n",
			s.WritesIn, s.WritesAcked, s.WritesFailed,
			s.WritesIn-s.WritesAcked-s.WritesFailed)
		fmt.Println("members:")
		for i, m := range s.PerMember {
			// InService/Logical are only tracked for spares that took over a
			// position; a data member serves its own logical slot until it is
			// quarantined or evacuated.
			role, svc := "data", "out-of-service"
			if m.Spare {
				role = "spare"
				if m.InService {
					svc = fmt.Sprintf("serving ch%d", m.Logical)
				} else {
					svc = "standby"
				}
			} else if m.State == pool.StateUp || m.State == pool.StateSuspect {
				svc = fmt.Sprintf("serving ch%d", i)
			}
			reason := ""
			if m.Reason != "" {
				reason = "  reason=" + m.Reason
			}
			fmt.Printf("  m%d %-5s %-11v mode=%-9v derr=%-4d ferr=%-3d %s%s\n",
				i, role, m.State, m.Mode, m.DriverErrors, m.FragErrors, svc, reason)
		}
	}
	die(p.CheckHealth())
	fmt.Println("health ok")
}

// prefill writes every logical NAND page (zero data, deduplicated by the
// NAND model) so uncached runs read real media.
func prefill(s *core.System) error {
	zero := make([]byte, core.PageSize)
	n := s.FTL.LogicalPages()
	pending := 0
	for p := int64(0); p < n; p++ {
		pending++
		s.FTL.WritePage(p, zero, func(error) { pending-- })
		if pending >= 512 {
			if err := s.RunUntil(func() bool { return pending < 64 }, nvdimmc.Milliseconds(30000)); err != nil {
				return err
			}
		}
	}
	return s.RunUntil(func() bool { return pending == 0 }, nvdimmc.Milliseconds(30000))
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvdimmc-sim:", err)
		os.Exit(1)
	}
}
