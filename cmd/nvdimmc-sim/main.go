// Command nvdimmc-sim runs one fio-style job against the simulated NVDIMM-C
// module or the pmem baseline and prints the result, exposing the same knobs
// the paper sweeps.
//
// Usage:
//
//	nvdimmc-sim -target nvdc -rw randread -bs 4096 -numjobs 1 -ops 1000 [-uncached]
//	nvdimmc-sim -channels 6 -dimms 2 -interleave 4096 -rate 2e6 -rw randread -ops 3000
//
// Passing -channels or -dimms above 1 switches to the pooled socket: N
// independent NVDIMM-C modules behind an interleaved decoder and an
// open-loop front-end scheduler (see internal/pool). -rate sets the
// open-loop arrival rate in ops per simulated second (0 = saturating).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"nvdimmc"
	"nvdimmc/internal/core"
	"nvdimmc/internal/pool"
	"nvdimmc/internal/workload/fio"
	"nvdimmc/internal/workload/openloop"
)

func main() {
	target := flag.String("target", "nvdc", "device: nvdc | pmem")
	rw := flag.String("rw", "randread", "pattern: read | write | randread | randwrite")
	bs := flag.Int("bs", 4096, "block size in bytes")
	jobs := flag.Int("numjobs", 1, "thread count")
	ops := flag.Int("ops", 1000, "operations per thread")
	uncached := flag.Bool("uncached", false, "nvdc: force misses (footprint >> cache, media prefilled)")
	policy := flag.String("policy", "lrc", "nvdc slot replacement: lrc | lru | clock")
	audit := flag.Bool("audit", true, "nvdc: run the protocol-invariant auditor on the trace stream")
	channels := flag.Int("channels", 1, "pooled socket: memory channel count (>1 enables the interleaved pool)")
	dimms := flag.Int("dimms", 1, "pooled socket: DIMMs per channel")
	interleave := flag.Int64("interleave", 4096, "pooled socket: interleave granularity in bytes (e.g. 4096, 2097152)")
	rate := flag.Float64("rate", 0, "pooled socket: open-loop arrival rate in ops per simulated second (0 = saturating)")
	flag.Parse()

	if *channels > 1 || *dimms > 1 {
		runPool(*channels, *dimms, *interleave, *rate, *rw, *bs, *ops)
		return
	}

	var pat fio.Pattern
	switch *rw {
	case "read":
		pat = fio.SeqRead
	case "write":
		pat = fio.SeqWrite
	case "randread":
		pat = fio.RandRead
	case "randwrite":
		pat = fio.RandWrite
	default:
		fmt.Fprintf(os.Stderr, "nvdimmc-sim: unknown pattern %q\n", *rw)
		os.Exit(2)
	}

	var tgt fio.Target
	var sys *core.System
	switch *target {
	case "pmem":
		d, err := nvdimmc.NewBaseline(nvdimmc.BaselineConfig())
		die(err)
		tgt = d
	case "nvdc":
		cfg := nvdimmc.DefaultConfig()
		switch *policy {
		case "lru":
			cfg.Driver.Policy = nvdimmc.PolicyLRU
		case "clock":
			cfg.Driver.Policy = nvdimmc.PolicyClock
		}
		if *uncached {
			cfg.NAND.BlocksPerDie = 512
		}
		cfg.Audit = *audit
		s, err := nvdimmc.New(cfg)
		die(err)
		sys = s
		ft := s.NewFioTarget()
		if *uncached {
			die(prefill(s))
			ft.SetWalkFootprint(120 << 30)
		} else {
			pages := s.Layout.NumSlots * 9 / 10
			die(fio.Prefill(ft, int64(pages)*core.PageSize, core.PageSize))
			ft.SetWalkFootprint(15 << 30)
		}
		tgt = ft
	default:
		fmt.Fprintf(os.Stderr, "nvdimmc-sim: unknown target %q\n", *target)
		os.Exit(2)
	}

	job := fio.Job{
		Pattern: pat, BlockSize: *bs, NumJobs: *jobs,
		OpsPerThread: *ops, WarmupOps: *ops / 10, Align: 4096,
	}
	if *target == "nvdc" && !*uncached {
		job.FileSize = int64(sys.Layout.NumSlots*9/10) * core.PageSize
	}
	res, err := fio.Run(tgt, job)
	die(err)
	fmt.Println(res)
	fmt.Printf("latency: p50=%v p95=%v p99=%v p999=%v max=%v\n",
		res.Latency.Percentile(50), res.Latency.Percentile(95),
		res.Latency.Percentile(99), res.Latency.Percentile(99.9),
		res.Latency.Max())
	if sys != nil {
		st := sys.Driver.Stats()
		fmt.Printf("driver: hits=%d misses=%d evictions=%d writebacks=%d cachefills=%d fastfills=%d\n",
			st.Hits, st.Misses, st.Evictions, st.Writebacks, st.Cachefills, st.FastFills)
		nv := sys.NVMC.Stats()
		fmt.Printf("nvmc: windows=%d used=%d polls=%d windows/cmd=%.1f\n",
			nv.WindowsSeen, nv.WindowsUsed, nv.Polls, nv.WindowsPerCmd)
		if sys.Auditor != nil {
			fmt.Printf("audit: events=%d violations=%d\n",
				sys.Auditor.Events(), sys.Auditor.ViolationCount())
		}
		die(sys.CheckHealth())
	}
}

// runPool drives the interleaved multi-channel pool with a single-tenant
// open-loop stream and prints the pooled and per-channel stats.
func runPool(channels, dimms int, interleave int64, rate float64, rw string, bs, ops int) {
	readPct := 0 // openloop default: read-only
	switch rw {
	case "randread":
	case "randwrite":
		readPct = -1
	default:
		fmt.Fprintf(os.Stderr, "nvdimmc-sim: pooled mode supports -rw randread|randwrite, not %q\n", rw)
		os.Exit(2)
	}
	p, err := pool.New(pool.Config{
		Channels:        channels,
		DIMMsPerChannel: dimms,
		Interleave:      interleave,
		Member:          nvdimmc.DefaultConfig(),
		Workers:         runtime.GOMAXPROCS(0),
		Seed:            7,
		PrefillPages:    -1,
		WalkFootprint:   15 << 30,
	})
	die(err)
	gen, err := openloop.New(openloop.Config{
		Seed:       7,
		RatePerSec: rate,
		Tenants: []openloop.Tenant{
			{Name: "cli", Dist: openloop.Uniform, ReadPct: readPct,
				BlockSize: bs, Footprint: p.CachedFootprint()},
		},
	})
	die(err)
	die(p.RunOpenLoop(gen, ops))
	s := p.Stats()
	fmt.Printf("pool: %d channels x %d DIMMs, interleave %d B, capacity %d MB\n",
		channels, dimms, interleave, p.Capacity()>>20)
	fmt.Printf("requests=%d bw=%.0f MB/s epochs=%d held-peak=%d\n",
		s.Completed, s.Meter.BandwidthMBps(), s.Epochs, s.HeldPeak)
	fmt.Printf("latency: p50=%v p95=%v p99=%v p999=%v max=%v\n",
		s.Lat.Percentile(50), s.Lat.Percentile(95),
		s.Lat.Percentile(99), s.Lat.Percentile(99.9), s.Lat.Max())
	for i, ch := range s.PerChannel {
		fmt.Printf("ch%d: reqs=%d bytes=%d p99=%v\n",
			i, ch.Lat.Count(), ch.Meter.Bytes(), ch.Lat.Percentile(99))
	}
	die(p.CheckHealth())
	fmt.Println("health ok")
}

// prefill writes every logical NAND page (zero data, deduplicated by the
// NAND model) so uncached runs read real media.
func prefill(s *core.System) error {
	zero := make([]byte, core.PageSize)
	n := s.FTL.LogicalPages()
	pending := 0
	for p := int64(0); p < n; p++ {
		pending++
		s.FTL.WritePage(p, zero, func(error) { pending-- })
		if pending >= 512 {
			if err := s.RunUntil(func() bool { return pending < 64 }, nvdimmc.Milliseconds(30000)); err != nil {
				return err
			}
		}
	}
	return s.RunUntil(func() bool { return pending == 0 }, nvdimmc.Milliseconds(30000))
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvdimmc-sim:", err)
		os.Exit(1)
	}
}
