package main

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"nvdimmc"
	"nvdimmc/internal/fault"
	"nvdimmc/internal/numa"
	"nvdimmc/internal/pool"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/openloop"
)

// fabricOpts carries the fabric-mode CLI knobs into runFabric.
type fabricOpts struct {
	sockets         int
	channels, dimms int
	interleave      int64
	rate            float64
	rw              string
	bs, ops         int
	spares          int
	xlatNS          float64
	xbwGBps         float64
	sfaults         string
}

// sfaultSpec is one parsed -sfaults entry: hit socket <socket> with <kind>
// at <onset> (a fault-site occurrence for kill/slow, a fabric epoch for
// link).
type sfaultSpec struct {
	socket int
	kind   string
	onset  int
}

// parseSocketFaults parses the -sfaults flag:
// "socket:kind:onset[,socket:kind:onset...]" with kind kill | slow | link.
func parseSocketFaults(spec string, sockets int) []sfaultSpec {
	var out []sfaultSpec
	for _, part := range strings.Split(spec, ",") {
		f := strings.Split(strings.TrimSpace(part), ":")
		if len(f) != 3 {
			fmt.Fprintf(os.Stderr, "nvdimmc-sim: bad -sfaults entry %q (want socket:kind:onset)\n", part)
			os.Exit(2)
		}
		socket, err1 := strconv.Atoi(f[0])
		onset, err2 := strconv.Atoi(f[2])
		if err1 != nil || err2 != nil || socket < 0 || socket >= sockets || onset < 0 {
			fmt.Fprintf(os.Stderr, "nvdimmc-sim: bad -sfaults entry %q: socket in [0,%d) and onset >= 0 required\n",
				part, sockets)
			os.Exit(2)
		}
		if onset == 0 {
			onset = 1
		}
		switch f[1] {
		case "kill", "slow", "link":
		default:
			fmt.Fprintf(os.Stderr, "nvdimmc-sim: unknown socket fault kind %q (want kill | slow | link)\n", f[1])
			os.Exit(2)
		}
		out = append(out, sfaultSpec{socket: socket, kind: f[1], onset: onset})
	}
	return out
}

// runFabric drives the multi-socket NUMA fabric (see internal/numa): N
// pooled sockets behind one request plane, a socket-affine open-loop load
// plus a fabric-wide roamer, and an end-of-run socket state table.
func runFabric(o fabricOpts) {
	readPct := 0
	switch o.rw {
	case "randread":
	case "randwrite":
		readPct = -1
	default:
		fmt.Fprintf(os.Stderr, "nvdimmc-sim: fabric mode supports -rw randread|randwrite, not %q\n", o.rw)
		os.Exit(2)
	}
	specs := []sfaultSpec(nil)
	member := nvdimmc.DefaultConfig()
	if o.sfaults != "" {
		specs = parseSocketFaults(o.sfaults, o.sockets)
		// Same shrink as pooled -faults: fault sites live on NAND and the CP
		// transport, so run a small module near capacity with deferred
		// program acks surfaced (see runPool).
		member.CacheBytes = 1 << 20
		member.NAND.BlocksPerDie = 32
		member.NAND.PagesPerBlock = 16
		member.NVMC.AckAfterProgram = true
		member.Audit = false
	}
	cfg := numa.Config{
		Sockets: o.sockets,
		Pool: pool.Config{
			Channels:        o.channels,
			DIMMsPerChannel: o.dimms,
			Interleave:      o.interleave,
			Member:          member,
			PrefillPages:    -1,
			Spares:          o.spares,
		},
		XLat:           sim.Duration(o.xlatNS * float64(sim.Nanosecond)),
		XBWBytesPerSec: int64(o.xbwGBps * float64(1<<30)),
		Workers:        runtime.GOMAXPROCS(0),
		Seed:           7,
	}
	for _, sp := range specs {
		if sp.kind == "link" {
			cfg.LinkFaults = append(cfg.LinkFaults, numa.LinkFault{
				Epoch: sp.onset, Socket: sp.socket, LatFactor: 20, BWDivide: 16,
			})
		}
	}
	if specs != nil {
		cfg.ArmFaults = func(socket, member int, g *fault.Registry) {
			for _, sp := range specs {
				if sp.socket != socket {
					continue
				}
				switch sp.kind {
				case "kill":
					g.OnOccurrence(fault.NANDProgramFail, uint64(sp.onset)).Times(1 << 30)
				case "slow":
					// x12 keeps programs under the driver's CP ack deadline:
					// latency tails, not transport errors.
					g.Prob(fault.NANDDieTimeout, 0.25).Param(12)
				}
			}
		}
	}
	f, err := numa.New(cfg)
	die(err)

	// Socket-affine tenants plus a fabric-wide roamer, the campaign load.
	ts := make([]openloop.Tenant, 0, o.sockets+1)
	for s := 0; s < o.sockets; s++ {
		ts = append(ts, openloop.Tenant{
			Name: fmt.Sprintf("s%d", s), Socket: s, Dist: openloop.Uniform,
			ReadPct: readPct, BlockSize: o.bs, Weight: 2,
			Footprint: f.Span(), Offset: int64(s) * f.Span(),
		})
	}
	ts = append(ts, openloop.Tenant{
		Name: "roam", Socket: 0, Dist: openloop.Uniform,
		ReadPct: readPct, BlockSize: o.bs, Weight: 1, Footprint: f.Capacity(),
	})
	gen, err := openloop.New(openloop.Config{
		Seed: 7, RatePerSec: o.rate, Tenants: ts,
	})
	die(err)
	die(f.RunOpenLoop(gen, o.ops))

	s := f.Stats()
	fmt.Printf("fabric: %d sockets x (%d channels x %d DIMMs +%d spare), interleave %d B, chunk %d KiB, span %d MB\n",
		o.sockets, o.channels, o.dimms, o.spares, o.interleave, f.Cfg.ChunkBytes>>10, f.Span()>>20)
	fmt.Printf("xconn: lat=%v bw=%.1f GB/s\n", f.Cfg.XLat, o.xbwGBps)
	fmt.Printf("requests=%d completed=%d failed=%d shed=%d expired=%d epochs=%d remote=%d\n",
		s.Submitted, s.Completed, s.Failed, s.Shed, s.Expired, s.Epochs, s.RemoteRequests)
	fmt.Printf("latency: p50=%v p95=%v p99=%v max=%v\n",
		s.Lat.Percentile(50), s.Lat.Percentile(95), s.Lat.Percentile(99), s.Lat.Max())
	if s.LatRemote.Count() > 0 {
		fmt.Printf("remote:  p50=%v p99=%v max=%v\n",
			s.LatRemote.Percentile(50), s.LatRemote.Percentile(99), s.LatRemote.Max())
	}
	if s.LatMigrate.Count() > 0 {
		fmt.Printf("during-migration: p50=%v p99=%v\n",
			s.LatMigrate.Percentile(50), s.LatMigrate.Percentile(99))
	}
	if o.sfaults != "" {
		fmt.Printf("faults: retries=%d rehomed=%d mig-pages=%d mig-miss=%d post-evac=%d writes-lost=%d\n",
			s.Ctr.Get("fab-retry-promoted"), s.ChunksRehomed, s.MigPages, s.MigReadMiss,
			s.PostEvacSubmissions,
			s.WritesIn-s.WritesAcked-s.WritesFailed-s.WritesShed-s.WritesExpired-s.WritesThrottled)
	}
	fmt.Println("sockets:")
	for si, ss := range s.PerSocket {
		reason := ""
		if ss.Reason != "" {
			reason = "  reason=" + ss.Reason
		}
		fmt.Printf("  s%d %-10v reqs=%-6d failed=%-4d quarantined=%d spares-used=%d p99=%v%s\n",
			si, ss.State, ss.Pool.Completed, ss.Pool.Failed,
			ss.Pool.Quarantined, ss.Pool.SparesUsed, ss.Pool.Lat.Percentile(99), reason)
	}
	die(f.CheckHealth())
	fmt.Println("health ok")
}
