// Command nvdimmc-serve runs the pool's async request plane as a network
// service, drives load at one, or replays a captured trace offline.
//
// Serve (default):
//
//	nvdimmc-serve [-listen ADDR] [-channels N] [-dimms N] [-spares N]
//	              [-interleave BYTES] [-workers N] [-seed N] [-small]
//	              [-admission block|shed-newest|shed-oldest|deadline-aware]
//	              [-pendingcap N] [-lockstep]
//	              [-capture FILE] [-capture-format text|binary]
//
// Starts the HTTP/JSON service (endpoints under /v1/: submit, stream, poll,
// stats, healthz, shutdown). -capture tees every offered request into a
// trace replayable bit-exact with -replay. SIGINT/SIGTERM drains
// gracefully; the exit status reflects the final conservation audit.
//
// Load generation:
//
//	nvdimmc-serve -loadgen URL [-clients N] [-ops N] [-write-pct N]
//	              [-tenants N] [-wait-every N] [-stream-every N]
//	              [-deadline-us F] [-seed N] [-shutdown]
//
// Drives N concurrent clients at a running service and verifies the
// conservation equation end to end; -shutdown then drains the service and
// checks its final audit. Exit status is nonzero on any violation.
//
// Replay:
//
//	nvdimmc-serve -replay FILE [-limit N] [pool geometry flags as above]
//
// Replays a captured trace through an offline pool (no HTTP) and prints the
// final stats. Deterministic: byte-identical at any -workers and with
// -lockstep on or off.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nvdimmc/internal/core"
	"nvdimmc/internal/pool"
	"nvdimmc/internal/replay"
	"nvdimmc/internal/server"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:8383", "serve: listen address")
		channels = flag.Int("channels", 3, "pool channels")
		dimms    = flag.Int("dimms", 1, "DIMMs per channel")
		spares   = flag.Int("spares", 0, "hot-spare members")
		interlv  = flag.Int64("interleave", 4096, "stripe granularity in bytes")
		workers  = flag.Int("workers", 0, "epoch workers (0: GOMAXPROCS; output identical at any count)")
		seed     = flag.Uint64("seed", 7, "pool / loadgen seed")
		small    = flag.Bool("small", false, "shrunken members (1 MB cache) for demos and smoke tests")
		admit    = flag.String("admission", "block", "admission policy: block | shed-newest | shed-oldest | deadline-aware")
		pcap     = flag.Int("pendingcap", 0, "per-channel admission-held cap under shedding policies (0: default)")
		lockstep = flag.Bool("lockstep", false, "disable the lookahead epoch scheduler (output is byte-identical either way)")
		prefill  = flag.Int("prefill", -1, "prefill pages per member (-1: 90% of cache slots)")

		capturePath = flag.String("capture", "", "serve: record every offered request to this trace file")
		captureFmt  = flag.String("capture-format", "binary", "capture trace format: text | binary")

		loadgen     = flag.String("loadgen", "", "drive load at this service URL instead of serving")
		clients     = flag.Int("clients", 32, "loadgen: concurrent clients")
		ops         = flag.Int("ops", 64, "loadgen: ops per client")
		writePct    = flag.Int("write-pct", 50, "loadgen: write percentage")
		tenants     = flag.Int("tenants", 1, "loadgen: tenant IDs to spread clients over")
		waitEvery   = flag.Int("wait-every", 4, "loadgen: every Nth op submits sync (0: all async)")
		streamEvery = flag.Int("stream-every", 0, "loadgen: every Nth client batches via /v1/stream (0: none)")
		deadlineUS  = flag.Float64("deadline-us", 0, "loadgen: per-op relative deadline in microseconds (0: none)")
		shutdown    = flag.Bool("shutdown", false, "loadgen: drain the service afterwards and verify its final audit")

		replayPath = flag.String("replay", "", "replay this trace through an offline pool instead of serving")
		limit      = flag.Int("limit", 0, "replay: stop after N records (0: whole trace)")
	)
	flag.Parse()

	switch {
	case *loadgen != "":
		os.Exit(runLoadgen(*loadgen, server.LoadConfig{
			Clients: *clients, Ops: *ops, WritePct: *writePct, Tenants: *tenants,
			WaitEvery: *waitEvery, StreamEvery: *streamEvery,
			DeadlineUS: *deadlineUS, Seed: *seed,
		}, *shutdown))
	case *replayPath != "":
		os.Exit(runReplay(*replayPath, *limit, poolConfig(*channels, *dimms, *spares, *interlv,
			*workers, *seed, *small, *admit, *pcap, *lockstep, *prefill)))
	default:
		os.Exit(runServe(*listen, *capturePath, *captureFmt, poolConfig(*channels, *dimms, *spares,
			*interlv, *workers, *seed, *small, *admit, *pcap, *lockstep, *prefill)))
	}
}

func poolConfig(channels, dimms, spares int, interleave int64, workers int, seed uint64,
	small bool, admit string, pendingCap int, lockstep bool, prefill int) pool.Config {
	member := core.DefaultConfig()
	if small {
		member.CacheBytes = 1 << 20
		member.NAND.BlocksPerDie = 32
		member.NAND.PagesPerBlock = 16
	}
	policy, err := pool.ParseAdmissionPolicy(admit)
	if err != nil {
		fatal(err)
	}
	return pool.Config{
		Channels:         channels,
		DIMMsPerChannel:  dimms,
		Spares:           spares,
		Interleave:       interleave,
		Member:           member,
		Workers:          workers,
		Seed:             seed,
		PrefillPages:     prefill,
		Admission:        policy,
		PendingCap:       pendingCap,
		DisableLookahead: lockstep,
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nvdimmc-serve: %v\n", err)
	os.Exit(2)
}

func runServe(listen, capturePath, captureFmt string, pcfg pool.Config) int {
	cfg := server.Config{Pool: pcfg}
	var rec *replay.Recorder
	if capturePath != "" {
		f, err := os.Create(capturePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		format := replay.Binary
		if captureFmt == "text" {
			format = replay.Text
		} else if captureFmt != "binary" {
			fatal(fmt.Errorf("capture format %q: want text | binary", captureFmt))
		}
		w, err := replay.NewWriter(f, format)
		if err != nil {
			fatal(err)
		}
		rec = replay.NewRecorder(w)
		cfg.Capture = rec.Record
	}

	s, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Addr: listen, Handler: s.Handler()}
	fmt.Printf("nvdimmc-serve: serving on http://%s (admission %s, %d channels x %d DIMMs)\n",
		listen, pcfg.Admission, pcfg.Channels, pcfg.DIMMsPerChannel)

	// SIGINT/SIGTERM drain the plane exactly like POST /v1/shutdown.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case sig := <-sigs:
			fmt.Printf("nvdimmc-serve: %v: draining\n", sig)
			s.Shutdown()
		case <-s.Done():
		}
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()

	select {
	case err := <-serveErr:
		fatal(err) // bind failure etc.: the sim loop never drained
	case <-s.Done():
	}
	// Let in-flight responses (the /v1/shutdown report itself) finish.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	hs.Shutdown(ctx)
	cancel()

	code := 0
	if err := s.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "nvdimmc-serve: final audit: %v\n", err)
		code = 1
	} else {
		fmt.Println("nvdimmc-serve: drained clean, conservation audit ok")
	}
	if rec != nil {
		if err := rec.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "nvdimmc-serve: capture: %v\n", err)
			code = 1
		} else {
			fmt.Printf("nvdimmc-serve: captured %d requests to %s\n", rec.Records(), capturePath)
		}
	}
	return code
}

func runLoadgen(base string, cfg server.LoadConfig, shutdown bool) int {
	cfg.Base = base
	rep, err := server.LoadGen(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loadgen: %d clients x %d ops: sent=%d accepted=%d completed=%d shed=%d expired=%d failed=%d throttled=%d polled=%d\n",
		cfg.Clients, cfg.Ops, rep.Sent, rep.Accepted, rep.Completed, rep.Shed,
		rep.Expired, rep.Failed, rep.Throttled, rep.Polled)
	st := rep.Final
	fmt.Printf("server: submitted=%d terminal=%d completed=%d shed=%d expired=%d failed=%d throttled=%d p50=%.2fus p99=%.2fus\n",
		st.Submitted, st.Terminal, st.Completed, st.Shed, st.Expired, st.Failed,
		st.Throttled, st.LatP50US, st.LatP99US)
	code := 0
	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d conservation violations:\n  %s\n",
			len(rep.Violations), strings.Join(rep.Violations, "\n  "))
		code = 1
	} else {
		fmt.Println("loadgen: conservation verified end to end")
	}
	if shutdown {
		c := &server.Client{Base: base}
		drain, err := c.Shutdown()
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: shutdown: %v\n", err)
			return 1
		}
		fmt.Printf("shutdown: health=%s submitted=%d terminal=%d\n",
			drain.Health, drain.Stats.Submitted, drain.Stats.Terminal)
		if drain.Health != "ok" {
			return 1
		}
	}
	return code
}

func runReplay(path string, limit int, pcfg pool.Config) int {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rd, err := replay.NewReader(f)
	if err != nil {
		fatal(err)
	}
	p, err := pool.New(pcfg)
	if err != nil {
		fatal(err)
	}
	st, err := replay.Drive(p, rd, limit)
	if err != nil {
		fatal(err)
	}
	if err := p.CheckHealth(); err != nil {
		fmt.Fprintf(os.Stderr, "nvdimmc-serve: replay audit: %v\n", err)
		return 1
	}
	ps := p.Stats()
	fmt.Printf("replay: %s format, %d ops (%d retimed)\n", rd.Format(), st.Ops, st.Retimed)
	fmt.Printf("replay: submitted=%d completed=%d shed=%d expired=%d failed=%d throttled=%d epochs=%d\n",
		ps.Submitted, ps.Completed, ps.Shed, ps.Expired, ps.Failed, ps.Throttled, ps.Epochs)
	fmt.Printf("replay: lat mean=%v p50=%v p99=%v max=%v writes acked=%d\n",
		ps.Lat.Mean(), ps.Lat.Percentile(50), ps.Lat.Percentile(99), ps.Lat.Max(), ps.WritesAcked)
	return 0
}
