// Command nvdimmc-bench regenerates the tables and figures of the NVDIMM-C
// paper's evaluation (§VI–§VII) on the simulated system and prints
// paper-vs-measured rows.
//
// Usage:
//
//	nvdimmc-bench [-quick] [-parallel N] [-lockstep] [-json FILE] [experiment ...]
//
// With no arguments every experiment runs in the paper's order; a failing
// experiment no longer aborts the rest — every requested experiment runs,
// all failures are reported, and the exit status is nonzero if any failed.
// -parallel fans the shardable experiments (crash, fig9, fig11, fig13)
// across N workers with byte-identical output to a serial run. -lockstep
// disables the pool's lookahead epoch scheduler (naive per-epoch advance;
// output is byte-identical either way — CI diffs the two). -json appends
// one JSON line per experiment (wall-clock + headline metrics) to FILE,
// e.g. BENCH_2026-08-05.json, so the harness's own performance trajectory
// is trackable across commits.
//
// Available experiments: table1 table2 frontend aging fig7 fig8 fig9 fig10
// fig11 mixed lru fig12 fig13 windows ablations endurance crash conformance
// pool faultpool overload qos numa replay service. -list prints each with a
// one-line description.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"nvdimmc"
)

// benchRecord is one -json snapshot line.
type benchRecord struct {
	Time       string             `json:"time"`
	Experiment string             `json:"experiment"`
	Quick      bool               `json:"quick"`
	Parallel   int                `json:"parallel"`
	WallMS     float64            `json:"wall_ms"`
	OK         bool               `json:"ok"`
	Error      string             `json:"error,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// printList writes every experiment with its one-line description.
func printList(w io.Writer) {
	for _, e := range nvdimmc.ExperimentList() {
		fmt.Fprintf(w, "  %-12s %s\n", e.Name, e.Desc)
	}
}

func main() {
	quick := flag.Bool("quick", false, "smaller runs (CI scale)")
	list := flag.Bool("list", false, "list experiments and exit")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"max concurrent sim instances per shardable experiment (1 = serial; output is identical either way)")
	jsonPath := flag.String("json", "",
		"append per-experiment wall-clock + headline metrics to this JSON-lines file (e.g. BENCH_snapshot.json)")
	lockstep := flag.Bool("lockstep", false,
		"run the pooled experiments with the lookahead epoch scheduler disabled (naive per-epoch lockstep; output is byte-identical either way)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nvdimmc-bench [-quick] [-parallel N] [-lockstep] [-json FILE] [experiment ...]\navailable: %s\n",
			strings.Join(nvdimmc.ExperimentNames(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		printList(os.Stdout)
		return
	}

	var snapshot *os.File
	if *jsonPath != "" {
		f, err := os.OpenFile(*jsonPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvdimmc-bench: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		snapshot = f
	}

	metrics := map[string]float64{}
	opts := nvdimmc.ExperimentOptions{
		Quick:            *quick,
		Out:              os.Stdout,
		Parallel:         *parallel,
		Headline:         func(name string, v float64) { metrics[name] = v },
		DisableLookahead: *lockstep,
	}
	harnesses := nvdimmc.Experiments(opts)

	names := flag.Args()
	if len(names) == 0 {
		names = nvdimmc.ExperimentNames()
	}
	for _, name := range names {
		if _, ok := harnesses[name]; !ok {
			fmt.Fprintf(os.Stderr, "nvdimmc-bench: unknown experiment %q; available:\n", name)
			printList(os.Stderr)
			os.Exit(2)
		}
	}

	var failures []string
	for _, name := range names {
		for k := range metrics {
			delete(metrics, k)
		}
		start := time.Now()
		err := harnesses[name]()
		wall := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvdimmc-bench: %s: %v\n", name, err)
			failures = append(failures, fmt.Sprintf("%s: %v", name, err))
		}
		if snapshot != nil {
			rec := benchRecord{
				Time:       start.UTC().Format(time.RFC3339),
				Experiment: name,
				Quick:      *quick,
				Parallel:   *parallel,
				WallMS:     float64(wall.Microseconds()) / 1000,
				OK:         err == nil,
			}
			if err != nil {
				rec.Error = err.Error()
			}
			if len(metrics) > 0 {
				rec.Metrics = make(map[string]float64, len(metrics))
				for k, v := range metrics {
					rec.Metrics[k] = v
				}
			}
			if werr := json.NewEncoder(snapshot).Encode(rec); werr != nil {
				fmt.Fprintf(os.Stderr, "nvdimmc-bench: writing %s: %v\n", *jsonPath, werr)
				os.Exit(2)
			}
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "nvdimmc-bench: %d of %d experiments failed:\n", len(failures), len(names))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
}
