// Command nvdimmc-bench regenerates the tables and figures of the NVDIMM-C
// paper's evaluation (§VI–§VII) on the simulated system and prints
// paper-vs-measured rows.
//
// Usage:
//
//	nvdimmc-bench [-quick] [experiment ...]
//
// With no arguments every experiment runs in the paper's order. Available
// experiments: table1 table2 aging fig7 fig8 fig9 fig10 fig11 mixed lru
// fig12 fig13 windows.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nvdimmc"
)

func main() {
	quick := flag.Bool("quick", false, "smaller runs (CI scale)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nvdimmc-bench [-quick] [experiment ...]\navailable: %s\n",
			strings.Join(nvdimmc.ExperimentNames(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(nvdimmc.ExperimentNames(), "\n"))
		return
	}

	opts := nvdimmc.ExperimentOptions{Quick: *quick, Out: os.Stdout}
	harnesses := nvdimmc.Experiments(opts)

	names := flag.Args()
	if len(names) == 0 {
		names = nvdimmc.ExperimentNames()
	}
	for _, name := range names {
		h, ok := harnesses[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "nvdimmc-bench: unknown experiment %q (try -list)\n", name)
			os.Exit(2)
		}
		if err := h(); err != nil {
			fmt.Fprintf(os.Stderr, "nvdimmc-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
