// Command benchdiff compares two nvdimmc-bench -json snapshot files and
// fails on regression, gating the perf trajectory in CI.
//
// Usage:
//
//	benchdiff [-wall-threshold 0.25] [-wall-floor 250] [-metric-threshold 0.25] BASELINE CANDIDATE
//	benchdiff -auto-baseline [-baseline-dir DIR] [thresholds ...] CANDIDATE
//
// With -auto-baseline the baseline argument is omitted and the committed
// BENCH_<n>.json with the highest n in -baseline-dir (default ".") is used,
// so CI keeps gating against the newest committed snapshot without every PR
// editing the workflow file.
//
// Both inputs are JSON-lines files as written by nvdimmc-bench -json; the
// last record per (experiment, quick) pair wins. Every baseline experiment
// must appear in the candidate and have run cleanly. Two checks gate:
//
//   - Wall-clock: the candidate may not be slower than the baseline by more
//     than -wall-threshold (relative). Wall time is machine-dependent, so
//     this is a coarse tripwire for order-of-magnitude blowups (a wedged
//     sweep, an accidental O(n^2) path), not a microbenchmark. Experiments
//     where both walls sit under -wall-floor milliseconds skip this check
//     entirely: a 3 ms experiment routinely jitters past any relative
//     threshold on shared CI runners, and a real blowup clears the floor.
//
//   - Headline metrics: the simulator is deterministic, so a metric shared
//     by both snapshots drifting more than -metric-threshold (relative)
//     means the experiment's behavior changed — a real regression (or an
//     intentional change that must re-commit the baseline). Metric names
//     beginning with '~' are advisory (wall-clock-derived rates, speedup
//     ratios): they are reported for the record but never gated and never
//     required to appear in the candidate.
//
// Exit status 1 lists every violation; 0 means the candidate holds the
// baseline. Output is sorted by experiment key, and an experiment's "ok"
// wall line is suppressed when that experiment has metric violations.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// record mirrors the nvdimmc-bench -json line shape.
type record struct {
	Experiment string             `json:"experiment"`
	Quick      bool               `json:"quick"`
	WallMS     float64            `json:"wall_ms"`
	OK         bool               `json:"ok"`
	Error      string             `json:"error,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func key(r record) string { return fmt.Sprintf("%s/quick=%v", r.Experiment, r.Quick) }

// load reads a JSON-lines snapshot, keeping the last record per key.
func load(path string) (map[string]record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]record{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		out[key(r)] = r
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no bench records", path)
	}
	return out, nil
}

// benchPattern matches committed snapshot names for -auto-baseline.
var benchPattern = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// autoBaseline returns the BENCH_<n>.json with the highest n in dir.
func autoBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		m := benchPattern.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil || n <= bestN {
			continue
		}
		best, bestN = filepath.Join(dir, e.Name()), n
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_<n>.json snapshots in %s", dir)
	}
	return best, nil
}

// relDrift is |a-b| over the larger magnitude; 0 when both are 0.
func relDrift(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

func main() {
	wallThresh := flag.Float64("wall-threshold", 0.25, "max relative wall-clock slowdown vs baseline")
	wallFloor := flag.Float64("wall-floor", 250,
		"skip the wall-clock check when both baseline and candidate walls are under this many ms (sub-floor runs are all jitter)")
	metricThresh := flag.Float64("metric-threshold", 0.25, "max relative drift for headline metrics present in both snapshots")
	auto := flag.Bool("auto-baseline", false,
		"gate against the committed BENCH_<n>.json with the highest n instead of an explicit baseline argument")
	baseDir := flag.String("baseline-dir", ".", "directory searched by -auto-baseline")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-wall-threshold F] [-wall-floor MS] [-metric-threshold F] BASELINE CANDIDATE")
		fmt.Fprintln(os.Stderr, "       benchdiff -auto-baseline [-baseline-dir DIR] [thresholds ...] CANDIDATE")
		flag.PrintDefaults()
	}
	flag.Parse()
	var basePath, candPath string
	switch {
	case *auto && flag.NArg() == 1:
		p, err := autoBaseline(*baseDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		fmt.Printf("benchdiff: auto baseline %s\n", p)
		basePath, candPath = p, flag.Arg(0)
	case !*auto && flag.NArg() == 2:
		basePath, candPath = flag.Arg(0), flag.Arg(1)
	default:
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cand, err := load(candPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var violations []string
	for _, k := range keys {
		b := base[k]
		c, ok := cand[k]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from candidate", k))
			continue
		}
		if !c.OK {
			violations = append(violations, fmt.Sprintf("%s: candidate failed: %s", k, c.Error))
			continue
		}

		// Metric drift first: an experiment with metric violations never
		// earns an "ok" wall line, even when its wall holds.
		var expViolations []string
		names := make([]string, 0, len(b.Metrics))
		for name := range b.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			bv := b.Metrics[name]
			cv, ok := c.Metrics[name]
			if advisory := strings.HasPrefix(name, "~"); advisory {
				if ok {
					fmt.Printf("%-28s %s %g -> %g (advisory, not gated)\n", k, name, bv, cv)
				}
				continue
			}
			if !ok {
				expViolations = append(expViolations, fmt.Sprintf("%s: metric %q missing from candidate", k, name))
				continue
			}
			if d := relDrift(bv, cv); d > *metricThresh {
				expViolations = append(expViolations, fmt.Sprintf("%s: metric %q drifted %.1f%% (baseline %g, candidate %g, threshold %.0f%%)",
					k, name, 100*d, bv, cv, 100**metricThresh))
			}
		}

		switch {
		case b.WallMS < *wallFloor && c.WallMS < *wallFloor:
			if len(expViolations) == 0 {
				fmt.Printf("%-28s wall %8.0f ms vs %8.0f ms under %.0f ms floor, not gated\n",
					k, c.WallMS, b.WallMS, *wallFloor)
			}
		case b.WallMS > 0 && c.WallMS > b.WallMS*(1+*wallThresh):
			expViolations = append(expViolations, fmt.Sprintf("%s: wall %.0f ms vs baseline %.0f ms (+%.0f%%, threshold %.0f%%)",
				k, c.WallMS, b.WallMS, 100*(c.WallMS/b.WallMS-1), 100**wallThresh))
		default:
			if len(expViolations) == 0 {
				fmt.Printf("%-28s wall %8.0f ms vs %8.0f ms ok\n", k, c.WallMS, b.WallMS)
			}
		}
		violations = append(violations, expViolations...)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchdiff: REGRESSION:", v)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d experiments hold the baseline\n", len(base))
}
