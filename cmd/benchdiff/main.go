// Command benchdiff compares two nvdimmc-bench -json snapshot files and
// fails on regression, gating the perf trajectory in CI.
//
// Usage:
//
//	benchdiff [-wall-threshold 0.25] [-metric-threshold 0.25] BASELINE CANDIDATE
//
// Both inputs are JSON-lines files as written by nvdimmc-bench -json; the
// last record per (experiment, quick) pair wins. Every baseline experiment
// must appear in the candidate and have run cleanly. Two checks gate:
//
//   - Wall-clock: the candidate may not be slower than the baseline by more
//     than -wall-threshold (relative). Wall time is machine-dependent, so
//     this is a coarse tripwire for order-of-magnitude blowups (a wedged
//     sweep, an accidental O(n^2) path), not a microbenchmark.
//
//   - Headline metrics: the simulator is deterministic, so a metric shared
//     by both snapshots drifting more than -metric-threshold (relative)
//     means the experiment's behavior changed — a real regression (or an
//     intentional change that must re-commit the baseline).
//
// Exit status 1 lists every violation; 0 means the candidate holds the
// baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

// record mirrors the nvdimmc-bench -json line shape.
type record struct {
	Experiment string             `json:"experiment"`
	Quick      bool               `json:"quick"`
	WallMS     float64            `json:"wall_ms"`
	OK         bool               `json:"ok"`
	Error      string             `json:"error,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func key(r record) string { return fmt.Sprintf("%s/quick=%v", r.Experiment, r.Quick) }

// load reads a JSON-lines snapshot, keeping the last record per key.
func load(path string) (map[string]record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]record{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		out[key(r)] = r
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no bench records", path)
	}
	return out, nil
}

// relDrift is |a-b| over the larger magnitude; 0 when both are 0.
func relDrift(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

func main() {
	wallThresh := flag.Float64("wall-threshold", 0.25, "max relative wall-clock slowdown vs baseline")
	metricThresh := flag.Float64("metric-threshold", 0.25, "max relative drift for headline metrics present in both snapshots")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-wall-threshold F] [-metric-threshold F] BASELINE CANDIDATE")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cand, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	var violations []string
	for k, b := range base {
		c, ok := cand[k]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from candidate", k))
			continue
		}
		if !c.OK {
			violations = append(violations, fmt.Sprintf("%s: candidate failed: %s", k, c.Error))
			continue
		}
		if b.WallMS > 0 && c.WallMS > b.WallMS*(1+*wallThresh) {
			violations = append(violations, fmt.Sprintf("%s: wall %.0f ms vs baseline %.0f ms (+%.0f%%, threshold %.0f%%)",
				k, c.WallMS, b.WallMS, 100*(c.WallMS/b.WallMS-1), 100**wallThresh))
		} else {
			fmt.Printf("%-28s wall %8.0f ms vs %8.0f ms ok\n", k, c.WallMS, b.WallMS)
		}
		for name, bv := range b.Metrics {
			cv, ok := c.Metrics[name]
			if !ok {
				violations = append(violations, fmt.Sprintf("%s: metric %q missing from candidate", k, name))
				continue
			}
			if d := relDrift(bv, cv); d > *metricThresh {
				violations = append(violations, fmt.Sprintf("%s: metric %q drifted %.1f%% (baseline %g, candidate %g, threshold %.0f%%)",
					k, name, 100*d, bv, cv, 100**metricThresh))
			}
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchdiff: REGRESSION:", v)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d experiments hold the baseline\n", len(base))
}
