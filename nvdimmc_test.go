package nvdimmc

import (
	"bytes"
	"strings"
	"testing"

	"nvdimmc/internal/experiments"
)

func TestPublicAPISmoke(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("public api")
	done := false
	sys.Store(0, msg, func() {
		got := make([]byte, len(msg))
		sys.Load(0, got, func() {
			if string(got) != string(msg) {
				t.Error("round trip mismatch")
			}
			done = true
		})
	})
	if err := sys.RunUntil(func() bool { return done }, Milliseconds(100)); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckHealth(); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineSmoke(t *testing.T) {
	d, err := NewBaseline(BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.Capacity() != 128<<30 {
		t.Fatalf("baseline capacity = %d", d.Capacity())
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	m := Experiments(ExperimentOptions{Quick: true})
	names := ExperimentNames()
	if len(m) != len(names) {
		t.Fatalf("registry has %d entries, names list %d", len(m), len(names))
	}
	for _, n := range names {
		if m[n] == nil {
			t.Fatalf("experiment %q missing from registry", n)
		}
	}
	// Every listed experiment carries a usable one-line description.
	for _, e := range ExperimentList() {
		if e.Desc == "" {
			t.Fatalf("experiment %q has no description", e.Name)
		}
	}
	// The registry must cover every table and figure of the evaluation.
	for _, want := range []string{"table1", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "aging", "mixed", "lru", "windows", "pool"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("evaluation item %q not covered", want)
		}
	}
}

func TestTablesRender(t *testing.T) {
	var buf bytes.Buffer
	m := Experiments(ExperimentOptions{Quick: true, Out: &buf})
	if err := m["table1"](); err != nil {
		t.Fatal(err)
	}
	if err := m["table2"](); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Xeon Platinum 8168", "Z-NAND", "FIO", "TPC-H", "STREAM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tables missing %q", want)
		}
	}
}

func TestDurationHelpers(t *testing.T) {
	if Microseconds(1) != Nanoseconds(1000) || Milliseconds(1) != Microseconds(1000) {
		t.Fatal("duration helpers inconsistent")
	}
}

func TestWindowsHarnessViaRegistry(t *testing.T) {
	var buf bytes.Buffer
	m := Experiments(ExperimentOptions{Quick: true, Out: &buf})
	if err := m["windows"](); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "46.8") {
		t.Fatal("windows harness did not print the §V-A minima")
	}
	_ = experiments.Options{}
}
