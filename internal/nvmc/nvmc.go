// Package nvmc models the NVM controller of the NVDIMM-C board: the FPGA
// logic plus firmware that owns the back-end Z-NAND (through the FTL) and is
// the second master on the shared DDR4 channel. Its defining discipline is
// §III-B: it touches the DRAM cache only inside the extra-tRFC window that
// follows each REFRESH command the refresh detector reports, and it
// communicates with the nvdc driver exclusively through the CP area in DRAM
// (§IV-C) — there is no side channel, exactly as on the real board.
//
// The controller's latency behaviour reproduces the PoC's (§VII-B2):
// firmware decode and DMA setup run on Cortex-A53-class cores between
// windows, NAND reads overlap window waits, and a command needs its poll,
// data and ack phases in (at least) separate windows unless ack-merging is
// enabled.
package nvmc

import (
	"fmt"

	"nvdimmc/internal/bus"
	"nvdimmc/internal/cp"
	"nvdimmc/internal/fault"
	"nvdimmc/internal/ftl"
	"nvdimmc/internal/hostmem"
	"nvdimmc/internal/refdet"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/trace"
)

// PageSize is the transfer granularity (one DRAM cache slot / NAND page).
const PageSize = 4096

// Config parameterizes the controller.
type Config struct {
	// MaxBytesPerWindow bounds data moved per extra-tRFC window (4 KB on
	// the PoC; §VII-C item 3 proposes 8 KB). CP polls and acks are 64 B
	// control reads/writes and ride along without consuming this budget.
	MaxBytesPerWindow int
	// CommandDepth is the number of CP command slots (1 on the PoC;
	// §VII-C item 2 proposes more).
	CommandDepth int
	// FirmwareDecode is the Cortex-A53 time to decode a polled command and
	// steer the RTL FSMs (the software-controlled data path of §VII-C).
	FirmwareDecode sim.Duration
	// DMASetup is the per-transfer configuration overhead before the DDR4
	// controller can move data in a window.
	DMASetup sim.Duration
	// AckMergesWithData lets the 64 B ack ride in the same window as the
	// command's 4 KB data transfer instead of a window of its own.
	AckMergesWithData bool
	// AckAfterProgram makes writeback acks wait for the NAND program to
	// finish instead of acking once the data is in the controller's buffer
	// (battery-backed, so posting is safe — the PoC posts).
	AckAfterProgram bool
	// WindowGuard is margin kept at the window end (signal settle).
	WindowGuard sim.Duration
}

// DefaultConfig mirrors the PoC.
func DefaultConfig() Config {
	return Config{
		MaxBytesPerWindow: PageSize,
		CommandDepth:      1,
		// The PoC's CPU-controlled FSMs make a writeback+cachefill pair
		// cost ~8.9 tREFI windows instead of the 6-window theoretical
		// minimum (§VII-B2); these decode/setup times reproduce that lag.
		FirmwareDecode:    7 * sim.Microsecond,
		DMASetup:          2 * sim.Microsecond,
		AckMergesWithData: false,
		AckAfterProgram:   false,
		WindowGuard:       50 * sim.Nanosecond,
	}
}

// CP area layout with depth: command slot i occupies the cacheline at
// 128*i, its ack the cacheline at 128*i+64. Depth 1 matches cp's constants.
func cmdOffset(i int) int64 { return int64(128 * i) }
func ackOffset(i int) int64 { return int64(128*i + 64) }

type fsmState int

const (
	engIdle fsmState = iota
	engDecoding
	engWaitNAND  // cachefill waiting for FTL read
	engWriteData // cachefill: 4 KB DRAM write pending
	engReadData  // writeback: 4 KB DRAM read pending
	engWaitProg  // writeback waiting for NAND program (AckAfterProgram)
	engAck       // ack write pending
)

type cmdFSM struct {
	idx       int
	state     fsmState
	ready     bool // firmware prep done; may act in a window
	cur       cp.Command
	buf       []byte
	lastPhase bool
	// For OpCombined: whether the writeback half is done.
	wbDone bool
	// windowsUsed counts windows this command consumed (for stats).
	windowsUsed int
	startedAt   sim.Time
}

// Stats aggregates controller behaviour.
type Stats struct {
	WindowsSeen        uint64 // extra-tRFC windows entered
	WindowsUsed        uint64 // windows in which any work was done
	Polls              uint64
	Cachefills         uint64
	Writebacks         uint64
	Combined           uint64
	BytesToDRAM        uint64
	BytesFromDRAM      uint64
	AcksPosted         uint64
	AcksDropped        uint64  // injected: ack never reached DRAM
	AcksCorrupted      uint64  // injected: ack posted with a flipped bit
	FirmwareStalls     uint64  // injected: decode stalled past its budget
	WindowOverruns     uint64  // injected: data phase aborted, window lost
	PostedProgramFails uint64  // posted writeback whose program failed late
	WindowsPerCmd      float64 // rolling average
	cmdWindowsTotal    uint64
	cmdsCompleted      uint64
}

// Controller is the NVMC.
type Controller struct {
	k      *sim.Kernel
	ch     *bus.Channel
	det    *refdet.Detector
	ftl    *ftl.FTL
	layout hostmem.Layout
	cfg    Config

	windowStart, windowEnd sim.Time
	windowRefAt            sim.Time // bus time of the REF that opened the window

	fsms []*cmdFSM
	rr   int

	stats Stats

	// enabled gates the window engine (the mechanism-off ablation drives
	// accesses without windows to demonstrate collisions).
	enabled bool

	// onComplete, if set, observes each completed command (tests).
	onComplete func(c cp.Command, windows int)

	// faults, when non-nil, injects controller-level failures: firmware
	// stalls (NVMCFirmwareStall), aborted window transfers
	// (NVMCWindowOverrun), and CP ack loss/corruption (CPAckDrop,
	// CPAckCorrupt). All are recoverable by the driver's retry protocol:
	// the command slot's FSM bookkeeping always completes, so a re-issued
	// command with a toggled phase bit is seen as new and re-executed.
	faults *fault.Registry

	// Trace, when attached to sinks, publishes window and CP activity.
	Trace *trace.Recorder
}

// New wires a controller to the channel, detector and FTL. The detector's
// OnRefresh callback is claimed by the controller.
func New(k *sim.Kernel, ch *bus.Channel, det *refdet.Detector, f *ftl.FTL, layout hostmem.Layout, cfg Config) *Controller {
	if cfg.MaxBytesPerWindow < PageSize {
		panic("nvmc: window budget below one page")
	}
	if cfg.CommandDepth < 1 {
		cfg.CommandDepth = 1
	}
	c := &Controller{
		k: k, ch: ch, det: det, ftl: f, layout: layout, cfg: cfg,
		enabled: true,
	}
	for i := 0; i < cfg.CommandDepth; i++ {
		c.fsms = append(c.fsms, &cmdFSM{idx: i, state: engIdle, ready: true})
	}
	det.OnRefresh = c.onRefresh
	return c
}

// Stats returns a copy of the counters with the rolling average resolved.
func (c *Controller) Stats() Stats {
	s := c.stats
	if s.cmdsCompleted > 0 {
		s.WindowsPerCmd = float64(s.cmdWindowsTotal) / float64(s.cmdsCompleted)
	}
	return s
}

// SetEnabled gates the window engine.
func (c *Controller) SetEnabled(v bool) { c.enabled = v }

// SetOnComplete registers a test observer for completed commands.
func (c *Controller) SetOnComplete(fn func(cp.Command, int)) { c.onComplete = fn }

// FTL exposes the flash translation layer (for inspection tools).
func (c *Controller) FTL() *ftl.FTL { return c.ftl }

// SetFaults attaches the fault-injection registry (nil detaches).
func (c *Controller) SetFaults(g *fault.Registry) { c.faults = g }

// onRefresh is the refresh detector callback: it fires shortly after a REF
// was seen on the CA bus; the usable window opens once the DRAM's internal
// (standard-tRFC) refresh completes and closes at the programmed tRFC.
func (c *Controller) onRefresh(refAt sim.Time) {
	if !c.enabled {
		return
	}
	dev := c.ch.Device()
	start, end := refAt.Add(dev.Config().StandardTRFC), refAt.Add(dev.Config().Timing.TRFC)
	end = end.Add(-c.cfg.WindowGuard)
	if end <= start {
		return // no extra window programmed: mechanism cannot run
	}
	c.windowStart, c.windowEnd = start, end
	c.windowRefAt = refAt
	if start <= c.k.Now() {
		c.runWindow()
		return
	}
	c.k.ScheduleAt(start, c.runWindow)
}

// runWindow performs this window's work: at most MaxBytesPerWindow of data
// plus any pending 64 B control reads/writes.
func (c *Controller) runWindow() {
	now := c.k.Now()
	if now < c.windowStart || now >= c.windowEnd {
		return // stale schedule (e.g. disabled in between)
	}
	c.stats.WindowsSeen++
	if c.Trace.Active() {
		c.Trace.Record(trace.Event{
			At: now, Kind: trace.KindWindow,
			End: c.windowEnd, RefAt: c.windowRefAt,
		})
	}
	worked := false
	budget := c.cfg.MaxBytesPerWindow

	// Data actions first, round-robin across command slots for fairness.
	n := len(c.fsms)
	for i := 0; i < n && budget >= PageSize; i++ {
		f := c.fsms[(c.rr+i)%n]
		if !f.ready {
			continue
		}
		switch f.state {
		case engWriteData:
			c.doWriteData(f)
			budget -= PageSize
			worked = true
		case engReadData:
			c.doReadData(f)
			budget -= PageSize
			worked = true
		}
	}
	c.rr = (c.rr + 1) % n

	// Control actions: acks then polls (64 B each; do not consume budget).
	for _, f := range c.fsms {
		if f.ready && f.state == engAck {
			c.postAck(f)
			worked = true
		}
	}
	for _, f := range c.fsms {
		if f.ready && f.state == engIdle {
			c.pollSlot(f)
			worked = true
		}
	}
	if worked {
		c.stats.WindowsUsed++
	}
}

// pollSlot reads command slot f.idx from the CP area and hands it to the
// firmware for decoding.
func (c *Controller) pollSlot(f *cmdFSM) {
	c.stats.Polls++
	var word [16]byte
	if err := c.ch.NVMCAccess(c.cpAddr(cmdOffset(f.idx)), word[:], true); err != nil {
		panic(fmt.Sprintf("nvmc: CP poll: %v", err))
	}
	w := leUint64(word[0:8])
	sec := leUint64(word[8:16])
	cmd := cp.Decode(w, sec)
	if cmd.Phase == f.lastPhase || cmd.Opcode == cp.OpNone {
		return // stale or empty slot
	}
	if c.Trace.Active() {
		c.Trace.Record(trace.Event{
			At: c.k.Now(), Kind: trace.KindCPCommand,
			Slot: f.idx, Word: w, Word2: sec,
		})
	}
	// New command: the firmware decodes it after the window, on its core.
	f.state = engDecoding
	f.ready = false
	f.windowsUsed = 1
	f.startedAt = c.k.Now()
	decode := c.cfg.FirmwareDecode
	if ok, stallUS := c.faults.FiresParam(fault.NVMCFirmwareStall); ok {
		// Firmware hangs on its core for the injected duration (param is
		// microseconds; default ~2 ms) before the decode completes. The
		// command is eventually served, so a patient driver sees only
		// latency; an impatient one times out and retries.
		if stallUS <= 0 {
			stallUS = 2000
		}
		decode += sim.Duration(stallUS) * sim.Microsecond
		c.stats.FirmwareStalls++
	}
	c.k.Schedule(sim.Duration(c.windowEnd.Sub(c.k.Now()))+decode, func() {
		c.dispatch(f, cmd)
	})
}

// dispatch steers a decoded command into its pipeline.
func (c *Controller) dispatch(f *cmdFSM, cmd cp.Command) {
	f.cur = cmd
	switch cmd.Opcode {
	case cp.OpCachefill:
		c.stats.Cachefills++
		f.state = engWaitNAND
		c.ftl.ReadPage(int64(cmd.NANDPage), func(data []byte, err error) {
			if err != nil {
				c.fail(f, err)
				return
			}
			f.buf = data
			// DMA setup, then the next window may move the data.
			c.k.Schedule(c.cfg.DMASetup, func() {
				f.state = engWriteData
				f.ready = true
			})
		})
	case cp.OpWriteback:
		c.stats.Writebacks++
		// DMA setup for the DRAM read; data moves in the next window.
		c.k.Schedule(c.cfg.DMASetup, func() {
			f.state = engReadData
			f.ready = true
		})
	case cp.OpCombined:
		c.stats.Combined++
		f.wbDone = false
		// Start the NAND read for the cachefill half immediately; the
		// writeback half's DRAM read is set up in parallel.
		nandReady := false
		c.ftl.ReadPage(int64(cmd.NANDPage), func(data []byte, err error) {
			if err != nil {
				c.fail(f, err)
				return
			}
			f.buf = data
			nandReady = true
			_ = nandReady
		})
		c.k.Schedule(c.cfg.DMASetup, func() {
			f.state = engReadData // writeback half first
			f.ready = true
		})
	case cp.OpFlushAll:
		c.k.Schedule(c.cfg.FirmwareDecode, func() {
			c.flushAll(func() {
				f.state = engAck
				f.ready = true
			})
		})
	default:
		c.fail(f, fmt.Errorf("nvmc: unknown opcode %v", cmd.Opcode))
	}
}

func (c *Controller) fail(f *cmdFSM, err error) {
	// Post an error ack so the driver does not spin forever.
	f.state = engAck
	f.ready = true
	f.cur.Opcode = cp.OpNone // marks error in postAck
}

// doWriteData moves the 4 KB buffer into the DRAM cache slot (cachefill data
// phase).
func (c *Controller) doWriteData(f *cmdFSM) {
	f.windowsUsed++
	if c.faults.Fires(fault.NVMCWindowOverrun) {
		// The FSM ran out of window mid-transfer and aborted; the state is
		// untouched so the next window retries the whole 4 KB move.
		c.stats.WindowOverruns++
		return
	}
	slot := f.cur.DRAMSlot
	addr := c.layout.SlotAddr(int(slot))
	if err := c.ch.NVMCAccess(addr, f.buf, false); err != nil {
		panic(fmt.Sprintf("nvmc: cachefill DMA: %v", err))
	}
	c.stats.BytesToDRAM += uint64(len(f.buf))
	if c.cfg.AckMergesWithData {
		c.postAck(f)
		return
	}
	// Ack in a later window, after firmware status update.
	f.ready = false
	c.k.Schedule(sim.Duration(c.windowEnd.Sub(c.k.Now()))+c.cfg.FirmwareDecode/2, func() {
		f.state = engAck
		f.ready = true
	})
}

// doReadData moves the 4 KB slot out of DRAM (writeback data phase) and
// hands it to the FTL.
func (c *Controller) doReadData(f *cmdFSM) {
	f.windowsUsed++
	if c.faults.Fires(fault.NVMCWindowOverrun) {
		c.stats.WindowOverruns++
		return
	}
	cmd := f.cur
	slot, page := cmd.DRAMSlot, cmd.NANDPage
	if cmd.Opcode == cp.OpCombined {
		slot, page = cmd.DRAMSlot2, cmd.NANDPage2
	}
	buf := make([]byte, PageSize)
	if err := c.ch.NVMCAccess(c.layout.SlotAddr(int(slot)), buf, true); err != nil {
		panic(fmt.Sprintf("nvmc: writeback DMA: %v", err))
	}
	c.stats.BytesFromDRAM += uint64(len(buf))

	advance := func() {
		if cmd.Opcode == cp.OpCombined {
			// Writeback half done; the cachefill half proceeds when the
			// NAND read has the buffer ready.
			f.wbDone = true
			f.ready = false
			f.state = engWaitNAND
			c.k.Schedule(c.cfg.DMASetup, func() {
				if f.buf != nil {
					f.state = engWriteData
					f.ready = true
				} else {
					// NAND read still in flight; ReadPage callback will
					// flip the state via the poll below.
					c.awaitNAND(f)
				}
			})
			return
		}
		if c.cfg.AckMergesWithData {
			c.postAck(f)
			return
		}
		f.ready = false
		// With AckAfterProgram, advance() runs from the program-completion
		// callback, which can land long after the refresh window this
		// command started in; the window wait is then already over.
		wait := sim.Duration(c.windowEnd.Sub(c.k.Now()))
		if wait < 0 {
			wait = 0
		}
		c.k.Schedule(wait+c.cfg.FirmwareDecode/2, func() {
			f.state = engAck
			f.ready = true
		})
	}

	if c.cfg.AckAfterProgram && cmd.Opcode == cp.OpWriteback {
		c.ftl.WritePage(int64(page), buf, func(err error) {
			if err != nil {
				// Ack not yet posted: surface the failure to the driver.
				c.fail(f, err)
				return
			}
			advance()
		})
		return
	}
	// Posted program: the controller's battery-backed buffer holds the data;
	// the program completes asynchronously. The ack has (or will have) been
	// posted by then, so a late failure cannot use the slot FSM — it is
	// only counted. The FTL's internal remap-and-rewrite makes this path
	// fire only after every remap attempt is exhausted.
	c.ftl.WritePage(int64(page), buf, func(err error) {
		if err != nil {
			c.stats.PostedProgramFails++
		}
	})
	advance()
}

// awaitNAND polls (on the firmware core) for the combined command's NAND
// buffer; cheap busy-wait at firmware granularity.
func (c *Controller) awaitNAND(f *cmdFSM) {
	if f.buf != nil {
		f.state = engWriteData
		f.ready = true
		return
	}
	c.k.Schedule(c.cfg.DMASetup, func() { c.awaitNAND(f) })
}

// postAck writes the ack word for f's command and recycles the slot.
func (c *Controller) postAck(f *cmdFSM) {
	status := cp.StatusDone
	if f.cur.Opcode == cp.OpNone {
		status = cp.StatusError
	}
	ack := cp.Ack{Phase: f.cur.Phase, Status: status}
	w := ack.EncodeAck()
	dropped := false
	if c.faults.Fires(fault.CPAckDrop) {
		// The 64 B ack write is lost in flight: the FSM completes its
		// bookkeeping (the firmware believes it acked) but the driver never
		// sees the word and must time out and re-issue.
		dropped = true
		c.stats.AcksDropped++
	} else if c.faults.Fires(fault.CPAckCorrupt) {
		// Flip one bit of the stored checksum byte: the ack still parses
		// (phase and status intact) but AckChecksumOK rejects it, so the
		// driver's deadline-and-reissue path must recover.
		w ^= 1 << uint(8+c.faults.Rand().Intn(8))
		c.stats.AcksCorrupted++
	}
	if !dropped {
		var word [8]byte
		putUint64(word[:], w)
		if err := c.ch.NVMCAccess(c.cpAddr(ackOffset(f.idx)), word[:], false); err != nil {
			panic(fmt.Sprintf("nvmc: ack write: %v", err))
		}
	}
	if c.Trace.Active() {
		c.Trace.Record(trace.Event{
			At: c.k.Now(), Kind: trace.KindCPAck,
			Slot: f.idx, Word: w, Word2: uint64(f.cur.Opcode),
			Windows: f.windowsUsed, Dropped: dropped,
		})
	}
	c.stats.AcksPosted++
	c.stats.cmdWindowsTotal += uint64(f.windowsUsed)
	c.stats.cmdsCompleted++
	if c.onComplete != nil {
		c.onComplete(f.cur, f.windowsUsed)
	}
	f.lastPhase = f.cur.Phase
	f.state = engIdle
	f.ready = false
	f.buf = nil
	f.wbDone = false
	// The firmware needs a moment before it polls again; by the next window
	// it is ready.
	c.k.Schedule(c.cfg.FirmwareDecode/2, func() { f.ready = true })
}

// cpAddr converts a CP-area offset to a DRAM address.
func (c *Controller) cpAddr(off int64) int64 { return c.layout.CPOffset + off }

// WarpEligible reports whether the controller is in the quiescent
// steady-state an idle-warp may skip over: window engine on, no fault
// registry (fault consults burn RNG/hit-counter state), every command slot
// idle and ready to poll, and every slot's CP word stale — so each warped
// window would have been an empty poll-only window. polls is the number of
// CP polls such a window performs (one per slot). The CP words are read
// through the DRAM's side-effect-free Peek so eligibility probing does not
// perturb device counters.
func (c *Controller) WarpEligible() (polls int, ok bool) {
	if !c.enabled || c.faults != nil {
		return 0, false
	}
	for _, f := range c.fsms {
		if !f.ready || f.state != engIdle {
			return 0, false
		}
		var word [16]byte
		if err := c.ch.Device().Peek(c.cpAddr(cmdOffset(f.idx)), word[:]); err != nil {
			return 0, false
		}
		cmd := cp.Decode(leUint64(word[0:8]), leUint64(word[8:16]))
		if cmd.Phase != f.lastPhase && cmd.Opcode != cp.OpNone {
			return 0, false // live command queued: the next window has real work
		}
	}
	return len(c.fsms), true
}

// WarpIdleWindows credits m poll-only extra-tRFC windows without running
// them, the last opened by a REF at rLast. Each window saw all slots idle,
// polled each once (stale words), and counted as used — exactly what
// runWindow does in the quiescent state WarpEligible verifies. Round-robin
// position advances one step per window as runWindow would.
func (c *Controller) WarpIdleWindows(m uint64, rLast sim.Time) {
	if m == 0 || !c.enabled {
		return
	}
	n := len(c.fsms)
	c.stats.WindowsSeen += m
	c.stats.WindowsUsed += m
	c.stats.Polls += m * uint64(n)
	dev := c.ch.Device()
	c.windowStart = rLast.Add(dev.Config().StandardTRFC)
	c.windowEnd = rLast.Add(dev.Config().Timing.TRFC).Add(-c.cfg.WindowGuard)
	c.windowRefAt = rLast
	c.rr = (c.rr + int(m%uint64(n))) % n
}

// flushAll persists every valid dirty slot per the metadata table; used for
// orderly shutdown through the CP opcode. The power-fail path is PowerFail.
func (c *Controller) flushAll(done func()) {
	c.flushFromMetadata(false, func(int, error) { done() })
}

// PowerFail runs the §V-C power-loss sequence: the firmware reads the
// DRAM-to-NAND mappings from the metadata area — ignoring the tRFC
// serialization rule, the host is dead — and stores every valid dirty slot
// into Z-NAND on battery power. done receives the number of pages flushed.
func (c *Controller) PowerFail(done func(flushed int, err error)) {
	c.enabled = false
	c.flushFromMetadata(true, done)
}

func (c *Controller) flushFromMetadata(bypassWindows bool, done func(int, error)) {
	meta := make([]byte, c.layout.MetaSize)
	// Direct device read: on power fail the serialization rule is void.
	if err := c.ch.Device().CopyOut(c.layout.MetaOffset, meta); err != nil {
		done(0, err)
		return
	}
	entries, err := cp.DecodeMeta(meta)
	if err != nil {
		done(0, fmt.Errorf("nvmc: metadata unreadable on power fail: %w", err))
		return
	}
	type flushItem struct {
		slot int
		page uint32
	}
	var todo []flushItem
	for slot, e := range entries {
		if e.Valid && e.Dirty {
			todo = append(todo, flushItem{slot: slot, page: e.NANDPage})
		}
	}
	flushed := 0
	var step func(i int)
	step = func(i int) {
		if i >= len(todo) {
			done(flushed, nil)
			return
		}
		e := todo[i]
		buf := make([]byte, PageSize)
		if err := c.ch.Device().CopyOut(c.layout.SlotAddr(e.slot), buf); err != nil {
			done(flushed, err)
			return
		}
		c.ftl.WritePage(int64(e.page), buf, func(err error) {
			if err != nil {
				done(flushed, err)
				return
			}
			flushed++
			step(i + 1)
		})
	}
	step(0)
}

func leUint64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
