package nvmc

import (
	"bytes"
	"testing"

	"nvdimmc/internal/bus"
	"nvdimmc/internal/cp"
	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/dram"
	"nvdimmc/internal/ftl"
	"nvdimmc/internal/hostmem"
	"nvdimmc/internal/imc"
	"nvdimmc/internal/nand"
	"nvdimmc/internal/refdet"
	"nvdimmc/internal/sim"
)

// rig is a minimal NVMC test bench: channel + iMC (refresh running) +
// detector + FTL + controller, no driver — tests speak raw CP protocol.
type rig struct {
	k      *sim.Kernel
	ch     *bus.Channel
	mc     *imc.Controller
	det    *refdet.Detector
	f      *ftl.FTL
	c      *Controller
	layout hostmem.Layout
	phase  bool
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	k := sim.NewKernel()
	dcfg := dram.DefaultConfig(ddr4.DDR4_1600)
	dcfg.Rows = 512
	dcfg.Timing.TRFC = 1250 * sim.Nanosecond
	dev := dram.New(k, dcfg)
	ch := bus.New(k, dev)
	imcCfg := imc.DefaultConfig()
	mc := imc.New(k, ch, imcCfg)
	det := refdet.New(k, dcfg.Timing.TCK)
	ch.AttachSnoop(det.Snoop())
	ncfg := nand.DefaultConfig()
	ncfg.InitialBadBlockPPM = 0
	ncfg.BlocksPerDie = 16
	ncfg.PagesPerBlock = 16
	arr := nand.New(k, ncfg)
	f := ftl.New(k, arr, ftl.DefaultConfig())
	layout, err := hostmem.NewLayout(dev.Capacity(), 64<<10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	c := New(k, ch, det, f, layout, cfg)
	mc.StartRefresh()
	return &rig{k: k, ch: ch, mc: mc, det: det, f: f, c: c, layout: layout}
}

// sendCP writes a command into the CP area and waits for the matching ack,
// returning the simulated duration from write to ack.
func (r *rig) sendCP(t *testing.T, cmd cp.Command) sim.Duration {
	t.Helper()
	r.phase = !r.phase
	cmd.Phase = r.phase
	var word [16]byte
	putUint64(word[0:8], cmd.Encode())
	putUint64(word[8:16], cmd.EncodeSecondary())
	start := r.k.Now()
	acked := false
	r.mc.Write(r.layout.CPOffset, word[:], nil)
	var poll func()
	poll = func() {
		buf := make([]byte, 8)
		r.mc.Read(r.layout.CPOffset+cp.AckOffset, buf, func() {
			ack := cp.DecodeAck(leUint64(buf))
			if ack.Phase == r.phase && ack.Status != cp.StatusIdle && ack.Status != cp.StatusBusy {
				acked = true
				return
			}
			r.k.Schedule(500*sim.Nanosecond, poll)
		})
	}
	poll()
	deadline := r.k.Now().Add(5 * sim.Millisecond)
	for !acked {
		if r.k.Now() > deadline || !r.k.Step() {
			t.Fatal("CP command never acked")
		}
	}
	return r.k.Now().Sub(start)
}

func TestCachefillMovesNANDToDRAM(t *testing.T) {
	r := newRig(t, DefaultConfig())
	want := bytes.Repeat([]byte{0xC3}, PageSize)
	wrote := false
	r.f.WritePage(7, want, func(err error) {
		if err != nil {
			t.Error(err)
		}
		wrote = true
	})
	r.k.RunWhile(func() bool { return !wrote })

	lat := r.sendCP(t, cp.Command{Opcode: cp.OpCachefill, DRAMSlot: 3, NANDPage: 7})
	got := make([]byte, PageSize)
	if err := r.ch.Device().CopyOut(r.layout.SlotAddr(3), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cachefill did not land NAND data in the slot")
	}
	// Latency quantized to refresh windows: >= 3 windows per §V-A.
	if lat < 3*ddr4.TREFI {
		t.Fatalf("cachefill in %v, below the 3-window floor (%v)", lat, 3*ddr4.TREFI)
	}
	if n := r.ch.CollisionCount(); n != 0 {
		t.Fatalf("collisions: %d", n)
	}
}

func TestWritebackMovesDRAMToNAND(t *testing.T) {
	r := newRig(t, DefaultConfig())
	want := bytes.Repeat([]byte{0x7E}, PageSize)
	if err := r.ch.Device().CopyIn(r.layout.SlotAddr(5), want); err != nil {
		t.Fatal(err)
	}
	r.sendCP(t, cp.Command{Opcode: cp.OpWriteback, DRAMSlot: 5, NANDPage: 9})
	// Let the posted program land.
	r.k.RunFor(2 * sim.Millisecond)
	var got []byte
	r.f.ReadPage(9, func(d []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got = d
	})
	r.k.RunWhile(func() bool { return got == nil })
	if !bytes.Equal(got, want) {
		t.Fatal("writeback did not persist slot data")
	}
	if n := r.ch.CollisionCount(); n != 0 {
		t.Fatalf("collisions: %d", n)
	}
}

func TestCombinedCommand(t *testing.T) {
	r := newRig(t, DefaultConfig())
	fill := bytes.Repeat([]byte{0xAB}, PageSize)
	evict := bytes.Repeat([]byte{0xCD}, PageSize)
	wrote := false
	r.f.WritePage(2, fill, func(error) { wrote = true })
	r.k.RunWhile(func() bool { return !wrote })
	if err := r.ch.Device().CopyIn(r.layout.SlotAddr(4), evict); err != nil {
		t.Fatal(err)
	}
	r.sendCP(t, cp.Command{
		Opcode: cp.OpCombined,
		// Primary = cachefill target, secondary = writeback source.
		DRAMSlot: 4, NANDPage: 2,
		DRAMSlot2: 4, NANDPage2: 3,
	})
	r.k.RunFor(2 * sim.Millisecond)
	got := make([]byte, PageSize)
	if err := r.ch.Device().CopyOut(r.layout.SlotAddr(4), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fill) {
		t.Fatal("combined: cachefill half did not land")
	}
	var nandGot []byte
	r.f.ReadPage(3, func(d []byte, _ error) { nandGot = d })
	r.k.RunWhile(func() bool { return nandGot == nil })
	if !bytes.Equal(nandGot, evict) {
		t.Fatal("combined: writeback half did not persist")
	}
	if r.c.Stats().Combined != 1 {
		t.Fatal("combined command not counted")
	}
}

func TestStalePhaseIgnored(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.sendCP(t, cp.Command{Opcode: cp.OpCachefill, DRAMSlot: 1, NANDPage: 1})
	fills := r.c.Stats().Cachefills
	// Leave the same phase in the CP area; the controller must not re-run.
	r.k.RunFor(200 * ddr4.TREFI)
	if got := r.c.Stats().Cachefills; got != fills {
		t.Fatalf("controller re-executed a stale command: %d -> %d", fills, got)
	}
}

func TestDisabledControllerIdles(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.c.SetEnabled(false)
	r.k.RunFor(100 * ddr4.TREFI)
	if r.c.Stats().WindowsSeen != 0 {
		t.Fatal("disabled controller entered windows")
	}
}

func TestWindowBudgetRespected(t *testing.T) {
	r := newRig(t, DefaultConfig())
	for i := 0; i < 5; i++ {
		r.sendCP(t, cp.Command{Opcode: cp.OpCachefill, DRAMSlot: uint32(i), NANDPage: uint32(i)})
	}
	st := r.c.Stats()
	moved := st.BytesToDRAM + st.BytesFromDRAM
	if moved > uint64(r.c.cfg.MaxBytesPerWindow)*st.WindowsSeen {
		t.Fatalf("moved %d bytes in %d windows", moved, st.WindowsSeen)
	}
}

func TestCommandDepth2Pipelines(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CommandDepth = 2
	r := newRig(t, cfg)
	// Issue two commands into the two slots without waiting in between.
	acked := 0
	for i := 0; i < 2; i++ {
		i := i
		var word [16]byte
		c := cp.Command{Phase: true, Opcode: cp.OpCachefill, DRAMSlot: uint32(10 + i), NANDPage: uint32(i)}
		putUint64(word[0:8], c.Encode())
		r.mc.Write(r.layout.CPOffset+int64(128*i), word[:], nil)
		var poll func()
		poll = func() {
			buf := make([]byte, 8)
			r.mc.Read(r.layout.CPOffset+int64(128*i+64), buf, func() {
				ack := cp.DecodeAck(leUint64(buf))
				if ack.Phase && ack.Status == cp.StatusDone {
					acked++
					return
				}
				r.k.Schedule(sim.Microsecond, poll)
			})
		}
		poll()
	}
	deadline := r.k.Now().Add(10 * sim.Millisecond)
	for acked < 2 && r.k.Now() < deadline {
		r.k.Step()
	}
	if acked != 2 {
		t.Fatalf("depth-2: only %d/2 commands acked", acked)
	}
	if r.c.Stats().Cachefills != 2 {
		t.Fatalf("cachefills = %d", r.c.Stats().Cachefills)
	}
}

func TestPowerFailFlushesDirtyMetadata(t *testing.T) {
	r := newRig(t, DefaultConfig())
	// Hand-author a metadata table: slot 2 dirty+valid -> NAND page 6.
	entries := make([]cp.MetaEntry, r.layout.NumSlots)
	entries[2] = cp.MetaEntry{NANDPage: 6, Dirty: true, Valid: true}
	entries[3] = cp.MetaEntry{NANDPage: 7, Dirty: false, Valid: true} // clean: skip
	meta := make([]byte, r.layout.MetaSize)
	if err := cp.EncodeMeta(meta, entries); err != nil {
		t.Fatal(err)
	}
	if err := r.ch.Device().CopyIn(r.layout.MetaOffset, meta); err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x66}, PageSize)
	if err := r.ch.Device().CopyIn(r.layout.SlotAddr(2), want); err != nil {
		t.Fatal(err)
	}
	flushed := -1
	r.c.PowerFail(func(n int, err error) {
		if err != nil {
			t.Error(err)
		}
		flushed = n
	})
	r.k.RunWhile(func() bool { return flushed < 0 })
	if flushed != 1 {
		t.Fatalf("flushed %d pages, want 1 (only the dirty one)", flushed)
	}
	var got []byte
	r.f.ReadPage(6, func(d []byte, _ error) { got = d })
	r.k.RunWhile(func() bool { return got == nil })
	if !bytes.Equal(got, want) {
		t.Fatal("power-fail flush lost data")
	}
}

func TestPowerFailCorruptMetadata(t *testing.T) {
	r := newRig(t, DefaultConfig())
	// Garbage metadata must be detected, not replayed.
	junk := bytes.Repeat([]byte{0x42}, int(r.layout.MetaSize))
	if err := r.ch.Device().CopyIn(r.layout.MetaOffset, junk); err != nil {
		t.Fatal(err)
	}
	var gotErr error
	doneF := false
	r.c.PowerFail(func(_ int, err error) { gotErr = err; doneF = true })
	r.k.RunWhile(func() bool { return !doneF })
	if gotErr == nil {
		t.Fatal("corrupt metadata accepted on power fail")
	}
}

func TestErrorAckOnBadPage(t *testing.T) {
	r := newRig(t, DefaultConfig())
	// NAND page beyond the FTL's logical space -> error ack, not a hang.
	r.phase = !r.phase
	c := cp.Command{Phase: r.phase, Opcode: cp.OpCachefill, DRAMSlot: 1, NANDPage: 1 << 30}
	var word [16]byte
	putUint64(word[0:8], c.Encode())
	r.mc.Write(r.layout.CPOffset, word[:], nil)
	var st cp.Status
	got := false
	var poll func()
	poll = func() {
		buf := make([]byte, 8)
		r.mc.Read(r.layout.CPOffset+cp.AckOffset, buf, func() {
			ack := cp.DecodeAck(leUint64(buf))
			if ack.Phase == r.phase && ack.Status != cp.StatusIdle {
				st, got = ack.Status, true
				return
			}
			r.k.Schedule(sim.Microsecond, poll)
		})
	}
	poll()
	deadline := r.k.Now().Add(10 * sim.Millisecond)
	for !got && r.k.Now() < deadline {
		r.k.Step()
	}
	if !got {
		t.Fatal("no ack for failing command")
	}
	if st != cp.StatusError {
		t.Fatalf("status = %v, want error", st)
	}
}

func Test8KBWindowMovesTwoPages(t *testing.T) {
	// With MaxBytesPerWindow=8192 and two command slots holding data-phase
	// work, one window can move both pages (§VII-C item 3).
	cfg := DefaultConfig()
	cfg.CommandDepth = 2
	cfg.MaxBytesPerWindow = 8192
	cfg.AckMergesWithData = true
	r := newRig(t, cfg)
	// Preload two NAND pages.
	for p := int64(0); p < 2; p++ {
		wrote := false
		r.f.WritePage(p, bytes.Repeat([]byte{byte(p + 1)}, PageSize), func(error) { wrote = true })
		r.k.RunWhile(func() bool { return !wrote })
	}
	// Issue two cachefills into both slots without waiting.
	for i := 0; i < 2; i++ {
		c := cp.Command{Phase: true, Opcode: cp.OpCachefill, DRAMSlot: uint32(20 + i), NANDPage: uint32(i)}
		var word [16]byte
		putUint64(word[0:8], c.Encode())
		r.mc.Write(r.layout.CPOffset+int64(128*i), word[:], nil)
	}
	r.k.RunFor(2 * sim.Millisecond)
	st := r.c.Stats()
	if st.Cachefills != 2 {
		t.Fatalf("cachefills = %d, want 2", st.Cachefills)
	}
	// Both 4 KB transfers must respect the per-window byte budget.
	if st.BytesToDRAM > 8192*st.WindowsSeen {
		t.Fatalf("budget exceeded: %d bytes in %d windows", st.BytesToDRAM, st.WindowsSeen)
	}
	// And the data landed.
	for i := 0; i < 2; i++ {
		got := make([]byte, PageSize)
		if err := r.ch.Device().CopyOut(r.layout.SlotAddr(20+i), got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i+1) {
			t.Fatalf("slot %d holds %#x", 20+i, got[0])
		}
	}
	if n := r.ch.CollisionCount(); n != 0 {
		t.Fatalf("collisions: %d", n)
	}
}
