// Multi-tenant QoS: token-bucket admission policing, deficit-round-robin
// (DRR) dispatch, and per-tenant SLO tracking. The request plane threads a
// Tenant index through every request, but before this file dispatch was
// tenant-blind: one zipfian-hot tenant could fill every queue and collapse
// the tail for everyone sharing the socket — the noisy-neighbor failure mode
// the pmem characterization literature documents on real hardware. QoS makes
// interference a configured, bounded quantity instead:
//
//   - Token buckets (rate + burst, per tenant) police admission *before* the
//     existing policies: a request arriving to an empty bucket is refused
//     synchronously with typed ErrTenantThrottled — a terminal, conserved
//     outcome like a shed, not a queued-then-dropped one. Buckets refill at
//     epoch boundaries only (one deterministic float addition per tenant per
//     epoch, canonical tenant order, replayed identically by the quiet-batch
//     scheduler), so policing is byte-identical at any worker count.
//
//   - DRR replaces the FIFO held-list drain at each channel: with isolation
//     on, every admitted fragment waits in its tenant's per-channel FIFO, and
//     the queue refill visits tenants round-robin, granting quantum x weight
//     byte credits per visit and admitting fragments while credit lasts.
//     A tenant's deficit resets when its FIFO empties — no credit hoarding —
//     so an idle tenant's unused share redistributes to whoever has work
//     (work conservation; the property tests pin both).
//
//   - Per-tenant latency histograms, meters and outcome counters ride the
//     metrics Merge primitives, with a per-tenant p99 SLO target and both an
//     online violation counter and a final-percentile verdict.
//
// All of it is strictly opt-in: with Config.QoS zero the pool runs the exact
// legacy byte path.
package pool

import (
	"errors"
	"fmt"
	"math"

	"nvdimmc/internal/metrics"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/openloop"
)

// ErrTenantThrottled: the tenant's token bucket was empty at admission; the
// request was refused synchronously (terminal, typed, conserved).
var ErrTenantThrottled = errors.New("pool: tenant over token-bucket rate, request throttled")

// TenantQoS configures one tenant's service contract, index-matched to the
// generator's tenant indexes (openloop.Config.Tenants).
type TenantQoS struct {
	Name string
	// Weight is the tenant's DRR service share (default 1). Each round-robin
	// visit grants the tenant QuantumBytes x Weight byte credits.
	Weight float64
	// RatePerSec is the token-bucket refill rate in requests per simulated
	// second; zero leaves the tenant unpoliced (no bucket).
	RatePerSec float64
	// Burst is the bucket depth in requests (default 8 when rate-limited):
	// the largest back-to-back run admitted from a full bucket.
	Burst int
	// SLOP99 is the tenant's target p99 latency; zero disables SLO tracking.
	SLOP99 sim.Duration
}

// QoSConfig is the pool's multi-tenant QoS block. The zero value disables
// everything (the legacy tenant-blind path, byte-identical to before).
type QoSConfig struct {
	// Tenants enables per-tenant accounting. Requests whose Tenant index
	// falls outside the slice are tracked under an internal catch-all with
	// weight 1 and no bucket.
	Tenants []TenantQoS
	// Isolation arms enforcement: token buckets gate admission and DRR
	// replaces the FIFO held-list drain. Off, tenants are tracked but
	// scheduled exactly as before.
	Isolation bool
	// QuantumBytes is the DRR byte credit granted per weight unit per visit
	// (default 4096 — one page, so equal-weight tenants alternate pages and
	// a 2 MB stripe fragment costs 512 visits of accumulated credit).
	QuantumBytes int
}

func (q *QoSConfig) enabled() bool { return len(q.Tenants) > 0 }

// validate normalizes defaults in place and rejects degenerate contracts.
func (q *QoSConfig) validate() error {
	if q.Isolation && len(q.Tenants) == 0 {
		return fmt.Errorf("pool: QoS isolation armed with no tenants")
	}
	if q.QuantumBytes < 0 {
		return fmt.Errorf("pool: QoS quantum %d B negative", q.QuantumBytes)
	}
	if q.QuantumBytes == 0 {
		q.QuantumBytes = 4096
	}
	for i := range q.Tenants {
		t := &q.Tenants[i]
		if t.Weight < 0 || math.IsNaN(t.Weight) || math.IsInf(t.Weight, 0) {
			return fmt.Errorf("pool: QoS tenant %d weight %v is not a share (zero defaults to 1)", i, t.Weight)
		}
		if t.Weight == 0 {
			t.Weight = 1
		}
		if int64(t.Weight*float64(q.QuantumBytes)) < 1 {
			return fmt.Errorf("pool: QoS tenant %d weight %v x quantum %d rounds below one byte credit per visit",
				i, t.Weight, q.QuantumBytes)
		}
		if t.RatePerSec < 0 || math.IsNaN(t.RatePerSec) || math.IsInf(t.RatePerSec, 0) {
			return fmt.Errorf("pool: QoS tenant %d rate %v req/s is not a rate (zero disables the bucket)", i, t.RatePerSec)
		}
		if t.Burst < 0 {
			return fmt.Errorf("pool: QoS tenant %d burst %d negative", i, t.Burst)
		}
		if t.Burst == 0 && t.RatePerSec > 0 {
			t.Burst = 8
		}
		if t.SLOP99 < 0 {
			return fmt.Errorf("pool: QoS tenant %d SLO p99 %d ps negative (zero disables tracking)", i, int64(t.SLOP99))
		}
	}
	return nil
}

// QoSFromTenants derives a pool QoS block from an openloop tenant list's
// QoS fields (QoSWeight / LimitPerSec / Burst / SLOP99), so an experiment
// configures each tenant's traffic and contract in one place.
func QoSFromTenants(tenants []openloop.Tenant, isolation bool) QoSConfig {
	q := QoSConfig{Isolation: isolation}
	for _, t := range tenants {
		q.Tenants = append(q.Tenants, TenantQoS{
			Name:       t.Name,
			Weight:     t.QoSWeight,
			RatePerSec: t.LimitPerSec,
			Burst:      t.Burst,
			SLOP99:     t.SLOP99,
		})
	}
	return q
}

// tenantState is one tenant's runtime QoS state, boundary-only like all
// cross-member state. The pool keeps len(Tenants)+1 of these: the last is
// the catch-all for out-of-range tenant indexes.
type tenantState struct {
	cfg    TenantQoS
	tokens float64 // current bucket level, in requests
	refill float64 // tokens added per epoch (0: unpoliced)
	burst  float64 // bucket cap

	lat   *metrics.Histogram
	meter *metrics.Meter

	completed uint64
	throttled uint64
	shed      uint64
	expired   uint64
	failed    uint64
	// overSLO counts completions (online, as they land) slower than the
	// tenant's SLOP99 target — the running violation counter; the final
	// verdict compares the whole histogram's p99 against the target.
	overSLO uint64
}

// tenantQueue is one tenant's per-channel admission FIFO plus its DRR
// credit state.
type tenantQueue struct {
	fifo    []*fragment
	deficit int64 // accumulated byte credit, reset when fifo empties
	quantum int64 // byte credit granted per round-robin visit
}

// initQoS builds the runtime tenant states (and, under isolation, each
// channel's per-tenant FIFOs). Called at the end of New, after epoch0 and
// the channel states exist.
func (p *Pool) initQoS() {
	q := &p.Cfg.QoS
	if !q.enabled() {
		return
	}
	epochSec := float64(p.Cfg.Epoch) / float64(sim.Second)
	p.qosT = make([]tenantState, len(q.Tenants)+1)
	for i := range q.Tenants {
		t := q.Tenants[i]
		ts := &p.qosT[i]
		ts.cfg = t
		if t.RatePerSec > 0 {
			ts.refill = t.RatePerSec * epochSec
			ts.burst = float64(t.Burst)
			ts.tokens = ts.burst // buckets open full
		}
		ts.lat = metrics.NewHistogram()
		ts.meter = metrics.NewMeter(p.epoch0)
	}
	other := &p.qosT[len(q.Tenants)]
	other.cfg = TenantQoS{Name: "(other)", Weight: 1}
	other.lat = metrics.NewHistogram()
	other.meter = metrics.NewMeter(p.epoch0)
	if !q.Isolation {
		return
	}
	for _, ch := range p.chans {
		ch.tq = make([]tenantQueue, len(p.qosT))
		for i := range ch.tq {
			ch.tq[i].quantum = int64(p.qosT[i].cfg.Weight * float64(q.QuantumBytes))
		}
	}
}

// qosTenant resolves a request's tenant index to its QoS state (nil when
// QoS tracking is off; the catch-all for out-of-range indexes).
func (p *Pool) qosTenant(t int) *tenantState {
	if len(p.qosT) == 0 {
		return nil
	}
	if t < 0 || t >= len(p.qosT)-1 {
		return &p.qosT[len(p.qosT)-1]
	}
	return &p.qosT[t]
}

// qosIndex maps a request's tenant index to its per-channel FIFO slot.
func (p *Pool) qosIndex(t int) int {
	if t < 0 || t >= len(p.qosT)-1 {
		return len(p.qosT) - 1
	}
	return t
}

// admitBucket charges one token for an admission, reporting false when the
// bucket is empty (the request must be throttled). Unpoliced tenants always
// admit.
func (ts *tenantState) admitBucket() bool {
	if ts.refill <= 0 {
		return true
	}
	if ts.tokens < 1 {
		return false
	}
	ts.tokens--
	return true
}

// refillTokens adds each policed tenant's per-epoch allotment, capped at its
// burst depth. Runs once per epoch at the boundary — step() on the naive
// path, and once per replayed epoch inside stepQuiet — in canonical tenant
// order, so the float addition sequence (and therefore every admission
// decision that reads it) is identical at any worker count and under the
// lookahead scheduler. Refilling is pure accumulation: it never creates a
// cross-member event, so it bounds no quiet horizon.
func (p *Pool) refillTokens() {
	for i := range p.qosT {
		ts := &p.qosT[i]
		if ts.refill <= 0 {
			continue
		}
		ts.tokens += ts.refill
		if ts.tokens > ts.burst {
			ts.tokens = ts.burst
		}
	}
}

// held returns the channel's admission-held fragment count across the
// tenant-blind pending list and (under isolation) every tenant FIFO.
func (ch *channelState) held() int {
	n := len(ch.pending)
	for i := range ch.tq {
		n += len(ch.tq[i].fifo)
	}
	return n
}

// fillDRR refills the dispatch queue from the per-tenant held FIFOs by
// deficit round robin: each visit grants the tenant its quantum (bytes x
// weight) of credit and admits head fragments while credit covers their
// byte cost; an emptied FIFO forfeits its remaining credit (no hoarding),
// which is exactly what redistributes an idle tenant's share — the round
// robin simply skips it and the busy tenants' visits come around sooner.
// The round pointer persists across epochs so short refills stay fair.
//
// A visit can also be cut short by queue room rather than credit (the
// refill variant of DRR's blocked link). The pointer must then STAY on the
// interrupted tenant and the next refill must resume without a fresh
// quantum — advancing past it would hand tenants later in pointer order
// only the leftover room every epoch, starving exactly the heavy weights
// the quantum is meant to protect.
func (p *Pool) fillDRR(ch *channelState) {
	active := 0
	for i := range ch.tq {
		active += len(ch.tq[i].fifo)
	}
	n := len(ch.tq)
	for active > 0 && len(ch.queue) < p.Cfg.QueueCap {
		tq := &ch.tq[ch.drrNext]
		mid := ch.drrMid
		ch.drrMid = false
		if len(tq.fifo) == 0 {
			tq.deficit = 0
			ch.drrNext = (ch.drrNext + 1) % n
			continue
		}
		if !mid {
			tq.deficit += tq.quantum
		}
		for len(tq.fifo) > 0 && len(ch.queue) < p.Cfg.QueueCap {
			f := tq.fifo[0]
			cost := int64(f.n)
			if tq.deficit < cost {
				break
			}
			tq.deficit -= cost
			tq.fifo = tq.fifo[1:]
			active--
			ch.queue = append(ch.queue, f)
			ch.ctr.Inc("frags-admitted")
		}
		switch {
		case len(tq.fifo) == 0:
			tq.deficit = 0
		case tq.deficit >= int64(tq.fifo[0].n):
			// Credit still covers the head, so only queue room stopped
			// the visit: resume here next refill, quantum already spent.
			ch.drrMid = true
			return
		}
		ch.drrNext = (ch.drrNext + 1) % n
	}
}

// TenantStats is one tenant's QoS view in Stats.
type TenantStats struct {
	Name   string
	Weight float64
	// RatePerSec / Burst echo the bucket contract (0: unpoliced).
	RatePerSec float64
	Burst      int
	// SLOP99 is the target p99 (0: untracked).
	SLOP99 sim.Duration
	// Lat holds the tenant's completed-request latencies; Meter its
	// completed bytes over the measurement span.
	Lat   *metrics.Histogram
	Meter *metrics.Meter

	Completed uint64
	// Throttled counts requests refused at admission by the tenant's token
	// bucket (typed ErrTenantThrottled, terminal).
	Throttled uint64
	Shed      uint64
	Expired   uint64
	Failed    uint64
	// OverSLO is the online count of completions slower than SLOP99.
	OverSLO uint64
}

// P99 returns the tenant's completed-request p99.
func (t TenantStats) P99() sim.Duration { return t.Lat.Percentile(99) }

// SLOViolated reports whether the tenant's final p99 exceeds its target
// (always false for untracked tenants).
func (t TenantStats) SLOViolated() bool {
	return t.SLOP99 > 0 && t.Lat.Percentile(99) > t.SLOP99
}

// tenantStats exports the per-tenant view (configured tenants only — the
// internal catch-all is excluded; its traffic still counts in the pool
// aggregates and the conservation equation).
func (p *Pool) tenantStats() []TenantStats {
	if len(p.qosT) == 0 {
		return nil
	}
	out := make([]TenantStats, len(p.qosT)-1)
	for i := range out {
		ts := &p.qosT[i]
		out[i] = TenantStats{
			Name:       ts.cfg.Name,
			Weight:     ts.cfg.Weight,
			RatePerSec: ts.cfg.RatePerSec,
			Burst:      ts.cfg.Burst,
			SLOP99:     ts.cfg.SLOP99,
			Lat:        ts.lat,
			Meter:      ts.meter,
			Completed:  ts.completed,
			Throttled:  ts.throttled,
			Shed:       ts.shed,
			Expired:    ts.expired,
			Failed:     ts.failed,
			OverSLO:    ts.overSLO,
		}
	}
	return out
}

// checkQoSConservation asserts that every terminal outcome was attributed to
// exactly one tenant: the per-tenant counters (catch-all included) must sum
// to the pool's terminal total, outcome by outcome.
func (p *Pool) checkQoSConservation() error {
	if len(p.qosT) == 0 {
		return nil
	}
	var completed, throttled, shed, expired, failed uint64
	for i := range p.qosT {
		ts := &p.qosT[i]
		completed += ts.completed
		throttled += ts.throttled
		shed += ts.shed
		expired += ts.expired
		failed += ts.failed
	}
	if completed != p.completed || throttled != p.throttled ||
		shed != p.shed || expired != p.expired || failed != p.failed {
		return fmt.Errorf("pool: per-tenant outcomes (completed %d throttled %d shed %d expired %d failed %d) do not sum to pool totals (%d %d %d %d %d)",
			completed, throttled, shed, expired, failed,
			p.completed, p.throttled, p.shed, p.expired, p.failed)
	}
	return nil
}
