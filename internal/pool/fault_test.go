package pool

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"nvdimmc/internal/fault"
	"nvdimmc/internal/nvdc"
	"nvdimmc/internal/workload/openloop"
)

// faultFootprint returns a pooled footprint about twice the cache-resident
// region (capped at capacity): fault campaigns need cache misses, because a
// fully resident workload never touches NAND or the CP transport — the
// fault sites would never be consulted.
func faultFootprint(p *Pool) int64 {
	foot := 2 * p.CachedFootprint()
	if foot > p.Capacity() {
		foot = p.Capacity()
	}
	return foot - foot%p.Cfg.Interleave
}

// fullSnapshot extends snapshot() with every fault-tolerance observable:
// the faulted byte-identity test compares these across worker counts.
func fullSnapshot(s Stats) string {
	var b strings.Builder
	b.WriteString(snapshot(s))
	first := "<nil>"
	if s.FirstFailure != nil {
		first = s.FirstFailure.Error()
	}
	fmt.Fprintf(&b, "fault failed=%d win=%d wrfailed=%d postq=%d quar=%d evac=%d spares=%d first=%q\n",
		s.Failed, s.WritesIn, s.WritesFailed, s.PostQuarantineDispatches,
		s.Quarantined, s.Evacuated, s.SparesUsed, first)
	fmt.Fprintf(&b, "rebuildlat n=%d p99=%v\n", s.LatRebuild.Count(), s.LatRebuild.Percentile(99))
	for i, m := range s.PerMember {
		fmt.Fprintf(&b, "m%d state=%v spare=%v svc=%v log=%d mode=%v derr=%d ferr=%d reason=%q\n",
			i, m.State, m.Spare, m.InService, m.Logical, m.Mode, m.DriverErrors, m.FragErrors, m.Reason)
	}
	for i, ch := range s.PerChannel {
		fmt.Fprintf(&b, "brk%d %s\n", i, ch.Breaker)
	}
	return b.String()
}

// TestPoolReadOnlyMidRunSurfacesTypedError is the satellite regression: a
// member driver flipping to read-only mid-run used to panic the pooled
// scheduler out of Do's legacy no-error path (or, with panics swallowed,
// wedge the window). Now every affected request must terminate with a typed
// ErrPoolDegraded chain, the sick member must be quarantined, and the pool's
// books must balance.
func TestPoolReadOnlyMidRunSurfacesTypedError(t *testing.T) {
	p := newTestPool(t, 2, 1, 1, 4096, func(c *Config) {
		c.Member.NVMC.AckAfterProgram = true // surface program failures to the driver
		// The auditor does not model deferred program acks under pipelined
		// load (it flags them as duplicated acks), so it is off here.
		c.Member.Audit = false
		c.ArmFaults = func(member int, g *fault.Registry) {
			if member == 0 {
				g.Always(fault.NANDProgramFail) // first writeback fails hard -> ReadOnly
			}
		}
	})
	gcfg := openloop.Config{
		Seed: 21, RatePerSec: 2e6,
		Tenants: []openloop.Tenant{
			{Name: "wr", Dist: openloop.Uniform, ReadPct: -1, Footprint: faultFootprint(p)},
		},
	}
	gen, err := openloop.New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunOpenLoop(gen, 250); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Failed == 0 {
		t.Fatal("no request failed despite a read-only member and no spare")
	}
	if s.Completed+s.Failed != s.Submitted {
		t.Fatalf("accounting: %d completed + %d failed != %d submitted", s.Completed, s.Failed, s.Submitted)
	}
	if !errors.Is(s.FirstFailure, ErrPoolDegraded) {
		t.Fatalf("first failure %v does not wrap ErrPoolDegraded", s.FirstFailure)
	}
	if !errors.Is(s.FirstFailure, nvdc.ErrReadOnly) && !errors.Is(s.FirstFailure, ErrMemberQuarantined) {
		t.Fatalf("first failure %v carries neither nvdc.ErrReadOnly nor ErrMemberQuarantined", s.FirstFailure)
	}
	if st := s.PerMember[0].State; st != StateQuarantined {
		t.Fatalf("member 0 state %v, want quarantined (no spare to evacuate to)", st)
	}
	if s.Ctr.Get("member-quarantine") != 1 {
		t.Fatalf("member-quarantine = %d, want 1", s.Ctr.Get("member-quarantine"))
	}
	if s.Ctr.Get("frags-rejected") == 0 {
		t.Fatal("no fragment was typed-rejected after quarantine")
	}
	if s.Ctr.Get("failover-no-spare") != 1 {
		t.Fatalf("failover-no-spare = %d, want 1", s.Ctr.Get("failover-no-spare"))
	}
}

// TestPoolQuarantineFailoverRebuild drives the full tentpole path: a member
// goes read-only, the probe quarantines it, its logical position fails over
// to the hot spare, the background rebuild copies the victim's resident set
// across, and the victim ends Evacuated — all while the pool keeps serving
// and loses no acked write.
func TestPoolQuarantineFailoverRebuild(t *testing.T) {
	p := newTestPool(t, 2, 1, 2, 4096, func(c *Config) {
		c.Spares = 1
		c.Member.NVMC.AckAfterProgram = true
		c.Member.Audit = false
		c.ArmFaults = func(member int, g *fault.Registry) {
			if member == 0 {
				g.Always(fault.NANDProgramFail)
			}
		}
	})
	gcfg := openloop.Config{
		Seed: 33, RatePerSec: 1.5e6,
		Tenants: []openloop.Tenant{
			{Name: "mix", Dist: openloop.Uniform, ReadPct: 50, Footprint: faultFootprint(p)},
		},
	}
	gen, err := openloop.New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunOpenLoop(gen, 300); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.SparesUsed != 1 || s.Ctr.Get("failover") != 1 {
		t.Fatalf("spares used %d, failover ctr %d, want 1/1", s.SparesUsed, s.Ctr.Get("failover"))
	}
	if st := s.PerMember[0].State; st != StateEvacuated {
		t.Fatalf("victim state %v, want evacuated", st)
	}
	spare := s.PerMember[len(s.PerMember)-1]
	if !spare.Spare || !spare.InService || spare.Logical != 0 {
		t.Fatalf("spare not serving logical 0: %+v", spare)
	}
	if s.Ctr.Get("member-evacuated") != 1 || s.Ctr.Get("rebuild-pages") == 0 {
		t.Fatalf("rebuild did not run to completion: evacuated=%d pages=%d",
			s.Ctr.Get("member-evacuated"), s.Ctr.Get("rebuild-pages"))
	}
	if s.PostQuarantineDispatches != 0 {
		t.Fatalf("%d fragments dispatched to the quarantined member", s.PostQuarantineDispatches)
	}
	if s.LatRebuild.Count() == 0 {
		t.Fatal("no foreground request completed during the rebuild window")
	}
	if s.WritesAcked+s.WritesFailed != s.WritesIn {
		t.Fatalf("acked-write loss: %d in, %d acked, %d typed-failed",
			s.WritesIn, s.WritesAcked, s.WritesFailed)
	}
	if s.Completed*10 < s.Submitted*9 {
		t.Fatalf("availability %d/%d below 90%% despite failover", s.Completed, s.Submitted)
	}
}

// TestPoolFaultedWorkerCountIdentical extends the pool's core determinism
// claim to a faulted run: hard failure + failover + rebuild on one member,
// probabilistic die timeouts on another, and the full fault-tolerance
// snapshot must still be byte-identical at 1, 2 and 8 workers.
func TestPoolFaultedWorkerCountIdentical(t *testing.T) {
	var snaps []string
	for _, workers := range []int{1, 2, 8} {
		p := newTestPool(t, 3, 1, workers, 4096, func(c *Config) {
			c.Spares = 1
			c.Member.NVMC.AckAfterProgram = true
			c.Member.Audit = false
			c.ArmFaults = func(member int, g *fault.Registry) {
				switch member {
				case 0:
					g.OnOccurrence(fault.NANDProgramFail, 3).Times(1 << 30)
				case 1:
					g.Prob(fault.NANDDieTimeout, 0.2).Param(400)
				}
			}
		})
		gcfg := openloop.Config{
			Seed: 77, RatePerSec: 1.5e6,
			Tenants: []openloop.Tenant{
				{Name: "mix", Dist: openloop.Uniform, ReadPct: 60, Footprint: faultFootprint(p)},
			},
		}
		gen, err := openloop.New(gcfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.RunOpenLoop(gen, 300); err != nil {
			t.Fatal(err)
		}
		if err := p.CheckHealth(); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, fullSnapshot(p.Stats()))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i] != snaps[0] {
			t.Fatalf("worker count changed faulted output:\n--- workers=1 ---\n%s--- variant %d ---\n%s",
				snaps[0], i, snaps[i])
		}
	}
}

// TestPoolBreakerTripsAndRecovers: a bounded burst of uncorrectable reads
// on the only member pushes the channel's failure rate over the trip
// threshold; the breaker opens, cools down, probes half-open, and closes on
// the success streak once the fault budget is exhausted.
func TestPoolBreakerTripsAndRecovers(t *testing.T) {
	p := newTestPool(t, 1, 1, 1, 4096, func(c *Config) {
		c.QuarantineFragErrs = 1 << 30 // isolate the breaker from quarantine
		c.MaxRetries = 8
		// Misses serialize on the lone member at ~10 epochs per completion,
		// so the window must span many epochs to gather MinSamples.
		c.BreakerWindow = 64
		c.BreakerMinSamples = 4
		c.BreakerErrRate = 0.3
		c.BreakerCooldown = 8
		c.BreakerCloseStreak = 4
		c.ArmFaults = func(member int, g *fault.Registry) {
			// A sustained burst of uncorrectable reads (~3-6 fires per failed
			// op) that outlasts a breaker window, then the media heals.
			g.OnOccurrence(fault.NANDReadBitFlip, 1).Times(300)
		}
	})
	// Full-capacity footprint: ~90% of reads miss, so nearly every op in the
	// fault burst fails and the trip threshold is reached within one window.
	gcfg := openloop.Config{
		Seed: 55, RatePerSec: 1e6,
		Tenants: []openloop.Tenant{
			{Name: "rd", Dist: openloop.Uniform, ReadPct: 100, Footprint: p.Capacity()},
		},
	}
	gen, err := openloop.New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunOpenLoop(gen, 300); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Ctr.Get("breaker-trip") == 0 {
		t.Fatalf("breaker never tripped (frag-errors=%d)", s.Ctr.Get("frag-errors"))
	}
	if s.Ctr.Get("breaker-close") == 0 {
		t.Fatal("breaker never closed after the fault burst ended")
	}
	if b := s.PerChannel[0].Breaker; b != "closed" {
		t.Fatalf("final breaker state %q, want closed", b)
	}
	if s.Completed+s.Failed != s.Submitted {
		t.Fatalf("accounting: %d + %d != %d", s.Completed, s.Failed, s.Submitted)
	}
}
