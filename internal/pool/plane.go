// Request plane: the pool's embeddable async front-end. PR 4 exposed the
// pool only through Run(next), a closed harness that pulls a generator and
// owns the epoch loop — fine for batch experiments, wrong for embedding: a
// trace replayer, a network service or a host-simulator backend needs to
// *push* requests, observe backpressure, and collect completions on its own
// schedule (the VANS add_rq/add_wq + operate() shape). This file is that
// surface: non-blocking Submit returning a request ID, Step advancing one
// epoch, Poll/Notify draining typed completion records, and occupancy
// queries for admission feedback. Run/RunOpenLoop are now thin loops over
// the same plane, so every workload generator rides it.
//
// # Overload robustness
//
// The PR-4 front end held every arrival at admission, unbounded ("never
// drop"): sustained offered load past capacity grew the held backlog without
// limit while each request eventually "succeeded" uselessly late. The plane
// makes overload a first-class, typed outcome instead:
//
//   - Deadlines. A request may carry a budget (openloop.Request.Deadline,
//     relative to its arrival). Expiry is evaluated only at epoch boundaries
//     in canonical channel order — the same single-threaded instants as all
//     cross-member state — so deadline handling is byte-identical at any
//     worker count. A fragment still waiting (held, queued or in retry
//     backoff) past its request's deadline is removed and the request fails
//     typed ErrDeadlineExceeded; fragments already in flight complete and
//     the request is counted late, never lost. The retry path refuses to arm
//     a backoff whose earliest completion lands past the deadline: it fails
//     immediately instead of burning backoff epochs.
//
//   - Admission shedding. Four policies: AdmitBlock (the PR-4 behavior,
//     unbounded holds), AdmitShedNewest and AdmitShedOldest (bounded holds
//     at PendingCap fragments per channel, dropping the newest arrival or
//     displacing the oldest held request), and AdmitDeadlineAware
//     (shed-newest bounds plus a feasibility check: shed on admission when
//     the estimated queue wait, from a per-channel service-interval EWMA,
//     already exceeds the request's remaining budget). Sheds are typed
//     ErrAdmissionFull. Under pressure writes shed before reads: a write is
//     held only to PendingCap/2, and a channel whose breaker is not closed
//     sheds writes at admission outright while still holding reads — the
//     degraded channel prefers serving reads over queueing writes it cannot
//     promptly land.
//
// Every terminal outcome is conserved: submitted = completed + shed +
// expired + typed-failed, and writes in = acked + shed + expired +
// typed-failed (CheckHealth asserts both) — an acked write is never lost
// and nothing disappears silently, no matter how hard the plane is pushed.
package pool

import (
	"errors"
	"fmt"

	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/openloop"
)

// Typed overload sentinels, alongside the fault sentinels in health.go.
var (
	// ErrAdmissionFull: the request was shed at admission (bounded pending
	// under a shedding policy, deadline-infeasible under AdmitDeadlineAware,
	// or a shed-oldest victim displaced by a newer arrival).
	ErrAdmissionFull = errors.New("pool: admission full, request shed")
	// ErrDeadlineExceeded: the request's deadline passed while at least one
	// fragment was still waiting (held, queued, or in retry backoff), or a
	// retry could no longer complete inside the budget.
	ErrDeadlineExceeded = errors.New("pool: deadline exceeded")
)

// AdmissionPolicy selects how Submit responds to a full front end.
type AdmissionPolicy int

const (
	// AdmitBlock holds every arrival at admission, unbounded — the PR-4
	// behavior. Overload degrades into growing held latency, never drops.
	AdmitBlock AdmissionPolicy = iota
	// AdmitShedNewest bounds each channel's held backlog at PendingCap
	// fragments and sheds an incoming request when any of its target
	// channels is over (writes at PendingCap/2, and immediately when the
	// channel breaker is not closed).
	AdmitShedNewest
	// AdmitShedOldest admits the incoming request and displaces the oldest
	// held fragments' requests to make room, before each held append, so a
	// channel's held occupancy never exceeds PendingCap — not even
	// transiently (CheckHealth asserts the high-water mark). Victims fail
	// typed ErrAdmissionFull. Displacement is pure FIFO — no read/write
	// preference, and a request large enough to overflow a channel's cap by
	// itself starts displacing its own oldest fragments — deliberate: the
	// policy favors fresh traffic uniformly.
	AdmitShedOldest
	// AdmitDeadlineAware applies the AdmitShedNewest bounds, and additionally
	// sheds a deadlined request on admission when any target channel's
	// estimated queue wait (service-interval EWMA x backlog depth)
	// already exceeds the remaining budget.
	AdmitDeadlineAware
)

func (a AdmissionPolicy) String() string {
	switch a {
	case AdmitBlock:
		return "block"
	case AdmitShedNewest:
		return "shed-newest"
	case AdmitShedOldest:
		return "shed-oldest"
	case AdmitDeadlineAware:
		return "deadline-aware"
	}
	return fmt.Sprintf("AdmissionPolicy(%d)", int(a))
}

// ParseAdmissionPolicy maps the CLI spelling to a policy.
func ParseAdmissionPolicy(s string) (AdmissionPolicy, error) {
	switch s {
	case "block", "":
		return AdmitBlock, nil
	case "shed-newest":
		return AdmitShedNewest, nil
	case "shed-oldest":
		return AdmitShedOldest, nil
	case "deadline-aware":
		return AdmitDeadlineAware, nil
	}
	return AdmitBlock, fmt.Errorf("pool: unknown admission policy %q (want block | shed-newest | shed-oldest | deadline-aware)", s)
}

// Outcome classifies a terminal request.
type Outcome int

const (
	// OutcomeCompleted: every fragment succeeded (possibly past the
	// deadline; see Completion.Late).
	OutcomeCompleted Outcome = iota
	// OutcomeShed: dropped at or after admission by a shedding policy.
	OutcomeShed
	// OutcomeExpired: deadline passed before completion.
	OutcomeExpired
	// OutcomeFailed: typed failure (retries exhausted, member quarantined).
	OutcomeFailed
	// OutcomeThrottled: refused by the tenant's token bucket (qos.go).
	// Throttling is synchronous at Submit — the caller holds the typed
	// ErrTenantThrottled and no Completion record is produced — so the
	// outcome appears only if a future path retires a throttled request
	// asynchronously.
	OutcomeThrottled
)

func (o Outcome) String() string {
	switch o {
	case OutcomeCompleted:
		return "completed"
	case OutcomeShed:
		return "shed"
	case OutcomeExpired:
		return "expired"
	case OutcomeFailed:
		return "failed"
	case OutcomeThrottled:
		return "throttled"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Completion is one terminal request record, delivered in deterministic
// boundary order through Poll or Config.Notify. Requests shed synchronously
// at Submit produce no record — the caller already holds the typed error.
type Completion struct {
	ID      uint64
	Tenant  int
	Write   bool
	Outcome Outcome
	// Err carries the typed chain for Shed/Expired/Failed outcomes.
	Err error
	// At is the terminal instant (last fragment outcome).
	At sim.Time
	// Latency is At minus the request's arrival.
	Latency sim.Duration
	// Late marks a completed request that finished past its deadline;
	// Lateness is the overshoot.
	Late     bool
	Lateness sim.Duration
}

// ChannelOccupancy is one channel's backpressure view, for admission
// feedback and host-side flow control.
type ChannelOccupancy struct {
	// Held counts admission-held fragments (unbounded under AdmitBlock,
	// bounded by PendingCap under the shedding policies).
	Held int
	// Queued counts fragments in the bounded dispatch queue.
	Queued int
	// InFlight counts dispatched fragments not yet collected.
	InFlight int
	// Breaker is the channel breaker state (closed / open / half-open).
	Breaker string
	// ServiceEWMA is the smoothed per-fragment service interval (the
	// channel's long-run busy time per completed fragment) the
	// deadline-aware admission estimate uses (0 until the channel has
	// completed its first fragment).
	ServiceEWMA sim.Duration
}

// Submit offers one request to the plane at the current epoch boundary and
// returns its ID. It never blocks: under a shedding policy an over-capacity
// or deadline-infeasible request is rejected with a typed ErrAdmissionFull
// (the request is still counted — shed is a terminal outcome, part of the
// conservation equation). The plane is single-threaded by design: call
// Submit only between Steps, at the epoch boundary — the same instants the
// internal harnesses use.
func (p *Pool) Submit(r openloop.Request) (uint64, error) {
	return p.submitReq(r, true)
}

// Step advances the plane one epoch: boundary bookkeeping (deadline expiry,
// retry promotion, queue fill, rebuild issue) in canonical channel order,
// then every member kernel to the next boundary (in parallel when
// Cfg.Workers > 1), then completion collection, health probes and breaker
// ticks. Completions are delivered to Cfg.Notify (or retained for Poll) in
// deterministic order at the end of the step.
func (p *Pool) Step() { p.step() }

// Poll removes and returns up to max buffered completions (all when max <=
// 0). Records buffer only for plane-submitted requests when no Notify
// callback is configured.
func (p *Pool) Poll(max int) []Completion {
	if max <= 0 || max > len(p.completions) {
		max = len(p.completions)
	}
	if max == 0 {
		return nil
	}
	out := make([]Completion, max)
	copy(out, p.completions)
	n := copy(p.completions, p.completions[max:])
	p.completions = p.completions[:n]
	return out
}

// Now returns the current epoch-boundary instant — the arrival a front-end
// embedding the plane (the network service, a host simulator) should stamp
// on requests it admits "now". Between Steps the plane sits exactly on a
// boundary, so Now is stable until the next Step.
func (p *Pool) Now() sim.Time { return p.now }

// Origin returns the plane's first epoch boundary. Request arrivals
// (openloop.Request.Arrival) are durations relative to it, so a caller
// submitting at the current boundary passes Now().Sub(Origin()).
func (p *Pool) Origin() sim.Time { return p.epoch0 }

// Occupancy returns every channel's backpressure view, channel order.
func (p *Pool) Occupancy() []ChannelOccupancy {
	out := make([]ChannelOccupancy, len(p.chans))
	for i, ch := range p.chans {
		out[i] = ChannelOccupancy{
			Held:        ch.held(),
			Queued:      len(ch.queue),
			InFlight:    ch.inflight,
			Breaker:     ch.brk.state.String(),
			ServiceEWMA: ch.ewma,
		}
	}
	return out
}

// Backlog returns the total fragments not yet terminal: held + queued + in
// flight + waiting out retry backoff.
func (p *Pool) Backlog() int {
	n := len(p.retries)
	for _, ch := range p.chans {
		n += ch.held() + len(ch.queue) + ch.inflight
	}
	return n
}

// Quiesced reports whether every submitted request reached a terminal
// outcome and no background work (retries, rebuilds) remains.
func (p *Pool) Quiesced() bool {
	return p.terminal() == p.submitted && p.Backlog() == 0 && len(p.rebuilds) == 0
}

// Drain steps the plane until it quiesces (or the MaxEpochs guard trips),
// batching provably-quiet spans (retry backoffs waiting out their epochs)
// through the lookahead scheduler.
func (p *Pool) Drain() error {
	for !p.Quiesced() {
		if p.epochs >= p.Cfg.MaxEpochs {
			return fmt.Errorf("pool: %d epochs without draining (%d/%d requests terminal) — wedged?",
				p.epochs, p.terminal(), p.submitted)
		}
		if k := p.quietEpochs(p.Cfg.MaxEpochs - p.epochs); k > 1 {
			p.stepQuiet(k)
		} else {
			p.step()
		}
	}
	return nil
}

// terminal is the conservation left-hand side: every request that reached an
// outcome.
func (p *Pool) terminal() uint64 {
	return p.completed + p.failed + p.shed + p.expired + p.throttled
}

// submitReq decodes one arrival, applies the admission policy, and either
// enqueues its fragments or sheds the request typed. notify marks
// plane-submitted requests whose terminal record should reach Poll/Notify.
func (p *Pool) submitReq(r openloop.Request, notify bool) (uint64, error) {
	frags := p.Dec.FragmentsInto(p.fragScratch[:0], r.Off, r.Len)
	p.fragScratch = frags[:0]
	arrival := p.epoch0.Add(r.Arrival)
	var deadline sim.Time
	if r.Deadline > 0 {
		deadline = arrival.Add(r.Deadline)
	}
	p.nextID++
	id := p.nextID
	p.submitted++
	if r.Write {
		p.writesIn++
	}
	ts := p.qosTenant(r.Tenant)

	// Token-bucket policing gates admission before every other policy: a
	// tenant over its rate is refused here, synchronously and typed, before
	// its fragments could occupy any queue. Enforcement is armed only under
	// QoS isolation; tracking-only configs never throttle.
	if p.Cfg.QoS.Isolation && !ts.admitBucket() {
		p.throttled++
		if r.Write {
			p.writesThrottled++
		}
		ts.throttled++
		p.chans[p.channelOf(frags[0].Member)].ctr.Inc("requests-throttled")
		return id, fmt.Errorf("pool: tenant %d: %w", r.Tenant, ErrTenantThrottled)
	}

	if reason := p.shedAtAdmission(frags, r.Write, arrival, deadline); reason != nil {
		p.shed++
		if r.Write {
			p.writesShed++
		}
		if ts != nil {
			ts.shed++
		}
		p.chans[p.channelOf(frags[0].Member)].ctr.Inc("requests-shed")
		return id, reason
	}

	req := &request{
		id:        id,
		arrival:   arrival,
		deadline:  deadline,
		write:     r.Write,
		tenant:    r.Tenant,
		bytes:     r.Len,
		notify:    notify,
		remaining: len(frags),
		channel0:  p.channelOf(frags[0].Member),
	}
	for i := range frags {
		f := &fragment{req: req, member: frags[i].Member, off: frags[i].Off, n: frags[i].Len}
		ci := p.channelOf(f.member)
		ch := p.chans[ci]
		switch {
		case len(ch.tq) > 0:
			// Isolation: every fragment waits in its tenant's FIFO and enters
			// the queue through the DRR refill at the next boundary — a single
			// ordering authority, so a burst cannot bypass the round robin
			// through the direct-to-queue fast path.
			if p.Cfg.Admission == AdmitShedOldest {
				p.displaceOldest(ch, ci)
			}
			qi := p.qosIndex(r.Tenant)
			ch.tq[qi].fifo = append(ch.tq[qi].fifo, f)
			ch.ctr.Inc("frags-held")
		case len(ch.queue) < p.Cfg.QueueCap:
			ch.queue = append(ch.queue, f)
			ch.ctr.Inc("frags-admitted")
		default:
			if p.Cfg.Admission == AdmitShedOldest {
				p.displaceOldest(ch, ci)
			}
			ch.pending = append(ch.pending, f)
			ch.ctr.Inc("frags-held")
		}
		ch.mark()
	}
	return id, nil
}

// shedAtAdmission decides whether an incoming request is dropped before any
// fragment is enqueued. Only AdmitShedNewest and AdmitDeadlineAware shed
// here; AdmitShedOldest displaces victims after admission and AdmitBlock
// never sheds.
func (p *Pool) shedAtAdmission(frags []Extent, write bool, arrival, deadline sim.Time) error {
	if p.Cfg.Admission != AdmitShedNewest && p.Cfg.Admission != AdmitDeadlineAware {
		return nil
	}
	add := p.fragsPerChannel(frags)
	for ci := 0; ci < len(p.chans); ci++ {
		n := add[ci]
		if n == 0 {
			continue
		}
		ch := p.chans[ci]
		limit := p.Cfg.PendingCap
		if write {
			// Writes shed first: half the headroom, and none at all through a
			// breaker that is not closed — the degraded channel serves reads.
			if ch.brk.state != breakerClosed {
				ch.ctr.Inc("shed-write-breaker")
				return fmt.Errorf("pool: channel %d breaker %s sheds writes: %w", ci, ch.brk.state, ErrAdmissionFull)
			}
			limit /= 2
		}
		if ch.held()+n > limit {
			ch.ctr.Inc("shed-pending-full")
			return fmt.Errorf("pool: channel %d held %d+%d over cap %d: %w",
				ci, ch.held(), n, limit, ErrAdmissionFull)
		}
		if p.Cfg.Admission == AdmitDeadlineAware && deadline > 0 {
			if wait := p.estimatedWait(ci, n); wait >= 0 {
				start := p.now
				if arrival > start {
					start = arrival
				}
				// The estimate is a mean; service here is bimodal (a cache
				// hit is microseconds, a dirty-eviction NAND program chain
				// runs near a millisecond), so a request admitted right at
				// the mean boundary lands late about half the time. Requiring
				// double the estimated wait to fit converts the mean into a
				// usable bound, while an overloaded channel still keeps
				// enough admitted backlog to feed its dispatch window.
				if start.Add(2*wait) > deadline {
					ch.ctr.Inc("shed-deadline-infeasible")
					return fmt.Errorf("pool: channel %d estimated wait %d ps past deadline: %w",
						ci, int64(wait), ErrAdmissionFull)
				}
			}
		}
	}
	return nil
}

// estimatedWait returns the deadline-aware admission estimate for a new
// fragment on channel ci with extra incoming fragments counted in the
// backlog: backlog depth times the channel's service-interval EWMA. The
// EWMA smooths the channel's long-run busy time per completed fragment,
// so depth x interval is the time for the channel to drain everything
// ahead of (and including) the new work at its delivered rate. Returns -1
// while the channel has no interval signal yet (nothing completed): with
// no estimate the plane admits — shedding on ignorance would starve cold
// channels.
func (p *Pool) estimatedWait(ci, extra int) sim.Duration {
	ch := p.chans[ci]
	if ch.ewma <= 0 {
		return -1
	}
	ahead := ch.held() + len(ch.queue) + ch.inflight + extra
	return sim.Duration(int64(ch.ewma) * int64(ahead))
}

// fragsPerChannel counts a request's fragments per target channel into the
// pool's reusable scratch buffer (valid until the next call; its callers'
// lifetimes never overlap).
func (p *Pool) fragsPerChannel(frags []Extent) []int {
	if p.chanScratch == nil {
		p.chanScratch = make([]int, len(p.chans))
	}
	add := p.chanScratch
	for i := range add {
		add[i] = 0
	}
	for i := range frags {
		add[p.channelOf(frags[i].Member)]++
	}
	return add
}

// displaceOldest makes room for one incoming held fragment on channel ci
// under AdmitShedOldest: while the channel sits at PendingCap, the oldest
// held fragment is removed and its whole request canceled (typed
// ErrAdmissionFull) — other waiting fragments of the victim are swept at
// the next boundary, in-flight ones complete and count their pieces.
// Displacing before the append (admission and retry promotion both call
// here) keeps held occupancy, and therefore the HeldHW mark, at or under
// PendingCap at every instant; the old post-append sweep let both
// overshoot transiently by the incoming request's fragment count. Under QoS
// isolation the held backlog is split across per-tenant FIFOs; the victim
// is the globally oldest head (request IDs are submission-ordered), so the
// policy stays pure FIFO across tenants.
func (p *Pool) displaceOldest(ch *channelState, ci int) {
	for ch.held() > 0 && ch.held() >= p.Cfg.PendingCap {
		list := &ch.pending
		for i := range ch.tq {
			q := &ch.tq[i].fifo
			if len(*q) == 0 {
				continue
			}
			if len(*list) == 0 || (*q)[0].req.id < (*list)[0].req.id {
				list = q
			}
		}
		victim := (*list)[0]
		*list = (*list)[1:]
		ch.ctr.Inc("frags-shed-oldest")
		p.cancelRequest(victim.req,
			fmt.Errorf("pool: channel %d shed oldest held request %d: %w", ci, victim.req.id, ErrAdmissionFull))
		p.requestPieceDone(victim.req, p.now)
	}
}

// cancelRequest marks a request terminally doomed (shed or expired): its
// first typed error is recorded and waiting fragments become sweepable.
// In-flight fragments still complete and count their pieces — cancellation
// never strands accounting.
func (p *Pool) cancelRequest(r *request, err error) {
	if r.err == nil {
		r.err = err
	}
	r.canceled = true
}

// expireAndSweep runs first at each boundary, canonical channel order: it
// removes waiting fragments whose request deadline has passed (failing the
// request typed ErrDeadlineExceeded) or whose request was canceled by a
// shedding decision, from every held list, dispatch queue and the retry
// queue. In-flight fragments are untouched. This is the only place deadline
// expiry is evaluated — boundary instants, single-threaded — so expiry is
// byte-identical at any worker count.
func (p *Pool) expireAndSweep() {
	now := p.now
	doomed := func(f *fragment) bool {
		r := f.req
		if r.canceled {
			return true
		}
		if r.deadline > 0 && r.deadline <= now {
			p.cancelRequest(r, fmt.Errorf("pool: request %d expired at epoch boundary: %w", r.id, ErrDeadlineExceeded))
			return true
		}
		return false
	}
	for _, ch := range p.chans {
		ch.pending = p.sweepList(ch, ch.pending, doomed)
		for i := range ch.tq {
			ch.tq[i].fifo = p.sweepList(ch, ch.tq[i].fifo, doomed)
		}
		ch.queue = p.sweepList(ch, ch.queue, doomed)
	}
	if len(p.retries) > 0 {
		keep := p.retries[:0]
		for _, e := range p.retries {
			if doomed(e.f) {
				p.chans[p.channelOf(e.f.member)].ctr.Inc("frags-expired")
				p.requestPieceDone(e.f.req, now)
				continue
			}
			keep = append(keep, e)
		}
		p.retries = keep
	}
}

// sweepList filters one fragment list in place, retiring doomed fragments.
func (p *Pool) sweepList(ch *channelState, list []*fragment, doomed func(*fragment) bool) []*fragment {
	keep := list[:0]
	for _, f := range list {
		if doomed(f) {
			ch.ctr.Inc("frags-expired")
			p.requestPieceDone(f.req, p.now)
			continue
		}
		keep = append(keep, f)
	}
	return keep
}

// deliverCompletions flushes the step's terminal records to Cfg.Notify in
// order when configured; otherwise they stay buffered for Poll.
func (p *Pool) deliverCompletions() {
	if p.Cfg.Notify == nil || len(p.completions) == 0 {
		return
	}
	for _, c := range p.completions {
		p.Cfg.Notify(c)
	}
	p.completions = p.completions[:0]
}
