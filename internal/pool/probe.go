// Fabric-facing health hooks: the NUMA layer composes pools the way the
// pool composes members, so it needs the same two primitives the pool's own
// probe/rebuild machinery uses internally — a cheap read-only health
// snapshot to fold into a socket-level lattice, and a pooled-address view
// of the resident set so an evacuation engine can replay a whole socket's
// occupancy onto survivors. Both are boundary-only: callers invoke them
// between Step calls, never while members are advancing.
package pool

import "sort"

// Probe is a read-only snapshot of the pool's live health, taken at an
// epoch boundary. The NUMA fabric diffs consecutive probes to drive its
// socket lattice: monotone counters (Failed, DriverErrors, Quarantined)
// signal by their deltas, gauges (Suspects, BreakersOpen,
// DegradedPositions) by their level.
type Probe struct {
	Epochs    int
	Submitted uint64
	Completed uint64
	Failed    uint64

	// UntypedFailures / PostQuarantine mirror the CheckHealth invariants:
	// nonzero means the pool itself has breached conservation, the
	// strongest possible evacuation signal.
	UntypedFailures uint64
	PostQuarantine  uint64

	Suspects    int // members currently Suspect
	Quarantined int // members currently Quarantined
	Evacuated   int // members fully evacuated onto spares
	// DegradedPositions counts logical positions routed to a member at or
	// past Quarantined — positions with no healthy server, where every
	// fragment fails typed. Nonzero means the pool is shedding capacity
	// with no spare left to absorb it.
	DegradedPositions int
	BreakersOpen      int // channels whose breaker is not closed
	SparesFree        int // healthy spares not yet in service
	DriverErrors      uint64
}

// Probe snapshots the pool's health counters without mutating anything.
func (p *Pool) Probe() Probe {
	pr := Probe{
		Epochs:          p.epochs,
		Submitted:       p.submitted,
		Completed:       p.completed,
		Failed:          p.failed,
		UntypedFailures: p.untypedFailures,
		PostQuarantine:  p.postQuarantine,
	}
	for i, m := range p.members {
		h := p.health[i]
		switch h.state {
		case StateSuspect:
			pr.Suspects++
		case StateQuarantined:
			pr.Quarantined++
		case StateEvacuated:
			pr.Evacuated++
		}
		if h.spare && !h.inService && h.state == StateUp {
			pr.SparesFree++
		}
		pr.DriverErrors += m.sys.Driver.Health().ErrorEvents
	}
	for _, phys := range p.route {
		if p.health[phys].state >= StateQuarantined {
			pr.DegradedPositions++
		}
	}
	for _, ch := range p.chans {
		if ch.brk.state != breakerClosed {
			pr.BreakersOpen++
		}
	}
	return pr
}

// ResidentPooled returns the pooled byte offsets of every DRAM-cache
// resident page across serving members, ascending. Each logical position is
// read through the current route (so pages a spare absorbed during rebuild
// count once, under the spare), and member-local addresses are mapped back
// through the decoder's inverse — the same snapshot-then-replay shape as
// the rebuild engine, one level up: the fabric migrates this set to
// surviving sockets when it evacuates this one.
func (p *Pool) ResidentPooled() []int64 {
	var out []int64
	for l := 0; l < p.Dec.Members(); l++ {
		phys := p.route[l]
		for _, pg := range p.members[phys].sys.Driver.Resident() {
			memberOff := pg.LPN * PageSize
			if memberOff+PageSize > p.Dec.memberCap {
				// Capacity clamp, as in failover(): cache slots past the
				// interleave-aligned capacity are not pooled-addressable.
				continue
			}
			out = append(out, p.Dec.Inverse(l, memberOff))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
