package pool

import (
	"fmt"
	"strings"
	"testing"

	"nvdimmc/internal/core"
	"nvdimmc/internal/workload/openloop"
)

// testMember is a shrunken member system (1 MB cache : 8 MB media, same 1:8
// shape as the default) so pooled tests stay fast enough for -race -short.
func testMember() core.Config {
	cfg := core.DefaultConfig()
	cfg.CacheBytes = 1 << 20
	cfg.NAND.BlocksPerDie = 32
	cfg.NAND.PagesPerBlock = 16
	return cfg
}

func newTestPool(t *testing.T, channels, dimms, workers int, interleave int64, mut ...func(*Config)) *Pool {
	t.Helper()
	cfg := Config{
		Channels:        channels,
		DIMMsPerChannel: dimms,
		Interleave:      interleave,
		Member:          testMember(),
		Workers:         workers,
		Seed:            7,
		PrefillPages:    -1,
	}
	for _, m := range mut {
		m(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// snapshot serializes every observable stat; two runs are "byte-identical"
// iff their snapshots match.
func snapshot(s Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "req=%d/%d wracked=%d epochs=%d heldpeak=%d\n",
		s.Completed, s.Submitted, s.WritesAcked, s.Epochs, s.HeldPeak)
	fmt.Fprintf(&b, "overload shed=%d expired=%d late=%d wshed=%d wexpired=%d\n",
		s.Shed, s.Expired, s.CompletedLate, s.WritesShed, s.WritesExpired)
	fmt.Fprintf(&b, "lat n=%d mean=%v min=%v max=%v p50=%v p90=%v p99=%v p999=%v\n",
		s.Lat.Count(), s.Lat.Mean(), s.Lat.Min(), s.Lat.Max(),
		s.Lat.Percentile(50), s.Lat.Percentile(90), s.Lat.Percentile(99), s.Lat.Percentile(99.9))
	fmt.Fprintf(&b, "meter ops=%d bytes=%d elapsed=%v bw=%.6f\n",
		s.Meter.Ops(), s.Meter.Bytes(), s.Meter.Elapsed(), s.Meter.BandwidthMBps())
	fmt.Fprintf(&b, "ctr %s\n", s.Ctr.String())
	for i, ch := range s.PerChannel {
		fmt.Fprintf(&b, "ch%d n=%d p99=%v bytes=%d heldHW=%d queueHW=%d svc=%v %s\n",
			i, ch.Lat.Count(), ch.Lat.Percentile(99), ch.Meter.Bytes(),
			ch.HeldHW, ch.QueueHW, ch.ServiceEWMA, ch.Ctr.String())
	}
	return b.String()
}

func mixedTenants(p *Pool, seed uint64, rate float64) openloop.Config {
	foot := p.CachedFootprint()
	return openloop.Config{
		Seed:       seed,
		RatePerSec: rate,
		Tenants: []openloop.Tenant{
			{Name: "kv", Dist: openloop.Zipfian, Weight: 3, ReadPct: 80,
				Footprint: foot / 2},
			{Name: "log", Dist: openloop.Uniform, Weight: 1, ReadPct: -1,
				Footprint: foot / 2, Offset: foot / 2},
		},
	}
}

func runPool(t *testing.T, p *Pool, gcfg openloop.Config, count int) Stats {
	t.Helper()
	gen, err := openloop.New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunOpenLoop(gen, count); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	return p.Stats()
}

// TestPoolWorkerCountIdentical is the pool's core determinism claim: the
// same pooled workload produces byte-identical stats with 1, 2 and 8 epoch
// workers. It must stay fast enough to run under -race -short, where the
// detector additionally proves the epoch barriers are sound.
func TestPoolWorkerCountIdentical(t *testing.T) {
	var snaps []string
	for _, workers := range []int{1, 2, 8} {
		p := newTestPool(t, 6, 1, workers, 4096)
		s := runPool(t, p, mixedTenants(p, 42, 2e6), 400)
		if s.Completed != 400 {
			t.Fatalf("workers=%d: completed %d of 400", workers, s.Completed)
		}
		snaps = append(snaps, snapshot(s))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i] != snaps[0] {
			t.Fatalf("worker count changed output:\n--- workers=1 ---\n%s--- variant %d ---\n%s",
				snaps[0], i, snaps[i])
		}
	}
}

// TestPoolChannelScaling asserts the acceptance floor: saturating read
// bandwidth grows >= 3.5x from 1 to 6 channels at 4 KB interleave.
func TestPoolChannelScaling(t *testing.T) {
	bw := map[int]float64{}
	for _, channels := range []int{1, 6} {
		p := newTestPool(t, channels, 1, 4, 4096)
		gcfg := openloop.Config{
			Seed:       9,
			RatePerSec: 0, // saturating
			Tenants: []openloop.Tenant{
				{Name: "read", Dist: openloop.Uniform, Footprint: p.CachedFootprint()},
			},
		}
		s := runPool(t, p, gcfg, 150*channels)
		bw[channels] = s.Meter.BandwidthMBps()
	}
	if bw[6] < 3.5*bw[1] {
		t.Fatalf("1->6 channel scaling %.0f -> %.0f MB/s = %.2fx, want >= 3.5x",
			bw[1], bw[6], bw[6]/bw[1])
	}
}

// TestPoolBackpressureHotChannel: a tenant hammering a single stripe (which
// the decoder pins to one member, hence one channel) must saturate that
// channel's queue — exercising admission holds — and inflate pool p99
// relative to a balanced run, while every request (including every write)
// still completes and no channel wedges.
func TestPoolBackpressureHotChannel(t *testing.T) {
	tight := func(c *Config) { c.QueueCap = 8; c.Window = 4 }

	balanced := newTestPool(t, 2, 1, 2, 4096, tight)
	bCfg := openloop.Config{
		Seed: 11, RatePerSec: 0,
		Tenants: []openloop.Tenant{
			{Name: "even", Dist: openloop.Uniform, ReadPct: 80,
				Footprint: balanced.CachedFootprint()},
		},
	}
	bStats := runPool(t, balanced, bCfg, 300)

	hot := newTestPool(t, 2, 1, 2, 4096, tight)
	hCfg := openloop.Config{
		Seed: 11, RatePerSec: 0,
		Tenants: []openloop.Tenant{
			// Weight 1 explicit: a zero weight mixed with nonzero ones is now
			// a typed config error (it used to silently default to 1).
			{Name: "even", Dist: openloop.Uniform, Weight: 1, ReadPct: 80,
				Footprint: hot.CachedFootprint()},
			// One-stripe footprint: every op lands on the same member.
			{Name: "hot", Dist: openloop.Uniform, Weight: 4, ReadPct: -1,
				Footprint: 4096},
		},
	}
	hStats := runPool(t, hot, hCfg, 300)

	if hStats.Ctr.Get("frags-held") == 0 {
		t.Fatal("hot run never exercised admission holds (backpressure untested)")
	}
	if hStats.Completed != 300 || hStats.Submitted != 300 {
		t.Fatalf("hot run dropped requests: %d/%d", hStats.Completed, hStats.Submitted)
	}
	if hp, bp := hStats.Lat.Percentile(99), bStats.Lat.Percentile(99); hp <= bp {
		t.Fatalf("hot-channel p99 %v not above balanced p99 %v", hp, bp)
	}
	// The saturated channel hurts its own tail hardest: find the hot member's
	// channel and compare against the other.
	hm, _ := hot.Dec.Lookup(0)
	hc := hot.channelOf(hm)
	hotP99 := hStats.PerChannel[hc].Lat.Percentile(99)
	coldP99 := hStats.PerChannel[1-hc].Lat.Percentile(99)
	if hotP99 <= coldP99 {
		t.Fatalf("saturated channel p99 %v not above peer %v", hotP99, coldP99)
	}
}

// TestPoolMultiFragmentRequests: ops wider than the stripe split across
// members and complete only when every fragment does.
func TestPoolMultiFragmentRequests(t *testing.T) {
	p := newTestPool(t, 2, 2, 2, 4096) // 4 members
	const count = 120
	gcfg := openloop.Config{
		Seed: 5, RatePerSec: 1e6,
		Tenants: []openloop.Tenant{
			{Name: "wide", Dist: openloop.Uniform, ReadPct: 50, BlockSize: 16384,
				Footprint: p.CachedFootprint() / 16384 * 16384},
		},
	}
	s := runPool(t, p, gcfg, count)
	if s.Completed != count {
		t.Fatalf("completed %d of %d", s.Completed, count)
	}
	// 16 KB ops aligned on a 4 KB interleave: exactly 4 fragments each.
	if got := s.Ctr.Get("frags-completed"); got != 4*count {
		t.Fatalf("fragments completed = %d, want %d", got, 4*count)
	}
	if s.Meter.Bytes() != uint64(count)*16384 {
		t.Fatalf("bytes = %d, want %d", s.Meter.Bytes(), count*16384)
	}
}

// TestPoolDIMMFanout: DIMMsPerChannel multiplies members and capacity.
func TestPoolDIMMFanout(t *testing.T) {
	p := newTestPool(t, 2, 2, 1, 4096)
	if p.Members() != 4 {
		t.Fatalf("members = %d, want 4", p.Members())
	}
	if p.Member(0) == p.Member(3) {
		t.Fatal("member systems not independent")
	}
	single := newTestPool(t, 2, 1, 1, 4096)
	// Pooled capacity is members x the least member capacity (bad blocks vary
	// per seeded member), so doubling the DIMMs doubles capacity to within
	// the bad-block spread.
	if c, want := p.Capacity(), 2*single.Capacity(); c > want || c < want*95/100 {
		t.Fatalf("2-DIMM capacity %d, want ~2x %d", c, single.Capacity())
	}
}

func TestPoolConfigValidation(t *testing.T) {
	if _, err := New(Config{Channels: 0, DIMMsPerChannel: 1, Member: testMember()}); err == nil {
		t.Fatal("zero channels accepted")
	}
	cfg := DefaultConfig()
	cfg.Member = testMember()
	cfg.Interleave = 1000 // not a page multiple
	if _, err := New(cfg); err == nil {
		t.Fatal("unaligned interleave accepted")
	}
}
