package pool

import (
	"fmt"
	"testing"
)

// noProbe pushes the health-probe tick far out so the bound under test is
// the only horizon in play.
func noProbe(c *Config) { c.ProbeEvery = 1 << 20 }

// TestPoolLookaheadIdenticalAcrossWorkers is the lookahead scheduler's
// contract: an idle-heavy rated load (mean inter-arrival well above the
// epoch, so both the member idle-warp and quiet-epoch batching engage)
// produces byte-identical stats with the scheduler on and off, at 1, 2 and
// 8 epoch workers. Runs unshortened so the -race lane checks the batched
// paths' barriers too.
func TestPoolLookaheadIdenticalAcrossWorkers(t *testing.T) {
	var snaps []string
	var labels []string
	for _, lockstep := range []bool{true, false} {
		for _, workers := range []int{1, 2, 8} {
			p := newTestPool(t, 6, 1, workers, 4096,
				func(c *Config) { c.DisableLookahead = lockstep })
			// ~100 us between arrivals vs a ~7.8 us epoch: idle-dominated.
			s := runPool(t, p, mixedTenants(p, 42, 1e4), 300)
			if s.Completed != 300 {
				t.Fatalf("lockstep=%v workers=%d: completed %d of 300",
					lockstep, workers, s.Completed)
			}
			snaps = append(snaps, snapshot(s))
			labels = append(labels, fmt.Sprintf("lockstep=%v workers=%d", lockstep, workers))
		}
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i] != snaps[0] {
			t.Fatalf("scheduler mode changed output:\n--- %s ---\n%s--- %s ---\n%s",
				labels[0], snaps[0], labels[i], snaps[i])
		}
	}
}

// TestQuietEpochsProbeBound: the health-probe tick is a cross-member event —
// a quiet batch may end on a probe epoch but never jump one.
func TestQuietEpochsProbeBound(t *testing.T) {
	p := newTestPool(t, 2, 1, 1, 4096) // ProbeEvery defaults to 4
	if k := p.quietEpochs(1000); k != 4 {
		t.Fatalf("fresh pool: quietEpochs = %d, want 4 (next probe)", k)
	}
	p.epochs = 3
	if k := p.quietEpochs(1000); k != 1 {
		t.Fatalf("one epoch before probe: quietEpochs = %d, want 1", k)
	}
	p.epochs = 4 // on a probe boundary: the next probe is a full period out
	if k := p.quietEpochs(1000); k != 4 {
		t.Fatalf("on probe boundary: quietEpochs = %d, want 4", k)
	}
	if k := p.quietEpochs(1); k != 0 {
		t.Fatalf("limit 1: quietEpochs = %d, want 0 (naive step)", k)
	}
}

// TestQuietEpochsRetryReadyBound: a backoff entry's ready epoch bounds the
// batch so the promoting step runs at exactly the epoch the naive scheduler
// would promote it; a canceled entry disables batching entirely (its sweep
// is due at the very next boundary).
func TestQuietEpochsRetryReadyBound(t *testing.T) {
	p := newTestPool(t, 2, 1, 1, 4096, noProbe)
	p.retries = append(p.retries, retryEntry{f: &fragment{req: &request{}}, ready: 7})
	if k := p.quietEpochs(1000); k != 6 {
		t.Fatalf("retry ready at epoch 7: quietEpochs = %d, want 6", k)
	}
	p.retries[0].ready = 1
	if k := p.quietEpochs(1000); k != 0 {
		t.Fatalf("retry due next step: quietEpochs = %d, want 0", k)
	}
	p.retries[0].ready = 7
	p.retries[0].f.req.canceled = true
	if k := p.quietEpochs(1000); k != 0 {
		t.Fatalf("canceled retry pending sweep: quietEpochs = %d, want 0", k)
	}
}

// TestQuietEpochsDeadlineBound: a held-back request's absolute deadline
// bounds the batch at the epoch boundary where the naive scheduler would
// first sweep it; an already-expired deadline disables batching.
func TestQuietEpochsDeadlineBound(t *testing.T) {
	p := newTestPool(t, 2, 1, 1, 4096, noProbe)
	e := p.Cfg.Epoch
	req := &request{deadline: p.now.Add(5*e + 1)}
	p.retries = append(p.retries, retryEntry{f: &fragment{req: req}, ready: 1 << 20})
	if k := p.quietEpochs(1000); k != 6 {
		t.Fatalf("deadline just past boundary 5: quietEpochs = %d, want 6", k)
	}
	req.deadline = p.now.Add(3 * e) // exactly on a boundary
	if k := p.quietEpochs(1000); k != 3 {
		t.Fatalf("deadline on boundary 3: quietEpochs = %d, want 3", k)
	}
	p.now = p.now.Add(e)
	req.deadline = p.now
	if k := p.quietEpochs(1000); k != 0 {
		t.Fatalf("expired deadline: quietEpochs = %d, want 0", k)
	}
}

// TestQuietEpochsBreakerBound: an open breaker's cooldown expiry (the
// Open -> HalfOpen transition) bounds the batch. Closed and half-open
// breakers do not: their per-epoch ticks are replayed exactly (a closed
// window with zero samples can never trip; half-open ticks are no-ops).
func TestQuietEpochsBreakerBound(t *testing.T) {
	p := newTestPool(t, 2, 1, 1, 4096, noProbe)
	b := p.chans[0].brk
	b.state = breakerOpen
	b.cooldown = 3
	if k := p.quietEpochs(1000); k != 3 {
		t.Fatalf("open breaker, cooldown 3: quietEpochs = %d, want 3", k)
	}
	b.state = breakerHalfOpen
	if k := p.quietEpochs(1000); k != 1000 {
		t.Fatalf("half-open breaker: quietEpochs = %d, want 1000 (no bound)", k)
	}
	b.state = breakerClosed
	if k := p.quietEpochs(1000); k != 1000 {
		t.Fatalf("closed breaker: quietEpochs = %d, want 1000 (no bound)", k)
	}
}

// TestQuietEpochsWorkDisables: any held, queued or inflight fragment, any
// running rebuild, or the DisableLookahead knob itself forces the naive
// per-epoch path.
func TestQuietEpochsWorkDisables(t *testing.T) {
	p := newTestPool(t, 2, 1, 1, 4096, noProbe)
	p.chans[1].inflight = 1
	if k := p.quietEpochs(1000); k != 0 {
		t.Fatalf("inflight fragment: quietEpochs = %d, want 0", k)
	}
	p.chans[1].inflight = 0
	p.rebuilds = append(p.rebuilds, &rebuildJob{})
	if k := p.quietEpochs(1000); k != 0 {
		t.Fatalf("running rebuild: quietEpochs = %d, want 0", k)
	}
	p.rebuilds = nil
	p.Cfg.DisableLookahead = true
	if k := p.quietEpochs(1000); k != 0 {
		t.Fatalf("lookahead disabled: quietEpochs = %d, want 0", k)
	}
}
