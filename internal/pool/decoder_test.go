package pool

import (
	"fmt"
	"testing"
)

// TestDecoderBijection: for every supported member count (including the
// non-power-of-two 3 and 6) and both interleave granularities, the map
// pooled-stripe -> (member, member-stripe) must be a bijection: every member
// receives every member-stripe exactly once.
func TestDecoderBijection(t *testing.T) {
	for _, members := range []int{1, 2, 3, 4, 6, 8} {
		for _, gran := range []int64{4096, 2 << 20} {
			const groups = 64
			memberCap := gran * groups
			d, err := NewDecoder(members, gran, memberCap)
			if err != nil {
				t.Fatal(err)
			}
			if d.Capacity() != int64(members)*memberCap {
				t.Fatalf("members=%d capacity = %d", members, d.Capacity())
			}
			seen := make(map[string]int64)
			for off := int64(0); off < d.Capacity(); off += gran {
				m, mo := d.Lookup(off)
				if m < 0 || m >= members {
					t.Fatalf("members=%d off=%d: member %d out of range", members, off, m)
				}
				if mo < 0 || mo >= memberCap || mo%gran != 0 {
					t.Fatalf("members=%d off=%d: member offset %d invalid", members, off, mo)
				}
				key := fmt.Sprintf("%d:%d", m, mo)
				if prev, dup := seen[key]; dup {
					t.Fatalf("members=%d gran=%d: offsets %d and %d both map to %s",
						members, gran, prev, off, key)
				}
				seen[key] = off
			}
			// members*groups stripes onto members*groups slots with no
			// duplicate is onto: the map is a bijection.
			if len(seen) != members*groups {
				t.Fatalf("members=%d: %d distinct targets, want %d", members, len(seen), members*groups)
			}
		}
	}
}

// TestDecoderGroupCoverage: a pooled footprint of G whole stripe-groups must
// cover member offsets [0, G*gran) on every member exactly — the property
// the pool relies on to keep prefilled (cache-resident) footprints
// cache-resident after interleaving.
func TestDecoderGroupCoverage(t *testing.T) {
	const gran, groups = 4096, 16
	for _, members := range []int{2, 6} {
		d, err := NewDecoder(members, gran, gran*64)
		if err != nil {
			t.Fatal(err)
		}
		covered := make(map[int]map[int64]bool)
		footprint := int64(members) * gran * groups
		for off := int64(0); off < footprint; off += gran {
			m, mo := d.Lookup(off)
			if covered[m] == nil {
				covered[m] = make(map[int64]bool)
			}
			covered[m][mo] = true
		}
		for m := 0; m < members; m++ {
			if len(covered[m]) != groups {
				t.Fatalf("members=%d: member %d got %d stripes, want %d",
					members, m, len(covered[m]), groups)
			}
			for mo := range covered[m] {
				if mo >= gran*groups {
					t.Fatalf("members=%d: member %d offset %d beyond footprint share %d",
						members, m, mo, gran*groups)
				}
			}
		}
	}
}

// TestDecoderXORSpreading: the XOR/rotation group key must decorrelate
// member-count-strided walks — the access pattern that camps on a single
// channel under plain modulo interleave.
func TestDecoderXORSpreading(t *testing.T) {
	for _, members := range []int{4, 6, 8} {
		d, err := NewDecoder(members, 4096, 4096*1024)
		if err != nil {
			t.Fatal(err)
		}
		// Visit position 0 of each group: plain modulo would put every
		// access on member 0.
		hits := make([]int, members)
		stride := int64(members) * 4096
		n := 0
		for off := int64(0); off < d.Capacity(); off += stride {
			m, _ := d.Lookup(off)
			hits[m]++
			n++
		}
		for m, h := range hits {
			if h == 0 {
				t.Fatalf("members=%d: strided walk never hit member %d: %v", members, m, hits)
			}
			if h > n/2 {
				t.Fatalf("members=%d: strided walk camped on member %d (%d/%d): %v",
					members, m, h, n, hits)
			}
		}
	}
}

// TestDecoderFragments: accesses split at stripe boundaries into in-order
// extents whose lengths sum to the request.
func TestDecoderFragments(t *testing.T) {
	d, err := NewDecoder(4, 4096, 4096*64)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		off   int64
		n     int
		frags int
	}{
		{0, 4096, 1},          // one whole stripe
		{512, 1024, 1},        // sub-stripe
		{0, 16384, 4},         // four whole stripes
		{1000, 8192, 3},       // unaligned span straddling two boundaries
		{4096*7 + 100, 64, 1}, // small op deep in the space
	}
	for _, c := range cases {
		fr := d.Fragments(c.off, c.n)
		if len(fr) != c.frags {
			t.Fatalf("[%d,+%d): %d fragments, want %d: %+v", c.off, c.n, len(fr), c.frags, fr)
		}
		sum := 0
		for i, f := range fr {
			sum += f.Len
			if f.Len <= 0 || f.Off < 0 {
				t.Fatalf("[%d,+%d) fragment %d degenerate: %+v", c.off, c.n, i, f)
			}
			wantM, wantO := d.Lookup(c.off + int64(sum-f.Len))
			if f.Member != wantM || f.Off != wantO {
				t.Fatalf("[%d,+%d) fragment %d = %+v, want member %d off %d",
					c.off, c.n, i, f, wantM, wantO)
			}
		}
		if sum != c.n {
			t.Fatalf("[%d,+%d): fragment lengths sum to %d", c.off, c.n, sum)
		}
	}
}

func TestDecoderValidation(t *testing.T) {
	if _, err := NewDecoder(0, 4096, 4096); err == nil {
		t.Fatal("zero members accepted")
	}
	if _, err := NewDecoder(2, 4096, 6000); err == nil {
		t.Fatal("capacity not a multiple of granularity accepted")
	}
	if _, err := NewDecoder(2, 0, 4096); err == nil {
		t.Fatal("zero granularity accepted")
	}
	d, _ := NewDecoder(2, 4096, 4096*4)
	for _, bad := range []int64{-1, d.Capacity(), d.Capacity() + 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Lookup(%d) did not panic", bad)
				}
			}()
			d.Lookup(bad)
		}()
	}
}
