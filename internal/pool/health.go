package pool

import (
	"errors"
	"fmt"

	"nvdimmc/internal/nvdc"
	"nvdimmc/internal/sim"
)

// Typed failure sentinels. Every request the pool gives up on carries one of
// these in its error chain (CheckHealth enforces it): nothing is ever
// silently dropped.
var (
	// ErrMemberQuarantined: the fragment's routed member is quarantined and
	// no spare has taken over its stripes.
	ErrMemberQuarantined = errors.New("pool: member quarantined")
	// ErrPoolDegraded wraps the last per-fragment error once the retry
	// budget is exhausted; errors.Is also matches the underlying driver
	// sentinel (nvdc.ErrReadOnly, nvdc.ErrMediaRead, ...).
	ErrPoolDegraded = errors.New("pool: request failed after retries")
)

// MemberState is the pool-level health lattice for one member, strictly
// ordered: transitions only move right except Suspect -> Up.
//
//	Up -> Suspect -> Quarantined -> Evacuated
type MemberState int

const (
	// StateUp: serving traffic normally.
	StateUp MemberState = iota
	// StateSuspect: error activity observed (driver Degraded, error-counter
	// growth, or fragment failures); still serving, watched more closely.
	StateSuspect
	// StateQuarantined: the pool stopped routing front-end traffic to this
	// member (driver ReadOnly, auditor violation, or the fragment-failure
	// threshold). Evacuation reads for a rebuild are the only ops allowed.
	StateQuarantined
	// StateEvacuated: the member's resident state has been rebuilt onto a
	// spare; it receives no traffic of any kind.
	StateEvacuated
)

func (s MemberState) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateSuspect:
		return "suspect"
	case StateQuarantined:
		return "quarantined"
	case StateEvacuated:
		return "evacuated"
	}
	return fmt.Sprintf("MemberState(%d)", int(s))
}

// memberHealth is the pool's per-physical-member fault-tracking record. All
// fields are read and written only at epoch boundaries (single-threaded,
// canonical member order), so worker count cannot affect transitions.
type memberHealth struct {
	state MemberState
	// spare marks members constructed beyond the decoder's logical set.
	spare bool
	// inService: a spare actively serving a logical position.
	inService bool
	// logical is the logical index routed to this member (-1 for an idle or
	// drained member).
	logical int

	// lastErrs / lastViol / fragErrsAtProbe snapshot the counters at the
	// previous probe so probes react to deltas, not lifetime totals.
	lastErrs        uint64
	fragErrsAtProbe int
	// fragErrs counts fragment dispatches that completed with an error on
	// this member (lifetime).
	fragErrs int
	// cleanProbes counts consecutive probes with no new error activity; at
	// SuspectClearProbes a Suspect healthy-mode member returns to Up.
	cleanProbes int

	quarantinedAt sim.Time
	reason        string
}

// probeMembers runs the health probe over every member in canonical order.
// It is called at the epoch boundary after collect(), so quarantine
// decisions always precede the next fill(): no fill can dispatch to a member
// quarantined in this or any earlier epoch — the "no post-quarantine
// submissions" guarantee is structural, not best-effort.
func (p *Pool) probeMembers() {
	if p.epochs%p.Cfg.ProbeEvery != 0 {
		return
	}
	for i, m := range p.members {
		h := p.health[i]
		if h.state >= StateQuarantined {
			continue
		}
		hs := m.sys.Driver.Health()
		var viol uint64
		if m.sys.Auditor != nil {
			viol = m.sys.Auditor.ViolationCount()
		}
		switch {
		case hs.Mode == nvdc.ModeReadOnly:
			p.quarantine(i, "driver read-only")
		case viol > 0:
			p.quarantine(i, fmt.Sprintf("%d protocol violations", viol))
		case h.fragErrs >= p.Cfg.QuarantineFragErrs:
			p.quarantine(i, fmt.Sprintf("%d fragment failures", h.fragErrs))
		case hs.Mode == nvdc.ModeDegraded || hs.ErrorEvents > h.lastErrs || h.fragErrs > h.fragErrsAtProbe:
			if h.state == StateUp {
				h.state = StateSuspect
				p.ctrPool.Inc("member-suspect")
			}
			h.cleanProbes = 0
		case h.state == StateSuspect:
			h.cleanProbes++
			// ModeDegraded is sticky in the driver, so degraded members can
			// never take this branch: they stay Suspect for the run.
			if h.cleanProbes >= p.Cfg.SuspectClearProbes {
				h.state = StateUp
				p.ctrPool.Inc("member-recovered")
			}
		}
		h.lastErrs = hs.ErrorEvents
		h.fragErrsAtProbe = h.fragErrs
	}
}

// quarantine moves a member to StateQuarantined and, when it was serving a
// logical position, fails that position over to a hot spare.
func (p *Pool) quarantine(phys int, reason string) {
	h := p.health[phys]
	h.state = StateQuarantined
	h.quarantinedAt = p.now
	h.reason = reason
	h.inService = false
	p.ctrPool.Inc("member-quarantine")
	if h.logical >= 0 {
		p.failover(h.logical, phys)
	}
}
