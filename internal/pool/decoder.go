// Interleaved address decoder: the socket-scale analogue of the iMC's
// channel-interleave hash. A flat pooled address space is striped across N
// members (channel x DIMM positions) at a configurable granularity — 4 KB
// matches the management page so every page lands whole on one member; 2 MB
// matches the huge-page/Optane-style coarse interleave whose hot-spot
// pathology the Yang et al. Optane study measures.
//
// Within every group of N consecutive stripes the member assignment is a
// permutation, so the map pooled-stripe -> (member, member-stripe) is a
// bijection and member-stripe is simply the group index: capacity divides
// exactly and footprints of G groups cover member offsets [0, G*gran) on
// every member. The permutation is keyed by an XOR fold of the group index —
// the classic XOR channel hash that keeps power-of-two strides from camping
// on one channel. For power-of-two member counts the key XORs into the
// stripe position (a permutation because x^k is); for other counts (6
// channels is the common server population) XOR is not closed over the
// range, so the key rotates the position instead — still a permutation, same
// decorrelation.
package pool

import "fmt"

// Decoder maps pooled byte offsets onto (member, member offset).
type Decoder struct {
	members    int
	gran       int64
	memberCap  int64 // bytes addressable per member
	pow2       bool
	groupCount int64
}

// Extent is one contiguous piece of a pooled access on a single member.
type Extent struct {
	Member int
	Off    int64
	Len    int
}

// NewDecoder builds a decoder. memberCap must be a multiple of gran so every
// member contributes whole stripes.
func NewDecoder(members int, gran, memberCap int64) (*Decoder, error) {
	if members < 1 {
		return nil, fmt.Errorf("pool: %d members", members)
	}
	if gran <= 0 || memberCap <= 0 || memberCap%gran != 0 {
		return nil, fmt.Errorf("pool: member capacity %d not a multiple of interleave %d",
			memberCap, gran)
	}
	return &Decoder{
		members:    members,
		gran:       gran,
		memberCap:  memberCap,
		pow2:       members&(members-1) == 0,
		groupCount: memberCap / gran,
	}, nil
}

// Members returns the member count.
func (d *Decoder) Members() int { return d.members }

// Granularity returns the interleave stripe size in bytes.
func (d *Decoder) Granularity() int64 { return d.gran }

// Capacity returns the pooled address-space size.
func (d *Decoder) Capacity() int64 { return int64(d.members) * d.memberCap }

// fold compresses a group index into a permutation key. XOR-folding the
// halves repeatedly mixes high group bits into the low bits the selector
// uses, so long sequential walks and large power-of-two strides both spread.
func fold(g int64) int64 {
	u := uint64(g)
	u ^= u >> 33
	u ^= u >> 17
	u ^= u >> 7
	u ^= u >> 3
	return int64(u)
}

// Lookup maps one pooled offset to its member and member-local offset.
// Offsets at or beyond Capacity panic: callers own admission of addresses.
func (d *Decoder) Lookup(off int64) (member int, memberOff int64) {
	if off < 0 || off >= d.Capacity() {
		panic(fmt.Sprintf("pool: offset %d outside pooled capacity %d", off, d.Capacity()))
	}
	stripe := off / d.gran
	group := stripe / int64(d.members)
	pos := stripe % int64(d.members)
	key := fold(group)
	if d.pow2 {
		member = int((pos ^ key) & int64(d.members-1))
	} else {
		member = int((pos + key%int64(d.members)) % int64(d.members))
	}
	return member, group*d.gran + off%d.gran
}

// Inverse maps one (member, member-local offset) pair back to the pooled
// offset Lookup would have decoded it from — the exact bijection inverse,
// used by the resident-set snapshot the NUMA fabric's evacuation engine
// replays (a member knows its pages only by member-local address). Inputs
// outside the member set or the member capacity panic, like Lookup.
func (d *Decoder) Inverse(member int, memberOff int64) int64 {
	if member < 0 || member >= d.members {
		panic(fmt.Sprintf("pool: member %d outside %d-member decoder", member, d.members))
	}
	if memberOff < 0 || memberOff >= d.memberCap {
		panic(fmt.Sprintf("pool: member offset %d outside member capacity %d", memberOff, d.memberCap))
	}
	group := memberOff / d.gran
	key := fold(group)
	n := int64(d.members)
	var pos int64
	if d.pow2 {
		// Forward: member = (pos ^ key) & (n-1) with pos < n, so XOR with the
		// masked key undoes it exactly.
		pos = (int64(member) ^ key) & (n - 1)
	} else {
		// Forward: member = (pos + key%n) % n — undo the rotation, keeping the
		// result in [0, n) for any sign of key%n.
		pos = ((int64(member)-key%n)%n + n) % n
	}
	return (group*n+pos)*d.gran + memberOff%d.gran
}

// Fragments splits the pooled access [off, off+n) at stripe boundaries into
// per-member extents, in pooled-address order.
func (d *Decoder) Fragments(off int64, n int) []Extent {
	return d.FragmentsInto(nil, off, n)
}

// FragmentsInto is the allocation-free Fragments: extents are appended to
// buf (reusing its capacity) and the extended slice returned. Per-epoch hot
// paths that copy the extents out before the next decode pass their scratch
// buffer here.
func (d *Decoder) FragmentsInto(buf []Extent, off int64, n int) []Extent {
	out := buf[:0]
	for n > 0 {
		m, mo := d.Lookup(off)
		span := int(d.gran - off%d.gran)
		if span > n {
			span = n
		}
		out = append(out, Extent{Member: m, Off: mo, Len: span})
		off += int64(span)
		n -= span
	}
	return out
}
