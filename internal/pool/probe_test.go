package pool

import (
	"sort"
	"testing"

	"nvdimmc/internal/workload/openloop"
)

// TestDecoderInverseRoundTrip proves Inverse is the exact inverse of Lookup
// in both directions, for power-of-two and rotation (non-power-of-two)
// member counts, at page and huge-page interleave.
func TestDecoderInverseRoundTrip(t *testing.T) {
	for _, members := range []int{1, 2, 3, 4, 6, 8, 12} {
		for _, gran := range []int64{4096, 2 << 20} {
			d, err := NewDecoder(members, gran, 8*gran)
			if err != nil {
				t.Fatal(err)
			}
			// Pooled -> member -> pooled, including unaligned offsets.
			for off := int64(0); off < d.Capacity(); off += gran / 4 * 3 {
				m, mo := d.Lookup(off)
				if back := d.Inverse(m, mo); back != off {
					t.Fatalf("members=%d gran=%d: Inverse(Lookup(%d)) = %d", members, gran, off, back)
				}
			}
			// Member -> pooled -> member covers every (member, stripe) cell.
			for m := 0; m < members; m++ {
				for mo := int64(0); mo < 8*gran; mo += gran {
					off := d.Inverse(m, mo+17%gran)
					bm, bmo := d.Lookup(off)
					if bm != m || bmo != mo+17%gran {
						t.Fatalf("members=%d gran=%d: Lookup(Inverse(%d,%d)) = (%d,%d)",
							members, gran, m, mo, bm, bmo)
					}
				}
			}
		}
	}
}

func TestDecoderInversePanicsOutOfRange(t *testing.T) {
	d, err := NewDecoder(4, 4096, 16*4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name   string
		member int
		off    int64
	}{
		{"member too high", 4, 0},
		{"member negative", -1, 0},
		{"offset at capacity", 0, 16 * 4096},
		{"offset negative", 0, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			d.Inverse(c.member, c.off)
		}()
	}
}

// TestProbeSnapshot walks the probe through the states the fabric's socket
// lattice keys on: clean pool, quarantine absorbed by a spare (capacity
// held, DegradedPositions zero), then the spare lost too (a degraded
// position with no server).
func TestProbeSnapshot(t *testing.T) {
	p := newTestPool(t, 2, 1, 1, 4096, func(c *Config) { c.Spares = 1 })
	pr := p.Probe()
	if pr.Suspects != 0 || pr.Quarantined != 0 || pr.DegradedPositions != 0 || pr.BreakersOpen != 0 {
		t.Fatalf("fresh pool probe not clean: %+v", pr)
	}
	if pr.SparesFree != 1 {
		t.Fatalf("SparesFree = %d, want 1", pr.SparesFree)
	}

	p.quarantine(0, "probe-test")
	pr = p.Probe()
	if pr.Quarantined != 1 || pr.SparesFree != 0 {
		t.Fatalf("after quarantine: %+v", pr)
	}
	if pr.DegradedPositions != 0 {
		t.Fatalf("spare failover should keep positions served: %+v", pr)
	}

	// Lose the spare now serving logical 0: no free spare remains, so the
	// position goes degraded — the strongest socket-evacuation signal.
	p.quarantine(p.route[0], "probe-test")
	pr = p.Probe()
	if pr.DegradedPositions != 1 {
		t.Fatalf("DegradedPositions = %d, want 1: %+v", pr.DegradedPositions, pr)
	}
}

// TestResidentPooled checks the pooled resident-set snapshot: offsets are
// ascending, page-aligned, inside pooled capacity, and every one decodes
// back to a page its serving member really holds.
func TestResidentPooled(t *testing.T) {
	p := newTestPool(t, 2, 1, 1, 4096)
	if _, err := p.Submit(openloop.Request{Off: 0, Len: 4096, Write: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(openloop.Request{Off: 3 * 4096, Len: 4096, Write: true}); err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}

	res := p.ResidentPooled()
	if len(res) == 0 {
		t.Fatal("no resident pages after prefill + writes")
	}
	if !sort.SliceIsSorted(res, func(i, j int) bool { return res[i] < res[j] }) {
		t.Fatal("resident offsets not ascending")
	}
	want := map[int64]bool{}
	for l := 0; l < p.Dec.Members(); l++ {
		phys := p.route[l]
		for _, pg := range p.members[phys].sys.Driver.Resident() {
			mo := pg.LPN * PageSize
			if mo+PageSize > p.Dec.memberCap {
				continue
			}
			want[p.Dec.Inverse(l, mo)] = true
		}
	}
	for _, off := range res {
		if off < 0 || off >= p.Capacity() || off%PageSize != 0 {
			t.Fatalf("resident offset %d outside aligned capacity %d", off, p.Capacity())
		}
		if !want[off] {
			t.Fatalf("resident offset %d not held by its routed member", off)
		}
	}
	if len(res) != len(want) {
		t.Fatalf("snapshot has %d pages, members hold %d", len(res), len(want))
	}
}
