package pool

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/openloop"
)

// qosSnapshot extends the byte-identity snapshot with every per-tenant QoS
// observable, so the worker-count and scheduler matrices pin those too.
func qosSnapshot(s Stats) string {
	var b strings.Builder
	b.WriteString(snapshot(s))
	fmt.Fprintf(&b, "throttled=%d wthrottled=%d\n", s.Throttled, s.WritesThrottled)
	for i, ts := range s.PerTenant {
		fmt.Fprintf(&b, "tenant%d %s w=%v rate=%v burst=%d slo=%v n=%d p50=%v p99=%v p999=%v bytes=%d done=%d thr=%d shed=%d exp=%d fail=%d overslo=%d viol=%v\n",
			i, ts.Name, ts.Weight, ts.RatePerSec, ts.Burst, ts.SLOP99,
			ts.Lat.Count(), ts.Lat.Percentile(50), ts.Lat.Percentile(99), ts.Lat.Percentile(99.9),
			ts.Meter.Bytes(), ts.Completed, ts.Throttled, ts.Shed, ts.Expired, ts.Failed,
			ts.OverSLO, ts.SLOViolated())
	}
	return b.String()
}

// TestQoSConfigValidation: degenerate QoS contracts are rejected and legal
// zero values take their documented defaults.
func TestQoSConfigValidation(t *testing.T) {
	bad := []QoSConfig{
		{Isolation: true},
		{QuantumBytes: -1, Tenants: []TenantQoS{{}}},
		{Tenants: []TenantQoS{{Weight: -1}}},
		{Tenants: []TenantQoS{{Weight: math.NaN()}}},
		{Tenants: []TenantQoS{{Weight: math.Inf(1)}}},
		{Tenants: []TenantQoS{{Weight: 1e-9}}}, // weight x quantum < 1 byte credit
		{Tenants: []TenantQoS{{RatePerSec: -1}}},
		{Tenants: []TenantQoS{{RatePerSec: math.NaN()}}},
		{Tenants: []TenantQoS{{Burst: -1}}},
		{Tenants: []TenantQoS{{SLOP99: -1}}},
	}
	for i, q := range bad {
		if err := q.validate(); err == nil {
			t.Fatalf("bad QoS config %d accepted: %+v", i, q)
		}
	}
	q := QoSConfig{Isolation: true, Tenants: []TenantQoS{{RatePerSec: 1000}, {}}}
	if err := q.validate(); err != nil {
		t.Fatalf("legal config rejected: %v", err)
	}
	if q.QuantumBytes != 4096 || q.Tenants[0].Weight != 1 || q.Tenants[0].Burst != 8 {
		t.Fatalf("defaults not applied: %+v", q)
	}
	if q.Tenants[1].Burst != 0 {
		t.Fatalf("unpoliced tenant grew a burst: %+v", q.Tenants[1])
	}
}

// TestQoSFromTenants: the openloop QoS contract fields map onto the pool
// block field-for-field.
func TestQoSFromTenants(t *testing.T) {
	q := QoSFromTenants([]openloop.Tenant{
		{Name: "hot", QoSWeight: 2, LimitPerSec: 5e4, Burst: 16, SLOP99: sim.Millisecond},
		{Name: "light"},
	}, true)
	if !q.Isolation || len(q.Tenants) != 2 {
		t.Fatalf("mapping lost shape: %+v", q)
	}
	want := TenantQoS{Name: "hot", Weight: 2, RatePerSec: 5e4, Burst: 16, SLOP99: sim.Millisecond}
	if q.Tenants[0] != want {
		t.Fatalf("tenant 0 mapped to %+v, want %+v", q.Tenants[0], want)
	}
	if q.Tenants[1] != (TenantQoS{Name: "light"}) {
		t.Fatalf("tenant 1 mapped to %+v", q.Tenants[1])
	}
}

// drrMix is one seeded tenant mix for the fairness property tests.
type drrMix struct {
	weights []float64
}

// seededMixes draws deterministic tenant mixes (2-4 tenants, integer DRR
// weights 1-8) for the table-driven fairness properties.
func seededMixes(n int) []drrMix {
	rng := sim.NewRand(sim.SplitSeed(7, "qos/mixes"))
	out := make([]drrMix, n)
	for i := range out {
		k := 2 + rng.Intn(3)
		w := make([]float64, k)
		for j := range w {
			w[j] = float64(1 + rng.Intn(8))
		}
		out[i] = drrMix{weights: w}
	}
	return out
}

// qosTenantsFromWeights builds an unpoliced QoS block with the given DRR
// weights.
func qosTenantsFromWeights(weights []float64) []TenantQoS {
	ts := make([]TenantQoS, len(weights))
	for i, w := range weights {
		ts[i] = TenantQoS{Name: fmt.Sprintf("t%d", i), Weight: w}
	}
	return ts
}

// drrDrive submits `per` cached single-page reads for every tenant whose
// submit[ti] is true (offset depends only on (round, tenant) so variants
// share byte-identical traffic for the tenants they have in common), then
// steps the plane until `target` requests complete (or exactly `epochs`
// epochs when epochs > 0), returning per-tenant completion counts.
func drrDrive(t *testing.T, p *Pool, nTen, per int, submit []bool, target, epochs int) []int {
	t.Helper()
	foot := p.CachedFootprint()
	for j := 0; j < per; j++ {
		for ti := 0; ti < nTen; ti++ {
			if !submit[ti] {
				continue
			}
			off := (int64(j*nTen+ti) * 4096) % foot
			if _, err := p.Submit(openloop.Request{Tenant: ti, Off: off, Len: 4096}); err != nil {
				t.Fatalf("submit tenant %d round %d: %v", ti, j, err)
			}
		}
	}
	counts := make([]int, nTen)
	done := 0
	for i := 0; ; i++ {
		if epochs > 0 {
			if i >= epochs {
				break
			}
		} else if done >= target {
			break
		}
		if p.epochs >= 1<<16 {
			t.Fatalf("wedged: %d completions after %d epochs", done, p.epochs)
		}
		p.Step()
		for _, c := range p.Poll(0) {
			if c.Outcome != OutcomeCompleted {
				t.Fatalf("request %d finished %v: %v", c.ID, c.Outcome, c.Err)
			}
			counts[c.Tenant]++
			done++
		}
	}
	return counts
}

// finish drains the plane and checks conservation.
func finish(t *testing.T, p *Pool) Stats {
	t.Helper()
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	p.Poll(0)
	if err := p.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	return p.Stats()
}

// TestDRRWeightedShares (property): for seeded tenant mixes, every tenant
// keeping a backlog receives a completed-request share within tolerance of
// its normalized DRR weight.
func TestDRRWeightedShares(t *testing.T) {
	for m, mix := range seededMixes(4) {
		mix := mix
		t.Run(fmt.Sprintf("mix%d_w%v", m, mix.weights), func(t *testing.T) {
			n := len(mix.weights)
			p := newTestPool(t, 1, 1, 2, 4096, noProbe, func(c *Config) {
				c.QoS = QoSConfig{Isolation: true, Tenants: qosTenantsFromWeights(mix.weights)}
			})
			all := make([]bool, n)
			for i := range all {
				all[i] = true
			}
			// 240 requests per tenant, measure the first ~160 completions:
			// even the heaviest share cannot drain its backlog before the
			// measurement window closes, so shares reflect pure DRR.
			counts := drrDrive(t, p, n, 240, all, 160, 0)
			total, wsum := 0, 0.0
			for _, c := range counts {
				total += c
			}
			for _, w := range mix.weights {
				wsum += w
			}
			for ti, c := range counts {
				got := float64(c) / float64(total)
				want := mix.weights[ti] / wsum
				if math.Abs(got-want) > 0.05 {
					t.Fatalf("tenant %d share %.3f, want %.3f +/- 0.05 (counts %v, weights %v)",
						ti, got, want, counts, mix.weights)
				}
			}
			finish(t, p)
		})
	}
}

// TestDRRWorkConservation (property): removing one tenant's traffic does not
// idle its share — the channel delivers the same throughput and the busy
// tenants split it by their renormalized weights.
func TestDRRWorkConservation(t *testing.T) {
	weights := []float64{4, 2, 1}
	// 70 epochs drains ~600 requests: the two-tenant run's 800 submissions
	// keep a backlog the whole window, so equal totals mean the idle share
	// really was redistributed rather than both runs simply finishing.
	const per, epochs = 400, 70
	run := func(submit []bool) (counts []int, total int) {
		p := newTestPool(t, 1, 1, 2, 4096, noProbe, func(c *Config) {
			c.QoS = QoSConfig{Isolation: true, Tenants: qosTenantsFromWeights(weights)}
		})
		counts = drrDrive(t, p, len(weights), per, submit, 0, epochs)
		finish(t, p)
		for _, c := range counts {
			total += c
		}
		return counts, total
	}
	_, allTotal := run([]bool{true, true, true})
	counts, busyTotal := run([]bool{true, true, false})
	if counts[2] != 0 {
		t.Fatalf("idle tenant completed %d requests", counts[2])
	}
	// Work conservation: the idle tenant's share was redistributed, not
	// idled — identical epochs deliver (almost) identical total service.
	if lo := allTotal * 95 / 100; busyTotal < lo {
		t.Fatalf("idle tenant stalled the channel: %d completions vs %d all-busy", busyTotal, allTotal)
	}
	// And the busy tenants split it 4:2.
	for ti, want := range []float64{4.0 / 6, 2.0 / 6} {
		got := float64(counts[ti]) / float64(busyTotal)
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("tenant %d share %.3f, want %.3f +/- 0.05 (counts %v)", ti, got, want, counts)
		}
	}
}

// TestTokenBucketPolicing: admissions from a full bucket stop exactly at the
// burst depth with typed ErrTenantThrottled, boundary refills restore
// admissions at the configured rate, and every throttle is conserved and
// attributed (pool, tenant, and no Completion record).
func TestTokenBucketPolicing(t *testing.T) {
	const burst = 6
	const rate = 2e5
	p := newTestPool(t, 1, 1, 1, 4096, noProbe, func(c *Config) {
		c.QoS = QoSConfig{Isolation: true,
			Tenants: []TenantQoS{{Name: "t", RatePerSec: rate, Burst: burst}}}
	})
	foot := p.CachedFootprint()
	submitN := func(n int, j0 int) (admitted, throttled int) {
		for j := 0; j < n; j++ {
			off := (int64(j0+j) * 4096) % foot
			_, err := p.Submit(openloop.Request{Tenant: 0, Off: off, Len: 4096})
			switch {
			case err == nil:
				admitted++
			case errors.Is(err, ErrTenantThrottled):
				throttled++
			default:
				t.Fatalf("submit %d: unexpected error %v", j, err)
			}
		}
		return
	}
	// Burst from a full bucket: exactly `burst` admitted, the rest refused.
	adm, thr := submitN(burst+4, 0)
	if adm != burst || thr != 4 {
		t.Fatalf("cold burst admitted %d / throttled %d, want %d / 4", adm, thr, burst)
	}
	// Same boundary, bucket empty: nothing more gets in.
	if adm, thr = submitN(1, 100); adm != 0 || thr != 1 {
		t.Fatalf("post-burst admitted %d, want 0", adm)
	}
	// Refill: rate x k epochs of tokens accrue (capped at burst).
	const k = 3
	for i := 0; i < k; i++ {
		p.Step()
	}
	refill := rate * float64(p.Cfg.Epoch) / float64(sim.Second) * k
	wantLo := int(math.Min(refill, burst)) - 1
	if wantLo < 1 {
		wantLo = 1
	}
	adm, _ = submitN(burst+2, 200)
	if adm < wantLo || adm > int(math.Min(refill, burst))+1 {
		t.Fatalf("after %d epochs admitted %d, want ~min(%.2f, %d)", k, adm, refill, burst)
	}
	s := finish(t, p)
	if s.Throttled == 0 || s.Throttled != s.PerTenant[0].Throttled {
		t.Fatalf("throttle attribution: pool %d, tenant %d", s.Throttled, s.PerTenant[0].Throttled)
	}
	if s.Completed != s.Submitted-s.Throttled {
		t.Fatalf("conservation: %d completed of %d submitted, %d throttled",
			s.Completed, s.Submitted, s.Throttled)
	}
	if s.PerTenant[0].Completed != s.Completed {
		t.Fatalf("tenant completion attribution: %d vs %d", s.PerTenant[0].Completed, s.Completed)
	}
}

// TestBucketRateConvergence (property): over seeded (rate, burst) contracts,
// a tenant offering far above its bucket rate completes at most burst +
// rate x span requests — the policing bound — while an unpoliced tenant in
// the same pool is untouched.
func TestBucketRateConvergence(t *testing.T) {
	rng := sim.NewRand(sim.SplitSeed(7, "qos/buckets"))
	for c := 0; c < 3; c++ {
		burst := 4 + rng.Intn(12)
		epochsPerToken := 2 + rng.Intn(4)
		t.Run(fmt.Sprintf("case%d_b%d_e%d", c, burst, epochsPerToken), func(t *testing.T) {
			p := newTestPool(t, 1, 1, 1, 4096, noProbe, func(cfg *Config) {
				rate := float64(sim.Second) / (float64(cfg.Member.TREFI) * float64(epochsPerToken))
				cfg.QoS = QoSConfig{Isolation: true, Tenants: []TenantQoS{
					{Name: "policed", RatePerSec: rate, Burst: burst},
					{Name: "free"},
				}}
			})
			foot := p.CachedFootprint()
			const per, epochs = 200, 120
			adm := 0
			for j := 0; j < per; j++ {
				for ti := 0; ti < 2; ti++ {
					// Offered in bursts of 4 per tenant every 2 epochs.
					if j%4 == 0 && j > 0 {
						p.Step()
						p.Step()
					}
					off := (int64(j*2+ti) * 4096) % foot
					_, err := p.Submit(openloop.Request{Tenant: ti, Off: off, Len: 4096})
					if err == nil && ti == 0 {
						adm++
					} else if err != nil && !errors.Is(err, ErrTenantThrottled) {
						t.Fatal(err)
					} else if err != nil && ti == 1 {
						t.Fatalf("unpoliced tenant throttled: %v", err)
					}
				}
			}
			s := finish(t, p)
			// Policing bound: burst (initial bucket) + one token per
			// epochsPerToken elapsed epochs, +1 slack for float rounding.
			bound := uint64(burst+s.Epochs/epochsPerToken) + 1
			if got := s.PerTenant[0].Completed; got > bound {
				t.Fatalf("policed tenant completed %d > bound %d (epochs %d)", got, bound, s.Epochs)
			}
			if s.PerTenant[1].Throttled != 0 || s.PerTenant[1].Completed != per {
				t.Fatalf("free tenant: %d completed, %d throttled, want %d / 0",
					s.PerTenant[1].Completed, s.PerTenant[1].Throttled, per)
			}
		})
	}
}

// TestQoSQuietGating: a fragment waiting in a tenant FIFO must disable
// quiet-epoch batching (it needs the very next boundary's DRR fill), and a
// drained QoS pool must batch again — token refills alone are no event.
func TestQoSQuietGating(t *testing.T) {
	p := newTestPool(t, 1, 1, 1, 4096, noProbe, func(c *Config) {
		c.QoS = QoSConfig{Isolation: true,
			Tenants: []TenantQoS{{Name: "t", RatePerSec: 1e5, Burst: 4}}}
	})
	if k := p.quietEpochs(64); k != 64 {
		t.Fatalf("empty QoS pool quiet for %d epochs, want 64 (buckets must not bound batching)", k)
	}
	if _, err := p.Submit(openloop.Request{Tenant: 0, Off: 0, Len: 4096}); err != nil {
		t.Fatal(err)
	}
	if k := p.quietEpochs(64); k != 0 {
		t.Fatalf("held tenant-FIFO fragment left the pool quiet for %d epochs", k)
	}
	finish(t, p)
	if k := p.quietEpochs(64); k != 64 {
		t.Fatalf("drained QoS pool quiet for %d epochs, want 64", k)
	}
}

// qosTestTenants is the shared noisy-neighbor shape: one zipfian-hot tenant
// with a large arrival share and a bucket at a quarter of its offered rate,
// vs three uniform light tenants with p99 SLOs.
func qosTestTenants(foot int64, rate float64, slo sim.Duration) []openloop.Tenant {
	hotFoot := foot / 2
	lightFoot := (foot - hotFoot) / 3
	ts := []openloop.Tenant{{
		Name: "hot", Dist: openloop.Zipfian, Weight: 12, ReadPct: 80,
		Footprint: hotFoot,
		// Offered 0.8 x rate; bucket at a quarter of that.
		LimitPerSec: rate * 0.8 / 4, SLOP99: slo,
	}}
	for i := 0; i < 3; i++ {
		ts = append(ts, openloop.Tenant{
			Name: fmt.Sprintf("light%d", i), Dist: openloop.Uniform, Weight: 1, ReadPct: 80,
			Footprint: lightFoot, Offset: hotFoot + int64(i)*lightFoot,
			SLOP99: slo,
		})
	}
	return ts
}

// qosCapacity measures the small test pool's saturated completion rate
// (requests per second), the reference the starvation regression prices its
// offered load against.
func qosCapacity(t *testing.T) float64 {
	t.Helper()
	p := newTestPool(t, 3, 1, 2, 4096)
	gcfg := openloop.Config{
		Seed: 9, RatePerSec: 0,
		Tenants: []openloop.Tenant{
			{Name: "cal", Dist: openloop.Uniform, ReadPct: 80, Footprint: p.CachedFootprint()},
		},
	}
	s := runPool(t, p, gcfg, 360)
	sec := float64(s.Meter.Elapsed()) / float64(sim.Second)
	if sec <= 0 {
		t.Fatal("calibration span empty")
	}
	return float64(s.Meter.Ops()) / sec
}

// TestQoSStarvationRegression: a zipfian-hot tenant offering 4x its bucket
// rate (1.6x pool capacity) must not push any light tenant's p99 past the
// pinned bound when isolation is on — and the same traffic with isolation
// off must blow a light tenant past it, proving the mechanism (not the
// workload) holds the bound.
func TestQoSStarvationRegression(t *testing.T) {
	capacity := qosCapacity(t)
	rate := 2 * capacity // hot 1.6x capacity, lights 0.4x; isolated load 0.8x
	const count = 600
	// The pinned bound: the isolated run's light tails sit at 5-7us (and
	// the runs are deterministic, so drift means a real scheduling change)
	// while unpoliced 2x-capacity overload pushes them past 70us as waits
	// grow with the backlog. 25us splits the gap with ~4x margin each way.
	bound := 25 * sim.Microsecond
	run := func(isolation bool) Stats {
		p := newTestPool(t, 3, 1, 2, 4096, func(c *Config) {
			c.QoS = QoSFromTenants(qosTestTenants(1, rate, bound), isolation)
		})
		gcfg := openloop.Config{
			Seed: 13, RatePerSec: rate,
			Tenants: qosTestTenants(p.CachedFootprint(), rate, bound),
		}
		return runPool(t, p, gcfg, count)
	}
	iso := run(true)
	for i, ts := range iso.PerTenant {
		t.Logf("iso  tenant %d %s: n=%d p99=%v thr=%d", i, ts.Name, ts.Lat.Count(), ts.P99(), ts.Throttled)
	}
	if iso.Throttled == 0 || iso.PerTenant[0].Throttled != iso.Throttled {
		t.Fatalf("hot tenant at 4x bucket rate throttled %d times (tenant %d)",
			iso.Throttled, iso.PerTenant[0].Throttled)
	}
	for i, ts := range iso.PerTenant[1:] {
		if p99 := ts.P99(); p99 > bound {
			t.Fatalf("isolation on: light tenant %d p99 %v over pinned bound %v", i, p99, bound)
		}
		if ts.SLOViolated() {
			t.Fatalf("isolation on: light tenant %d violated its SLO", i)
		}
		if ts.Throttled != 0 {
			t.Fatalf("isolation on: unpoliced light tenant %d throttled %d times", i, ts.Throttled)
		}
	}
	noIso := run(false)
	for i, ts := range noIso.PerTenant {
		t.Logf("free tenant %d %s: n=%d p99=%v thr=%d", i, ts.Name, ts.Lat.Count(), ts.P99(), ts.Throttled)
	}
	if noIso.Throttled != 0 {
		t.Fatalf("isolation off still throttled %d requests", noIso.Throttled)
	}
	worst := sim.Duration(0)
	for _, ts := range noIso.PerTenant[1:] {
		if p99 := ts.P99(); p99 > worst {
			worst = p99
		}
	}
	if worst <= bound {
		t.Fatalf("isolation off: worst light p99 %v under the bound %v — the regression test lost its teeth", worst, bound)
	}
}

// TestQoSWorkerCountIdentical: the full QoS machinery (buckets throttling,
// DRR dispatch, per-tenant stats) is byte-identical at 1/2/8 workers with
// the lookahead scheduler on and off — the per-epoch token refill replay in
// stepQuiet must match step()'s float sequence bit for bit.
func TestQoSWorkerCountIdentical(t *testing.T) {
	capacity := 1e5 // any fixed rate scale works for identity; keep it brisk
	run := func(workers int, lockstep, isolation bool) string {
		p := newTestPool(t, 3, 1, workers, 4096, func(c *Config) {
			c.DisableLookahead = lockstep
			c.QoS = QoSFromTenants(qosTestTenants(1, capacity, sim.Millisecond), isolation)
		})
		gcfg := openloop.Config{
			Seed: 21, RatePerSec: capacity,
			Tenants: qosTestTenants(p.CachedFootprint(), capacity, sim.Millisecond),
		}
		return qosSnapshot(runPool(t, p, gcfg, 300))
	}
	type variant struct {
		workers  int
		lockstep bool
	}
	variants := []variant{{1, false}, {2, false}, {8, false}, {1, true}, {2, true}, {8, true}}
	if testing.Short() {
		variants = []variant{{1, false}, {2, true}}
	}
	for _, isolation := range []bool{true, false} {
		var base string
		for i, v := range variants {
			got := run(v.workers, v.lockstep, isolation)
			if i == 0 {
				base = got
				continue
			}
			if got != base {
				t.Fatalf("isolation=%v workers=%d lockstep=%v diverged:\n--- base ---\n%s\n--- got ---\n%s",
					isolation, v.workers, v.lockstep, base, got)
			}
		}
	}
}
