package pool

import (
	"errors"
	"fmt"
	"testing"

	"nvdimmc/internal/fault"
	"nvdimmc/internal/workload/openloop"
)

// TestPlaneManualDrive exercises the embeddable surface directly: Submit at
// epoch boundaries, Step to advance, Poll for typed completion records, and
// the occupancy/backlog/quiesce queries — no Run harness involved.
func TestPlaneManualDrive(t *testing.T) {
	drive := func() []Completion {
		p := newTestPool(t, 2, 1, 1, 4096)
		ids := map[uint64]bool{}
		for i := 0; i < 8; i++ {
			id, err := p.Submit(openloop.Request{Off: int64(i) * 4096, Len: 4096})
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			if ids[id] {
				t.Fatalf("duplicate request ID %d", id)
			}
			ids[id] = true
		}
		if p.Quiesced() {
			t.Fatal("quiesced with 8 requests outstanding")
		}
		if p.Backlog() != 8 {
			t.Fatalf("backlog %d, want 8 single-fragment requests", p.Backlog())
		}
		occ := p.Occupancy()
		if len(occ) != 2 {
			t.Fatalf("occupancy for %d channels, want 2", len(occ))
		}
		queued := 0
		for _, o := range occ {
			queued += o.Held + o.Queued + o.InFlight
		}
		if queued != 8 {
			t.Fatalf("occupancy accounts %d fragments, want 8", queued)
		}
		for !p.Quiesced() {
			p.Step()
		}
		if p.Backlog() != 0 {
			t.Fatal("quiesced plane still has backlog")
		}
		// Poll in two batches to check the max bound, then exhaustion.
		recs := p.Poll(3)
		if len(recs) != 3 {
			t.Fatalf("Poll(3) returned %d records", len(recs))
		}
		recs = append(recs, p.Poll(0)...)
		if len(recs) != 8 {
			t.Fatalf("polled %d completions, want 8", len(recs))
		}
		if got := p.Poll(0); got != nil {
			t.Fatalf("second Poll returned %d records, want none", len(got))
		}
		for i, c := range recs {
			if !ids[c.ID] {
				t.Fatalf("completion %d has unknown ID %d", i, c.ID)
			}
			delete(ids, c.ID)
			if c.Outcome != OutcomeCompleted || c.Err != nil || c.Late {
				t.Fatalf("completion %d: outcome=%v err=%v late=%v", i, c.Outcome, c.Err, c.Late)
			}
		}
		if err := p.CheckHealth(); err != nil {
			t.Fatal(err)
		}
		return recs
	}
	// Two identical drives must deliver identical records in identical
	// order — Poll order is part of the determinism contract.
	a, b := drive(), drive()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery order changed between identical runs:\n%+v\n%+v", a[i], b[i])
		}
	}
}

// TestPlaneDeadlineExpiresAtBoundary pins the determinism contract for
// deadlines: expiry is evaluated only at epoch boundaries, so every expired
// record's terminal instant is an exact boundary and carries the typed
// ErrDeadlineExceeded chain.
func TestPlaneDeadlineExpiresAtBoundary(t *testing.T) {
	p := newTestPool(t, 1, 1, 1, 4096)
	for i := 0; i < 200; i++ {
		if _, err := p.Submit(openloop.Request{
			Off: int64(i%64) * 4096, Len: 4096, Deadline: p.Cfg.Epoch,
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	var completed, expired int
	for _, c := range p.Poll(0) {
		switch c.Outcome {
		case OutcomeCompleted:
			completed++
		case OutcomeExpired:
			expired++
			if !errors.Is(c.Err, ErrDeadlineExceeded) {
				t.Fatalf("expired request %d error %v, want ErrDeadlineExceeded chain", c.ID, c.Err)
			}
			if off := c.At.Sub(p.epoch0) % p.Cfg.Epoch; off != 0 {
				t.Fatalf("request %d expired %v past a boundary — expiry must be boundary-only", c.ID, off)
			}
			if c.Latency < p.Cfg.Epoch {
				t.Fatalf("request %d expired after %v, before its %v budget", c.ID, c.Latency, p.Cfg.Epoch)
			}
		default:
			t.Fatalf("request %d: unexpected outcome %v (%v)", c.ID, c.Outcome, c.Err)
		}
	}
	// The one-epoch budget must split the burst: the first dispatch window
	// completes in time, everything still waiting expires at the boundary.
	if completed == 0 || expired == 0 {
		t.Fatalf("burst split completed=%d expired=%d; want both nonzero", completed, expired)
	}
}

// TestPlaneRetryFailFast pins the retry budget rule: when the next backoff
// cannot land inside the request's deadline, the failure is terminal
// immediately — typed ErrDeadlineExceeded, no retry armed, no backoff
// epochs burnt. Without a deadline the same failure arms a normal retry.
func TestPlaneRetryFailFast(t *testing.T) {
	p := newTestPool(t, 1, 1, 1, 4096)
	ch := p.chans[0]
	ch.ewma = 2 * p.Cfg.Epoch // measured service alone overshoots the budget

	r := &request{id: 1, arrival: p.now, deadline: p.now.Add(p.Cfg.Epoch), remaining: 1, notify: true}
	p.submitted++
	epochsBefore := p.epochs
	p.fragFailed(&fragment{req: r, member: 0, n: 4096}, fmt.Errorf("injected media error"), p.now)
	if len(p.retries) != 0 {
		t.Fatalf("%d retries armed for an infeasible deadline, want fail-fast", len(p.retries))
	}
	if p.epochs != epochsBefore {
		t.Fatalf("fail-fast burnt %d epochs", p.epochs-epochsBefore)
	}
	if !errors.Is(r.err, ErrDeadlineExceeded) {
		t.Fatalf("request error %v, want ErrDeadlineExceeded chain", r.err)
	}
	if p.expired != 1 {
		t.Fatalf("expired=%d, want the failed request counted expired", p.expired)
	}
	if got := ch.ctr.Get("frags-retry-expired"); got != 1 {
		t.Fatalf("frags-retry-expired=%d, want 1", got)
	}
	recs := p.Poll(0)
	if len(recs) != 1 || recs[0].Outcome != OutcomeExpired || recs[0].At != p.now {
		t.Fatalf("terminal record %+v, want immediate expired completion", recs)
	}

	// Same failure with no deadline: the retry is armed with its backoff.
	r2 := &request{id: 2, arrival: p.now, remaining: 1}
	p.submitted++
	p.fragFailed(&fragment{req: r2, member: 0, n: 4096}, fmt.Errorf("injected media error"), p.now)
	if len(p.retries) != 1 {
		t.Fatalf("%d retries armed without a deadline, want 1", len(p.retries))
	}
	if p.retries[0].ready != p.epochs+p.Cfg.RetryBackoffEpochs {
		t.Fatalf("retry ready at epoch %d, want %d", p.retries[0].ready, p.epochs+p.Cfg.RetryBackoffEpochs)
	}
}

// TestPlaneShedNewestBoundsHeld floods a shed-newest channel past its
// PendingCap: the overflow is refused synchronously with typed
// ErrAdmissionFull, the held backlog never exceeds the cap, and the books
// balance (submitted = completed + shed).
func TestPlaneShedNewestBoundsHeld(t *testing.T) {
	p := newTestPool(t, 1, 1, 1, 4096, func(c *Config) {
		c.Admission = AdmitShedNewest
		c.QueueCap = 4
		c.PendingCap = 8
	})
	shed := 0
	for i := 0; i < 40; i++ {
		_, err := p.Submit(openloop.Request{Off: int64(i%32) * 4096, Len: 4096})
		if err != nil {
			if !errors.Is(err, ErrAdmissionFull) {
				t.Fatalf("submit %d: %v, want ErrAdmissionFull chain", i, err)
			}
			shed++
		}
		if held := p.Occupancy()[0].Held; held > p.Cfg.PendingCap {
			t.Fatalf("held backlog %d over PendingCap %d", held, p.Cfg.PendingCap)
		}
	}
	// 4 queued + 8 held admitted; the other 28 must shed.
	if shed != 28 {
		t.Fatalf("shed %d of 40, want 28 (QueueCap 4 + PendingCap 8 admitted)", shed)
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Shed != 28 || s.Completed != 12 {
		t.Fatalf("shed=%d completed=%d, want 28/12", s.Shed, s.Completed)
	}
	if s.PerChannel[0].HeldHW > p.Cfg.PendingCap {
		t.Fatalf("held high-water %d over PendingCap %d", s.PerChannel[0].HeldHW, p.Cfg.PendingCap)
	}
	// Synchronously shed requests produce no completion record — the caller
	// already holds the typed error.
	if recs := p.Poll(0); len(recs) != 12 {
		t.Fatalf("polled %d records, want only the 12 admitted", len(recs))
	}
}

// TestPlaneShedOldestDisplacesOldest floods a shed-oldest channel: every
// Submit is accepted, and the oldest held requests are displaced typed to
// make room — fresh traffic wins, victims are exactly the oldest arrivals.
func TestPlaneShedOldestDisplacesOldest(t *testing.T) {
	p := newTestPool(t, 1, 1, 1, 4096, func(c *Config) {
		c.Admission = AdmitShedOldest
		c.QueueCap = 4
		c.PendingCap = 4
	})
	for i := 0; i < 12; i++ {
		if _, err := p.Submit(openloop.Request{Off: int64(i%32) * 4096, Len: 4096}); err != nil {
			t.Fatalf("submit %d: %v — shed-oldest must accept fresh arrivals", i, err)
		}
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	victims := map[uint64]bool{}
	for _, c := range p.Poll(0) {
		if c.Outcome == OutcomeShed {
			if !errors.Is(c.Err, ErrAdmissionFull) {
				t.Fatalf("victim %d error %v, want ErrAdmissionFull chain", c.ID, c.Err)
			}
			victims[c.ID] = true
		}
	}
	// Requests 1-4 fill the queue, 5-8 the held list; arrivals 9-12 each
	// displace the oldest held request — victims must be exactly 5-8.
	if len(victims) != 4 {
		t.Fatalf("%d victims, want 4", len(victims))
	}
	for id := uint64(5); id <= 8; id++ {
		if !victims[id] {
			t.Fatalf("victims %v, want the oldest held requests 5-8", victims)
		}
	}
}

// TestPlaneWritesShedFirst pins the degraded-preference rule: under
// pressure a write is held only to PendingCap/2, while reads keep the full
// cap — so a flooded channel refuses writes before it refuses reads.
func TestPlaneWritesShedFirst(t *testing.T) {
	p := newTestPool(t, 1, 1, 1, 4096, func(c *Config) {
		c.Admission = AdmitShedNewest
		c.QueueCap = 4
		c.PendingCap = 8
	})
	wshed := 0
	for i := 0; i < 40; i++ {
		_, err := p.Submit(openloop.Request{Off: int64(i%32) * 4096, Len: 4096, Write: true})
		if err != nil {
			if !errors.Is(err, ErrAdmissionFull) {
				t.Fatalf("write %d: %v, want ErrAdmissionFull chain", i, err)
			}
			wshed++
		}
	}
	// Writes stop at PendingCap/2 = 4 held (plus 4 queued): 32 shed.
	if wshed != 32 {
		t.Fatalf("shed %d of 40 writes, want 32 (write headroom is PendingCap/2)", wshed)
	}
	// The same channel still has read headroom up to the full cap.
	for i := 0; i < 4; i++ {
		if _, err := p.Submit(openloop.Request{Off: int64(i) * 4096, Len: 4096}); err != nil {
			t.Fatalf("read %d refused (%v) while held below PendingCap — reads shed last", i, err)
		}
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.WritesShed != 32 || s.Shed != 32 {
		t.Fatalf("writes-shed=%d shed=%d, want 32/32 (no read shed)", s.WritesShed, s.Shed)
	}
}

// TestPlaneDeadlineAwareShedsInfeasible pins the feasibility check: once a
// channel has a service-interval estimate, a request whose remaining budget
// cannot cover twice the estimated queue wait is refused typed at
// admission, while a generously budgeted request on the same channel is
// admitted.
func TestPlaneDeadlineAwareShedsInfeasible(t *testing.T) {
	p := newTestPool(t, 1, 1, 1, 4096, func(c *Config) {
		c.Admission = AdmitDeadlineAware
	})
	ch := p.chans[0]
	ch.ewma = 4 * p.Cfg.Epoch // priced: ~4 epochs of wait per queued fragment

	if _, err := p.Submit(openloop.Request{Off: 0, Len: 4096, Deadline: p.Cfg.Epoch}); !errors.Is(err, ErrAdmissionFull) {
		t.Fatalf("infeasible deadline admitted (err=%v), want ErrAdmissionFull", err)
	}
	if got := ch.ctr.Get("shed-deadline-infeasible"); got != 1 {
		t.Fatalf("shed-deadline-infeasible=%d, want 1", got)
	}
	if _, err := p.Submit(openloop.Request{Off: 0, Len: 4096, Deadline: 64 * p.Cfg.Epoch}); err != nil {
		t.Fatalf("feasible deadline refused: %v", err)
	}
	// An undeadlined request is never priced — only budget-carrying work
	// can be infeasible.
	if _, err := p.Submit(openloop.Request{Off: 4096, Len: 4096}); err != nil {
		t.Fatalf("undeadlined request refused: %v", err)
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Shed != 1 || s.Completed != 2 {
		t.Fatalf("shed=%d completed=%d, want 1/2", s.Shed, s.Completed)
	}
}

// TestPlaneOverloadedWorkerCountIdentical is the overload determinism
// claim: deadlines, deadline-aware shedding, boundary expiry and member
// faults together still produce byte-identical stats at 1, 2 and 8 epoch
// workers (and -race proves the barriers sound). The workload is sized so
// every overload outcome actually occurs.
func TestPlaneOverloadedWorkerCountIdentical(t *testing.T) {
	var snaps []string
	for _, workers := range []int{1, 2, 8} {
		p := newTestPool(t, 3, 1, workers, 4096, func(c *Config) {
			c.Spares = 1
			c.Admission = AdmitDeadlineAware
			c.PendingCap = 16
			c.Member.NVMC.AckAfterProgram = true
			c.Member.Audit = false
			c.ArmFaults = func(member int, g *fault.Registry) {
				switch member {
				case 0:
					g.OnOccurrence(fault.NANDProgramFail, 3).Times(1 << 30)
				case 1:
					g.Prob(fault.NANDDieTimeout, 0.2).Param(400)
				}
			}
		})
		gcfg := openloop.Config{
			Seed: 77, RatePerSec: 1e7, // well past the 3-channel faulted capacity
			Deadline: 48 * p.Cfg.Epoch,
			Tenants: []openloop.Tenant{
				{Name: "mix", Dist: openloop.Uniform, ReadPct: 60, Footprint: faultFootprint(p)},
			},
		}
		gen, err := openloop.New(gcfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.RunOpenLoop(gen, 400); err != nil {
			t.Fatal(err)
		}
		if err := p.CheckHealth(); err != nil {
			t.Fatal(err)
		}
		s := p.Stats()
		if s.Shed == 0 || s.Expired == 0 {
			t.Fatalf("workers=%d: shed=%d expired=%d — overload machinery not engaged", workers, s.Shed, s.Expired)
		}
		snaps = append(snaps, fullSnapshot(s))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i] != snaps[0] {
			t.Fatalf("worker count changed overloaded output:\n--- workers=1 ---\n%s--- variant %d ---\n%s",
				snaps[0], i, snaps[i])
		}
	}
}

// TestPlaneNotifyMatchesPollAcrossDrain pins the delivery contract: the
// Notify callback and the Poll buffer observe the same completion records
// in the same deterministic order, and that order is stable across multiple
// Drain cycles with new submissions in between and regardless of how the
// Poll buffer is chunked.
func TestPlaneNotifyMatchesPollAcrossDrain(t *testing.T) {
	// Two submission waves with mixed reads/writes and a few hopeless
	// deadlines, so the sequence interleaves several outcomes.
	submitWave := func(t *testing.T, p *Pool, wave int) {
		t.Helper()
		for i := 0; i < 24; i++ {
			r := openloop.Request{Off: int64((wave*24 + i) % 64) * 4096, Len: 4096, Write: i%3 == 0}
			if i%7 == 0 {
				r.Deadline = 1 // 1 ps: expires at the first boundary
			}
			if _, err := p.Submit(r); err != nil {
				t.Fatalf("wave %d submit %d: %v", wave, i, err)
			}
		}
	}

	// Run A: Poll, drained in uneven chunks across two Drain cycles.
	polled := func() []Completion {
		p := newTestPool(t, 2, 1, 1, 4096)
		var recs []Completion
		submitWave(t, p, 0)
		if err := p.Drain(); err != nil {
			t.Fatal(err)
		}
		for _, chunk := range []int{1, 5, 0} { // 0 drains the rest
			recs = append(recs, p.Poll(chunk)...)
		}
		submitWave(t, p, 1)
		if err := p.Drain(); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, p.Poll(7)...)
		recs = append(recs, p.Poll(0)...)
		return recs
	}()

	// Run B: identical drive, records delivered through Notify instead.
	notified := func() []Completion {
		var recs []Completion
		p := newTestPool(t, 2, 1, 1, 4096, func(cfg *Config) {
			cfg.Notify = func(c Completion) { recs = append(recs, c) }
		})
		submitWave(t, p, 0)
		if err := p.Drain(); err != nil {
			t.Fatal(err)
		}
		if got := p.Poll(0); got != nil {
			t.Fatalf("Poll returned %d records with Notify configured", len(got))
		}
		submitWave(t, p, 1)
		if err := p.Drain(); err != nil {
			t.Fatal(err)
		}
		return recs
	}()

	if len(polled) != 48 || len(notified) != 48 {
		t.Fatalf("delivered %d polled / %d notified records, want 48 each", len(polled), len(notified))
	}
	// Err carries freshly allocated wrapped errors, so compare records by
	// rendered value, not interface identity.
	render := func(c Completion) string {
		errText := ""
		if c.Err != nil {
			errText = c.Err.Error()
		}
		return fmt.Sprintf("id=%d tenant=%d write=%v outcome=%v err=%q at=%v lat=%v late=%v lateness=%v",
			c.ID, c.Tenant, c.Write, c.Outcome, errText, c.At, c.Latency, c.Late, c.Lateness)
	}
	expired := 0
	for i := range polled {
		if render(polled[i]) != render(notified[i]) {
			t.Fatalf("record %d differs between Poll and Notify delivery:\npoll:   %+v\nnotify: %+v",
				i, polled[i], notified[i])
		}
		if polled[i].Outcome == OutcomeExpired {
			expired++
			if !errors.Is(polled[i].Err, ErrDeadlineExceeded) {
				t.Fatalf("expired record %d lacks typed error: %v", i, polled[i].Err)
			}
		}
	}
	if expired == 0 {
		t.Fatal("no expirations: the waves' hopeless deadlines never fired")
	}
	// Delivery order is per-epoch canonical channel order, not terminal-
	// instant order — but records never cross a Drain cycle: every wave-0
	// record (IDs 1..24) is delivered before any wave-1 record (25..48).
	for i, c := range polled {
		if i < 24 != (c.ID <= 24) {
			t.Fatalf("record %d (ID %d) crossed its drain cycle", i, c.ID)
		}
	}
}
