package pool

import "nvdimmc/internal/metrics"

// breakerState is the classic three-state circuit-breaker FSM, clocked
// entirely off epoch boundaries: observations are folded in at collect()
// (canonical order) and transitions happen in tick() at the boundary, so the
// breaker is byte-identical at any worker count.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "?"
}

// breaker guards one channel's dispatch path. Closed: dispatch freely while
// counting failures over a sliding window of BreakerWindow epochs; trip to
// Open when the window holds >= BreakerMinSamples observations and the
// failure fraction reaches BreakerErrRate. Open: dispatch nothing for
// BreakerCooldown epochs (doubled on each consecutive reopen, capped at 8x),
// then go HalfOpen. HalfOpen: allow BreakerProbes dispatches per epoch; any
// failure reopens, BreakerCloseStreak consecutive successes close.
//
// A "failure" is a fragment completing with an error, or — when
// BreakerLatency > 0 — completing slower than that bound.
type breaker struct {
	cfg *Config
	ctr *metrics.Counters

	state    breakerState
	winTotal int // observations in the current closed window
	winFail  int
	winLeft  int // epochs left in the current closed window
	cooldown int // epochs left before Open goes HalfOpen
	coolBase int // current (escalated) cooldown length
	streak   int // consecutive half-open successes
}

func newBreaker(cfg *Config, ctr *metrics.Counters) *breaker {
	return &breaker{cfg: cfg, ctr: ctr, winLeft: cfg.BreakerWindow, coolBase: cfg.BreakerCooldown}
}

// budget returns how many fragments fill() may dispatch this epoch. Closed
// is unbounded (the in-flight window is the real cap); Open admits nothing;
// HalfOpen admits the probe allowance.
func (b *breaker) budget() int {
	switch b.state {
	case breakerOpen:
		return 0
	case breakerHalfOpen:
		return b.cfg.BreakerProbes
	}
	return int(^uint(0) >> 1)
}

// observe folds one completed fragment into the FSM. Called at collect() in
// canonical order. Completions that land while Open are stragglers
// dispatched before the trip; they carry no new signal and are ignored.
func (b *breaker) observe(failed bool) {
	switch b.state {
	case breakerClosed:
		b.winTotal++
		if failed {
			b.winFail++
		}
	case breakerHalfOpen:
		if failed {
			b.state = breakerOpen
			if b.coolBase < 8*b.cfg.BreakerCooldown {
				b.coolBase *= 2
			}
			b.cooldown = b.coolBase
			b.streak = 0
			b.ctr.Inc("breaker-reopen")
			return
		}
		b.streak++
		if b.streak >= b.cfg.BreakerCloseStreak {
			b.state = breakerClosed
			b.winTotal, b.winFail, b.winLeft = 0, 0, b.cfg.BreakerWindow
			b.coolBase = b.cfg.BreakerCooldown
			b.ctr.Inc("breaker-close")
		}
	}
}

// quietHorizon bounds quiet-epoch batching for this breaker: an Open
// breaker's cooldown expiry (the half-open transition, which restores
// dispatch budget) must land at or before the batch's final replayed tick,
// never silently inside the span. Closed and half-open breakers impose no
// bound — with no observations folding in, replayed ticks advance their
// windows but cannot change their state.
func (b *breaker) quietHorizon() (int, bool) {
	if b.state == breakerOpen {
		return b.cooldown, true
	}
	return 0, false
}

// tick advances the FSM one epoch at the boundary (after observe folding).
func (b *breaker) tick() {
	switch b.state {
	case breakerClosed:
		b.winLeft--
		if b.winLeft > 0 {
			return
		}
		if b.winTotal >= b.cfg.BreakerMinSamples &&
			float64(b.winFail) >= b.cfg.BreakerErrRate*float64(b.winTotal) {
			b.state = breakerOpen
			b.cooldown = b.coolBase
			b.ctr.Inc("breaker-trip")
		}
		b.winTotal, b.winFail, b.winLeft = 0, 0, b.cfg.BreakerWindow
	case breakerOpen:
		b.cooldown--
		if b.cooldown <= 0 {
			b.state = breakerHalfOpen
			b.streak = 0
			b.ctr.Inc("breaker-halfopen")
		}
	}
}
