package pool

import "nvdimmc/internal/nvdc"

// rebuildJob copies a quarantined victim's resident state onto the spare
// that took over its logical position. Pages are the victim's cache-resident
// set snapshotted (LPN-sorted, hence deterministic) at failover time; each
// epoch the front end issues at most RebuildPagesPerEpoch page copies, each
// a victim read paired with a spare write, so the rebuild is rate-limited
// and its interference with foreground tails is measurable. The victim stays
// Quarantined until the last copy lands, then becomes Evacuated.
type rebuildJob struct {
	victim, spare int
	pages         []nvdc.ResidentPage
	next          int // next pages[] index to issue
	outstanding   int // issued ops (reads + writes) not yet collected
	readMiss      int // victim reads that failed (page copied best-effort)
	writeFail     int // spare writes that failed
}

// rebuildEvent is a rebuild op completion, recorded member-locally mid-epoch
// and drained at the boundary like front-end completions.
type rebuildEvent struct {
	job   *rebuildJob
	write bool
	err   error
}

// failover reroutes a logical position from a quarantined victim to the
// lowest-indexed free healthy spare and starts the background rebuild. With
// no spare free the position keeps pointing at the victim: fill() then fails
// its fragments with ErrMemberQuarantined (typed, never silent).
func (p *Pool) failover(logical, victim int) {
	spare := -1
	for i := p.Dec.Members(); i < len(p.members); i++ {
		h := p.health[i]
		if h.spare && !h.inService && h.state == StateUp {
			spare = i
			break
		}
	}
	if spare < 0 {
		p.ctrPool.Inc("failover-no-spare")
		return
	}
	sh := p.health[spare]
	sh.inService = true
	sh.logical = logical
	p.health[victim].logical = -1
	p.route[logical] = spare
	p.sparesUsed++
	p.ctrPool.Inc("failover")

	// Snapshot the victim's resident set now; front-end traffic no longer
	// reaches it, so the set only shrinks by our own (non-evicting) reads.
	// Bad-block spread makes per-member capacities differ slightly — skip
	// pages the smaller of the two devices cannot address.
	lim := p.members[victim].tgt.Capacity()
	if c := p.members[spare].tgt.Capacity(); c < lim {
		lim = c
	}
	all := p.members[victim].sys.Driver.Resident()
	pages := all[:0]
	for _, pg := range all {
		if (pg.LPN+1)*PageSize <= lim {
			pages = append(pages, pg)
		} else {
			p.ctrPool.Inc("rebuild-skipped")
		}
	}
	p.rebuilds = append(p.rebuilds, &rebuildJob{victim: victim, spare: spare, pages: pages})
}

// issueRebuilds runs at the epoch boundary before the kernels advance: for
// each active job, in job order, it schedules up to RebuildPagesPerEpoch
// page copies. Rebuild ops bypass the channel queues, windows and breakers —
// they are the pool's own evacuation traffic, not front-end submissions (the
// post-quarantine dispatch audit does not count them) — and draw no jitter,
// so the schedule is a pure function of the fault history.
func (p *Pool) issueRebuilds() {
	for _, j := range p.rebuilds {
		budget := p.Cfg.RebuildPagesPerEpoch
		for budget > 0 && j.next < len(j.pages) {
			pg := j.pages[j.next]
			j.next++
			budget--
			p.rebuildOp(j, j.victim, pg.LPN, false)
			p.rebuildOp(j, j.spare, pg.LPN, true)
			j.outstanding += 2
			p.ctrPool.Inc("rebuild-pages")
		}
	}
}

func (p *Pool) rebuildOp(j *rebuildJob, phys int, lpn int64, write bool) {
	m := p.members[phys]
	cpu := m.tgt.ThreadCPU(PageSize, write)
	jj, mm, w := j, m, write
	m.sys.K.ScheduleAt(p.now.Add(cpu), func() {
		mm.tgt.DoE(lpn*PageSize, PageSize, w, func(err error) {
			mm.rdone = append(mm.rdone, rebuildEvent{job: jj, write: w, err: err})
		})
	})
}

// sweepRebuilds retires finished jobs after the boundary drain: a job is
// done when every page was issued and every op collected. The victim is then
// Evacuated. Failed victim reads or spare writes are counted, not retried —
// the copy is best-effort occupancy traffic (the pool carries no redundancy
// to reconstruct from); what matters for the campaign is that the job
// terminates and its interference window closes.
func (p *Pool) sweepRebuilds() {
	if len(p.rebuilds) == 0 {
		return
	}
	active := p.rebuilds[:0]
	for _, j := range p.rebuilds {
		if j.next >= len(j.pages) && j.outstanding == 0 {
			p.health[j.victim].state = StateEvacuated
			p.ctrPool.Inc("member-evacuated")
			continue
		}
		active = append(active, j)
	}
	p.rebuilds = active
}
