// Package pool scales the single-module simulation to a socket: N
// independent core.System instances — one per (channel, DIMM) position, each
// with its own iMC, DRAM cache, refresh detector, NVMC and auditor — behind
// an interleaved address decoder and an open-loop front-end scheduler with
// per-channel queues, epoch-batched dispatch, bounded in-flight windows and
// admission control. The paper's PoC is one NVDIMM-C on one DDR4 channel
// (§VI); its target deployment (§I, §VIII) populates 6 channels x 2 DIMMs
// per socket, where the Optane literature shows interleave granularity and
// per-DIMM contention dominate delivered bandwidth and tail latency.
//
// # Determinism
//
// Channels advance in conservative epoch lockstep. All cross-member
// interaction — arrival admission, queue refill, window dispatch, completion
// collection — happens single-threaded at epoch boundaries, in canonical
// member/channel order; between boundaries each member's kernel runs
// independently (optionally on parallel workers) and touches only its own
// state, exactly the PR-2 shard contract. A member never observes another
// member's mid-epoch state, so the pooled run is byte-identical at any
// worker count, including under -race. The price is scheduling latency
// quantized to the epoch (default one tREFI) and an in-flight window that
// only recycles at boundaries; both are front-end costs a real socket pays
// in different coin (arbitration, queue polling), and both are sized so the
// window, not the epoch, bounds per-channel throughput headroom.
//
// # Backpressure
//
// Each channel owns a bounded dispatch queue (QueueCap) feeding a bounded
// in-flight window (Window). Arrivals that find their channel's queue full
// are held at admission — never dropped — and re-offered each epoch in
// arrival order. A hot channel therefore degrades into growing held/queue
// latency on its own traffic while other channels keep streaming; nothing
// blocks pool-wide, no acked write is ever lost, and the saturation shows up
// where it should: in that channel's p99/p999.
package pool

import (
	"fmt"
	"sync"
	"sync/atomic"

	"nvdimmc/internal/core"
	"nvdimmc/internal/metrics"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/fio"
	"nvdimmc/internal/workload/openloop"
)

// PageSize re-exports the system-wide management granularity.
const PageSize = core.PageSize

// Config parameterizes a pooled socket.
type Config struct {
	// Channels is the memory-channel count (the paper's target board has 6).
	Channels int
	// DIMMsPerChannel multiplies capacity per channel (servers run 2).
	DIMMsPerChannel int
	// Interleave is the stripe granularity in bytes: 4 KB (page) or 2 MB
	// (huge page) are the supported sweep points; any multiple of the page
	// size that divides member capacity works.
	Interleave int64
	// Member configures every (channel, DIMM) core.System identically;
	// per-member RNG streams are split from Seed.
	Member core.Config
	// Window caps in-flight fragments per channel (default 32). Slots
	// recycle at epoch boundaries, so Window/Epoch bounds per-channel
	// throughput; the default leaves ~4x headroom over a cached channel.
	Window int
	// QueueCap bounds each channel's dispatch queue (default 64); beyond it
	// arrivals are held at admission (backpressure).
	QueueCap int
	// Epoch is the lockstep quantum (default: the member tREFI).
	Epoch sim.Duration
	// Workers caps how many members advance concurrently per epoch (<=1
	// serial; output is identical either way).
	Workers int
	// Seed master-seeds per-member systems and the dispatch jitter streams.
	Seed uint64
	// PrefillPages seq-writes this many pages per member before the pool
	// opens, making them cache-resident (the NVDC-Cached precondition); -1
	// prefills 90% of each member's slots; 0 skips.
	PrefillPages int
	// WalkFootprint, when nonzero, pins every member's TLB/page-walk cost to
	// this (paper-scale) footprint, as the scaled experiments do.
	WalkFootprint int64
	// MaxEpochs guards Run against a wedged pool (default 1<<22 epochs).
	MaxEpochs int
}

// DefaultConfig returns a laptop-scale pool: 1 channel x 1 DIMM of the
// default scaled member, 4 KB interleave.
func DefaultConfig() Config {
	return Config{
		Channels:        1,
		DIMMsPerChannel: 1,
		Interleave:      4096,
		Member:          core.DefaultConfig(),
		Seed:            1,
	}
}

func (c *Config) fillDefaults() error {
	if c.Channels < 1 || c.DIMMsPerChannel < 1 {
		return fmt.Errorf("pool: %d channels x %d DIMMs", c.Channels, c.DIMMsPerChannel)
	}
	if c.Interleave == 0 {
		c.Interleave = 4096
	}
	if c.Interleave%PageSize != 0 {
		return fmt.Errorf("pool: interleave %d not a multiple of the %d B page", c.Interleave, PageSize)
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Epoch <= 0 {
		c.Epoch = c.Member.TREFI
		if c.Epoch <= 0 {
			c.Epoch = 7800 * sim.Nanosecond
		}
	}
	if c.MaxEpochs <= 0 {
		c.MaxEpochs = 1 << 22
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// request is one front-end op; fragments spanning stripes complete it
// together.
type request struct {
	arrival   sim.Time
	write     bool
	remaining int
	lastDone  sim.Time
	channel0  int // channel of the first fragment: latency attribution
}

// fragment is the per-member piece of a request.
type fragment struct {
	req    *request
	member int
	off    int64
	n      int
}

// completion is recorded by a member mid-epoch, drained at the boundary.
type completion struct {
	frag *fragment
	at   sim.Time
}

// member is one (channel, DIMM) system.
type member struct {
	sys *core.System
	tgt *core.FioTarget
	jit *sim.Rand
	// done accumulates completions during an epoch; only this member's
	// worker touches it until the barrier.
	done []completion
}

// channelState is the front-end's per-channel scheduler state.
type channelState struct {
	pending  []*fragment // admission-held, FIFO (unbounded: backpressure, never drop)
	queue    []*fragment // dispatchable batch, <= QueueCap
	inflight int         // dispatched fragments not yet collected
	lat      *metrics.Histogram
	meter    *metrics.Meter
	ctr      *metrics.Counters
}

// Pool is an assembled socket-scale memory pool.
type Pool struct {
	Cfg Config
	Dec *Decoder

	members []*member
	chans   []*channelState
	epoch0  sim.Time
	now     sim.Time

	submitted uint64
	completed uint64
	writesIn  uint64
	writesAck uint64
	epochs    int
	heldPeak  int
}

// New assembles Channels x DIMMsPerChannel member systems (in parallel when
// cfg.Workers > 1 — construction order is irrelevant to state), prefills
// them, and aligns their clocks on the first epoch boundary.
func New(cfg Config) (*Pool, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	n := cfg.Channels * cfg.DIMMsPerChannel
	p := &Pool{Cfg: cfg, members: make([]*member, n)}
	errs := make([]error, n)
	parallelEach(n, cfg.Workers, func(i int) {
		mcfg := cfg.Member
		mcfg.Seed = sim.SplitSeed(cfg.Seed, fmt.Sprintf("pool/member-%02d", i))
		sys, err := core.NewSystem(mcfg)
		if err != nil {
			errs[i] = fmt.Errorf("member %d: %w", i, err)
			return
		}
		tgt := sys.NewFioTarget()
		pre := cfg.PrefillPages
		if pre < 0 {
			pre = sys.Layout.NumSlots * 9 / 10
		}
		if pre > 0 {
			if err := fio.Prefill(tgt, int64(pre)*PageSize, PageSize); err != nil {
				errs[i] = fmt.Errorf("member %d prefill: %w", i, err)
				return
			}
		}
		if cfg.WalkFootprint > 0 {
			tgt.SetWalkFootprint(cfg.WalkFootprint)
		}
		tgt.Prepare(tgt.Capacity())
		p.members[i] = &member{
			sys: sys,
			tgt: tgt,
			jit: sim.NewRand(sim.SplitSeed(cfg.Seed, fmt.Sprintf("pool/jitter-%02d", i))),
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Seeded media models mark different bad blocks per member, so usable
	// capacities differ slightly; the pool addresses the least common
	// capacity, rounded down to whole stripes — as a BIOS interleaving
	// mismatched DIMMs would.
	memberCap := p.members[0].tgt.Capacity()
	for _, m := range p.members[1:] {
		if c := m.tgt.Capacity(); c < memberCap {
			memberCap = c
		}
	}
	memberCap -= memberCap % cfg.Interleave
	if memberCap <= 0 {
		return nil, fmt.Errorf("pool: member capacity below one %d B stripe", cfg.Interleave)
	}
	dec, err := NewDecoder(n, cfg.Interleave, memberCap)
	if err != nil {
		return nil, err
	}
	p.Dec = dec

	// Boot and prefill advance each member by a slightly different amount
	// (seeded media models differ); align all clocks on the latest.
	for _, m := range p.members {
		if t := m.sys.K.Now(); t > p.epoch0 {
			p.epoch0 = t
		}
	}
	for _, m := range p.members {
		m.sys.K.RunUntil(p.epoch0)
	}
	p.now = p.epoch0

	p.chans = make([]*channelState, cfg.Channels)
	for i := range p.chans {
		p.chans[i] = &channelState{
			lat:   metrics.NewHistogram(),
			meter: metrics.NewMeter(p.epoch0),
			ctr:   metrics.NewCounters(),
		}
	}
	return p, nil
}

// Capacity returns the pooled byte-addressable capacity.
func (p *Pool) Capacity() int64 { return p.Dec.Capacity() }

// CachedFootprint returns the largest stripe-aligned pooled footprint whose
// every fragment lands inside the per-member prefilled (cache-resident)
// region — the pooled analogue of the NVDC-Cached precondition.
func (p *Pool) CachedFootprint() int64 {
	pre := p.Cfg.PrefillPages
	if pre < 0 {
		pre = p.members[0].sys.Layout.NumSlots * 9 / 10
	}
	groups := int64(pre) * PageSize / p.Cfg.Interleave
	if groups > p.Dec.groupCount {
		groups = p.Dec.groupCount
	}
	return groups * p.Cfg.Interleave * int64(len(p.members))
}

// channelOf maps a member index to its channel: the decoder interleaves
// across channels first, so adjacent stripes land on adjacent channels.
func (p *Pool) channelOf(memberIdx int) int { return memberIdx % p.Cfg.Channels }

// submit decodes one arrival into fragments and routes each to its channel:
// into the dispatch queue when there is room, held at admission otherwise.
func (p *Pool) submit(r openloop.Request) {
	req := &request{
		arrival: p.epoch0.Add(r.Arrival),
		write:   r.Write,
	}
	frags := p.Dec.Fragments(r.Off, r.Len)
	req.remaining = len(frags)
	req.channel0 = p.channelOf(frags[0].Member)
	p.submitted++
	if req.write {
		p.writesIn++
	}
	for i := range frags {
		f := &fragment{req: req, member: frags[i].Member, off: frags[i].Off, n: frags[i].Len}
		ch := p.chans[p.channelOf(f.member)]
		if len(ch.queue) < p.Cfg.QueueCap {
			ch.queue = append(ch.queue, f)
			ch.ctr.Inc("frags-admitted")
		} else {
			ch.pending = append(ch.pending, f)
			ch.ctr.Inc("frags-held")
		}
	}
}

// fill refills a channel's queue from its held list, then dispatches queued
// fragments into the in-flight window.
func (p *Pool) fill(ci int) {
	ch := p.chans[ci]
	for len(ch.pending) > 0 && len(ch.queue) < p.Cfg.QueueCap {
		ch.queue = append(ch.queue, ch.pending[0])
		ch.pending = ch.pending[1:]
		ch.ctr.Inc("frags-admitted")
	}
	dispatched := false
	for ch.inflight < p.Cfg.Window && len(ch.queue) > 0 {
		f := ch.queue[0]
		ch.queue = ch.queue[1:]
		ch.inflight++
		ch.ctr.Inc("frags-dispatched")
		dispatched = true
		p.dispatch(f)
	}
	if dispatched {
		ch.ctr.Inc("dispatch-batches")
	}
	if held := len(ch.pending); held > p.heldPeak {
		p.heldPeak = held
	}
}

// dispatch schedules one fragment on its member's kernel: the host CPU cost
// (plus deterministic jitter, drawn here at the single-threaded boundary so
// worker count cannot reorder draws), then the device op. The completion
// callback runs mid-epoch on the member's worker and only touches
// member-local state.
func (p *Pool) dispatch(f *fragment) {
	m := p.members[f.member]
	at := f.req.arrival
	if at < p.now {
		at = p.now
	}
	cpu := m.tgt.ThreadCPU(f.n, f.req.write)
	cpu += sim.Duration(m.jit.Int63n(int64(cpu)/2+1)) - sim.Duration(int64(cpu)/4)
	mm := m
	frag := f
	m.sys.K.ScheduleAt(at.Add(cpu), func() {
		mm.tgt.Do(frag.off, frag.n, frag.req.write, func() {
			mm.done = append(mm.done, completion{frag: frag, at: mm.sys.K.Now()})
		})
	})
}

// collect drains every member's completions (member order, then completion
// order — both deterministic), releasing window slots and finishing
// requests.
func (p *Pool) collect() {
	for _, m := range p.members {
		for _, c := range m.done {
			f := c.frag
			ch := p.chans[p.channelOf(f.member)]
			ch.inflight--
			ch.meter.Record(c.at, f.n)
			ch.ctr.Inc("frags-completed")
			r := f.req
			if c.at > r.lastDone {
				r.lastDone = c.at
			}
			r.remaining--
			if r.remaining == 0 {
				p.chans[r.channel0].lat.Record(r.lastDone.Sub(r.arrival))
				p.chans[r.channel0].ctr.Inc("requests-completed")
				p.completed++
				if r.write {
					p.writesAck++
				}
			}
		}
		m.done = m.done[:0]
	}
}

// Run drains requests from next (until it reports false) through the pool
// and returns once every admitted request has completed. next is called at
// epoch boundaries only.
func (p *Pool) Run(next func() (openloop.Request, bool)) error {
	var look *openloop.Request
	exhausted := false
	for {
		if p.epochs >= p.Cfg.MaxEpochs {
			return fmt.Errorf("pool: %d epochs without draining (%d/%d requests complete) — wedged?",
				p.epochs, p.completed, p.submitted)
		}
		p.epochs++
		epochEnd := p.now.Add(p.Cfg.Epoch)
		for !exhausted {
			if look == nil {
				r, ok := next()
				if !ok {
					exhausted = true
					break
				}
				look = &r
			}
			if p.epoch0.Add(look.Arrival) >= epochEnd {
				break
			}
			p.submit(*look)
			look = nil
		}
		for ci := range p.chans {
			p.fill(ci)
		}
		parallelEach(len(p.members), p.Cfg.Workers, func(i int) {
			p.members[i].sys.K.RunUntil(epochEnd)
		})
		p.collect()
		p.now = epochEnd
		if exhausted && look == nil && p.completed == p.submitted {
			return nil
		}
	}
}

// RunOpenLoop feeds count requests from gen through the pool.
func (p *Pool) RunOpenLoop(gen *openloop.Generator, count int) error {
	issued := 0
	return p.Run(func() (openloop.Request, bool) {
		if issued >= count {
			return openloop.Request{}, false
		}
		issued++
		return gen.Next(), true
	})
}

// Stats is the pool-level aggregate plus the per-channel breakdown.
type Stats struct {
	// Lat holds request latencies (arrival to last-fragment completion).
	Lat *metrics.Histogram
	// Meter aggregates completed bytes over the pooled measurement span
	// (min start / max end across channels, not the double-counting sum).
	Meter *metrics.Meter
	// Ctr merges the per-channel scheduler counters.
	Ctr *metrics.Counters
	// PerChannel carries each channel's own view, channel order.
	PerChannel []ChannelStats

	Submitted   uint64
	Completed   uint64
	WritesAcked uint64
	Epochs      int
	// HeldPeak is the deepest any channel's admission-held backlog got.
	HeldPeak int
}

// ChannelStats is one channel's front-end view.
type ChannelStats struct {
	Lat   *metrics.Histogram
	Meter *metrics.Meter
	Ctr   *metrics.Counters
}

// Stats merges the per-channel stats into the pool view using the metrics
// Merge primitives (no sample is re-recorded).
func (p *Pool) Stats() Stats {
	s := Stats{
		Lat:         metrics.NewHistogram(),
		Meter:       metrics.NewMeter(p.epoch0),
		Ctr:         metrics.NewCounters(),
		Submitted:   p.submitted,
		Completed:   p.completed,
		WritesAcked: p.writesAck,
		Epochs:      p.epochs,
		HeldPeak:    p.heldPeak,
	}
	for _, ch := range p.chans {
		s.Lat.Merge(ch.lat)
		s.Meter.Merge(ch.meter)
		s.Ctr.Merge(ch.ctr)
		s.PerChannel = append(s.PerChannel, ChannelStats{Lat: ch.lat, Meter: ch.meter, Ctr: ch.ctr})
	}
	return s
}

// Member exposes member i's system (tests and health checks).
func (p *Pool) Member(i int) *core.System { return p.members[i].sys }

// Members returns the member count.
func (p *Pool) Members() int { return len(p.members) }

// CheckHealth runs every member's CheckHealth and the pool's own
// conservation invariants: every admitted request completed, every acked
// write accounted, no fragment stranded in a queue or window.
func (p *Pool) CheckHealth() error {
	if p.completed != p.submitted {
		return fmt.Errorf("pool: %d of %d requests incomplete", p.submitted-p.completed, p.submitted)
	}
	if p.writesAck != p.writesIn {
		return fmt.Errorf("pool: %d writes admitted but %d acked", p.writesIn, p.writesAck)
	}
	for i, ch := range p.chans {
		if len(ch.pending) != 0 || len(ch.queue) != 0 || ch.inflight != 0 {
			return fmt.Errorf("pool: channel %d left held=%d queued=%d inflight=%d",
				i, len(ch.pending), len(ch.queue), ch.inflight)
		}
	}
	for i, m := range p.members {
		if err := m.sys.CheckHealth(); err != nil {
			return fmt.Errorf("pool: member %d: %w", i, err)
		}
	}
	return nil
}

// parallelEach runs fn(0..n-1) across at most workers goroutines (serial
// when workers <= 1). Callers guarantee fn(i) touches only item-i state, so
// scheduling order cannot leak into results — the same contract as the
// experiment layer's runShards.
func parallelEach(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
