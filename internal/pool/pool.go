// Package pool scales the single-module simulation to a socket: N
// independent core.System instances — one per (channel, DIMM) position, each
// with its own iMC, DRAM cache, refresh detector, NVMC and auditor — behind
// an interleaved address decoder and an open-loop front-end scheduler with
// per-channel queues, epoch-batched dispatch, bounded in-flight windows and
// admission control. The paper's PoC is one NVDIMM-C on one DDR4 channel
// (§VI); its target deployment (§I, §VIII) populates 6 channels x 2 DIMMs
// per socket, where the Optane literature shows interleave granularity and
// per-DIMM contention dominate delivered bandwidth and tail latency.
//
// # Determinism
//
// Channels advance in conservative epoch lockstep. All cross-member
// interaction — arrival admission, queue refill, window dispatch, completion
// collection — happens single-threaded at epoch boundaries, in canonical
// member/channel order; between boundaries each member's kernel runs
// independently (optionally on parallel workers) and touches only its own
// state, exactly the PR-2 shard contract. A member never observes another
// member's mid-epoch state, so the pooled run is byte-identical at any
// worker count, including under -race. The price is scheduling latency
// quantized to the epoch (default one tREFI) and an in-flight window that
// only recycles at boundaries; both are front-end costs a real socket pays
// in different coin (arbitration, queue polling), and both are sized so the
// window, not the epoch, bounds per-channel throughput headroom.
//
// # Backpressure
//
// Each channel owns a bounded dispatch queue (QueueCap) feeding a bounded
// in-flight window (Window). Arrivals that find their channel's queue full
// are held at admission and re-offered each epoch in arrival order. Under
// the default AdmitBlock policy the held list is unbounded — never drop — so
// a hot channel degrades into growing held/queue latency on its own traffic
// while other channels keep streaming; the shedding policies (plane.go)
// bound it at PendingCap and turn overload into typed, counted sheds
// instead. Either way nothing blocks pool-wide, no acked write is ever
// lost, and the saturation shows up where it should: in that channel's
// p99/p999 or its shed counters.
package pool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nvdimmc/internal/core"
	"nvdimmc/internal/fault"
	"nvdimmc/internal/metrics"
	"nvdimmc/internal/nvdc"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/fio"
	"nvdimmc/internal/workload/openloop"
)

// PageSize re-exports the system-wide management granularity.
const PageSize = core.PageSize

// Config parameterizes a pooled socket.
type Config struct {
	// Channels is the memory-channel count (the paper's target board has 6).
	Channels int
	// DIMMsPerChannel multiplies capacity per channel (servers run 2).
	DIMMsPerChannel int
	// Interleave is the stripe granularity in bytes: 4 KB (page) or 2 MB
	// (huge page) are the supported sweep points; any multiple of the page
	// size that divides member capacity works.
	Interleave int64
	// Member configures every (channel, DIMM) core.System identically;
	// per-member RNG streams are split from Seed.
	Member core.Config
	// Window caps in-flight fragments per channel (default 32). Slots
	// recycle at epoch boundaries, so Window/Epoch bounds per-channel
	// throughput; the default leaves ~4x headroom over a cached channel.
	Window int
	// QueueCap bounds each channel's dispatch queue (default 64); beyond it
	// arrivals are held at admission (backpressure).
	QueueCap int
	// Epoch is the lockstep quantum (default: the member tREFI).
	Epoch sim.Duration
	// Workers caps how many members advance concurrently per epoch (<=1
	// serial; output is identical either way).
	Workers int
	// Seed master-seeds per-member systems and the dispatch jitter streams.
	Seed uint64
	// PrefillPages seq-writes this many pages per member before the pool
	// opens, making them cache-resident (the NVDC-Cached precondition); -1
	// prefills 90% of each member's slots; 0 skips.
	PrefillPages int
	// WalkFootprint, when nonzero, pins every member's TLB/page-walk cost to
	// this (paper-scale) footprint, as the scaled experiments do.
	WalkFootprint int64
	// MaxEpochs guards Run against a wedged pool (default 1<<22 epochs).
	MaxEpochs int

	// Spares adds hot-spare members beyond Channels x DIMMsPerChannel. They
	// are constructed and prefilled like every other member but receive no
	// traffic until a quarantined member's logical position fails over.
	Spares int
	// FaultSeed, when nonzero, arms a seeded fault registry per member
	// (split per member index, so schedules are independent and worker-count
	// invariant). Zero keeps every member fault-free.
	FaultSeed uint64
	// ArmFaults, when non-nil, is called once per member after its prefill
	// (so prefill traffic never trips rules) to install that member's fault
	// schedule. It may run concurrently across members during New; touch
	// only the given registry. Setting it with FaultSeed == 0 defaults
	// FaultSeed to Seed.
	ArmFaults func(member int, reg *fault.Registry)

	// ProbeEvery runs the member health probe every this many epochs
	// (default 4).
	ProbeEvery int
	// SuspectClearProbes is how many consecutive clean probes return a
	// Suspect member to Up (default 4).
	SuspectClearProbes int
	// QuarantineFragErrs quarantines a member once this many of its
	// dispatched fragments have failed (default 8).
	QuarantineFragErrs int

	// MaxRetries caps per-fragment redispatch attempts before the request
	// fails with ErrPoolDegraded (default 4; negative disables retries).
	MaxRetries int
	// RetryBackoffEpochs is the first retry delay in epochs (default 1);
	// it doubles per attempt up to RetryBackoffCap (default 8).
	RetryBackoffEpochs int
	RetryBackoffCap    int

	// RebuildPagesPerEpoch rate-limits the background rebuild (default 8
	// page copies per epoch per job).
	RebuildPagesPerEpoch int

	// Admission selects the front-end admission policy (default AdmitBlock,
	// the hold-everything behavior; see plane.go for the shedding policies).
	Admission AdmissionPolicy
	// QoS configures per-tenant token-bucket policing, DRR dispatch and SLO
	// tracking (qos.go). The zero value keeps the legacy tenant-blind path.
	QoS QoSConfig
	// PendingCap bounds each channel's admission-held backlog in fragments
	// under the shedding policies (default 256; AdmitBlock ignores it and
	// holds unbounded).
	PendingCap int
	// Notify, when non-nil, receives every terminal Completion record in
	// deterministic order at the end of the epoch that retired it. Leave nil
	// to buffer records from plane-submitted requests for Poll instead.
	Notify func(Completion)

	// Per-channel circuit breaker thresholds; see type breaker.
	BreakerWindow      int          // epochs per closed-state window (default 8)
	BreakerMinSamples  int          // min observations to evaluate a window (default 8)
	BreakerErrRate     float64      // failure fraction that trips (default 0.5)
	BreakerCooldown    int          // epochs open before half-open (default 16)
	BreakerProbes      int          // half-open dispatches per epoch (default 2)
	BreakerCloseStreak int          // half-open successes to close (default 8)
	BreakerLatency     sim.Duration // completions slower than this count as failures (0 disables)

	// DisableLookahead forces every member advance through the naive
	// event-by-event RunUntil and every epoch through the full boundary
	// body, turning off both the member idle-warp and quiet-epoch batching.
	// The zero value (lookahead on) is the fast path; the knob exists for
	// the byte-identity contract tests and the harness speedup measurement
	// — output is identical either way.
	DisableLookahead bool
}

// DefaultConfig returns a laptop-scale pool: 1 channel x 1 DIMM of the
// default scaled member, 4 KB interleave.
func DefaultConfig() Config {
	return Config{
		Channels:        1,
		DIMMsPerChannel: 1,
		Interleave:      4096,
		Member:          core.DefaultConfig(),
		Seed:            1,
	}
}

func (c *Config) fillDefaults() error {
	if c.Channels < 1 || c.DIMMsPerChannel < 1 {
		return fmt.Errorf("pool: %d channels x %d DIMMs", c.Channels, c.DIMMsPerChannel)
	}
	if c.Interleave == 0 {
		c.Interleave = 4096
	}
	if c.Interleave%PageSize != 0 {
		return fmt.Errorf("pool: interleave %d not a multiple of the %d B page", c.Interleave, PageSize)
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Epoch <= 0 {
		c.Epoch = c.Member.TREFI
		if c.Epoch <= 0 {
			c.Epoch = 7800 * sim.Nanosecond
		}
	}
	if c.MaxEpochs <= 0 {
		c.MaxEpochs = 1 << 22
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Spares < 0 {
		return fmt.Errorf("pool: %d spares", c.Spares)
	}
	if c.ArmFaults != nil && c.FaultSeed == 0 {
		c.FaultSeed = c.Seed
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 4
	}
	if c.SuspectClearProbes <= 0 {
		c.SuspectClearProbes = 4
	}
	if c.QuarantineFragErrs <= 0 {
		c.QuarantineFragErrs = 8
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 4
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoffEpochs <= 0 {
		c.RetryBackoffEpochs = 1
	}
	if c.RetryBackoffCap <= 0 {
		c.RetryBackoffCap = 8
	}
	if c.RebuildPagesPerEpoch <= 0 {
		c.RebuildPagesPerEpoch = 8
	}
	if c.PendingCap <= 0 {
		c.PendingCap = 256
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 8
	}
	if c.BreakerMinSamples <= 0 {
		c.BreakerMinSamples = 8
	}
	if c.BreakerErrRate <= 0 {
		c.BreakerErrRate = 0.5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 16
	}
	if c.BreakerProbes <= 0 {
		c.BreakerProbes = 2
	}
	if c.BreakerCloseStreak <= 0 {
		c.BreakerCloseStreak = 8
	}
	if err := c.QoS.validate(); err != nil {
		return err
	}
	return nil
}

// request is one front-end op; fragments spanning stripes complete it
// together.
type request struct {
	id      uint64
	arrival sim.Time
	// deadline is the absolute expiry instant (arrival + budget); zero means
	// no deadline. Expiry is evaluated only at epoch boundaries (plane.go).
	deadline  sim.Time
	write     bool
	tenant    int
	bytes     int // total request length: per-tenant goodput metering
	remaining int
	lastDone  sim.Time
	channel0  int // channel of the first fragment: latency attribution
	// err is the first terminal fragment error; a request finishing with
	// err != nil counts as shed, expired or failed by its typed chain,
	// never as completed.
	err error
	// canceled marks a doomed request (shed-oldest victim or expired):
	// waiting fragments are swept at the next boundary, in-flight ones
	// complete and count their pieces.
	canceled bool
	// notify: emit a Completion record for Poll/Notify (plane submissions).
	notify bool
}

// fragment is the per-member piece of a request. member is the LOGICAL
// index the decoder assigned; the route table resolves it to a physical
// member at dispatch, so failover retargets queued fragments transparently.
type fragment struct {
	req      *request
	member   int
	off      int64
	n        int
	attempts int
}

// completion is recorded by a member mid-epoch, drained at the boundary.
type completion struct {
	frag *fragment
	phys int // physical member that served it (error attribution)
	at   sim.Time
	err  error
}

// retryEntry is a failed fragment waiting out its backoff.
type retryEntry struct {
	f     *fragment
	ready int // epoch number at which it re-enters admission
}

// member is one (channel, DIMM) system.
type member struct {
	sys *core.System
	tgt *core.FioTarget
	jit *sim.Rand
	// done accumulates completions during an epoch; only this member's
	// worker touches it until the barrier.
	done []completion
	// rdone accumulates rebuild-op completions the same way.
	rdone []rebuildEvent
}

// channelState is the front-end's per-channel scheduler state.
type channelState struct {
	pending  []*fragment // admission-held, FIFO (unbounded under AdmitBlock)
	queue    []*fragment // dispatchable batch, <= QueueCap
	inflight int         // dispatched fragments not yet collected
	brk      *breaker
	// svcBusyAt is the boundary of the first epoch this channel had work;
	// svcDone counts every fragment it has collected since (failures too —
	// they occupied service capacity just the same). Their quotient is the
	// channel's long-run per-fragment service interval: elapsed active time
	// over delivered completions. A long-run quotient is deliberately dumb —
	// a burst of cache hits landing in one epoch cannot drag it below the
	// rate the channel actually sustains while misses serialize on its
	// driver, and a sojourn-time average would lag the very backlog the
	// estimate exists to price.
	svcBusyAt sim.Time
	svcSeen   bool
	svcDone   int64
	// ewma smooths the long-run interval (alpha 1/8, integer arithmetic,
	// folded at collect in canonical channel order). Its reciprocal is the
	// channel's delivered throughput, whatever serializes it (driver queues,
	// breaker budgets, die timeouts), which makes backlog x ewma an estimate
	// of a new fragment's completion wait. During warmup the quotient runs
	// high (cold NAND paths, few completions), so admission errs toward
	// shedding work that would have been late anyway. Zero until the channel
	// has completed work.
	ewma sim.Duration
	// heldHW / queueHW are the run's high-water occupancy marks — the
	// overload observable that used to be invisible until memory grew.
	heldHW  int
	queueHW int
	// tq holds the per-tenant admission FIFOs when QoS isolation is armed
	// (last slot: catch-all for out-of-range tenant indexes); pending stays
	// the tenant-blind held list otherwise. drrNext is the persistent DRR
	// round pointer; drrMid marks a visit cut short by queue room (not
	// credit), which must resume in place without a fresh quantum (qos.go).
	tq      []tenantQueue
	drrNext int
	drrMid  bool
	lat     *metrics.Histogram
	meter   *metrics.Meter
	ctr     *metrics.Counters
}

// mark folds the current occupancy into the high-water marks; called at
// every boundary mutation point that can grow a list.
func (ch *channelState) mark() {
	if n := ch.held(); n > ch.heldHW {
		ch.heldHW = n
	}
	if n := len(ch.queue); n > ch.queueHW {
		ch.queueHW = n
	}
}

// Pool is an assembled socket-scale memory pool.
type Pool struct {
	Cfg Config
	Dec *Decoder

	members []*member
	chans   []*channelState
	// svcScratch is collect's reusable per-channel completion-count buffer.
	svcScratch []int
	// fragScratch is submitReq's reusable decode buffer; extents are copied
	// into fragments before the next submission reuses it.
	fragScratch []Extent
	// chanScratch is fragsPerChannel's reusable per-channel count buffer
	// (its two callers' lifetimes never overlap).
	chanScratch []int
	epoch0      sim.Time
	now         sim.Time

	// Fault-tolerance state: all boundary-only (single-threaded).
	health     []*memberHealth // per physical member
	route      []int           // logical index -> physical member
	retries    []retryEntry
	rebuilds   []*rebuildJob
	ctrPool    *metrics.Counters  // pool-level fault/failover counters
	latRebuild *metrics.Histogram // request latencies landed while a rebuild ran
	// latMiss holds the lateness overshoot of completed-but-late requests:
	// its tail is the campaign's deadline-miss p99/p999.
	latMiss *metrics.Histogram
	// completions buffers terminal records for Poll (plane submissions with
	// no Notify callback configured).
	completions []Completion
	nextID      uint64

	submitted uint64
	completed uint64
	failed    uint64
	// shed / expired are the overload outcomes: dropped by an admission
	// policy, or deadline passed before completion. Terminal like failed —
	// completed + failed + shed + expired == submitted once drained.
	shed    uint64
	expired uint64
	// completedLate counts completions that landed past their deadline
	// (still completed — the work was done, just late).
	completedLate uint64
	writesIn      uint64
	writesAck     uint64
	// writesFailed counts writes that terminated with a typed error: they
	// were never acked, so they are not lost — the submitter was told.
	writesFailed  uint64
	writesShed    uint64
	writesExpired uint64
	// throttled counts requests refused at admission by their tenant's token
	// bucket (typed ErrTenantThrottled) — terminal like shed.
	throttled       uint64
	writesThrottled uint64
	// qosT is the per-tenant QoS runtime state (len(Cfg.QoS.Tenants)+1, the
	// last a catch-all; nil when QoS is off). Boundary-only, like all
	// cross-member state.
	qosT []tenantState
	// untypedFailures counts requests that failed without ErrPoolDegraded /
	// ErrMemberQuarantined in the chain; CheckHealth demands zero.
	untypedFailures uint64
	// postQuarantine counts front-end dispatches that reached a quarantined
	// member; probe-before-fill ordering makes this structurally zero and
	// CheckHealth asserts it.
	postQuarantine uint64
	sparesUsed     int
	firstFailure   error
	epochs         int
	heldPeak       int
}

// New assembles Channels x DIMMsPerChannel member systems (in parallel when
// cfg.Workers > 1 — construction order is irrelevant to state), prefills
// them, and aligns their clocks on the first epoch boundary.
func New(cfg Config) (*Pool, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	n := cfg.Channels * cfg.DIMMsPerChannel
	total := n + cfg.Spares
	p := &Pool{Cfg: cfg, members: make([]*member, total)}
	errs := make([]error, total)
	parallelEach(total, cfg.Workers, func(i int) {
		mcfg := cfg.Member
		mcfg.Seed = sim.SplitSeed(cfg.Seed, fmt.Sprintf("pool/member-%02d", i))
		if cfg.FaultSeed != 0 {
			mcfg.FaultSeed = sim.SplitSeed(cfg.FaultSeed, fmt.Sprintf("pool/fault-%02d", i))
		}
		sys, err := core.NewSystem(mcfg)
		if err != nil {
			errs[i] = fmt.Errorf("member %d: %w", i, err)
			return
		}
		tgt := sys.NewFioTarget()
		pre := cfg.PrefillPages
		if pre < 0 {
			pre = sys.Layout.NumSlots * 9 / 10
		}
		if pre > 0 {
			if err := fio.Prefill(tgt, int64(pre)*PageSize, PageSize); err != nil {
				errs[i] = fmt.Errorf("member %d prefill: %w", i, err)
				return
			}
		}
		// Arm after prefill so the warm-up never trips injected faults.
		if cfg.ArmFaults != nil && sys.Faults != nil {
			cfg.ArmFaults(i, sys.Faults)
		}
		if cfg.WalkFootprint > 0 {
			tgt.SetWalkFootprint(cfg.WalkFootprint)
		}
		tgt.Prepare(tgt.Capacity())
		p.members[i] = &member{
			sys: sys,
			tgt: tgt,
			jit: sim.NewRand(sim.SplitSeed(cfg.Seed, fmt.Sprintf("pool/jitter-%02d", i))),
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Seeded media models mark different bad blocks per member, so usable
	// capacities differ slightly; the pool addresses the least common
	// capacity, rounded down to whole stripes — as a BIOS interleaving
	// mismatched DIMMs would. Spares are included in the min so any spare
	// can host any logical position's stripes.
	memberCap := p.members[0].tgt.Capacity()
	for _, m := range p.members[1:] {
		if c := m.tgt.Capacity(); c < memberCap {
			memberCap = c
		}
	}
	memberCap -= memberCap % cfg.Interleave
	if memberCap <= 0 {
		return nil, fmt.Errorf("pool: member capacity below one %d B stripe", cfg.Interleave)
	}
	dec, err := NewDecoder(n, cfg.Interleave, memberCap)
	if err != nil {
		return nil, err
	}
	p.Dec = dec

	p.health = make([]*memberHealth, total)
	p.route = make([]int, n)
	for i := range p.health {
		h := &memberHealth{logical: -1}
		if i < n {
			h.logical = i
			p.route[i] = i
		} else {
			h.spare = true
		}
		p.health[i] = h
	}
	p.ctrPool = metrics.NewCounters()
	p.latRebuild = metrics.NewHistogram()
	p.latMiss = metrics.NewHistogram()

	// Boot and prefill advance each member by a slightly different amount
	// (seeded media models differ); align all clocks on the latest.
	for _, m := range p.members {
		if t := m.sys.K.Now(); t > p.epoch0 {
			p.epoch0 = t
		}
	}
	for _, m := range p.members {
		m.sys.K.RunUntil(p.epoch0)
	}
	p.now = p.epoch0

	p.chans = make([]*channelState, cfg.Channels)
	for i := range p.chans {
		ctr := metrics.NewCounters()
		p.chans[i] = &channelState{
			brk:   newBreaker(&p.Cfg, ctr),
			lat:   metrics.NewHistogram(),
			meter: metrics.NewMeter(p.epoch0),
			ctr:   ctr,
		}
	}
	p.initQoS()
	return p, nil
}

// Capacity returns the pooled byte-addressable capacity.
func (p *Pool) Capacity() int64 { return p.Dec.Capacity() }

// CachedFootprint returns the largest stripe-aligned pooled footprint whose
// every fragment lands inside the per-member prefilled (cache-resident)
// region — the pooled analogue of the NVDC-Cached precondition.
func (p *Pool) CachedFootprint() int64 {
	pre := p.Cfg.PrefillPages
	if pre < 0 {
		pre = p.members[0].sys.Layout.NumSlots * 9 / 10
	}
	groups := int64(pre) * PageSize / p.Cfg.Interleave
	if groups > p.Dec.groupCount {
		groups = p.Dec.groupCount
	}
	return groups * p.Cfg.Interleave * int64(p.Dec.Members())
}

// channelOf maps a member index to its channel: the decoder interleaves
// across channels first, so adjacent stripes land on adjacent channels.
func (p *Pool) channelOf(memberIdx int) int { return memberIdx % p.Cfg.Channels }

// fill refills a channel's queue from its held list, then dispatches queued
// fragments into the in-flight window, subject to the channel breaker's
// budget. A queued fragment whose routed member is quarantined (possible
// only when no spare covered the position) is rejected with a typed error —
// rejection consumes neither window slots nor breaker budget, so an open
// breaker cannot wedge the queue behind undeliverable fragments.
func (p *Pool) fill(ci int) {
	ch := p.chans[ci]
	if len(ch.tq) > 0 {
		p.fillDRR(ch)
	} else {
		for len(ch.pending) > 0 && len(ch.queue) < p.Cfg.QueueCap {
			ch.queue = append(ch.queue, ch.pending[0])
			ch.pending = ch.pending[1:]
			ch.ctr.Inc("frags-admitted")
		}
	}
	ch.mark()
	budget := ch.brk.budget()
	dispatched := false
	for len(ch.queue) > 0 {
		f := ch.queue[0]
		if phys := p.route[f.member]; p.health[phys].state >= StateQuarantined {
			ch.queue = ch.queue[1:]
			ch.ctr.Inc("frags-rejected")
			p.fragFailed(f, fmt.Errorf("logical %d -> member %d: %w", f.member, phys, ErrMemberQuarantined), p.now)
			continue
		}
		if ch.inflight >= p.Cfg.Window || budget <= 0 {
			break
		}
		budget--
		ch.queue = ch.queue[1:]
		ch.inflight++
		ch.ctr.Inc("frags-dispatched")
		dispatched = true
		p.dispatch(f)
	}
	if dispatched {
		ch.ctr.Inc("dispatch-batches")
	}
	if held := ch.held(); held > p.heldPeak {
		p.heldPeak = held
	}
}

// dispatch schedules one fragment on its member's kernel: the host CPU cost
// (plus deterministic jitter, drawn here at the single-threaded boundary so
// worker count cannot reorder draws), then the device op. The completion
// callback runs mid-epoch on the member's worker and only touches
// member-local state.
func (p *Pool) dispatch(f *fragment) {
	phys := p.route[f.member]
	if p.health[phys].state >= StateQuarantined {
		// fill() filters these before dispatch; counted so CheckHealth can
		// prove the reroute guarantee held.
		p.postQuarantine++
	}
	m := p.members[phys]
	at := f.req.arrival
	if at < p.now {
		at = p.now
	}
	cpu := m.tgt.ThreadCPU(f.n, f.req.write)
	cpu += sim.Duration(m.jit.Int63n(int64(cpu)/2+1)) - sim.Duration(int64(cpu)/4)
	mm := m
	frag := f
	m.sys.K.ScheduleAt(at.Add(cpu), func() {
		mm.tgt.DoE(frag.off, frag.n, frag.req.write, func(err error) {
			mm.done = append(mm.done, completion{frag: frag, phys: phys, at: mm.sys.K.Now(), err: err})
		})
	})
}

// collect drains every member's completions (member order, then completion
// order — both deterministic), releasing window slots, folding breaker
// observations, and finishing or retrying requests. Rebuild-op completions
// drain on the same pass; finished rebuild jobs are swept afterwards.
func (p *Pool) collect() {
	// Per-channel completion counts this epoch feed the service-interval
	// EWMA after the member loop. Failed fragments count too: they occupied
	// the channel's service capacity just the same.
	if p.svcScratch == nil {
		p.svcScratch = make([]int, len(p.chans))
	}
	svcDone := p.svcScratch
	for i := range svcDone {
		svcDone[i] = 0
	}
	for _, m := range p.members {
		for _, c := range m.done {
			f := c.frag
			ci := p.channelOf(f.member)
			ch := p.chans[ci]
			ch.inflight--
			svcDone[ci]++
			failed := c.err != nil ||
				(p.Cfg.BreakerLatency > 0 && c.at.Sub(f.req.arrival) > p.Cfg.BreakerLatency)
			ch.brk.observe(failed)
			if c.err != nil {
				p.health[c.phys].fragErrs++
				ch.ctr.Inc("frag-errors")
				p.fragFailed(f, c.err, c.at)
				continue
			}
			ch.meter.Record(c.at, f.n)
			ch.ctr.Inc("frags-completed")
			p.requestPieceDone(f.req, c.at)
		}
		m.done = m.done[:0]
		for _, e := range m.rdone {
			j := e.job
			j.outstanding--
			if e.err != nil {
				if e.write {
					j.writeFail++
					p.ctrPool.Inc("rebuild-write-fail")
				} else {
					j.readMiss++
					p.ctrPool.Inc("rebuild-read-miss")
				}
			}
		}
		m.rdone = m.rdone[:0]
	}
	// Fold this epoch's completions into each channel's long-run service
	// interval and smooth it into the EWMA the deadline-aware admission
	// estimate reads (canonical channel order, integer arithmetic). A
	// channel's clock starts at its first busy epoch — idle time before any
	// work is not evidence of a slow channel.
	end := p.now.Add(p.Cfg.Epoch)
	for ci, ch := range p.chans {
		busy := svcDone[ci] > 0 || ch.inflight > 0 || len(ch.queue) > 0 || ch.held() > 0
		if !ch.svcSeen {
			if !busy {
				continue
			}
			ch.svcSeen = true
			ch.svcBusyAt = p.now
		}
		ch.svcDone += int64(svcDone[ci])
		if ch.svcDone == 0 {
			continue
		}
		cum := end.Sub(ch.svcBusyAt) / sim.Duration(ch.svcDone)
		if cum <= 0 {
			cum = 1
		}
		if ch.ewma == 0 {
			ch.ewma = cum
		} else {
			ch.ewma += (cum - ch.ewma) / 8
		}
	}
	p.sweepRebuilds()
}

// fragFailed routes one failed (or quarantine-rejected) fragment: back into
// the retry queue with capped exponential backoff while budget remains,
// terminal otherwise. A fragment whose request is already doomed (canceled
// by shedding or expiry) or whose next retry cannot land inside the
// request's deadline is terminal immediately — no backoff epochs are burnt
// on work that cannot count. Terminal failures stamp the request with a
// typed chain and count the piece done — the request finishes, never
// lingers.
func (p *Pool) fragFailed(f *fragment, err error, at sim.Time) {
	ch := p.chans[p.channelOf(f.member)]
	r := f.req
	if r.canceled {
		ch.ctr.Inc("frags-canceled")
		p.requestPieceDone(r, at)
		return
	}
	f.attempts++
	if f.attempts <= p.Cfg.MaxRetries {
		delay := p.Cfg.RetryBackoffEpochs << (f.attempts - 1)
		if delay > p.Cfg.RetryBackoffCap {
			delay = p.Cfg.RetryBackoffCap
		}
		if r.deadline > 0 {
			// Earliest the retry can finish: backoff epochs out, plus one
			// smoothed service interval. Past the deadline, re-arming only
			// burns epochs — fail the request typed now.
			eta := p.now.Add(sim.Duration(delay) * p.Cfg.Epoch).Add(ch.ewma)
			if eta > r.deadline {
				ch.ctr.Inc("frags-retry-expired")
				p.cancelRequest(r, fmt.Errorf("pool: retry %d cannot land inside deadline: %w (last error: %w)",
					f.attempts, ErrDeadlineExceeded, err))
				p.requestPieceDone(r, at)
				return
			}
		}
		p.retries = append(p.retries, retryEntry{f: f, ready: p.epochs + delay})
		ch.ctr.Inc("frags-retried")
		return
	}
	ch.ctr.Inc("frags-failed")
	if r.err == nil {
		r.err = fmt.Errorf("%w (%d attempts): %w", ErrPoolDegraded, f.attempts, err)
	}
	p.requestPieceDone(r, at)
}

// requestPieceDone retires one fragment outcome (success, sweep, or
// terminal failure) against its request and finishes the request when it
// was the last, classifying it by its typed error chain: shed
// (ErrAdmissionFull), expired (ErrDeadlineExceeded), failed (other typed
// errors), or completed — recording latency, and lateness when a completion
// landed past its deadline.
func (p *Pool) requestPieceDone(r *request, at sim.Time) {
	if at > r.lastDone {
		r.lastDone = at
	}
	r.remaining--
	if r.remaining > 0 {
		return
	}
	ch0 := p.chans[r.channel0]
	ts := p.qosTenant(r.tenant)
	rec := Completion{
		ID:      r.id,
		Tenant:  r.tenant,
		Write:   r.write,
		Err:     r.err,
		At:      r.lastDone,
		Latency: r.lastDone.Sub(r.arrival),
	}
	switch {
	case r.err == nil:
		lat := rec.Latency
		ch0.lat.Record(lat)
		if len(p.rebuilds) > 0 {
			p.latRebuild.Record(lat)
		}
		ch0.ctr.Inc("requests-completed")
		p.completed++
		if r.write {
			p.writesAck++
		}
		if ts != nil {
			ts.completed++
			ts.lat.Record(lat)
			ts.meter.Record(r.lastDone, r.bytes)
			if ts.cfg.SLOP99 > 0 && lat > ts.cfg.SLOP99 {
				ts.overSLO++
			}
		}
		if r.deadline > 0 && r.lastDone > r.deadline {
			rec.Late = true
			rec.Lateness = r.lastDone.Sub(r.deadline)
			p.completedLate++
			p.latMiss.Record(rec.Lateness)
			ch0.ctr.Inc("requests-late")
		}
	case errors.Is(r.err, ErrTenantThrottled):
		rec.Outcome = OutcomeThrottled
		ch0.ctr.Inc("requests-throttled")
		p.throttled++
		if r.write {
			p.writesThrottled++
		}
		if ts != nil {
			ts.throttled++
		}
	case errors.Is(r.err, ErrAdmissionFull):
		rec.Outcome = OutcomeShed
		ch0.ctr.Inc("requests-shed")
		p.shed++
		if r.write {
			p.writesShed++
		}
		if ts != nil {
			ts.shed++
		}
	case errors.Is(r.err, ErrDeadlineExceeded):
		rec.Outcome = OutcomeExpired
		ch0.ctr.Inc("requests-expired")
		p.expired++
		if r.write {
			p.writesExpired++
		}
		if ts != nil {
			ts.expired++
		}
	default:
		rec.Outcome = OutcomeFailed
		ch0.ctr.Inc("requests-failed")
		p.failed++
		if r.write {
			p.writesFailed++
		}
		if ts != nil {
			ts.failed++
		}
		if p.firstFailure == nil {
			p.firstFailure = r.err
		}
		if !errors.Is(r.err, ErrPoolDegraded) && !errors.Is(r.err, ErrMemberQuarantined) {
			p.untypedFailures++
		}
	}
	if r.notify || p.Cfg.Notify != nil {
		p.completions = append(p.completions, rec)
	}
}

// promoteRetries re-admits backoff-expired fragments (retry-queue order,
// behind any admission-held arrivals) before the epoch's fill pass.
func (p *Pool) promoteRetries() {
	if len(p.retries) == 0 {
		return
	}
	keep := p.retries[:0]
	for _, e := range p.retries {
		if e.ready > p.epochs {
			keep = append(keep, e)
			continue
		}
		ci := p.channelOf(e.f.member)
		ch := p.chans[ci]
		if p.Cfg.Admission == AdmitShedOldest {
			p.displaceOldest(ch, ci)
		}
		if len(ch.tq) > 0 {
			qi := p.qosIndex(e.f.req.tenant)
			ch.tq[qi].fifo = append(ch.tq[qi].fifo, e.f)
		} else {
			ch.pending = append(ch.pending, e.f)
		}
		ch.ctr.Inc("frags-repromoted")
		ch.mark()
	}
	p.retries = keep
}

// step advances the pool one epoch: boundary bookkeeping in canonical
// channel order, member kernels to the next boundary (parallel when
// configured — the output is identical either way), then collection, health
// probes, breaker ticks and completion delivery. Both Run and the plane's
// Step drive this one body, so embedded and harnessed use cannot diverge.
func (p *Pool) step() {
	p.epochs++
	epochEnd := p.now.Add(p.Cfg.Epoch)
	p.refillTokens()
	p.expireAndSweep()
	p.promoteRetries()
	for ci := range p.chans {
		p.fill(ci)
	}
	p.issueRebuilds()
	parallelEach(len(p.members), p.Cfg.Workers, func(i int) {
		p.advanceMember(i, epochEnd)
	})
	p.collect()
	p.probeMembers()
	for _, ch := range p.chans {
		ch.brk.tick()
	}
	p.now = epochEnd
	p.deliverCompletions()
}

// advanceMember runs member i's kernel to the boundary at to — through the
// cross-layer idle warp (core.FastForwardIdle) unless lookahead is disabled.
func (p *Pool) advanceMember(i int, to sim.Time) {
	m := p.members[i]
	if p.Cfg.DisableLookahead {
		m.sys.K.RunUntil(to)
		return
	}
	m.sys.FastForwardIdle(to)
}

// quietEpochs reports how many upcoming epochs — at most limit — are
// provably quiet: no boundary pass can change front-end state, so the whole
// span may be replayed in one batch (stepQuiet) with byte-identical results.
// Quiet requires an empty front end: no held, queued or in-flight fragment
// on any channel and no active rebuild. The horizon is then bounded by the
// next cross-member event that needs a real boundary:
//
//   - the next health-probe epoch: probes snapshot error counters and
//     advance Suspect clean-streaks every ProbeEvery epochs, so an
//     intermediate probe can never be skipped — the batch may at most *end*
//     on one (stepQuiet replays it there);
//   - each backoff retry's ready epoch, minus one: the promoting boundary
//     must be a real step so the promoted fragment meets fill();
//   - each waiting retry's request deadline: expiry at epoch j compares the
//     deadline against the previous boundary, so the batch may include
//     every epoch whose expiry check still precedes the deadline and must
//     stop before the sweep that dooms the request. A retry whose request
//     is already canceled disqualifies batching outright — its sweep is due
//     at the very next boundary;
//   - an open breaker's cooldown expiry: the half-open transition restores
//     dispatch budget and must land at or before the batch's final
//     replayed tick, never silently inside the span.
//
// Callers additionally bound limit by MaxEpochs and the next arrival.
func (p *Pool) quietEpochs(limit int) int {
	if p.Cfg.DisableLookahead || limit <= 1 {
		return 0
	}
	if len(p.rebuilds) > 0 {
		return 0
	}
	for _, ch := range p.chans {
		if ch.held()+len(ch.queue)+ch.inflight != 0 {
			return 0
		}
	}
	k := limit
	if d := (p.epochs/p.Cfg.ProbeEvery+1)*p.Cfg.ProbeEvery - p.epochs; d < k {
		k = d
	}
	for _, e := range p.retries {
		if e.f.req.canceled {
			return 0
		}
		if d := e.ready - p.epochs - 1; d < k {
			k = d
		}
		if dl := e.f.req.deadline; dl > 0 {
			if dl <= p.now {
				return 0
			}
			if d := int((dl.Sub(p.now)-1)/p.Cfg.Epoch) + 1; d < k {
				k = d
			}
		}
	}
	for _, ch := range p.chans {
		if h, ok := ch.brk.quietHorizon(); ok && h < k {
			k = h
		}
	}
	if k < 0 {
		return 0
	}
	return k
}

// stepQuiet advances the pool k quiet epochs (quietEpochs' preconditions)
// in one pass: every member kernel runs — and warps — straight to the final
// boundary, and the per-epoch boundary effects that still tick in an idle
// pool are replayed exactly, epoch-major in canonical channel order: the
// epoch counter, the per-tenant token-bucket refills (the same one-addition-
// per-epoch sequence step() performs, so bucket levels stay bit-identical to
// the naive path), each busy-before channel's service-interval EWMA fold
// (collect folds the long-run quotient every epoch once a channel has
// completed work, idle epochs included), and the breaker FSMs. Every other
// boundary pass (expiry sweep, retry promotion, fill, rebuild issue,
// collect's drain, completion delivery) is a no-op on a quiet pool. The
// final epoch may be a probe epoch: probeMembers runs after the members
// have advanced, self-gated on the epoch counter, with p.now at the same
// epoch-start boundary step() would give it.
func (p *Pool) stepQuiet(k int) {
	end := p.now.Add(sim.Duration(k) * p.Cfg.Epoch)
	parallelEach(len(p.members), p.Cfg.Workers, func(i int) {
		p.advanceMember(i, end)
	})
	e := p.now
	for j := 0; j < k; j++ {
		p.epochs++
		e = e.Add(p.Cfg.Epoch)
		p.refillTokens()
		for _, ch := range p.chans {
			if !ch.svcSeen || ch.svcDone == 0 {
				continue
			}
			cum := e.Sub(ch.svcBusyAt) / sim.Duration(ch.svcDone)
			if cum <= 0 {
				cum = 1
			}
			if ch.ewma == 0 {
				ch.ewma = cum
			} else {
				ch.ewma += (cum - ch.ewma) / 8
			}
		}
		for _, ch := range p.chans {
			ch.brk.tick()
		}
	}
	p.now = end.Add(-p.Cfg.Epoch)
	p.probeMembers()
	p.now = end
}

// Run drains requests from next (until it reports false) through the pool
// and returns once every admitted request reached a terminal outcome. next
// is called at epoch boundaries only. Run is a loop over the request plane:
// submit the epoch's arrivals, step, repeat — shed requests are terminal
// outcomes already counted at submission, so their admission errors are not
// Run failures.
func (p *Pool) Run(next func() (openloop.Request, bool)) error {
	var look *openloop.Request
	exhausted := false
	for {
		if p.epochs >= p.Cfg.MaxEpochs {
			return fmt.Errorf("pool: %d epochs without draining (%d/%d requests terminal) — wedged?",
				p.epochs, p.terminal(), p.submitted)
		}
		epochEnd := p.now.Add(p.Cfg.Epoch)
		for !exhausted {
			if look == nil {
				r, ok := next()
				if !ok {
					exhausted = true
					break
				}
				look = &r
			}
			if p.epoch0.Add(look.Arrival) >= epochEnd {
				break
			}
			p.submitReq(*look, false)
			look = nil
		}
		// Lookahead: bound a quiet batch by the next buffered arrival (or,
		// once the source is dry and the pool quiesced, take the single
		// bookkeeping step the naive loop would).
		limit := p.Cfg.MaxEpochs - p.epochs
		if look != nil {
			if g := int(p.epoch0.Add(look.Arrival).Sub(p.now) / p.Cfg.Epoch); g < limit {
				limit = g
			}
		} else if exhausted && p.Quiesced() {
			limit = 0
		}
		if k := p.quietEpochs(limit); k > 1 {
			p.stepQuiet(k)
		} else {
			p.step()
		}
		if exhausted && look == nil && p.Quiesced() {
			return nil
		}
	}
}

// RunOpenLoop feeds count requests from gen through the pool.
func (p *Pool) RunOpenLoop(gen *openloop.Generator, count int) error {
	issued := 0
	return p.Run(func() (openloop.Request, bool) {
		if issued >= count {
			return openloop.Request{}, false
		}
		issued++
		return gen.Next(), true
	})
}

// Stats is the pool-level aggregate plus the per-channel breakdown.
type Stats struct {
	// Lat holds request latencies (arrival to last-fragment completion).
	Lat *metrics.Histogram
	// LatRebuild shadows Lat for requests that completed while a rebuild
	// was active: the p99 here is the rebuild-interference tail.
	LatRebuild *metrics.Histogram
	// LatMiss holds the lateness overshoot of completed-but-late requests;
	// its p99/p999 is the deadline-miss tail the overload campaign tables.
	LatMiss *metrics.Histogram
	// Meter aggregates completed bytes over the pooled measurement span
	// (min start / max end across channels, not the double-counting sum).
	Meter *metrics.Meter
	// Ctr merges the per-channel scheduler counters and the pool-level
	// fault/failover counters.
	Ctr *metrics.Counters
	// PerChannel carries each channel's own view, channel order.
	PerChannel []ChannelStats
	// PerMember carries each physical member's health view, member order
	// (logical members first, then spares).
	PerMember []MemberStats

	Submitted uint64
	Completed uint64
	// Failed counts requests that terminated with a typed fault error
	// (retries exhausted or member quarantined with no spare). Completed +
	// Failed + Shed + Expired + Throttled == Submitted once the pool drains.
	Failed uint64
	// Shed counts requests dropped typed (ErrAdmissionFull) by an admission
	// policy; Expired counts requests whose deadline passed before
	// completion (ErrDeadlineExceeded). Both are terminal outcomes.
	Shed    uint64
	Expired uint64
	// Throttled counts requests refused at admission by their tenant's token
	// bucket (typed ErrTenantThrottled) — terminal like Shed.
	Throttled       uint64
	WritesThrottled uint64
	// PerTenant carries each configured QoS tenant's view, tenant order
	// (nil when Cfg.QoS is off).
	PerTenant []TenantStats
	// CompletedLate counts completions that landed past their deadline —
	// completed work, just late; LatMiss holds their overshoot.
	CompletedLate uint64
	WritesIn      uint64
	WritesAcked   uint64
	// WritesFailed counts writes refused with a typed error before any ack;
	// WritesShed and WritesExpired the same for the overload outcomes.
	// WritesAcked + WritesFailed + WritesShed + WritesExpired == WritesIn
	// means no acked write was lost.
	WritesFailed  uint64
	WritesShed    uint64
	WritesExpired uint64
	// PostQuarantineDispatches must be zero: no fragment was dispatched to
	// an already-quarantined member.
	PostQuarantineDispatches uint64
	Quarantined              int
	Evacuated                int
	SparesUsed               int
	// FirstFailure samples the first terminal request error (nil when none).
	FirstFailure error
	Epochs       int
	// HeldPeak is the deepest any channel's admission-held backlog got.
	HeldPeak int
}

// ChannelStats is one channel's front-end view.
type ChannelStats struct {
	Lat   *metrics.Histogram
	Meter *metrics.Meter
	Ctr   *metrics.Counters
	// Breaker is the channel breaker's final state (closed / open /
	// half-open).
	Breaker string
	// HeldHW / QueueHW are the run's high-water occupancy marks for the
	// admission-held list and the dispatch queue.
	HeldHW  int
	QueueHW int
	// ServiceEWMA is the final smoothed fragment service interval.
	ServiceEWMA sim.Duration
}

// MemberStats is one physical member's health view.
type MemberStats struct {
	State MemberState
	Spare bool
	// InService: a spare that took over a logical position.
	InService bool
	// Logical is the logical index currently routed here (-1 if none).
	Logical int
	// Mode is the member driver's degradation mode.
	Mode nvdc.Mode
	// DriverErrors totals the driver's error counters.
	DriverErrors uint64
	// FragErrors counts fragment dispatches that failed on this member.
	FragErrors int
	// Reason records why the member was quarantined ("" while serving).
	Reason string
}

// Stats merges the per-channel stats into the pool view using the metrics
// Merge primitives (no sample is re-recorded).
func (p *Pool) Stats() Stats {
	s := Stats{
		Lat:                      metrics.NewHistogram(),
		LatRebuild:               p.latRebuild,
		LatMiss:                  p.latMiss,
		Meter:                    metrics.NewMeter(p.epoch0),
		Ctr:                      metrics.NewCounters(),
		Submitted:                p.submitted,
		Completed:                p.completed,
		Failed:                   p.failed,
		Shed:                     p.shed,
		Expired:                  p.expired,
		Throttled:                p.throttled,
		WritesThrottled:          p.writesThrottled,
		PerTenant:                p.tenantStats(),
		CompletedLate:            p.completedLate,
		WritesIn:                 p.writesIn,
		WritesAcked:              p.writesAck,
		WritesFailed:             p.writesFailed,
		WritesShed:               p.writesShed,
		WritesExpired:            p.writesExpired,
		PostQuarantineDispatches: p.postQuarantine,
		SparesUsed:               p.sparesUsed,
		FirstFailure:             p.firstFailure,
		Epochs:                   p.epochs,
		HeldPeak:                 p.heldPeak,
	}
	for _, ch := range p.chans {
		s.Lat.Merge(ch.lat)
		s.Meter.Merge(ch.meter)
		s.Ctr.Merge(ch.ctr)
		s.PerChannel = append(s.PerChannel, ChannelStats{
			Lat: ch.lat, Meter: ch.meter, Ctr: ch.ctr, Breaker: ch.brk.state.String(),
			HeldHW: ch.heldHW, QueueHW: ch.queueHW, ServiceEWMA: ch.ewma,
		})
	}
	s.Ctr.Merge(p.ctrPool)
	for i, m := range p.members {
		h := p.health[i]
		switch h.state {
		case StateQuarantined:
			s.Quarantined++
		case StateEvacuated:
			s.Evacuated++
		}
		hs := m.sys.Driver.Health()
		s.PerMember = append(s.PerMember, MemberStats{
			State:        h.state,
			Spare:        h.spare,
			InService:    h.inService,
			Logical:      h.logical,
			Mode:         hs.Mode,
			DriverErrors: hs.ErrorEvents,
			FragErrors:   h.fragErrs,
			Reason:       h.reason,
		})
	}
	return s
}

// Member exposes member i's system (tests and health checks).
func (p *Pool) Member(i int) *core.System { return p.members[i].sys }

// Members returns the member count.
func (p *Pool) Members() int { return len(p.members) }

// CheckHealth runs every serving member's CheckHealth and the pool's own
// conservation invariants: every submitted request reached exactly one
// terminal outcome — completed, shed, expired, or failed, the latter three
// typed (nothing silently dropped) — every write either acked or
// typed-terminal, no fragment stranded in a queue, window, retry queue or
// rebuild, and no fragment dispatched to a quarantined member. Quarantined
// and evacuated members are exempt from the per-member check — containing
// their sickness is the pool's job, and it did.
func (p *Pool) CheckHealth() error {
	if p.terminal() != p.submitted {
		return fmt.Errorf("pool: %d of %d requests unaccounted (completed %d + shed %d + expired %d + failed %d + throttled %d)",
			p.submitted-p.terminal(), p.submitted, p.completed, p.shed, p.expired, p.failed, p.throttled)
	}
	if p.writesAck+p.writesFailed+p.writesShed+p.writesExpired+p.writesThrottled != p.writesIn {
		return fmt.Errorf("pool: %d writes admitted but %d acked + %d typed-failed + %d shed + %d expired + %d throttled (acked-write loss)",
			p.writesIn, p.writesAck, p.writesFailed, p.writesShed, p.writesExpired, p.writesThrottled)
	}
	if err := p.checkQoSConservation(); err != nil {
		return err
	}
	if p.untypedFailures != 0 {
		return fmt.Errorf("pool: %d requests failed without a typed error", p.untypedFailures)
	}
	if p.postQuarantine != 0 {
		return fmt.Errorf("pool: %d fragments dispatched to quarantined members", p.postQuarantine)
	}
	if p.Cfg.Admission == AdmitShedOldest {
		// Displacement now happens before each append, so held occupancy —
		// and therefore its high-water mark — never exceeds PendingCap.
		for i, ch := range p.chans {
			if ch.heldHW > p.Cfg.PendingCap {
				return fmt.Errorf("pool: channel %d held high-water %d over PendingCap %d under shed-oldest",
					i, ch.heldHW, p.Cfg.PendingCap)
			}
		}
	}
	if len(p.retries) != 0 {
		return fmt.Errorf("pool: %d fragments stranded in retry backoff", len(p.retries))
	}
	if len(p.rebuilds) != 0 {
		return fmt.Errorf("pool: %d rebuild jobs still active", len(p.rebuilds))
	}
	for i, ch := range p.chans {
		if ch.held() != 0 || len(ch.queue) != 0 || ch.inflight != 0 {
			return fmt.Errorf("pool: channel %d left held=%d queued=%d inflight=%d",
				i, ch.held(), len(ch.queue), ch.inflight)
		}
	}
	for i, m := range p.members {
		if p.health[i].state >= StateQuarantined {
			continue
		}
		if err := m.sys.CheckHealth(); err != nil {
			return fmt.Errorf("pool: member %d: %w", i, err)
		}
	}
	return nil
}

// parallelEach runs fn(0..n-1) across at most workers goroutines (serial
// when workers <= 1). Callers guarantee fn(i) touches only item-i state, so
// scheduling order cannot leak into results — the same contract as the
// experiment layer's runShards.
func parallelEach(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
