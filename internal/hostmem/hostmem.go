// Package hostmem models the host physical address space management the
// nvdc driver depends on: the Linux memmap=nn$ss kernel parameter that
// reserves the NVDIMM-C DRAM range from normal use (§IV-B), and the layout
// of that reserved region (Fig. 5): the CP area in the first physical page,
// a metadata area holding the DRAM-to-NAND mappings, and the remaining
// space carved into 4 KB cache slots.
package hostmem

import (
	"fmt"
	"strconv"
	"strings"
)

// PageSize is the x86-64 base page size, also the cache slot size.
const PageSize = 4096

// ParseMemmap parses a Linux memmap=nn[KMG]$ss[KMG] region-reservation
// parameter and returns (start, size). The '$' separates size from start;
// suffixes K, M, G scale by 2^10, 2^20, 2^30.
func ParseMemmap(s string) (start, size int64, err error) {
	i := strings.IndexByte(s, '$')
	if i < 0 {
		return 0, 0, fmt.Errorf("hostmem: memmap %q missing '$'", s)
	}
	size, err = parseSize(s[:i])
	if err != nil {
		return 0, 0, fmt.Errorf("hostmem: memmap size: %w", err)
	}
	start, err = parseSize(s[i+1:])
	if err != nil {
		return 0, 0, fmt.Errorf("hostmem: memmap start: %w", err)
	}
	if size <= 0 {
		return 0, 0, fmt.Errorf("hostmem: memmap size %d must be positive", size)
	}
	if start < 0 {
		return 0, 0, fmt.Errorf("hostmem: memmap start %d must be non-negative", start)
	}
	return start, size, nil
}

func parseSize(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty value")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'K', 'k':
		mult = 1 << 10
		s = s[:len(s)-1]
	case 'M', 'm':
		mult = 1 << 20
		s = s[:len(s)-1]
	case 'G', 'g':
		mult = 1 << 30
		s = s[:len(s)-1]
	}
	base := 10
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		base = 16
		s = s[2:]
	}
	v, err := strconv.ParseInt(s, base, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

// FormatMemmap renders (start, size) back into memmap syntax using the
// largest exact binary suffix.
func FormatMemmap(start, size int64) string {
	return fmt.Sprintf("%s$%s", suffixed(size), suffixed(start))
}

func suffixed(v int64) string {
	switch {
	case v != 0 && v%(1<<30) == 0:
		return fmt.Sprintf("%dG", v>>30)
	case v != 0 && v%(1<<20) == 0:
		return fmt.Sprintf("%dM", v>>20)
	case v != 0 && v%(1<<10) == 0:
		return fmt.Sprintf("%dK", v>>10)
	default:
		return strconv.FormatInt(v, 10)
	}
}

// Layout carves the reserved DRAM region into the Fig. 5 areas. All offsets
// are relative to the region base (which is also DRAM device address 0 in
// the single-DIMM models).
type Layout struct {
	// Size is the total reserved region size.
	Size int64
	// CPOffset/CPSize locate the communication-protocol area (first page).
	CPOffset, CPSize int64
	// MetaOffset/MetaSize locate the mapping metadata area.
	MetaOffset, MetaSize int64
	// SlotsOffset is where cache slots begin.
	SlotsOffset int64
	// NumSlots is the number of 4 KB cache slots.
	NumSlots int
}

// NewLayout lays out a reserved region of the given size. metaSize rounds up
// to a whole page; slotFraction (0,1] bounds how much of the remainder
// becomes cache slots (the PoC dedicates 15 GB of its 16 GB module to slots,
// keeping headroom for driver structures — slotFraction ≈ 0.9375).
func NewLayout(size, metaSize int64, slotFraction float64) (Layout, error) {
	if size < 3*PageSize {
		return Layout{}, fmt.Errorf("hostmem: region %d too small", size)
	}
	if metaSize < PageSize {
		metaSize = PageSize
	}
	metaSize = (metaSize + PageSize - 1) &^ (PageSize - 1)
	if slotFraction <= 0 || slotFraction > 1 {
		return Layout{}, fmt.Errorf("hostmem: slot fraction %v out of (0,1]", slotFraction)
	}
	l := Layout{
		Size:       size,
		CPOffset:   0,
		CPSize:     PageSize,
		MetaOffset: PageSize,
		MetaSize:   metaSize,
	}
	l.SlotsOffset = l.MetaOffset + l.MetaSize
	avail := size - l.SlotsOffset
	if avail < PageSize {
		return Layout{}, fmt.Errorf("hostmem: no room for slots (size %d, metadata %d)", size, metaSize)
	}
	l.NumSlots = int(float64(avail/PageSize) * slotFraction)
	if l.NumSlots < 1 {
		l.NumSlots = 1
	}
	return l, nil
}

// SlotAddr returns the region-relative byte address of slot i.
func (l Layout) SlotAddr(i int) int64 {
	return l.SlotsOffset + int64(i)*PageSize
}

// SlotOf returns which slot contains region-relative address a, or -1.
func (l Layout) SlotOf(a int64) int {
	if a < l.SlotsOffset {
		return -1
	}
	i := int((a - l.SlotsOffset) / PageSize)
	if i >= l.NumSlots {
		return -1
	}
	return i
}

// Validate checks the areas are disjoint and in-bounds.
func (l Layout) Validate() error {
	if l.CPOffset != 0 || l.CPSize != PageSize {
		return fmt.Errorf("hostmem: CP area must be the first page")
	}
	if l.MetaOffset < l.CPOffset+l.CPSize {
		return fmt.Errorf("hostmem: metadata overlaps CP area")
	}
	if l.SlotsOffset < l.MetaOffset+l.MetaSize {
		return fmt.Errorf("hostmem: slots overlap metadata")
	}
	if l.SlotAddr(l.NumSlots) > l.Size {
		return fmt.Errorf("hostmem: slots run past region end")
	}
	return nil
}
