package hostmem

import (
	"testing"
	"testing/quick"
)

func TestParseMemmap(t *testing.T) {
	cases := []struct {
		in          string
		start, size int64
	}{
		{"16G$256G", 256 << 30, 16 << 30}, // the paper's reservation shape
		{"4096$8192", 8192, 4096},
		{"512M$0x100000", 1 << 20, 512 << 20},
		{"1K$2K", 2048, 1024},
	}
	for _, c := range cases {
		start, size, err := ParseMemmap(c.in)
		if err != nil {
			t.Errorf("%q: %v", c.in, err)
			continue
		}
		if start != c.start || size != c.size {
			t.Errorf("%q: got (start=%d,size=%d), want (%d,%d)", c.in, start, size, c.start, c.size)
		}
	}
}

func TestParseMemmapErrors(t *testing.T) {
	for _, in := range []string{"", "16G", "$", "16G$", "$256G", "x$y", "-4K$0", "0$1G"} {
		if _, _, err := ParseMemmap(in); err == nil {
			t.Errorf("%q accepted", in)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	f := func(startRaw, sizeRaw uint32) bool {
		start := int64(startRaw) * PageSize
		size := (int64(sizeRaw)%(1<<20) + 1) * PageSize
		s := FormatMemmap(start, size)
		gotStart, gotSize, err := ParseMemmap(s)
		return err == nil && gotStart == start && gotSize == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutFig5(t *testing.T) {
	// 16 GB region, 16 MB metadata (§V-C), ~15/16 slot fraction.
	l, err := NewLayout(16<<30, 16<<20, 0.9375)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.CPOffset != 0 || l.CPSize != PageSize {
		t.Fatal("CP area not first page")
	}
	if l.MetaSize != 16<<20 {
		t.Fatalf("metadata = %d, want 16 MB", l.MetaSize)
	}
	// ~15 GB of slots.
	gotGB := float64(l.NumSlots) * PageSize / (1 << 30)
	if gotGB < 14.5 || gotGB > 15.5 {
		t.Fatalf("slot space = %.2f GB, want ~15 GB", gotGB)
	}
}

func TestSlotAddressing(t *testing.T) {
	l, err := NewLayout(1<<20, PageSize, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < l.NumSlots; i++ {
		a := l.SlotAddr(i)
		if got := l.SlotOf(a); got != i {
			t.Fatalf("SlotOf(SlotAddr(%d)) = %d", i, got)
		}
		if got := l.SlotOf(a + PageSize - 1); got != i {
			t.Fatalf("last byte of slot %d maps to %d", i, got)
		}
	}
	if l.SlotOf(0) != -1 {
		t.Fatal("CP area mapped to a slot")
	}
	if l.SlotOf(l.SlotAddr(l.NumSlots)) != -1 {
		t.Fatal("address past last slot mapped")
	}
}

func TestLayoutTooSmall(t *testing.T) {
	if _, err := NewLayout(2*PageSize, PageSize, 1.0); err == nil {
		t.Fatal("tiny region accepted")
	}
	if _, err := NewLayout(1<<20, PageSize, 0); err == nil {
		t.Fatal("zero slot fraction accepted")
	}
}

func TestMetadataRoundsToPage(t *testing.T) {
	l, err := NewLayout(1<<20, 100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if l.MetaSize != PageSize {
		t.Fatalf("metadata size %d not page-rounded", l.MetaSize)
	}
}

// Property: for any valid layout, every slot lies entirely inside the
// region, above the metadata area.
func TestLayoutDisjointProperty(t *testing.T) {
	f := func(sizePagesRaw uint16, metaPagesRaw uint8) bool {
		sizePages := int64(sizePagesRaw)%4096 + 4
		metaPages := int64(metaPagesRaw)%8 + 1
		l, err := NewLayout(sizePages*PageSize, metaPages*PageSize, 0.9)
		if err != nil {
			return true // rejected is fine
		}
		if l.Validate() != nil {
			return false
		}
		first := l.SlotAddr(0)
		last := l.SlotAddr(l.NumSlots-1) + PageSize
		return first >= l.MetaOffset+l.MetaSize && last <= l.Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
