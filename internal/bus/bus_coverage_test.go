package bus

import (
	"strings"
	"testing"

	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/fault"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/trace"
)

func TestMasterString(t *testing.T) {
	if HostIMC.String() != "iMC" || NVMC.String() != "NVMC" {
		t.Fatalf("master names: %v %v", HostIMC, NVMC)
	}
}

func TestTimingAccessor(t *testing.T) {
	_, ch := newChannel()
	if got, want := ch.Timing().TCK, ddr4.NewTiming(ddr4.DDR4_1600).TCK; got != want {
		t.Fatalf("Timing().TCK = %v, want %v", got, want)
	}
}

func TestSnoopDropFault(t *testing.T) {
	k, ch := newChannel()
	var seen int
	ch.AttachSnoop(func(sim.Time, ddr4.CAState) { seen++ })

	g := fault.NewRegistry(k, 1)
	g.Always(fault.BusSnoopDrop)
	ch.SetFaults(g)
	ch.Issue(HostIMC, ddr4.Command{Kind: ddr4.CmdRefresh})
	if seen != 0 {
		t.Fatalf("snoop saw %d commands through an always-drop fault", seen)
	}
	if ch.SnoopDrops() != 1 {
		t.Fatalf("SnoopDrops = %d, want 1", ch.SnoopDrops())
	}

	// Detaching the registry restores the taps.
	ch.SetFaults(nil)
	ch.Issue(HostIMC, ddr4.Command{Kind: ddr4.CmdRefresh})
	if seen != 1 || ch.SnoopDrops() != 1 {
		t.Fatalf("after detach: seen=%d drops=%d, want 1/1", seen, ch.SnoopDrops())
	}
}

// TestTwoMastersWithinOneTCK covers the sub-cycle variant of Fig. 2a case
// C1: the second master drives CA a fraction of a clock after the first, so
// the electrical conflict is still within one tCK.
func TestTwoMastersWithinOneTCK(t *testing.T) {
	k, ch := newChannel()
	sub := ch.Timing().TCK / 2
	if sub <= 0 {
		t.Fatalf("tCK %v too small to split", ch.Timing().TCK)
	}
	k.Schedule(0, func() { ch.Issue(HostIMC, ddr4.Command{Kind: ddr4.CmdActivate, Bank: 0, Row: 1}) })
	k.Schedule(sub, func() { ch.Issue(NVMC, ddr4.Command{Kind: ddr4.CmdActivate, Bank: 1, Row: 2}) })
	k.Run()
	found := false
	for _, c := range ch.Collisions() {
		if strings.Contains(c.Desc, "within one tCK") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no within-one-tCK collision recorded: %v", ch.Collisions())
	}
}

// TestNVMCTransferOverlapsHostHold covers Fig. 2b case C3: an NVMC data
// transfer outside the window while the host data bus is mid-burst records
// both the window violation and the overlap.
func TestNVMCTransferOverlapsHostHold(t *testing.T) {
	k, ch := newChannel()
	ch.HostWrite(0, make([]byte, 4096), 1, nil)
	// Halfway through the host burst, the NVMC (with no refresh in
	// progress, hence no window) touches the data bus.
	k.Schedule(ch.HostTransferTime(4096, 1)/2, func() {
		buf := make([]byte, 64)
		if err := ch.NVMCAccess(0, buf, true); err != nil {
			t.Errorf("NVMCAccess: %v", err)
		}
	})
	k.Run()
	if n := ch.CollisionCount(); n != 2 {
		t.Fatalf("collisions = %d, want 2 (window + host-burst overlap): %v", n, ch.Collisions())
	}
	var overlap bool
	for _, c := range ch.Collisions() {
		if strings.Contains(c.Desc, "host burst") {
			overlap = true
		}
	}
	if !overlap {
		t.Fatalf("host-burst overlap not described: %v", ch.Collisions())
	}
}

type collisionSink struct{ events []trace.Event }

func (s *collisionSink) Record(e trace.Event) {
	if e.Kind == trace.KindCollision {
		s.events = append(s.events, e)
	}
}

// TestCollideEmitsTraceEvent checks that collisions are published on the
// trace stream (this is what the conformance auditor consumes).
func TestCollideEmitsTraceEvent(t *testing.T) {
	k, ch := newChannel()
	sink := &collisionSink{}
	rec := &trace.Recorder{}
	rec.Attach(sink)
	ch.Trace = rec
	ch.Issue(NVMC, ddr4.Command{Kind: ddr4.CmdActivate, Bank: 0, Row: 0})
	k.Run()
	if len(sink.events) == 0 {
		t.Fatal("collision produced no trace event")
	}
	e := sink.events[0]
	if e.Master != int(NVMC) || !strings.Contains(e.Describe(), "window") {
		t.Fatalf("collision event %+v", e)
	}
}

// TestCollisionRecordCap checks that the recorded slice is bounded while
// the counter keeps the true total.
func TestCollisionRecordCap(t *testing.T) {
	k, ch := newChannel()
	ch.collisionLimit = 3
	for i := 0; i < 8; i++ {
		ch.Issue(NVMC, ddr4.Command{Kind: ddr4.CmdActivate, Bank: 0, Row: 0})
		k.RunFor(ch.Timing().TCK * 2)
	}
	if got := len(ch.Collisions()); got != 3 {
		t.Fatalf("recorded %d collisions, want cap 3", got)
	}
	if ch.CollisionCount() < 8 {
		t.Fatalf("CollisionCount = %d, want >= 8", ch.CollisionCount())
	}
}

func TestStatsCounters(t *testing.T) {
	k, ch := newChannel()
	ch.Issue(HostIMC, ddr4.Command{Kind: ddr4.CmdPrechargeAll})
	ch.Issue(HostIMC, ddr4.Command{Kind: ddr4.CmdRefresh})
	k.Schedule(500*sim.Nanosecond, func() {
		if err := ch.NVMCAccess(0, make([]byte, 64), false); err != nil {
			t.Errorf("in-window NVMCAccess: %v", err)
		}
	})
	ch.HostWrite(4096, make([]byte, 128), 0, nil)
	k.Run()
	hostCmds, nvmcCmds, hostBytes, nvmcBytes := ch.Stats()
	if hostCmds != 2 || nvmcCmds != 0 || hostBytes != 128 || nvmcBytes != 64 {
		t.Fatalf("Stats = %d/%d/%d/%d, want 2/0/128/64", hostCmds, nvmcCmds, hostBytes, nvmcBytes)
	}
}
