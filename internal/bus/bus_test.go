package bus

import (
	"bytes"
	"testing"

	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/dram"
	"nvdimmc/internal/sim"
)

func newChannel() (*sim.Kernel, *Channel) {
	k := sim.NewKernel()
	cfg := dram.DefaultConfig(ddr4.DDR4_1600)
	cfg.Rows = 1024
	cfg.Timing.TRFC = 1250 * sim.Nanosecond
	dev := dram.New(k, cfg)
	return k, New(k, dev)
}

func TestSnoopSeesEveryCommand(t *testing.T) {
	k, ch := newChannel()
	var seen []ddr4.CommandKind
	ch.AttachSnoop(func(_ sim.Time, s ddr4.CAState) {
		seen = append(seen, ddr4.Decode(s))
	})
	ch.Issue(HostIMC, ddr4.Command{Kind: ddr4.CmdPrechargeAll})
	ch.Issue(HostIMC, ddr4.Command{Kind: ddr4.CmdRefresh})
	k.Run()
	if len(seen) != 2 || seen[0] != ddr4.CmdPrecharge || seen[1] != ddr4.CmdRefresh {
		t.Fatalf("snooped %v", seen)
	}
}

func TestSameCycleTwoMastersCollide(t *testing.T) {
	k, ch := newChannel()
	// Fig. 2a C1: both masters drive CA in the same clock.
	ch.Issue(HostIMC, ddr4.Command{Kind: ddr4.CmdActivate, Bank: 0, Row: 1})
	ch.Issue(NVMC, ddr4.Command{Kind: ddr4.CmdActivate, Bank: 1, Row: 2})
	k.Run()
	if ch.CollisionCount() == 0 {
		t.Fatal("simultaneous commands from both masters not flagged")
	}
}

func TestNVMCCommandOutsideWindowCollides(t *testing.T) {
	k, ch := newChannel()
	// No refresh in progress: any NVMC command is unsafe.
	ch.Issue(NVMC, ddr4.Command{Kind: ddr4.CmdActivate, Bank: 0, Row: 0})
	k.Run()
	if ch.CollisionCount() == 0 {
		t.Fatal("NVMC command outside window not flagged")
	}
}

func TestNVMCCommandInsideWindowSafe(t *testing.T) {
	k, ch := newChannel()
	ch.Issue(HostIMC, ddr4.Command{Kind: ddr4.CmdPrechargeAll})
	ch.Issue(HostIMC, ddr4.Command{Kind: ddr4.CmdRefresh})
	// 350 ns (standard tRFC) after REF the device is internally done; the
	// extra window runs to 1250 ns.
	k.Schedule(500*sim.Nanosecond, func() {
		ch.Issue(NVMC, ddr4.Command{Kind: ddr4.CmdActivate, Bank: 0, Row: 0})
	})
	k.Run()
	if n := ch.CollisionCount(); n != 0 {
		t.Fatalf("collisions = %d: %v", n, ch.Collisions())
	}
}

func TestNVMCDataAccessWindowRules(t *testing.T) {
	k, ch := newChannel()
	buf := make([]byte, 4096)
	// Outside any window: collision.
	if err := ch.NVMCAccess(0, buf, true); err != nil {
		t.Fatal(err)
	}
	if ch.CollisionCount() == 0 {
		t.Fatal("out-of-window NVMC access not flagged")
	}
	before := ch.CollisionCount()
	ch.Issue(HostIMC, ddr4.Command{Kind: ddr4.CmdPrechargeAll})
	ch.Issue(HostIMC, ddr4.Command{Kind: ddr4.CmdRefresh})
	k.Schedule(600*sim.Nanosecond, func() {
		if err := ch.NVMCAccess(0, buf, false); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if ch.CollisionCount() != before {
		t.Fatalf("in-window NVMC access flagged: %v", ch.Collisions())
	}
}

func TestHostReadWriteMoveData(t *testing.T) {
	k, ch := newChannel()
	want := bytes.Repeat([]byte{0xA5, 0x42}, 2048)
	done := false
	ch.HostWrite(8192, want, 1, func() {
		got := make([]byte, len(want))
		ch.HostRead(8192, got, 1, func() {
			if !bytes.Equal(got, want) {
				t.Error("host read/write mismatch")
			}
			done = true
		})
	})
	k.Run()
	if !done {
		t.Fatal("transfers did not complete")
	}
	hc, _, hb, _ := ch.Stats()
	if hc != 0 || hb != 8192 {
		t.Fatalf("stats: cmds=%d bytes=%d", hc, hb)
	}
}

func TestHostWriteCopiesCallerBuffer(t *testing.T) {
	k, ch := newChannel()
	buf := []byte{1, 2, 3, 4}
	ch.HostWrite(0, buf, 1, nil)
	buf[0] = 99 // caller reuses buffer before the bus grant
	k.Run()
	got := make([]byte, 4)
	if err := ch.Device().CopyOut(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("write observed caller mutation: %v", got)
	}
}

func TestDataBusSerializesTransfers(t *testing.T) {
	k, ch := newChannel()
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		ch.HostRead(0, make([]byte, 4096), 1, func() { ends = append(ends, k.Now()) })
	}
	k.Run()
	if len(ends) != 3 {
		t.Fatalf("completed %d, want 3", len(ends))
	}
	per := ch.HostTransferTime(4096, 1)
	for i, e := range ends {
		want := sim.Time(0).Add(sim.Duration(i+1) * per)
		if e != want {
			t.Errorf("transfer %d ended %v, want %v", i, e, want)
		}
	}
}
