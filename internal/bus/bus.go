// Package bus models the shared DDR4 memory channel of the NVDIMM-C board:
// the one set of CA/DQ wires routed both to the host iMC and to the FPGA's
// DDR4 controller (NVMC). There is deliberately no arbiter — the standard
// DDR4 interface has no request/grant and no feedback signal (§III-B) — so
// the channel's job is to route commands to the DRAM, feed the snoop taps
// (refresh detector), and *detect* conflicting use by the two masters, which
// on real hardware would corrupt data or crash the system.
package bus

import (
	"fmt"

	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/dram"
	"nvdimmc/internal/fault"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/trace"
)

// Master identifies a bus master.
type Master int

// The two masters sharing the channel (§III-B).
const (
	HostIMC Master = iota
	NVMC
)

func (m Master) String() string {
	if m == HostIMC {
		return "iMC"
	}
	return "NVMC"
}

// Collision records conflicting channel use. With the tRFC mechanism enabled
// none may ever occur; the ablation with the mechanism disabled produces
// them, demonstrating why the mechanism is necessary.
type Collision struct {
	At   sim.Time
	By   Master
	Desc string
}

func (c Collision) String() string { return fmt.Sprintf("%v: %v: %s", c.At, c.By, c.Desc) }

// Snoop observes every CA bus cycle. The refresh detector attaches one.
type Snoop func(at sim.Time, state ddr4.CAState)

// Channel is the shared memory channel with one DRAM rank behind it.
type Channel struct {
	k      *sim.Kernel
	dev    *dram.Device
	timing ddr4.Timing

	// DataBus serializes host-side data-bus occupancy: CAS bursts and the
	// programmed-tRFC refresh dead time. The NVMC deliberately does NOT
	// acquire it — there is no arbitration on a standard DDR4 channel; its
	// safety comes only from the refresh-window discipline.
	DataBus *sim.Resource

	snoops []Snoop

	// Trace, when attached to sinks, publishes channel activity: the
	// bring-up ring log and the protocol auditor both subscribe here.
	Trace *trace.Recorder

	lastCmdAt     sim.Time
	lastCmdMaster Master
	lastCmdValid  bool

	collisions     []Collision
	collisionLimit int
	collisionsN    uint64

	// hostHolds tracks the current host data-bus hold for overlap checks
	// against NVMC transfers.
	hostHoldUntil sim.Time

	// Counters.
	hostCommands, nvmcCommands uint64
	hostBytes, nvmcBytes       uint64
	snoopDrops                 uint64

	// faults, when non-nil, injects transient CA snoop errors
	// (fault.BusSnoopDrop): the sampled command never reaches the snoop
	// taps, so a dropped REF costs the NVMC one window — the recoverable
	// signal-integrity glitch, as opposed to a false positive, which is
	// system-fatal by design.
	faults *fault.Registry
}

// New returns a channel wired to dev.
func New(k *sim.Kernel, dev *dram.Device) *Channel {
	return &Channel{
		k:              k,
		dev:            dev,
		timing:         dev.Config().Timing,
		DataBus:        sim.NewResource(k, "ddr4-channel"),
		collisionLimit: 1024,
	}
}

// Device returns the DRAM rank behind the channel.
func (c *Channel) Device() *dram.Device { return c.dev }

// Timing returns the channel timing parameters.
func (c *Channel) Timing() ddr4.Timing { return c.timing }

// AttachSnoop registers a CA-bus observer (e.g. the refresh detector's
// deserializer inputs, Fig. 4).
func (c *Channel) AttachSnoop(s Snoop) { c.snoops = append(c.snoops, s) }

// Collisions returns recorded collisions (capped; see CollisionCount).
func (c *Channel) Collisions() []Collision { return c.collisions }

// CollisionCount returns the total number of collisions observed.
func (c *Channel) CollisionCount() uint64 { return c.collisionsN }

func (c *Channel) collide(by Master, format string, args ...interface{}) {
	if c.Trace.Active() {
		c.Trace.Record(trace.Event{
			At: c.k.Now(), Kind: trace.KindCollision,
			Master: int(by), Detail: fmt.Sprintf(format, args...),
		})
	}
	c.collisionsN++
	if len(c.collisions) < c.collisionLimit {
		c.collisions = append(c.collisions, Collision{
			At:   c.k.Now(),
			By:   by,
			Desc: fmt.Sprintf(format, args...),
		})
	}
}

// Issue drives one command onto the CA bus at the current instant. It feeds
// the snoop taps, checks for command collisions (two masters driving CA in
// the same clock — Fig. 2a case C1), and applies the command to the DRAM.
func (c *Channel) Issue(m Master, cmd ddr4.Command) {
	now := c.k.Now()
	state := ddr4.Encode(cmd.Kind)
	if c.faults.Fires(fault.BusSnoopDrop) {
		c.snoopDrops++
	} else {
		for _, s := range c.snoops {
			s(now, state)
		}
	}
	if m == HostIMC {
		c.hostCommands++
	} else {
		c.nvmcCommands++
	}
	if c.Trace.Active() {
		kind := trace.KindCommand
		if cmd.Kind == ddr4.CmdRefresh {
			kind = trace.KindRefresh
		}
		c.Trace.Record(trace.Event{At: now, Kind: kind, Master: int(m), Cmd: cmd})
	}
	// Command collision: both masters driving the CA wires within one clock.
	if c.lastCmdValid && now.Sub(c.lastCmdAt) < c.timing.TCK && c.lastCmdMaster != m {
		c.collide(m, "CA bus driven by %v and %v within one tCK (%v)", c.lastCmdMaster, m, cmd)
	}
	c.lastCmdAt = now
	c.lastCmdMaster = m
	c.lastCmdValid = true

	// NVMC commands outside the extra window are unsafe even if no host
	// command happens to be in flight this cycle: the iMC issues commands
	// unpredictably (§III-B), so any access outside the guaranteed-quiet
	// window is a latent conflict. The model treats it as a collision.
	if m == NVMC && cmd.Kind != ddr4.CmdDeselect && cmd.Kind != ddr4.CmdNOP && !c.dev.InExtraWindow() {
		c.collide(m, "NVMC command %v outside the extra-tRFC window", cmd)
	}
	c.dev.Apply(cmd)
}

// HostTransferTime returns how long the data bus is occupied moving n bytes
// for the host, including row activate/precharge overhead for rowSwitches
// row transitions.
func (c *Channel) HostTransferTime(n int, rowSwitches int) sim.Duration {
	bursts := (n + ddr4.BurstBytes - 1) / ddr4.BurstBytes
	d := sim.Duration(bursts) * c.timing.TBL
	d += sim.Duration(rowSwitches) * (c.timing.TRCD + c.timing.TRP + c.timing.TCL)
	return d
}

// HostRead acquires the host data bus, copies n bytes out of the DRAM at the
// grant instant, and calls done (if non-nil) when the bus is released.
func (c *Channel) HostRead(addr int64, buf []byte, rowSwitches int, done func()) {
	hold := c.HostTransferTime(len(buf), rowSwitches)
	c.DataBus.Acquire(hold, func(start sim.Time) {
		if err := c.dev.CopyOut(addr, buf); err != nil {
			panic(fmt.Sprintf("bus: host read: %v", err))
		}
		c.hostBytes += uint64(len(buf))
		c.hostHoldUntil = start.Add(hold)
		if c.Trace.Active() {
			c.Trace.Record(trace.Event{
				At: start, Kind: trace.KindHostData, Read: true,
				Addr: addr, Bytes: len(buf), End: start.Add(hold),
			})
		}
		if done != nil {
			c.k.ScheduleAt(start.Add(hold), done)
		}
	})
}

// HostWrite acquires the host data bus and copies data into the DRAM.
func (c *Channel) HostWrite(addr int64, data []byte, rowSwitches int, done func()) {
	hold := c.HostTransferTime(len(data), rowSwitches)
	// Copy the caller's bytes now: the caller may reuse its buffer.
	owned := make([]byte, len(data))
	copy(owned, data)
	c.DataBus.Acquire(hold, func(start sim.Time) {
		if err := c.dev.CopyIn(addr, owned); err != nil {
			panic(fmt.Sprintf("bus: host write: %v", err))
		}
		c.hostBytes += uint64(len(owned))
		c.hostHoldUntil = start.Add(hold)
		if c.Trace.Active() {
			c.Trace.Record(trace.Event{
				At: start, Kind: trace.KindHostData, Read: false,
				Addr: addr, Bytes: len(owned), End: start.Add(hold),
			})
		}
		if done != nil {
			c.k.ScheduleAt(start.Add(hold), done)
		}
	})
}

// NVMCAccess performs an immediate (already-timed) NVMC data transfer of n
// bytes at the current instant. The NVMC's own FSM is responsible for doing
// this only inside the extra window; accesses outside it are recorded as
// collisions (and additionally collide with any host hold in progress).
// dir=true reads DRAM into buf; dir=false writes buf into DRAM.
func (c *Channel) NVMCAccess(addr int64, buf []byte, read bool) error {
	now := c.k.Now()
	if !c.dev.InExtraWindow() {
		c.collide(NVMC, "NVMC data transfer (%dB) outside the extra-tRFC window", len(buf))
		if c.hostHoldUntil > now {
			c.collide(NVMC, "NVMC transfer overlaps live host burst")
		}
	}
	c.nvmcBytes += uint64(len(buf))
	if c.Trace.Active() {
		c.Trace.Record(trace.Event{
			At: now, Kind: trace.KindNVMCData, Read: read,
			Addr: addr, Bytes: len(buf),
		})
	}
	if read {
		return c.dev.CopyOut(addr, buf)
	}
	return c.dev.CopyIn(addr, buf)
}

// WarpIdleRefreshCycles credits m idle refresh cycles without driving the
// CA wires: per cycle the host issued PREA+REF (two CA commands, no data
// bytes) and the NVMC moved pollBytes of window-poll data (no CA command
// — CP polls are plain data-bus reads). rLast is the instant of the last
// warped REF, which becomes the last-command timestamp for the collision
// window check. The caller owns the proof that the channel was otherwise
// untouched across the warped span (no host transfer, no NVMC command),
// and warps the snoop consumers (refresh detector) separately.
func (c *Channel) WarpIdleRefreshCycles(m uint64, rLast sim.Time, pollBytes uint64) {
	if m == 0 {
		return
	}
	c.hostCommands += 2 * m
	c.nvmcBytes += m * pollBytes
	c.lastCmdAt = rLast
	c.lastCmdMaster = HostIMC
	c.lastCmdValid = true
}

// Stats reports per-master command and byte counters.
func (c *Channel) Stats() (hostCmds, nvmcCmds, hostBytes, nvmcBytes uint64) {
	return c.hostCommands, c.nvmcCommands, c.hostBytes, c.nvmcBytes
}

// SetFaults attaches the fault-injection registry (nil detaches).
func (c *Channel) SetFaults(g *fault.Registry) { c.faults = g }

// SnoopDrops reports CA samples lost to injected transient snoop errors.
func (c *Channel) SnoopDrops() uint64 { return c.snoopDrops }
