// Package ddr4 defines the slice of the JEDEC DDR4 specification that the
// NVDIMM-C architecture depends on: speed grades, the timing parameters the
// host iMC and the NVMC's DDR4 controller must agree on, the command set,
// and the command/address (CA) pin encoding that the refresh detector snoops.
package ddr4

import (
	"fmt"

	"nvdimmc/internal/sim"
)

// SpeedGrade identifies a DDR4 data rate in MT/s.
type SpeedGrade int

// Speed grades used in the paper: the PoC board is limited to DDR4-1600 by
// its vertical height; DDR4-2400 appears in the Fig. 1a frontend analysis.
const (
	DDR4_1600 SpeedGrade = 1600
	DDR4_1866 SpeedGrade = 1866
	DDR4_2133 SpeedGrade = 2133
	DDR4_2400 SpeedGrade = 2400
	DDR4_2666 SpeedGrade = 2666
	DDR4_3200 SpeedGrade = 3200
)

// TCK returns the clock period for the grade. DDR transfers two beats per
// clock, so the clock frequency is MT/s / 2.
func (g SpeedGrade) TCK() sim.Duration {
	// period_ps = 1e12 / (MT/s * 1e6 / 2) = 2e6 / MTs ps
	return sim.Duration(2_000_000 / int64(g))
}

// DataRateBytesPerSec returns the peak data bus bandwidth for a 64-bit
// channel at this grade, in bytes per second.
func (g SpeedGrade) DataRateBytesPerSec() float64 {
	return float64(g) * 1e6 * 8 // MT/s * 8 bytes per transfer
}

func (g SpeedGrade) String() string { return fmt.Sprintf("DDR4-%d", int(g)) }

// Density identifies a DRAM component density, which selects tRFC.
type Density int

// Component densities with JEDEC tRFC1 values.
const (
	Density2Gb  Density = 2
	Density4Gb  Density = 4
	Density8Gb  Density = 8
	Density16Gb Density = 16
)

// StandardTRFC returns the JEDEC tRFC1 for the density (260 ns for 4 Gb,
// 350 ns for 8 Gb, per §II-B of the paper).
func (d Density) StandardTRFC() sim.Duration {
	switch d {
	case Density2Gb:
		return 160 * sim.Nanosecond
	case Density4Gb:
		return 260 * sim.Nanosecond
	case Density8Gb:
		return 350 * sim.Nanosecond
	case Density16Gb:
		return 550 * sim.Nanosecond
	default:
		return 350 * sim.Nanosecond
	}
}

// Standard refresh intervals (§II-B): 8K refreshes per 64 ms window.
const (
	// TREFI is the average refresh interval in a normal thermal state.
	TREFI = 7800 * sim.Nanosecond
	// TREFIHot is the halved interval above 85 C.
	TREFIHot = 3900 * sim.Nanosecond
	// RefreshWindow is the JEDEC retention window (64 ms / 8K commands).
	RefreshWindow = 64 * sim.Millisecond
	// RefreshCommandsPerWindow is the recommended command count per window.
	RefreshCommandsPerWindow = 8192
)

// Timing holds the DDR4 timing parameters relevant to this study. Values
// are absolute durations; cycle-denominated JEDEC parameters are converted
// at construction using the speed grade's tCK.
type Timing struct {
	Grade SpeedGrade

	TCK  sim.Duration // clock period
	TRCD sim.Duration // ACTIVATE to internal read/write
	TCL  sim.Duration // CAS latency (READ to first data)
	TCWL sim.Duration // CAS write latency
	TRP  sim.Duration // PRECHARGE to ACTIVATE
	TRAS sim.Duration // ACTIVATE to PRECHARGE (minimum row open)
	TRC  sim.Duration // ACTIVATE to ACTIVATE, same bank
	TBL  sim.Duration // burst of 8 on the data bus (4 clocks)
	TRFC sim.Duration // refresh cycle time (programmable; see below)
	TRRD sim.Duration // ACTIVATE to ACTIVATE, different bank
	TWR  sim.Duration // write recovery
	TRTP sim.Duration // read to precharge

	// TREFI is the average refresh interval the controller must honor
	// (programmable by the OS through iMC registers, per §II-B).
	TREFI sim.Duration
}

// NewTiming returns nominal timing for the grade with the JEDEC tRFC for an
// 8 Gb component and the normal 7.8 us tREFI. CL/RCD/RP use the mainstream
// bin for each grade.
func NewTiming(g SpeedGrade) Timing {
	tck := g.TCK()
	var clCycles int64
	switch g {
	case DDR4_1600:
		clCycles = 11
	case DDR4_1866:
		clCycles = 13
	case DDR4_2133:
		clCycles = 15
	case DDR4_2400:
		clCycles = 17
	case DDR4_2666:
		clCycles = 19
	default:
		clCycles = 22
	}
	cyc := func(n int64) sim.Duration { return sim.Duration(n) * tck }
	return Timing{
		Grade: g,
		TCK:   tck,
		TRCD:  cyc(clCycles),
		TCL:   cyc(clCycles),
		TCWL:  cyc(clCycles - 2),
		TRP:   cyc(clCycles),
		TRAS:  cyc(28),
		TRC:   cyc(28 + clCycles),
		TBL:   cyc(4), // BL8 = 8 beats = 4 clocks
		TRFC:  Density8Gb.StandardTRFC(),
		TRRD:  cyc(4),
		TWR:   15 * sim.Nanosecond,
		TRTP:  cyc(6),
		TREFI: TREFI,
	}
}

// BurstBytes is the number of bytes moved by one BL8 burst on a 64-bit bus.
const BurstBytes = 64

// RandomAccessTime returns tRCD+tCL: the budget an NVMC-as-frontend design
// (Fig. 1a) has to put data on the DQ bus after ACTIVATE+READ.
func (t Timing) RandomAccessTime() sim.Duration { return t.TRCD + t.TCL }

// MaxProgrammableAccessTime returns the largest tRCD+tCL a Skylake-class iMC
// can be programmed to: each parameter is a 5-bit register, so at most
// 31 cycles each (51.615 ns at DDR4-2400, per §III-A).
func (t Timing) MaxProgrammableAccessTime() sim.Duration {
	return sim.Duration(31) * t.TCK * 2
}

// Validate reports an error if the timing set is internally inconsistent.
func (t Timing) Validate() error {
	if t.TCK <= 0 {
		return fmt.Errorf("ddr4: non-positive tCK %v", t.TCK)
	}
	if t.TRFC <= 0 || t.TREFI <= 0 {
		return fmt.Errorf("ddr4: non-positive refresh timing tRFC=%v tREFI=%v", t.TRFC, t.TREFI)
	}
	if t.TRFC >= t.TREFI {
		return fmt.Errorf("ddr4: tRFC %v >= tREFI %v leaves no host bus time", t.TRFC, t.TREFI)
	}
	if t.TRAS < t.TRCD {
		return fmt.Errorf("ddr4: tRAS %v < tRCD %v", t.TRAS, t.TRCD)
	}
	return nil
}
