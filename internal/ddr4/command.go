package ddr4

import "fmt"

// CommandKind enumerates the DDR4 commands the models issue and decode.
type CommandKind int

// DDR4 command set (truth-table subset relevant to NVDIMM-C).
const (
	CmdDeselect CommandKind = iota // CS_n high: no command
	CmdNOP
	CmdActivate  // open a row
	CmdRead      // CAS read, BL8
	CmdWrite     // CAS write, BL8
	CmdPrecharge // close one bank's row
	CmdPrechargeAll
	CmdRefresh // REF: all-bank refresh, bus dead for tRFC
	CmdSelfRefreshEntry
	CmdSelfRefreshExit
	CmdZQCal
	CmdMRS // mode register set
)

var commandNames = map[CommandKind]string{
	CmdDeselect:         "DES",
	CmdNOP:              "NOP",
	CmdActivate:         "ACT",
	CmdRead:             "RD",
	CmdWrite:            "WR",
	CmdPrecharge:        "PRE",
	CmdPrechargeAll:     "PREA",
	CmdRefresh:          "REF",
	CmdSelfRefreshEntry: "SRE",
	CmdSelfRefreshExit:  "SRX",
	CmdZQCal:            "ZQ",
	CmdMRS:              "MRS",
}

func (c CommandKind) String() string {
	if s, ok := commandNames[c]; ok {
		return s
	}
	return fmt.Sprintf("CommandKind(%d)", int(c))
}

// Command is a decoded DDR4 command with its target coordinates.
type Command struct {
	Kind CommandKind
	Bank int
	Row  int
	Col  int
	// AutoPrecharge marks RD/WR with auto-precharge (A10 high).
	AutoPrecharge bool
}

func (c Command) String() string {
	switch c.Kind {
	case CmdActivate:
		return fmt.Sprintf("ACT b%d r%d", c.Bank, c.Row)
	case CmdRead, CmdWrite:
		ap := ""
		if c.AutoPrecharge {
			ap = "A"
		}
		return fmt.Sprintf("%s%s b%d c%d", c.Kind, ap, c.Bank, c.Col)
	case CmdPrecharge:
		return fmt.Sprintf("PRE b%d", c.Bank)
	default:
		return c.Kind.String()
	}
}

// CAState is the sampled logic level of the six command/address pins the
// NVDIMM-C board forwards to the FPGA (Fig. 4): CKE, CS_n, ACT_n, RAS_n,
// CAS_n and WE_n. True is the electrical High level.
type CAState struct {
	CKE  bool
	CSn  bool
	ACTn bool
	RASn bool
	CASn bool
	WEn  bool
}

// Encode returns the CA pin state that carries cmd on a DDR4 bus, plus the
// CKE level after the command (self-refresh entry drops CKE). The encoding
// follows the JEDEC DDR4 command truth table; only the six snooped pins are
// represented, which is sufficient because, as §IV-A observes, the CA states
// of all DDR4 commands are mutually exclusive on these pins.
func Encode(kind CommandKind) CAState {
	switch kind {
	case CmdDeselect:
		return CAState{CKE: true, CSn: true, ACTn: true, RASn: true, CASn: true, WEn: true}
	case CmdNOP:
		return CAState{CKE: true, CSn: false, ACTn: true, RASn: true, CASn: true, WEn: true}
	case CmdActivate:
		// ACT_n low selects ACTIVATE; RAS/CAS/WE carry row address bits,
		// modeled here at their "address" dont-care-as-low level.
		return CAState{CKE: true, CSn: false, ACTn: false, RASn: false, CASn: false, WEn: false}
	case CmdRead:
		return CAState{CKE: true, CSn: false, ACTn: true, RASn: true, CASn: false, WEn: true}
	case CmdWrite:
		return CAState{CKE: true, CSn: false, ACTn: true, RASn: true, CASn: false, WEn: false}
	case CmdPrecharge, CmdPrechargeAll:
		return CAState{CKE: true, CSn: false, ACTn: true, RASn: false, CASn: true, WEn: false}
	case CmdRefresh:
		// REF: CKE, ACT_n and WE_n High; CS_n, RAS_n, CAS_n Low (§IV-A).
		return CAState{CKE: true, CSn: false, ACTn: true, RASn: false, CASn: false, WEn: true}
	case CmdSelfRefreshEntry:
		// Same RAS/CAS decode as REF but CKE transitions Low.
		return CAState{CKE: false, CSn: false, ACTn: true, RASn: false, CASn: false, WEn: true}
	case CmdSelfRefreshExit:
		// CKE returning High with CS_n High (NOP/DES on the command pins).
		return CAState{CKE: true, CSn: true, ACTn: true, RASn: false, CASn: false, WEn: true}
	case CmdZQCal:
		return CAState{CKE: true, CSn: false, ACTn: true, RASn: true, CASn: true, WEn: false}
	case CmdMRS:
		return CAState{CKE: true, CSn: false, ACTn: true, RASn: false, CASn: false, WEn: false}
	default:
		return CAState{CKE: true, CSn: true, ACTn: true, RASn: true, CASn: true, WEn: true}
	}
}

// Decode maps a sampled CA state back to a command kind. It is the reference
// decoder the refresh detector's RTL is tested against. Unknown states decode
// as deselect.
func Decode(s CAState) CommandKind {
	if !s.CKE {
		// CKE low with a REF decode is self-refresh entry.
		if !s.CSn && s.ACTn && !s.RASn && !s.CASn && s.WEn {
			return CmdSelfRefreshEntry
		}
		return CmdDeselect
	}
	if s.CSn {
		if s.ACTn && !s.RASn && !s.CASn && s.WEn {
			return CmdSelfRefreshExit
		}
		return CmdDeselect
	}
	if !s.ACTn {
		return CmdActivate
	}
	switch {
	case s.RASn && s.CASn && s.WEn:
		return CmdNOP
	case !s.RASn && !s.CASn && s.WEn:
		return CmdRefresh
	case !s.RASn && s.CASn && !s.WEn:
		return CmdPrecharge
	case s.RASn && !s.CASn && s.WEn:
		return CmdRead
	case s.RASn && !s.CASn && !s.WEn:
		return CmdWrite
	case s.RASn && s.CASn && !s.WEn:
		return CmdZQCal
	case !s.RASn && !s.CASn && !s.WEn:
		return CmdMRS
	}
	return CmdDeselect
}

// IsRefresh reports whether the CA state is exactly the normal REFRESH
// encoding: CKE, ACT_n and WE_n High with CS_n, RAS_n and CAS_n Low. This is
// the predicate the refresh-detector RTL implements; SRE (CKE low) and SRX
// (CS_n high) must not match.
func IsRefresh(s CAState) bool {
	return s.CKE && !s.CSn && s.ACTn && !s.RASn && !s.CASn && s.WEn
}

// AllCommandKinds lists every kind for exhaustive encode/decode tests.
var AllCommandKinds = []CommandKind{
	CmdDeselect, CmdNOP, CmdActivate, CmdRead, CmdWrite, CmdPrecharge,
	CmdPrechargeAll, CmdRefresh, CmdSelfRefreshEntry, CmdSelfRefreshExit,
	CmdZQCal, CmdMRS,
}
