package ddr4

import (
	"testing"
	"testing/quick"

	"nvdimmc/internal/sim"
)

func TestTCK(t *testing.T) {
	if got := DDR4_1600.TCK(); got != 1250*sim.Picosecond {
		t.Errorf("DDR4-1600 tCK = %v, want 1250ps", got)
	}
	if got := DDR4_2400.TCK(); got != 833*sim.Picosecond {
		t.Errorf("DDR4-2400 tCK = %v, want 833ps", got)
	}
}

func TestPeakBandwidth(t *testing.T) {
	// DDR4-1600 on a 64-bit channel: 1600 MT/s * 8 B = 12.8 GB/s.
	if got := DDR4_1600.DataRateBytesPerSec(); got != 12.8e9 {
		t.Errorf("DDR4-1600 peak = %v, want 12.8e9", got)
	}
}

func TestStandardTRFC(t *testing.T) {
	if got := Density4Gb.StandardTRFC(); got != 260*sim.Nanosecond {
		t.Errorf("4Gb tRFC = %v, want 260ns", got)
	}
	if got := Density8Gb.StandardTRFC(); got != 350*sim.Nanosecond {
		t.Errorf("8Gb tRFC = %v, want 350ns", got)
	}
}

func TestRefreshBudget(t *testing.T) {
	// 8K refreshes in 64 ms => 7.8125 us; JEDEC quotes 7.8 us.
	per := RefreshWindow / RefreshCommandsPerWindow
	if per < 7800*sim.Nanosecond || per > 7900*sim.Nanosecond {
		t.Errorf("refresh interval from window = %v, want ~7.8us", per)
	}
}

func TestRandomAccessTimeBudget(t *testing.T) {
	// §III-A: tRCD+tCL = 26.64 ns for DDR4-2400 mainstream bin; our 17-cycle
	// bin gives 2*17*0.833ns = 28.3ns — same order. The 5-bit register cap
	// is 51.615 ns; check our model reproduces ~51.6 ns.
	tm := NewTiming(DDR4_2400)
	max := tm.MaxProgrammableAccessTime()
	if max < 51*sim.Nanosecond || max > 52*sim.Nanosecond {
		t.Errorf("max programmable access time = %v, want ~51.6ns", max)
	}
	if tm.RandomAccessTime() > max {
		t.Errorf("nominal access %v exceeds programmable max %v", tm.RandomAccessTime(), max)
	}
}

func TestTimingValidate(t *testing.T) {
	tm := NewTiming(DDR4_1600)
	if err := tm.Validate(); err != nil {
		t.Fatalf("nominal timing invalid: %v", err)
	}
	bad := tm
	bad.TRFC = tm.TREFI // no host time left
	if err := bad.Validate(); err == nil {
		t.Error("tRFC >= tREFI accepted")
	}
	bad = tm
	bad.TREFI = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero tREFI accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, k := range AllCommandKinds {
		got := Decode(Encode(k))
		want := k
		// PREA shares pin encoding with PRE (A10 distinguishes them, which
		// the six snooped pins cannot see); both must decode as a precharge.
		if k == CmdPrechargeAll {
			want = CmdPrecharge
		}
		if got != want {
			t.Errorf("Decode(Encode(%v)) = %v, want %v", k, got, want)
		}
	}
}

func TestIsRefreshExactlyREF(t *testing.T) {
	for _, k := range AllCommandKinds {
		s := Encode(k)
		want := k == CmdRefresh
		if got := IsRefresh(s); got != want {
			t.Errorf("IsRefresh(Encode(%v)) = %v, want %v", k, got, want)
		}
	}
}

// Property: over all 64 possible 6-pin states, IsRefresh matches the
// reference decoder's CmdRefresh verdict — the refresh detector can never
// confuse another command (including SRE/SRX) for REF.
func TestIsRefreshExhaustive(t *testing.T) {
	for bits := 0; bits < 64; bits++ {
		s := CAState{
			CKE:  bits&1 != 0,
			CSn:  bits&2 != 0,
			ACTn: bits&4 != 0,
			RASn: bits&8 != 0,
			CASn: bits&16 != 0,
			WEn:  bits&32 != 0,
		}
		if IsRefresh(s) != (Decode(s) == CmdRefresh) {
			t.Errorf("state %+v: IsRefresh=%v Decode=%v", s, IsRefresh(s), Decode(s))
		}
	}
}

func TestCommandStrings(t *testing.T) {
	c := Command{Kind: CmdActivate, Bank: 3, Row: 100}
	if c.String() != "ACT b3 r100" {
		t.Errorf("String = %q", c.String())
	}
	c = Command{Kind: CmdRead, Bank: 1, Col: 8, AutoPrecharge: true}
	if c.String() != "RDA b1 c8" {
		t.Errorf("String = %q", c.String())
	}
	if CmdRefresh.String() != "REF" {
		t.Errorf("REF String = %q", CmdRefresh.String())
	}
}

// Property: encodings of distinct decodable commands are mutually exclusive,
// the fact §IV-A relies on ("the CA states of all DDR4 commands are mutually
// exclusive").
func TestEncodingsMutuallyExclusive(t *testing.T) {
	seen := map[CAState]CommandKind{}
	for _, k := range AllCommandKinds {
		if k == CmdPrechargeAll { // same pins as PRE by design
			continue
		}
		s := Encode(k)
		if prev, dup := seen[s]; dup {
			t.Errorf("%v and %v share CA encoding %+v", prev, k, s)
		}
		seen[s] = k
	}
}

func TestTimingMonotonicWithGrade(t *testing.T) {
	f := func(raw uint8) bool {
		grades := []SpeedGrade{DDR4_1600, DDR4_1866, DDR4_2133, DDR4_2400, DDR4_2666, DDR4_3200}
		g := grades[int(raw)%len(grades)]
		tm := NewTiming(g)
		return tm.Validate() == nil && tm.TBL == 4*g.TCK()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
