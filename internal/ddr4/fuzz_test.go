package ddr4

import "testing"

// FuzzCAPinRoundTrip drives the CA-pin truth table with arbitrary 6-bit pin
// states — the detector's actual input space, since the FPGA samples
// whatever is electrically on the bus (§IV-A) — and checks the reference
// decoder's closure properties:
//
//   - decode is total (any state maps to some command, never panics)
//   - decode is stable under canonical re-encode: Encode(Decode(s)) must
//     decode back to the same command
//   - IsRefresh (the RTL predicate) agrees exactly with the full decoder,
//     including not matching SRE (CKE low) and SRX (CS_n high)
func FuzzCAPinRoundTrip(f *testing.F) {
	for seed := 0; seed < 64; seed += 7 {
		f.Add(byte(seed))
	}
	f.Add(byte(0b101001)) // the REF pattern: CKE+ACTn+WEn high
	f.Fuzz(func(t *testing.T, b byte) {
		s := CAState{
			CKE:  b&1 != 0,
			CSn:  b&2 != 0,
			ACTn: b&4 != 0,
			RASn: b&8 != 0,
			CASn: b&16 != 0,
			WEn:  b&32 != 0,
		}
		kind := Decode(s)
		if kind == CmdPrechargeAll {
			t.Fatalf("decoder returned PREA for %+v: the pins cannot distinguish PRE/PREA", s)
		}
		if again := Decode(Encode(kind)); again != kind {
			t.Fatalf("decode not stable: %+v -> %v, re-encoded decodes as %v", s, kind, again)
		}
		if got, want := IsRefresh(s), kind == CmdRefresh; got != want {
			t.Fatalf("IsRefresh(%+v) = %v but Decode = %v", s, got, kind)
		}
	})
}
