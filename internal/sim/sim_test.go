package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.Schedule(30*Nanosecond, func() { got = append(got, 3) })
	k.Schedule(10*Nanosecond, func() { got = append(got, 1) })
	k.Schedule(20*Nanosecond, func() { got = append(got, 2) })
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if k.Now() != Time(30*Nanosecond) {
		t.Fatalf("clock = %v, want 30ns", k.Now())
	}
}

func TestKernelSameInstantFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.Schedule(5*Nanosecond, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO at %d: %v", i, got[:i+1])
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	depth := 0
	var step func()
	step = func() {
		depth++
		if depth < 50 {
			k.Schedule(Nanosecond, step)
		}
	}
	k.Schedule(0, step)
	k.Run()
	if depth != 50 {
		t.Fatalf("depth = %d, want 50", depth)
	}
	if k.Now() != Time(49*Nanosecond) {
		t.Fatalf("clock = %v, want 49ns", k.Now())
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.Schedule(10*Nanosecond, func() { fired++ })
	k.Schedule(20*Nanosecond, func() { fired++ })
	k.RunUntil(Time(15 * Nanosecond))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Now() != Time(15*Nanosecond) {
		t.Fatalf("clock = %v, want 15ns", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	k.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestKernelNegativeDelayClamped(t *testing.T) {
	k := NewKernel()
	k.Schedule(10*Nanosecond, func() {
		k.Schedule(-5*Nanosecond, func() {
			if k.Now() != Time(10*Nanosecond) {
				t.Errorf("negative delay fired at %v, want 10ns", k.Now())
			}
		})
	})
	k.Run()
	if n := k.NegativeDelays(); n != 1 {
		t.Fatalf("NegativeDelays = %d, want 1", n)
	}
}

func TestKernelNegativeDelaysZeroOnCleanRun(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 100; i++ {
		k.Schedule(Duration(i)*Nanosecond, func() {})
	}
	k.Run()
	if n := k.NegativeDelays(); n != 0 {
		t.Fatalf("NegativeDelays = %d on a clean run, want 0", n)
	}
	// ScheduleAt clamping to now is the "asap" idiom, not a causality bug.
	k.ScheduleAt(Time(0), func() {})
	k.Run()
	if n := k.NegativeDelays(); n != 0 {
		t.Fatalf("past ScheduleAt counted as negative delay")
	}
}

// TestKernelSteadyStateZeroAlloc is the hard form of the kernel fast-path
// requirement: once the heap slice has capacity, Schedule+Step must not
// allocate at all.
func TestKernelSteadyStateZeroAlloc(t *testing.T) {
	k := NewKernel()
	// Warm the heap slice past any capacity we will use.
	for i := 0; i < 1024; i++ {
		k.Schedule(Duration(i)*Nanosecond, nop)
	}
	k.Run()
	for i := 0; i < 64; i++ {
		k.Schedule(Duration(i)*Nanosecond, nop)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		k.Schedule(100*Nanosecond, nop)
		k.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Schedule+Step = %v allocs/op, want 0", allocs)
	}
}

// Property: for any multiset of delays, events fire in nondecreasing time
// order with FIFO tie-breaking — the hand-rolled value heap must match what
// container/heap guaranteed.
func TestKernelHeapOrderProperty(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		k := NewKernel()
		type fired struct {
			at  Time
			seq int
		}
		var got []fired
		for i, d := range delaysRaw {
			i := i
			at := k.Now().Add(Duration(d) * Nanosecond)
			k.Schedule(Duration(d)*Nanosecond, func() {
				got = append(got, fired{at: at, seq: i})
			})
			_ = at
		}
		k.Run()
		if len(got) != len(delaysRaw) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelScheduleAtPast(t *testing.T) {
	k := NewKernel()
	k.Schedule(10*Nanosecond, func() {
		k.ScheduleAt(Time(2*Nanosecond), func() {
			if k.Now() != Time(10*Nanosecond) {
				t.Errorf("past ScheduleAt fired at %v, want clamped to 10ns", k.Now())
			}
		})
	})
	k.Run()
}

func TestKernelRunWhile(t *testing.T) {
	k := NewKernel()
	done := false
	k.Schedule(100*Nanosecond, func() { done = true })
	k.Schedule(200*Nanosecond, func() { t.Error("ran past condition") })
	k.RunWhile(func() bool { return !done })
	if !done {
		t.Fatal("RunWhile ended before condition met")
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (later event must stay queued)", k.Pending())
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ps"},
		{1250, "1.250ns"},
		{7800 * Nanosecond, "7.800us"},
		{64 * Millisecond, "64.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestResourceSerializes(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "bus")
	var starts []Time
	for i := 0; i < 4; i++ {
		r.Acquire(10*Nanosecond, func(at Time) { starts = append(starts, at) })
	}
	k.Run()
	if len(starts) != 4 {
		t.Fatalf("grants = %d, want 4", len(starts))
	}
	for i, at := range starts {
		want := Time(Duration(i) * 10 * Nanosecond)
		if at != want {
			t.Errorf("grant %d at %v, want %v", i, at, want)
		}
	}
	if r.Busy != 40*Nanosecond {
		t.Errorf("busy = %v, want 40ns", r.Busy)
	}
}

func TestResourceIdleGapsAndFIFO(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "bus")
	var order []int
	r.Acquire(5*Nanosecond, func(Time) { order = append(order, 0) })
	k.Schedule(100*Nanosecond, func() {
		// Resource idle again; grant is immediate.
		r.Acquire(5*Nanosecond, func(at Time) {
			order = append(order, 1)
			if at != Time(100*Nanosecond) {
				t.Errorf("idle re-acquire at %v, want 100ns", at)
			}
		})
		r.Acquire(5*Nanosecond, func(at Time) {
			order = append(order, 2)
			if at != Time(105*Nanosecond) {
				t.Errorf("queued acquire at %v, want 105ns", at)
			}
		})
	})
	k.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestResourceZeroHold(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "r")
	n := 0
	for i := 0; i < 10; i++ {
		r.Acquire(0, func(Time) { n++ })
	}
	k.Run()
	if n != 10 {
		t.Fatalf("zero-hold grants = %d, want 10", n)
	}
}

// Property: for any set of hold times, a FIFO resource grants in order and
// grant[i+1].start >= grant[i].start + hold[i].
func TestResourceFIFOProperty(t *testing.T) {
	f := func(holdsRaw []uint16) bool {
		if len(holdsRaw) == 0 {
			return true
		}
		if len(holdsRaw) > 64 {
			holdsRaw = holdsRaw[:64]
		}
		k := NewKernel()
		r := NewResource(k, "r")
		starts := make([]Time, 0, len(holdsRaw))
		holds := make([]Duration, len(holdsRaw))
		for i, h := range holdsRaw {
			holds[i] = Duration(h) * Nanosecond
			r.Acquire(holds[i], func(at Time) { starts = append(starts, at) })
		}
		k.Run()
		if len(starts) != len(holds) {
			return false
		}
		for i := 1; i < len(starts); i++ {
			if starts[i] != starts[i-1].Add(holds[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/1000 times", same)
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Int63n(1 << 40); v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(11)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced stuck generator")
	}
}
