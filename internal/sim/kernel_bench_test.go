package sim

import "testing"

// nop is package-level so benchmark Schedule calls pass a pre-existing func
// value and measure only the kernel, not closure construction at the call
// site.
var nop = func() {}

// BenchmarkKernelScheduleStep is the kernel fast-path micro-benchmark: one
// Schedule plus one Step per iteration over a standing event population,
// which is the steady-state shape of every device model's timing loop. The
// acceptance bar is 0 allocs/op (see TestKernelSteadyStateZeroAlloc for the
// hard assertion).
func BenchmarkKernelScheduleStep(b *testing.B) {
	k := NewKernel()
	// Standing population so push/pop exercise real sift depth.
	for i := 0; i < 64; i++ {
		k.Schedule(Duration(i)*Nanosecond, nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(100*Nanosecond, nop)
		k.Step()
	}
}

// BenchmarkKernelChurn measures a burstier shape: fill 1024 events, drain
// them, repeat — the pattern of a pipeline filling against a slow resource.
func BenchmarkKernelChurn(b *testing.B) {
	k := NewKernel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1024; j++ {
			k.Schedule(Duration(j%97)*Nanosecond, nop)
		}
		k.Run()
	}
}
