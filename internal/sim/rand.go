package sim

// Rand is a small, deterministic pseudo-random generator (xorshift64*) used
// by workload generators. It is not math/rand so that streams are stable
// across Go releases and trivially seedable per component.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed (zero is remapped to a fixed
// non-zero constant, since xorshift cannot hold state zero).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// SplitSeed derives a per-component seed from one root seed and a component
// label (FNV-1a over the label folded into the root, finalized with a
// splitmix64 round). Every probabilistic model in the machine seeds its RNG
// from the same root this way, so an entire run — including fault injection —
// is reproducible from the single seed printed in failure output.
func SplitSeed(root uint64, label string) uint64 {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	z := root ^ h
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a pseudo-random int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
