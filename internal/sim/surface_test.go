package sim

import "testing"

func TestDurationAndTimeString(t *testing.T) {
	for _, tc := range []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2.000ns"},
		{3 * Microsecond, "3.000us"},
		{4 * Millisecond, "4.000ms"},
		{5 * Second, "5.000s"},
	} {
		if got := tc.d.String(); got != tc.want {
			t.Errorf("(%d).String() = %q, want %q", int64(tc.d), got, tc.want)
		}
	}
	at := Time(0).Add(7 * Microsecond)
	if got := at.Sub(Time(0).Add(2 * Microsecond)); got != 5*Microsecond {
		t.Errorf("Sub = %v, want 5us", got)
	}
	if got := at.String(); got != "7.000us" {
		t.Errorf("Time.String() = %q", got)
	}
}

func TestKernelPeekAndProcessed(t *testing.T) {
	k := NewKernel()
	if _, ok := k.NextAt(); ok {
		t.Fatal("NextAt on an empty queue reported an event")
	}
	fired := 0
	k.Schedule(3*Microsecond, func() { fired++ })
	k.Schedule(1*Microsecond, func() { fired++ })
	if at, ok := k.NextAt(); !ok || at != Time(0).Add(1*Microsecond) {
		t.Fatalf("NextAt = %v, %v; want 1us, true", at, ok)
	}
	// RunFor executes only events inside the window and advances the clock
	// to its end.
	k.RunFor(2 * Microsecond)
	if fired != 1 || k.Processed() != 1 {
		t.Fatalf("after RunFor(2us): fired=%d processed=%d", fired, k.Processed())
	}
	if k.Now() != Time(0).Add(2*Microsecond) {
		t.Fatalf("clock %v after RunFor(2us)", k.Now())
	}
	k.Run()
	if fired != 2 || k.Processed() != 2 {
		t.Fatalf("after Run: fired=%d processed=%d", fired, k.Processed())
	}
}

func TestSplitSeedDerivation(t *testing.T) {
	a := SplitSeed(7, "pool/load")
	if b := SplitSeed(7, "pool/load"); b != a {
		t.Fatalf("same root+label produced %d and %d", a, b)
	}
	if SplitSeed(7, "pool/load") == SplitSeed(7, "pool/gen") {
		t.Fatal("different labels collided")
	}
	if SplitSeed(7, "pool/load") == SplitSeed(8, "pool/load") {
		t.Fatal("different roots collided")
	}
	// A zero root must still yield usable per-component seeds.
	if SplitSeed(0, "x") == 0 && SplitSeed(0, "y") == 0 {
		t.Fatal("zero root degenerated")
	}
}

func TestRandPanicsOnNonPositiveBounds(t *testing.T) {
	r := NewRand(1)
	for name, fn := range map[string]func(){
		"Intn":   func() { r.Intn(0) },
		"Int63n": func() { r.Int63n(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with non-positive bound did not panic", name)
				}
			}()
			fn()
		}()
	}
	if n := r.Intn(10); n < 0 || n >= 10 {
		t.Fatalf("Intn(10) = %d", n)
	}
	if n := r.Int63n(10); n < 0 || n >= 10 {
		t.Fatalf("Int63n(10) = %d", n)
	}
}

func TestResourceAccountingSurface(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "chan0")
	if r.Name() != "chan0" {
		t.Fatalf("Name() = %q", r.Name())
	}
	if !r.Idle() || r.QueueLen() != 0 {
		t.Fatal("fresh resource is not idle")
	}
	var starts []Time
	r.Acquire(4*Microsecond, func(at Time) { starts = append(starts, at) })
	r.Acquire(2*Microsecond, func(at Time) { starts = append(starts, at) })
	if r.QueueLen() != 1 {
		t.Fatalf("QueueLen = %d with one grant in service", r.QueueLen())
	}
	if got := r.BusyUntil(); got != Time(0).Add(4*Microsecond) {
		t.Fatalf("BusyUntil = %v during the first grant", got)
	}
	if r.Idle() {
		t.Fatal("resource claims idle while granted")
	}
	k.Run()
	if len(starts) != 2 || starts[1] != Time(0).Add(4*Microsecond) {
		t.Fatalf("service starts %v, want FIFO handoff at 4us", starts)
	}
	if !r.Idle() || r.Grants != 2 || r.Busy != 6*Microsecond {
		t.Fatalf("after drain: idle=%v grants=%d busy=%v", r.Idle(), r.Grants, r.Busy)
	}
	if u := r.Utilization(); u != 1.0 {
		t.Fatalf("Utilization = %v for a back-to-back schedule", u)
	}

	// WarpGrants must land counters and the release instant exactly where
	// real uncontended acquires would have.
	warped := NewResource(k, "warp")
	warped.WarpGrants(0, Microsecond, 0) // no-op branch
	last := k.Now().Add(10 * Microsecond)
	warped.WarpGrants(3, 2*Microsecond, last)
	if warped.Grants != 3 || warped.Busy != 6*Microsecond {
		t.Fatalf("warped counters: grants=%d busy=%v", warped.Grants, warped.Busy)
	}
	if got := warped.BusyUntil(); got != last.Add(2*Microsecond) {
		t.Fatalf("warped BusyUntil = %v, want %v", got, last.Add(2*Microsecond))
	}
}
