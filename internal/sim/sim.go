// Package sim provides the discrete-event simulation kernel that every
// hardware and software model in this repository runs on.
//
// Time is measured in integer picoseconds so that DDR4 clock periods are
// exact (DDR4-1600 tCK = 1250 ps). The kernel is a deterministic binary-heap
// event queue: events scheduled for the same instant fire in the order they
// were scheduled, so simulations are reproducible run-to-run.
package sim

import (
	"fmt"
)

// Time is an absolute simulation instant in picoseconds since reset.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Convenient duration units.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Nanoseconds reports d as floating-point nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Microseconds reports d as floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Seconds reports d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", d.Microseconds())
	case d >= Nanosecond:
		return fmt.Sprintf("%.3fns", d.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(d))
	}
}

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier instant u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return Duration(t).String() }

// Event is a scheduled callback. Events are stored by value in the kernel's
// heap slice: scheduling never heap-allocates, so the hot Schedule/Step loop
// every model runs on is allocation-free in steady state.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// less orders events by time, then by scheduling order (FIFO at an instant).
func (e event) less(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Kernel is the simulation event loop. The zero value is not usable; create
// one with NewKernel.
//
// The event queue is a hand-rolled binary min-heap over a value-typed slice
// rather than container/heap: the interface-based API boxes every Push/Pop
// element, which costs one allocation per scheduled event — measurable on
// runs that process hundreds of millions of events. See
// BenchmarkKernelScheduleStep.
type Kernel struct {
	now    Time
	seq    uint64
	events []event
	// nProcessed counts events executed since reset, for diagnostics and
	// runaway detection in tests.
	nProcessed uint64
	// negDelays counts Schedule calls that had to clamp a negative delay —
	// a causality bug in the caller. core.CheckHealth asserts it is zero.
	negDelays uint64
}

// NewKernel returns a kernel at time zero with an empty event queue.
func NewKernel() *Kernel {
	return &Kernel{}
}

// push appends e and restores the heap invariant (sift-up).
func (k *Kernel) push(e event) {
	h := append(k.events, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	k.events = h
}

// popRoot removes the earliest event (sift-down). The vacated tail slot is
// zeroed so the slice does not retain the callback closure.
func (k *Kernel) popRoot() {
	h := k.events
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	i := 0
	for {
		min := i
		if l := 2*i + 1; l < n && h[l].less(h[min]) {
			min = l
		}
		if r := 2*i + 2; r < n && h[r].less(h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	k.events = h
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of events still queued.
func (k *Kernel) Pending() int { return len(k.events) }

// NextAt peeks at the earliest queued event's timestamp without executing
// it; ok is false when the queue is empty. Schedulers use it to prove a
// kernel idle through a horizon before skipping event-by-event execution.
func (k *Kernel) NextAt() (t Time, ok bool) {
	if len(k.events) == 0 {
		return 0, false
	}
	return k.events[0].at, true
}

// Processed reports the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.nProcessed }

// Schedule queues fn to run d picoseconds from now. A negative delay is an
// error in the caller; it is clamped to zero so the event still fires (at the
// current instant, after already-queued same-instant events), and counted in
// NegativeDelays so health checks can surface the causality bug instead of
// letting the clamp hide it.
func (k *Kernel) Schedule(d Duration, fn func()) {
	if d < 0 {
		d = 0
		k.negDelays++
	}
	k.seq++
	k.push(event{at: k.now.Add(d), seq: k.seq, fn: fn})
}

// ScheduleAt queues fn to run at absolute time t (clamped to now).
// Scheduling at or before the current instant is the legitimate "as soon as
// possible, after already-queued work" idiom, so the clamp here is not
// counted as a causality bug.
func (k *Kernel) ScheduleAt(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	k.push(event{at: t, seq: k.seq, fn: fn})
}

// NegativeDelays reports how many Schedule calls passed a negative delay and
// were clamped to zero. A nonzero value means some model computed an event
// time in the past; core.CheckHealth fails on it.
func (k *Kernel) NegativeDelays() uint64 { return k.negDelays }

// Step executes the single earliest event. It reports false when the queue
// is empty.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := k.events[0]
	k.popRoot()
	if e.at > k.now {
		k.now = e.at
	}
	k.nProcessed++
	e.fn()
	return true
}

// Run executes events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline remain queued.
func (k *Kernel) RunUntil(deadline Time) {
	for len(k.events) > 0 && k.events[0].at <= deadline {
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// RunFor executes events for d picoseconds of simulated time from now.
func (k *Kernel) RunFor(d Duration) { k.RunUntil(k.now.Add(d)) }

// RunWhile steps the kernel while cond() is true and events remain. It is
// the building block for "run until this operation completes" call sites.
func (k *Kernel) RunWhile(cond func() bool) {
	for cond() && k.Step() {
	}
}
