package sim

// Resource models an exclusive, FIFO-serviced shared resource: a memory
// channel, a CP mailbox slot, an FTL core. Requests specify a hold time;
// the resource grants them in arrival order with no preemption. Queueing
// delay under contention therefore emerges from the event schedule rather
// than from an analytic formula.
type Resource struct {
	k    *Kernel
	name string

	busyUntil Time
	queue     []*grant

	// Busy accumulates total occupied time, for utilization reporting.
	Busy Duration
	// Grants counts completed acquisitions.
	Grants uint64
}

type grant struct {
	hold Duration
	fn   func(start Time)
}

// NewResource returns an idle resource attached to kernel k.
func NewResource(k *Kernel, name string) *Resource {
	return &Resource{k: k, name: name}
}

// Name returns the diagnostic name the resource was created with.
func (r *Resource) Name() string { return r.name }

// Acquire requests exclusive use for hold picoseconds. fn runs at the instant
// the resource is granted (service start); the resource frees itself hold
// later. Acquire never blocks the caller.
func (r *Resource) Acquire(hold Duration, fn func(start Time)) {
	if hold < 0 {
		hold = 0
	}
	g := &grant{hold: hold, fn: fn}
	now := r.k.Now()
	if r.busyUntil <= now && len(r.queue) == 0 {
		r.start(g, now)
		return
	}
	r.queue = append(r.queue, g)
	// The dispatcher event at busyUntil drains the queue; it is scheduled
	// by start(), so nothing more to do here.
}

func (r *Resource) start(g *grant, at Time) {
	r.busyUntil = at.Add(g.hold)
	r.Busy += g.hold
	r.Grants++
	if g.fn != nil {
		if at == r.k.Now() {
			g.fn(at)
		} else {
			r.k.ScheduleAt(at, func() { g.fn(at) })
		}
	}
	r.k.ScheduleAt(r.busyUntil, r.dispatch)
}

func (r *Resource) dispatch() {
	now := r.k.Now()
	if r.busyUntil > now || len(r.queue) == 0 {
		return
	}
	g := r.queue[0]
	copy(r.queue, r.queue[1:])
	r.queue[len(r.queue)-1] = nil
	r.queue = r.queue[:len(r.queue)-1]
	r.start(g, now)
}

// WarpGrants credits n uncontended grants of hold picoseconds each, the
// last one starting at lastStart, without running any events. The caller
// owns the proof that the resource is idle and uncontended across every
// warped grant (no queue, each grant's hold ends before the next starts);
// counters and the release instant then land exactly where n real Acquire
// calls would have left them. No dispatcher events are scheduled — warped
// grants have no queue to drain.
func (r *Resource) WarpGrants(n uint64, hold Duration, lastStart Time) {
	if n == 0 {
		return
	}
	r.busyUntil = lastStart.Add(hold)
	r.Busy += Duration(n) * hold
	r.Grants += n
}

// QueueLen reports the number of waiting requests (not counting the one in
// service).
func (r *Resource) QueueLen() int { return len(r.queue) }

// BusyUntil reports the instant the current grant (if any) releases the
// resource.
func (r *Resource) BusyUntil() Time { return r.busyUntil }

// Idle reports whether the resource is free and nothing is queued.
func (r *Resource) Idle() bool { return r.busyUntil <= r.k.Now() && len(r.queue) == 0 }

// Utilization reports Busy as a fraction of the elapsed simulated time.
func (r *Resource) Utilization() float64 {
	if r.k.Now() == 0 {
		return 0
	}
	return float64(r.Busy) / float64(r.k.Now())
}
