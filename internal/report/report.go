// Package report renders experiment series as plain-text charts for the
// bench tool and the examples — bandwidth-over-progress plots (Fig. 7
// style), thread-sweep curves (Fig. 9) and bar groups (Fig. 8/12/13) that
// read in a terminal or a CI log.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Bar renders one labelled horizontal bar scaled against max.
func Bar(label string, value, max float64, width int, unit string) string {
	if width < 8 {
		width = 8
	}
	n := 0
	if max > 0 {
		n = int(value / max * float64(width))
	}
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return fmt.Sprintf("%-34s %8.1f %-5s |%s%s|",
		label, value, unit, strings.Repeat("#", n), strings.Repeat(" ", width-n))
}

// BarGroup renders labelled values as a bar chart scaled to the group max.
func BarGroup(w io.Writer, title string, labels []string, values []float64, unit string) {
	fmt.Fprintln(w, title)
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	for i := range labels {
		fmt.Fprintln(w, " ", Bar(labels[i], values[i], max, 40, unit))
	}
}

// Line renders an (x, y) series as a height-row ASCII plot. X values are
// assumed ascending; the plot is column-per-point.
func Line(w io.Writer, title string, xs, ys []float64, height int, yUnit string) {
	if len(xs) == 0 || len(xs) != len(ys) {
		fmt.Fprintf(w, "%s: (no data)\n", title)
		return
	}
	if height < 3 {
		height = 3
	}
	maxY := 0.0
	for _, v := range ys {
		if v > maxY {
			maxY = v
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	fmt.Fprintln(w, title)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(ys)))
	}
	for c, v := range ys {
		h := int(v / maxY * float64(height-1))
		for r := 0; r <= h; r++ {
			grid[height-1-r][c] = '#'
		}
	}
	for r, row := range grid {
		yLabel := ""
		if r == 0 {
			yLabel = fmt.Sprintf("%.0f %s", maxY, yUnit)
		}
		if r == height-1 {
			yLabel = fmt.Sprintf("%.0f %s", 0.0, yUnit)
		}
		fmt.Fprintf(w, "  %10s |%s\n", yLabel, row)
	}
	fmt.Fprintf(w, "  %10s +%s\n", "", strings.Repeat("-", len(ys)))
	fmt.Fprintf(w, "  %10s  x: %.2f .. %.2f\n", "", xs[0], xs[len(xs)-1])
}

// Sparkline compresses a series into one line of block characters.
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	max := 0.0
	for _, v := range ys {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	var sb strings.Builder
	for _, v := range ys {
		i := int(v / max * float64(len(blocks)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(blocks) {
			i = len(blocks) - 1
		}
		sb.WriteRune(blocks[i])
	}
	return sb.String()
}
