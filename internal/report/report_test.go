package report

import (
	"strings"
	"testing"
)

func TestBarScaling(t *testing.T) {
	full := Bar("a", 100, 100, 20, "MB/s")
	half := Bar("b", 50, 100, 20, "MB/s")
	if strings.Count(full, "#") != 20 {
		t.Fatalf("full bar: %q", full)
	}
	if strings.Count(half, "#") != 10 {
		t.Fatalf("half bar: %q", half)
	}
	if zero := Bar("c", 0, 100, 20, ""); strings.Count(zero, "#") != 0 {
		t.Fatalf("zero bar: %q", zero)
	}
	// Degenerate max must not panic or overflow.
	if over := Bar("d", 10, 0, 20, ""); strings.Count(over, "#") != 0 {
		t.Fatalf("zero-max bar: %q", over)
	}
}

func TestBarGroup(t *testing.T) {
	var sb strings.Builder
	BarGroup(&sb, "title", []string{"x", "y"}, []float64{1, 2}, "u")
	out := sb.String()
	if !strings.Contains(out, "title") || strings.Count(out, "|") != 4 {
		t.Fatalf("group output:\n%s", out)
	}
}

func TestLinePlot(t *testing.T) {
	var sb strings.Builder
	Line(&sb, "bw", []float64{0, 0.5, 1}, []float64{10, 20, 5}, 4, "MB/s")
	out := sb.String()
	if !strings.Contains(out, "bw") || !strings.Contains(out, "#") {
		t.Fatalf("line output:\n%s", out)
	}
	// Empty series must not panic.
	sb.Reset()
	Line(&sb, "empty", nil, nil, 4, "")
	if !strings.Contains(sb.String(), "no data") {
		t.Fatal("empty series not flagged")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline runes: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline")
	}
	flat := Sparkline([]float64{0, 0})
	if len([]rune(flat)) != 2 {
		t.Fatalf("flat sparkline: %q", flat)
	}
}
