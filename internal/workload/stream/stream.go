// Package stream implements the STREAM benchmark kernels (Copy, Scale, Add,
// Triad) over a byte-addressable device, modified as in §VII-A: every
// iteration's results are compared against reference data so that any
// corruption — a bus conflict, a refresh-detector false positive, a botched
// window transfer — is caught immediately. The paper uses this aging test to
// validate the refresh-detection accuracy of the PoC.
package stream

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Memory is the byte-addressable device under test (the core.System or any
// functional equivalent). Load/Store complete via callback on the device's
// simulated timeline.
type Memory interface {
	Load(off int64, buf []byte, done func())
	Store(off int64, data []byte, done func())
}

// Runner drives the STREAM kernels.
type Runner struct {
	mem Memory
	// N is the element count of each vector (float64 elements).
	N int
	// Base offsets of the three vectors a, b, c.
	aOff, bOff, cOff int64

	scalar float64

	// Errors found by verification.
	Inconsistencies int
	Iterations      int
}

const elemSize = 8

// New lays out three N-element vectors starting at base.
func New(mem Memory, base int64, n int) *Runner {
	vecBytes := int64(n * elemSize)
	return &Runner{
		mem: mem, N: n,
		aOff: base, bOff: base + vecBytes, cOff: base + 2*vecBytes,
		scalar: 3.0,
	}
}

// Footprint returns the total bytes the three vectors occupy.
func (r *Runner) Footprint() int64 { return int64(3 * r.N * elemSize) }

func encodeVec(v []float64) []byte {
	b := make([]byte, len(v)*elemSize)
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[i*elemSize:], floatBits(x))
	}
	return b
}

func decodeVec(b []byte) []float64 {
	v := make([]float64, len(b)/elemSize)
	for i := range v {
		v[i] = floatFromBits(binary.LittleEndian.Uint64(b[i*elemSize:]))
	}
	return v
}

// Init writes deterministic contents into a and b and zeroes c; done runs
// when the device acknowledges all stores.
func (r *Runner) Init(done func()) {
	a := make([]float64, r.N)
	b := make([]float64, r.N)
	for i := range a {
		a[i] = 1.0 + float64(i%97)
		b[i] = 2.0 + float64(i%89)
	}
	r.mem.Store(r.aOff, encodeVec(a), func() {
		r.mem.Store(r.bOff, encodeVec(b), func() {
			r.mem.Store(r.cOff, make([]byte, r.N*elemSize), done)
		})
	})
}

// RunIteration performs one full STREAM iteration — Copy (c=a), Scale
// (b=s*c), Add (c=a+b), Triad (a=b+s*c) — verifying each kernel's output
// against a host-computed reference. done receives the number of
// verification failures in this iteration.
func (r *Runner) RunIteration(done func(errors int)) {
	errs := 0
	// Load a and b to compute references.
	aBuf := make([]byte, r.N*elemSize)
	bBuf := make([]byte, r.N*elemSize)
	r.mem.Load(r.aOff, aBuf, func() {
		r.mem.Load(r.bOff, bBuf, func() {
			a := decodeVec(aBuf)
			b := decodeVec(bBuf)

			// Copy: c = a
			r.mem.Store(r.cOff, encodeVec(a), func() {
				r.verify(r.cOff, a, &errs, func() {
					// Scale: b = scalar * c   (c == a)
					nb := make([]float64, r.N)
					for i := range nb {
						nb[i] = r.scalar * a[i]
					}
					r.mem.Store(r.bOff, encodeVec(nb), func() {
						r.verify(r.bOff, nb, &errs, func() {
							// Add: c = a + b
							nc := make([]float64, r.N)
							for i := range nc {
								nc[i] = a[i] + nb[i]
							}
							r.mem.Store(r.cOff, encodeVec(nc), func() {
								r.verify(r.cOff, nc, &errs, func() {
									// Triad: a = b + scalar*c
									na := make([]float64, r.N)
									for i := range na {
										na[i] = nb[i] + r.scalar*nc[i]
									}
									r.mem.Store(r.aOff, encodeVec(na), func() {
										r.verify(r.aOff, na, &errs, func() {
											r.Iterations++
											r.Inconsistencies += errs
											done(errs)
										})
									})
								})
							})
						})
					})
				})
			})
			_ = b
		})
	})
}

// verify loads the vector at off and counts elements differing from want.
func (r *Runner) verify(off int64, want []float64, errs *int, next func()) {
	buf := make([]byte, len(want)*elemSize)
	r.mem.Load(off, buf, func() {
		got := decodeVec(buf)
		for i := range want {
			if got[i] != want[i] {
				*errs++
			}
		}
		next()
	})
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(u uint64) float64 { return math.Float64frombits(u) }

// String summarizes the runner state.
func (r *Runner) String() string {
	return fmt.Sprintf("stream: %d iterations, %d inconsistencies", r.Iterations, r.Inconsistencies)
}
