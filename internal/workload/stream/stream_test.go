package stream

import (
	"testing"

	"nvdimmc/internal/core"
	"nvdimmc/internal/sim"
)

// flatMemory adapts a plain byte slice to the Memory interface for unit
// tests of the kernels themselves.
type flatMemory struct{ b []byte }

func (m *flatMemory) Load(off int64, buf []byte, done func()) {
	copy(buf, m.b[off:])
	if done != nil {
		done()
	}
}
func (m *flatMemory) Store(off int64, data []byte, done func()) {
	copy(m.b[off:], data)
	if done != nil {
		done()
	}
}

func TestKernelsOnFlatMemory(t *testing.T) {
	mem := &flatMemory{b: make([]byte, 1<<16)}
	r := New(mem, 0, 256)
	inited := false
	r.Init(func() { inited = true })
	if !inited {
		t.Fatal("init did not complete")
	}
	for i := 0; i < 5; i++ {
		var errs int
		ran := false
		r.RunIteration(func(e int) { errs, ran = e, true })
		if !ran {
			t.Fatal("iteration did not complete")
		}
		if errs != 0 {
			t.Fatalf("iteration %d: %d verification errors on flat memory", i, errs)
		}
	}
	if r.Iterations != 5 || r.Inconsistencies != 0 {
		t.Fatalf("state: %v", r)
	}
}

// countingMemory wraps flatMemory and tallies load/store traffic so the
// kernel op mix is checkable.
type countingMemory struct {
	flatMemory
	loadBytes, storeBytes int64
	loads, stores         int
}

func (m *countingMemory) Load(off int64, buf []byte, done func()) {
	m.loads++
	m.loadBytes += int64(len(buf))
	m.flatMemory.Load(off, buf, done)
}
func (m *countingMemory) Store(off int64, data []byte, done func()) {
	m.stores++
	m.storeBytes += int64(len(data))
	m.flatMemory.Store(off, data, done)
}

// TestIterationOpMix pins the per-iteration operation mix: one STREAM
// iteration issues exactly 4 vector stores (Copy, Scale, Add, Triad outputs)
// and 6 vector loads (the a/b reference loads plus one verify readback per
// kernel), so the load:store byte ratio is exactly 3:2. A kernel silently
// dropping its verify pass — the paper's whole reason for modifying STREAM —
// would show up here as a ratio shift.
func TestIterationOpMix(t *testing.T) {
	mem := &countingMemory{flatMemory: flatMemory{b: make([]byte, 1<<16)}}
	r := New(mem, 0, 128)
	r.Init(nil)
	// Init's 3 vector stores are setup, not part of the kernel mix.
	mem.loads, mem.stores, mem.loadBytes, mem.storeBytes = 0, 0, 0, 0
	const iters = 4
	for i := 0; i < iters; i++ {
		r.RunIteration(func(int) {})
	}
	vec := int64(128 * elemSize)
	if mem.stores != 4*iters || mem.storeBytes != 4*iters*vec {
		t.Fatalf("stores = %d (%d B), want %d (%d B)", mem.stores, mem.storeBytes, 4*iters, 4*iters*vec)
	}
	if mem.loads != 6*iters || mem.loadBytes != 6*iters*vec {
		t.Fatalf("loads = %d (%d B), want %d (%d B)", mem.loads, mem.loadBytes, 6*iters, 6*iters*vec)
	}
	if ratio := float64(mem.loadBytes) / float64(mem.storeBytes); ratio != 1.5 {
		t.Fatalf("load:store byte ratio = %v, want exactly 1.5", ratio)
	}
}

func TestCorruptionDetected(t *testing.T) {
	mem := &flatMemory{b: make([]byte, 1<<16)}
	r := New(mem, 0, 64)
	r.Init(nil)
	// Sabotage the verify path: flip a byte in c after each store by
	// wrapping the memory. Easier: run one iteration, then corrupt and run
	// a verify manually via another iteration with a pre-corrupted a.
	done := false
	r.RunIteration(func(int) { done = true })
	if !done {
		t.Fatal("no completion")
	}
	// Corrupt vector a in place; next iteration's Triad verify reads a back
	// after storing it, so corrupt through a wrapper instead: simplest is
	// corrupting between load and verify is not possible on flat memory —
	// so assert the checker itself: verify against a wrong reference.
	errs := 0
	want := make([]float64, 64)
	doneV := false
	r.verify(r.aOff, want, &errs, func() { doneV = true })
	if !doneV || errs == 0 {
		t.Fatal("verify failed to flag corrupted data")
	}
}

// TestAgingOnNVDIMMC is the §VII-A experiment in miniature: STREAM over the
// NVDIMM-C stack with the refresh detector always on and NVMC window traffic
// happening on every REFRESH; zero inconsistencies and zero collisions.
func TestAgingOnNVDIMMC(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.CacheBytes = 1 << 20
	cfg.NAND.BlocksPerDie = 32
	cfg.NAND.PagesPerBlock = 16
	s, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Vectors sized beyond the slot count so evictions (NVMC traffic) occur
	// continuously under the host STREAM traffic.
	n := s.Layout.NumSlots * core.PageSize / 3 / 8 * 2
	r := New(s, 0, n)
	initDone := false
	r.Init(func() { initDone = true })
	if err := s.RunUntil(func() bool { return initDone }, 10*sim.Second); err != nil {
		t.Fatal(err)
	}
	iters := 3
	for i := 0; i < iters; i++ {
		finished := false
		r.RunIteration(func(errs int) {
			finished = true
			if errs != 0 {
				t.Errorf("iteration %d: %d inconsistencies", i, errs)
			}
		})
		if err := s.RunUntil(func() bool { return finished }, 30*sim.Second); err != nil {
			t.Fatal(err)
		}
	}
	if r.Inconsistencies != 0 {
		t.Fatalf("aging test: %d inconsistencies", r.Inconsistencies)
	}
	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	if s.Driver.Stats().Evictions == 0 {
		t.Fatal("aging test produced no NVMC traffic (vectors fit the cache?)")
	}
}
