package fio

import (
	"testing"

	"nvdimmc/internal/pmem"
	"nvdimmc/internal/sim"
)

func newBaseline(t *testing.T) *pmem.Device {
	t.Helper()
	cfg := pmem.DefaultConfig()
	cfg.Bytes = 1 << 30
	d, err := pmem.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRunRandRead(t *testing.T) {
	d := newBaseline(t)
	res, err := Run(d, Job{
		Pattern: RandRead, BlockSize: 4096, NumJobs: 1,
		FileSize: 1 << 30, OpsPerThread: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Meter.Ops() != 500 {
		t.Fatalf("ops = %d, want 500", res.Meter.Ops())
	}
	if res.BandwidthMBps() <= 0 || res.KIOPS() <= 0 {
		t.Fatalf("degenerate result: %v", res)
	}
	if res.Latency.Mean() <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestBaselineSingleThread4KAnchor(t *testing.T) {
	// Fig. 8 anchor: baseline 4 KB randread @1 thread ~ 2606 MB/s.
	cfg := pmem.DefaultConfig() // full 128 GB footprint
	d, err := pmem.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d, Job{
		Pattern: RandRead, BlockSize: 4096, NumJobs: 1,
		FileSize: 120 << 30, OpsPerThread: 2000, WarmupOps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.BandwidthMBps()
	if got < 2000 || got > 3300 {
		t.Fatalf("baseline 4K randread = %.0f MB/s, want ~2606 (+/-25%%)", got)
	}
}

func TestThreadScalingSaturates(t *testing.T) {
	// Fig. 9 shape: throughput grows with threads then saturates at the
	// channel bound (paper: 8694 MB/s at 8 threads).
	var bw []float64
	for _, jobs := range []int{1, 4, 8, 16} {
		d := newBaseline(t)
		res, err := Run(d, Job{
			Pattern: RandRead, BlockSize: 4096, NumJobs: jobs,
			FileSize: 1 << 30, OpsPerThread: 400, WarmupOps: 50,
		})
		if err != nil {
			t.Fatal(err)
		}
		bw = append(bw, res.BandwidthMBps())
	}
	if bw[1] < bw[0]*1.5 {
		t.Fatalf("no scaling 1->4 threads: %v", bw)
	}
	if bw[3] > bw[2]*1.35 {
		t.Fatalf("no saturation by 8 threads: %v", bw)
	}
	// Saturation in the 7-11 GB/s neighborhood at DDR4-1600.
	if bw[2] < 6000 || bw[2] > 12000 {
		t.Fatalf("8-thread plateau = %.0f MB/s, want 6-12 GB/s", bw[2])
	}
}

func TestSequentialVsRandomOffsets(t *testing.T) {
	d := newBaseline(t)
	res, err := Run(d, Job{
		Pattern: SeqRead, BlockSize: 4096, NumJobs: 1,
		FileSize: 1 << 20, OpsPerThread: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Meter.Ops() != 256 {
		t.Fatalf("ops = %d", res.Meter.Ops())
	}
}

func TestJobValidation(t *testing.T) {
	d := newBaseline(t)
	if _, err := Run(d, Job{Pattern: RandRead, BlockSize: 0}); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := Run(d, Job{Pattern: RandRead, BlockSize: 4096, FileSize: 2 << 30}); err == nil {
		t.Fatal("file larger than device accepted")
	}
	if _, err := Run(d, Job{Pattern: RandRead, BlockSize: 1 << 21, FileSize: 1 << 20}); err == nil {
		t.Fatal("block larger than file accepted")
	}
}

func TestWritesSlowerThanReads(t *testing.T) {
	d := newBaseline(t)
	r, err := Run(d, Job{Pattern: RandRead, BlockSize: 4096, FileSize: 1 << 28, OpsPerThread: 300})
	if err != nil {
		t.Fatal(err)
	}
	d2 := newBaseline(t)
	w, err := Run(d2, Job{Pattern: RandWrite, BlockSize: 4096, FileSize: 1 << 28, OpsPerThread: 300})
	if err != nil {
		t.Fatal(err)
	}
	if w.BandwidthMBps() >= r.BandwidthMBps() {
		t.Fatalf("writes (%.0f) not slower than reads (%.0f)", w.BandwidthMBps(), r.BandwidthMBps())
	}
}

func TestWarmupExcluded(t *testing.T) {
	d := newBaseline(t)
	res, err := Run(d, Job{
		Pattern: RandRead, BlockSize: 4096, NumJobs: 2,
		FileSize: 1 << 28, OpsPerThread: 100, WarmupOps: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Meter.Ops() > 200 || res.Meter.Ops() < 150 {
		t.Fatalf("measured ops = %d, want ~200 (warmup excluded)", res.Meter.Ops())
	}
	_ = sim.Duration(0)
}

// TestRandRWMixRatioSweep pins the rwmixread knob across its range: the
// device-observed write share must track 100-ReadPct within tolerance.
func TestRandRWMixRatioSweep(t *testing.T) {
	for _, readPct := range []int{10, 50, 90} {
		d := newBaseline(t)
		_, err := Run(d, Job{
			Pattern: RandRW, BlockSize: 4096, NumJobs: 1, ReadPct: readPct,
			FileSize: 1 << 28, OpsPerThread: 1500,
		})
		if err != nil {
			t.Fatal(err)
		}
		reads, writes, _, _ := d.IMC.Stats()
		want := float64(100-readPct) / 100
		got := float64(writes) / float64(reads+writes)
		if got < want-0.06 || got > want+0.06 {
			t.Fatalf("readpct=%d: write share = %.3f, want %.2f +/- 0.06", readPct, got, want)
		}
	}
}

// TestRunDeterministicUnderSeed: the generator side of fio is a pure
// function of Job.Seed — two identical runs must report identical measured
// results, and a different seed must visit different offsets.
func TestRunDeterministicUnderSeed(t *testing.T) {
	run := func(seed uint64) Result {
		d := newBaseline(t)
		res, err := Run(d, Job{
			Pattern: RandRW, BlockSize: 4096, NumJobs: 2, Seed: seed,
			FileSize: 1 << 28, OpsPerThread: 400, WarmupOps: 40,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(99), run(99)
	if a.KIOPS() != b.KIOPS() || a.BandwidthMBps() != b.BandwidthMBps() {
		t.Fatalf("same seed diverged: %.3f/%.3f KIOPS", a.KIOPS(), b.KIOPS())
	}
	for _, p := range []float64{50, 99, 99.9} {
		if a.Latency.Percentile(p) != b.Latency.Percentile(p) {
			t.Fatalf("same seed: p%v %v vs %v", p, a.Latency.Percentile(p), b.Latency.Percentile(p))
		}
	}
	c := run(100)
	if a.Latency.Mean() == c.Latency.Mean() && a.Latency.Percentile(99) == c.Latency.Percentile(99) {
		t.Fatal("different seeds produced identical latency profiles (seed unused?)")
	}
}

func TestRandRWMix(t *testing.T) {
	d := newBaseline(t)
	res, err := Run(d, Job{
		Pattern: RandRW, BlockSize: 4096, NumJobs: 1, ReadPct: 70,
		FileSize: 1 << 28, OpsPerThread: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Meter.Ops() != 600 {
		t.Fatalf("ops = %d", res.Meter.Ops())
	}
	// The device saw both reads and writes in roughly the requested split.
	reads, writes, _, _ := d.IMC.Stats()
	total := float64(reads + writes)
	if ratio := float64(writes) / total; ratio < 0.15 || ratio > 0.45 {
		t.Fatalf("write share = %.2f, want ~0.30", ratio)
	}
}
