// Package fio is the flexible-I/O-tester stand-in (§VI, Table II): a
// closed-loop workload generator with fio's knobs — pattern, block size,
// thread count, footprint — over any Target. The libpmem ioengine the paper
// uses is synchronous, so each thread is one outstanding op (iodepth beyond
// 1 has no effect with that engine; fio itself warns so).
package fio

import (
	"fmt"

	"nvdimmc/internal/metrics"
	"nvdimmc/internal/sim"
)

// Target is a device under test.
type Target interface {
	Name() string
	Kernel() *sim.Kernel
	Capacity() int64
	// Prepare tells the target the workload footprint before a run.
	Prepare(footprint int64)
	// ThreadCPU is the host CPU cost of one op on its issuing thread.
	ThreadCPU(n int, write bool) sim.Duration
	// Do performs the device part of one op.
	Do(off int64, n int, write bool, done func())
}

// Pattern is the fio access pattern.
type Pattern int

// Supported patterns.
const (
	RandRead Pattern = iota
	RandWrite
	SeqRead
	SeqWrite
	// RandRW mixes random reads and writes; Job.ReadPct sets the split
	// (fio's rwmixread, default 50).
	RandRW
)

func (p Pattern) String() string {
	switch p {
	case RandRead:
		return "randread"
	case RandWrite:
		return "randwrite"
	case SeqRead:
		return "read"
	case SeqWrite:
		return "write"
	case RandRW:
		return "randrw"
	default:
		return "pattern?"
	}
}

// IsWrite reports whether the pattern issues writes (RandRW decides per op).
func (p Pattern) IsWrite() bool { return p == RandWrite || p == SeqWrite }

// IsRandom reports whether offsets are random.
func (p Pattern) IsRandom() bool { return p == RandRead || p == RandWrite || p == RandRW }

// Job is one fio invocation.
type Job struct {
	Pattern   Pattern
	BlockSize int
	// NumJobs is the thread count (iodepth is 1 per thread: libpmem engine).
	NumJobs int
	// FileSize is the per-run footprint; offsets stay below it.
	FileSize int64
	// OpsPerThread bounds the run length.
	OpsPerThread int
	// WarmupOps per thread are excluded from measurement.
	WarmupOps int
	// ReadPct is the read share for RandRW (fio rwmixread; default 50).
	ReadPct int
	// Align forces offset alignment (defaults to BlockSize).
	Align int64
	Seed  uint64
}

// Validate fills defaults and checks the job.
func (j *Job) Validate(t Target) error {
	if j.BlockSize <= 0 {
		return fmt.Errorf("fio: block size %d", j.BlockSize)
	}
	if j.NumJobs <= 0 {
		j.NumJobs = 1
	}
	if j.OpsPerThread <= 0 {
		j.OpsPerThread = 1000
	}
	if j.FileSize <= 0 {
		j.FileSize = t.Capacity()
	}
	if j.FileSize > t.Capacity() {
		return fmt.Errorf("fio: file size %d exceeds device %d", j.FileSize, t.Capacity())
	}
	if j.Align <= 0 {
		j.Align = int64(j.BlockSize)
	}
	if int64(j.BlockSize) > j.FileSize {
		return fmt.Errorf("fio: block size %d exceeds file size %d", j.BlockSize, j.FileSize)
	}
	if j.Seed == 0 {
		j.Seed = 0xF10
	}
	if j.ReadPct <= 0 || j.ReadPct > 100 {
		j.ReadPct = 50
	}
	return nil
}

// Result is a completed run's measurements.
type Result struct {
	Job     Job
	Target  string
	Meter   *metrics.Meter
	Latency *metrics.Histogram
	// WallSim is the simulated duration of the measured phase.
	WallSim sim.Duration
}

// KIOPS of the measured phase.
func (r Result) KIOPS() float64 { return r.Meter.KIOPS() }

// BandwidthMBps of the measured phase.
func (r Result) BandwidthMBps() float64 { return r.Meter.BandwidthMBps() }

// MeanLatency of the measured ops.
func (r Result) MeanLatency() sim.Duration { return r.Latency.Mean() }

func (r Result) String() string {
	return fmt.Sprintf("%s %s bs=%d jobs=%d: %.0f KIOPS %.0f MB/s lat(mean=%v p99=%v)",
		r.Target, r.Job.Pattern, r.Job.BlockSize, r.Job.NumJobs,
		r.KIOPS(), r.BandwidthMBps(), r.Latency.Mean(), r.Latency.Percentile(99))
}

// Run executes the job to completion on the target's kernel.
func Run(t Target, job Job) (Result, error) {
	if err := job.Validate(t); err != nil {
		return Result{}, err
	}
	t.Prepare(job.FileSize)
	k := t.Kernel()

	meter := metrics.NewMeter(k.Now())
	hist := metrics.NewHistogram()
	var measStart sim.Time
	measuring := false
	remaining := job.NumJobs

	blocks := job.FileSize / job.Align
	if blocks < 1 {
		blocks = 1
	}

	for th := 0; th < job.NumJobs; th++ {
		rng := sim.NewRand(job.Seed + uint64(th)*0x9E37 + 1)
		seq := int64(th) * (blocks / int64(job.NumJobs)) // thread's sequential cursor
		opIdx := 0
		var loop func()
		loop = func() {
			if opIdx >= job.OpsPerThread+job.WarmupOps {
				remaining--
				return
			}
			opIdx++
			if !measuring && opIdx > job.WarmupOps {
				// First measured op across all threads starts the clock.
				measuring = true
				measStart = k.Now()
				*meter = *metrics.NewMeter(measStart)
			}
			var off int64
			if job.Pattern.IsRandom() {
				off = rng.Int63n(blocks) * job.Align
			} else {
				off = (seq % blocks) * job.Align
				seq++
			}
			if off+int64(job.BlockSize) > job.FileSize {
				off = job.FileSize - int64(job.BlockSize)
				if off < 0 {
					off = 0
				}
			}
			write := job.Pattern.IsWrite()
			if job.Pattern == RandRW {
				write = rng.Intn(100) >= job.ReadPct
			}
			issueAt := k.Now()
			measured := opIdx > job.WarmupOps
			// Host CPU phase on this thread, then the device phase. A few
			// percent of deterministic-random jitter models real CPU-time
			// variance; without it, fixed op cycles can phase-lock with the
			// refresh cadence and hide (or exaggerate) refresh contention.
			cpu := t.ThreadCPU(job.BlockSize, write)
			cpu += sim.Duration(rng.Int63n(int64(cpu)/2+1)) - sim.Duration(int64(cpu)/4)
			k.Schedule(cpu, func() {
				t.Do(off, job.BlockSize, write, func() {
					if measured {
						hist.Record(k.Now().Sub(issueAt))
						meter.Record(k.Now(), job.BlockSize)
					}
					loop()
				})
			})
		}
		loop()
	}

	// Drive the kernel until every thread finished. The refresh engine
	// keeps the queue non-empty, so completion is the only exit.
	guard := 0
	for remaining > 0 {
		if !k.Step() {
			return Result{}, fmt.Errorf("fio: kernel drained with %d threads outstanding", remaining)
		}
		guard++
		if guard > 1<<32 {
			return Result{}, fmt.Errorf("fio: runaway simulation")
		}
	}
	meter.Finish(k.Now())
	return Result{
		Job:     job,
		Target:  t.Name(),
		Meter:   meter,
		Latency: hist,
		WallSim: k.Now().Sub(measStart),
	}, nil
}

// Prefill touches every page of [0, footprint) with block-sized sequential
// writes so a subsequent run hits the device's cache (the paper's
// NVDC-Cached condition) or populates the file. It runs to completion.
func Prefill(t Target, footprint int64, blockSize int) error {
	job := Job{
		Pattern:      SeqWrite,
		BlockSize:    blockSize,
		NumJobs:      1,
		FileSize:     footprint,
		OpsPerThread: int(footprint / int64(blockSize)),
	}
	_, err := Run(t, job)
	return err
}
