package openloop

import (
	"errors"
	"math"
	"testing"

	"nvdimmc/internal/sim"
)

func twoTenants() Config {
	return Config{
		Seed:       42,
		RatePerSec: 1e6,
		Tenants: []Tenant{
			{Name: "zipf", Dist: Zipfian, Weight: 3, Footprint: 1 << 22, ReadPct: 80},
			{Name: "uni", Dist: Uniform, Weight: 1, Footprint: 1 << 22, ReadPct: -1},
		},
	}
}

// TestDeterminismUnderSeed: two generators with the same seed emit identical
// streams; a different seed diverges.
func TestDeterminismUnderSeed(t *testing.T) {
	a, err := New(twoTenants())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(twoTenants())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("request %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
	cfg := twoTenants()
	cfg.Seed = 43
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	aa, _ := New(twoTenants())
	for i := 0; i < 100; i++ {
		if aa.Next() == c.Next() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds produced %d/100 identical requests", same)
	}
}

// TestZipfianSkew: the top 1% of blocks must receive the analytic zipf mass
// within tolerance, and the uniform tenant must show no such skew.
func TestZipfianSkew(t *testing.T) {
	const blocks = 10000
	cfg := Config{
		Seed:       7,
		RatePerSec: 1e6,
		Tenants: []Tenant{
			{Dist: Zipfian, Theta: 0.99, Footprint: blocks * 4096},
		},
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 200000
	counts := make([]int, blocks)
	for i := 0; i < draws; i++ {
		counts[g.Next().Off/4096]++
	}
	topK := int64(blocks / 100) // top 1% of ranks (the generator's hot head)
	hot := 0
	for i := int64(0); i < topK; i++ {
		hot += counts[i]
	}
	got := float64(hot) / draws
	want := TopMass(blocks, topK, 0.99)
	if got < want*0.85 || got > want*1.15 {
		t.Fatalf("top-1%% mass = %.3f, want %.3f +/- 15%%", got, want)
	}
	// Sanity on the analytic reference itself: zipf(0.99) over 10k items
	// concentrates roughly half its mass in the top 1%.
	if want < 0.3 || want > 0.7 {
		t.Fatalf("analytic top-1%% mass = %.3f, outside sane zipf range", want)
	}

	// Uniform control: top 1% of blocks get ~1% of draws.
	ucfg := Config{Seed: 7, RatePerSec: 1e6,
		Tenants: []Tenant{{Dist: Uniform, Footprint: blocks * 4096}}}
	ug, err := New(ucfg)
	if err != nil {
		t.Fatal(err)
	}
	uhot := 0
	for i := 0; i < draws; i++ {
		if ug.Next().Off/4096 < topK {
			uhot++
		}
	}
	if frac := float64(uhot) / draws; frac > 0.02 {
		t.Fatalf("uniform top-1%% mass = %.3f, want ~0.01", frac)
	}
}

// TestArrivalRateAndMonotonicity: mean interarrival tracks 1/rate and
// arrivals are strictly increasing.
func TestArrivalRateAndMonotonicity(t *testing.T) {
	g, err := New(twoTenants()) // 1M ops/s -> 1 us mean spacing
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	var last sim.Duration
	for i := 0; i < n; i++ {
		r := g.Next()
		if r.Arrival <= last {
			t.Fatalf("arrival %d not increasing: %v after %v", i, r.Arrival, last)
		}
		last = r.Arrival
	}
	mean := float64(last) / n
	if mean < 0.9*float64(sim.Microsecond) || mean > 1.1*float64(sim.Microsecond) {
		t.Fatalf("mean interarrival = %.0f ps, want ~1us", mean)
	}

	// Saturating mode: fixed 1 ns spacing.
	cfg := twoTenants()
	cfg.RatePerSec = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := s.Next(), s.Next()
	if r2.Arrival-r1.Arrival != sim.Nanosecond {
		t.Fatalf("saturating spacing = %v, want 1ns", r2.Arrival-r1.Arrival)
	}
}

// TestTenantWeightsAndOpMix: arrival shares track weights (3:1) and each
// tenant's write fraction tracks its ReadPct.
func TestTenantWeightsAndOpMix(t *testing.T) {
	g, err := New(twoTenants())
	if err != nil {
		t.Fatal(err)
	}
	const n = 40000
	var perTenant [2]int
	var writes [2]int
	for i := 0; i < n; i++ {
		r := g.Next()
		perTenant[r.Tenant]++
		if r.Write {
			writes[r.Tenant]++
		}
		if r.Len != 4096 {
			t.Fatalf("block size = %d", r.Len)
		}
		if r.Off < 0 || r.Off+int64(r.Len) > 1<<22 {
			t.Fatalf("offset %d outside tenant footprint", r.Off)
		}
	}
	if share := float64(perTenant[0]) / n; share < 0.70 || share > 0.80 {
		t.Fatalf("tenant 0 share = %.3f, want ~0.75", share)
	}
	// Tenant 0: ReadPct 80 -> ~20% writes. Tenant 1: write-only.
	if frac := float64(writes[0]) / float64(perTenant[0]); frac < 0.15 || frac > 0.25 {
		t.Fatalf("tenant 0 write share = %.3f, want ~0.20", frac)
	}
	if writes[1] != perTenant[1] {
		t.Fatalf("write-only tenant issued %d/%d writes", writes[1], perTenant[1])
	}
}

// TestConfigValidation: bad configs are rejected.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no tenants accepted")
	}
	if _, err := New(Config{Tenants: []Tenant{{Footprint: 100, BlockSize: 4096}}}); err == nil {
		t.Fatal("footprint < block accepted")
	}
	if _, err := New(Config{Tenants: []Tenant{{Footprint: 1 << 20, ReadPct: 150}}}); err == nil {
		t.Fatal("read pct > 100 accepted")
	}
	if _, err := New(Config{Tenants: []Tenant{{Footprint: 1 << 20, Dist: Zipfian, Theta: 1.5}}}); err == nil {
		t.Fatal("theta >= 1 accepted")
	}
	if _, err := New(Config{Deadline: -1, Tenants: []Tenant{{Footprint: 1 << 20}}}); err == nil {
		t.Fatal("negative deadline accepted")
	}
	if _, err := New(Config{RatePerSec: -1, Tenants: []Tenant{{Footprint: 1 << 20}}}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := New(Config{RatePerSec: math.NaN(), Tenants: []Tenant{{Footprint: 1 << 20}}}); err == nil {
		t.Fatal("NaN rate accepted")
	}
	if _, err := New(Config{Tenants: []Tenant{{Footprint: 1 << 20, Weight: math.Inf(1)}}}); err == nil {
		t.Fatal("infinite weight accepted")
	}
}

// TestWeightValidationTyped: the degenerate weight configs are rejected with
// the typed sentinels, and the legal zero-weight forms still default.
func TestWeightValidationTyped(t *testing.T) {
	foot := int64(1 << 20)
	cases := []struct {
		name    string
		tenants []Tenant
		want    error
	}{
		{"negative weight", []Tenant{{Footprint: foot, Weight: -1}}, ErrTenantWeight},
		{"NaN weight", []Tenant{{Footprint: foot, Weight: math.NaN()}}, ErrTenantWeight},
		{"Inf weight", []Tenant{{Footprint: foot, Weight: math.Inf(1)}}, ErrTenantWeight},
		{"zero mixed with nonzero", []Tenant{
			{Footprint: foot},
			{Footprint: foot, Weight: 4},
		}, ErrTenantWeight},
		{"sum overflows to Inf", []Tenant{
			{Footprint: foot, Weight: 1e308},
			{Footprint: foot, Weight: 1e308},
		}, ErrWeightSum},
		{"negative QoS weight", []Tenant{{Footprint: foot, QoSWeight: -2}}, ErrTenantQoS},
		{"NaN limit", []Tenant{{Footprint: foot, LimitPerSec: math.NaN()}}, ErrTenantQoS},
		{"negative limit", []Tenant{{Footprint: foot, LimitPerSec: -5}}, ErrTenantQoS},
		{"negative burst", []Tenant{{Footprint: foot, Burst: -1}}, ErrTenantQoS},
		{"negative SLO", []Tenant{{Footprint: foot, SLOP99: -sim.Microsecond}}, ErrTenantQoS},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(Config{Tenants: c.tenants})
			if err == nil {
				t.Fatalf("%s accepted", c.name)
			}
			if !errors.Is(err, c.want) {
				t.Fatalf("%s: error %v not typed %v", c.name, err, c.want)
			}
		})
	}

	// All-zero weights stay legal: equal shares.
	g, err := New(Config{Tenants: []Tenant{
		{Footprint: foot}, {Footprint: foot}, {Footprint: foot},
	}})
	if err != nil {
		t.Fatalf("all-zero weights rejected: %v", err)
	}
	for i, c := range g.cum {
		want := float64(i+1) / 3
		if math.Abs(c-want) > 1e-9 {
			t.Fatalf("equal-share cum[%d] = %v, want %v", i, c, want)
		}
	}
	// Explicit all-nonzero weights normalize as before.
	if _, err := New(Config{Tenants: []Tenant{
		{Footprint: foot, Weight: 3}, {Footprint: foot, Weight: 1},
	}}); err != nil {
		t.Fatalf("weighted mix rejected: %v", err)
	}
}

// TestDeadlineStamping: a configured budget reaches every emitted request
// unchanged; zero leaves requests undeadlined.
func TestDeadlineStamping(t *testing.T) {
	cfg := twoTenants()
	cfg.Deadline = 250 * sim.Microsecond
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if r := g.Next(); r.Deadline != 250*sim.Microsecond {
			t.Fatalf("request %d deadline %v, want 250us", i, r.Deadline)
		}
	}
	g, err = New(twoTenants())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if r := g.Next(); r.Deadline != 0 {
			t.Fatalf("request %d deadline %v, want none", i, r.Deadline)
		}
	}
}

func TestDistString(t *testing.T) {
	for _, c := range []struct {
		d    Dist
		want string
	}{{Uniform, "uniform"}, {Zipfian, "zipfian"}, {Dist(99), "dist?"}} {
		if got := c.d.String(); got != c.want {
			t.Fatalf("Dist(%d).String() = %q, want %q", c.d, got, c.want)
		}
	}
}

// TestCaptureHook: the capture hook sees exactly the emitted stream, in
// order, without perturbing it — a hooked generator and a bare one with the
// same seed stay identical.
func TestCaptureHook(t *testing.T) {
	bare, err := New(twoTenants())
	if err != nil {
		t.Fatal(err)
	}
	hooked, err := New(twoTenants())
	if err != nil {
		t.Fatal(err)
	}
	var captured []Request
	hooked.SetCapture(func(r Request) { captured = append(captured, r) })
	for i := 0; i < 200; i++ {
		want := bare.Next()
		got := hooked.Next()
		if got != want {
			t.Fatalf("request %d: hook perturbed the stream: %+v vs %+v", i, got, want)
		}
		if captured[i] != want {
			t.Fatalf("request %d: captured %+v, emitted %+v", i, captured[i], want)
		}
	}
	hooked.SetCapture(nil)
	hooked.Next()
	if len(captured) != 200 {
		t.Fatalf("hook ran after removal: %d records", len(captured))
	}
}

// TestSocketStamping: a tenant's home socket rides on every request it
// emits, without perturbing any RNG draw (the stamp happens after all
// draws), and negative sockets are rejected at validation.
func TestSocketStamping(t *testing.T) {
	base, err := New(twoTenants())
	if err != nil {
		t.Fatal(err)
	}
	cfg := twoTenants()
	cfg.Tenants[1].Socket = 2
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		want, got := base.Next(), g.Next()
		wantSock := 0
		if got.Tenant == 1 {
			wantSock = 2
		}
		if got.Socket != wantSock {
			t.Fatalf("request %d: tenant %d stamped socket %d, want %d", i, got.Tenant, got.Socket, wantSock)
		}
		got.Socket = want.Socket
		if got != want {
			t.Fatalf("request %d: socket stamping perturbed the stream: %+v vs %+v", i, got, want)
		}
	}

	bad := twoTenants()
	bad.Tenants[0].Socket = -1
	if _, err := New(bad); err == nil {
		t.Fatal("negative home socket accepted")
	}
}
