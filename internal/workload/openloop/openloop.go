// Package openloop generates multi-tenant open-loop request streams for the
// pooled (multi-channel) experiments. Closed-loop generators like
// internal/workload/fio throttle themselves to the device — each thread waits
// for its op to complete — which hides queueing: a saturated device just
// makes the generator slow down. Production front-ends do not wait; requests
// arrive on their own clock and pile up. This package models that: a Poisson
// arrival process at a configured aggregate rate, fanned across tenants with
// weighted shares, each tenant drawing offsets from its own distribution
// (uniform, or zipfian for the hot-key skew real multi-tenant traffic has).
//
// The whole stream is a pure function of Config.Seed: one sim.Rand drives
// every draw in a fixed order (interarrival, tenant, op type, offset), so a
// stream replays exactly and two generators with the same seed emit identical
// requests — the determinism contract the pool's parallel epoch engine and
// its byte-identical-output tests build on.
package openloop

import (
	"errors"
	"fmt"
	"math"

	"nvdimmc/internal/sim"
)

// Typed validation sentinels: degenerate tenant configs used to surface as
// ad-hoc strings (or, for a zero weight mixed with nonzero ones, silently
// become an equal share), which made a sweep arithmetic bug look like a
// plausible traffic mix. Callers can now errors.Is the class.
var (
	// ErrTenantWeight: a tenant weight is negative, NaN, Inf, or zero in a
	// mix where other tenants carry explicit nonzero weights (an all-zero
	// mix still defaults to equal shares).
	ErrTenantWeight = errors.New("openloop: invalid tenant weight")
	// ErrWeightSum: the tenant weights sum to a non-positive or non-finite
	// total, so shares cannot be normalized.
	ErrWeightSum = errors.New("openloop: degenerate tenant weight sum")
	// ErrTenantQoS: a tenant's QoS contract field (QoSWeight, LimitPerSec,
	// Burst, SLOP99) is out of range.
	ErrTenantQoS = errors.New("openloop: invalid tenant QoS contract")
)

// Dist selects a tenant's offset distribution.
type Dist int

// Supported distributions.
const (
	// Uniform draws every block in the footprint with equal probability.
	Uniform Dist = iota
	// Zipfian draws block ranks from a bounded zipf(theta) law (Gray et al.,
	// "Quickly Generating Billion-Record Synthetic Databases"): rank 0 is the
	// hottest block. Theta defaults to 0.99, the YCSB constant.
	Zipfian
)

func (d Dist) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipfian"
	default:
		return "dist?"
	}
}

// Tenant is one traffic source sharing the pool.
type Tenant struct {
	Name string
	Dist Dist
	// Theta is the zipfian skew (ignored for Uniform; default 0.99).
	Theta float64
	// Weight is this tenant's share of arrivals (normalized over tenants).
	Weight float64
	// ReadPct is the read percentage of this tenant's ops. Zero defaults to
	// 100 (read-only); pass a negative value for a write-only tenant.
	ReadPct int
	// BlockSize is the tenant's op size in bytes (default 4096).
	BlockSize int
	// Footprint is the tenant's addressable span in bytes; offsets fall in
	// [Offset, Offset+Footprint), aligned to BlockSize.
	Footprint int64
	// Offset is the tenant's base address in the pooled space.
	Offset int64
	// Socket is the tenant's home socket in a NUMA fabric: the socket its
	// requests are submitted *from*, so fabric addresses outside that
	// socket's span pay the cross-socket interconnect both ways. Single-pool
	// consumers ignore it. Negative values are rejected by New.
	Socket int

	// The QoS contract fields below describe the tenant's service terms to
	// the pooled front end (pool.QoSFromTenants); the generator itself
	// ignores them — they shape scheduling, not traffic.

	// QoSWeight is the tenant's DRR service share in the pool's dispatch
	// (distinct from Weight, its share of *arrivals*; a noisy neighbor has a
	// large arrival share and an ordinary service share). Zero defaults to 1.
	QoSWeight float64
	// LimitPerSec is the tenant's token-bucket rate in requests per
	// simulated second (zero: unpoliced).
	LimitPerSec float64
	// Burst is the token-bucket depth in requests (zero defaults in the
	// pool when rate-limited).
	Burst int
	// SLOP99 is the tenant's target p99 latency (zero: untracked).
	SLOP99 sim.Duration
}

// Config parameterizes a stream.
type Config struct {
	// Seed makes the stream reproducible; zero gets a fixed default.
	Seed uint64
	// RatePerSec is the aggregate arrival rate in ops per simulated second.
	// Zero means "saturating": arrivals spaced 1 ns apart, an offered load
	// beyond any channel count this repo configures. Negative (and NaN/Inf)
	// rates are rejected by New — they used to silently saturate, hiding a
	// sweep arithmetic bug as a bogus overload result.
	RatePerSec float64
	// Deadline, when positive, stamps every generated request with this
	// completion budget (relative to its arrival). Zero leaves requests
	// deadline-free; negative is rejected.
	Deadline sim.Duration
	Tenants  []Tenant
}

// Request is one arrival.
type Request struct {
	// Arrival is the offset of the arrival instant from stream start.
	Arrival sim.Duration
	// Deadline is the completion budget relative to Arrival (0 = none).
	Deadline sim.Duration
	// Tenant indexes Config.Tenants.
	Tenant int
	// Socket is the submitting tenant's home socket (see Tenant.Socket).
	Socket int
	Off    int64
	Len    int
	Write  bool
}

// Generator emits the stream; it is infinite (callers bound by count or by
// arrival time).
type Generator struct {
	cfg     Config
	rng     *sim.Rand
	zip     []*zipf   // per-tenant, nil unless Zipfian
	cum     []float64 // cumulative normalized weights
	mean    sim.Duration
	now     sim.Duration
	capture func(Request)
}

// SetCapture installs fn as the generator's capture hook: every request Next
// returns is also passed to fn, in emission order, before the caller sees it.
// The hook observes — it must not mutate shared state the stream depends on —
// so a recorded run and an unrecorded run with the same seed emit identical
// requests. internal/replay's Recorder plugs in here to persist any live
// generator workload as a trace; nil removes the hook.
func (g *Generator) SetCapture(fn func(Request)) { g.capture = fn }

// New validates cfg and returns a generator positioned before the first
// arrival.
func New(cfg Config) (*Generator, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("openloop: no tenants")
	}
	if cfg.RatePerSec < 0 || math.IsNaN(cfg.RatePerSec) || math.IsInf(cfg.RatePerSec, 0) {
		return nil, fmt.Errorf("openloop: rate %v ops/s is not a rate (zero means saturating; negative/NaN/Inf is a config bug)",
			cfg.RatePerSec)
	}
	if cfg.Deadline < 0 {
		return nil, fmt.Errorf("openloop: deadline %d ps negative (zero disables deadlines)", int64(cfg.Deadline))
	}
	// Weight pass 1: classify before defaulting. A zero weight is legal only
	// when every weight is zero (the equal-share default); zero mixed with
	// explicit nonzero weights would silently grant the forgotten tenant a
	// full share — reject it typed instead.
	anyZero, anyNonzero := false, false
	for i := range cfg.Tenants {
		t := &cfg.Tenants[i]
		if t.Weight < 0 || math.IsNaN(t.Weight) || math.IsInf(t.Weight, 0) {
			return nil, fmt.Errorf("openloop: tenant %d weight %v is not a share (negative/NaN/Inf is a config bug): %w",
				i, t.Weight, ErrTenantWeight)
		}
		if t.Weight == 0 {
			anyZero = true
		} else {
			anyNonzero = true
		}
	}
	if anyZero && anyNonzero {
		for i := range cfg.Tenants {
			if cfg.Tenants[i].Weight == 0 {
				return nil, fmt.Errorf("openloop: tenant %d weight 0 in a weighted mix (give it an explicit share, or zero all weights for equal shares): %w",
					i, ErrTenantWeight)
			}
		}
	}
	total := 0.0
	for i := range cfg.Tenants {
		t := &cfg.Tenants[i]
		if t.Weight == 0 {
			t.Weight = 1
		}
		if t.QoSWeight < 0 || math.IsNaN(t.QoSWeight) || math.IsInf(t.QoSWeight, 0) {
			return nil, fmt.Errorf("openloop: tenant %d QoS weight %v (zero defaults to 1): %w", i, t.QoSWeight, ErrTenantQoS)
		}
		if t.LimitPerSec < 0 || math.IsNaN(t.LimitPerSec) || math.IsInf(t.LimitPerSec, 0) {
			return nil, fmt.Errorf("openloop: tenant %d limit %v req/s (zero disables policing): %w", i, t.LimitPerSec, ErrTenantQoS)
		}
		if t.Burst < 0 {
			return nil, fmt.Errorf("openloop: tenant %d burst %d negative: %w", i, t.Burst, ErrTenantQoS)
		}
		if t.SLOP99 < 0 {
			return nil, fmt.Errorf("openloop: tenant %d SLO p99 %d ps negative: %w", i, int64(t.SLOP99), ErrTenantQoS)
		}
		if t.BlockSize < 0 {
			return nil, fmt.Errorf("openloop: tenant %d block size %d negative (zero defaults to 4096)", i, t.BlockSize)
		}
		if t.Socket < 0 {
			return nil, fmt.Errorf("openloop: tenant %d home socket %d negative (zero is socket 0)", i, t.Socket)
		}
		if t.BlockSize == 0 {
			t.BlockSize = 4096
		}
		switch {
		case t.ReadPct == 0:
			t.ReadPct = 100
		case t.ReadPct < 0:
			t.ReadPct = 0
		case t.ReadPct > 100:
			return nil, fmt.Errorf("openloop: tenant %d read pct %d > 100", i, t.ReadPct)
		}
		if t.Footprint < int64(t.BlockSize) {
			return nil, fmt.Errorf("openloop: tenant %d footprint %d < block %d",
				i, t.Footprint, t.BlockSize)
		}
		if t.Theta == 0 {
			t.Theta = 0.99
		}
		if t.Dist == Zipfian && (t.Theta <= 0 || t.Theta >= 1) {
			return nil, fmt.Errorf("openloop: tenant %d theta %v outside (0,1)", i, t.Theta)
		}
		total += t.Weight
	}
	// Per-tenant weights are finite and positive by here, but their sum can
	// still overflow to +Inf (two 1e308 shares), leaving every normalized
	// share 0 or NaN.
	if total <= 0 || math.IsInf(total, 0) || math.IsNaN(total) {
		return nil, fmt.Errorf("openloop: tenant weights sum to %v: %w", total, ErrWeightSum)
	}
	g := &Generator{cfg: cfg, rng: sim.NewRand(cfg.Seed)}
	acc := 0.0
	for i := range cfg.Tenants {
		acc += cfg.Tenants[i].Weight / total
		g.cum = append(g.cum, acc)
		var z *zipf
		if cfg.Tenants[i].Dist == Zipfian {
			z = newZipf(cfg.Tenants[i].Footprint/int64(cfg.Tenants[i].BlockSize),
				cfg.Tenants[i].Theta)
		}
		g.zip = append(g.zip, z)
	}
	g.cum[len(g.cum)-1] = 1 // guard against float drift
	if cfg.RatePerSec > 0 {
		g.mean = sim.Duration(float64(sim.Second) / cfg.RatePerSec)
	} else {
		g.mean = 0 // saturating: fixed 1 ns spacing, no exponential draw
	}
	return g, nil
}

// Next returns the next arrival. The stream never ends.
func (g *Generator) Next() Request {
	// Draw order is fixed — interarrival, tenant, op type, offset — so adding
	// a tenant or changing a rate perturbs only what it must.
	if g.mean > 0 {
		u := g.rng.Float64()
		d := sim.Duration(-math.Log(1-u) * float64(g.mean))
		if d <= 0 {
			d = 1 // exponential draws can round below 1 ps; keep arrivals strict
		}
		g.now += d
	} else {
		g.now += sim.Nanosecond
	}
	ti := 0
	u := g.rng.Float64()
	for ti < len(g.cum)-1 && u >= g.cum[ti] {
		ti++
	}
	t := &g.cfg.Tenants[ti]
	write := g.rng.Intn(100) >= t.ReadPct
	blocks := t.Footprint / int64(t.BlockSize)
	var blk int64
	if z := g.zip[ti]; z != nil {
		blk = z.next(g.rng)
	} else {
		blk = g.rng.Int63n(blocks)
	}
	r := Request{
		Arrival:  g.now,
		Deadline: g.cfg.Deadline,
		Tenant:   ti,
		Socket:   t.Socket,
		Off:      t.Offset + blk*int64(t.BlockSize),
		Len:      t.BlockSize,
		Write:    write,
	}
	if g.capture != nil {
		g.capture(r)
	}
	return r
}

// zipf is the bounded zipfian rank generator of Gray et al.; rank 0 is the
// hottest item. Streams are stable across Go releases because they draw from
// sim.Rand, not math/rand.
type zipf struct {
	n              int64
	theta          float64
	alpha, zetan   float64
	eta, zetatheta float64
}

func newZipf(n int64, theta float64) *zipf {
	z := &zipf{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zetatheta = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zetatheta/z.zetan)
	return z
}

// zeta returns sum_{i=1..n} 1/i^theta.
func zeta(n int64, theta float64) float64 {
	s := 0.0
	for i := int64(1); i <= n; i++ {
		s += 1 / math.Pow(float64(i), theta)
	}
	return s
}

// next draws a rank in [0, n).
func (z *zipf) next(r *sim.Rand) int64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	k := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k < 0 {
		k = 0
	}
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// TopMass returns the analytic probability mass of the hottest k ranks under
// zipf(theta) over n items — the reference the skew sanity tests compare
// empirical streams against.
func TopMass(n, k int64, theta float64) float64 {
	if k > n {
		k = n
	}
	return zeta(k, theta) / zeta(n, theta)
}
