package tpch

import "nvdimmc/internal/sim"

// TraceOptions shape the reference stream PageTrace emits.
type TraceOptions struct {
	// ProbeMultiplier scales probe counts. The paper's in-house simulation
	// traced the engine's buffer accesses, which revisit hot pages
	// (dictionaries, index nodes) far more often than the one-touch plan
	// model used for query timing; a multiplier around 10 with skew
	// reproduces its hit-rate band (paper: 78.7–99.3%, ours: ~81–95%,
	// §VII-B5).
	ProbeMultiplier int
	// HotFraction of probes go to a hot subset of each probed column.
	HotFraction float64
	// HotSetFraction is that hot subset's share of the column's pages.
	HotSetFraction float64
}

// TimingTrace are the options matching the Fig. 11 timing model: one-touch
// uniform probes, no buffer-reuse amplification.
func TimingTrace() TraceOptions { return TraceOptions{ProbeMultiplier: 1} }

// BufferTrace are the options approximating the paper's in-house buffer
// trace for the LRU study.
func BufferTrace() TraceOptions {
	return TraceOptions{ProbeMultiplier: 14, HotFraction: 0.86, HotSetFraction: 0.004}
}

// PageTrace generates the 4 KB-page reference stream of running all the
// given queries back-to-back over a dataset of sc.TotalBytes, without a live
// database: tables are laid out consecutively in the same proportions
// BuildDataset uses, scans emit sequential page references over the touched
// fraction of each column, and probes emit (optionally hot-skewed) random
// references. The trace feeds the cpolicy simulator for the §VII-B5
// LRC-vs-LRU hit-rate study.
func PageTrace(specs []QuerySpec, sc Scale, seed uint64, opts TraceOptions) []int64 {
	const pageSize = 4096

	// Lay out tables and columns like BuildDataset.
	type colRange struct{ start, pages int64 }
	cols := make(map[string]map[string]colRange)
	tableRange := make(map[string]colRange)
	var cursor int64
	for _, spec := range tableShare {
		bytes := int64(float64(sc.TotalBytes) * spec.share)
		rows := bytes / int64(len(spec.cols)) / 8
		if rows < 16 {
			rows = 16
		}
		m := make(map[string]colRange)
		tblStart := cursor / pageSize
		for _, c := range spec.cols {
			colBytes := rows * 8
			pages := (colBytes + pageSize - 1) / pageSize
			m[c] = colRange{start: cursor / pageSize, pages: pages}
			cursor += (pages) * pageSize
		}
		cols[spec.name] = m
		tableRange[spec.name] = colRange{start: tblStart, pages: cursor/pageSize - tblStart}
	}

	rng := sim.NewRand(seed)
	gb := float64(sc.TotalBytes) / float64(1<<30)
	var trace []int64
	for _, q := range specs {
		for _, ph := range q.Phases {
			cr, ok := cols[ph.Table][ph.Column]
			if ph.TableWide {
				cr, ok = tableRange[ph.Table]
			}
			if !ok {
				continue
			}
			switch ph.Kind {
			case Scan:
				frac := ph.Fraction
				if frac <= 0 || frac > 1 {
					frac = 1
				}
				passes := ph.Passes
				if passes < 1 {
					passes = 1
				}
				n := int64(float64(cr.pages) * frac)
				for p := 0; p < passes; p++ {
					for i := int64(0); i < n; i++ {
						trace = append(trace, cr.start+i)
					}
				}
			case ProbePhase:
				probes := int(float64(ph.ProbesPerGB) * gb)
				if probes < 32 {
					probes = 32
				}
				if opts.ProbeMultiplier > 1 {
					probes *= opts.ProbeMultiplier
				}
				hotPages := int64(float64(cr.pages) * opts.HotSetFraction)
				if hotPages < 1 {
					hotPages = 1
				}
				for i := 0; i < probes; i++ {
					if opts.HotFraction > 0 && rng.Float64() < opts.HotFraction {
						trace = append(trace, cr.start+rng.Int63n(hotPages))
					} else {
						trace = append(trace, cr.start+rng.Int63n(cr.pages))
					}
				}
			}
		}
	}
	return trace
}

// DatasetPages returns how many 4 KB pages the scaled dataset occupies
// (matching PageTrace's layout).
func DatasetPages(sc Scale) int64 {
	const pageSize = 4096
	var cursor int64
	for _, spec := range tableShare {
		bytes := int64(float64(sc.TotalBytes) * spec.share)
		rows := bytes / int64(len(spec.cols)) / 8
		if rows < 16 {
			rows = 16
		}
		for range spec.cols {
			colBytes := rows * 8
			cursor += (colBytes + pageSize - 1) / pageSize
		}
	}
	return cursor
}
