package tpch

import (
	"testing"

	"nvdimmc/internal/imdb"
	"nvdimmc/internal/sim"
)

type flatDev struct{ b []byte }

func (d *flatDev) Load(off int64, buf []byte, done func()) {
	copy(buf, d.b[off:])
	if done != nil {
		done()
	}
}
func (d *flatDev) Store(off int64, data []byte, done func()) {
	copy(d.b[off:], data)
	if done != nil {
		done()
	}
}

func TestSpecsCoverAll22(t *testing.T) {
	specs := Specs()
	if len(specs) != 22 {
		t.Fatalf("specs = %d, want 22", len(specs))
	}
	for i, q := range specs {
		if q.ID != i+1 {
			t.Fatalf("spec %d has ID %d", i, q.ID)
		}
		if len(q.Phases) == 0 {
			t.Fatalf("%s has no phases", q.Name())
		}
	}
	// Q1 is the pure-scan anchor, Q20 the probe storm.
	for _, ph := range specs[0].Phases {
		if ph.Kind != Scan {
			t.Fatal("Q1 must be scan-only")
		}
	}
	for _, ph := range specs[19].Phases {
		if ph.Kind != ProbePhase {
			t.Fatal("Q20 must be probe-only")
		}
	}
}

func TestSpecsReferenceRealColumns(t *testing.T) {
	// Every phase must name a table/column BuildDataset materializes.
	k := sim.NewKernel()
	dev := &flatDev{b: make([]byte, 64<<20)}
	db := imdb.New(dev, k, 64<<20, imdb.DefaultCost())
	built := false
	BuildDataset(db, Scale{TotalBytes: 16 << 20}, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		built = true
	})
	k.Run()
	if !built {
		t.Fatal("build did not finish")
	}
	for _, q := range Specs() {
		for _, ph := range q.Phases {
			tbl := db.Table(ph.Table)
			if tbl == nil {
				t.Fatalf("%s references missing table %q", q.Name(), ph.Table)
			}
			if !ph.TableWide && tbl.Column(ph.Column) == nil {
				t.Fatalf("%s references missing column %s.%s", q.Name(), ph.Table, ph.Column)
			}
		}
	}
}

func TestRunQueryCompletes(t *testing.T) {
	k := sim.NewKernel()
	dev := &flatDev{b: make([]byte, 64<<20)}
	db := imdb.New(dev, k, 64<<20, imdb.DefaultCost())
	BuildDataset(db, Scale{TotalBytes: 8 << 20}, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	k.Run()
	for _, q := range []QuerySpec{Specs()[0], Specs()[19]} {
		var el sim.Duration
		done := false
		RunQuery(db, k, q, 8<<20, func(e sim.Duration, err error) {
			if err != nil {
				t.Fatalf("%s: %v", q.Name(), err)
			}
			el, done = e, true
		})
		k.Run()
		if !done || el <= 0 {
			t.Fatalf("%s did not complete (elapsed %v)", q.Name(), el)
		}
	}
}

func TestPageTraceWithinDataset(t *testing.T) {
	sc := Scale{TotalBytes: 8 << 20}
	total := DatasetPages(sc)
	for _, opts := range []TraceOptions{TimingTrace(), BufferTrace()} {
		trace := PageTrace(Specs(), sc, 1, opts)
		if len(trace) == 0 {
			t.Fatal("empty trace")
		}
		for _, p := range trace {
			if p < 0 || p >= total {
				t.Fatalf("page %d outside dataset (%d pages)", p, total)
			}
		}
	}
}

func TestBufferTraceAmplifies(t *testing.T) {
	sc := Scale{TotalBytes: 8 << 20}
	timing := PageTrace(Specs(), sc, 1, TimingTrace())
	buffer := PageTrace(Specs(), sc, 1, BufferTrace())
	if len(buffer) <= len(timing) {
		t.Fatalf("buffer trace (%d) not larger than timing trace (%d)", len(buffer), len(timing))
	}
}

func TestTraceDeterministic(t *testing.T) {
	sc := Scale{TotalBytes: 4 << 20}
	a := PageTrace(Specs(), sc, 7, BufferTrace())
	b := PageTrace(Specs(), sc, 7, BufferTrace())
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

func TestDatasetScalesWithTotal(t *testing.T) {
	small := DatasetPages(Scale{TotalBytes: 4 << 20})
	big := DatasetPages(Scale{TotalBytes: 16 << 20})
	if big <= small {
		t.Fatal("dataset pages not scaling")
	}
}
