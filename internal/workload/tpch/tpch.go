// Package tpch provides a scaled TPC-H-like dataset and access-pattern
// models for the 22 queries the paper runs on SAP HANA (Fig. 11). Each query
// is described by the mix of operator phases its plan exercises — sequential
// column scans vs. point probes — with weights drawn from the published I/O
// characterizations of TPC-H (Q1: pure lineitem scan; Q20: nested-exists
// plan issuing many small accesses, per the paper's reference [30]). The
// phases execute on the imdb engine, so absolute times come from the
// simulated memory system; what this package fixes is only *where* each
// query reads.
package tpch

import (
	"fmt"

	"nvdimmc/internal/imdb"
	"nvdimmc/internal/sim"
)

// Scale sizes the dataset. The paper uses SF100 (~100 GB) against a 16 GB
// cache; scaled runs preserve dataset:cache ≈ 6.25 by choosing TotalBytes
// relative to the system's cache size.
type Scale struct {
	// TotalBytes is the approximate materialized dataset size.
	TotalBytes int64
}

// Table share of the dataset, approximating TPC-H's row-count proportions.
var tableShare = []struct {
	name  string
	share float64 // of TotalBytes
	cols  []string
}{
	{"lineitem", 0.55, []string{"quantity", "extendedprice", "discount", "shipdate"}},
	{"orders", 0.18, []string{"orderdate", "totalprice", "custkey"}},
	{"partsupp", 0.12, []string{"availqty", "supplycost", "partkey"}},
	{"part", 0.06, []string{"size", "retailprice"}},
	{"customer", 0.06, []string{"acctbal", "nationkey"}},
	{"supplier", 0.03, []string{"sacctbal", "snationkey"}},
}

// BuildDataset materializes the scaled tables on the database. done receives
// the first error, if any.
func BuildDataset(db *imdb.DB, sc Scale, done func(error)) {
	i := 0
	var step func()
	step = func() {
		if i >= len(tableShare) {
			done(nil)
			return
		}
		spec := tableShare[i]
		i++
		bytes := int64(float64(sc.TotalBytes) * spec.share)
		rows := bytes / int64(len(spec.cols)) / 8
		if rows < 16 {
			rows = 16
		}
		db.CreateTable(spec.name, rows, spec.cols, func(row int64, col int) int64 {
			return row*31 + int64(col)*7 + 1
		}, func(_ *imdb.Table, err error) {
			if err != nil {
				done(err)
				return
			}
			step()
		})
	}
	step()
}

// PhaseKind is an operator class.
type PhaseKind int

// Operator classes.
const (
	Scan PhaseKind = iota
	ProbePhase
)

// Phase is one operator phase of a query plan.
type Phase struct {
	Kind     PhaseKind
	Table    string
	Column   string
	Fraction float64 // Scan: fraction of the column read
	Passes   int     // Scan: passes over the range
	// Probes: point accesses per GB-equivalent of dataset; the runner
	// scales it with the dataset so slowdowns are scale-invariant.
	ProbesPerGB int
	ProbeBytes  int
	// TableWide spreads probes across the whole table footprint instead of
	// one column (row-wise access over interleaved column fragments).
	TableWide bool
}

// QuerySpec is one TPC-H query's access model.
type QuerySpec struct {
	ID     int
	Phases []Phase
}

// Name returns the TPC-H query name ("Q1".."Q22").
func (q QuerySpec) Name() string { return fmt.Sprintf("Q%d", q.ID) }

// Specs returns the 22 query models. Scan/probe mixes follow each query's
// dominant plan shape: scan-dominated pricing/aggregate queries (1, 6),
// join-heavy queries mixing scans with probes, and the small-access-heavy
// nested plans (17, 20, 21, 22).
func Specs() []QuerySpec {
	scan := func(tbl, col string, frac float64, passes int) Phase {
		return Phase{Kind: Scan, Table: tbl, Column: col, Fraction: frac, Passes: passes}
	}
	probe := func(tbl, col string, perGB, bytes int) Phase {
		return Phase{Kind: ProbePhase, Table: tbl, Column: col, ProbesPerGB: perGB, ProbeBytes: bytes}
	}
	wideProbe := func(tbl string, perGB, bytes int) Phase {
		return Phase{Kind: ProbePhase, Table: tbl, Column: "", ProbesPerGB: perGB, ProbeBytes: bytes, TableWide: true}
	}
	return []QuerySpec{
		{1, []Phase{scan("lineitem", "quantity", 1, 1), scan("lineitem", "extendedprice", 1, 1), scan("lineitem", "discount", 1, 1)}},
		{2, []Phase{scan("partsupp", "supplycost", 1, 1), probe("part", "size", 30000, 128), probe("supplier", "sacctbal", 20000, 128)}},
		{3, []Phase{scan("lineitem", "extendedprice", 0.6, 1), scan("orders", "orderdate", 1, 1), probe("customer", "acctbal", 15000, 256)}},
		{4, []Phase{scan("orders", "orderdate", 1, 1), probe("lineitem", "shipdate", 60000, 128)}},
		{5, []Phase{scan("lineitem", "extendedprice", 0.7, 1), scan("orders", "custkey", 1, 1), probe("customer", "nationkey", 25000, 128)}},
		{6, []Phase{scan("lineitem", "extendedprice", 1, 1), scan("lineitem", "discount", 1, 1)}},
		{7, []Phase{scan("lineitem", "extendedprice", 0.8, 1), probe("orders", "custkey", 40000, 128), probe("supplier", "snationkey", 10000, 128)}},
		{8, []Phase{scan("lineitem", "extendedprice", 0.5, 1), probe("part", "size", 50000, 128), probe("orders", "orderdate", 30000, 128)}},
		{9, []Phase{scan("lineitem", "extendedprice", 1, 1), probe("part", "retailprice", 60000, 128), probe("partsupp", "supplycost", 40000, 128)}},
		{10, []Phase{scan("lineitem", "extendedprice", 0.4, 1), scan("orders", "orderdate", 1, 1), probe("customer", "acctbal", 30000, 256)}},
		{11, []Phase{scan("partsupp", "availqty", 1, 2), probe("supplier", "snationkey", 15000, 128)}},
		{12, []Phase{scan("lineitem", "shipdate", 1, 1), probe("orders", "orderdate", 35000, 128)}},
		{13, []Phase{scan("orders", "custkey", 1, 2), probe("customer", "acctbal", 45000, 256)}},
		{14, []Phase{scan("lineitem", "extendedprice", 0.3, 1), probe("part", "retailprice", 40000, 128)}},
		{15, []Phase{scan("lineitem", "extendedprice", 0.5, 2), probe("supplier", "sacctbal", 8000, 128)}},
		{16, []Phase{scan("partsupp", "partkey", 1, 1), probe("part", "size", 70000, 128)}},
		{17, []Phase{scan("part", "size", 1, 1), wideProbe("lineitem", 150000, 128)}},
		{18, []Phase{scan("orders", "totalprice", 1, 1), wideProbe("lineitem", 90000, 256)}},
		{19, []Phase{scan("lineitem", "extendedprice", 0.4, 1), probe("part", "retailprice", 60000, 128)}},
		{20, []Phase{wideProbe("partsupp", 120000, 128), wideProbe("lineitem", 250000, 128)}},
		{21, []Phase{scan("supplier", "snationkey", 1, 1), wideProbe("lineitem", 180000, 128), probe("orders", "orderdate", 60000, 128)}},
		{22, []Phase{scan("customer", "acctbal", 1, 2), wideProbe("orders", 100000, 128)}},
	}
}

// RunQuery executes the spec on the database; done receives the simulated
// execution time once every phase completes. Phases run sequentially, as the
// single-stream TPC-H power run does.
func RunQuery(db *imdb.DB, k Kernel, spec QuerySpec, datasetBytes int64, done func(elapsed sim.Duration, err error)) {
	start := k.Now()
	rng := sim.NewRand(uint64(spec.ID)*0x9E3779B9 + 7)
	gb := float64(datasetBytes) / float64(1<<30)
	i := 0
	var step func()
	step = func() {
		if i >= len(spec.Phases) {
			done(k.Now().Sub(start), nil)
			return
		}
		ph := spec.Phases[i]
		i++
		switch ph.Kind {
		case Scan:
			db.ScanAgg(ph.Table, ph.Column, ph.Fraction, ph.Passes, func(_ int64, err error) {
				if err != nil {
					done(0, err)
					return
				}
				step()
			})
		case ProbePhase:
			probes := int(float64(ph.ProbesPerGB) * gb)
			if probes < 32 {
				probes = 32
			}
			next := func(_ byte, err error) {
				if err != nil {
					done(0, err)
					return
				}
				step()
			}
			if ph.TableWide {
				db.ProbeTable(ph.Table, probes, ph.ProbeBytes, rng, next)
			} else {
				db.Probe(ph.Table, ph.Column, probes, ph.ProbeBytes, rng, next)
			}
		}
	}
	step()
}

// Kernel is the clock/scheduler interface RunQuery needs.
type Kernel interface {
	Now() sim.Time
	Schedule(d sim.Duration, fn func())
}
