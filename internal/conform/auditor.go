// Package conform is the protocol-conformance layer: an always-on invariant
// auditor that subscribes to the trace event stream and checks, event by
// event, the safety rules the paper states in prose — the software
// equivalent of the always-on assertion layers METICULOUS and EasyDRAM ship
// with their FPGA timing emulators. The auditor is pure observation: it
// holds no pointers into the system, costs no per-event formatting, and
// never mutates what it watches, so it can stay attached in every
// experiment and test run.
//
// Audited invariants (see DESIGN.md §8 for the full citation table):
//
//	time          simulated time is monotonic across the event stream
//	exclusivity   NVMC touches the shared DRAM only inside the extra-tRFC
//	              window; host bursts and commands stay out of it (§III-B)
//	prea-ref      every REF is immediately preceded by PREA with all banks
//	              closed, at the head of a bus hold (§III-B, JEDEC)
//	trefi         consecutive REFs are never further apart than the JEDEC
//	              postponement budget allows, except in self-refresh (§II-B)
//	window        window geometry matches the programmed timings:
//	              [REF+tRFC(standard), REF+tRFC(programmed)-guard) (§IV-A),
//	              and data per window respects the budget (§VII-C)
//	cp            CP commands and acks strictly alternate per slot with
//	              matching phase — no lost or duplicated acks (§IV-C)
//	detector      every refresh detection corresponds to a REF that was
//	              actually on the bus, within the RTL's latency bound (§IV-A)
package conform

import (
	"fmt"

	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/trace"
)

// Params fixes the timing contract the auditor checks against. Zero fields
// disable the corresponding checks (e.g. TREFI=0 disables the refresh-gap
// budget), so partial wiring stays usable in unit tests.
type Params struct {
	// TCK is the channel clock period (detector latency bound).
	TCK sim.Duration
	// TREFI is the programmed average refresh interval.
	TREFI sim.Duration
	// TRFC is the programmed (extended) refresh cycle time.
	TRFC sim.Duration
	// StandardTRFC is the DRAM's internal refresh duration; the window
	// opens when it ends.
	StandardTRFC sim.Duration
	// WindowGuard is the margin the NVMC keeps at the window end.
	WindowGuard sim.Duration
	// MaxBytesPerWindow bounds NVMC data moved per window (0 = unchecked).
	MaxBytesPerWindow int
	// MaxPostponed is how many refreshes JEDEC lets the iMC postpone
	// (default 8): the retention proxy allows (MaxPostponed+1)*TREFI
	// between REFs.
	MaxPostponed int
	// Banks is the number of banks tracked for the all-banks-closed rule.
	Banks int
	// Limit caps retained violations (the count is never capped).
	Limit int
}

// Violation is one observed protocol breach.
type Violation struct {
	At   sim.Time
	Rule string // stable rule identifier (see package comment)
	Desc string
}

func (v Violation) String() string {
	return fmt.Sprintf("%v [%s] %s", v.At, v.Rule, v.Desc)
}

type window struct {
	at, end sim.Time
	refAt   sim.Time
	bytes   int
	valid   bool
}

type hold struct {
	at, end sim.Time
	valid   bool
}

type cpSlot struct {
	open  bool // command accepted, ack outstanding
	phase bool
}

// Auditor is a trace.Sink that checks the protocol invariants. Create with
// New and attach to the system's trace Recorder.
type Auditor struct {
	p Params

	events     uint64
	violations []Violation
	count      uint64

	lastAt sim.Time

	// Refresh-cadence state.
	lastRefAt   sim.Time
	seenRef     bool
	selfRefresh bool

	// PREA-before-REF state.
	lastCmdKind  ddr4.CommandKind
	lastCmdAt    sim.Time
	lastCmdValid bool
	bankOpen     []bool

	// Bus-occupancy state.
	curWindow   window
	curHold     hold
	lastHostEnd sim.Time

	// CP mailbox state.
	slots map[int]*cpSlot

	// Drop bookkeeping: injected ack drops observed (not violations — the
	// driver's deadline/re-issue protocol recovers them; the fuzzer and
	// CheckHealth can still cross-check the count against fault stats).
	DroppedAcks uint64
}

// New returns an auditor for the given timing contract.
func New(p Params) *Auditor {
	if p.MaxPostponed <= 0 {
		p.MaxPostponed = 8
	}
	if p.Limit <= 0 {
		p.Limit = 64
	}
	if p.Banks <= 0 {
		p.Banks = 16
	}
	return &Auditor{
		p:        p,
		bankOpen: make([]bool, p.Banks),
		slots:    make(map[int]*cpSlot),
	}
}

// Events reports how many events the auditor has checked.
func (a *Auditor) Events() uint64 { return a.events }

// ViolationCount reports all violations observed (beyond the retained cap).
func (a *Auditor) ViolationCount() uint64 { return a.count }

// Violations returns the retained violations (up to Params.Limit).
func (a *Auditor) Violations() []Violation { return a.violations }

// Err returns nil if no violation was observed, else an error naming the
// first one and the total count.
func (a *Auditor) Err() error {
	if a.count == 0 {
		return nil
	}
	return fmt.Errorf("conform: %d protocol violation(s); first: %v",
		a.count, a.violations[0])
}

// WarpIdleRefreshCycles advances the auditor over m clean idle refresh
// cycles, the last REF landing at rLast, each cycle carrying polls stale CP
// polls in its window. The event stream such a cycle produces — refresh
// hold, PREA, REF, detection, window, polls×NVMC data — is replayed as pure
// state updates with zero violations; the caller (the idle-warp scheduler)
// owns the proof that each cycle was protocol-clean, which holds exactly
// when the member was quiescent: the gap between warped REFs is one tREFI
// (within any postponement budget), PREA precedes REF with all banks
// already closed, the window geometry is the programmed one, and stale
// polls move only sub-page control bytes.
func (a *Auditor) WarpIdleRefreshCycles(m uint64, rLast sim.Time, polls int) {
	if m == 0 {
		return
	}
	a.events += m * uint64(5+polls)
	a.lastAt = rLast.Add(a.p.StandardTRFC)
	a.lastRefAt = rLast
	a.seenRef = true
	a.lastCmdKind = ddr4.CmdRefresh
	a.lastCmdAt = rLast
	a.lastCmdValid = true
	for i := range a.bankOpen {
		a.bankOpen[i] = false
	}
	a.curHold = hold{at: rLast, end: rLast.Add(a.p.TRFC), valid: true}
	a.curWindow = window{
		at:    rLast.Add(a.p.StandardTRFC),
		end:   rLast.Add(a.p.TRFC).Add(-a.p.WindowGuard),
		refAt: rLast,
		valid: true,
	}
}

func (a *Auditor) violate(at sim.Time, rule, format string, args ...interface{}) {
	a.count++
	if len(a.violations) < a.p.Limit {
		a.violations = append(a.violations, Violation{
			At: at, Rule: rule, Desc: fmt.Sprintf(format, args...),
		})
	}
}

func (a *Auditor) inHold(t sim.Time) bool {
	return a.curHold.valid && t >= a.curHold.at && t < a.curHold.end
}

func (a *Auditor) inWindow(t sim.Time) bool {
	return a.curWindow.valid && t >= a.curWindow.at && t < a.curWindow.end
}

// Record implements trace.Sink.
func (a *Auditor) Record(e trace.Event) {
	a.events++
	if e.At < a.lastAt {
		a.violate(e.At, "time", "event %v at %v precedes previous event at %v",
			e.Kind, e.At, a.lastAt)
	}
	a.lastAt = e.At

	switch e.Kind {
	case trace.KindCommand, trace.KindRefresh:
		a.command(e)
	case trace.KindRefreshHold:
		a.refreshHold(e)
	case trace.KindRefDetect:
		a.refDetect(e)
	case trace.KindWindow:
		a.window(e)
	case trace.KindNVMCData:
		a.nvmcData(e)
	case trace.KindHostData:
		a.hostData(e)
	case trace.KindCPCommand:
		a.cpCommand(e)
	case trace.KindCPAck:
		a.cpAck(e)
	}
}

// quietKinds may appear on the CA bus during a refresh hold: the hold's own
// PREA+REF pair, self-refresh transitions, and no-ops.
func quietKind(k ddr4.CommandKind) bool {
	switch k {
	case ddr4.CmdDeselect, ddr4.CmdNOP, ddr4.CmdPrechargeAll,
		ddr4.CmdRefresh, ddr4.CmdSelfRefreshEntry, ddr4.CmdSelfRefreshExit:
		return true
	}
	return false
}

func (a *Auditor) command(e trace.Event) {
	cmd := e.Cmd

	// Exclusivity, NVMC side: any real NVMC command outside the window is
	// a latent conflict — the iMC issues commands unpredictably (§III-B).
	if e.Master == trace.MasterNVMC &&
		cmd.Kind != ddr4.CmdDeselect && cmd.Kind != ddr4.CmdNOP && !a.inWindow(e.At) {
		a.violate(e.At, "exclusivity", "NVMC command %v outside the extra-tRFC window", cmd)
	}
	// Exclusivity, host side: during a refresh hold the host may only
	// produce the hold's own PREA+REF (or SRE/SRX when transitioning).
	if e.Master == trace.MasterHost && a.inHold(e.At) && !quietKind(cmd.Kind) {
		a.violate(e.At, "exclusivity", "host command %v inside the refresh hold", cmd)
	}

	// Bank open/close tracking for the all-banks-precharged rule.
	switch cmd.Kind {
	case ddr4.CmdActivate:
		if cmd.Bank >= 0 && cmd.Bank < len(a.bankOpen) {
			a.bankOpen[cmd.Bank] = true
		}
	case ddr4.CmdRead, ddr4.CmdWrite:
		if cmd.AutoPrecharge && cmd.Bank >= 0 && cmd.Bank < len(a.bankOpen) {
			a.bankOpen[cmd.Bank] = false
		}
	case ddr4.CmdPrecharge:
		if cmd.Bank >= 0 && cmd.Bank < len(a.bankOpen) {
			a.bankOpen[cmd.Bank] = false
		}
	case ddr4.CmdPrechargeAll:
		for i := range a.bankOpen {
			a.bankOpen[i] = false
		}
	case ddr4.CmdRefresh:
		// PREA-before-REF: the iMC precharges all banks immediately before
		// REF (§III-B); DDR4 has no per-bank refresh.
		if !a.lastCmdValid || a.lastCmdKind != ddr4.CmdPrechargeAll || a.lastCmdAt != e.At {
			a.violate(e.At, "prea-ref", "REF not immediately preceded by PREA")
		}
		for b, open := range a.bankOpen {
			if open {
				a.violate(e.At, "prea-ref", "REF with bank %d open", b)
			}
		}
		// REF belongs at the head of a refresh hold.
		if !a.curHold.valid || a.curHold.at != e.At {
			a.violate(e.At, "prea-ref", "REF outside a refresh-hold head (hold at %v)", a.curHold.at)
		}
		// tREFI budget: the retention proxy. JEDEC allows postponing up to
		// MaxPostponed refreshes, so the worst legal gap is (n+1)*tREFI.
		if a.seenRef && !a.selfRefresh && a.p.TREFI > 0 {
			budget := sim.Duration(a.p.MaxPostponed+1) * a.p.TREFI
			if gap := e.At.Sub(a.lastRefAt); gap > budget {
				a.violate(e.At, "trefi", "refresh gap %v exceeds budget %v", gap, budget)
			}
		}
		a.lastRefAt = e.At
		a.seenRef = true
	case ddr4.CmdSelfRefreshEntry:
		for b, open := range a.bankOpen {
			if open {
				a.violate(e.At, "prea-ref", "SRE with bank %d open", b)
			}
		}
		a.selfRefresh = true
	case ddr4.CmdSelfRefreshExit:
		// The DIMM refreshed itself while in self-refresh: restart the
		// cadence clock from the exit.
		a.selfRefresh = false
		a.lastRefAt = e.At
	}

	a.lastCmdKind = cmd.Kind
	a.lastCmdAt = e.At
	a.lastCmdValid = true
}

func (a *Auditor) refreshHold(e trace.Event) {
	if a.lastHostEnd > e.At {
		a.violate(e.At, "exclusivity", "host burst (until %v) still in flight at refresh-hold start", a.lastHostEnd)
	}
	a.curHold = hold{at: e.At, end: e.End, valid: true}
}

func (a *Auditor) refDetect(e trace.Event) {
	// Detector truthfulness: the claimed REF time must be the REF most
	// recently on the bus. A false positive (detection with no matching
	// REF) is the system-fatal failure mode of §IV-A.
	if !a.seenRef || e.RefAt != a.lastRefAt {
		a.violate(e.At, "detector", "detection claims REF@%v but last REF was %v", e.RefAt, a.lastRefAt)
	}
	// RTL latency bound: one deserializer frame plus the decode pipeline.
	if a.p.TCK > 0 {
		bound := sim.Duration(10) * a.p.TCK // 8 frame bits + 2 pipeline clocks
		if lat := e.At.Sub(e.RefAt); lat < 0 || lat > bound {
			a.violate(e.At, "detector", "detection latency %v outside (0, %v]", lat, bound)
		}
	}
}

func (a *Auditor) window(e trace.Event) {
	w := window{at: e.At, end: e.End, refAt: e.RefAt, valid: true}
	if !a.seenRef || w.refAt != a.lastRefAt {
		a.violate(e.At, "window", "window for REF@%v but last REF was %v", w.refAt, a.lastRefAt)
	}
	if a.p.StandardTRFC > 0 && w.at != w.refAt.Add(a.p.StandardTRFC) {
		a.violate(e.At, "window", "window opens at %v, want REF+standard tRFC = %v",
			w.at, w.refAt.Add(a.p.StandardTRFC))
	}
	if a.p.TRFC > 0 {
		wantEnd := w.refAt.Add(a.p.TRFC).Add(-a.p.WindowGuard)
		if w.end != wantEnd {
			a.violate(e.At, "window", "window closes at %v, want REF+tRFC-guard = %v", w.end, wantEnd)
		}
	}
	if a.curHold.valid && (w.at < a.curHold.at || w.end > a.curHold.end) {
		a.violate(e.At, "window", "window [%v,%v) escapes the refresh hold [%v,%v)",
			w.at, w.end, a.curHold.at, a.curHold.end)
	}
	a.curWindow = w
}

func (a *Auditor) nvmcData(e trace.Event) {
	if !a.inWindow(e.At) {
		a.violate(e.At, "exclusivity", "NVMC data transfer (%dB @%#x) outside the extra-tRFC window",
			e.Bytes, e.Addr)
		return
	}
	// Budget accounting counts page-sized data; 64 B-class CP control
	// reads/writes ride along for free (§VII-C item 3).
	if a.p.MaxBytesPerWindow > 0 && e.Bytes >= 4096 {
		a.curWindow.bytes += e.Bytes
		if a.curWindow.bytes > a.p.MaxBytesPerWindow {
			a.violate(e.At, "window", "window moved %dB of data, budget %dB",
				a.curWindow.bytes, a.p.MaxBytesPerWindow)
		}
	}
}

func (a *Auditor) hostData(e trace.Event) {
	if a.inWindow(e.At) {
		a.violate(e.At, "exclusivity", "host burst (%dB @%#x) inside the extra-tRFC window",
			e.Bytes, e.Addr)
	}
	if a.inHold(e.At) {
		a.violate(e.At, "exclusivity", "host burst (%dB @%#x) inside the refresh hold",
			e.Bytes, e.Addr)
	}
	if e.End > a.lastHostEnd {
		a.lastHostEnd = e.End
	}
}

func (a *Auditor) slot(i int) *cpSlot {
	s, ok := a.slots[i]
	if !ok {
		s = &cpSlot{}
		a.slots[i] = s
	}
	return s
}

func (a *Auditor) cpCommand(e trace.Event) {
	if !a.inWindow(e.At) {
		a.violate(e.At, "exclusivity", "CP command poll for slot %d outside the window", e.Slot)
	}
	s := a.slot(e.Slot)
	if s.open {
		a.violate(e.At, "cp", "slot %d accepted a command with an ack still outstanding", e.Slot)
	}
	s.open = true
	s.phase = e.Word&1 != 0
}

func (a *Auditor) cpAck(e trace.Event) {
	if !a.inWindow(e.At) {
		a.violate(e.At, "exclusivity", "CP ack for slot %d outside the window", e.Slot)
	}
	s := a.slot(e.Slot)
	if !s.open {
		a.violate(e.At, "cp", "slot %d acked with no command outstanding (duplicated ack)", e.Slot)
	}
	if ackPhase := e.Word&1 != 0; ackPhase != s.phase {
		a.violate(e.At, "cp", "slot %d ack phase %v does not match command phase %v",
			e.Slot, ackPhase, s.phase)
	}
	s.open = false
	if e.Dropped {
		a.DroppedAcks++
	}
}
