package conform

import (
	"strings"
	"testing"

	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/trace"
)

// testParams is a compact timing contract: 1 ns clock, 7.8 us tREFI,
// 1.25 us tRFC over a 350 ns internal refresh with a 50 ns guard.
func testParams() Params {
	return Params{
		TCK:               1 * sim.Nanosecond,
		TREFI:             7800 * sim.Nanosecond,
		TRFC:              1250 * sim.Nanosecond,
		StandardTRFC:      350 * sim.Nanosecond,
		WindowGuard:       50 * sim.Nanosecond,
		MaxBytesPerWindow: 8192,
		Banks:             4,
	}
}

func cmd(at sim.Time, m int, k ddr4.CommandKind) trace.Event {
	kind := trace.KindCommand
	if k == ddr4.CmdRefresh {
		kind = trace.KindRefresh
	}
	return trace.Event{At: at, Kind: kind, Master: m, Cmd: ddr4.Command{Kind: k}}
}

// refCycle is one legal refresh sequence at ref time t: hold, PREA+REF
// back-to-back at the grant instant, detection 5 clocks later, window with
// the exact programmed geometry.
func refCycle(p Params, t sim.Time) []trace.Event {
	return []trace.Event{
		{At: t, Kind: trace.KindRefreshHold, End: t.Add(p.TRFC)},
		cmd(t, trace.MasterHost, ddr4.CmdPrechargeAll),
		cmd(t, trace.MasterHost, ddr4.CmdRefresh),
		{At: t.Add(5 * sim.Nanosecond), Kind: trace.KindRefDetect, RefAt: t},
		{At: t.Add(p.StandardTRFC), Kind: trace.KindWindow,
			End: t.Add(p.TRFC).Add(-p.WindowGuard), RefAt: t},
	}
}

func inWin(p Params, t sim.Time) sim.Time { return t.Add(p.StandardTRFC + 100*sim.Nanosecond) }

func TestAuditorRules(t *testing.T) {
	p := testParams()
	t0 := sim.Time(0).Add(1000 * sim.Nanosecond)
	for _, tc := range []struct {
		name   string
		rule   string // "" = must be clean
		events func() []trace.Event
	}{
		{"clean-cycle", "", func() []trace.Event {
			evs := refCycle(p, t0)
			evs = append(evs,
				trace.Event{At: inWin(p, t0), Kind: trace.KindNVMCData, Read: true, Addr: 0x1000, Bytes: 4096},
				trace.Event{At: inWin(p, t0), Kind: trace.KindCPCommand, Slot: 0, Word: 1},
				trace.Event{At: inWin(p, t0).Add(10 * sim.Nanosecond), Kind: trace.KindCPAck, Slot: 0, Word: 1},
				// Host burst after the hold ends is fine.
				trace.Event{At: t0.Add(p.TRFC), Kind: trace.KindHostData, Addr: 0, Bytes: 64,
					End: t0.Add(p.TRFC + 10*sim.Nanosecond)},
			)
			return evs
		}},
		{"non-monotonic-time", "time", func() []trace.Event {
			return []trace.Event{
				cmd(t0, trace.MasterHost, ddr4.CmdNOP),
				cmd(t0.Add(-sim.Nanosecond), trace.MasterHost, ddr4.CmdNOP),
			}
		}},
		{"ref-without-prea", "prea-ref", func() []trace.Event {
			return []trace.Event{
				{At: t0, Kind: trace.KindRefreshHold, End: t0.Add(p.TRFC)},
				cmd(t0, trace.MasterHost, ddr4.CmdRefresh),
			}
		}},
		{"prea-not-back-to-back", "prea-ref", func() []trace.Event {
			return []trace.Event{
				{At: t0, Kind: trace.KindRefreshHold, End: t0.Add(p.TRFC)},
				cmd(t0.Add(-20*sim.Nanosecond), trace.MasterHost, ddr4.CmdPrechargeAll),
				cmd(t0, trace.MasterHost, ddr4.CmdRefresh),
			}
		}},
		{"ref-outside-hold", "prea-ref", func() []trace.Event {
			return []trace.Event{
				cmd(t0, trace.MasterHost, ddr4.CmdPrechargeAll),
				cmd(t0, trace.MasterHost, ddr4.CmdRefresh),
			}
		}},
		{"trefi-budget-blown", "trefi", func() []trace.Event {
			evs := refCycle(p, t0)
			// Next REF 10*tREFI later: one past the 8-postponement budget.
			return append(evs, refCycle(p, t0.Add(10*p.TREFI))...)
		}},
		{"trefi-suspended-in-self-refresh", "", func() []trace.Event {
			evs := refCycle(p, t0)
			evs = append(evs, cmd(t0.Add(p.TRFC), trace.MasterHost, ddr4.CmdSelfRefreshEntry))
			wake := t0.Add(20 * p.TREFI) // far past the budget: legal, DIMM self-refreshes
			evs = append(evs, cmd(wake, trace.MasterHost, ddr4.CmdSelfRefreshExit))
			return append(evs, refCycle(p, wake.Add(p.TREFI))...)
		}},
		{"nvmc-cmd-outside-window", "exclusivity", func() []trace.Event {
			return []trace.Event{cmd(t0, trace.MasterNVMC, ddr4.CmdActivate)}
		}},
		{"nvmc-data-outside-window", "exclusivity", func() []trace.Event {
			return []trace.Event{{At: t0, Kind: trace.KindNVMCData, Addr: 0x40, Bytes: 4096}}
		}},
		{"host-cmd-inside-hold", "exclusivity", func() []trace.Event {
			return []trace.Event{
				{At: t0, Kind: trace.KindRefreshHold, End: t0.Add(p.TRFC)},
				cmd(t0.Add(10*sim.Nanosecond), trace.MasterHost, ddr4.CmdActivate),
			}
		}},
		{"host-burst-inside-window", "exclusivity", func() []trace.Event {
			evs := refCycle(p, t0)
			return append(evs, trace.Event{At: inWin(p, t0), Kind: trace.KindHostData,
				Addr: 0, Bytes: 64, End: inWin(p, t0).Add(10 * sim.Nanosecond)})
		}},
		{"host-burst-overlaps-hold-start", "exclusivity", func() []trace.Event {
			return []trace.Event{
				{At: t0, Kind: trace.KindHostData, Addr: 0, Bytes: 64, End: t0.Add(100 * sim.Nanosecond)},
				{At: t0.Add(50 * sim.Nanosecond), Kind: trace.KindRefreshHold,
					End: t0.Add(50 * sim.Nanosecond).Add(p.TRFC)},
			}
		}},
		{"window-wrong-open", "window", func() []trace.Event {
			evs := refCycle(p, t0)[:4] // hold, PREA, REF, detect
			return append(evs, trace.Event{At: t0.Add(p.StandardTRFC - 10*sim.Nanosecond),
				Kind: trace.KindWindow, End: t0.Add(p.TRFC).Add(-p.WindowGuard), RefAt: t0})
		}},
		{"window-wrong-close", "window", func() []trace.Event {
			evs := refCycle(p, t0)[:4]
			return append(evs, trace.Event{At: t0.Add(p.StandardTRFC),
				Kind: trace.KindWindow, End: t0.Add(p.TRFC), RefAt: t0}) // forgot the guard
		}},
		{"window-for-stale-ref", "window", func() []trace.Event {
			evs := refCycle(p, t0)[:4]
			stale := t0.Add(-p.TREFI)
			return append(evs, trace.Event{At: stale.Add(p.StandardTRFC),
				Kind: trace.KindWindow, End: stale.Add(p.TRFC).Add(-p.WindowGuard), RefAt: stale})
		}},
		{"window-byte-budget", "window", func() []trace.Event {
			evs := refCycle(p, t0)
			at := inWin(p, t0)
			return append(evs,
				trace.Event{At: at, Kind: trace.KindNVMCData, Addr: 0, Bytes: 8192},
				trace.Event{At: at.Add(sim.Nanosecond), Kind: trace.KindNVMCData, Addr: 0x2000, Bytes: 4096},
			)
		}},
		{"cp-duplicated-ack", "cp", func() []trace.Event {
			evs := refCycle(p, t0)
			at := inWin(p, t0)
			return append(evs,
				trace.Event{At: at, Kind: trace.KindCPCommand, Slot: 2, Word: 1},
				trace.Event{At: at.Add(sim.Nanosecond), Kind: trace.KindCPAck, Slot: 2, Word: 1},
				trace.Event{At: at.Add(2 * sim.Nanosecond), Kind: trace.KindCPAck, Slot: 2, Word: 1},
			)
		}},
		{"cp-lost-ack", "cp", func() []trace.Event {
			evs := refCycle(p, t0)
			at := inWin(p, t0)
			return append(evs,
				trace.Event{At: at, Kind: trace.KindCPCommand, Slot: 2, Word: 1},
				trace.Event{At: at.Add(sim.Nanosecond), Kind: trace.KindCPCommand, Slot: 2, Word: 0},
			)
		}},
		{"cp-phase-mismatch", "cp", func() []trace.Event {
			evs := refCycle(p, t0)
			at := inWin(p, t0)
			return append(evs,
				trace.Event{At: at, Kind: trace.KindCPCommand, Slot: 2, Word: 1},
				trace.Event{At: at.Add(sim.Nanosecond), Kind: trace.KindCPAck, Slot: 2, Word: 0},
			)
		}},
		{"detector-false-positive", "detector", func() []trace.Event {
			return []trace.Event{{At: t0, Kind: trace.KindRefDetect, RefAt: t0.Add(-5 * sim.Nanosecond)}}
		}},
		{"detector-latency-bound", "detector", func() []trace.Event {
			evs := refCycle(p, t0)[:3] // hold, PREA, REF
			return append(evs, trace.Event{At: t0.Add(20 * sim.Nanosecond),
				Kind: trace.KindRefDetect, RefAt: t0})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := New(p)
			for _, e := range tc.events() {
				a.Record(e)
			}
			if tc.rule == "" {
				if err := a.Err(); err != nil {
					t.Fatalf("clean stream flagged: %v (all: %v)", err, a.Violations())
				}
				return
			}
			if a.ViolationCount() == 0 {
				t.Fatalf("stream not flagged, want rule %q", tc.rule)
			}
			found := false
			for _, v := range a.Violations() {
				if v.Rule == tc.rule {
					found = true
				}
			}
			if !found {
				t.Fatalf("want rule %q, got %v", tc.rule, a.Violations())
			}
		})
	}
}

// TestAuditorDroppedAckTolerated checks an injected ack drop is counted but
// not a violation: the CP deadline/re-issue protocol recovers it.
func TestAuditorDroppedAckTolerated(t *testing.T) {
	p := testParams()
	a := New(p)
	t0 := sim.Time(0).Add(1000 * sim.Nanosecond)
	for _, e := range refCycle(p, t0) {
		a.Record(e)
	}
	at := inWin(p, t0)
	a.Record(trace.Event{At: at, Kind: trace.KindCPCommand, Slot: 1, Word: 1})
	a.Record(trace.Event{At: at.Add(sim.Nanosecond), Kind: trace.KindCPAck, Slot: 1, Word: 1, Dropped: true})
	if err := a.Err(); err != nil {
		t.Fatalf("dropped ack flagged: %v", err)
	}
	if a.DroppedAcks != 1 {
		t.Fatalf("DroppedAcks = %d, want 1", a.DroppedAcks)
	}
}

// TestAuditorErrAndLimit checks the error message shape and that the
// retained list caps at Limit while the count keeps going.
func TestAuditorErrAndLimit(t *testing.T) {
	p := testParams()
	p.Limit = 3
	a := New(p)
	if a.Err() != nil {
		t.Fatal("fresh auditor reports an error")
	}
	for i := 0; i < 10; i++ {
		a.Record(trace.Event{At: sim.Time(i + 1), Kind: trace.KindNVMCData, Bytes: 4096})
	}
	if got := a.ViolationCount(); got != 10 {
		t.Fatalf("ViolationCount = %d, want 10", got)
	}
	if got := len(a.Violations()); got != 3 {
		t.Fatalf("retained %d violations, want Limit=3", got)
	}
	err := a.Err()
	if err == nil || !strings.Contains(err.Error(), "10 protocol violation(s)") ||
		!strings.Contains(err.Error(), "[exclusivity]") {
		t.Fatalf("Err = %v", err)
	}
}

// TestAuditorEvents checks the event counter counts everything, violation
// or not.
func TestAuditorEvents(t *testing.T) {
	p := testParams()
	a := New(p)
	t0 := sim.Time(0).Add(1000 * sim.Nanosecond)
	evs := refCycle(p, t0)
	for _, e := range evs {
		a.Record(e)
	}
	if got := a.Events(); got != uint64(len(evs)) {
		t.Fatalf("Events = %d, want %d", got, len(evs))
	}
}
