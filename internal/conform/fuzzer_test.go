package conform

import (
	"reflect"
	"strings"
	"testing"

	"nvdimmc/internal/fault"
	"nvdimmc/internal/sim"
)

func TestNewPlanDeterministic(t *testing.T) {
	a := NewPlan(0xBEEF, 100, 64, true)
	b := NewPlan(0xBEEF, 100, 64, true)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := NewPlan(0xBEF0, 100, 64, true)
	if reflect.DeepEqual(a.Ops, c.Ops) {
		t.Fatal("different seeds produced identical op streams")
	}
}

func TestNewPlanShape(t *testing.T) {
	sawFaults := false
	var kinds [3]int
	for seed := uint64(0); seed < 200; seed++ {
		p := NewPlan(seed, 80, 32, seed%2 == 1)
		if p.TRFC >= p.TREFI {
			t.Fatalf("seed %d: tRFC %v >= tREFI %v (imc.New would reject)", seed, p.TRFC, p.TREFI)
		}
		if n := len(p.Ops); n < 40 || n > 80 {
			t.Fatalf("seed %d: %d ops outside [maxOps/2, maxOps]", seed, n)
		}
		for _, op := range p.Ops {
			if op.LPN < 0 || op.LPN >= 32 {
				t.Fatalf("seed %d: lpn %d outside range", seed, op.LPN)
			}
			kinds[op.Kind]++
		}
		if seed%2 == 0 && len(p.Faults) != 0 {
			t.Fatalf("seed %d: faults without withFaults", seed)
		}
		if seed%2 == 1 {
			if len(p.Faults) < 1 || len(p.Faults) > 3 {
				t.Fatalf("seed %d: %d fault arms outside [1,3]", seed, len(p.Faults))
			}
			sawFaults = true
			for _, f := range p.Faults {
				if f.Site == fault.RefdetSampleFlip {
					t.Fatalf("seed %d: armed the designed-fatal detector flip", seed)
				}
				if f.Prob <= 0 && f.OnNth == 0 {
					t.Fatalf("seed %d: arm %v neither probabilistic nor occurrence-based", seed, f)
				}
			}
		}
	}
	if !sawFaults {
		t.Fatal("no plan armed faults")
	}
	for k, n := range kinds {
		if n == 0 {
			t.Fatalf("op kind %v never generated across 200 plans", OpKind(k))
		}
	}
}

func TestPlanArm(t *testing.T) {
	k := sim.NewKernel()
	reg := fault.NewRegistry(k, 1)
	p := Plan{Faults: []FaultArm{
		{Site: fault.NANDReadBitFlip, OnNth: 1, Times: 1},
		{Site: fault.CPAckDrop, Prob: 1.0},
	}}
	p.Arm(reg)
	if !reg.Fires(fault.NANDReadBitFlip) {
		t.Fatal("occurrence arm did not fire on first consultation")
	}
	if reg.Fires(fault.NANDReadBitFlip) {
		t.Fatal("Times(1) arm fired twice")
	}
	if !reg.Fires(fault.CPAckDrop) {
		t.Fatal("p=1.0 arm did not fire")
	}
}

func TestPlanString(t *testing.T) {
	p := NewPlan(0xABCD, 40, 16, true)
	s := p.String()
	for _, want := range []string{"seed=0xabcd", "ops=", "tREFI=", "faults="} {
		if !strings.Contains(s, want) {
			t.Fatalf("plan string %q missing %q", s, want)
		}
	}
	if OpRead.String() != "read" || OpWrite.String() != "write" || OpFlush.String() != "flush" {
		t.Fatal("OpKind strings")
	}
}
