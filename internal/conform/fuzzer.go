// Randomized conformance fuzzing: a seeded generator produces a Plan — a
// timing register program, an op mix and a fault-injection schedule — that a
// harness (internal/experiments.Conformance) replays against a full System
// with the auditor attached in strict mode. Everything here is derived
// deterministically from one uint64, so a failing plan is its seed: the
// minimal reproducer the shrinker emits is just (seed, op count).
//
// The generator lives in this package, away from the System it drives, so
// core can depend on the auditor while the fuzzer's executor lives with the
// other harnesses in internal/experiments.
package conform

import (
	"fmt"

	"nvdimmc/internal/fault"
	"nvdimmc/internal/sim"
)

// OpKind is one fuzzed application operation.
type OpKind int

// The op mix: page-sized reads and writes through the DAX path plus
// explicit persistence flushes.
const (
	OpRead OpKind = iota
	OpWrite
	OpFlush
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return "flush"
	}
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	LPN  int64
	Tag  byte // payload tag for write self-description
}

// FaultArm describes one armed fault rule (registry-independent, so a plan
// can be re-armed on every re-run during shrinking).
type FaultArm struct {
	Site  fault.Site
	Prob  float64 // when > 0: probabilistic rule
	OnNth uint64  // when > 0: fire on the n-th consultation
	Times uint64  // 0 = unlimited
	Param int64   // site-specific parameter (0 = site default)
}

func (f FaultArm) String() string {
	if f.Prob > 0 {
		return fmt.Sprintf("%s p=%.2f", f.Site, f.Prob)
	}
	return fmt.Sprintf("%s n=%d times=%d", f.Site, f.OnNth, f.Times)
}

// Plan is one fully determined conformance run.
type Plan struct {
	Seed     uint64
	TREFI    sim.Duration // randomized refresh cadence (Fig. 13 register menu)
	TRFC     sim.Duration // randomized programmed refresh cycle (Fig. 12 menu)
	LPNRange int64        // ops target [0, LPNRange) pages
	Ops      []Op
	Faults   []FaultArm
}

// The register menus the paper programs via the Skylake MMIO configuration
// space: tREFI at 1x/2x/4x rate (§VII-D), tRFC from just past the JEDEC
// 350 ns floor to the PoC's 1.25 us and beyond (§VII-C). Every pair keeps
// tRFC < tREFI, which imc.New enforces.
var (
	trefiMenu = []sim.Duration{7800 * sim.Nanosecond, 3900 * sim.Nanosecond, 1950 * sim.Nanosecond}
	trfcMenu  = []sim.Duration{1050 * sim.Nanosecond, 1250 * sim.Nanosecond, 1450 * sim.Nanosecond, 1850 * sim.Nanosecond}
)

// faultMenu is the recoverable-fault catalog the fuzzer arms. It
// deliberately excludes RefdetSampleFlip: a detector false positive is
// system-fatal by design (§IV-A), so it is not a legal thing to survive.
var faultMenu = []func(r *sim.Rand) FaultArm{
	func(r *sim.Rand) FaultArm {
		return FaultArm{Site: fault.CPAckDrop, Prob: 0.02 + 0.2*r.Float64()}
	},
	func(r *sim.Rand) FaultArm {
		return FaultArm{Site: fault.CPAckCorrupt, Prob: 0.02 + 0.2*r.Float64()}
	},
	func(r *sim.Rand) FaultArm {
		return FaultArm{Site: fault.NVMCWindowOverrun, Prob: 0.05 + 0.2*r.Float64()}
	},
	func(r *sim.Rand) FaultArm {
		return FaultArm{Site: fault.NVMCFirmwareStall, OnNth: 1 + uint64(r.Intn(8)),
			Times: 1 + uint64(r.Intn(2)), Param: 200 + int64(r.Intn(800))}
	},
	func(r *sim.Rand) FaultArm {
		return FaultArm{Site: fault.BusSnoopDrop, Prob: 0.01 + 0.1*r.Float64()}
	},
	func(r *sim.Rand) FaultArm {
		return FaultArm{Site: fault.NANDReadBitFlip, OnNth: 1 + uint64(r.Intn(6)),
			Times: 1 + uint64(r.Intn(3))}
	},
	func(r *sim.Rand) FaultArm {
		return FaultArm{Site: fault.NANDProgramFail, OnNth: 1 + uint64(r.Intn(6)),
			Times: 1 + uint64(r.Intn(2))}
	},
	func(r *sim.Rand) FaultArm {
		return FaultArm{Site: fault.NANDDieTimeout, OnNth: 1 + uint64(r.Intn(6)), Times: 1}
	},
}

// NewPlan derives a complete conformance plan from one seed. maxOps bounds
// the op count (the actual count is randomized within [maxOps/2, maxOps]);
// lpnRange is the page-address range ops target (keep it a small multiple
// of the slot count so evictions and writebacks stay hot); withFaults arms
// 1-3 random recoverable-fault rules.
func NewPlan(seed uint64, maxOps int, lpnRange int64, withFaults bool) Plan {
	r := sim.NewRand(seed)
	p := Plan{
		Seed:     seed,
		TREFI:    trefiMenu[r.Intn(len(trefiMenu))],
		TRFC:     trfcMenu[r.Intn(len(trfcMenu))],
		LPNRange: lpnRange,
	}
	n := maxOps/2 + r.Intn(maxOps/2+1)
	for i := 0; i < n; i++ {
		op := Op{LPN: r.Int63n(lpnRange), Tag: byte(r.Intn(256))}
		switch d := r.Intn(100); {
		case d < 45:
			op.Kind = OpWrite
		case d < 90:
			op.Kind = OpRead
		default:
			op.Kind = OpFlush
		}
		p.Ops = append(p.Ops, op)
	}
	if withFaults {
		arms := 1 + r.Intn(3)
		for i := 0; i < arms; i++ {
			p.Faults = append(p.Faults, faultMenu[r.Intn(len(faultMenu))](r))
		}
	}
	return p
}

// Arm installs the plan's fault schedule on a registry.
func (p Plan) Arm(reg *fault.Registry) {
	for _, f := range p.Faults {
		var rule *fault.Rule
		switch {
		case f.Prob > 0:
			rule = reg.Prob(f.Site, f.Prob)
		default:
			rule = reg.OnOccurrence(f.Site, f.OnNth)
		}
		if f.Times > 0 {
			rule.Times(f.Times)
		}
		if f.Param != 0 {
			rule.Param(f.Param)
		}
	}
}

// String summarizes the plan for reproducer output.
func (p Plan) String() string {
	return fmt.Sprintf("seed=%#x ops=%d tREFI=%v tRFC=%v faults=%v",
		p.Seed, len(p.Ops), p.TREFI, p.TRFC, p.Faults)
}

// ShrinkOps finds the smallest op-prefix length m in [1, total] for which
// fails(m) still reproduces the failure, assuming prefix monotonicity: the
// run is deterministic in (seed, m) and a violation recorded by a shorter
// prefix is recorded by every longer one. fails(total) must be true (the
// caller just observed it); ShrinkOps needs O(log total) re-runs.
func ShrinkOps(total int, fails func(m int) bool) int {
	lo, hi := 1, total // invariant: fails(hi) true; fails(lo-1) unknown/false
	for lo < hi {
		mid := lo + (hi-lo)/2
		if fails(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi
}
