package numa

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"nvdimmc/internal/core"
	"nvdimmc/internal/fault"
	"nvdimmc/internal/pool"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/openloop"
)

// testMember is the shrunken campaign member (1 MB cache, 32x16 NAND,
// program failures surfaced to the driver) — same shape as the pool's
// fault-campaign member so socket-kill faults actually fail front-end ops.
func testMember() core.Config {
	cfg := core.DefaultConfig()
	cfg.CacheBytes = 1 << 20
	cfg.NAND.BlocksPerDie = 32
	cfg.NAND.PagesPerBlock = 16
	cfg.NVMC.AckAfterProgram = true
	cfg.Audit = false
	return cfg
}

func newTestFabric(t *testing.T, sockets, workers int, mut ...func(*Config)) *Fabric {
	t.Helper()
	cfg := Config{
		Sockets: sockets,
		Pool: pool.Config{
			Channels:        2,
			DIMMsPerChannel: 1,
			Interleave:      4096,
			Member:          testMember(),
			PrefillPages:    -1,
			// The campaign breaker tuning: misses serialize on a member's
			// driver, so the window must span many epochs to gather samples.
			BreakerWindow:      64,
			BreakerMinSamples:  6,
			BreakerErrRate:     0.4,
			BreakerCooldown:    8,
			BreakerCloseStreak: 4,
		},
		ChunkBytes: 64 << 10,
		Workers:    workers,
		Seed:       21,
	}
	for _, m := range mut {
		m(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// fabricTenants builds one socket-affine tenant per socket plus a roaming
// tenant on socket 0 whose footprint spans the whole fabric — guaranteed
// cross-socket traffic.
func fabricTenants(f *Fabric, seed uint64, writeHeavy bool) openloop.Config {
	readPct := 55
	if writeHeavy {
		readPct = 20
	}
	var ts []openloop.Tenant
	for s := 0; s < f.Cfg.Sockets; s++ {
		ts = append(ts, openloop.Tenant{
			Name: fmt.Sprintf("s%d", s), Socket: s, Dist: openloop.Uniform,
			ReadPct: readPct, Weight: 2, Footprint: f.Span(), Offset: int64(s) * f.Span(),
		})
	}
	ts = append(ts, openloop.Tenant{
		Name: "roam", Socket: 0, Dist: openloop.Uniform,
		ReadPct: readPct, Weight: 1, Footprint: f.Capacity(),
	})
	return openloop.Config{Seed: seed, RatePerSec: 1.5e6, Tenants: ts}
}

func runFabric(t *testing.T, f *Fabric, gcfg openloop.Config, count int) Stats {
	t.Helper()
	gen, err := openloop.New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RunOpenLoop(gen, count); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	return f.Stats()
}

// snapshot serializes every observable fabric stat; two runs are
// "byte-identical" iff their snapshots match.
func snapshot(s Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "req=%d/%d failed=%d shed=%d expired=%d throttled=%d late=%d\n",
		s.Completed, s.Submitted, s.Failed, s.Shed, s.Expired, s.Throttled, s.CompletedLate)
	fmt.Fprintf(&b, "writes in=%d ack=%d failed=%d shed=%d expired=%d throttled=%d\n",
		s.WritesIn, s.WritesAcked, s.WritesFailed, s.WritesShed, s.WritesExpired, s.WritesThrottled)
	fmt.Fprintf(&b, "fabric postevac=%d remote=%d rehomed=%d mig=%d/%d/%d epochs=%d\n",
		s.PostEvacSubmissions, s.RemoteRequests, s.ChunksRehomed,
		s.MigPages, s.MigReadMiss, s.MigWriteFail, s.Epochs)
	for _, h := range []struct {
		name string
		h    interface {
			Count() uint64
			Percentile(float64) sim.Duration
		}
	}{{"lat", s.Lat}, {"remote", s.LatRemote}, {"migrate", s.LatMigrate}} {
		fmt.Fprintf(&b, "%s n=%d p50=%v p99=%v p999=%v\n",
			h.name, h.h.Count(), h.h.Percentile(50), h.h.Percentile(99), h.h.Percentile(99.9))
	}
	fmt.Fprintf(&b, "ctr %s\n", s.Ctr.String())
	for i, ss := range s.PerSocket {
		fmt.Fprintf(&b, "sock%d state=%s reason=%q pool req=%d/%d q=%d ev=%d\n",
			i, ss.State, ss.Reason, ss.Pool.Completed, ss.Pool.Submitted,
			ss.Pool.Quarantined, ss.Pool.Evacuated)
	}
	return b.String()
}

// killSocket arms an unbounded NAND program-failure on every member of the
// victim socket: the pool quarantines them all, positions go degraded, and
// the fabric must evacuate.
func killSocket(victim, onset int) func(*Config) {
	return func(c *Config) {
		c.ArmFaults = func(socket, member int, g *fault.Registry) {
			if socket != victim {
				return
			}
			g.OnOccurrence(fault.NANDProgramFail, uint64(onset)).Times(1 << 30)
		}
	}
}

// TestFabricWorkerLookaheadIdentical is the fabric's acceptance gate: the
// same faulted multi-socket run — socket kill, evacuation, migration,
// cross-socket retries — produces byte-identical stats at 1, 2 and 8
// workers, under both lockstep and the lookahead scheduler.
func TestFabricWorkerLookaheadIdentical(t *testing.T) {
	var snaps []string
	var labels []string
	for _, lockstep := range []bool{false, true} {
		for _, workers := range []int{1, 2, 8} {
			f := newTestFabric(t, 3, workers, killSocket(1, 1), func(c *Config) {
				c.DisableLookahead = lockstep
			})
			s := runFabric(t, f, fabricTenants(f, 42, true), 300)
			if s.PerSocket[1].State != SocketEvacuated {
				t.Fatalf("workers=%d lockstep=%v: victim state %s, want evacuated",
					workers, lockstep, s.PerSocket[1].State)
			}
			snaps = append(snaps, snapshot(s))
			labels = append(labels, fmt.Sprintf("workers=%d lockstep=%v", workers, lockstep))
		}
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i] != snaps[0] {
			t.Fatalf("%s changed output vs %s:\n--- %s ---\n%s--- %s ---\n%s",
				labels[i], labels[0], labels[0], snaps[0], labels[i], snaps[i])
		}
	}
}

// TestFabricEvacuationKill drills into one kill point: the victim drains to
// Evacuated, its chunks re-home, migration moves pages, conservation holds
// (CheckHealth inside runFabric), and the cross-socket retry path actually
// recovered traffic onto survivors.
func TestFabricEvacuationKill(t *testing.T) {
	f := newTestFabric(t, 3, 1, killSocket(1, 1))
	s := runFabric(t, f, fabricTenants(f, 7, true), 400)

	if s.PerSocket[1].State != SocketEvacuated {
		t.Fatalf("victim state %s", s.PerSocket[1].State)
	}
	if s.PerSocket[0].State != SocketUp || s.PerSocket[2].State != SocketUp {
		t.Fatalf("survivors not up: %s / %s", s.PerSocket[0].State, s.PerSocket[2].State)
	}
	if s.ChunksRehomed == 0 {
		t.Fatal("no chunks re-homed")
	}
	if s.MigPages == 0 {
		t.Fatal("no migration pages issued")
	}
	if s.PostEvacSubmissions != 0 {
		t.Fatalf("%d post-evacuation submissions", s.PostEvacSubmissions)
	}
	if got := s.WritesIn - s.WritesAcked - s.WritesFailed - s.WritesShed - s.WritesExpired - s.WritesThrottled; got != 0 {
		t.Fatalf("%d acked writes lost", got)
	}
	if s.Ctr.Get("fab-retry-promoted") == 0 {
		t.Fatal("kill mid-run promoted no cross-socket retries")
	}
	if s.Completed == 0 || float64(s.Completed)/float64(s.Submitted) < 0.5 {
		t.Fatalf("availability collapsed: %d/%d", s.Completed, s.Submitted)
	}
	// The evacuation must show up in the migration-interference histogram:
	// foreground completions landed while the migration ran.
	if s.LatMigrate.Count() == 0 {
		t.Fatal("no foreground completions recorded during migration")
	}
}

// TestFabricRemoteLatencyFloor: a completed remote request pays the wire
// both ways, so no remote completion can beat two one-way link latencies;
// local completions are charged nothing by the interconnect.
func TestFabricRemoteLatencyFloor(t *testing.T) {
	f := newTestFabric(t, 2, 1)
	s := runFabric(t, f, fabricTenants(f, 11, false), 300)
	if s.RemoteRequests == 0 {
		t.Fatal("roaming tenant produced no remote requests")
	}
	if s.Lat.Count() == 0 || s.LatRemote.Count() == 0 {
		t.Fatalf("latency split empty: local n=%d remote n=%d", s.Lat.Count(), s.LatRemote.Count())
	}
	if got, want := s.LatRemote.Min(), 2*f.Cfg.XLat; got < want {
		t.Fatalf("remote min %v beats the two-way wire floor %v", got, want)
	}
}

// TestFabricLinkDegrade: a scheduled interconnect degradation must inflate
// the remote tail of an otherwise identical seeded run.
func TestFabricLinkDegrade(t *testing.T) {
	base := newTestFabric(t, 2, 1)
	bs := runFabric(t, base, fabricTenants(base, 13, false), 300)

	deg := newTestFabric(t, 2, 1, func(c *Config) {
		c.LinkFaults = []LinkFault{{Epoch: 2, Socket: 1, LatFactor: 64, BWDivide: 8}}
	})
	ds := runFabric(t, deg, fabricTenants(deg, 13, false), 300)

	if ds.Ctr.Get("link-degraded") != 1 {
		t.Fatalf("link fault fired %d times", ds.Ctr.Get("link-degraded"))
	}
	if ds.LatRemote.Max() <= bs.LatRemote.Max() {
		t.Fatalf("degraded remote max %v not above baseline %v", ds.LatRemote.Max(), bs.LatRemote.Max())
	}
	// No evacuation from a slow wire alone: the sockets themselves are fine.
	for i, ss := range ds.PerSocket {
		if ss.State >= SocketEvacuating {
			t.Fatalf("socket %d evacuated on link degrade: %s", i, ss.Reason)
		}
	}
}

// TestFabricNoSurvivorTypedRefusal: with every serving socket condemned,
// submissions fail fast with ErrSocketEvacuated — degraded, never silent —
// and conservation still balances.
func TestFabricNoSurvivorTypedRefusal(t *testing.T) {
	f := newTestFabric(t, 1, 1)
	f.evacuate(0, "test: no survivor")
	if st := f.socks[0].health.state; st != SocketEvacuated {
		t.Fatalf("no-survivor evacuation state %s, want evacuated", st)
	}
	_, err := f.Submit(openloop.Request{Off: 0, Len: 4096, Write: true})
	if !errors.Is(err, ErrSocketEvacuated) {
		t.Fatalf("submit to dead fabric: %v", err)
	}
	if err := f.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.Failed != 1 || s.WritesFailed != 1 {
		t.Fatalf("refusal not typed-terminal: failed=%d wfailed=%d", s.Failed, s.WritesFailed)
	}
}

// TestFabricDeadlineWireFailFast: when the link transfer alone lands past
// the deadline, the fabric refuses synchronously with the typed deadline
// error instead of burning a pool slot on a dead request.
func TestFabricDeadlineWireFailFast(t *testing.T) {
	f := newTestFabric(t, 2, 1, func(c *Config) {
		c.XLat = sim.Duration(1e9) // 1 ms wire: any tight deadline dies on it
	})
	// Remote: socket 0 submitting into socket 1's span.
	_, err := f.Submit(openloop.Request{
		Socket: 0, Off: f.Span(), Len: 4096, Deadline: 100 * sim.Nanosecond,
	})
	if !errors.Is(err, pool.ErrDeadlineExceeded) {
		t.Fatalf("wire-infeasible deadline: %v", err)
	}
	if f.ctr.Get("expired-on-wire") != 1 {
		t.Fatal("expired-on-wire not counted")
	}
	// The same deadline is fine locally.
	if _, err := f.Submit(openloop.Request{
		Socket: 0, Off: 0, Len: 4096, Deadline: 100 * sim.Microsecond,
	}); err != nil {
		t.Fatalf("local submit: %v", err)
	}
	if err := f.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckHealth(); err != nil {
		t.Fatal(err)
	}
}

// TestFabricChunkStraddle: a request crossing chunk and socket-span
// boundaries fans out and completes exactly once.
func TestFabricChunkStraddle(t *testing.T) {
	f := newTestFabric(t, 2, 1)
	// Straddles the span boundary: one piece per socket.
	if _, err := f.Submit(openloop.Request{
		Off: f.Span() - 2048, Len: 4096, Write: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.Completed != 1 || s.WritesAcked != 1 {
		t.Fatalf("straddling write: completed=%d acked=%d", s.Completed, s.WritesAcked)
	}
	if got := len(f.Poll(0)); got != 1 {
		t.Fatalf("Poll returned %d records, want 1", got)
	}
}

func TestFabricSubmitPanicsOutOfRange(t *testing.T) {
	f := newTestFabric(t, 2, 1)
	for _, c := range []struct {
		name string
		off  int64
		n    int
	}{
		{"negative", -1, 4096},
		{"beyond capacity", f.Capacity() - 2048, 4096},
		{"zero length", 0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			f.Submit(openloop.Request{Off: c.off, Len: c.n})
		}()
	}
}

// TestInterconnectQueueing pins the wire model: transfers serialize on a
// directed link's busy horizon, bandwidth sets the wire time, latency adds
// one way, and the local diagonal is free.
func TestInterconnectQueueing(t *testing.T) {
	lat := sim.Duration(100)
	ic := newInterconnect(2, lat, int64(sim.Second)) // 1 byte per ps: tx == bytes
	if got := ic.xfer(0, 0, 1<<20, 42); got != 42 {
		t.Fatalf("local transfer charged: %v", got)
	}
	a := ic.xfer(0, 1, 1000, 0)
	if want := sim.Duration(1000) + lat; a != want {
		t.Fatalf("first transfer lands %v, want %v", a, want)
	}
	// Second transfer on the same link queues behind the first's wire time.
	b := ic.xfer(0, 1, 1000, 0)
	if want := sim.Duration(2000) + lat; b != want {
		t.Fatalf("queued transfer lands %v, want %v", b, want)
	}
	// The reverse direction is an independent link.
	r := ic.xfer(1, 0, 1000, 0)
	if want := sim.Duration(1000) + lat; r != want {
		t.Fatalf("reverse transfer lands %v, want %v", r, want)
	}
	// Degrade: latency x2, bandwidth /2 -> next transfer pays both.
	ic.degrade(1, 2, 2)
	d := ic.xfer(0, 1, 1000, 5000)
	if want := sim.Duration(5000) + 2000 + 2*lat; d != want {
		t.Fatalf("degraded transfer lands %v, want %v", d, want)
	}
}

// TestFabricSuspectRecovery: a transient burst that the pool absorbs marks
// the socket Suspect, and the clean-probe streak returns it to Up without
// an evacuation.
func TestFabricSuspectRecovery(t *testing.T) {
	f := newTestFabric(t, 2, 1, func(c *Config) {
		c.EvacuateAfterProbes = 1000 // never condemn on streak in this test
		c.ProbeEvery = 2
		c.SuspectClearProbes = 2
		// Keep the transient below the member-quarantine threshold: with no
		// spares a quarantine degrades the position and forces evacuation,
		// which is exactly what this test must NOT reach.
		c.Pool.QuarantineFragErrs = 1 << 30
		c.Pool.Spares = 1
		c.Pool.Member.NAND.BlocksPerDie = 64
		c.ArmFaults = func(socket, member int, g *fault.Registry) {
			if socket == 1 && member == 0 {
				// A bounded burst of uncorrectable NAND reads. The FTL's
				// read-retry absorbs isolated upsets, so a sustained burst
				// is needed before errors surface to the driver (cachefill
				// retries, typed pool failures, breaker samples) — all
				// probe-delta signals. Then the media heals and the clean
				// streak restores the socket.
				g.OnOccurrence(fault.NANDReadBitFlip, 1).Times(24)
			}
		}
	})
	// Read-heavy traffic pinned to a small window of socket 1 so evicted
	// prefill pages are re-read from NAND — the only path that consults the
	// injected fault — plus light background load on socket 0.
	fp := int64(4 << 20)
	if fp > f.Span() {
		fp = f.Span()
	}
	gcfg := openloop.Config{
		Seed: 17, RatePerSec: 1.5e6,
		Tenants: []openloop.Tenant{
			{Name: "s1rd", Socket: 1, Dist: openloop.Uniform, ReadPct: 100,
				Weight: 3, Footprint: fp, Offset: f.Span()},
			{Name: "s0", Socket: 0, Dist: openloop.Uniform, ReadPct: 50,
				Weight: 1, Footprint: f.Span()},
		},
	}
	s := runFabric(t, f, gcfg, 800)
	if s.Ctr.Get("socket-suspect") == 0 {
		t.Fatal("bounded read-upset burst never marked the socket suspect")
	}
	if s.PerSocket[1].State != SocketUp {
		t.Fatalf("socket 1 state %s after transient, want up (recovered=%d)",
			s.PerSocket[1].State, s.Ctr.Get("socket-recovered"))
	}
	if s.Ctr.Get("socket-recovered") == 0 {
		t.Fatal("suspect never recovered")
	}
	if s.ChunksRehomed != 0 {
		t.Fatalf("transient burst re-homed %d chunks — socket was condemned", s.ChunksRehomed)
	}
}
