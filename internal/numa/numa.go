// Package numa composes N pooled sockets into one multi-socket fabric
// behind a single Submit/Poll request plane — the pool-of-pools scale-out
// of ROADMAP item 3, built the way the pool itself composes members, one
// level up:
//
//	member : pool  ::  pool (socket) : fabric
//
// The fabric owns a flat address space striped socket-major: socket s
// serves [s*span, (s+1)*span), span being the smallest pool capacity
// rounded down to ChunkBytes. A chunk directory (logical socket × chunk →
// serving socket) indirects every access, so evacuating a socket re-homes
// its chunks to survivors without changing a single request address.
//
// Remote requests pay a METICULOUS-style interconnect: per directed link, a
// configurable one-way latency plus a bandwidth term modeled as
// deterministic queueing on the link's busy-until horizon — request bytes
// ride out, completion bytes ride back, both folded into the completion
// time the submitter observes. Everything advances in the same conservative
// epoch lockstep as the pool: all fabric state mutates single-threaded at
// epoch boundaries in canonical socket order, so output is byte-identical
// at any worker count, with or without the pools' lookahead scheduler.
//
// Socket health is the member lattice lifted one level (Up → Suspect →
// Evacuating → Evacuated), driven by epoch-boundary probes that diff each
// pool's health snapshot (pool.Probe). A failing socket is drained by a
// rate-limited background migration of its resident set to survivors,
// while foreground traffic re-routes through the directory — typed
// ErrSocketEvacuated / ErrFabricDegraded, never silent loss.
package numa

import (
	"errors"
	"fmt"

	"nvdimmc/internal/fault"
	"nvdimmc/internal/metrics"
	"nvdimmc/internal/pool"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/openloop"
)

// Typed fabric errors, the socket-level analogues of the pool's
// ErrMemberQuarantined / ErrPoolDegraded.
var (
	// ErrSocketEvacuated: the request's serving socket is evacuating or
	// evacuated and no healthy survivor serves its chunks (or a retry found
	// its new home already gone).
	ErrSocketEvacuated = errors.New("numa: socket evacuated")
	// ErrFabricDegraded: cross-socket retries exhausted without landing the
	// request on a healthy socket.
	ErrFabricDegraded = errors.New("numa: fabric degraded, retries exhausted")
)

// LinkFault degrades the interconnect at a scheduled epoch boundary —
// the seeded campaign's "interconnect-degrade" lever.
type LinkFault struct {
	// Epoch is the fabric epoch count at whose boundary the fault applies.
	Epoch int
	// Socket selects the victim: every link touching it degrades. Negative
	// degrades the whole fabric.
	Socket int
	// LatFactor multiplies the affected links' one-way latency (values < 1
	// are ignored).
	LatFactor int
	// BWDivide divides the affected links' bandwidth (values < 1 ignored).
	BWDivide int
}

// Config parameterizes a fabric.
type Config struct {
	// Sockets is the socket count (default 2).
	Sockets int
	// Pool is the per-socket pool template. Its Seed, Workers and
	// DisableLookahead are overridden per socket from the fabric-level
	// fields below; everything else applies verbatim to every socket.
	Pool pool.Config

	// XLat is the cross-socket one-way link latency (default 400 ns, the
	// remote-DRAM asymmetry scale the Empirical Guide measures).
	XLat sim.Duration
	// XBWBytesPerSec is the per-directed-link bandwidth (default 8 GB/s).
	XBWBytesPerSec int64
	// ChunkBytes is the directory granularity: evacuation re-homes whole
	// chunks. Must be a multiple of the pool interleave (default 256 KiB).
	ChunkBytes int64

	// ProbeEvery gates socket probes to every Nth fabric epoch (default 8).
	ProbeEvery int
	// SuspectClearProbes is the clean-probe streak that returns a Suspect
	// socket to Up (default 4).
	SuspectClearProbes int
	// EvacuateAfterProbes is the consecutive-suspect-probe streak that
	// escalates Suspect to Evacuating (default 3). Degraded positions and
	// pool-invariant breaches escalate immediately.
	EvacuateAfterProbes int
	// MigratePagesPerEpoch rate-limits background evacuation migration
	// (default 8 pages per epoch per job, the rebuild engine's default).
	MigratePagesPerEpoch int

	// MaxRetries bounds cross-socket re-dispatch of typed-failed requests
	// (default 4; negative disables retry).
	MaxRetries int
	// RetryBackoffEpochs / RetryBackoffCap shape the exponential backoff
	// between attempts, in fabric epochs (defaults 1 / 8).
	RetryBackoffEpochs int
	RetryBackoffCap    int

	// MaxEpochs guards Run/Drain against wedges (default 1<<21).
	MaxEpochs int
	// Workers parallelizes each pool's member advance (fabric state is
	// boundary-only and never sharded).
	Workers int
	// Seed derives every per-socket pool seed (zero gets a fixed default).
	Seed uint64
	// DisableLookahead forces naive per-epoch member advance in every pool.
	DisableLookahead bool
	// Notify, when set, receives terminal completions instead of Poll.
	Notify func(pool.Completion)
	// LinkFaults schedules interconnect degradations.
	LinkFaults []LinkFault
	// ArmFaults arms per-member fault registries, keyed by socket and
	// member — the fabric campaign's socket-kill / slow-socket lever. It
	// runs after any ArmFaults on the pool template.
	ArmFaults func(socket, member int, reg *fault.Registry)
}

// fabReq is one fabric-level request; it fans out into per-socket sockOps
// (one per contiguous same-owner address run) that complete together.
type fabReq struct {
	id       uint64
	tenant   int
	src      int
	arrival  sim.Duration
	deadline sim.Duration // absolute instant (arrival + budget); 0 = none
	write    bool
	bytes    int
	remote   bool

	remaining int
	lastDone  sim.Duration
	err       error
	// insub is true while Submit is still dispatching pieces: a request
	// retiring with it set resolved synchronously, so the caller holds the
	// typed error and no Completion record is produced (pool.Submit parity).
	insub bool
}

// sockOp is one per-socket piece of a fabric request.
type sockOp struct {
	req      *fabReq
	off      int64 // fabric address of this piece
	n        int
	attempts int
}

type fabRetry struct {
	op    *sockOp
	ready int // fabric epoch at which it re-dispatches
}

// Fabric is the multi-socket request plane.
type Fabric struct {
	Cfg Config

	socks []*socket
	links *interconnect

	span   int64 // bytes served per socket
	chunks int   // directory chunks per socket
	owner  []int // (logical socket * chunks + chunk) -> serving socket
	reown  int   // round-robin cursor for re-homing spread

	epoch  sim.Duration
	now    sim.Duration // current boundary, relative to fabric origin
	epochs int

	retries []fabRetry
	jobs    []*migJob

	nextID      uint64
	completions []pool.Completion

	ctr        *metrics.Counters
	lat        *metrics.Histogram // local foreground completions
	latRemote  *metrics.Histogram // foreground completions that crossed a link
	latMigrate *metrics.Histogram // foreground completions while migration ran

	submitted, completed, failed, shed, expired, throttled uint64
	completedLate                                          uint64
	writesIn, writesAck, writesFailed                      uint64
	writesShed, writesExpired, writesThrottled             uint64
	untypedFailures                                        uint64
	// postEvacSubmissions counts foreground pool submissions that reached a
	// socket at or past Evacuating; probe-before-submit ordering makes this
	// structurally zero and CheckHealth asserts it.
	postEvacSubmissions uint64
	firstFailure        error
}

// socket is one pooled socket plus its fabric-side tracking state.
type socket struct {
	pool   *pool.Pool
	health *socketHealth
	pend   map[uint64]*sockOp // pool request ID -> foreground op
	mig    map[uint64]*migOp  // pool request ID -> migration op
}

func (c *Config) fillDefaults() error {
	if c.Sockets == 0 {
		c.Sockets = 2
	}
	if c.Sockets < 1 {
		return fmt.Errorf("numa: %d sockets", c.Sockets)
	}
	if c.XLat == 0 {
		c.XLat = 400 * sim.Nanosecond
	}
	if c.XLat < 0 {
		return fmt.Errorf("numa: negative link latency %v", c.XLat)
	}
	if c.XBWBytesPerSec == 0 {
		c.XBWBytesPerSec = 8 << 30
	}
	if c.XBWBytesPerSec < 0 {
		return fmt.Errorf("numa: negative link bandwidth %d", c.XBWBytesPerSec)
	}
	if c.ChunkBytes == 0 {
		c.ChunkBytes = 256 << 10
	}
	if c.ChunkBytes < 0 {
		return fmt.Errorf("numa: negative chunk size %d", c.ChunkBytes)
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 8
	}
	if c.SuspectClearProbes <= 0 {
		c.SuspectClearProbes = 4
	}
	if c.EvacuateAfterProbes <= 0 {
		c.EvacuateAfterProbes = 3
	}
	if c.MigratePagesPerEpoch <= 0 {
		c.MigratePagesPerEpoch = 8
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 4
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0 // retry disabled; first typed failure is terminal
	}
	if c.RetryBackoffEpochs <= 0 {
		c.RetryBackoffEpochs = 1
	}
	if c.RetryBackoffCap <= 0 {
		c.RetryBackoffCap = 8
	}
	if c.MaxEpochs <= 0 {
		c.MaxEpochs = 1 << 21
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// New assembles Sockets pools from the template, derives the socket-major
// address map, and aligns everything on a shared epoch clock. Each pool
// aligns its own members internally; the fabric then works purely in
// durations relative to each pool's origin, so per-socket boot-time skew
// (different seeds boot in different simulated times) never leaks into
// fabric arithmetic.
func New(cfg Config) (*Fabric, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	f := &Fabric{
		Cfg:        cfg,
		ctr:        metrics.NewCounters(),
		lat:        metrics.NewHistogram(),
		latRemote:  metrics.NewHistogram(),
		latMigrate: metrics.NewHistogram(),
	}
	for s := 0; s < cfg.Sockets; s++ {
		pc := cfg.Pool
		pc.Seed = sim.SplitSeed(cfg.Seed, fmt.Sprintf("numa/socket-%02d", s))
		pc.Workers = cfg.Workers
		pc.DisableLookahead = cfg.DisableLookahead
		pc.Notify = nil // the fabric polls
		if cfg.ArmFaults != nil {
			sock := s
			prev := cfg.Pool.ArmFaults
			pc.ArmFaults = func(m int, reg *fault.Registry) {
				if prev != nil {
					prev(m, reg)
				}
				cfg.ArmFaults(sock, m, reg)
			}
			pc.FaultSeed = sim.SplitSeed(cfg.Seed, fmt.Sprintf("numa/fault-%02d", s))
		}
		p, err := pool.New(pc)
		if err != nil {
			return nil, fmt.Errorf("numa: socket %d: %w", s, err)
		}
		f.socks = append(f.socks, &socket{
			pool:   p,
			health: &socketHealth{},
			pend:   map[uint64]*sockOp{},
			mig:    map[uint64]*migOp{},
		})
	}
	f.epoch = f.socks[0].pool.Cfg.Epoch
	span := f.socks[0].pool.Capacity()
	for _, s := range f.socks[1:] {
		if c := s.pool.Capacity(); c < span {
			span = c
		}
	}
	span -= span % cfg.ChunkBytes
	if span < cfg.ChunkBytes {
		return nil, fmt.Errorf("numa: socket capacity %d below one %d-byte chunk", span, cfg.ChunkBytes)
	}
	f.span = span
	f.chunks = int(span / cfg.ChunkBytes)
	f.owner = make([]int, cfg.Sockets*f.chunks)
	for i := range f.owner {
		f.owner[i] = i / f.chunks
	}
	f.links = newInterconnect(cfg.Sockets, cfg.XLat, cfg.XBWBytesPerSec)
	return f, nil
}

// Span returns the bytes served per socket; Capacity the fabric total.
func (f *Fabric) Span() int64     { return f.span }
func (f *Fabric) Capacity() int64 { return f.span * int64(f.Cfg.Sockets) }

// Now returns the current epoch boundary as a duration since fabric start.
func (f *Fabric) Now() sim.Duration { return f.now }

// Socket exposes socket s's pool (tests, health checks, CLI tables).
func (f *Fabric) Socket(s int) *pool.Pool { return f.socks[s].pool }

// ownerOf returns the socket currently serving the chunk holding off.
func (f *Fabric) ownerOf(off int64) int {
	return f.owner[int(off/f.Cfg.ChunkBytes)]
}

// localOff maps a fabric address to the serving pool's local offset: the
// within-span offset is preserved across re-homing, so migration and
// foreground traffic agree on addresses without a translation table.
func (f *Fabric) localOff(off int64) int64 { return off % f.span }

// Submit offers one request to the fabric at the current epoch boundary.
// Requests wholly refused at admission (every piece shed or throttled
// synchronously by its pool) return the typed error immediately, like
// pool.Submit; partially admitted requests resolve through Poll/Notify
// with the typed chain attached. Addresses outside [0, Capacity) panic:
// callers own admission of addresses, as with the pool decoder.
func (f *Fabric) Submit(r openloop.Request) (uint64, error) {
	if r.Off < 0 || r.Len <= 0 || r.Off+int64(r.Len) > f.Capacity() {
		panic(fmt.Sprintf("numa: request [%d,+%d) outside fabric capacity %d", r.Off, r.Len, f.Capacity()))
	}
	src := r.Socket
	if src < 0 || src >= f.Cfg.Sockets {
		src = 0
	}
	f.nextID++
	req := &fabReq{
		id:      f.nextID,
		tenant:  r.Tenant,
		src:     src,
		arrival: r.Arrival,
		write:   r.Write,
		bytes:   r.Len,
	}
	if r.Deadline > 0 {
		req.deadline = r.Arrival + r.Deadline
	}
	f.submitted++
	if r.Write {
		f.writesIn++
	}
	// Split at chunk boundaries, merging consecutive chunks with the same
	// serving socket so a request crossing an un-re-homed span stays one op.
	type seg struct {
		off int64
		n   int
	}
	var segs []seg
	off, n := r.Off, r.Len
	for n > 0 {
		run := int(f.Cfg.ChunkBytes - off%f.Cfg.ChunkBytes)
		if run > n {
			run = n
		}
		if len(segs) > 0 {
			last := &segs[len(segs)-1]
			if last.off+int64(last.n) == off && f.ownerOf(last.off) == f.ownerOf(off) &&
				f.localOff(last.off)+int64(last.n) == f.localOff(off) {
				last.n += run
				off += int64(run)
				n -= run
				continue
			}
		}
		segs = append(segs, seg{off, run})
		off += int64(run)
		n -= run
	}
	req.remaining = len(segs)
	req.insub = true
	for _, sg := range segs {
		f.dispatch(&sockOp{req: req, off: sg.off, n: sg.n})
	}
	req.insub = false
	if req.remaining == 0 {
		// Every piece resolved synchronously (admission refusal or typed
		// fast-fail): hand the caller the typed chain, pool-style — the
		// outcome counters are already settled, no Completion record.
		return req.id, req.err
	}
	return req.id, nil
}

// dispatch routes one sockOp through the directory and submits it to its
// serving pool, paying the request-path interconnect transfer. It is the
// single choke point for the post-evacuation invariant: a piece whose
// serving socket is at or past Evacuating is refused typed here, before
// any pool sees it.
func (f *Fabric) dispatch(op *sockOp) {
	dst := f.ownerOf(op.off)
	h := f.socks[dst].health
	if h.state >= SocketEvacuating {
		f.ctr.Inc("refused-evacuated")
		f.opTerminal(op, fmt.Errorf("numa: socket %d %s (%s): %w", dst, h.state, h.reason, ErrSocketEvacuated), f.now)
		return
	}
	at := op.req.arrival
	if at < f.now {
		at = f.now
	}
	xb := 64 // request descriptor
	if op.req.write {
		xb += op.n // write payload rides the request path
	}
	arrive := f.links.xfer(op.req.src, dst, xb, at)
	var budget sim.Duration
	if dl := op.req.deadline; dl > 0 {
		budget = dl - arrive
		if budget <= 0 {
			// The wire alone eats the whole budget: fail fast, typed, without
			// burning a pool slot.
			f.ctr.Inc("expired-on-wire")
			f.opTerminal(op, fmt.Errorf("numa: link transfer lands %v past deadline: %w",
				arrive-dl, pool.ErrDeadlineExceeded), arrive)
			return
		}
	}
	if op.req.src != dst {
		if !op.req.remote {
			op.req.remote = true
			f.ctr.Inc("remote-requests")
		}
	}
	if h.state >= SocketEvacuating {
		// Unreachable (checked above) but kept as the counted invariant:
		// any submission past this point to an evacuating socket is a bug
		// CheckHealth must surface.
		f.postEvacSubmissions++
	}
	pid, err := f.socks[dst].pool.Submit(openloop.Request{
		Arrival:  arrive,
		Deadline: budget,
		Tenant:   op.req.tenant,
		Socket:   dst,
		Off:      f.localOff(op.off),
		Len:      op.n,
		Write:    op.req.write,
	})
	if err != nil {
		// Synchronous typed refusal (admission shed / tenant throttle).
		f.opTerminal(op, err, arrive)
		return
	}
	f.socks[dst].pend[pid] = op
}

// opTerminal retires one piece with a typed error.
func (f *Fabric) opTerminal(op *sockOp, err error, at sim.Duration) {
	if op.req.err == nil {
		op.req.err = fmt.Errorf("numa: piece [%d,+%d): %w", op.off, op.n, err)
	}
	f.requestPieceDone(op.req, at)
}

// opDone retires one piece successfully at instant at.
func (f *Fabric) opDone(op *sockOp, at sim.Duration) {
	f.requestPieceDone(op.req, at)
}

// opFailed handles an asynchronous typed failure: re-dispatch through the
// directory after capped exponential backoff — the failure usually means
// the serving socket just degraded, and the probe/evacuation machinery is
// re-homing its chunks — failing fast when the remaining deadline budget
// cannot cover the next attempt.
func (f *Fabric) opFailed(op *sockOp, err error, at sim.Duration) {
	op.attempts++
	if op.attempts > f.Cfg.MaxRetries {
		f.ctr.Inc("fab-retry-exhausted")
		f.opTerminal(op, fmt.Errorf("%w after %d attempts: %v", ErrFabricDegraded, op.attempts, err), at)
		return
	}
	delay := f.Cfg.RetryBackoffEpochs << (op.attempts - 1)
	if delay > f.Cfg.RetryBackoffCap {
		delay = f.Cfg.RetryBackoffCap
	}
	if dl := op.req.deadline; dl > 0 {
		eta := f.now + sim.Duration(delay)*f.epoch + f.Cfg.XLat
		if eta > dl {
			f.ctr.Inc("fab-retry-infeasible")
			f.opTerminal(op, fmt.Errorf("numa: retry %d backoff lands %v past deadline (%v): %w",
				op.attempts, eta-dl, err, pool.ErrDeadlineExceeded), at)
			return
		}
	}
	f.ctr.Inc("fab-retry-queued")
	f.retries = append(f.retries, fabRetry{op: op, ready: f.epochs + delay})
}

// promoteRetries re-dispatches every piece whose backoff has elapsed, in
// queue (submission) order.
func (f *Fabric) promoteRetries() {
	if len(f.retries) == 0 {
		return
	}
	keep := f.retries[:0]
	for _, e := range f.retries {
		if e.ready > f.epochs {
			keep = append(keep, e)
			continue
		}
		f.ctr.Inc("fab-retry-promoted")
		f.dispatch(e.op)
	}
	f.retries = keep
}

// requestPieceDone folds one terminal piece into its request; the last
// piece classifies and retires the whole request in pool outcome terms.
func (f *Fabric) requestPieceDone(r *fabReq, at sim.Duration) {
	if at > r.lastDone {
		r.lastDone = at
	}
	r.remaining--
	if r.remaining > 0 {
		return
	}
	c := pool.Completion{
		ID:      r.id,
		Tenant:  r.tenant,
		Write:   r.write,
		At:      sim.Time(r.lastDone),
		Latency: r.lastDone - r.arrival,
		Err:     r.err,
	}
	switch {
	case r.err == nil:
		c.Outcome = pool.OutcomeCompleted
		f.completed++
		if r.write {
			f.writesAck++
		}
		if r.deadline > 0 && r.lastDone > r.deadline {
			c.Late = true
			c.Lateness = r.lastDone - r.deadline
			f.completedLate++
		}
		lat := c.Latency
		if r.remote {
			f.latRemote.Record(lat)
		} else {
			f.lat.Record(lat)
		}
		if len(f.jobs) > 0 {
			f.latMigrate.Record(lat)
		}
	case errors.Is(r.err, pool.ErrTenantThrottled):
		c.Outcome = pool.OutcomeThrottled
		f.throttled++
		if r.write {
			f.writesThrottled++
		}
	case errors.Is(r.err, pool.ErrAdmissionFull):
		c.Outcome = pool.OutcomeShed
		f.shed++
		if r.write {
			f.writesShed++
		}
	case errors.Is(r.err, pool.ErrDeadlineExceeded):
		c.Outcome = pool.OutcomeExpired
		f.expired++
		if r.write {
			f.writesExpired++
		}
	default:
		c.Outcome = pool.OutcomeFailed
		f.failed++
		if r.write {
			f.writesFailed++
		}
		if !errors.Is(r.err, pool.ErrMemberQuarantined) && !errors.Is(r.err, pool.ErrPoolDegraded) &&
			!errors.Is(r.err, ErrSocketEvacuated) && !errors.Is(r.err, ErrFabricDegraded) {
			f.untypedFailures++
		}
		if f.firstFailure == nil {
			f.firstFailure = r.err
		}
	}
	if !r.insub {
		f.completions = append(f.completions, c)
	}
}

// Step advances the fabric one epoch: boundary bookkeeping (link faults,
// retry promotion, migration issue) in canonical order, every socket pool
// one epoch (each parallelizing its members per Cfg.Workers; socket order
// is serial and state-independent), then completion collection, socket
// probes and migration sweep — all single-threaded at the boundary.
func (f *Fabric) Step() {
	f.epochs++
	f.applyLinkFaults()
	f.promoteRetries()
	f.issueMigrations()
	for _, s := range f.socks {
		s.pool.Step()
	}
	f.collect()
	f.sweepMigrations()
	f.probeSockets()
	f.now += f.epoch
	f.deliver()
}

// collect drains every socket's completions in socket order and folds them
// into fabric requests, paying the return-path transfer for completed
// remote pieces (a read's payload rides home; acks are descriptor-sized).
func (f *Fabric) collect() {
	for si, s := range f.socks {
		for _, c := range s.pool.Poll(0) {
			rel := c.At.Sub(s.pool.Origin())
			if op, ok := s.pend[c.ID]; ok {
				delete(s.pend, c.ID)
				switch c.Outcome {
				case pool.OutcomeCompleted:
					rb := 64
					if !op.req.write {
						rb += op.n
					}
					f.opDone(op, f.links.xfer(si, op.req.src, rb, rel))
				case pool.OutcomeFailed:
					f.opFailed(op, c.Err, rel)
				default: // shed / expired / throttled, asynchronously
					f.opTerminal(op, c.Err, rel)
				}
				continue
			}
			if mo, ok := s.mig[c.ID]; ok {
				delete(s.mig, c.ID)
				f.migDone(mo, c)
				continue
			}
			// A completion neither map owns would be a bookkeeping bug;
			// count it so CheckHealth can fail loudly.
			f.ctr.Inc("orphan-completions")
		}
	}
}

// deliver hands buffered terminal records to Notify, preserving order, or
// retains them for Poll.
func (f *Fabric) deliver() {
	if f.Cfg.Notify == nil || len(f.completions) == 0 {
		return
	}
	for _, c := range f.completions {
		f.Cfg.Notify(c)
	}
	f.completions = f.completions[:0]
}

// Poll removes and returns up to max buffered completions (all if max <= 0).
func (f *Fabric) Poll(max int) []pool.Completion {
	if max <= 0 || max > len(f.completions) {
		max = len(f.completions)
	}
	if max == 0 {
		return nil
	}
	out := make([]pool.Completion, max)
	copy(out, f.completions[:max])
	f.completions = f.completions[:copy(f.completions, f.completions[max:])]
	return out
}

// terminal returns the count of retired requests.
func (f *Fabric) terminal() uint64 {
	return f.completed + f.failed + f.shed + f.expired + f.throttled
}

// Quiesced reports whether every submitted request is terminal and no
// background work (retries, migrations, in-flight pieces) remains.
func (f *Fabric) Quiesced() bool {
	if f.terminal() != f.submitted || len(f.retries) != 0 || len(f.jobs) != 0 {
		return false
	}
	for _, s := range f.socks {
		if len(s.pend) != 0 || len(s.mig) != 0 || !s.pool.Quiesced() {
			return false
		}
	}
	return true
}

// Drain steps the fabric until it quiesces (or the MaxEpochs guard trips).
func (f *Fabric) Drain() error {
	for !f.Quiesced() {
		if f.epochs >= f.Cfg.MaxEpochs {
			return fmt.Errorf("numa: %d epochs without draining (%d/%d requests terminal) — wedged?",
				f.epochs, f.terminal(), f.submitted)
		}
		f.Step()
	}
	return nil
}

// Run submits the stream next yields (arrival order, one epoch's worth per
// step) and drains the fabric. Unlike pool.Run there is no quiet-epoch
// batching at fabric level: pools may still warp idle members internally,
// but the fabric boundary cadence is uniform so lockstep and lookahead
// stay byte-comparable one level up too.
func (f *Fabric) Run(next func() (openloop.Request, bool)) error {
	var look *openloop.Request
	exhausted := false
	for {
		if f.epochs >= f.Cfg.MaxEpochs {
			return fmt.Errorf("numa: %d epochs without draining (%d/%d requests terminal) — wedged?",
				f.epochs, f.terminal(), f.submitted)
		}
		epochEnd := f.now + f.epoch
		for !exhausted {
			if look == nil {
				r, ok := next()
				if !ok {
					exhausted = true
					break
				}
				look = &r
			}
			if look.Arrival >= epochEnd {
				break
			}
			f.Submit(*look) // sync refusals are already terminal-counted
			look = nil
		}
		f.Step()
		if exhausted && look == nil && f.Quiesced() {
			return nil
		}
	}
}

// RunOpenLoop runs count arrivals from gen through the fabric.
func (f *Fabric) RunOpenLoop(gen *openloop.Generator, count int) error {
	issued := 0
	return f.Run(func() (openloop.Request, bool) {
		if issued >= count {
			return openloop.Request{}, false
		}
		issued++
		return gen.Next(), true
	})
}
