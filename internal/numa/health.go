// Socket-level health lattice: the pool's member lattice lifted one level.
// Epoch-boundary probes diff each pool's health snapshot (pool.Probe) and
// walk the socket through Up → Suspect → Evacuating → Evacuated — monotone
// past Suspect, exactly like the member lattice past Quarantined. The
// strongest signals (a degraded position with no server, a pool-invariant
// breach) evacuate immediately; softer ones (new typed failures, driver
// error growth, open breakers, suspect members) mark the socket Suspect
// and escalate only after EvacuateAfterProbes consecutive suspect probes,
// so a transient burst the pool absorbs internally never costs a socket.
//
// Probes run after completion collection and before the next boundary's
// submissions, so no foreground piece is ever submitted to a socket the
// lattice has already condemned — the "zero post-evacuation submissions"
// gate is structural, not statistical.
package numa

import (
	"fmt"

	"nvdimmc/internal/pool"
)

// SocketState is a socket's position in the fabric lattice.
type SocketState int

const (
	// SocketUp: serving normally.
	SocketUp SocketState = iota
	// SocketSuspect: probe deltas look sick; traffic still flows while the
	// lattice waits for the streak to clear or condemn.
	SocketSuspect
	// SocketEvacuating: condemned — chunks re-homed to survivors, resident
	// set migrating in the background, all foreground refusals typed.
	SocketEvacuating
	// SocketEvacuated: migration drained; the socket serves nothing.
	SocketEvacuated
)

func (s SocketState) String() string {
	switch s {
	case SocketUp:
		return "up"
	case SocketSuspect:
		return "suspect"
	case SocketEvacuating:
		return "evacuating"
	case SocketEvacuated:
		return "evacuated"
	default:
		return "state?"
	}
}

type socketHealth struct {
	state  SocketState
	reason string
	// suspectProbes counts consecutive suspicious probes; cleanProbes the
	// clean streak that de-escalates Suspect. Either resets the other.
	suspectProbes int
	cleanProbes   int
	last          pool.Probe // snapshot at the previous probe (delta base)
}

// suspicious reports whether the probe delta since last looks unhealthy:
// new typed failures, driver error growth, new quarantines, live suspects
// or open breakers. These are pool-internal events the pool may well be
// absorbing (spares, retries, breakers) — grounds for suspicion, not
// immediate evacuation.
func suspicious(pr, last pool.Probe) bool {
	return pr.Failed > last.Failed ||
		pr.DriverErrors > last.DriverErrors ||
		pr.Quarantined > last.Quarantined ||
		pr.Suspects > 0 ||
		pr.BreakersOpen > 0
}

// probeSockets advances the lattice at every ProbeEvery-th boundary, in
// socket order — boundary-only, single-threaded, like all fabric state.
func (f *Fabric) probeSockets() {
	if f.epochs%f.Cfg.ProbeEvery != 0 {
		return
	}
	for si, s := range f.socks {
		h := s.health
		if h.state >= SocketEvacuating {
			continue // monotone past Evacuating
		}
		pr := s.pool.Probe()
		switch {
		case pr.DegradedPositions > 0:
			// Positions with no healthy server: every fragment there fails
			// typed and no spare is left. The pool cannot recover alone.
			f.evacuate(si, fmt.Sprintf("%d degraded positions", pr.DegradedPositions))
		case pr.UntypedFailures > 0 || pr.PostQuarantine > 0:
			// The pool breached its own conservation invariants — the
			// strongest possible signal; get everything off it.
			f.evacuate(si, "pool invariant breach")
		case suspicious(pr, h.last):
			if h.state == SocketUp {
				h.state = SocketSuspect
				f.ctr.Inc("socket-suspect")
			}
			h.suspectProbes++
			h.cleanProbes = 0
			if h.suspectProbes >= f.Cfg.EvacuateAfterProbes {
				f.evacuate(si, fmt.Sprintf("%d consecutive suspect probes", h.suspectProbes))
			}
		case h.state == SocketSuspect:
			h.suspectProbes = 0
			h.cleanProbes++
			if h.cleanProbes >= f.Cfg.SuspectClearProbes {
				h.state = SocketUp
				h.reason = ""
				h.cleanProbes = 0
				f.ctr.Inc("socket-recovered")
			}
		}
		h.last = pr
	}
}

// survivors returns the sockets still accepting re-homed chunks (Up or
// Suspect), in index order.
func (f *Fabric) survivors(except int) []int {
	var out []int
	for si, s := range f.socks {
		if si != except && s.health.state <= SocketSuspect {
			out = append(out, si)
		}
	}
	return out
}

// evacuate condemns socket victim: every directory chunk it serves —
// its own and any it absorbed from earlier evacuations — re-homes
// round-robin across survivors, and a rate-limited migration job starts
// copying its resident set to the new owners. With no survivor left the
// socket goes straight to Evacuated: its chunks keep their dead owner and
// every dispatch refuses typed (ErrSocketEvacuated) — degraded, never
// silent.
func (f *Fabric) evacuate(victim int, reason string) {
	h := f.socks[victim].health
	h.state = SocketEvacuating
	h.reason = reason
	f.ctr.Inc("socket-evacuating")

	surv := f.survivors(victim)
	if len(surv) == 0 {
		h.state = SocketEvacuated
		f.ctr.Inc("socket-evacuated")
		f.ctr.Inc("evacuate-no-survivor")
		return
	}
	rehomed := 0
	for i, o := range f.owner {
		if o != victim {
			continue
		}
		f.owner[i] = surv[f.reown%len(surv)]
		f.reown++
		rehomed++
	}
	f.ctr.Add("chunks-rehomed", uint64(rehomed))
	f.startMigration(victim)
}
