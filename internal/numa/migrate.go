// Background evacuation migration: the pool's rebuild engine lifted to
// socket scale. When a socket is condemned, its resident set (the pooled
// page offsets its DRAM caches hold, via pool.ResidentPooled) is snapshot
// once; each epoch a bounded batch of pages is copied — a read on the
// victim paired with a write on the page's new owner, issued together like
// rebuild's paired ops, the write's arrival carrying the page across the
// interconnect. Copies are best-effort occupancy traffic, exactly like
// rebuild: a read the victim's quarantined members refuse counts as a
// migrate read miss (typed, attributed), it is not retried — the
// durability story is the conservation gate (no acked write is ever
// dropped; foreground rerouting is what preserves service), the migration
// models the traffic and its interference.
//
// Note the fabric's address model makes re-homed chunks alias the
// survivor's own local offsets (local offset is preserved across
// re-homing). The simulator models placement, occupancy and timing — not
// stored contents — so aliasing costs nothing here; a production fabric
// would remap into free extents at this point in the protocol.
package numa

import (
	"nvdimmc/internal/pool"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/openloop"
)

// migPageSize is the migration transfer unit — the management page, same
// as the rebuild engine's unit.
const migPageSize = 4096

// migJob is one socket evacuation in progress.
type migJob struct {
	victim      int
	pages       []int64 // victim-local page offsets (fabric-span-local)
	next        int     // cursor into pages
	outstanding int     // in-flight paired ops (reads + writes)
	readMiss    int     // victim reads refused (quarantined members, shed)
	writeFail   int     // survivor writes refused
}

// migOp is one half of a paired page copy, keyed by pool request ID in the
// owning socket's mig map.
type migOp struct {
	job   *migJob
	write bool
}

// startMigration snapshots the victim's resident set and queues the job.
// Pages above the fabric span (capacity the pool has but the fabric never
// addressed) cannot hold fabric data and are skipped.
func (f *Fabric) startMigration(victim int) {
	all := f.socks[victim].pool.ResidentPooled()
	pages := all[:0]
	for _, off := range all {
		if off+migPageSize <= f.span {
			pages = append(pages, off)
		}
	}
	f.ctr.Add("mig-pages-planned", uint64(len(pages)))
	f.jobs = append(f.jobs, &migJob{victim: victim, pages: pages})
}

// issueMigrations advances every job by up to MigratePagesPerEpoch pages at
// the boundary, before the pools step — rate-limited so evacuation shares
// the epoch with foreground traffic instead of monopolizing it (the
// migration-interference histogram measures exactly this contention).
func (f *Fabric) issueMigrations() {
	for _, j := range f.jobs {
		budget := f.Cfg.MigratePagesPerEpoch
		for budget > 0 && j.next < len(j.pages) {
			off := j.pages[j.next]
			j.next++
			budget--
			// The page's fabric address lies under the victim's own logical
			// span; its current owner is wherever re-homing sent that chunk.
			dst := f.ownerOf(int64(j.victim)*f.span + off)
			f.migSubmit(j, j.victim, off, false, f.now)
			at := f.links.xfer(j.victim, dst, migPageSize, f.now)
			f.migSubmit(j, dst, off, true, at)
			f.ctr.Inc("mig-pages")
		}
	}
}

// migSubmit issues one migration half-op directly to a socket's pool
// (bypassing the fabric's foreground dispatch — migration deliberately
// reads from an Evacuating victim). A synchronous refusal — admission shed
// on a loaded survivor, typed fast-fail on a dead victim — is folded into
// the job's miss counters at once.
func (f *Fabric) migSubmit(j *migJob, sock int, off int64, write bool, at sim.Duration) {
	id, err := f.socks[sock].pool.Submit(openloop.Request{
		Arrival: at,
		Socket:  sock,
		Off:     off,
		Len:     migPageSize,
		Write:   write,
	})
	if err != nil {
		f.migMiss(j, write)
		return
	}
	j.outstanding++
	f.socks[sock].mig[id] = &migOp{job: j, write: write}
}

// migDone folds one asynchronous migration completion into its job.
func (f *Fabric) migDone(mo *migOp, c pool.Completion) {
	mo.job.outstanding--
	if c.Outcome != pool.OutcomeCompleted {
		f.migMiss(mo.job, mo.write)
	}
}

func (f *Fabric) migMiss(j *migJob, write bool) {
	if write {
		j.writeFail++
		f.ctr.Inc("mig-write-fail")
	} else {
		j.readMiss++
		f.ctr.Inc("mig-read-miss")
	}
}

// sweepMigrations retires finished jobs after collection: all pages issued
// and no op in flight means the victim is fully Evacuated.
func (f *Fabric) sweepMigrations() {
	keep := f.jobs[:0]
	for _, j := range f.jobs {
		if j.next >= len(j.pages) && j.outstanding == 0 {
			f.socks[j.victim].health.state = SocketEvacuated
			f.ctr.Inc("socket-evacuated")
			continue
		}
		keep = append(keep, j)
	}
	f.jobs = keep
}
