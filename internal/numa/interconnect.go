// Cross-socket interconnect: the METICULOUS approach — emulate remote
// memory by injecting configurable latency and bandwidth rather than
// simulating link microarchitecture. Each directed (src, dst) link carries
// a one-way latency and a bandwidth modeled as deterministic queueing on a
// busy-until horizon: a transfer serializes behind the link's previous
// transfers, occupies bytes/bandwidth of wire time, then lands one latency
// later. All arithmetic is in durations relative to the fabric origin and
// mutates only at epoch boundaries (dispatch/collect), so the model is
// deterministic at any worker count.
package numa

import "nvdimmc/internal/sim"

type link struct {
	lat  sim.Duration
	bw   int64        // bytes per simulated second
	busy sim.Duration // wire busy-until horizon, fabric-relative
}

type interconnect struct {
	n     int
	links []link // src*n + dst; diagonal unused
}

func newInterconnect(n int, lat sim.Duration, bw int64) *interconnect {
	ic := &interconnect{n: n, links: make([]link, n*n)}
	for i := range ic.links {
		ic.links[i] = link{lat: lat, bw: bw}
	}
	return ic
}

// xfer models one transfer of bytes from src to dst starting no earlier
// than at, and returns the arrival instant. Local transfers (src == dst)
// are free: the fabric only charges the wire for actual socket crossings.
func (ic *interconnect) xfer(src, dst, bytes int, at sim.Duration) sim.Duration {
	if src == dst {
		return at
	}
	l := &ic.links[src*ic.n+dst]
	start := at
	if l.busy > start {
		start = l.busy
	}
	tx := sim.Duration(int64(bytes) * int64(sim.Second) / l.bw)
	if tx <= 0 {
		tx = 1 // never zero wire time: keeps busy horizons strictly advancing
	}
	l.busy = start + tx
	return start + tx + l.lat
}

// degrade applies a LinkFault to every link touching socket (both
// directions), or to every link when socket < 0.
func (ic *interconnect) degrade(socket, latFactor, bwDivide int) {
	for src := 0; src < ic.n; src++ {
		for dst := 0; dst < ic.n; dst++ {
			if src == dst {
				continue
			}
			if socket >= 0 && src != socket && dst != socket {
				continue
			}
			l := &ic.links[src*ic.n+dst]
			if latFactor > 1 {
				l.lat *= sim.Duration(latFactor)
			}
			if bwDivide > 1 {
				l.bw /= int64(bwDivide)
				if l.bw < 1 {
					l.bw = 1
				}
			}
		}
	}
}

// applyLinkFaults fires every scheduled LinkFault whose epoch boundary
// this is, in schedule order.
func (f *Fabric) applyLinkFaults() {
	for _, lf := range f.Cfg.LinkFaults {
		if lf.Epoch == f.epochs {
			f.links.degrade(lf.Socket, lf.LatFactor, lf.BWDivide)
			f.ctr.Inc("link-degraded")
		}
	}
}
