package numa

import (
	"fmt"

	"nvdimmc/internal/metrics"
	"nvdimmc/internal/pool"
)

// SocketStats is one socket's end-of-run view.
type SocketStats struct {
	State  SocketState
	Reason string
	Pool   pool.Stats
}

// Stats is the fabric's end-of-run aggregate.
type Stats struct {
	// Lat holds local foreground completions; LatRemote those that crossed
	// the interconnect at least once; LatMigrate foreground completions
	// that landed while a migration ran (the interference histogram).
	Lat        *metrics.Histogram
	LatRemote  *metrics.Histogram
	LatMigrate *metrics.Histogram
	// Ctr folds the fabric's own counters with every socket's pool counters
	// under an "s<i>/" prefix.
	Ctr *metrics.Counters

	Submitted, Completed, Failed   uint64
	Shed, Expired, Throttled       uint64
	CompletedLate                  uint64
	WritesIn, WritesAcked          uint64
	WritesFailed, WritesShed       uint64
	WritesExpired, WritesThrottled uint64

	// PostEvacSubmissions counts foreground pool submissions that reached a
	// socket at or past Evacuating — structurally zero (see dispatch).
	PostEvacSubmissions uint64
	RemoteRequests      uint64
	ChunksRehomed       uint64
	MigPages            uint64
	MigReadMiss         uint64
	MigWriteFail        uint64

	Epochs       int
	FirstFailure error
	PerSocket    []SocketStats
}

// Stats assembles the aggregate; boundary-only like everything else.
func (f *Fabric) Stats() Stats {
	s := Stats{
		Lat:                 f.lat,
		LatRemote:           f.latRemote,
		LatMigrate:          f.latMigrate,
		Ctr:                 metrics.NewCounters(),
		Submitted:           f.submitted,
		Completed:           f.completed,
		Failed:              f.failed,
		Shed:                f.shed,
		Expired:             f.expired,
		Throttled:           f.throttled,
		CompletedLate:       f.completedLate,
		WritesIn:            f.writesIn,
		WritesAcked:         f.writesAck,
		WritesFailed:        f.writesFailed,
		WritesShed:          f.writesShed,
		WritesExpired:       f.writesExpired,
		WritesThrottled:     f.writesThrottled,
		PostEvacSubmissions: f.postEvacSubmissions,
		RemoteRequests:      f.ctr.Get("remote-requests"),
		ChunksRehomed:       f.ctr.Get("chunks-rehomed"),
		MigPages:            f.ctr.Get("mig-pages"),
		MigReadMiss:         f.ctr.Get("mig-read-miss"),
		MigWriteFail:        f.ctr.Get("mig-write-fail"),
		Epochs:              f.epochs,
		FirstFailure:        f.firstFailure,
	}
	s.Ctr.Merge(f.ctr)
	for si, sock := range f.socks {
		ps := sock.pool.Stats()
		s.Ctr.MergePrefixed(fmt.Sprintf("s%d/", si), ps.Ctr)
		s.PerSocket = append(s.PerSocket, SocketStats{
			State:  sock.health.state,
			Reason: sock.health.reason,
			Pool:   ps,
		})
	}
	return s
}

// CheckHealth verifies the fabric's conservation invariants and every
// socket pool's own, victims included — a condemned socket must still
// account for every request it ever accepted:
//
//   - every submitted request reached exactly one terminal outcome;
//   - every admitted write acked or typed-terminal (zero acked-write loss);
//   - no untyped failure, no post-evacuation submission;
//   - no piece stranded in retry backoff or pending maps, no migration
//     still running, no orphaned pool completion.
func (f *Fabric) CheckHealth() error {
	if f.terminal() != f.submitted {
		return fmt.Errorf("numa: %d of %d requests unaccounted (completed %d + failed %d + shed %d + expired %d + throttled %d)",
			f.submitted-f.terminal(), f.submitted, f.completed, f.failed, f.shed, f.expired, f.throttled)
	}
	if f.writesAck+f.writesFailed+f.writesShed+f.writesExpired+f.writesThrottled != f.writesIn {
		return fmt.Errorf("numa: %d writes admitted but %d acked + %d typed-failed + %d shed + %d expired + %d throttled (acked-write loss)",
			f.writesIn, f.writesAck, f.writesFailed, f.writesShed, f.writesExpired, f.writesThrottled)
	}
	if f.untypedFailures != 0 {
		return fmt.Errorf("numa: %d requests failed without a typed error", f.untypedFailures)
	}
	if f.postEvacSubmissions != 0 {
		return fmt.Errorf("numa: %d foreground submissions reached an evacuating socket", f.postEvacSubmissions)
	}
	if n := f.ctr.Get("orphan-completions"); n != 0 {
		return fmt.Errorf("numa: %d pool completions matched no fabric op", n)
	}
	if len(f.retries) != 0 {
		return fmt.Errorf("numa: %d pieces stranded in retry backoff", len(f.retries))
	}
	if len(f.jobs) != 0 {
		return fmt.Errorf("numa: %d migration jobs still active", len(f.jobs))
	}
	for si, s := range f.socks {
		if len(s.pend) != 0 || len(s.mig) != 0 {
			return fmt.Errorf("numa: socket %d left %d foreground + %d migration ops pending",
				si, len(s.pend), len(s.mig))
		}
		if err := s.pool.CheckHealth(); err != nil {
			return fmt.Errorf("numa: socket %d (%s): %w", si, s.health.state, err)
		}
	}
	return nil
}
