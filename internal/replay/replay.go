package replay

import (
	"fmt"
	"io"

	"nvdimmc/internal/pool"
	"nvdimmc/internal/workload/openloop"
)

// Stats describes one replay drive.
type Stats struct {
	// Ops is how many trace records were submitted to the plane.
	Ops int
	// Retimed counts records whose arrival the reader clamped up to its
	// predecessor to keep the stream non-decreasing.
	Retimed int
}

// Drive replays up to limit records (limit <= 0: the whole trace) from r
// through p's request plane and returns once every admitted request reached
// a terminal outcome.
//
// Determinism contract: a trace fixes each record's arrival instant, and
// the plane re-times that instant onto an epoch boundary — an arrival is
// admitted at the first boundary at or after it, the same single-threaded
// instant at any worker count (DESIGN.md §9/§11). Everything downstream of
// admission (dispatch, deadlines, retries, QoS) already keys off boundary
// state only, so a replayed run is byte-identical at 1 or N workers and
// with the lookahead scheduler on or off — and byte-identical to the live
// run the trace was captured from, because capture records exactly the
// stream the live plane admitted. Wall-clock jitter in the capture source
// (a network service under real concurrent clients) lands in the trace as
// slightly different arrival instants, but once written the trace is the
// truth: every replay of it is exact.
//
// Records that address outside the pool (a trace captured on a larger
// socket) fail the drive before submission — replay refuses to silently
// wrap or truncate offsets.
func Drive(p *pool.Pool, r *Reader, limit int) (Stats, error) {
	var st Stats
	var rdErr error
	capacity := p.Capacity()
	err := p.Run(func() (openloop.Request, bool) {
		if limit > 0 && st.Ops >= limit {
			return openloop.Request{}, false
		}
		q, err := r.Next()
		if err != nil {
			if err != io.EOF {
				rdErr = err
			}
			return openloop.Request{}, false
		}
		if q.Off+int64(q.Len) > capacity {
			rdErr = fmt.Errorf("replay: record %d addresses [%d, %d) beyond pool capacity %d — trace captured on a larger socket?",
				r.Records(), q.Off, q.Off+int64(q.Len), capacity)
			return openloop.Request{}, false
		}
		st.Ops++
		return q, true
	})
	st.Retimed = r.Retimed()
	if rdErr != nil {
		return st, rdErr
	}
	if err != nil {
		return st, fmt.Errorf("replay: drive: %w", err)
	}
	return st, nil
}
