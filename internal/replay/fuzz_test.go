package replay

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/openloop"
)

// fuzzTrace encodes reqs in the given format for the seed corpus.
func fuzzTrace(f Format, reqs ...openloop.Request) []byte {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, f)
	if err != nil {
		panic(err)
	}
	for _, r := range reqs {
		if err := w.Record(r); err != nil {
			panic(err)
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzTraceDecode throws arbitrary bytes at the trace reader — the decoder
// is the service's parse surface for externally-authored traces — and
// checks its closure properties:
//
//   - decode never panics and never loops past the input;
//   - every failure is typed: errors.Is(err, ErrMalformed), so callers can
//     tell broken traces from transport errors;
//   - every record that does decode is one the plane could admit
//     (validate passes, arrivals non-decreasing);
//   - whatever decodes round-trips: re-encoding the accepted records as a
//     binary trace and re-reading them reproduces them exactly.
func FuzzTraceDecode(f *testing.F) {
	reqs := []openloop.Request{
		{Arrival: 0, Off: 0, Len: 4096},
		{Arrival: 700 * sim.Nanosecond, Off: 12 * 4096, Len: 4096, Write: true},
		{Arrival: 2 * sim.Microsecond, Off: 777, Len: 9000, Tenant: 3,
			Deadline: 1500 * sim.Microsecond, Write: true},
	}
	f.Add(fuzzTrace(Binary, reqs...))
	f.Add(fuzzTrace(Text, reqs...))
	f.Add([]byte("NVDCTRC1"))                        // empty binary trace
	f.Add([]byte("NVDCTRC"))                         // short of the magic: text
	f.Add([]byte("# nvdimmc-trace v1 text\n"))       // empty text trace
	f.Add([]byte("0 r 0 4096 0 0\n10 w 4096 1 2 3")) // headerless text
	f.Add([]byte("NVDCTRC1\x01\xff\xff\xff\xff"))    // truncated varint
	f.Add([]byte("5 q 1 2 3 4\n"))                   // bad op letter
	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("NewReader: untyped error %v", err)
			}
			return
		}
		var got []openloop.Request
		var prev sim.Duration
		for i := 0; ; i++ {
			if i > len(data)+1 {
				t.Fatalf("decoded %d records from %d input bytes: reader not consuming", i, len(data))
			}
			req, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrMalformed) {
					t.Fatalf("Next: untyped error %v", err)
				}
				return
			}
			if verr := validate(req); verr != nil {
				t.Fatalf("Next returned an inadmissible record: %v", verr)
			}
			if req.Arrival < prev {
				t.Fatalf("record %d: arrival %v regressed below %v", i, req.Arrival, prev)
			}
			prev = req.Arrival
			got = append(got, req)
		}

		// Round-trip: accepted records are already valid and time-ordered,
		// so the binary writer must take them verbatim and reproduce them.
		enc := fuzzTrace(Binary, got...)
		rd2, err := NewReader(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		back, err := ReadAll(rd2)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if len(back) != len(got) {
			t.Fatalf("round-trip: %d records in, %d out", len(got), len(back))
		}
		for i := range got {
			if back[i] != got[i] {
				t.Fatalf("round-trip record %d: %+v != %+v", i, back[i], got[i])
			}
		}
	})
}
