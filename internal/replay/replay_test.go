package replay

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"nvdimmc/internal/core"
	"nvdimmc/internal/pool"
	"nvdimmc/internal/workload/openloop"
)

// testMember is the shrunken pool-test module shape: capacity close to its
// cache so runs stay fast.
func testMember() core.Config {
	cfg := core.DefaultConfig()
	cfg.CacheBytes = 1 << 20
	cfg.NAND.BlocksPerDie = 32
	cfg.NAND.PagesPerBlock = 16
	return cfg
}

func testPool(t *testing.T, workers int, lockstep bool) *pool.Pool {
	t.Helper()
	p, err := pool.New(pool.Config{
		Channels:         3,
		DIMMsPerChannel:  1,
		Interleave:       4096,
		Member:           testMember(),
		Workers:          workers,
		Seed:             7,
		PrefillPages:     -1,
		DisableLookahead: lockstep,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// snapshot serializes every externally observable pool stat; two runs are
// byte-identical iff their snapshots match.
func snapshot(s pool.Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "req=%d/%d wracked=%d epochs=%d heldpeak=%d shed=%d expired=%d failed=%d late=%d\n",
		s.Completed, s.Submitted, s.WritesAcked, s.Epochs, s.HeldPeak,
		s.Shed, s.Expired, s.Failed, s.CompletedLate)
	fmt.Fprintf(&b, "lat n=%d mean=%v min=%v max=%v p50=%v p99=%v p999=%v\n",
		s.Lat.Count(), s.Lat.Mean(), s.Lat.Min(), s.Lat.Max(),
		s.Lat.Percentile(50), s.Lat.Percentile(99), s.Lat.Percentile(99.9))
	fmt.Fprintf(&b, "meter ops=%d bytes=%d elapsed=%v\n", s.Meter.Ops(), s.Meter.Bytes(), s.Meter.Elapsed())
	fmt.Fprintf(&b, "ctr %s\n", s.Ctr.String())
	for i, ch := range s.PerChannel {
		fmt.Fprintf(&b, "ch%d n=%d p99=%v bytes=%d heldHW=%d queueHW=%d svc=%v\n",
			i, ch.Lat.Count(), ch.Lat.Percentile(99), ch.Meter.Bytes(),
			ch.HeldHW, ch.QueueHW, ch.ServiceEWMA)
	}
	return b.String()
}

// captureRun drives count openloop requests through a live pool while the
// capture hook records them into a trace of the given format, returning the
// trace bytes and the live run's snapshot.
func captureRun(t *testing.T, f Format, count int) ([]byte, string) {
	t.Helper()
	p := testPool(t, 1, false)
	gen, err := openloop.New(openloop.Config{
		Seed:       42,
		RatePerSec: 3e5, // fast enough to queue, slow enough to interleave epochs
		Tenants: []openloop.Tenant{
			{Name: "kv", Dist: openloop.Zipfian, Weight: 3, ReadPct: 80, Footprint: p.CachedFootprint() / 2},
			{Name: "log", Dist: openloop.Uniform, Weight: 1, ReadPct: -1,
				Footprint: p.CachedFootprint() / 2, Offset: p.CachedFootprint() / 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, f)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(w)
	gen.SetCapture(rec.Record)
	if err := p.RunOpenLoop(gen, count); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if rec.Records() != count {
		t.Fatalf("captured %d of %d", rec.Records(), count)
	}
	return buf.Bytes(), snapshot(p.Stats())
}

// TestReplayMatchesLiveRun is the capture fidelity claim: replaying a
// captured trace reproduces the live run's stats byte for byte, and does so
// at 1, 2 and 8 workers, lockstep and lookahead, in both trace formats.
func TestReplayMatchesLiveRun(t *testing.T) {
	const count = 250
	for _, f := range []Format{Text, Binary} {
		trace, live := captureRun(t, f, count)
		for _, lockstep := range []bool{false, true} {
			for _, workers := range []int{1, 2, 8} {
				p := testPool(t, workers, lockstep)
				rd, err := NewReader(bytes.NewReader(trace))
				if err != nil {
					t.Fatal(err)
				}
				st, err := Drive(p, rd, 0)
				if err != nil {
					t.Fatalf("%v lockstep=%v workers=%d: %v", f, lockstep, workers, err)
				}
				if st.Ops != count || st.Retimed != 0 {
					t.Fatalf("%v: drove %d ops (%d retimed), want %d/0", f, st.Ops, st.Retimed, count)
				}
				if err := p.CheckHealth(); err != nil {
					t.Fatal(err)
				}
				if got := snapshot(p.Stats()); got != live {
					t.Fatalf("%v lockstep=%v workers=%d: replay diverged from live run:\n--- live ---\n%s--- replay ---\n%s",
						f, lockstep, workers, live, got)
				}
			}
		}
	}
}

// TestDriveLimit bounds a replay mid-trace.
func TestDriveLimit(t *testing.T) {
	trace, _ := captureRun(t, Binary, 100)
	p := testPool(t, 1, false)
	rd, err := NewReader(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	st, err := Drive(p, rd, 40)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != 40 {
		t.Fatalf("drove %d, want 40", st.Ops)
	}
	if err := p.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Submitted != 40 {
		t.Fatalf("submitted %d, want 40", s.Submitted)
	}
}

// TestDriveRejectsOutOfRange: a trace addressing beyond the pool fails the
// drive typed instead of wrapping.
func TestDriveRejectsOutOfRange(t *testing.T) {
	p := testPool(t, 1, false)
	trace := textHeader + "\n" +
		fmt.Sprintf("0 r %d 4096 0 0\n", p.Capacity())
	rd, err := NewReader(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drive(p, rd, 0); err == nil {
		t.Fatal("out-of-range trace replayed cleanly")
	}
}

// TestDriveDeadlines: a trace carrying deadlines exercises the plane's
// expiry path under replay — outcomes must still conserve.
func TestDriveDeadlines(t *testing.T) {
	p := testPool(t, 2, false)
	var b strings.Builder
	b.WriteString(textHeader + "\n")
	// A burst of same-instant arrivals with a 1 ns deadline: most expire.
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&b, "0 w %d 4096 0 1000\n", int64(i)*4096)
	}
	rd, err := NewReader(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	st, err := Drive(p, rd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != 64 {
		t.Fatalf("drove %d, want 64", st.Ops)
	}
	if err := p.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Completed+s.Expired+s.Shed+s.Failed != 64 {
		t.Fatalf("outcomes %d+%d+%d+%d != 64", s.Completed, s.Expired, s.Shed, s.Failed)
	}
	if s.Expired == 0 && s.CompletedLate == 0 {
		t.Fatal("1ns deadlines produced neither expiries nor late completions")
	}
}
