package replay

import (
	"fmt"

	"nvdimmc/internal/workload/openloop"
)

// Recorder is the capture sink: it tees a live request stream into a trace
// Writer, from whatever is emitting requests — an openloop generator (via
// Generator.SetCapture), the network service's submission loop, or any
// other single-goroutine request source. Write errors are latched rather
// than surfaced per record, because capture hooks have no error channel;
// Close returns the first one.
type Recorder struct {
	w   Writer
	n   int
	err error
}

// NewRecorder wraps a trace Writer as a capture sink.
func NewRecorder(w Writer) *Recorder { return &Recorder{w: w} }

// Record persists one request. It is the openloop capture-hook shape, so
// a generator records with gen.SetCapture(rec.Record).
func (r *Recorder) Record(q openloop.Request) {
	if r.err != nil {
		return
	}
	if err := r.w.Record(q); err != nil {
		r.err = fmt.Errorf("replay: capture record %d: %w", r.n+1, err)
		return
	}
	r.n++
}

// Records counts requests captured so far.
func (r *Recorder) Records() int { return r.n }

// Err returns the latched write error, if any.
func (r *Recorder) Err() error { return r.err }

// Close flushes the underlying Writer and returns the first error seen.
func (r *Recorder) Close() error {
	if err := r.w.Close(); err != nil && r.err == nil {
		r.err = err
	}
	return r.err
}
