package replay

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/openloop"
)

// sampleReqs exercises every encoding branch: aligned and unaligned
// offsets, default and odd lengths, tenant 0 and nonzero, deadlines on and
// off, reads and writes, repeated arrivals.
func sampleReqs() []openloop.Request {
	us := sim.Microsecond
	return []openloop.Request{
		{Arrival: 0, Off: 0, Len: 4096, Tenant: 0, Write: false},
		{Arrival: 3 * us, Off: 8192, Len: 4096, Tenant: 1, Write: true},
		{Arrival: 3 * us, Off: 12345, Len: 100, Tenant: 2, Write: false, Deadline: 50 * us},
		{Arrival: 10 * us, Off: 1 << 40, Len: 65536, Tenant: 0, Write: true, Deadline: sim.Second},
		{Arrival: 10*us + 1, Off: 4096, Len: 1, Tenant: 17, Write: false},
	}
}

func roundTrip(t *testing.T, f Format, reqs []openloop.Request) []openloop.Request {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if err := w.Record(r); err != nil {
			t.Fatalf("%v record: %v", f, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Format() != f {
		t.Fatalf("sniffed %v, wrote %v", rd.Format(), f)
	}
	got, err := ReadAll(rd)
	if err != nil {
		t.Fatalf("%v read: %v", f, err)
	}
	return got
}

func TestRoundTripBothFormats(t *testing.T) {
	want := sampleReqs()
	for _, f := range []Format{Text, Binary} {
		got := roundTrip(t, f, want)
		if len(got) != len(want) {
			t.Fatalf("%v: %d records, want %d", f, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v record %d: got %+v want %+v", f, i, got[i], want[i])
			}
		}
	}
}

// TestBinarySmallerThanText: the compact format must actually be compact on
// the common shape (4 KB aligned ops, tenant 0/1, no deadline).
func TestBinarySmallerThanText(t *testing.T) {
	var reqs []openloop.Request
	for i := 0; i < 1000; i++ {
		reqs = append(reqs, openloop.Request{
			Arrival: sim.Duration(i) * sim.Microsecond,
			Off:     int64(i%64) * 4096,
			Len:     4096,
			Tenant:  i % 2,
			Write:   i%3 == 0,
		})
	}
	size := map[Format]int{}
	for _, f := range []Format{Text, Binary} {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, f)
		for _, r := range reqs {
			if err := w.Record(r); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		size[f] = buf.Len()
	}
	if size[Binary]*4 > size[Text] {
		t.Fatalf("binary %d B vs text %d B: want at least 4x compaction", size[Binary], size[Text])
	}
}

// TestWriterRetimesRegressions: a source whose clock regresses (wall-clock
// capture jitter) is clamped to non-decreasing arrivals, counted, and the
// trace round-trips with the clamped values.
func TestWriterRetimesRegressions(t *testing.T) {
	reqs := []openloop.Request{
		{Arrival: 10 * sim.Microsecond, Off: 0, Len: 4096},
		{Arrival: 5 * sim.Microsecond, Off: 4096, Len: 4096}, // regresses
		{Arrival: 20 * sim.Microsecond, Off: 8192, Len: 4096},
	}
	for _, f := range []Format{Text, Binary} {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, f)
		for _, r := range reqs {
			if err := w.Record(r); err != nil {
				t.Fatal(err)
			}
		}
		if w.Retimed() != 1 {
			t.Fatalf("%v: retimed %d, want 1", f, w.Retimed())
		}
		w.Close()
		rd, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadAll(rd)
		if err != nil {
			t.Fatal(err)
		}
		if got[1].Arrival != 10*sim.Microsecond {
			t.Fatalf("%v: clamped arrival %v, want 10us", f, got[1].Arrival)
		}
	}
}

// TestReaderRetimesHandEditedText: a text trace edited into a regression is
// clamped on the way out (the writer never emits one, but readers must not
// trust that).
func TestReaderRetimesHandEditedText(t *testing.T) {
	trace := textHeader + "\n" +
		"1000000 r 0 4096 0 0\n" +
		"500 w 4096 4096 0 0\n"
	rd, err := NewReader(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(rd)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].Arrival != got[0].Arrival {
		t.Fatalf("regressed arrival not clamped: %v vs %v", got[1].Arrival, got[0].Arrival)
	}
	if rd.Retimed() != 1 {
		t.Fatalf("retimed %d, want 1", rd.Retimed())
	}
}

func TestTextAcceptsCommentsAndWords(t *testing.T) {
	trace := "# a headerless, hand-written trace\n" +
		"\n" +
		"0 read 0 4096 0 0\n" +
		"100 write 4096 512 3 777\n"
	rd, err := NewReader(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(rd)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[1].Write || got[1].Len != 512 || got[1].Tenant != 3 {
		t.Fatalf("parsed %+v", got)
	}
}

func TestMalformedTraces(t *testing.T) {
	cases := map[string]string{
		"fields":  textHeader + "\n1 r 0 4096\n",
		"op":      textHeader + "\n1 x 0 4096 0 0\n",
		"number":  textHeader + "\n1 r zero 4096 0 0\n",
		"neglen":  textHeader + "\n1 r 0 -5 0 0\n",
		"zerolen": textHeader + "\n1 r 0 0 0 0\n",
	}
	for name, trace := range cases {
		rd, err := NewReader(strings.NewReader(trace))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := ReadAll(rd); err == nil {
			t.Fatalf("%s: malformed trace read cleanly", name)
		}
	}
}

func TestTruncatedBinary(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Binary)
	for _, r := range sampleReqs() {
		if err := w.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	full := buf.Bytes()
	// Every strict prefix inside the record stream must fail loudly or end
	// cleanly exactly at a record boundary — never invent a record.
	rd, err := NewReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReadAll(rd)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(binMagic) + 1; cut < len(full); cut++ {
		rd, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadAll(rd)
		if err == nil && len(got) >= len(want) {
			t.Fatalf("cut %d: truncated trace yielded all %d records", cut, len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cut %d: record %d corrupted: %+v vs %+v", cut, i, got[i], want[i])
			}
		}
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	for _, f := range []Format{Text, Binary} {
		w, _ := NewWriter(io.Discard, f)
		if err := w.Record(openloop.Request{Off: -1, Len: 4096}); err == nil {
			t.Fatalf("%v: negative offset accepted", f)
		}
		if err := w.Record(openloop.Request{Len: 0}); err == nil {
			t.Fatalf("%v: zero length accepted", f)
		}
	}
}

func TestRecorderLatchesErrors(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Binary)
	rec := NewRecorder(w)
	rec.Record(openloop.Request{Off: 0, Len: 4096})
	rec.Record(openloop.Request{Off: -1, Len: 4096}) // invalid: latches
	rec.Record(openloop.Request{Off: 4096, Len: 4096})
	if rec.Records() != 1 {
		t.Fatalf("recorded %d, want 1 (stop at first error)", rec.Records())
	}
	if rec.Err() == nil || rec.Close() == nil {
		t.Fatal("latched error not surfaced")
	}
}

func TestEmptyTrace(t *testing.T) {
	if _, err := NewReader(strings.NewReader("")); err == nil {
		t.Fatal("empty trace opened cleanly")
	}
	// A header-only trace is a valid empty stream.
	rd, err := NewReader(strings.NewReader(textHeader + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(rd)
	if err != nil || len(got) != 0 {
		t.Fatalf("header-only trace: %v, %d records", err, len(got))
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Binary)
	w.Close()
	rd, err = NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err = ReadAll(rd)
	if err != nil || len(got) != 0 {
		t.Fatalf("magic-only trace: %v, %d records", err, len(got))
	}
}

// TestFormatString pins the wire names benchmarks and CLI flags print.
func TestFormatString(t *testing.T) {
	for _, tc := range []struct {
		f    Format
		want string
	}{
		{Text, "text"},
		{Binary, "binary"},
		{Format(7), "Format(7)"},
	} {
		if got := tc.f.String(); got != tc.want {
			t.Errorf("Format(%d).String() = %q, want %q", int(tc.f), got, tc.want)
		}
	}
}
