// Package replay is the trace front-end over the pool's request plane: it
// persists request streams (from the open-loop generators, the network
// service, or external tools) as traces, and replays them deterministically.
//
// Two encodings cover the two audiences. The text format is fio-style — one
// whitespace-separated record per line, absolute picosecond arrivals, an `r`
// or `w` op letter — greppable, diffable, and trivial for external tooling
// to emit. The binary format is the compact archival form: varint-encoded
// records with delta-compressed arrival timestamps, page-number (LPN)
// offset compression for the common 4 KB-aligned case, and elided fields
// for the defaults (4 KB length, tenant 0, no deadline), so a captured
// multi-million-op workload stores in a few bytes per op.
//
// Both encodings carry the same record: arrival instant, op direction,
// offset, length, tenant index and per-request deadline budget — exactly
// openloop.Request, which is also what pool.Submit admits. A trace is
// therefore a serialized request stream, and replaying one through the
// plane (replay.go) re-times each arrival onto the epoch boundary the
// plane's admission quantizes to, which is what keeps a replayed run
// byte-identical at any worker count and under lookahead.
package replay

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/openloop"
)

// ErrMalformed wraps every decode failure a Reader can surface — truncated
// varints, bad field counts, invalid records, non-numeric text fields —
// so callers (and the fuzz harness) can separate "this trace is broken"
// from transport errors with errors.Is.
var ErrMalformed = errors.New("replay: malformed trace")

// Format selects a trace encoding.
type Format int

const (
	// Text is the fio-style line format: `arrival_ps op off len tenant
	// deadline_ps`, one record per line, `#` comments, human-readable.
	Text Format = iota
	// Binary is the compact format: an 8-byte magic then varint records
	// with delta timestamps and default-elided fields.
	Binary
)

func (f Format) String() string {
	switch f {
	case Text:
		return "text"
	case Binary:
		return "binary"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

const (
	// textHeader opens every text trace; the reader also accepts headerless
	// text whose first line parses as a record (external tools cut corners).
	textHeader = "# nvdimmc-trace v1 text"
	// binMagic opens every binary trace; 8 bytes, no text line starts with it.
	binMagic = "NVDCTRC1"
	// pageSize is the LPN compression granularity (the system page).
	pageSize = 4096

	// Binary record flag bits.
	flagWrite    = 1 << 0 // op is a write
	flagDeadline = 1 << 1 // a deadline field follows
	flagTenant   = 1 << 2 // a tenant field follows (else tenant 0)
	flagLPN      = 1 << 3 // offset is page-aligned and encoded as off/4096
	flagLen      = 1 << 4 // a length field follows (else the 4096 default)
)

// A Writer persists a request stream as a trace. Record order is trace
// order; Close flushes. Writers are single-goroutine, like the plane.
type Writer interface {
	Record(openloop.Request) error
	// Retimed counts records whose arrival preceded the previous record's
	// and was clamped up to it: traces are non-decreasing by construction
	// (the binary delta encoding requires it, and replay re-times onto
	// epoch boundaries anyway, so a clamp never moves an admission).
	Retimed() int
	Close() error
}

// NewWriter returns a Writer in the requested encoding over w. The caller
// owns w; Close flushes buffered output but does not close w.
func NewWriter(w io.Writer, f Format) (Writer, error) {
	switch f {
	case Text:
		return newTextWriter(w)
	case Binary:
		return newBinaryWriter(w)
	}
	return nil, fmt.Errorf("replay: unknown trace format %d", int(f))
}

// validate rejects records no plane could admit, before they poison a trace.
func validate(r openloop.Request) error {
	if r.Off < 0 || r.Len <= 0 || r.Tenant < 0 || r.Arrival < 0 || r.Deadline < 0 {
		return fmt.Errorf("replay: invalid record off=%d len=%d tenant=%d arrival=%d deadline=%d",
			r.Off, r.Len, r.Tenant, int64(r.Arrival), int64(r.Deadline))
	}
	return nil
}

// textWriter emits the fio-style line format.
type textWriter struct {
	bw      *bufio.Writer
	prev    sim.Duration
	retimed int
}

func newTextWriter(w io.Writer) (*textWriter, error) {
	tw := &textWriter{bw: bufio.NewWriter(w)}
	if _, err := fmt.Fprintln(tw.bw, textHeader); err != nil {
		return nil, err
	}
	return tw, nil
}

func (t *textWriter) Record(r openloop.Request) error {
	if err := validate(r); err != nil {
		return err
	}
	if r.Arrival < t.prev {
		r.Arrival = t.prev
		t.retimed++
	}
	t.prev = r.Arrival
	op := byte('r')
	if r.Write {
		op = 'w'
	}
	_, err := fmt.Fprintf(t.bw, "%d %c %d %d %d %d\n",
		int64(r.Arrival), op, r.Off, r.Len, r.Tenant, int64(r.Deadline))
	return err
}

func (t *textWriter) Retimed() int { return t.retimed }
func (t *textWriter) Close() error { return t.bw.Flush() }

// binaryWriter emits the compact varint format.
type binaryWriter struct {
	bw      *bufio.Writer
	prev    sim.Duration
	retimed int
	scratch [binary.MaxVarintLen64]byte
}

func newBinaryWriter(w io.Writer) (*binaryWriter, error) {
	bw := &binaryWriter{bw: bufio.NewWriter(w)}
	if _, err := bw.bw.WriteString(binMagic); err != nil {
		return nil, err
	}
	return bw, nil
}

func (b *binaryWriter) uvarint(v uint64) error {
	n := binary.PutUvarint(b.scratch[:], v)
	_, err := b.bw.Write(b.scratch[:n])
	return err
}

func (b *binaryWriter) Record(r openloop.Request) error {
	if err := validate(r); err != nil {
		return err
	}
	if r.Arrival < b.prev {
		r.Arrival = b.prev
		b.retimed++
	}
	delta := uint64(r.Arrival - b.prev)
	b.prev = r.Arrival

	var flags byte
	if r.Write {
		flags |= flagWrite
	}
	if r.Deadline > 0 {
		flags |= flagDeadline
	}
	if r.Tenant > 0 {
		flags |= flagTenant
	}
	off := uint64(r.Off)
	if r.Off%pageSize == 0 {
		flags |= flagLPN
		off = uint64(r.Off / pageSize)
	}
	if r.Len != pageSize {
		flags |= flagLen
	}
	if err := b.bw.WriteByte(flags); err != nil {
		return err
	}
	if err := b.uvarint(delta); err != nil {
		return err
	}
	if err := b.uvarint(off); err != nil {
		return err
	}
	if flags&flagLen != 0 {
		if err := b.uvarint(uint64(r.Len)); err != nil {
			return err
		}
	}
	if flags&flagTenant != 0 {
		if err := b.uvarint(uint64(r.Tenant)); err != nil {
			return err
		}
	}
	if flags&flagDeadline != 0 {
		if err := b.uvarint(uint64(r.Deadline)); err != nil {
			return err
		}
	}
	return nil
}

func (b *binaryWriter) Retimed() int { return b.retimed }
func (b *binaryWriter) Close() error { return b.bw.Flush() }

// Reader streams records out of a trace in either encoding, sniffing the
// format from the first bytes. Arrivals are forced non-decreasing on the
// way out too (a hand-edited text trace can regress mid-file), with clamps
// counted in Retimed.
type Reader struct {
	format  Format
	br      *bufio.Reader
	byteR   io.ByteReader
	prev    sim.Duration
	n       int
	retimed int
	line    int
}

// NewReader sniffs r's encoding and positions before the first record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(binMagic))
	if err != nil && len(head) == 0 {
		return nil, fmt.Errorf("%w: empty trace: %w", ErrMalformed, err)
	}
	rd := &Reader{br: br, byteR: br}
	if string(head) == binMagic {
		rd.format = Binary
		br.Discard(len(binMagic))
		return rd, nil
	}
	rd.format = Text
	return rd, nil
}

// Format reports the sniffed encoding.
func (r *Reader) Format() Format { return r.format }

// Records counts records returned so far.
func (r *Reader) Records() int { return r.n }

// Retimed counts arrivals clamped up to their predecessor while reading.
func (r *Reader) Retimed() int { return r.retimed }

// Next returns the next record, or io.EOF at a clean end of trace. Any
// other error means a malformed or truncated trace, positioned by record
// (binary) or line (text).
func (r *Reader) Next() (openloop.Request, error) {
	var req openloop.Request
	var err error
	if r.format == Binary {
		req, err = r.nextBinary()
	} else {
		req, err = r.nextText()
	}
	if err != nil {
		if err == io.EOF {
			return openloop.Request{}, io.EOF
		}
		return openloop.Request{}, fmt.Errorf("%w: %w", ErrMalformed, err)
	}
	if err := validate(req); err != nil {
		return openloop.Request{}, fmt.Errorf("%w: %w (record %d)", ErrMalformed, err, r.n+1)
	}
	if req.Arrival < r.prev {
		req.Arrival = r.prev
		r.retimed++
	}
	r.prev = req.Arrival
	r.n++
	return req, nil
}

func (r *Reader) nextText() (openloop.Request, error) {
	for {
		r.line++
		line, err := r.br.ReadString('\n')
		if err == io.EOF && line == "" {
			return openloop.Request{}, io.EOF
		}
		if err != nil && err != io.EOF {
			return openloop.Request{}, fmt.Errorf("replay: line %d: %w", r.line, err)
		}
		atEOF := err == io.EOF
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			if atEOF {
				return openloop.Request{}, io.EOF
			}
			continue
		}
		f := strings.Fields(line)
		if len(f) != 6 {
			return openloop.Request{}, fmt.Errorf("replay: line %d: %d fields, want 6 (arrival_ps op off len tenant deadline_ps)", r.line, len(f))
		}
		var req openloop.Request
		nums := [5]int64{}
		for i, fi := range []int{0, 2, 3, 4, 5} {
			v, err := strconv.ParseInt(f[fi], 10, 64)
			if err != nil {
				return openloop.Request{}, fmt.Errorf("replay: line %d field %d: %w", r.line, fi+1, err)
			}
			nums[i] = v
		}
		switch f[1] {
		case "r", "R", "read":
			req.Write = false
		case "w", "W", "write":
			req.Write = true
		default:
			return openloop.Request{}, fmt.Errorf("replay: line %d: op %q, want r|w", r.line, f[1])
		}
		req.Arrival = sim.Duration(nums[0])
		req.Off = nums[1]
		req.Len = int(nums[2])
		req.Tenant = int(nums[3])
		req.Deadline = sim.Duration(nums[4])
		return req, nil
	}
}

func (r *Reader) nextBinary() (openloop.Request, error) {
	flags, err := r.br.ReadByte()
	if err == io.EOF {
		return openloop.Request{}, io.EOF
	}
	if err != nil {
		return openloop.Request{}, fmt.Errorf("replay: record %d: %w", r.n+1, err)
	}
	read := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(r.byteR)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, fmt.Errorf("replay: record %d: truncated %s: %w", r.n+1, what, err)
		}
		return v, nil
	}
	var req openloop.Request
	delta, err := read("arrival delta")
	if err != nil {
		return openloop.Request{}, err
	}
	req.Arrival = r.prev + sim.Duration(delta)
	off, err := read("offset")
	if err != nil {
		return openloop.Request{}, err
	}
	if flags&flagLPN != 0 {
		off *= pageSize
	}
	req.Off = int64(off)
	req.Len = pageSize
	if flags&flagLen != 0 {
		v, err := read("length")
		if err != nil {
			return openloop.Request{}, err
		}
		req.Len = int(v)
	}
	if flags&flagTenant != 0 {
		v, err := read("tenant")
		if err != nil {
			return openloop.Request{}, err
		}
		req.Tenant = int(v)
	}
	if flags&flagDeadline != 0 {
		v, err := read("deadline")
		if err != nil {
			return openloop.Request{}, err
		}
		req.Deadline = sim.Duration(v)
	}
	req.Write = flags&flagWrite != 0
	return req, nil
}

// ReadAll drains every remaining record (tests and small traces; replay
// proper streams through Next).
func ReadAll(r *Reader) ([]openloop.Request, error) {
	var out []openloop.Request
	for {
		req, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, req)
	}
}
