// Package cpolicy is the trace-driven cache-policy simulator behind the
// paper's §VII-B5 claim: "according to our in-house simulation, for the
// TPC-H workloads ... if an LRU replacement policy is used, the DRAM cache
// hit rate of 78.7–99.3% can be achieved as the DRAM cache size is increased
// from 1 GB to 16 GB." It replays page-reference traces against a fully
// associative 4 KB-slot cache under LRC, LRU or CLOCK and reports hit rates.
package cpolicy

import (
	"container/list"
	"fmt"
)

// Policy selects the replacement algorithm.
type Policy int

// Policies under study.
const (
	LRC Policy = iota // FIFO over caching order (the PoC's policy)
	LRU
	Clock
)

func (p Policy) String() string {
	switch p {
	case LRC:
		return "LRC"
	case LRU:
		return "LRU"
	case Clock:
		return "CLOCK"
	default:
		return "policy?"
	}
}

// Result summarizes one simulation.
type Result struct {
	Policy     Policy
	Slots      int
	Accesses   uint64
	Hits       uint64
	ColdMisses uint64
	Evictions  uint64
}

// HitRate returns hits/accesses (0 if no accesses).
func (r Result) HitRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Accesses)
}

// WarmHitRate excludes compulsory (cold) misses from the denominator,
// which is how cache studies usually quote steady-state rates.
func (r Result) WarmHitRate() float64 {
	warm := r.Accesses - r.ColdMisses
	if warm == 0 {
		return 0
	}
	return float64(r.Hits) / float64(warm)
}

func (r Result) String() string {
	return fmt.Sprintf("%v slots=%d: %.1f%% hit (%.1f%% warm)", r.Policy, r.Slots, 100*r.HitRate(), 100*r.WarmHitRate())
}

// Simulator replays a page trace.
type Simulator struct {
	policy Policy
	slots  int

	res Result

	// LRU/LRC state.
	ll  *list.List
	pos map[int64]*list.Element

	// Clock state.
	ring    []int64
	ref     []bool
	present map[int64]int
	hand    int
	n       int

	seen map[int64]bool // for cold-miss classification
}

// New returns a simulator with the given slot count.
func New(p Policy, slots int) *Simulator {
	if slots < 1 {
		panic("cpolicy: need at least one slot")
	}
	s := &Simulator{
		policy: p,
		slots:  slots,
		ll:     list.New(),
		pos:    make(map[int64]*list.Element),
		seen:   make(map[int64]bool),
	}
	s.res.Policy = p
	s.res.Slots = slots
	if p == Clock {
		s.ring = make([]int64, slots)
		s.ref = make([]bool, slots)
		s.present = make(map[int64]int)
		for i := range s.ring {
			s.ring[i] = -1
		}
	}
	return s
}

// Access replays one page reference and reports whether it hit.
func (s *Simulator) Access(page int64) bool {
	s.res.Accesses++
	hit := false
	switch s.policy {
	case Clock:
		hit = s.accessClock(page)
	default:
		hit = s.accessList(page)
	}
	if !hit && !s.seen[page] {
		s.res.ColdMisses++
		s.seen[page] = true
	}
	return hit
}

func (s *Simulator) accessList(page int64) bool {
	if e, ok := s.pos[page]; ok {
		s.res.Hits++
		if s.policy == LRU {
			s.ll.MoveToFront(e)
		}
		// LRC: hits do not change caching order.
		return true
	}
	if s.ll.Len() >= s.slots {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.pos, back.Value.(int64))
		s.res.Evictions++
	}
	s.pos[page] = s.ll.PushFront(page)
	return false
}

func (s *Simulator) accessClock(page int64) bool {
	if i, ok := s.present[page]; ok {
		s.res.Hits++
		s.ref[i] = true
		return true
	}
	// Find a victim slot.
	for {
		if s.ring[s.hand] == -1 {
			break
		}
		if s.ref[s.hand] {
			s.ref[s.hand] = false
			s.hand = (s.hand + 1) % s.slots
			continue
		}
		delete(s.present, s.ring[s.hand])
		s.res.Evictions++
		break
	}
	s.ring[s.hand] = page
	s.ref[s.hand] = true
	s.present[page] = s.hand
	s.hand = (s.hand + 1) % s.slots
	return false
}

// Result returns the accumulated statistics.
func (s *Simulator) Result() Result { return s.res }

// Replay runs a whole trace through a fresh simulator.
func Replay(p Policy, slots int, trace []int64) Result {
	s := New(p, slots)
	for _, pg := range trace {
		s.Access(pg)
	}
	return s.Result()
}

// Sweep replays the trace at several cache sizes (in slots) and returns one
// result per size — the Fig. 11 companion study's shape: hit rate rising
// with cache size, LRU >= LRC for reuse-heavy traces.
func Sweep(p Policy, slotSizes []int, trace []int64) []Result {
	out := make([]Result, 0, len(slotSizes))
	for _, n := range slotSizes {
		out = append(out, Replay(p, n, trace))
	}
	return out
}
