package cpolicy

import (
	"testing"

	"nvdimmc/internal/sim"
)

func TestLRUBasics(t *testing.T) {
	s := New(LRU, 2)
	if s.Access(1) || s.Access(2) {
		t.Fatal("cold accesses hit")
	}
	if !s.Access(1) {
		t.Fatal("resident page missed")
	}
	s.Access(3) // evicts 2 (LRU)
	if s.Access(2) {
		t.Fatal("evicted page hit")
	}
	if !s.Access(3) || !s.Access(2) {
		t.Fatal("wrong victims")
	}
}

func TestLRCIgnoresHits(t *testing.T) {
	s := New(LRC, 2)
	s.Access(1)
	s.Access(2)
	s.Access(1) // hit: must NOT refresh 1's position under LRC
	s.Access(3) // evicts 1 (first cached)
	if s.Access(1) {
		t.Fatal("LRC kept the first-cached page")
	}
}

func TestLRUBeatsLRCOnReuseTrace(t *testing.T) {
	// Hot/cold trace: a small hot set reused between cold streams. LRU
	// keeps the hot set; LRC streams it out — the §VII-B5 motivation.
	var trace []int64
	rng := sim.NewRand(42)
	for i := 0; i < 30000; i++ {
		if rng.Intn(100) < 70 {
			trace = append(trace, rng.Int63n(50)) // hot set: 50 pages
		} else {
			trace = append(trace, 1000+rng.Int63n(100000)) // cold stream
		}
	}
	slots := 200
	lru := Replay(LRU, slots, trace)
	lrc := Replay(LRC, slots, trace)
	if lru.HitRate() <= lrc.HitRate() {
		t.Fatalf("LRU (%.1f%%) not better than LRC (%.1f%%)", 100*lru.HitRate(), 100*lrc.HitRate())
	}
	if lru.HitRate() < 0.6 {
		t.Fatalf("LRU hit rate %.1f%% too low for 70%% hot trace", 100*lru.HitRate())
	}
}

func TestClockApproximatesLRU(t *testing.T) {
	var trace []int64
	rng := sim.NewRand(9)
	for i := 0; i < 20000; i++ {
		if rng.Intn(100) < 60 {
			trace = append(trace, rng.Int63n(80))
		} else {
			trace = append(trace, 1000+rng.Int63n(50000))
		}
	}
	slots := 150
	lru := Replay(LRU, slots, trace)
	clk := Replay(Clock, slots, trace)
	lrc := Replay(LRC, slots, trace)
	if clk.HitRate() < lrc.HitRate() {
		t.Fatalf("CLOCK (%.1f%%) worse than LRC (%.1f%%)", 100*clk.HitRate(), 100*lrc.HitRate())
	}
	if diff := lru.HitRate() - clk.HitRate(); diff > 0.15 {
		t.Fatalf("CLOCK trails LRU by %.1f points", 100*diff)
	}
}

func TestHitRateMonotonicWithSize(t *testing.T) {
	var trace []int64
	rng := sim.NewRand(5)
	for i := 0; i < 20000; i++ {
		trace = append(trace, rng.Int63n(2000))
	}
	sizes := []int{100, 200, 400, 800, 1600}
	res := Sweep(LRU, sizes, trace)
	for i := 1; i < len(res); i++ {
		if res[i].HitRate()+1e-9 < res[i-1].HitRate() {
			t.Fatalf("hit rate dropped with larger cache: %v -> %v", res[i-1], res[i])
		}
	}
}

func TestFullResidencyHitsAlways(t *testing.T) {
	// Cache bigger than the working set: everything after the cold misses
	// must hit, for all policies.
	var trace []int64
	for round := 0; round < 10; round++ {
		for p := int64(0); p < 100; p++ {
			trace = append(trace, p)
		}
	}
	for _, pol := range []Policy{LRC, LRU, Clock} {
		r := Replay(pol, 128, trace)
		if r.Hits != uint64(len(trace)-100) {
			t.Fatalf("%v: hits=%d want %d", pol, r.Hits, len(trace)-100)
		}
		if r.WarmHitRate() != 1.0 {
			t.Fatalf("%v: warm hit rate %.3f", pol, r.WarmHitRate())
		}
	}
}

func TestColdMissClassification(t *testing.T) {
	s := New(LRU, 1)
	s.Access(1)
	s.Access(2)
	s.Access(1) // capacity miss, not cold
	r := s.Result()
	if r.ColdMisses != 2 {
		t.Fatalf("cold misses = %d, want 2", r.ColdMisses)
	}
	if r.Accesses != 3 || r.Hits != 0 {
		t.Fatalf("unexpected: %+v", r)
	}
}

func TestEvictionCount(t *testing.T) {
	r := Replay(LRU, 2, []int64{1, 2, 3, 4})
	if r.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", r.Evictions)
	}
}
