package cpucache

import (
	"bytes"
	"testing"
	"testing/quick"
)

// flatMem is a simple Backing for tests.
type flatMem struct{ b []byte }

func newFlat(n int) *flatMem { return &flatMem{b: make([]byte, n)} }

func (m *flatMem) CopyIn(addr int64, data []byte) error {
	copy(m.b[addr:], data)
	return nil
}
func (m *flatMem) CopyOut(addr int64, buf []byte) error {
	copy(buf, m.b[addr:])
	return nil
}

func TestLoadStoreRoundTrip(t *testing.T) {
	mem := newFlat(1 << 16)
	c := New(mem, 4096)
	msg := []byte("coherence is hard")
	if err := c.Store(1000, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := c.Load(1000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip mismatch")
	}
	// Write-back: backing memory must NOT yet have the data (lines dirty).
	if bytes.Contains(mem.b[960:1100], []byte("coherence")) {
		t.Fatal("store wrote through to backing")
	}
}

func TestClflushWritesBack(t *testing.T) {
	mem := newFlat(1 << 16)
	c := New(mem, 4096)
	msg := []byte("flush me")
	c.Store(128, msg)
	if err := c.Clflush(128, len(msg)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mem.b[128:128+len(msg)], msg) {
		t.Fatal("clflush did not write back")
	}
	if c.Len() != 0 {
		t.Fatalf("lines resident after flush: %d", c.Len())
	}
}

func TestInvalidateDropsDirtyData(t *testing.T) {
	mem := newFlat(1 << 16)
	c := New(mem, 4096)
	c.Store(0, []byte{0xAA})
	c.Invalidate(0, 64)
	var got [1]byte
	c.Load(0, got[:])
	if got[0] != 0 {
		t.Fatal("invalidate kept dirty data")
	}
}

func TestStaleLineDetection(t *testing.T) {
	mem := newFlat(1 << 16)
	c := New(mem, 4096)
	// CPU caches a clean line.
	buf := make([]byte, 64)
	c.Load(512, buf)
	// "FPGA" changes backing behind the cache's back (tRFC window write).
	mem.b[512] = 0x77
	stale, err := c.StaleLines()
	if err != nil {
		t.Fatal(err)
	}
	if stale != 1 {
		t.Fatalf("stale lines = %d, want 1", stale)
	}
	// After invalidate, loads see fresh data and staleness clears.
	c.Invalidate(512, 64)
	c.Load(512, buf)
	if buf[0] != 0x77 {
		t.Fatal("load after invalidate returned stale data")
	}
	stale, _ = c.StaleLines()
	if stale != 0 {
		t.Fatalf("stale lines after invalidate = %d", stale)
	}
}

func TestDirtyEvictionClobbersFPGAData(t *testing.T) {
	// Reproduce the §V-B hazard end-to-end: CPU dirties a line, FPGA then
	// updates the same DRAM region, CPU eviction overwrites it.
	mem := newFlat(1 << 16)
	c := New(mem, 2*64)      // tiny: 2 lines
	c.Store(0, []byte{0x01}) // dirty line @0
	mem.b[0] = 0x99          // FPGA writes fresh data
	c.Load(64, make([]byte, 1))
	c.Load(128, make([]byte, 1)) // forces eviction of line @0
	if mem.b[0] != 0x01 {
		t.Fatalf("expected stale CPU writeback to clobber FPGA data; mem=%#x", mem.b[0])
	}
	if c.Stats().DirtyWritebacks == 0 {
		t.Fatal("no dirty writeback recorded")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	mem := newFlat(1 << 16)
	c := New(mem, 3*64)
	c.Load(0, make([]byte, 1))
	c.Load(64, make([]byte, 1))
	c.Load(128, make([]byte, 1))
	c.Load(0, make([]byte, 1))   // refresh line 0
	c.Load(192, make([]byte, 1)) // evicts line 64 (LRU)
	if _, ok := c.lines[64]; ok {
		t.Fatal("LRU victim not evicted")
	}
	if _, ok := c.lines[0]; !ok {
		t.Fatal("recently used line evicted")
	}
}

func TestHitMissAccounting(t *testing.T) {
	mem := newFlat(1 << 16)
	c := New(mem, 4096)
	c.Load(0, make([]byte, 64))
	c.Load(0, make([]byte, 64))
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
}

func TestCrossLineAccess(t *testing.T) {
	mem := newFlat(1 << 16)
	c := New(mem, 8192)
	data := make([]byte, 300) // spans 5-6 lines, unaligned
	for i := range data {
		data[i] = byte(i)
	}
	c.Store(60, data)
	got := make([]byte, len(data))
	c.Load(60, got)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-line store/load mismatch")
	}
}

func TestFlushAll(t *testing.T) {
	mem := newFlat(1 << 16)
	c := New(mem, 8192)
	c.Store(0, []byte{1})
	c.Store(1024, []byte{2})
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if mem.b[0] != 1 || mem.b[1024] != 2 {
		t.Fatal("FlushAll lost dirty data")
	}
	if c.Len() != 0 {
		t.Fatal("lines resident after FlushAll")
	}
}

func TestSFenceCounted(t *testing.T) {
	c := New(newFlat(64), 64)
	c.SFence()
	c.SFence()
	if c.Stats().Fences != 2 {
		t.Fatal("fences not counted")
	}
}

// Property: a cache over flat memory behaves exactly like the flat memory
// for any interleaving of loads, stores and flushes.
func TestCacheTransparencyProperty(t *testing.T) {
	type op struct {
		Kind byte
		Addr uint16
		Data byte
	}
	f := func(ops []op) bool {
		mem := newFlat(1 << 16)
		ref := make([]byte, 1<<16)
		c := New(mem, 1024) // small: lots of evictions
		for _, o := range ops {
			addr := int64(o.Addr)
			switch o.Kind % 4 {
			case 0, 1:
				c.Store(addr, []byte{o.Data})
				ref[addr] = o.Data
			case 2:
				var got [1]byte
				c.Load(addr, got[:])
				if got[0] != ref[addr] {
					return false
				}
			case 3:
				c.Clflush(addr, 1)
			}
		}
		// Drain and compare everything touched.
		if err := c.FlushAll(); err != nil {
			return false
		}
		return bytes.Equal(mem.b, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
