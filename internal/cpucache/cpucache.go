// Package cpucache models the host CPU's cache hierarchy as one write-back
// cache over the physical address space, at cacheline (64 B) granularity.
//
// Its purpose is the cache-coherence hazard of §V-B: data the FPGA moves
// into the DRAM during tRFC windows is invisible to the CPU caches, so a
// stale cached line can shadow fresh FPGA data, and a dirty CPU line can be
// evicted over it later. The nvdc driver must clflush+sfence before asking
// the NVMC to read DRAM, and invalidate after the NVMC writes DRAM. The
// model is functional (no timing — the performance models account for cache
// behaviour in their per-op costs) but byte-accurate, so coherence bugs
// corrupt real data that end-to-end validation catches.
package cpucache

import (
	"fmt"
)

// LineSize is the cacheline size in bytes.
const LineSize = 64

// Backing is the memory behind the cache (the DRAM device model).
type Backing interface {
	CopyIn(addr int64, data []byte) error
	CopyOut(addr int64, buf []byte) error
}

type line struct {
	addr  int64 // line-aligned
	data  [LineSize]byte
	dirty bool
	// prev/next for LRU list.
	prev, next *line
}

// Stats aggregates cache behaviour.
type Stats struct {
	Hits, Misses    uint64
	Evictions       uint64
	DirtyWritebacks uint64
	Flushes         uint64
	Invalidations   uint64
	Fences          uint64
}

// Cache is a write-back, write-allocate cache with LRU replacement.
type Cache struct {
	backing  Backing
	capacity int // max lines
	lines    map[int64]*line
	// LRU list: head = most recent, tail = least recent.
	head, tail *line
	stats      Stats
}

// New returns a cache holding capacityBytes of data (rounded down to whole
// lines; minimum one line).
func New(backing Backing, capacityBytes int) *Cache {
	capLines := capacityBytes / LineSize
	if capLines < 1 {
		capLines = 1
	}
	return &Cache{
		backing:  backing,
		capacity: capLines,
		lines:    make(map[int64]*line),
	}
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Len reports resident lines.
func (c *Cache) Len() int { return len(c.lines) }

func (c *Cache) touch(l *line) {
	if c.head == l {
		return
	}
	// unlink
	if l.prev != nil {
		l.prev.next = l.next
	}
	if l.next != nil {
		l.next.prev = l.prev
	}
	if c.tail == l {
		c.tail = l.prev
	}
	// push front
	l.prev = nil
	l.next = c.head
	if c.head != nil {
		c.head.prev = l
	}
	c.head = l
	if c.tail == nil {
		c.tail = l
	}
}

func (c *Cache) unlink(l *line) {
	if l.prev != nil {
		l.prev.next = l.next
	} else if c.head == l {
		c.head = l.next
	}
	if l.next != nil {
		l.next.prev = l.prev
	} else if c.tail == l {
		c.tail = l.prev
	}
	l.prev, l.next = nil, nil
}

func (c *Cache) evictIfFull() error {
	for len(c.lines) >= c.capacity {
		victim := c.tail
		if victim == nil {
			return fmt.Errorf("cpucache: no victim despite %d lines", len(c.lines))
		}
		if victim.dirty {
			// The §V-B hazard: this writeback can clobber DRAM contents the
			// FPGA changed after we cached the line.
			if err := c.backing.CopyIn(victim.addr, victim.data[:]); err != nil {
				return err
			}
			c.stats.DirtyWritebacks++
		}
		c.unlink(victim)
		delete(c.lines, victim.addr)
		c.stats.Evictions++
	}
	return nil
}

func (c *Cache) fill(lineAddr int64) (*line, error) {
	if l, ok := c.lines[lineAddr]; ok {
		c.stats.Hits++
		c.touch(l)
		return l, nil
	}
	c.stats.Misses++
	if err := c.evictIfFull(); err != nil {
		return nil, err
	}
	l := &line{addr: lineAddr}
	if err := c.backing.CopyOut(lineAddr, l.data[:]); err != nil {
		return nil, err
	}
	c.lines[lineAddr] = l
	c.touch(l)
	return l, nil
}

// Load reads len(buf) bytes at addr through the cache.
func (c *Cache) Load(addr int64, buf []byte) error {
	for len(buf) > 0 {
		la := addr &^ (LineSize - 1)
		off := int(addr - la)
		l, err := c.fill(la)
		if err != nil {
			return err
		}
		n := copy(buf, l.data[off:])
		buf = buf[n:]
		addr += int64(n)
	}
	return nil
}

// Store writes data at addr through the cache (write-allocate, write-back).
func (c *Cache) Store(addr int64, data []byte) error {
	for len(data) > 0 {
		la := addr &^ (LineSize - 1)
		off := int(addr - la)
		l, err := c.fill(la)
		if err != nil {
			return err
		}
		n := copy(l.data[off:], data)
		l.dirty = true
		data = data[n:]
		addr += int64(n)
	}
	return nil
}

// Clflush writes back (if dirty) and invalidates every cacheline overlapping
// [addr, addr+n). This is the instruction the nvdc driver issues before
// requesting a writeback (§V-B).
func (c *Cache) Clflush(addr int64, n int) error {
	end := addr + int64(n)
	for la := addr &^ (LineSize - 1); la < end; la += LineSize {
		l, ok := c.lines[la]
		if !ok {
			continue
		}
		c.stats.Flushes++
		if l.dirty {
			if err := c.backing.CopyIn(la, l.data[:]); err != nil {
				return err
			}
			c.stats.DirtyWritebacks++
		}
		c.unlink(l)
		delete(c.lines, la)
	}
	return nil
}

// Invalidate drops cachelines overlapping [addr, addr+n) WITHOUT writing
// dirty data back. The driver uses it after a cachefill so subsequent loads
// observe the FPGA's fresh data. (On x86 this is clflush of lines known
// clean, or wbinvd-style management; the distinction matters for the
// incoherence experiments.)
func (c *Cache) Invalidate(addr int64, n int) {
	end := addr + int64(n)
	for la := addr &^ (LineSize - 1); la < end; la += LineSize {
		if l, ok := c.lines[la]; ok {
			c.unlink(l)
			delete(c.lines, la)
			c.stats.Invalidations++
		}
	}
}

// SFence orders preceding stores/flushes. The functional model is already
// sequentially consistent; the call is counted so tests can assert the
// driver's flush+fence discipline.
func (c *Cache) SFence() { c.stats.Fences++ }

// FlushAll writes back and invalidates everything (used at orderly
// shutdown).
func (c *Cache) FlushAll() error {
	for la, l := range c.lines {
		if l.dirty {
			if err := c.backing.CopyIn(la, l.data[:]); err != nil {
				return err
			}
			c.stats.DirtyWritebacks++
		}
		c.unlink(l)
		delete(c.lines, la)
		c.stats.Flushes++
	}
	return nil
}

// StaleLines compares every resident clean line with backing memory and
// returns how many differ — the §V-B incoherence observable. Dirty lines are
// not counted (the CPU legitimately holds newer data for those).
func (c *Cache) StaleLines() (int, error) {
	stale := 0
	var buf [LineSize]byte
	for la, l := range c.lines {
		if l.dirty {
			continue
		}
		if err := c.backing.CopyOut(la, buf[:]); err != nil {
			return 0, err
		}
		if buf != l.data {
			stale++
		}
	}
	return stale, nil
}
