package nand

import (
	"bytes"
	"testing"

	"nvdimmc/internal/sim"
)

func newArray(k *sim.Kernel) *Array {
	cfg := DefaultConfig()
	cfg.InitialBadBlockPPM = 0
	cfg.BlocksPerDie = 16
	cfg.PagesPerBlock = 8
	return New(k, cfg)
}

func TestProgramReadRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	a := newArray(k)
	addr := PageAddr{Channel: 1, Die: 0, Block: 3, Page: 0}
	want := bytes.Repeat([]byte{0x3C}, PageSize)
	var got []byte
	a.Program(addr, want, func(err error) {
		if err != nil {
			t.Error(err)
			return
		}
		a.Read(addr, func(data []byte, err error) {
			if err != nil {
				t.Error(err)
				return
			}
			got = data
		})
	})
	k.Run()
	if !bytes.Equal(got, want) {
		t.Fatal("round trip mismatch")
	}
}

func TestErasedPageReadsFF(t *testing.T) {
	k := sim.NewKernel()
	a := newArray(k)
	var got []byte
	a.Read(PageAddr{Block: 1, Page: 2}, func(data []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got = data
	})
	k.Run()
	for _, b := range got {
		if b != 0xFF {
			t.Fatalf("erased page byte = %#x, want 0xFF", b)
		}
	}
}

func TestOverwriteWithoutEraseFails(t *testing.T) {
	k := sim.NewKernel()
	a := newArray(k)
	addr := PageAddr{Block: 0, Page: 0}
	data := make([]byte, PageSize)
	var second error
	a.Program(addr, data, func(err error) {
		if err != nil {
			t.Error(err)
		}
		a.Program(addr, data, func(err error) { second = err })
	})
	k.Run()
	if second == nil {
		t.Fatal("overwrite without erase accepted")
	}
}

func TestOutOfOrderProgramFails(t *testing.T) {
	k := sim.NewKernel()
	a := newArray(k)
	var err0 error
	a.Program(PageAddr{Block: 0, Page: 3}, make([]byte, PageSize), func(err error) { err0 = err })
	k.Run()
	if err0 == nil {
		t.Fatal("out-of-order program accepted")
	}
}

func TestEraseResetsBlock(t *testing.T) {
	k := sim.NewKernel()
	a := newArray(k)
	addr := PageAddr{Block: 2, Page: 0}
	data := bytes.Repeat([]byte{7}, PageSize)
	var after []byte
	a.Program(addr, data, func(error) {
		a.Erase(addr, func(err error) {
			if err != nil {
				t.Error(err)
			}
			// Reprogram same page: legal after erase.
			a.Program(addr, data, func(err error) {
				if err != nil {
					t.Error(err)
				}
			})
			a.Read(addr, func(d []byte, _ error) { after = d })
		})
	})
	k.Run()
	if a.Erases(addr) != 1 {
		t.Fatalf("erases = %d, want 1", a.Erases(addr))
	}
	if !bytes.Equal(after, data) {
		t.Fatal("reprogram after erase mismatch")
	}
}

func TestBadBlockRejectsProgram(t *testing.T) {
	k := sim.NewKernel()
	a := newArray(k)
	addr := PageAddr{Block: 5}
	a.MarkBad(addr)
	if !a.IsBad(addr) {
		t.Fatal("MarkBad did not stick")
	}
	var got error
	a.Program(addr, make([]byte, PageSize), func(err error) { got = err })
	k.Run()
	if got == nil {
		t.Fatal("program to bad block accepted")
	}
}

func TestLatencies(t *testing.T) {
	k := sim.NewKernel()
	a := newArray(k)
	cfg := a.Config()
	var readDone, progDone sim.Time
	a.Program(PageAddr{Block: 0, Page: 0}, make([]byte, PageSize), func(error) { progDone = k.Now() })
	k.Run()
	wantProg := sim.Time(0).Add(cfg.TransferPerPage + cfg.ProgramLatency)
	if progDone != wantProg {
		t.Fatalf("program done at %v, want %v", progDone, wantProg)
	}
	start := k.Now()
	a.Read(PageAddr{Block: 0, Page: 0}, func([]byte, error) { readDone = k.Now() })
	k.Run()
	wantRead := cfg.ReadLatency + cfg.TransferPerPage // sense, then channel transfer
	gotRead := readDone.Sub(start)
	if gotRead != wantRead {
		t.Fatalf("read latency = %v, want %v", gotRead, wantRead)
	}
}

func TestChannelSerializesDies(t *testing.T) {
	// Two dies on one channel: media time overlaps, transfers serialize.
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.InitialBadBlockPPM = 0
	cfg.BlocksPerDie = 4
	cfg.PagesPerBlock = 4
	a := New(k, cfg)
	var done []sim.Time
	a.Read(PageAddr{Channel: 0, Die: 0, Block: 0, Page: 0}, func([]byte, error) { done = append(done, k.Now()) })
	a.Read(PageAddr{Channel: 0, Die: 1, Block: 0, Page: 0}, func([]byte, error) { done = append(done, k.Now()) })
	k.Run()
	if len(done) != 2 {
		t.Fatalf("completed %d", len(done))
	}
	gap := done[1].Sub(done[0])
	if gap != cfg.TransferPerPage {
		t.Fatalf("second read trails by %v, want one transfer (%v)", gap, cfg.TransferPerPage)
	}
}

func TestFactoryBadBlocks(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.InitialBadBlockPPM = 100_000 // 10%
	cfg.BlocksPerDie = 500
	a := New(k, cfg)
	bad := 0
	for c := 0; c < cfg.Channels; c++ {
		for d := 0; d < cfg.DiesPerChan; d++ {
			for b := 0; b < cfg.BlocksPerDie; b++ {
				if a.IsBad(PageAddr{Channel: c, Die: d, Block: b}) {
					bad++
				}
			}
		}
	}
	total := a.TotalBlocks()
	if bad < total/20 || bad > total/5 {
		t.Fatalf("bad blocks = %d of %d, want ~10%%", bad, total)
	}
}

func TestAddressValidation(t *testing.T) {
	k := sim.NewKernel()
	a := newArray(k)
	var err error
	a.Read(PageAddr{Channel: 99}, func(_ []byte, e error) { err = e })
	k.Run()
	if err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

func TestWearAccounting(t *testing.T) {
	k := sim.NewKernel()
	a := newArray(k)
	for i := 0; i < 3; i++ {
		a.Erase(PageAddr{Block: 7}, nil)
	}
	a.Erase(PageAddr{Block: 8}, nil)
	k.Run()
	if a.MaxWear() != 3 {
		t.Fatalf("max wear = %d, want 3", a.MaxWear())
	}
	if a.TotalErases() != 4 {
		t.Fatalf("total erases = %d, want 4", a.TotalErases())
	}
}

func TestECCZeroRBERIsClean(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.InitialBadBlockPPM = 0
	cfg.RawBitErrorRate = 0
	cfg.BlocksPerDie = 4
	cfg.PagesPerBlock = 4
	a := New(k, cfg)
	a.Program(PageAddr{}, make([]byte, PageSize), nil)
	for i := 0; i < 50; i++ {
		a.Read(PageAddr{}, func(_ []byte, err error) {
			if err != nil {
				t.Error(err)
			}
		})
	}
	k.Run()
	corrected, unc := a.ECCStats()
	if corrected != 0 || unc != 0 {
		t.Fatalf("zero RBER produced ECC activity: %d/%d", corrected, unc)
	}
}

func TestECCCorrectsModerateErrors(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.InitialBadBlockPPM = 0
	cfg.RawBitErrorRate = 1e-5 // lambda ~0.33 per page: frequent singles
	cfg.BlocksPerDie = 4
	cfg.PagesPerBlock = 4
	a := New(k, cfg)
	want := bytes.Repeat([]byte{0x3C}, PageSize)
	a.Program(PageAddr{}, want, nil)
	k.Run()
	for i := 0; i < 500; i++ {
		a.Read(PageAddr{}, func(got []byte, err error) {
			if err != nil {
				t.Errorf("uncorrectable at moderate RBER: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Error("ECC-corrected read returned wrong data")
			}
		})
		k.Run()
	}
	corrected, unc := a.ECCStats()
	if corrected == 0 {
		t.Fatal("no corrections at RBER 1e-5 over 500 reads")
	}
	if unc != 0 {
		t.Fatalf("%d uncorrectable at moderate RBER", unc)
	}
}

func TestECCUncorrectableSurfaces(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.InitialBadBlockPPM = 0
	cfg.RawBitErrorRate = 1e-2 // lambda ~328 >> 40 correctable
	cfg.BlocksPerDie = 4
	cfg.PagesPerBlock = 4
	a := New(k, cfg)
	want := bytes.Repeat([]byte{0x55}, PageSize)
	a.Program(PageAddr{}, want, nil)
	k.Run()
	sawErr := false
	a.Read(PageAddr{}, func(got []byte, err error) {
		if err == nil {
			t.Fatal("worn-out media read returned no error")
		}
		sawErr = true
		if bytes.Equal(got, want) {
			t.Fatal("uncorrectable read returned pristine data")
		}
	})
	k.Run()
	if !sawErr {
		t.Fatal("read never completed")
	}
	if _, unc := a.ECCStats(); unc == 0 {
		t.Fatal("uncorrectable not counted")
	}
}
