// Package nand models the Z-NAND flash devices on the NVDIMM-C board: two
// channels of low-latency SLC NAND (§IV-A), each with dies, blocks and 4 KB
// pages. Operations (Read, Program, Erase) occupy the die for the media
// latency and the channel for the data transfer, serviced through sim
// resources so channel/die contention emerges naturally. The model stores
// real bytes, enforces NAND programming rules (no overwrite without erase),
// injects grown bad blocks, and tracks wear.
package nand

import (
	"fmt"
	"math"

	"nvdimmc/internal/fault"
	"nvdimmc/internal/sim"
)

// PageSize is the NAND page size, matching the NVDIMM-C 4 KB management
// granularity (§III-A: primitive NAND operations with ECC at 4 KB).
const PageSize = 4096

// Config sizes a Z-NAND subsystem.
type Config struct {
	Channels      int
	DiesPerChan   int
	BlocksPerDie  int
	PagesPerBlock int

	// Media latencies. Z-NAND is low-latency SLC: reads in single-digit
	// microseconds (vs ~50 us for conventional TLC).
	ReadLatency    sim.Duration
	ProgramLatency sim.Duration
	EraseLatency   sim.Duration

	// TransferPerPage is the channel occupancy to move one page between the
	// die and the controller. The PoC's NAND PHY runs at 50 MHz — a tenth
	// of the media's capability (§VII-C) — so this dominates small reads.
	TransferPerPage sim.Duration

	// InitialBadBlockPPM injects factory bad blocks at this rate (parts per
	// million of blocks).
	InitialBadBlockPPM int

	// RawBitErrorRate is the per-bit flip probability on reads (media RBER;
	// SLC Z-NAND is ~1e-8 fresh, rising with wear). The on-die ECC corrects
	// up to ECCCorrectableBits per 4 KB codeword (§III-A: primitive NAND
	// operations carry ECC at 4 KB granularity).
	RawBitErrorRate    float64
	ECCCorrectableBits int

	// Seed for bad-block placement and error injection.
	Seed uint64
}

// DefaultConfig returns a scaled-down two-channel Z-NAND array with PoC-like
// latencies. Capacity = Channels*DiesPerChan*BlocksPerDie*PagesPerBlock*4 KB.
func DefaultConfig() Config {
	return Config{
		Channels:           2,
		DiesPerChan:        2,
		BlocksPerDie:       256,
		PagesPerBlock:      64,
		ReadLatency:        3 * sim.Microsecond,
		ProgramLatency:     100 * sim.Microsecond,
		EraseLatency:       1 * sim.Millisecond,
		TransferPerPage:    8 * sim.Microsecond,
		InitialBadBlockPPM: 2000,
		RawBitErrorRate:    1e-8,
		ECCCorrectableBits: 40,
		Seed:               0xBAD5EED,
	}
}

// PageAddr identifies a physical page.
type PageAddr struct {
	Channel, Die, Block, Page int
}

func (a PageAddr) String() string {
	return fmt.Sprintf("ch%d/d%d/b%d/p%d", a.Channel, a.Die, a.Block, a.Page)
}

type block struct {
	erases     uint64
	programmed []bool // per page: programmed since last erase
	zero       []bool // programmed with all-zero data (stored deduplicated)
	nextPage   int    // NAND requires in-order page programming within a block
	bad        bool
	data       [][]byte // lazily allocated per page
}

type die struct {
	blocks []block
	busy   *sim.Resource
}

// Array is the Z-NAND subsystem.
type Array struct {
	k        *sim.Kernel
	cfg      Config
	channels []*sim.Resource
	dies     [][]*die

	reads, programs, erases uint64
	programFails            uint64

	correctedBits uint64
	uncorrectable uint64
	errRng        *sim.Rand

	// faults, when non-nil, is consulted at every media operation: read
	// bit-flips (fault.NANDReadBitFlip), program fails (NANDProgramFail),
	// erase fails (NANDEraseFail) and die timeouts (NANDDieTimeout).
	faults *fault.Registry
}

// New builds the array and injects factory bad blocks.
func New(k *sim.Kernel, cfg Config) *Array {
	if cfg.Channels <= 0 || cfg.DiesPerChan <= 0 || cfg.BlocksPerDie <= 0 || cfg.PagesPerBlock <= 0 {
		panic("nand: invalid geometry")
	}
	a := &Array{k: k, cfg: cfg, errRng: sim.NewRand(cfg.Seed ^ 0xECC)}
	rng := sim.NewRand(cfg.Seed)
	for c := 0; c < cfg.Channels; c++ {
		a.channels = append(a.channels, sim.NewResource(k, fmt.Sprintf("nand-ch%d", c)))
		var ds []*die
		for d := 0; d < cfg.DiesPerChan; d++ {
			dd := &die{
				blocks: make([]block, cfg.BlocksPerDie),
				busy:   sim.NewResource(k, fmt.Sprintf("nand-ch%d-die%d", c, d)),
			}
			for b := range dd.blocks {
				dd.blocks[b].programmed = make([]bool, cfg.PagesPerBlock)
				dd.blocks[b].zero = make([]bool, cfg.PagesPerBlock)
				dd.blocks[b].data = make([][]byte, cfg.PagesPerBlock)
				if cfg.InitialBadBlockPPM > 0 && rng.Intn(1_000_000) < cfg.InitialBadBlockPPM {
					dd.blocks[b].bad = true
				}
			}
			ds = append(ds, dd)
		}
		a.dies = append(a.dies, ds)
	}
	return a
}

// Config returns the array geometry.
func (a *Array) Config() Config { return a.cfg }

// SetFaults attaches the fault-injection registry (nil detaches).
func (a *Array) SetFaults(g *fault.Registry) { a.faults = g }

// dieTimeoutMultiplier is the default latency multiplier for an injected
// die timeout: long enough to trip the driver's CP ack deadline.
const dieTimeoutMultiplier = 400

// opLatency applies an injected die timeout to the nominal latency of one
// die operation.
func (a *Array) opLatency(nominal sim.Duration) sim.Duration {
	if ok, mult := a.faults.FiresParam(fault.NANDDieTimeout); ok {
		if mult <= 1 {
			mult = dieTimeoutMultiplier
		}
		return nominal * sim.Duration(mult)
	}
	return nominal
}

// Capacity returns the raw capacity in bytes (including bad blocks).
func (a *Array) Capacity() int64 {
	c := a.cfg
	return int64(c.Channels) * int64(c.DiesPerChan) * int64(c.BlocksPerDie) * int64(c.PagesPerBlock) * PageSize
}

// TotalBlocks returns the number of physical blocks.
func (a *Array) TotalBlocks() int {
	return a.cfg.Channels * a.cfg.DiesPerChan * a.cfg.BlocksPerDie
}

func (a *Array) check(addr PageAddr) (*die, *block, error) {
	c := a.cfg
	if addr.Channel < 0 || addr.Channel >= c.Channels ||
		addr.Die < 0 || addr.Die >= c.DiesPerChan ||
		addr.Block < 0 || addr.Block >= c.BlocksPerDie ||
		addr.Page < 0 || addr.Page >= c.PagesPerBlock {
		return nil, nil, fmt.Errorf("nand: address %v out of range", addr)
	}
	d := a.dies[addr.Channel][addr.Die]
	return d, &d.blocks[addr.Block], nil
}

// IsBad reports whether the block holding addr is marked bad.
func (a *Array) IsBad(addr PageAddr) bool {
	_, b, err := a.check(addr)
	return err == nil && b.bad
}

// MarkBad marks a block bad (grown bad block after a program/erase failure).
func (a *Array) MarkBad(addr PageAddr) {
	if _, b, err := a.check(addr); err == nil {
		b.bad = true
	}
}

// Erases returns the erase count of the block holding addr.
func (a *Array) Erases(addr PageAddr) uint64 {
	_, b, err := a.check(addr)
	if err != nil {
		return 0
	}
	return b.erases
}

// Read fetches one page. done receives the page contents (never-programmed
// pages read as all-0xFF, as erased NAND does) after tR plus the channel
// transfer.
func (a *Array) Read(addr PageAddr, done func(data []byte, err error)) {
	d, b, err := a.check(addr)
	if err != nil {
		done(nil, err)
		return
	}
	a.reads++
	// Die busy for tR (array sense), then channel busy for the transfer. An
	// injected die timeout stretches the sense phase.
	sense := a.opLatency(a.cfg.ReadLatency)
	d.busy.Acquire(sense, func(senseStart sim.Time) {
		a.k.ScheduleAt(senseStart.Add(sense), func() {
			a.channels[addr.Channel].Acquire(a.cfg.TransferPerPage, func(start sim.Time) {
				buf := make([]byte, PageSize)
				switch {
				case b.data[addr.Page] != nil:
					copy(buf, b.data[addr.Page])
				case b.programmed[addr.Page] && b.zero[addr.Page]:
					// all-zero page, stored deduplicated
				default:
					for i := range buf {
						buf[i] = 0xFF
					}
				}
				// ECC: raw bit errors are corrected up to the code's budget;
				// beyond it the read fails and the (corrupted) data must not
				// be served. An injected fault adds raw flips on top of the
				// sampled media rate (param = flip count; default one beyond
				// the correction budget, i.e. an uncorrectable codeword).
				var eccErr error
				errs := a.sampleBitErrors()
				if ok, flips := a.faults.FiresParam(fault.NANDReadBitFlip); ok {
					if flips <= 0 {
						flips = int64(a.cfg.ECCCorrectableBits) + 1
					}
					errs += int(flips)
				}
				if errs > 0 {
					if errs <= a.cfg.ECCCorrectableBits {
						a.correctedBits += uint64(errs)
					} else {
						a.uncorrectable++
						for i := 0; i < errs; i++ {
							bit := a.errRng.Intn(PageSize * 8)
							buf[bit/8] ^= 1 << uint(bit%8)
						}
						eccErr = fmt.Errorf("nand: uncorrectable ECC error at %v (%d bit errors > %d correctable)",
							addr, errs, a.cfg.ECCCorrectableBits)
					}
				}
				a.k.ScheduleAt(start.Add(a.cfg.TransferPerPage), func() { done(buf, eccErr) })
			})
		})
	})
}

// Program writes one page. NAND constraints are enforced: the block must not
// be bad, the page must be erased, and pages within a block must be written
// in order. done receives any error after transfer plus tPROG.
func (a *Array) Program(addr PageAddr, data []byte, done func(err error)) {
	d, b, err := a.check(addr)
	if err != nil {
		if done != nil {
			done(err)
		}
		return
	}
	if len(data) != PageSize {
		if done != nil {
			done(fmt.Errorf("nand: program size %d != page size %d", len(data), PageSize))
		}
		return
	}
	var owned []byte
	if !allZero(data) {
		owned = make([]byte, PageSize)
		copy(owned, data)
	}
	// Channel transfer first (controller pushes data to the die's page
	// register), then the die is busy for tPROG. Legality is checked when
	// the die takes the operation: commands queue at the die, so a pipelined
	// program to page N+1 issued while page N is still in flight is legal.
	a.channels[addr.Channel].Acquire(a.cfg.TransferPerPage, func(xferStart sim.Time) {
		a.k.ScheduleAt(xferStart.Add(a.cfg.TransferPerPage), func() {
			prog := a.opLatency(a.cfg.ProgramLatency)
			d.busy.Acquire(prog, func(start sim.Time) {
				var err error
				switch {
				case b.bad:
					err = fmt.Errorf("nand: program to bad block %v", addr)
				case b.programmed[addr.Page]:
					err = fmt.Errorf("nand: overwrite of programmed page %v without erase", addr)
				case addr.Page != b.nextPage:
					err = fmt.Errorf("nand: out-of-order program %v (next programmable page is %d)", addr, b.nextPage)
				}
				if err == nil && a.faults.Fires(fault.NANDProgramFail) {
					// Injected media program failure: the program-status
					// register reports FAIL and the page contents are
					// undefined; the FTL retires the block and rewrites.
					err = fmt.Errorf("nand: program failed at %v (injected media fault)", addr)
				}
				if err != nil {
					a.programFails++
					if done != nil {
						a.k.ScheduleAt(start.Add(prog), func() { done(err) })
					}
					return
				}
				a.programs++
				b.data[addr.Page] = owned
				b.zero[addr.Page] = owned == nil
				b.programmed[addr.Page] = true
				b.nextPage = addr.Page + 1
				if done != nil {
					a.k.ScheduleAt(start.Add(prog), func() { done(nil) })
				}
			})
		})
	})
}

// Erase wipes a block, incrementing its wear counter.
func (a *Array) Erase(addr PageAddr, done func(err error)) {
	d, b, err := a.check(addr)
	if err != nil {
		if done != nil {
			done(err)
		}
		return
	}
	if b.bad {
		if done != nil {
			done(fmt.Errorf("nand: erase of bad block %v", addr))
		}
		return
	}
	a.erases++
	d.busy.Acquire(a.cfg.EraseLatency, func(start sim.Time) {
		if a.faults.Fires(fault.NANDEraseFail) {
			// Injected erase failure: the block's state is undefined; the
			// FTL retires it as grown-bad. Contents are left untouched so a
			// paranoid caller re-reading sees stale (not silently-erased)
			// data.
			if done != nil {
				a.k.ScheduleAt(start.Add(a.cfg.EraseLatency), func() {
					done(fmt.Errorf("nand: erase failed at %v (injected media fault)", addr))
				})
			}
			return
		}
		b.erases++
		for i := range b.programmed {
			b.programmed[i] = false
			b.zero[i] = false
			b.data[i] = nil
		}
		b.nextPage = 0
		if done != nil {
			a.k.ScheduleAt(start.Add(a.cfg.EraseLatency), func() { done(nil) })
		}
	})
}

// Stats reports operation counters.
func (a *Array) Stats() (reads, programs, erases, programFails uint64) {
	return a.reads, a.programs, a.erases, a.programFails
}

// ECCStats reports corrected bits and uncorrectable codewords.
func (a *Array) ECCStats() (correctedBits, uncorrectable uint64) {
	return a.correctedBits, a.uncorrectable
}

// sampleBitErrors draws the number of raw bit errors in one page read:
// a Poisson sample with mean RBER * pageBits (inversion method; the mean is
// tiny for healthy media, so this is cheap).
func (a *Array) sampleBitErrors() int {
	lambda := a.cfg.RawBitErrorRate * float64(PageSize*8)
	if lambda <= 0 {
		return 0
	}
	// Knuth inversion; fine for lambda up to a few hundred.
	l := mathExp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= a.errRng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1<<16 {
			return k // pathological RBER; cap the loop
		}
	}
}

// mathExp avoids importing math for one call site... it simply wraps it.
func mathExp(x float64) float64 { return math.Exp(x) }

// MaxWear returns the highest erase count across all blocks.
func (a *Array) MaxWear() uint64 {
	var m uint64
	for _, ds := range a.dies {
		for _, d := range ds {
			for i := range d.blocks {
				if d.blocks[i].erases > m {
					m = d.blocks[i].erases
				}
			}
		}
	}
	return m
}

// TotalErases sums erase counts across all blocks.
func (a *Array) TotalErases() uint64 {
	var s uint64
	for _, ds := range a.dies {
		for _, d := range ds {
			for i := range d.blocks {
				s += d.blocks[i].erases
			}
		}
	}
	return s
}

// allZero reports whether every byte of p is zero. All-zero pages are
// stored deduplicated: a simulator memory optimization that lets tests
// prefill full-size devices cheaply without changing observable behaviour.
func allZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}
