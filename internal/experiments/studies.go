package experiments

import (
	"fmt"

	"nvdimmc/internal/cpolicy"
	"nvdimmc/internal/imdb"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/stream"
	"nvdimmc/internal/workload/tpch"
)

// AgingResult holds the refresh-detection validation (§VII-A): STREAM with
// per-iteration verification while the NVMC exercises every refresh window.
type AgingResult struct {
	Iterations      int
	Inconsistencies int
	Collisions      uint64
	FalsePositives  uint64
	WindowsSeen     uint64
	Evictions       uint64
}

// Aging runs the §VII-A test. The paper reports zero inconsistencies and no
// memory errors across its aging campaign.
func Aging(o Options) (AgingResult, error) {
	var res AgingResult
	cfg := nvdcConfig(64)
	cfg.CacheBytes = 1 << 20
	s, err := coreSystem(cfg)
	if err != nil {
		return res, err
	}
	// Vectors larger than the cache so every iteration drives NVMC traffic.
	n := s.Layout.NumSlots * PageSize / 3 / 8 * 2
	r := stream.New(s, 0, n)
	inited := false
	r.Init(func() { inited = true })
	if err := s.RunUntil(func() bool { return inited }, 60*sim.Second); err != nil {
		return res, err
	}
	iters := o.pick(10, 3)
	for i := 0; i < iters; i++ {
		finished := false
		r.RunIteration(func(int) { finished = true })
		if err := s.RunUntil(func() bool { return finished }, 60*sim.Second); err != nil {
			return res, err
		}
	}
	st := s.Detector.Stats()
	res = AgingResult{
		Iterations:      r.Iterations,
		Inconsistencies: r.Inconsistencies,
		Collisions:      s.Channel.CollisionCount(),
		FalsePositives:  st.FalsePositives,
		WindowsSeen:     s.NVMC.Stats().WindowsSeen,
		Evictions:       s.Driver.Stats().Evictions,
	}
	o.printf("== §VII-A aging: STREAM + always-on windows ==\n")
	o.printf("  iterations=%d inconsistencies=%d collisions=%d detector-false-positives=%d windows=%d evictions=%d\n",
		res.Iterations, res.Inconsistencies, res.Collisions, res.FalsePositives, res.WindowsSeen, res.Evictions)
	o.printf("  paper: no inconsistency, no memory errors\n")
	return res, nil
}

// MixedLoadResult holds the SAP mixed-load data-integrity run (§VII-B5).
type MixedLoadResult struct {
	Users              int
	Transactions       uint64
	ValidationFailures uint64
}

// MixedLoad runs concurrent validated transactions on the NVDIMM-C stack.
// Paper: five hundred concurrent users, no data corruption.
func MixedLoad(o Options) (MixedLoadResult, error) {
	var res MixedLoadResult
	cfg := nvdcConfig(64)
	cfg.CacheBytes = 2 << 20
	s, err := coreSystem(cfg)
	if err != nil {
		return res, err
	}
	users := o.pick(500, 50)
	txPerUser := o.pick(20, 8)
	db := imdb.New(s, s.K, s.Driver.CapacityPages()*PageSize, imdb.DefaultCost())
	// Records sized so the working set exceeds the cache (constant NVMC
	// traffic under the transactions).
	records := int64(s.Layout.NumSlots * 2 * (PageSize / 256))
	m, err := imdb.NewMixedLoad(db, records, 256)
	if err != nil {
		return res, err
	}
	inited := false
	m.Init(func() { inited = true })
	if err := s.RunUntil(func() bool { return inited }, 600*sim.Second); err != nil {
		return res, err
	}
	finished := false
	m.Run(users, txPerUser, func() { finished = true })
	if err := s.RunUntil(func() bool { return finished }, 3600*sim.Second); err != nil {
		return res, err
	}
	if err := s.CheckHealth(); err != nil {
		return res, err
	}
	res = MixedLoadResult{Users: users, Transactions: m.Transactions, ValidationFailures: m.ValidationFailures}
	o.printf("== §VII-B5 mixed load ==\n")
	o.printf("  users=%d transactions=%d validation-failures=%d (paper: 500 users, zero corruption)\n",
		res.Users, res.Transactions, res.ValidationFailures)
	return res, nil
}

// LRUStudyResult holds the LRC-vs-LRU hit-rate sweep (§VII-B5).
type LRUStudyResult struct {
	// SizesGB are the cache sizes in GB-equivalents (paper: 1..16).
	SizesGB []int
	LRU     []float64
	LRC     []float64
	Clock   []float64
}

// LRUStudy replays the TPC-H buffer trace at cache sizes 1–16 GB-equivalent.
// Paper: LRU reaches 78.7–99.3% from 1 GB to 16 GB.
func LRUStudy(o Options) (LRUStudyResult, error) {
	res := LRUStudyResult{SizesGB: []int{1, 2, 4, 8, 16}}
	// The trace study is cheap even at full scale; Quick does not shrink it.
	sc := tpch.Scale{TotalBytes: 100 << 20}
	trace := tpch.PageTrace(tpch.Specs(), sc, 1, tpch.BufferTrace())
	total := tpch.DatasetPages(sc)
	o.printf("== §VII-B5 LRC vs LRU hit rate (TPC-H buffer trace, %d refs) ==\n", len(trace))
	for _, gb := range res.SizesGB {
		slots := int(total) * gb / 100
		if slots < 1 {
			slots = 1
		}
		lru := cpolicy.Replay(cpolicy.LRU, slots, trace)
		lrc := cpolicy.Replay(cpolicy.LRC, slots, trace)
		clk := cpolicy.Replay(cpolicy.Clock, slots, trace)
		res.LRU = append(res.LRU, lru.HitRate())
		res.LRC = append(res.LRC, lrc.HitRate())
		res.Clock = append(res.Clock, clk.HitRate())
		o.printf("  %2d GB-equiv: LRU %5.1f%%  LRC %5.1f%%  CLOCK %5.1f%%\n",
			gb, 100*lru.HitRate(), 100*lrc.HitRate(), 100*clk.HitRate())
	}
	o.printf("  paper: LRU 78.7%% @1GB rising to 99.3%% @16GB\n")
	return res, nil
}

// WindowsResult holds the §V-A analytical checks.
type WindowsResult struct {
	CachefillMinUS     float64
	PairMinUS          float64
	WindowBWMBps       float64
	WindowBWTrefi2MBps float64
	MeasuredPairUS     float64
}

// Windows verifies the §V-A arithmetic against the live model: cachefill
// >= 3x tREFI (23.4 us), miss-with-eviction >= 6x (46.8 us), window data
// bandwidth 500.8 MB/s at tREFI (1001.6 at tREFI2); then measures an actual
// uncached miss.
func Windows(o Options) (WindowsResult, error) {
	var res WindowsResult
	trefi := 7.8 // us
	res.CachefillMinUS = 3 * trefi
	res.PairMinUS = 6 * trefi
	res.WindowBWMBps = 4096.0 / (trefi * 1e-6) / 1e6
	res.WindowBWTrefi2MBps = 4096.0 / (3.9 * 1e-6) / 1e6

	// Measure one real miss-with-eviction.
	cfg := nvdcConfig(64)
	cfg.CacheBytes = 1 << 20
	s, err := coreSystem(cfg)
	if err != nil {
		return res, err
	}
	// Fill every slot.
	for p := 0; p < s.Layout.NumSlots; p++ {
		done := false
		s.Store(int64(p)*PageSize, []byte{byte(p)}, func() { done = true })
		if err := s.RunUntil(func() bool { return done }, sim.Second); err != nil {
			return res, err
		}
	}
	start := s.K.Now()
	done := false
	s.Load(int64(s.Layout.NumSlots+3)*PageSize, make([]byte, 64), func() { done = true })
	if err := s.RunUntil(func() bool { return done }, sim.Second); err != nil {
		return res, err
	}
	res.MeasuredPairUS = s.K.Now().Sub(start).Microseconds()

	o.printf("== §V-A window arithmetic ==\n")
	o.printf("  cachefill minimum: %.1f us (3x tREFI)\n", res.CachefillMinUS)
	o.printf("  writeback+cachefill minimum: %.1f us; PoC measured 69.8 us (8.9x); this model: %.1f us\n",
		res.PairMinUS, res.MeasuredPairUS)
	o.printf("  window data bandwidth: %.1f MB/s at tREFI, %.1f at tREFI2 (paper: 500.8 / 1001.6)\n",
		res.WindowBWMBps, res.WindowBWTrefi2MBps)
	if res.MeasuredPairUS < res.PairMinUS {
		return res, fmt.Errorf("experiments: measured pair %.1f us below the %.1f us theoretical floor",
			res.MeasuredPairUS, res.PairMinUS)
	}
	return res, nil
}
