package experiments

import (
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/fio"
)

// EnduranceResult characterizes the Z-NAND wear behaviour under sustained
// random writes — the flash-management background the paper's NVMC carries
// (wear-leveling, GC, bad-block management, §III-A) but the evaluation
// never quantifies. This is extension territory: the numbers justify the
// FTL design choices DESIGN.md lists.
type EnduranceResult struct {
	HostWrites     uint64
	GCWrites       uint64
	WriteAmp       float64
	MaxWear        uint64
	AvgWear        float64
	WearImbalance  float64 // max/avg
	GrownBadBlocks uint64
	StallEvents    uint64
}

// Endurance hammers the device with random 4 KB writes over a footprint
// larger than the cache (every write eventually lands on NAND) and reports
// write amplification and wear spread.
func Endurance(o Options) (EnduranceResult, error) {
	var res EnduranceResult
	// Small media so the write pressure laps the raw capacity several times
	// (GC and wear-leveling must work, not just exist).
	cfg := nvdcConfig(8)
	cfg.CacheBytes = 1 << 20
	cfg.NAND.PagesPerBlock = 16
	cfg.NAND.EraseLatency = 200 * sim.Microsecond
	s, err := coreSystem(cfg)
	if err != nil {
		return res, err
	}
	tgt := s.NewFioTarget()
	tgt.SetWalkFootprint(120 << 30)
	ops := o.pick(6000, 1500)
	_, err = fio.Run(tgt, fio.Job{
		Pattern: fio.RandWrite, BlockSize: PageSize, NumJobs: 2,
		FileSize: tgt.Capacity(), OpsPerThread: ops / 2, Seed: 99,
	})
	if err != nil {
		return res, err
	}
	if err := s.CheckHealth(); err != nil {
		return res, err
	}

	hw, gw, _, grown := s.FTL.Stats()
	total := s.NAND.TotalErases()
	blocks := s.NAND.TotalBlocks()
	res = EnduranceResult{
		HostWrites:     hw,
		GCWrites:       gw,
		WriteAmp:       s.FTL.WriteAmplification(),
		MaxWear:        s.NAND.MaxWear(),
		AvgWear:        float64(total) / float64(blocks),
		GrownBadBlocks: grown,
		StallEvents:    s.FTL.StallEvents(),
	}
	if res.AvgWear > 0 {
		res.WearImbalance = float64(res.MaxWear) / res.AvgWear
	}

	o.printf("== Endurance (extension): sustained 4KB random writes ==\n")
	o.printf("  host writes=%d gc writes=%d write amplification=%.2f\n",
		res.HostWrites, res.GCWrites, res.WriteAmp)
	o.printf("  wear: max=%d avg=%.1f imbalance=%.2fx  grown-bad=%d  gc-stalls=%d\n",
		res.MaxWear, res.AvgWear, res.WearImbalance, res.GrownBadBlocks, res.StallEvents)
	return res, nil
}
