package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// TestFaultPoolParallelIdentical: the fault campaign must print a
// byte-identical table and return an identical result struct at any
// -parallel setting. Points are independent seeded pools, so this checks
// the shard fan-out plus every per-point seed split (member RNG, fault
// schedules, workload) for worker-count leakage.
func TestFaultPoolParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign twice; covered unshortened in the race lane")
	}
	run := func(parallel int) (FaultPoolResult, string) {
		var buf bytes.Buffer
		res, err := FaultPool(Options{Quick: true, Out: &buf, Parallel: parallel})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return res, buf.String()
	}
	serialRes, serialOut := run(1)
	res, out := run(4)
	if out != serialOut {
		t.Fatalf("parallel output diverged:\n--- serial ---\n%s\n--- parallel ---\n%s", serialOut, out)
	}
	if !reflect.DeepEqual(res, serialRes) {
		t.Fatalf("parallel results diverged: %+v vs %+v", res, serialRes)
	}
}

// TestFaultPoolConservation pins the campaign's robustness claims: >= 32
// points, zero acked-write loss and zero post-quarantine dispatches at
// every point, at least one point exercising the full failover+rebuild
// path, and no point's availability collapsing.
func TestFaultPoolConservation(t *testing.T) {
	res, err := FaultPool(Options{Quick: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points() < 32 {
		t.Fatalf("campaign ran %d points, want >= 32", res.Points())
	}
	for _, r := range res.Rows {
		if r.AckedLost != 0 {
			t.Errorf("point %d (%s m%d): %d acked writes lost", r.Point, r.Kind, r.Victim, r.AckedLost)
		}
		if r.PostQuarantine != 0 {
			t.Errorf("point %d (%s m%d): %d post-quarantine dispatches", r.Point, r.Kind, r.Victim, r.PostQuarantine)
		}
	}
	if res.Failovers() == 0 {
		t.Fatal("no campaign point engaged the hot spare")
	}
	if min := res.MinAvailability(); min < 0.5 {
		t.Fatalf("worst-point availability %.2f%% — a fault mode collapsed the pool", 100*min)
	}
}
