package experiments

import (
	"nvdimmc/internal/workload/fio"
)

// Fig8Result holds the 4 KB random read/write single-thread comparison
// (Fig. 8): Baseline vs NVDC-Cached vs NVDC-Uncached.
type Fig8Result struct {
	Rows []Row
}

// Paper anchors for Fig. 8 (KIOPS, MB/s).
var fig8Paper = map[string][2]float64{
	"baseline-read":  {646, 2606},
	"baseline-write": {576, 2360},
	"cached-read":    {448, 1835},
	"cached-write":   {438, 1796},
	"uncached-read":  {13, 57.3},
	"uncached-write": {14.2, 58.3},
}

// Fig8 runs the six bars of Fig. 8.
func Fig8(o Options) (Fig8Result, error) {
	var res Fig8Result
	ops := o.pick(2000, 400)

	add := func(name string, kiops, mbps float64) {
		p := fig8Paper[name]
		res.Rows = append(res.Rows,
			Row{Name: name + " KIOPS", Paper: p[0], Measured: kiops, Unit: "KIOPS"},
			Row{Name: name + " bandwidth", Paper: p[1], Measured: mbps, Unit: "MB/s"},
		)
	}

	// Baseline.
	for _, write := range []bool{false, true} {
		d, err := newBaseline()
		if err != nil {
			return res, err
		}
		pat := fio.RandRead
		name := "baseline-read"
		if write {
			pat, name = fio.RandWrite, "baseline-write"
		}
		r, err := fio.Run(d, fio.Job{
			Pattern: pat, BlockSize: PageSize, NumJobs: 1,
			FileSize: 120 << 30, OpsPerThread: ops, WarmupOps: ops / 10,
		})
		if err != nil {
			return res, err
		}
		add(name, r.KIOPS(), r.BandwidthMBps())
	}

	// NVDC-Cached.
	for _, write := range []bool{false, true} {
		s, err := coreSystem(nvdcConfig(0))
		if err != nil {
			return res, err
		}
		pages := s.Layout.NumSlots * 9 / 10
		if err := prefillSlots(s, pages); err != nil {
			return res, err
		}
		tgt := s.NewFioTarget()
		tgt.SetWalkFootprint(15 << 30)
		pat := fio.RandRead
		name := "cached-read"
		if write {
			pat, name = fio.RandWrite, "cached-write"
		}
		r, err := fio.Run(tgt, fio.Job{
			Pattern: pat, BlockSize: PageSize, NumJobs: 1,
			FileSize: int64(pages) * PageSize, OpsPerThread: ops, WarmupOps: ops / 10,
		})
		if err != nil {
			return res, err
		}
		if err := s.CheckHealth(); err != nil {
			return res, err
		}
		add(name, r.KIOPS(), r.BandwidthMBps())
	}

	// NVDC-Uncached.
	for _, write := range []bool{false, true} {
		s, err := coreSystem(nvdcConfig(o.pick(512, 256)))
		if err != nil {
			return res, err
		}
		if err := prefillMedia(s); err != nil {
			return res, err
		}
		tgt := s.NewFioTarget()
		tgt.SetWalkFootprint(120 << 30)
		pat := fio.RandRead
		name := "uncached-read"
		if write {
			pat, name = fio.RandWrite, "uncached-write"
		}
		r, err := fio.Run(tgt, fio.Job{
			Pattern: pat, BlockSize: PageSize, NumJobs: 1,
			FileSize: tgt.Capacity(), OpsPerThread: o.pick(400, 120),
			WarmupOps: s.Layout.NumSlots + 50, Seed: 7,
		})
		if err != nil {
			return res, err
		}
		if err := s.CheckHealth(); err != nil {
			return res, err
		}
		add(name, r.KIOPS(), r.BandwidthMBps())
	}

	printRows(o, "Fig. 8: 4KB random R/W, 1 thread", res.Rows)
	return res, nil
}

// Get returns the measured value for a named row ("cached-read bandwidth").
func (r Fig8Result) Get(name string) float64 {
	for _, row := range r.Rows {
		if row.Name == name {
			return row.Measured
		}
	}
	return 0
}
