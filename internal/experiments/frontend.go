package experiments

import (
	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/sim"
)

// FrontendMedia describes one NVM technology against the Fig. 1a strawman:
// putting the NVM controller at the DIMM frontend means serving a READ
// within tRCD+tCL of the ACTIVATE — at most 51.6 ns even with the iMC's
// 5-bit timing registers maxed out (§III-A).
type FrontendMedia struct {
	Name        string
	ReadLatency sim.Duration
	// MaxDensity notes why latency-compatible media still fail as SCM.
	MaxDensityGb int
	Feasible     bool
	Reason       string
}

// FrontendResult is the §III-A design-space analysis.
type FrontendResult struct {
	// Budget is the hard deadline for an NVMC-as-frontend read.
	Budget sim.Duration
	Media  []FrontendMedia
}

// FrontendAnalysis evaluates which NVM media could implement the rejected
// NVMC-as-frontend architecture (Fig. 1a), reproducing the paper's
// conclusion: only STT-MRAM meets the timing, and its 2019-era 1 Gb
// density disqualifies it as storage-class memory — hence DRAM-as-frontend.
func FrontendAnalysis(o Options) FrontendResult {
	tm := ddr4.NewTiming(ddr4.DDR4_2400)
	budget := tm.MaxProgrammableAccessTime() // 31+31 cycles = ~51.6 ns

	media := []FrontendMedia{
		{Name: "DRAM", ReadLatency: 15 * sim.Nanosecond, MaxDensityGb: 16},
		{Name: "STT-MRAM", ReadLatency: 35 * sim.Nanosecond, MaxDensityGb: 1},
		{Name: "PRAM (3DX-class)", ReadLatency: 300 * sim.Nanosecond, MaxDensityGb: 128},
		{Name: "ReRAM", ReadLatency: 1 * sim.Microsecond, MaxDensityGb: 32},
		{Name: "Z-NAND", ReadLatency: 3 * sim.Microsecond, MaxDensityGb: 512},
		{Name: "NAND (TLC)", ReadLatency: 50 * sim.Microsecond, MaxDensityGb: 1024},
	}
	for i := range media {
		m := &media[i]
		m.Feasible = m.ReadLatency <= budget
		switch {
		case !m.Feasible:
			m.Reason = "read latency exceeds the iMC's maximum programmable tRCD+tCL"
		case m.MaxDensityGb < 8:
			m.Reason = "timing-compatible but density too low for SCM (the paper's STT-MRAM verdict)"
		default:
			m.Reason = "feasible (this is what DRAM-as-frontend uses as the cache)"
		}
	}

	o.printf("== Fig. 1a strawman: NVMC-as-frontend timing budget ==\n")
	o.printf("  budget (max programmable tRCD+tCL @DDR4-2400): %v\n", budget)
	for _, m := range media {
		verdict := "NO "
		if m.Feasible {
			verdict = "yes"
		}
		o.printf("  %-18s read %-10v density %4d Gb  frontend-capable: %s — %s\n",
			m.Name, m.ReadLatency, m.MaxDensityGb, verdict, m.Reason)
	}
	o.printf("  conclusion: no NVM is both fast AND dense enough -> DRAM-as-frontend (Fig. 1b)\n")
	return FrontendResult{Budget: budget, Media: media}
}
