package experiments

import (
	"nvdimmc/internal/core"
	"nvdimmc/internal/nvdc"
	"nvdimmc/internal/workload/fio"
)

// AblationResult holds the §VII-C future-work matrix: uncached 4 KB
// random-read bandwidth under each device/driver improvement the paper
// proposes, against the PoC baseline configuration.
type AblationResult struct {
	Rows []Row // Paper column unused (these are projections, not measurements)
}

// Ablations measures the §VII-C design alternatives:
//
//	(1) the PoC as built (separate poll/data/ack windows, QD 1, 4 KB/window)
//	(2) ack merged into the data window (cuts one window per command)
//	(3) merged writeback+cachefill command (future work item 4)
//	(4) CP command depth 2 (item 2)
//	(5) 8 KB per window (item 3) combined with (3)
//	(6) dirty tracking (clean victims skip writeback entirely)
//	(7) LRU replacement (the §VII-B5 suggestion; matters for reuse, shown
//	    here for completeness on the uniform-random workload)
func Ablations(o Options) (AblationResult, error) {
	var res AblationResult
	ops := o.pick(300, 100)

	type variant struct {
		name string
		mod  func(*core.Config)
	}
	variants := []variant{
		{"PoC baseline (QD1, 3 windows/cmd)", func(c *core.Config) {}},
		{"+ack merges with data window", func(c *core.Config) {
			c.NVMC.AckMergesWithData = true
		}},
		{"+combined wb+cf command", func(c *core.Config) {
			c.NVMC.AckMergesWithData = true
			c.Driver.CombineWBCF = true
		}},
		{"+CP depth 2 (driver-pipelined)", func(c *core.Config) {
			c.NVMC.AckMergesWithData = true
			c.Driver.CombineWBCF = true
			c.NVMC.CommandDepth = 2
			c.Driver.CPQueueDepth = 2
		}},
		{"+8KB windows", func(c *core.Config) {
			c.NVMC.AckMergesWithData = true
			c.Driver.CombineWBCF = true
			c.NVMC.CommandDepth = 2
			c.Driver.CPQueueDepth = 2
			c.NVMC.MaxBytesPerWindow = 8192
		}},
		{"dirty tracking (read workload)", func(c *core.Config) {
			c.Driver.TrackDirty = true
		}},
		{"LRU replacement", func(c *core.Config) {
			c.Driver.Policy = nvdc.PolicyLRU
		}},
	}

	for _, v := range variants {
		cfg := nvdcConfig(o.pick(512, 256))
		v.mod(&cfg)
		s, err := coreSystem(cfg)
		if err != nil {
			return res, err
		}
		if err := prefillMedia(s); err != nil {
			return res, err
		}
		tgt := s.NewFioTarget()
		tgt.SetWalkFootprint(120 << 30)
		jobs := 1
		if cfg.Driver.CPQueueDepth > 1 {
			jobs = 4 // pipelining only shows with concurrent misses
		}
		r, err := fio.Run(tgt, fio.Job{
			Pattern: fio.RandRead, BlockSize: PageSize, NumJobs: jobs,
			FileSize: tgt.Capacity(), OpsPerThread: ops / jobs,
			WarmupOps: (s.Layout.NumSlots + 50) / jobs, Seed: 7,
		})
		if err != nil {
			return res, err
		}
		if err := s.CheckHealth(); err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, Row{Name: v.name, Measured: r.BandwidthMBps(), Unit: "MB/s"})
	}

	printRows(o, "Ablations (§VII-C): uncached 4KB randread", res.Rows)
	return res, nil
}
