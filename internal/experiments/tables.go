package experiments

// Table1 prints the Table I test-system configuration: the paper's testbed
// and this reproduction's scaled equivalent side by side.
func Table1(o Options) {
	o.printf("== Table I: test system configuration ==\n")
	rows := [][2]string{
		{"CPU", "paper: 1x Intel Xeon Platinum 8168 (Skylake-SP) | model: host-cost model + driver lock"},
		{"Platform", "paper: Intel Server Board S2600WF | model: DES kernel (ps resolution)"},
		{"Main memory", "paper: 2x 128 GB DDR4 RDIMM @1600, tRFC 350 ns | model: out of scope (apps use it implicitly)"},
		{"Baseline /dev/pmem0", "paper: 1x 128 GB RDIMM @1600, tRFC 1250 ns, XFS-dax | model: internal/pmem, 128 GB sparse"},
		{"NVDIMM-C /dev/nvdc0", "paper: 128 GB module, 16 GB DRAM + 2x64 GB Z-NAND, tRFC 1250 ns | model: internal/core, 16 MB cache : 128 MB Z-NAND (1:8 preserved)"},
		{"Storage", "paper: PM863 1.92 TB SATA (520/475 MB/s) | model: 520 MB/s source in Fig. 7 harness"},
		{"OS", "paper: SLES 12 SP3, Linux 4.4.73 | model: nvdc driver + fsdax fault path in internal/nvdc"},
	}
	for _, r := range rows {
		o.printf("  %-22s %s\n", r[0], r[1])
	}
}

// Table2 prints the Table II benchmark inventory and where each lives here.
func Table2(o Options) {
	o.printf("== Table II: benchmarks and metrics ==\n")
	rows := [][2]string{
		{"FIO v3.10", "latency, bandwidth -> internal/workload/fio (Figs. 8-10, 12, 13)"},
		{"TPC-H on SAP HANA", "query time -> internal/workload/tpch + internal/imdb (Fig. 11)"},
		{"In-house mixed-load IMDB", "concurrent users, validation -> internal/imdb MixedLoad"},
		{"STREAM (modified)", "refresh-detection aging -> internal/workload/stream (§VII-A)"},
	}
	for _, r := range rows {
		o.printf("  %-26s %s\n", r[0], r[1])
	}
}
