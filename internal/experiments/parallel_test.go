package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestRunShardsOrderAndErrors: results land at their shard index regardless
// of worker count, every shard runs even when one fails, and the joined
// error leads with the lowest failing shard.
func TestRunShardsOrderAndErrors(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		got, err := runShards(10, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: shard %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}

	var ran atomic.Int64
	_, err := runShards(8, 4, func(i int) (int, error) {
		ran.Add(1)
		if i == 2 || i == 5 {
			return 0, fmt.Errorf("shard %d boom", i)
		}
		return i, nil
	})
	if ran.Load() != 8 {
		t.Fatalf("only %d/8 shards ran after a failure", ran.Load())
	}
	if err == nil {
		t.Fatal("failing shards reported no error")
	}
	var first string
	if lines := err.Error(); len(lines) > 0 {
		first = lines
	}
	if want := "shard 2 boom"; len(first) < len(want) || first[:len(want)] != want {
		t.Fatalf("joined error does not lead with lowest shard: %q", err)
	}
	if !errors.Is(err, err) { // sanity: joined error is inspectable
		t.Fatal("joined error broken")
	}
}

// TestCrashSweepParallelIdentical: the tentpole determinism guarantee — the
// crash sweep with 4 workers must produce byte-identical printed output and
// an identical result struct to the serial run from the same seed.
func TestCrashSweepParallelIdentical(t *testing.T) {
	run := func(parallel int) (*CrashResult, string) {
		var buf bytes.Buffer
		res, err := CrashSweep(Options{Quick: true, Out: &buf, Parallel: parallel})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return res, buf.String()
	}
	serialRes, serialOut := run(1)
	parRes, parOut := run(4)
	if serialOut != parOut {
		t.Fatalf("output diverged:\n--- serial ---\n%s\n--- parallel ---\n%s", serialOut, parOut)
	}
	if !reflect.DeepEqual(serialRes, parRes) {
		t.Fatalf("results diverged: %+v vs %+v", serialRes, parRes)
	}
}

// TestFig9ParallelIdentical: same guarantee for the thread-sweep matrix.
func TestFig9ParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick fig9 runs; skipped under -short")
	}
	run := func(parallel int) (Fig9Result, string) {
		var buf bytes.Buffer
		res, err := Fig9(Options{Quick: true, Out: &buf, Parallel: parallel})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return res, buf.String()
	}
	serialRes, serialOut := run(1)
	parRes, parOut := run(4)
	if serialOut != parOut {
		t.Fatalf("output diverged:\n--- serial ---\n%s\n--- parallel ---\n%s", serialOut, parOut)
	}
	if !reflect.DeepEqual(serialRes, parRes) {
		t.Fatalf("results diverged: %+v vs %+v", serialRes, parRes)
	}
}

// TestFig13ParallelIdentical: same guarantee for the tREFI sweep.
func TestFig13ParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick fig13 runs; skipped under -short")
	}
	run := func(parallel int) (Fig13Result, string) {
		var buf bytes.Buffer
		res, err := Fig13(Options{Quick: true, Out: &buf, Parallel: parallel})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return res, buf.String()
	}
	serialRes, serialOut := run(1)
	parRes, parOut := run(4)
	if serialOut != parOut {
		t.Fatalf("output diverged:\n--- serial ---\n%s\n--- parallel ---\n%s", serialOut, parOut)
	}
	if !reflect.DeepEqual(serialRes, parRes) {
		t.Fatalf("results diverged: %+v vs %+v", serialRes, parRes)
	}
}
