package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// TestQoSIdenticalAcrossWorkers pins the QoS campaign's full determinism
// matrix: worker counts 1/2/8 crossed with the lookahead scheduler on and
// off must table byte-identical output and deeply-equal results — the
// token-bucket refills, DRR dispatch and per-tenant histograms all replay
// exactly under sharding and quiet-epoch batching. The -short lane keeps a
// single serial-vs-sharded-lockstep pair so the contract stays race-checked.
func TestQoSIdenticalAcrossWorkers(t *testing.T) {
	run := func(parallel int, lockstep bool) (QoSResult, string) {
		var buf bytes.Buffer
		res, err := QoS(Options{Quick: true, Out: &buf, Parallel: parallel,
			DisableLookahead: lockstep})
		if err != nil {
			t.Fatalf("parallel=%d lockstep=%v: %v", parallel, lockstep, err)
		}
		return res, buf.String()
	}
	type variant struct {
		parallel int
		lockstep bool
	}
	variants := []variant{{2, false}, {8, false}, {1, true}, {2, true}, {8, true}}
	if testing.Short() {
		variants = []variant{{2, true}}
	}
	baseRes, baseOut := run(1, false)
	for _, v := range variants {
		res, out := run(v.parallel, v.lockstep)
		if out != baseOut {
			t.Fatalf("parallel=%d lockstep=%v diverged from serial lookahead:\n--- serial ---\n%s\n--- variant ---\n%s",
				v.parallel, v.lockstep, baseOut, out)
		}
		if !reflect.DeepEqual(res, baseRes) {
			t.Fatalf("parallel=%d lockstep=%v changed campaign results: %+v vs %+v",
				v.parallel, v.lockstep, res, baseRes)
		}
	}
}

// TestQoSCampaignGates re-asserts the campaign's acceptance shape on the
// quick table (the façade enforces the same bounds): fault-free isolation on
// holds every light SLO while throttling the hot tenant to its bucket;
// fault-free isolation off loses at least one light; nothing is lost
// anywhere.
func TestQoSCampaignGates(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick campaign; identity test covers -short")
	}
	res, err := QoS(Options{Quick: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.AckedLostTotal() != 0 {
		t.Fatalf("%d acked writes lost", res.AckedLostTotal())
	}
	on := res.Find(true, "none")
	if on == nil {
		t.Fatal("no fault-free isolation-on point")
	}
	if n := on.LightViolations(); n != 0 {
		t.Fatalf("isolation on: %d light tenants missed the SLO (worst p99 %v, target %v)",
			n, on.WorstLightP99(), res.SLOTarget)
	}
	if on.HotThrottled() == 0 {
		t.Fatal("isolation on: hot tenant at 4x its bucket rate never throttled")
	}
	if on.HotRatio < 0.75 || on.HotRatio > 1.25 {
		t.Fatalf("isolation on: hot goodput %.2fx its bucket rate, outside 0.75-1.25", on.HotRatio)
	}
	off := res.Find(false, "none")
	if off == nil {
		t.Fatal("no fault-free isolation-off point")
	}
	if off.LightViolations() == 0 {
		t.Fatalf("isolation off: no light tenant violated (worst p99 %v, target %v) — control arm lost",
			off.WorstLightP99(), res.SLOTarget)
	}
	if off.HotThrottled() != 0 {
		t.Fatalf("isolation off still throttled %d hot requests", off.HotThrottled())
	}
}

// TestQoSResultAccessors exercises the campaign-table accessors on a
// hand-built result so the -short lane covers the façade's gate inputs
// without running a campaign.
func TestQoSResultAccessors(t *testing.T) {
	res := QoSResult{Rows: []QoSPoint{
		{Isolation: true, Fault: "none", AckedLost: 0, Tenants: []QoSTenantRow{
			{Name: "hot", Throttled: 7}, {Name: "light0", P99: 10}, {Name: "light1", P99: 30, Violated: true},
		}},
		{Isolation: false, Fault: "none", AckedLost: 2, Tenants: []QoSTenantRow{
			{Name: "hot"}, {Name: "light0", P99: 50, Violated: true},
		}},
	}}
	if got := res.Points(); got != 2 {
		t.Fatalf("Points() = %d, want 2", got)
	}
	if got := res.AckedLostTotal(); got != 2 {
		t.Fatalf("AckedLostTotal() = %d, want 2", got)
	}
	on := res.Find(true, "none")
	if on == nil || on.HotThrottled() != 7 {
		t.Fatalf("Find(true, none) = %+v, want hot throttled 7", on)
	}
	if got := on.LightViolations(); got != 1 {
		t.Fatalf("LightViolations() = %d, want 1", got)
	}
	if got := on.WorstLightP99(); got != 30 {
		t.Fatalf("WorstLightP99() = %v, want 30", got)
	}
	if res.Find(true, "program") != nil {
		t.Fatal("Find(true, program) should be nil on a two-point table")
	}
}
