package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// TestNumaParallelIdentical: the fabric campaign must print a byte-identical
// table and return an identical result struct at any -parallel setting.
// Points are independent seeded fabrics, so this checks the shard fan-out
// plus every per-point seed split (socket pools, fault schedules, workload)
// for worker-count leakage.
func TestNumaParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign twice; covered unshortened in the race lane")
	}
	run := func(parallel int) (NumaResult, string) {
		var buf bytes.Buffer
		res, err := Numa(Options{Quick: true, Out: &buf, Parallel: parallel})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return res, buf.String()
	}
	serialRes, serialOut := run(1)
	res, out := run(4)
	if out != serialOut {
		t.Fatalf("parallel output diverged:\n--- serial ---\n%s\n--- parallel ---\n%s", serialOut, out)
	}
	if !reflect.DeepEqual(res, serialRes) {
		t.Fatalf("parallel results diverged: %+v vs %+v", res, serialRes)
	}
}

// TestNumaCampaignLattice pins the fabric campaign's robustness claims:
// zero acked-write loss and zero post-evacuation submissions at every
// point, every killed socket evacuated with its chunks re-homed and pages
// migrated, no transiently slow or degraded socket condemned, and no point's
// availability collapsing behind cross-socket failover.
func TestNumaCampaignLattice(t *testing.T) {
	res, err := Numa(Options{Quick: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points() < 9 {
		t.Fatalf("campaign ran %d points, want >= 9", res.Points())
	}
	if got := res.AckedLostTotal(); got != 0 {
		t.Errorf("%d acked writes lost across the campaign", got)
	}
	if got := res.PostEvacTotal(); got != 0 {
		t.Errorf("%d foreground submissions reached evacuating sockets", got)
	}
	if err := res.CheckLattice(); err != nil {
		t.Error(err)
	}
	if res.Evacuations() == 0 {
		t.Fatal("no campaign point evacuated a socket")
	}
	for _, r := range res.Rows {
		if r.Kind == "socket-kill" && r.MigPages == 0 {
			t.Errorf("point %d: killed socket %d migrated no resident pages", r.Point, r.Victim)
		}
	}
	if min := res.MinAvailability(); min < 0.5 {
		t.Fatalf("worst-point availability %.2f%% — a fault mode collapsed the fabric", 100*min)
	}
}
