package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// TestPoolLookaheadLockstepIdentical: the pool experiment's printed output
// must be byte-identical with the lookahead scheduler disabled, at any
// worker count. Combined with TestPoolParallelIdentical (lookahead on at
// 1/2/8 workers vs serial) this closes the full scheduler x worker matrix.
// The -race -short lane keeps one lockstep run so the naive path stays
// race-checked too.
func TestPoolLookaheadLockstepIdentical(t *testing.T) {
	run := func(parallel int, lockstep bool) string {
		var buf bytes.Buffer
		if _, err := Pool(Options{Quick: true, Out: &buf, Parallel: parallel,
			DisableLookahead: lockstep}); err != nil {
			t.Fatalf("parallel=%d lockstep=%v: %v", parallel, lockstep, err)
		}
		return buf.String()
	}
	base := run(1, false)
	counts := []int{1, 2, 8}
	if testing.Short() {
		counts = []int{2}
	}
	for _, parallel := range counts {
		if out := run(parallel, true); out != base {
			t.Fatalf("lockstep parallel=%d diverged from lookahead serial:\n--- lookahead ---\n%s\n--- lockstep ---\n%s",
				parallel, base, out)
		}
	}
}

// TestFaultPoolLookaheadIdentical: the fault campaign (members with armed
// fault registries, retries, breakers, rebuilds in play) must table the
// same bytes with the scheduler on and off — quiet-epoch batching may not
// move any fault-path event.
func TestFaultPoolLookaheadIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign twice; pool coverage stays in the -short lane")
	}
	run := func(lockstep bool) (FaultPoolResult, string) {
		var buf bytes.Buffer
		res, err := FaultPool(Options{Quick: true, Out: &buf, Parallel: 4,
			DisableLookahead: lockstep})
		if err != nil {
			t.Fatalf("lockstep=%v: %v", lockstep, err)
		}
		return res, buf.String()
	}
	aheadRes, aheadOut := run(false)
	lockRes, lockOut := run(true)
	if aheadOut != lockOut {
		t.Fatalf("scheduler changed campaign output:\n--- lookahead ---\n%s\n--- lockstep ---\n%s",
			aheadOut, lockOut)
	}
	if !reflect.DeepEqual(aheadRes, lockRes) {
		t.Fatalf("scheduler changed campaign results: %+v vs %+v", aheadRes, lockRes)
	}
}

// TestOverloadLookaheadIdentical: same contract for the saturation campaign
// (deadlines, sheds, retry backoff under load) — the deadline and
// retry-ready horizons must stop every quiet batch exactly where the naive
// scheduler would have acted.
func TestOverloadLookaheadIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign twice; pool coverage stays in the -short lane")
	}
	run := func(lockstep bool) (OverloadResult, string) {
		var buf bytes.Buffer
		res, err := Overload(Options{Quick: true, Out: &buf, Parallel: 4,
			DisableLookahead: lockstep})
		if err != nil {
			t.Fatalf("lockstep=%v: %v", lockstep, err)
		}
		return res, buf.String()
	}
	aheadRes, aheadOut := run(false)
	lockRes, lockOut := run(true)
	if aheadOut != lockOut {
		t.Fatalf("scheduler changed campaign output:\n--- lookahead ---\n%s\n--- lockstep ---\n%s",
			aheadOut, lockOut)
	}
	if !reflect.DeepEqual(aheadRes, lockRes) {
		t.Fatalf("scheduler changed campaign results: %+v vs %+v", aheadRes, lockRes)
	}
}
