package experiments

import (
	"fmt"

	"nvdimmc/internal/report"
	"nvdimmc/internal/workload/fio"
)

// Fig9Point is one (threads, KIOPS, MB/s) sample of a thread-sweep series.
type Fig9Point struct {
	Threads int
	KIOPS   float64
	MBps    float64
}

// Fig9Result holds the thread-count sweep (Fig. 9): baseline / NVDC-Cached /
// NVDC-Uncached for reads and writes.
type Fig9Result struct {
	// Series maps "baseline-read" etc. to sweep points.
	Series map[string][]Fig9Point
}

// Peak returns the maximum bandwidth of a series.
func (r Fig9Result) Peak(name string) (threads int, mbps float64) {
	for _, p := range r.Series[name] {
		if p.MBps > mbps {
			mbps, threads = p.MBps, p.Threads
		}
	}
	return
}

// Fig9 sweeps thread counts. Paper anchors: baseline peaks 2123 KIOPS /
// 8694 MB/s @8 threads; Cached reads 1060 KIOPS / 4341 MB/s @8 (writes
// 4615 MB/s @16); Uncached saturates at 4 threads near 99.7 MB/s.
func Fig9(o Options) (Fig9Result, error) {
	res := Fig9Result{Series: make(map[string][]Fig9Point)}
	threads := []int{1, 2, 4, 8, 16}
	if o.Quick {
		threads = []int{1, 4, 8}
	}
	ops := o.pick(600, 200)

	run := func(name string, write bool, jobs int) (fio.Result, error) {
		pat := fio.RandRead
		if write {
			pat = fio.RandWrite
		}
		switch name {
		case "baseline":
			d, err := newBaseline()
			if err != nil {
				return fio.Result{}, err
			}
			return fio.Run(d, fio.Job{
				Pattern: pat, BlockSize: PageSize, NumJobs: jobs,
				FileSize: 120 << 30, OpsPerThread: ops, WarmupOps: ops / 10,
			})
		case "cached":
			s, err := coreSystem(nvdcConfig(0))
			if err != nil {
				return fio.Result{}, err
			}
			pages := s.Layout.NumSlots * 9 / 10
			if err := prefillSlots(s, pages); err != nil {
				return fio.Result{}, err
			}
			tgt := s.NewFioTarget()
			tgt.SetWalkFootprint(15 << 30)
			return fio.Run(tgt, fio.Job{
				Pattern: pat, BlockSize: PageSize, NumJobs: jobs,
				FileSize: int64(pages) * PageSize, OpsPerThread: ops, WarmupOps: ops / 10,
			})
		case "uncached":
			s, err := coreSystem(nvdcConfig(o.pick(512, 256)))
			if err != nil {
				return fio.Result{}, err
			}
			if err := prefillMedia(s); err != nil {
				return fio.Result{}, err
			}
			tgt := s.NewFioTarget()
			tgt.SetWalkFootprint(120 << 30)
			return fio.Run(tgt, fio.Job{
				Pattern: pat, BlockSize: PageSize, NumJobs: jobs,
				FileSize: tgt.Capacity(), OpsPerThread: o.pick(150, 60),
				WarmupOps: (s.Layout.NumSlots + 100) / jobs, Seed: 7,
			})
		}
		return fio.Result{}, fmt.Errorf("experiments: unknown series %q", name)
	}

	// Every (series, pattern, threads) sample is an independent system build
	// plus run, so the whole sweep fans out as shards and merges in the
	// canonical enumeration order below.
	type sweepPoint struct {
		series string
		key    string
		write  bool
		jobs   int
	}
	var pts []sweepPoint
	for _, series := range []string{"baseline", "cached", "uncached"} {
		for _, write := range []bool{false, true} {
			key := series + "-read"
			if write {
				key = series + "-write"
			}
			for _, jobs := range threads {
				if series == "uncached" && jobs > 8 {
					continue // the paper stops the uncached sweep early too
				}
				pts = append(pts, sweepPoint{series: series, key: key, write: write, jobs: jobs})
			}
		}
	}
	measured, err := runShards(len(pts), o.workers(), func(i int) (Fig9Point, error) {
		p := pts[i]
		r, err := run(p.series, p.write, p.jobs)
		if err != nil {
			return Fig9Point{}, fmt.Errorf("%s jobs=%d: %w", p.key, p.jobs, err)
		}
		return Fig9Point{Threads: p.jobs, KIOPS: r.KIOPS(), MBps: r.BandwidthMBps()}, nil
	})
	if err != nil {
		return res, err
	}
	for i, p := range pts {
		res.Series[p.key] = append(res.Series[p.key], measured[i])
	}

	o.printf("== Fig. 9: 4KB random R/W vs thread count ==\n")
	for _, key := range []string{"baseline-read", "baseline-write", "cached-read", "cached-write", "uncached-read", "uncached-write"} {
		o.printf("  %-16s", key)
		var ys []float64
		for _, p := range res.Series[key] {
			o.printf("  %dT:%6.0fMB/s", p.Threads, p.MBps)
			ys = append(ys, p.MBps)
		}
		o.printf("  %s\n", report.Sparkline(ys))
	}
	o.printf("  paper peaks: baseline 8694 MB/s @8T; cached-read 4341 @8T; cached-write 4615 @16T; uncached ~99.7 @4T\n")
	return res, nil
}
