package experiments

import (
	"fmt"
	"time"

	"nvdimmc/internal/core"
	"nvdimmc/internal/pool"
	"nvdimmc/internal/report"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/openloop"
)

// PoolPoint is one (channels, interleave) cell of the socket-scaling table.
type PoolPoint struct {
	Channels     int
	InterleaveKB int
	MBps         float64
	P50          sim.Duration
	P99          sim.Duration
	P999         sim.Duration
	HeldPeak     int
}

// PoolResult is the channel-scaling table (the paper's §VIII deployment
// projected from its §VI single-module measurements), plus the idle-heavy
// harness-performance measurement (lookahead scheduler vs naive lockstep).
type PoolResult struct {
	Rows []PoolPoint

	// IdleReqs / IdleEpochs describe the idle-heavy rated segment: a
	// 6-channel pool under an open-loop rate whose mean inter-arrival spans
	// ~64 epochs, run twice on identical seeds — naive lockstep, then the
	// lookahead scheduler — with identical simulated outputs (the harness
	// errors otherwise). The Wall fields are host wall-clock (nondeterm-
	// inistic; they reach the bench snapshot through advisory headlines and
	// are never printed, so experiment stdout stays byte-comparable).
	IdleReqs            int
	IdleEpochs          int
	IdleWallLockstepMS  float64
	IdleWallLookaheadMS float64
}

// IdleSpeedupX returns the lockstep/lookahead wall-clock ratio of the
// idle-heavy segment (0 until measured).
func (r PoolResult) IdleSpeedupX() float64 {
	if r.IdleWallLookaheadMS <= 0 {
		return 0
	}
	return r.IdleWallLockstepMS / r.IdleWallLookaheadMS
}

// At returns the cell for a channel count and interleave granularity (KB).
func (r PoolResult) At(channels, interleaveKB int) PoolPoint {
	for _, p := range r.Rows {
		if p.Channels == channels && p.InterleaveKB == interleaveKB {
			return p
		}
	}
	return PoolPoint{}
}

// ScalingX returns the 1->6 channel read-bandwidth scaling factor at 4 KB
// interleave.
func (r PoolResult) ScalingX() float64 {
	one := r.At(1, 4).MBps
	if one == 0 {
		return 0
	}
	return r.At(6, 4).MBps / one
}

// poolMemberCfg returns the per-(channel,DIMM) member configuration: the
// standard scaled module at full scale, a further-shrunken one (4 MB cache,
// still big enough to hold whole 2 MB stripes) for -quick.
func poolMemberCfg(o Options) core.Config {
	cfg := core.DefaultConfig()
	if o.Quick {
		cfg.CacheBytes = 4 << 20
		cfg.NAND.BlocksPerDie = 32
	}
	return cfg
}

// Pool sweeps the pooled socket: 1/2/4/6 channels x {4 KB, 2 MB} interleave
// under a saturating two-tenant open-loop load (a zipfian read-mostly
// key-value tenant over the low half, a uniform mixed tenant over the high
// half). Cells run in sequence; inside each cell the pool's epoch-lockstep
// engine fans the members across o.Parallel workers with byte-identical
// output, so this experiment is the end-to-end exercise of that guarantee.
func Pool(o Options) (PoolResult, error) {
	var res PoolResult
	channelCounts := []int{1, 2, 4, 6}
	grans := []int64{4096, 2 << 20}
	perChannel := o.pick(600, 150)

	for _, gran := range grans {
		for _, channels := range channelCounts {
			p, err := pool.New(pool.Config{
				Channels:         channels,
				DIMMsPerChannel:  1,
				Interleave:       gran,
				Member:           poolMemberCfg(o),
				Workers:          o.workers(),
				Seed:             7,
				PrefillPages:     -1,
				WalkFootprint:    15 << 30,
				DisableLookahead: o.DisableLookahead,
			})
			if err != nil {
				return res, fmt.Errorf("pool %dch gran=%d: %w", channels, gran, err)
			}
			foot := p.CachedFootprint()
			gen, err := openloop.New(openloop.Config{
				Seed:       sim.SplitSeed(7, fmt.Sprintf("pool-exp/%d/%d", channels, gran)),
				RatePerSec: 0, // saturating: measure delivered, not offered, bandwidth
				Tenants: []openloop.Tenant{
					{Name: "kv", Dist: openloop.Zipfian, Weight: 3, ReadPct: 90,
						Footprint: foot / 2},
					{Name: "mix", Dist: openloop.Uniform, Weight: 1, ReadPct: 50,
						Footprint: foot - foot/2, Offset: foot / 2},
				},
			})
			if err != nil {
				return res, err
			}
			if err := p.RunOpenLoop(gen, perChannel*channels); err != nil {
				return res, fmt.Errorf("pool %dch gran=%d: %w", channels, gran, err)
			}
			if err := p.CheckHealth(); err != nil {
				return res, fmt.Errorf("pool %dch gran=%d: %w", channels, gran, err)
			}
			s := p.Stats()
			res.Rows = append(res.Rows, PoolPoint{
				Channels:     channels,
				InterleaveKB: int(gran >> 10),
				MBps:         s.Meter.BandwidthMBps(),
				P50:          s.Lat.Percentile(50),
				P99:          s.Lat.Percentile(99),
				P999:         s.Lat.Percentile(99.9),
				HeldPeak:     s.HeldPeak,
			})
		}
	}

	// Harness-performance segment: the same 6-channel pool under an
	// idle-heavy *rated* open-loop load (mean inter-arrival ~64 epochs at
	// the default tREFI epoch), run twice on identical seeds — naive
	// lockstep first, then the lookahead scheduler — asserting identical
	// simulated outputs and measuring the wall-clock ratio. Only
	// deterministic (simulated) values are printed; the wall-clock numbers
	// leave through the advisory headlines so stdout stays byte-comparable
	// across runs, worker counts and scheduler modes.
	idleReqs := o.pick(3000, 400)
	idleRun := func(lockstep bool) (string, int, float64, error) {
		p, err := pool.New(pool.Config{
			Channels:        6,
			DIMMsPerChannel: 1,
			Interleave:      4096,
			Member:          poolMemberCfg(o),
			Workers:         o.workers(),
			Seed:            7,
			PrefillPages:    -1,
			WalkFootprint:   15 << 30,
			// The default 4-epoch probe period clips every quiet batch to 4
			// epochs; this segment measures scheduler throughput on a
			// fault-free pool, so the probe runs at a deployment-style period
			// instead (identical in both runs either way).
			ProbeEvery:       64,
			DisableLookahead: lockstep,
		})
		if err != nil {
			return "", 0, 0, fmt.Errorf("pool idle segment: %w", err)
		}
		foot := p.CachedFootprint()
		gen, err := openloop.New(openloop.Config{
			Seed:       sim.SplitSeed(7, "pool-exp/idle"),
			RatePerSec: 2e3, // ~500 us between arrivals (~64 epochs): idle-dominated
			Tenants: []openloop.Tenant{
				{Name: "kv", Dist: openloop.Zipfian, Weight: 3, ReadPct: 90,
					Footprint: foot / 2},
				{Name: "mix", Dist: openloop.Uniform, Weight: 1, ReadPct: 50,
					Footprint: foot - foot/2, Offset: foot / 2},
			},
		})
		if err != nil {
			return "", 0, 0, err
		}
		start := time.Now()
		if err := p.RunOpenLoop(gen, idleReqs); err != nil {
			return "", 0, 0, fmt.Errorf("pool idle segment: %w", err)
		}
		wallMS := float64(time.Since(start).Microseconds()) / 1000
		if err := p.CheckHealth(); err != nil {
			return "", 0, 0, fmt.Errorf("pool idle segment: %w", err)
		}
		s := p.Stats()
		fp := fmt.Sprintf("reqs=%d done=%d failed=%d shed=%d expired=%d epochs=%d held-peak=%d p50=%v p99=%v p999=%v bw=%.3fMB/s",
			s.Submitted, s.Completed, s.Failed, s.Shed, s.Expired, s.Epochs, s.HeldPeak,
			s.Lat.Percentile(50), s.Lat.Percentile(99), s.Lat.Percentile(99.9), s.Meter.BandwidthMBps())
		return fp, s.Epochs, wallMS, nil
	}
	lockFP, lockEpochs, lockWall, err := idleRun(true)
	if err != nil {
		return res, err
	}
	aheadFP, _, aheadWall, err := idleRun(false)
	if err != nil {
		return res, err
	}
	if lockFP != aheadFP {
		return res, fmt.Errorf("pool idle segment: lookahead diverged from lockstep:\n  lockstep:  %s\n  lookahead: %s",
			lockFP, aheadFP)
	}
	res.IdleReqs = idleReqs
	res.IdleEpochs = lockEpochs
	res.IdleWallLockstepMS = lockWall
	res.IdleWallLookaheadMS = aheadWall

	o.printf("== Pool: socket scaling, open-loop 2-tenant load (saturating) ==\n")
	for _, gran := range grans {
		kb := int(gran >> 10)
		o.printf("  interleave %4d KB", kb)
		var ys []float64
		for _, channels := range channelCounts {
			pt := res.At(channels, kb)
			o.printf("  %dch:%6.0fMB/s", channels, pt.MBps)
			ys = append(ys, pt.MBps)
		}
		o.printf("  %s\n", report.Sparkline(ys))
		for _, channels := range channelCounts {
			pt := res.At(channels, kb)
			o.printf("    %dch  p50=%-10v p99=%-10v p999=%-10v held-peak=%d\n",
				channels, pt.P50, pt.P99, pt.P999, pt.HeldPeak)
		}
	}
	o.printf("  1->6ch scaling at 4 KB interleave: %.2fx (paper board: 6 channels/socket)\n",
		res.ScalingX())
	o.printf("  idle-heavy 6ch rated segment: lockstep and lookahead outputs identical\n    %s\n", lockFP)
	return res, nil
}
