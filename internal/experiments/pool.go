package experiments

import (
	"fmt"

	"nvdimmc/internal/core"
	"nvdimmc/internal/pool"
	"nvdimmc/internal/report"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/openloop"
)

// PoolPoint is one (channels, interleave) cell of the socket-scaling table.
type PoolPoint struct {
	Channels     int
	InterleaveKB int
	MBps         float64
	P50          sim.Duration
	P99          sim.Duration
	P999         sim.Duration
	HeldPeak     int
}

// PoolResult is the channel-scaling table (the paper's §VIII deployment
// projected from its §VI single-module measurements).
type PoolResult struct {
	Rows []PoolPoint
}

// At returns the cell for a channel count and interleave granularity (KB).
func (r PoolResult) At(channels, interleaveKB int) PoolPoint {
	for _, p := range r.Rows {
		if p.Channels == channels && p.InterleaveKB == interleaveKB {
			return p
		}
	}
	return PoolPoint{}
}

// ScalingX returns the 1->6 channel read-bandwidth scaling factor at 4 KB
// interleave.
func (r PoolResult) ScalingX() float64 {
	one := r.At(1, 4).MBps
	if one == 0 {
		return 0
	}
	return r.At(6, 4).MBps / one
}

// poolMemberCfg returns the per-(channel,DIMM) member configuration: the
// standard scaled module at full scale, a further-shrunken one (4 MB cache,
// still big enough to hold whole 2 MB stripes) for -quick.
func poolMemberCfg(o Options) core.Config {
	cfg := core.DefaultConfig()
	if o.Quick {
		cfg.CacheBytes = 4 << 20
		cfg.NAND.BlocksPerDie = 32
	}
	return cfg
}

// Pool sweeps the pooled socket: 1/2/4/6 channels x {4 KB, 2 MB} interleave
// under a saturating two-tenant open-loop load (a zipfian read-mostly
// key-value tenant over the low half, a uniform mixed tenant over the high
// half). Cells run in sequence; inside each cell the pool's epoch-lockstep
// engine fans the members across o.Parallel workers with byte-identical
// output, so this experiment is the end-to-end exercise of that guarantee.
func Pool(o Options) (PoolResult, error) {
	var res PoolResult
	channelCounts := []int{1, 2, 4, 6}
	grans := []int64{4096, 2 << 20}
	perChannel := o.pick(600, 150)

	for _, gran := range grans {
		for _, channels := range channelCounts {
			p, err := pool.New(pool.Config{
				Channels:        channels,
				DIMMsPerChannel: 1,
				Interleave:      gran,
				Member:          poolMemberCfg(o),
				Workers:         o.workers(),
				Seed:            7,
				PrefillPages:    -1,
				WalkFootprint:   15 << 30,
			})
			if err != nil {
				return res, fmt.Errorf("pool %dch gran=%d: %w", channels, gran, err)
			}
			foot := p.CachedFootprint()
			gen, err := openloop.New(openloop.Config{
				Seed:       sim.SplitSeed(7, fmt.Sprintf("pool-exp/%d/%d", channels, gran)),
				RatePerSec: 0, // saturating: measure delivered, not offered, bandwidth
				Tenants: []openloop.Tenant{
					{Name: "kv", Dist: openloop.Zipfian, Weight: 3, ReadPct: 90,
						Footprint: foot / 2},
					{Name: "mix", Dist: openloop.Uniform, Weight: 1, ReadPct: 50,
						Footprint: foot - foot/2, Offset: foot / 2},
				},
			})
			if err != nil {
				return res, err
			}
			if err := p.RunOpenLoop(gen, perChannel*channels); err != nil {
				return res, fmt.Errorf("pool %dch gran=%d: %w", channels, gran, err)
			}
			if err := p.CheckHealth(); err != nil {
				return res, fmt.Errorf("pool %dch gran=%d: %w", channels, gran, err)
			}
			s := p.Stats()
			res.Rows = append(res.Rows, PoolPoint{
				Channels:     channels,
				InterleaveKB: int(gran >> 10),
				MBps:         s.Meter.BandwidthMBps(),
				P50:          s.Lat.Percentile(50),
				P99:          s.Lat.Percentile(99),
				P999:         s.Lat.Percentile(99.9),
				HeldPeak:     s.HeldPeak,
			})
		}
	}

	o.printf("== Pool: socket scaling, open-loop 2-tenant load (saturating) ==\n")
	for _, gran := range grans {
		kb := int(gran >> 10)
		o.printf("  interleave %4d KB", kb)
		var ys []float64
		for _, channels := range channelCounts {
			pt := res.At(channels, kb)
			o.printf("  %dch:%6.0fMB/s", channels, pt.MBps)
			ys = append(ys, pt.MBps)
		}
		o.printf("  %s\n", report.Sparkline(ys))
		for _, channels := range channelCounts {
			pt := res.At(channels, kb)
			o.printf("    %dch  p50=%-10v p99=%-10v p999=%-10v held-peak=%d\n",
				channels, pt.P50, pt.P99, pt.P999, pt.HeldPeak)
		}
	}
	o.printf("  1->6ch scaling at 4 KB interleave: %.2fx (paper board: 6 channels/socket)\n",
		res.ScalingX())
	return res, nil
}
