package experiments

import (
	"fmt"

	"nvdimmc/internal/core"
	"nvdimmc/internal/fault"
	"nvdimmc/internal/pool"
	"nvdimmc/internal/report"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/openloop"
)

// faultKinds are the campaign's four failure modes, cycled across points:
// a persistent program failure (grown bad blocks -> read-only -> quarantine,
// failover and rebuild), a bounded burst of uncorrectable reads (retry and
// breaker territory), probabilistic die timeouts (latency tails, no errors),
// and dropped CP acks (transport timeouts and driver retries).
var faultKinds = []string{"program", "mediaread", "dietimeout", "ackdrop"}

// FaultPoolPoint is one seeded campaign point: a 3-channel pool with one hot
// spare, one sick member, and a mixed open-loop load.
type FaultPoolPoint struct {
	Point  int
	Kind   string
	Victim int // logical member carrying the fault
	Onset  int // site occurrence at which the fault schedule starts

	Availability float64 // completed / submitted
	P99          sim.Duration
	RebuildP99   sim.Duration // p99 of requests completing while a rebuild ran (0: none did)

	Failed         uint64
	AckedLost      uint64 // writes admitted but neither acked nor typed-failed (must be 0)
	PostQuarantine uint64 // fragments dispatched after quarantine (must be 0)
	Quarantined    int
	Evacuated      int
	SparesUsed     int
	RebuildPages   uint64
	BreakerTrips   uint64
	Retries        uint64
	// Suspects counts probe transitions into Suspect; transient faults the
	// member rode out show up here (paired with a later recovery) even when
	// the pool never saw a fragment fail.
	Suspects uint64
	// DriverErrors sums the members' driver-level error events (CP ack
	// timeouts, cachefill retries, ...): transient faults the drivers rode
	// out internally show up here even when no fragment ever failed.
	DriverErrors uint64
}

// FaultPoolResult is the socket-scale fault campaign table.
type FaultPoolResult struct {
	Rows []FaultPoolPoint
}

// Points returns the campaign size.
func (r FaultPoolResult) Points() int { return len(r.Rows) }

// AckedLostTotal sums acked-write loss across the campaign; the robustness
// claim is that it is zero at every point.
func (r FaultPoolResult) AckedLostTotal() uint64 {
	var t uint64
	for _, p := range r.Rows {
		t += p.AckedLost
	}
	return t
}

// PostQuarantineTotal sums post-quarantine dispatches (must be zero).
func (r FaultPoolResult) PostQuarantineTotal() uint64 {
	var t uint64
	for _, p := range r.Rows {
		t += p.PostQuarantine
	}
	return t
}

// MinAvailability returns the campaign's worst per-point availability.
func (r FaultPoolResult) MinAvailability() float64 {
	min := 1.0
	for _, p := range r.Rows {
		if p.Availability < min {
			min = p.Availability
		}
	}
	if len(r.Rows) == 0 {
		return 0
	}
	return min
}

// Failovers returns how many points engaged the hot spare.
func (r FaultPoolResult) Failovers() int {
	n := 0
	for _, p := range r.Rows {
		if p.SparesUsed > 0 {
			n++
		}
	}
	return n
}

// faultMemberCfg is the campaign member at both scales: a shrunken module
// with capacity close to its cache (the pool-test shape). Fault sites are
// only consulted on NAND and CP operations, and never-written pages
// zero-fill without touching NAND — so the campaign needs a working set
// that forces evictions (mapping pages onto media) and then re-reads them.
// A near-capacity footprint over a small member does exactly that; a
// paper-scale member would spend the whole campaign on unmapped zero-fills.
func faultMemberCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.CacheBytes = 1 << 20
	cfg.NAND.BlocksPerDie = 32
	cfg.NAND.PagesPerBlock = 16
	// Surface NAND program failures to the driver instead of letting the FTL
	// absorb them (posted programs never fail a front-end op otherwise).
	cfg.NVMC.AckAfterProgram = true
	// The auditor does not model deferred program acks under pipelined load
	// (it flags them as duplicated acks), so it is off for the campaign.
	cfg.Audit = false
	return cfg
}

// faultPoolPoint runs one campaign point. Each point is a fully independent
// pool (own seed splits for member RNG, fault schedules and workload), so
// points fan across shards with byte-identical merged output.
func faultPoolPoint(o Options, pt, reqs int) (FaultPoolPoint, error) {
	kind := faultKinds[pt%len(faultKinds)]
	const channels = 3
	victim := (pt / len(faultKinds)) % channels
	onset := 1 + 7*(pt/(len(faultKinds)*channels))

	p, err := pool.New(pool.Config{
		Channels:         channels,
		DIMMsPerChannel:  1,
		Interleave:       4096,
		Member:           faultMemberCfg(),
		Workers:          1, // points are the parallel axis; see TestPoolFaultedWorkerCountIdentical for the in-pool axis
		Seed:             sim.SplitSeed(11, fmt.Sprintf("faultpool/%d", pt)),
		PrefillPages:     -1,
		Spares:           1,
		DisableLookahead: o.DisableLookahead,
		// Misses serialize on a member's driver (~10 epochs per completion),
		// so the breaker window must span many epochs to gather samples.
		BreakerWindow:      64,
		BreakerMinSamples:  6,
		BreakerErrRate:     0.4,
		BreakerCooldown:    8,
		BreakerCloseStreak: 4,
		ArmFaults: func(member int, g *fault.Registry) {
			if member != victim {
				return
			}
			switch kind {
			case "program":
				g.OnOccurrence(fault.NANDProgramFail, uint64(onset)).Times(1 << 30)
			case "mediaread":
				g.OnOccurrence(fault.NANDReadBitFlip, uint64(onset)).Times(300)
			case "dietimeout":
				g.Prob(fault.NANDDieTimeout, 0.25).Param(400)
			case "ackdrop":
				g.OnOccurrence(fault.CPAckDrop, uint64(onset)).Times(12)
			}
		},
	})
	if err != nil {
		return FaultPoolPoint{}, fmt.Errorf("faultpool point %d: %w", pt, err)
	}
	// Full-capacity footprint: most accesses miss, evictions map pages onto
	// NAND, and re-reads consult the media fault sites (see faultMemberCfg).
	foot := p.Capacity()
	foot -= foot % p.Cfg.Interleave
	// mediaread points run a pure-read tenant at triple length: the bitflip
	// site is only consulted when a read reaches NAND, which takes an
	// evicted dirty page being re-read later — a rare event per op, so
	// these points need the extra traffic to ride the driver's cachefill
	// retries and the probe's Suspect->Up recovery into view. (The
	// guaranteed bitflip->fragment-failure chain is pinned by the pool's
	// breaker unit test; the campaign's job here is the transient-recovery
	// row.)
	readPct, preqs := 55, reqs
	if kind == "mediaread" {
		readPct, preqs = 100, 3*reqs
	}
	gen, err := openloop.New(openloop.Config{
		Seed:       sim.SplitSeed(11, fmt.Sprintf("faultpool-load/%d", pt)),
		RatePerSec: 1.5e6,
		Tenants: []openloop.Tenant{
			{Name: "mix", Dist: openloop.Uniform, ReadPct: readPct, Footprint: foot},
		},
	})
	if err != nil {
		return FaultPoolPoint{}, err
	}
	if err := p.RunOpenLoop(gen, preqs); err != nil {
		return FaultPoolPoint{}, fmt.Errorf("faultpool point %d (%s m%d): %w", pt, kind, victim, err)
	}
	if err := p.CheckHealth(); err != nil {
		return FaultPoolPoint{}, fmt.Errorf("faultpool point %d (%s m%d): %w", pt, kind, victim, err)
	}
	s := p.Stats()
	row := FaultPoolPoint{
		Point:          pt,
		Kind:           kind,
		Victim:         victim,
		Onset:          onset,
		P99:            s.Lat.Percentile(99),
		Failed:         s.Failed,
		AckedLost:      s.WritesIn - s.WritesAcked - s.WritesFailed,
		PostQuarantine: s.PostQuarantineDispatches,
		Quarantined:    s.Quarantined,
		Evacuated:      s.Evacuated,
		SparesUsed:     s.SparesUsed,
		RebuildPages:   s.Ctr.Get("rebuild-pages"),
		BreakerTrips:   s.Ctr.Get("breaker-trip"),
		Retries:        s.Ctr.Get("frags-retried"),
		Suspects:       s.Ctr.Get("member-suspect"),
	}
	for _, m := range s.PerMember {
		row.DriverErrors += m.DriverErrors
	}
	if s.Submitted > 0 {
		row.Availability = float64(s.Completed) / float64(s.Submitted)
	}
	if s.LatRebuild.Count() > 0 {
		row.RebuildP99 = s.LatRebuild.Percentile(99)
	}
	return row, nil
}

// FaultPool is the socket-scale fault campaign capping the pool's
// fault-tolerance layer: >= 32 seeded points, each a 3-channel + 1-spare
// pool with one sick member cycling through four failure modes, varying the
// victim and the fault onset. Per point it tables availability, the p99
// tail while the rebuild ran, and the conservation counters; the campaign
// claim is zero acked-write loss and zero post-quarantine dispatches at
// every point. Points fan across o.Parallel shards; the merged table is
// byte-identical at any worker count.
func FaultPool(o Options) (FaultPoolResult, error) {
	var res FaultPoolResult
	points := o.pick(48, 32)
	reqs := o.pick(600, 300)

	rows, err := runShards(points, o.workers(), func(pt int) (FaultPoolPoint, error) {
		return faultPoolPoint(o, pt, reqs)
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows

	o.printf("== FaultPool: %d-point socket fault campaign (3ch + 1 spare, %d reqs/point) ==\n",
		points, reqs)
	var avail []float64
	for _, r := range res.Rows {
		avail = append(avail, 100*r.Availability)
		reb := "-"
		if r.RebuildP99 > 0 {
			reb = fmt.Sprint(r.RebuildP99)
		}
		o.printf("  pt%02d %-10s m%d@%-3d avail=%6.2f%% p99=%-10v rebuild-p99=%-10s "+
			"derr=%-3d failed=%-3d retries=%-3d susp=%d trips=%d quar=%d evac=%d spare=%d pages=%-3d lost=%d postq=%d\n",
			r.Point, r.Kind, r.Victim, r.Onset, 100*r.Availability, r.P99, reb,
			r.DriverErrors, r.Failed, r.Retries, r.Suspects, r.BreakerTrips, r.Quarantined, r.Evacuated,
			r.SparesUsed, r.RebuildPages, r.AckedLost, r.PostQuarantine)
	}
	o.printf("  availability %s  min %.2f%%\n", report.Sparkline(avail), 100*res.MinAvailability())
	o.printf("  acked writes lost: %d  post-quarantine dispatches: %d  failovers: %d/%d points\n",
		res.AckedLostTotal(), res.PostQuarantineTotal(), res.Failovers(), points)
	return res, nil
}
