package experiments

import (
	"bytes"
	"fmt"

	"nvdimmc/internal/pool"
	"nvdimmc/internal/replay"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/openloop"
)

// The replay campaign caps the trace front-end: a live pool run under an
// overloaded, deadlined, shedding workload is captured into both trace
// formats by the generator's capture hook, then each trace is replayed
// through fresh pools across every execution variant — 1, 2 and 8 epoch
// workers, lookahead scheduler on and off. The claim under test is the
// determinism contract end to end: every replay reproduces the live run's
// observable statistics byte for byte (latency histograms, per-channel
// meters, outcome counters — the works), with zero re-timed records, and
// the binary format carries the same stream at a fraction of the text size.

// replayWorkerCounts are the epoch-worker settings each trace replays under.
var replayWorkerCounts = []int{1, 2, 8}

// ReplayVariant is one replay execution: a (format, lockstep, workers)
// combination driven from the captured trace.
type ReplayVariant struct {
	Point    int
	Format   replay.Format
	Lockstep bool
	Workers  int
	// Matched reports whether the replay's full stats snapshot equals the
	// live run's.
	Matched bool
	// Retimed counts reader-side arrival clamps (must be 0: the capture
	// stream is already non-decreasing).
	Retimed int
	// Snapshot is the replay's serialized stats, kept for the divergence
	// report when Matched is false.
	Snapshot string
}

// ReplayResult is the campaign table.
type ReplayResult struct {
	Ops         int
	TextBytes   int
	BinaryBytes int
	// Live outcome mix (the replays must reproduce it exactly).
	Completed uint64
	Late      uint64
	Shed      uint64
	Expired   uint64
	LiveSnap  string
	Rows      []ReplayVariant
}

// Points returns the variant count.
func (r ReplayResult) Points() int { return len(r.Rows) }

// Divergent counts replays whose snapshot differed from the live run.
func (r ReplayResult) Divergent() int {
	n := 0
	for _, v := range r.Rows {
		if !v.Matched {
			n++
		}
	}
	return n
}

// RetimedTotal sums reader-side arrival clamps across every replay.
func (r ReplayResult) RetimedTotal() int {
	n := 0
	for _, v := range r.Rows {
		n += v.Retimed
	}
	return n
}

// CompactionX is the text-to-binary trace size ratio.
func (r ReplayResult) CompactionX() float64 {
	if r.BinaryBytes == 0 {
		return 0
	}
	return float64(r.TextBytes) / float64(r.BinaryBytes)
}

// replayPool builds one campaign pool: the overload member shape behind 3
// channels with bounded, shedding admission — so the captured run exercises
// completions, late completions, sheds and expiries all at once.
func replayPool(workers int, lockstep bool) (*pool.Pool, error) {
	return pool.New(pool.Config{
		Channels:         3,
		DIMMsPerChannel:  1,
		Interleave:       4096,
		Member:           overloadMemberCfg(),
		Workers:          workers,
		Seed:             sim.SplitSeed(23, "replay/pool"),
		PrefillPages:     -1,
		Admission:        pool.AdmitShedNewest,
		PendingCap:       16,
		DisableLookahead: lockstep,
	})
}

// replaySnapshot serializes every externally observable pool stat; two runs
// are byte-identical iff their snapshots match.
func replaySnapshot(s pool.Stats) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "req=%d/%d wracked=%d epochs=%d heldpeak=%d shed=%d expired=%d failed=%d late=%d throttled=%d\n",
		s.Completed, s.Submitted, s.WritesAcked, s.Epochs, s.HeldPeak,
		s.Shed, s.Expired, s.Failed, s.CompletedLate, s.Throttled)
	fmt.Fprintf(&b, "lat n=%d mean=%v min=%v max=%v p50=%v p99=%v p999=%v\n",
		s.Lat.Count(), s.Lat.Mean(), s.Lat.Min(), s.Lat.Max(),
		s.Lat.Percentile(50), s.Lat.Percentile(99), s.Lat.Percentile(99.9))
	fmt.Fprintf(&b, "meter ops=%d bytes=%d elapsed=%v\n", s.Meter.Ops(), s.Meter.Bytes(), s.Meter.Elapsed())
	fmt.Fprintf(&b, "ctr %s\n", s.Ctr.String())
	for i, ch := range s.PerChannel {
		fmt.Fprintf(&b, "ch%d n=%d p99=%v bytes=%d heldHW=%d queueHW=%d svc=%v\n",
			i, ch.Lat.Count(), ch.Lat.Percentile(99), ch.Meter.Bytes(),
			ch.HeldHW, ch.QueueHW, ch.ServiceEWMA)
	}
	return b.String()
}

// replayCapture drives the live run, teeing the offered stream into both
// trace formats at once, and returns the traces plus the live stats.
func replayCapture(reqs int, lockstep bool) (text, binary []byte, live pool.Stats, err error) {
	p, err := replayPool(1, lockstep)
	if err != nil {
		return nil, nil, live, fmt.Errorf("replay capture: %w", err)
	}
	// Offered load well past the small members' service rate over the whole
	// capacity (cache misses spill to NAND), with a hard per-request budget:
	// the run sheds at admission and expires queued stragglers, so the trace
	// encodes every outcome class.
	foot := p.Capacity()
	foot -= foot % p.Cfg.Interleave
	gen, err := openloop.New(openloop.Config{
		Seed:       sim.SplitSeed(23, "replay/load"),
		RatePerSec: 1e6,
		Deadline:   64 * overloadMemberCfg().TREFI,
		Tenants: []openloop.Tenant{
			{Name: "kv", Dist: openloop.Zipfian, Weight: 3, ReadPct: 80, Footprint: foot / 2},
			{Name: "log", Dist: openloop.Uniform, Weight: 1, ReadPct: 40,
				Footprint: foot / 2, Offset: foot / 2},
		},
	})
	if err != nil {
		return nil, nil, live, err
	}
	var tbuf, bbuf bytes.Buffer
	tw, err := replay.NewWriter(&tbuf, replay.Text)
	if err != nil {
		return nil, nil, live, err
	}
	bw, err := replay.NewWriter(&bbuf, replay.Binary)
	if err != nil {
		return nil, nil, live, err
	}
	trec, brec := replay.NewRecorder(tw), replay.NewRecorder(bw)
	gen.SetCapture(func(q openloop.Request) { trec.Record(q); brec.Record(q) })
	if err := p.RunOpenLoop(gen, reqs); err != nil {
		return nil, nil, live, fmt.Errorf("replay capture: %w", err)
	}
	if err := p.CheckHealth(); err != nil {
		return nil, nil, live, fmt.Errorf("replay capture: %w", err)
	}
	if err := trec.Close(); err != nil {
		return nil, nil, live, fmt.Errorf("replay capture (text): %w", err)
	}
	if err := brec.Close(); err != nil {
		return nil, nil, live, fmt.Errorf("replay capture (binary): %w", err)
	}
	if trec.Records() != reqs || brec.Records() != reqs {
		return nil, nil, live, fmt.Errorf("replay capture: recorded %d/%d of %d requests",
			trec.Records(), brec.Records(), reqs)
	}
	return tbuf.Bytes(), bbuf.Bytes(), p.Stats(), nil
}

// replayVariant replays one (format, lockstep, workers) combination.
func replayVariant(pt, reqs int, traces map[replay.Format][]byte, liveSnap string) (ReplayVariant, error) {
	format := replay.Text
	if pt%2 == 1 {
		format = replay.Binary
	}
	lockstep := (pt/2)%2 == 1
	workers := replayWorkerCounts[pt/4]
	row := ReplayVariant{Point: pt, Format: format, Lockstep: lockstep, Workers: workers}

	p, err := replayPool(workers, lockstep)
	if err != nil {
		return row, fmt.Errorf("replay variant %d: %w", pt, err)
	}
	rd, err := replay.NewReader(bytes.NewReader(traces[format]))
	if err != nil {
		return row, fmt.Errorf("replay variant %d: %w", pt, err)
	}
	st, err := replay.Drive(p, rd, 0)
	if err != nil {
		return row, fmt.Errorf("replay variant %d (%v lockstep=%v workers=%d): %w",
			pt, format, lockstep, workers, err)
	}
	if st.Ops != reqs {
		return row, fmt.Errorf("replay variant %d: drove %d of %d records", pt, st.Ops, reqs)
	}
	if err := p.CheckHealth(); err != nil {
		return row, fmt.Errorf("replay variant %d: %w", pt, err)
	}
	row.Retimed = st.Retimed
	row.Snapshot = replaySnapshot(p.Stats())
	row.Matched = row.Snapshot == liveSnap
	return row, nil
}

// Replay is the trace-replay determinism campaign: capture one live
// overloaded run into both formats, then replay each across worker counts
// and scheduler modes and demand byte-identical stats everywhere. Variants
// fan across o.Parallel shards; the merged table is byte-identical at any
// worker count.
func Replay(o Options) (ReplayResult, error) {
	var res ReplayResult
	reqs := o.pick(2000, 600)
	res.Ops = reqs

	text, binary, live, err := replayCapture(reqs, o.DisableLookahead)
	if err != nil {
		return res, err
	}
	res.TextBytes, res.BinaryBytes = len(text), len(binary)
	res.Completed, res.Late = live.Completed, live.CompletedLate
	res.Shed, res.Expired = live.Shed, live.Expired
	res.LiveSnap = replaySnapshot(live)
	traces := map[replay.Format][]byte{replay.Text: text, replay.Binary: binary}

	points := 2 * 2 * len(replayWorkerCounts)
	rows, err := runShards(points, o.workers(), func(pt int) (ReplayVariant, error) {
		return replayVariant(pt, reqs, traces, res.LiveSnap)
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows

	o.printf("== Replay: %d-op capture -> %d replay variants (formats x lockstep x workers) ==\n", reqs, points)
	o.printf("  live run: completed=%d (late %d) shed=%d expired=%d\n",
		res.Completed, res.Late, res.Shed, res.Expired)
	o.printf("  trace: text %d B, binary %d B (%.1fx compaction, %.1f B/op)\n",
		res.TextBytes, res.BinaryBytes, res.CompactionX(), float64(res.BinaryBytes)/float64(reqs))
	for _, v := range res.Rows {
		verdict := "byte-identical"
		if !v.Matched {
			verdict = "DIVERGED"
		}
		o.printf("  pt%02d %-6v lockstep=%-5v workers=%d retimed=%d %s\n",
			v.Point, v.Format, v.Lockstep, v.Workers, v.Retimed, verdict)
	}
	o.printf("  %d/%d variants reproduce the live run exactly\n", points-res.Divergent(), points)
	if d := res.Divergent(); d > 0 {
		for _, v := range res.Rows {
			if !v.Matched {
				return res, fmt.Errorf("replay: variant %d (%v lockstep=%v workers=%d) diverged from the live run:\n--- live ---\n%s--- replay ---\n%s",
					v.Point, v.Format, v.Lockstep, v.Workers, res.LiveSnap, v.Snapshot)
			}
		}
	}
	return res, nil
}
