package experiments

import (
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/fio"
)

// Fig12Result holds the hypothetical-device study (§VII-D1): uncached 4 KB
// random-read bandwidth when the NVM access is replaced by a programmable
// delay tD.
type Fig12Result struct {
	Rows []Row
}

// Fig12 sweeps tD over {0, 7.8, 3.9, 1.85} us (tREFI, tREFI2, tREFI4
// equivalents). Paper: 1503, 451, 681, 914 MB/s; Cached reference 1835.
func Fig12(o Options) (Fig12Result, error) {
	var res Fig12Result
	cases := []struct {
		td    sim.Duration
		paper float64
		name  string
	}{
		{0, 1503, "tD=0 (sw overhead only)"},
		{7800 * sim.Nanosecond, 451, "tD=7.8us (tREFI)"},
		{3900 * sim.Nanosecond, 681, "tD=3.9us (tREFI2)"},
		{1850 * sim.Nanosecond, 914, "tD=1.85us (tREFI4)"},
	}
	ops := o.pick(1200, 300)
	for _, c := range cases {
		cfg := nvdcConfig(0)
		cfg.Driver.Hypothetical = true
		cfg.Driver.TD = c.td
		s, err := coreSystem(cfg)
		if err != nil {
			return res, err
		}
		tgt := s.NewFioTarget()
		tgt.SetWalkFootprint(120 << 30)
		r, err := fio.Run(tgt, fio.Job{
			Pattern: fio.RandRead, BlockSize: PageSize, NumJobs: 1,
			FileSize: tgt.Capacity(), OpsPerThread: ops,
			WarmupOps: s.Layout.NumSlots + 50, Seed: 7,
		})
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, Row{
			Name: c.name, Paper: c.paper, Measured: r.BandwidthMBps(), Unit: "MB/s",
		})
	}
	printRows(o, "Fig. 12: hypothetical NVM latency (uncached 4KB randread)", res.Rows)
	return res, nil
}
