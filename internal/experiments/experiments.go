// Package experiments contains one harness per table and figure of the
// paper's evaluation (§VI–§VII). Each harness assembles the right scaled
// system(s), runs the workload, and returns a result struct that carries the
// paper's reported numbers next to the measured ones; Print renders the
// side-by-side rows EXPERIMENTS.md records. Absolute magnitudes come from a
// simulator, so the acceptance criterion everywhere is the *shape*: who
// wins, by roughly what factor, where the knees fall.
package experiments

import (
	"fmt"
	"io"

	"nvdimmc/internal/core"
	"nvdimmc/internal/pmem"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/fio"
)

// PageSize is the 4 KB unit used throughout.
const PageSize = 4096

// Options control experiment scale.
type Options struct {
	// Quick shrinks run lengths for CI; the full runs are the defaults the
	// committed EXPERIMENTS.md numbers come from.
	Quick bool
	// Out receives the printed rows (nil discards).
	Out io.Writer
	// Parallel caps how many independent sim instances a shardable
	// experiment (crash sweep, fig9, fig11, fig13) runs concurrently; 0 or 1
	// is serial. Shards never print — results are merged and printed in
	// canonical shard order — so output is byte-identical at any setting.
	Parallel int
	// Headline, when non-nil, receives (name, value) headline metrics from
	// the façade after each experiment, for machine-readable snapshots
	// (cmd/nvdimmc-bench -json). Called from the merge step only, never from
	// a shard goroutine.
	Headline func(name string, value float64)
	// DisableLookahead runs the pooled experiments (pool, faultpool,
	// overload) with the pool's lookahead epoch scheduler off: every member
	// advances event by event and every epoch runs its full boundary body.
	// Output is byte-identical either way — the knob exists so CI and the
	// contract tests can prove exactly that (nvdimmc-bench -lockstep).
	DisableLookahead bool
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

func (o Options) pick(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// workers returns the shard-pool width runShards should use.
func (o Options) workers() int {
	if o.Parallel < 1 {
		return 1
	}
	return o.Parallel
}

func (o Options) printf(format string, args ...interface{}) {
	fmt.Fprintf(o.out(), format, args...)
}

// newBaseline builds the /dev/pmem0 comparator (full-size; storage is
// sparse).
func newBaseline() (*pmem.Device, error) {
	return pmem.New(pmem.DefaultConfig())
}

// nvdcConfig returns the scaled NVDIMM-C system configuration shared by the
// fio experiments: 16 MB cache standing in for 16 GB, NAND sized by
// mediaBlocksPerDie.
func nvdcConfig(mediaBlocksPerDie int) core.Config {
	cfg := core.DefaultConfig()
	if mediaBlocksPerDie > 0 {
		cfg.NAND.BlocksPerDie = mediaBlocksPerDie
	}
	return cfg
}

// coreSystem builds a system from cfg.
func coreSystem(cfg core.Config) (*core.System, error) {
	return core.NewSystem(cfg)
}

// prefillSlots makes the first pages of the device resident (the
// NVDC-Cached precondition).
func prefillSlots(s *core.System, pages int) error {
	tgt := s.NewFioTarget()
	_, err := fio.Run(tgt, fio.Job{
		Pattern: fio.SeqWrite, BlockSize: PageSize, NumJobs: 1,
		FileSize: int64(pages) * PageSize, OpsPerThread: pages,
	})
	return err
}

// prefillMedia writes every logical NAND page (zero data, deduplicated) so
// uncached reads exercise real media.
func prefillMedia(s *core.System) error {
	zero := make([]byte, PageSize)
	n := s.FTL.LogicalPages()
	pending := 0
	var firstErr error
	for p := int64(0); p < n; p++ {
		pending++
		s.FTL.WritePage(p, zero, func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			pending--
		})
		if pending >= 512 {
			if err := s.RunUntil(func() bool { return pending < 64 }, 30*sim.Second); err != nil {
				return err
			}
		}
	}
	if err := s.RunUntil(func() bool { return pending == 0 }, 30*sim.Second); err != nil {
		return err
	}
	return firstErr
}

// Row is one paper-vs-measured line.
type Row struct {
	Name     string
	Paper    float64
	Measured float64
	Unit     string
}

// Ratio returns measured/paper (0 if paper value unknown).
func (r Row) Ratio() float64 {
	if r.Paper == 0 {
		return 0
	}
	return r.Measured / r.Paper
}

func printRows(o Options, title string, rows []Row) {
	o.printf("== %s ==\n", title)
	for _, r := range rows {
		if r.Paper != 0 {
			o.printf("  %-42s paper %10.1f %-6s measured %10.1f  (x%.2f)\n",
				r.Name, r.Paper, r.Unit, r.Measured, r.Ratio())
		} else {
			o.printf("  %-42s %31s measured %10.1f %s\n", r.Name, "", r.Measured, r.Unit)
		}
	}
}
