package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestReplayCampaignByteIdentical runs the quick replay campaign and checks
// its acceptance surface: every variant reproduces the live run, no arrival
// was re-timed, and the binary format earns its keep.
func TestReplayCampaignByteIdentical(t *testing.T) {
	var out bytes.Buffer
	res, err := Replay(Options{Quick: true, Out: &out})
	if err != nil {
		t.Fatalf("replay campaign: %v\n%s", err, out.String())
	}
	if res.Points() != 12 {
		t.Fatalf("got %d variants, want 12", res.Points())
	}
	if d := res.Divergent(); d != 0 {
		t.Fatalf("%d variants diverged from the live run", d)
	}
	if r := res.RetimedTotal(); r != 0 {
		t.Fatalf("%d arrival clamps replaying a monotone capture", r)
	}
	if x := res.CompactionX(); x < 2 {
		t.Fatalf("binary compaction %.2fx, want >= 2x", x)
	}
	// The capture must exercise more than the happy path: the determinism
	// claim is only interesting if sheds or expiries are in the trace.
	if res.Shed+res.Expired == 0 {
		t.Fatalf("capture saw no sheds or expiries (completed=%d): the overload knobs regressed",
			res.Completed)
	}
	if !strings.Contains(out.String(), "12/12 variants reproduce the live run exactly") {
		t.Fatalf("missing verdict line in output:\n%s", out.String())
	}
}

// TestReplayCampaignShardedIdentical pins the campaign table itself to the
// byte-identity contract: sharding the 12 variants across 4 workers must
// print the same bytes as the serial run.
func TestReplayCampaignShardedIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short: the serial quick campaign already runs in TestReplayCampaignByteIdentical")
	}
	var serial, sharded bytes.Buffer
	if _, err := Replay(Options{Quick: true, Out: &serial}); err != nil {
		t.Fatalf("serial: %v", err)
	}
	if _, err := Replay(Options{Quick: true, Out: &sharded, Parallel: 4}); err != nil {
		t.Fatalf("sharded: %v", err)
	}
	if serial.String() != sharded.String() {
		t.Fatalf("serial and 4-worker tables differ:\n--- serial ---\n%s--- sharded ---\n%s",
			serial.String(), sharded.String())
	}
}
