package experiments

import (
	"fmt"
	"net"
	"net/http"

	"nvdimmc/internal/pool"
	"nvdimmc/internal/server"
	"nvdimmc/internal/sim"
)

// The service campaign exercises the network front-end the way a deployment
// would: a real HTTP server on a loopback socket, 32 concurrent clients
// hammering it with mixed sync/async/streamed traffic, one point per
// admission policy. Real goroutines and real sockets make per-point latency
// and shed mixes nondeterministic — what the campaign pins down instead is
// the conservation contract: every op a client sent is accounted for in the
// server's counters, no acked write is ever lost, and the drain audit comes
// back clean. Points run serially (each owns the socket and the CPU's
// goroutine budget); the HTTP interleaving inside a point is free to vary.

// servicePolicies are the admission policies under test, one point each.
// The deadline-aware point attaches a per-op budget so expiries join the
// outcome mix.
var servicePolicies = []struct {
	Policy     pool.AdmissionPolicy
	PendingCap int
	DeadlineUS float64
}{
	{pool.AdmitBlock, 0, 0},
	{pool.AdmitShedNewest, 48, 0},
	{pool.AdmitDeadlineAware, 48, 2000},
}

// ServicePoint is one policy's end-to-end run.
type ServicePoint struct {
	Policy   pool.AdmissionPolicy
	Clients  int
	Ops      int // total ops sent (clients x per-client ops)
	Sent     int
	Accepted int
	// Terminal mix as the server retired it.
	Completed uint64
	Shed      uint64
	Expired   uint64
	Failed    uint64
	Throttled uint64
	Polled    int
	Dropped   uint64
	P99US     float64
	Health    string
	// AckedLost is the writes-conservation residual: offered writes not
	// accounted for by any terminal counter. Must be 0.
	AckedLost int64
	// Violations are the load generator's conservation breaches. Must be
	// empty.
	Violations []string
}

// ServiceResult is the campaign table.
type ServiceResult struct {
	Clients int
	Rows    []ServicePoint
}

// Points returns the policy-point count.
func (r ServiceResult) Points() int { return len(r.Rows) }

// OpsTotal sums ops sent across points.
func (r ServiceResult) OpsTotal() int {
	n := 0
	for _, p := range r.Rows {
		n += p.Ops
	}
	return n
}

// ViolationTotal counts conservation breaches across every point.
func (r ServiceResult) ViolationTotal() int {
	n := 0
	for _, p := range r.Rows {
		n += len(p.Violations)
	}
	return n
}

// AckedLostTotal sums the writes-conservation residuals.
func (r ServiceResult) AckedLostTotal() int64 {
	var n int64
	for _, p := range r.Rows {
		n += p.AckedLost
	}
	return n
}

// servicePoint boots a server on an ephemeral loopback port, drives the
// concurrent load at it over real HTTP, then drains it and audits.
func servicePoint(o Options, pt, clients, opsPer int) (ServicePoint, error) {
	pol := servicePolicies[pt]
	row := ServicePoint{Policy: pol.Policy, Clients: clients, Ops: clients * opsPer}

	s, err := server.New(server.Config{Pool: pool.Config{
		Channels:         3,
		DIMMsPerChannel:  1,
		Interleave:       4096,
		Member:           overloadMemberCfg(),
		Workers:          o.workers(),
		Seed:             sim.SplitSeed(29, fmt.Sprintf("service/%d", pt)),
		PrefillPages:     -1,
		Admission:        pol.Policy,
		PendingCap:       pol.PendingCap,
		DisableLookahead: o.DisableLookahead,
	}})
	if err != nil {
		return row, fmt.Errorf("service point %d (%v): %w", pt, pol.Policy, err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return row, fmt.Errorf("service point %d: %w", pt, err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer func() {
		hs.Close()
		select {
		case <-s.Done():
		default:
			s.Shutdown()
		}
	}()
	base := "http://" + ln.Addr().String()

	rep, err := server.LoadGen(server.LoadConfig{
		Base:        base,
		Clients:     clients,
		Ops:         opsPer,
		WritePct:    50,
		Tenants:     4,
		WaitEvery:   4,
		StreamEvery: 8,
		DeadlineUS:  pol.DeadlineUS,
		Seed:        sim.SplitSeed(29, fmt.Sprintf("service/load/%d", pt)),
	})
	if err != nil {
		return row, fmt.Errorf("service point %d (%v): %w", pt, pol.Policy, err)
	}
	cl := &server.Client{Base: base}
	drain, err := cl.Shutdown()
	if err != nil {
		return row, fmt.Errorf("service point %d (%v): drain: %w", pt, pol.Policy, err)
	}

	st := drain.Stats
	row.Sent = rep.Sent
	row.Accepted = rep.Accepted
	row.Completed = st.Completed
	row.Shed = st.Shed
	row.Expired = st.Expired
	row.Failed = st.Failed
	row.Throttled = st.Throttled
	row.Polled = rep.Polled
	row.Dropped = st.PollDropped
	row.P99US = st.LatP99US
	row.Health = drain.Health
	row.AckedLost = int64(st.WritesIn) -
		int64(st.WritesAcked+st.WritesFailed+st.WritesShed+st.WritesExpired+st.WritesThrottled)
	row.Violations = rep.Violations
	return row, nil
}

// Service is the network-service conservation campaign: one in-process HTTP
// server per admission policy, 32 concurrent clients of mixed sync, async
// and streamed traffic, conservation checked from the client's ledger down
// to the pool's drain audit.
func Service(o Options) (ServiceResult, error) {
	const clients = 32 // the acceptance floor: never shrunk, even in quick mode
	opsPer := o.pick(48, 16)
	res := ServiceResult{Clients: clients}

	o.printf("== Service: %d concurrent HTTP clients x %d ops per admission policy ==\n", clients, opsPer)
	for pt := range servicePolicies {
		row, err := servicePoint(o, pt, clients, opsPer)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
		o.printf("  %-14v sent=%d accepted=%d completed=%d shed=%d expired=%d throttled=%d polled=%d dropped=%d p99=%.0fus health=%s violations=%d\n",
			row.Policy, row.Sent, row.Accepted, row.Completed, row.Shed, row.Expired,
			row.Throttled, row.Polled, row.Dropped, row.P99US, row.Health, len(row.Violations))
	}

	for _, row := range res.Rows {
		if len(row.Violations) > 0 {
			return res, fmt.Errorf("service (%v): %d conservation violations; first: %s",
				row.Policy, len(row.Violations), row.Violations[0])
		}
		if row.Health != "ok" {
			return res, fmt.Errorf("service (%v): drain audit: %s", row.Policy, row.Health)
		}
		if row.Sent != row.Ops {
			return res, fmt.Errorf("service (%v): sent %d of %d ops (client-side refusals or transport errors)",
				row.Policy, row.Sent, row.Ops)
		}
		if row.AckedLost != 0 {
			return res, fmt.Errorf("service (%v): writes-conservation residual %d", row.Policy, row.AckedLost)
		}
	}
	o.printf("  %d/%d points: conservation holds end to end, drain audits clean\n", res.Points(), res.Points())
	return res, nil
}
