package experiments

import (
	"bytes"
	"testing"
)

// TestOverloadCampaignQuick keeps the saturation campaign in the -short
// coverage lane: one quick sharded run, checked against the acceptance
// surface the bench harness gates on (conservation, graceful degradation,
// shed-beats-queueing).
func TestOverloadCampaignQuick(t *testing.T) {
	var out bytes.Buffer
	res, err := Overload(Options{Quick: true, Out: &out, Parallel: 4})
	if err != nil {
		t.Fatalf("overload campaign: %v\n%s", err, out.String())
	}
	if res.Points() != 12 {
		t.Fatalf("got %d points, want 12", res.Points())
	}
	if lost := res.AckedLostTotal(); lost != 0 {
		t.Fatalf("%d acked writes lost", lost)
	}
	if res.ShedTotal() == 0 || res.ExpiredTotal() == 0 {
		t.Fatalf("saturation produced no overload outcomes (shed=%d expired=%d)",
			res.ShedTotal(), res.ExpiredTotal())
	}
	if ratio := res.ShedGoodputRatio(); ratio < 0.9 {
		t.Fatalf("shed-mode goodput ratio %.3f at max load, want >= 0.9", ratio)
	}
	if err := res.ShedBeatsQueueing(); err != nil {
		t.Fatalf("shed-beats-queueing claim: %v", err)
	}
}
