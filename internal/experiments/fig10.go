package experiments

import (
	"nvdimmc/internal/workload/fio"
)

// Fig10Point is one (block size, KIOPS, MB/s) sample.
type Fig10Point struct {
	BlockSize int
	KIOPS     float64
	MBps      float64
}

// Fig10Result holds the access-granularity sweep (Fig. 10) at one thread.
type Fig10Result struct {
	Series map[string][]Fig10Point // "baseline-read", "cached-read", ...
}

// At returns the point for a block size.
func (r Fig10Result) At(series string, bs int) Fig10Point {
	for _, p := range r.Series[series] {
		if p.BlockSize == bs {
			return p
		}
	}
	return Fig10Point{}
}

// Fig10 sweeps block sizes 128 B – 64 KB. Paper anchors: Cached 2147 KIOPS
// @128 B (1.15x the baseline), 3050 MB/s @64 KB; a large jump between 1 KB
// and 4 KB on the device side because the driver manages 4 KB pages.
func Fig10(o Options) (Fig10Result, error) {
	res := Fig10Result{Series: make(map[string][]Fig10Point)}
	sizes := []int{128, 256, 512, 1024, 4096, 16384, 65536}
	if o.Quick {
		sizes = []int{128, 1024, 4096, 65536}
	}
	ops := func(bs int) int {
		n := o.pick(1500, 300)
		if bs >= 16384 {
			n = o.pick(400, 100)
		}
		return n
	}

	for _, write := range []bool{false, true} {
		suffix := "-read"
		pat := fio.RandRead
		if write {
			suffix, pat = "-write", fio.RandWrite
		}

		// Baseline sweep.
		for _, bs := range sizes {
			d, err := newBaseline()
			if err != nil {
				return res, err
			}
			r, err := fio.Run(d, fio.Job{
				Pattern: pat, BlockSize: bs, NumJobs: 1,
				FileSize: 120 << 30, OpsPerThread: ops(bs), WarmupOps: 50,
				Align: PageSize,
			})
			if err != nil {
				return res, err
			}
			res.Series["baseline"+suffix] = append(res.Series["baseline"+suffix],
				Fig10Point{BlockSize: bs, KIOPS: r.KIOPS(), MBps: r.BandwidthMBps()})
		}

		// NVDC-Cached sweep (one prefilled system reused across sizes).
		s, err := coreSystem(nvdcConfig(0))
		if err != nil {
			return res, err
		}
		pages := s.Layout.NumSlots * 9 / 10
		if err := prefillSlots(s, pages); err != nil {
			return res, err
		}
		tgt := s.NewFioTarget()
		tgt.SetWalkFootprint(15 << 30)
		for _, bs := range sizes {
			r, err := fio.Run(tgt, fio.Job{
				Pattern: pat, BlockSize: bs, NumJobs: 1,
				FileSize: int64(pages) * PageSize, OpsPerThread: ops(bs), WarmupOps: 50,
				Align: PageSize,
			})
			if err != nil {
				return res, err
			}
			res.Series["cached"+suffix] = append(res.Series["cached"+suffix],
				Fig10Point{BlockSize: bs, KIOPS: r.KIOPS(), MBps: r.BandwidthMBps()})
		}
		if err := s.CheckHealth(); err != nil {
			return res, err
		}
	}

	o.printf("== Fig. 10: granularity sweep, 1 thread ==\n")
	for key, pts := range map[string][]Fig10Point{
		"baseline-read": res.Series["baseline-read"],
		"cached-read":   res.Series["cached-read"],
	} {
		o.printf("  %-14s", key)
		for _, p := range pts {
			o.printf("  %5dB:%7.0fKIOPS", p.BlockSize, p.KIOPS)
		}
		o.printf("\n")
	}
	o.printf("  paper: cached 2147 KIOPS @128B (1.15x baseline); 3050 MB/s @64KB\n")
	return res, nil
}
