// Crash-consistency sweep: the §V-C persistence promise, tested the way a
// storage system is tested — by pulling the plug at many seeded instants in
// the middle of a write-heavy workload and proving that every write the
// application saw acknowledged is durable on the Z-NAND media afterwards.
//
// Each sweep point builds a fresh strict-ADR system, runs a random
// overwrite workload whose 4 KB payloads self-describe (lpn, version),
// fails power at a random mid-workload instant, lets the battery-backed
// metadata-driven flush run, and then audits the media: for every lpn the
// workload saw acked at version v, the FTL must return an untorn page of
// that lpn with version >= v (a later in-flight write may also have landed
// — durability is one-directional). The point ends with driver metadata
// recovery and a full CheckHealth.
package experiments

import (
	"encoding/binary"
	"fmt"

	"nvdimmc/internal/core"
	"nvdimmc/internal/sim"
)

// DefaultCrashSeed is the sweep's master seed; every per-point seed is
// derived from it with sim.SplitSeed, so one number replays the whole sweep
// and any printed point seed replays that point alone.
const DefaultCrashSeed uint64 = 0xC4A5_11FE

// CrashResult aggregates a sweep.
type CrashResult struct {
	Seed     uint64
	Points   int
	Acked    int // acked writes audited across all points
	Flushed  int // dirty pages the battery flushes persisted
	Failures []string
}

// CrashSweep runs the power-fail sweep at the configured scale (full: 64
// points; quick: 8) under the default master seed.
func CrashSweep(o Options) (*CrashResult, error) {
	return CrashSweepSeeded(o, DefaultCrashSeed)
}

// CrashSweepSeeded is CrashSweep from an explicit master seed. The points
// are independent systems (each seeded from the master via sim.SplitSeed),
// so they fan out across o.Parallel workers; results merge in point order,
// making the printed output byte-identical to a serial run.
func CrashSweepSeeded(o Options, seed uint64) (*CrashResult, error) {
	points := o.pick(64, 8)
	res := &CrashResult{Seed: seed, Points: points}
	o.printf("== Crash-consistency sweep (seed %#x, %d power-fail points) ==\n", seed, points)
	type pointResult struct {
		acked, flushed int
		fails          []string
	}
	prs, err := runShards(points, o.workers(), func(i int) (pointResult, error) {
		ps := sim.SplitSeed(seed, fmt.Sprintf("point-%03d", i))
		acked, flushed, fails, err := CrashPoint(ps)
		if err != nil {
			return pointResult{}, fmt.Errorf("point %d (seed %#x): %w", i, ps, err)
		}
		pr := pointResult{acked: acked, flushed: flushed}
		for _, f := range fails {
			pr.fails = append(pr.fails, fmt.Sprintf("point %d (seed %#x): %s", i, ps, f))
		}
		return pr, nil
	})
	if err != nil {
		return res, err
	}
	for _, pr := range prs {
		res.Acked += pr.acked
		res.Flushed += pr.flushed
		res.Failures = append(res.Failures, pr.fails...)
	}
	o.printf("  %-42s %d\n", "power-fail points", res.Points)
	o.printf("  %-42s %d\n", "acked writes audited", res.Acked)
	o.printf("  %-42s %d\n", "dirty pages battery-flushed", res.Flushed)
	o.printf("  %-42s %d\n", "acked writes lost", len(res.Failures))
	for _, f := range res.Failures {
		o.printf("  FAIL %s\n", f)
	}
	return res, nil
}

// crashConfig is the sweep's scaled system: a one-row DRAM cache (~29
// slots) over a small Z-NAND array, so overwrite pressure keeps eviction
// writebacks, cachefills and metadata updates in flight at the failure
// instant. StrictADR puts the WPQ inside the persistence domain — the §V-C
// configuration under which "acked" is supposed to mean "durable".
func crashConfig(seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.CacheBytes = 128 << 10
	cfg.NAND.BlocksPerDie = 32
	cfg.NAND.PagesPerBlock = 16
	cfg.NAND.ProgramLatency = 20 * sim.Microsecond
	cfg.NAND.EraseLatency = 100 * sim.Microsecond
	cfg.StrictADR = true
	cfg.Seed = sim.SplitSeed(seed, "system")
	return cfg
}

// CrashPoint runs one seeded power-fail point and returns the number of
// acked writes audited, the battery-flush page count, and a description of
// every violated durability or health invariant. A returned error means the
// point could not run at all (setup or store failure), not a lost write.
func CrashPoint(seed uint64) (acked, flushed int, failures []string, err error) {
	rng := sim.NewRand(seed)
	s, err := core.NewSystem(crashConfig(seed))
	if err != nil {
		return 0, 0, nil, err
	}
	lpnRange := int64(s.Layout.NumSlots) * 3
	if lp := s.FTL.LogicalPages(); lpnRange > lp {
		lpnRange = lp
	}

	// The workload: two always-full pipelines of single-page stores to
	// random lpns in a range 3x the slot count, so the cache churns through
	// fast fills, evictions and writebacks. ver is the version each lpn
	// will carry next; ackedVer records what the application saw complete.
	ver := map[int64]uint64{}
	ackedVer := map[int64]uint64{}
	dead := false // power gone: later acks never reached the application
	var storeErr error
	var issue func()
	issue = func() {
		if dead || storeErr != nil {
			return
		}
		lpn := rng.Int63n(lpnRange)
		ver[lpn]++
		v := ver[lpn]
		s.StoreErr(lpn*PageSize, crashPage(lpn, v), func(err error) {
			if dead {
				return
			}
			if err != nil {
				storeErr = err
				return
			}
			ackedVer[lpn] = v
			issue()
		})
	}
	issue()
	issue()

	// Fail power at a random instant: early points die while the cache is
	// still filling, late ones mid-eviction steady state.
	crashAt := s.K.Now().Add(20*sim.Microsecond +
		sim.Duration(rng.Int63n(int64(2*sim.Millisecond))))
	for s.K.Now() < crashAt && storeErr == nil {
		if !s.K.Step() {
			return 0, 0, nil, fmt.Errorf("kernel drained before the failure instant")
		}
	}
	if storeErr != nil {
		return 0, 0, nil, fmt.Errorf("store failed before the failure instant: %w", storeErr)
	}
	dead = true
	flushed, err = s.PowerFail()
	if err != nil {
		return 0, 0, nil, fmt.Errorf("battery flush: %w", err)
	}

	// The audit: every acked (lpn, version) must be on the media, untorn.
	for lpn, v := range ackedVer {
		var page []byte
		var rerr error
		s.FTL.ReadPage(lpn, func(d []byte, err error) { page, rerr = d, err })
		s.K.Run()
		if rerr != nil {
			failures = append(failures, fmt.Sprintf("lpn %d acked at v%d: media read: %v", lpn, v, rerr))
			continue
		}
		got, perr := crashPageVersion(page, lpn)
		if perr != nil {
			failures = append(failures, fmt.Sprintf("lpn %d acked at v%d: %v", lpn, v, perr))
			continue
		}
		if got < v {
			failures = append(failures, fmt.Sprintf("lpn %d acked at v%d but media holds v%d", lpn, v, got))
		}
	}

	// "Reboot": rebuild the driver map from the metadata area, then assert
	// system health (no collisions, protocol violations, FTL inconsistency,
	// or phantom error counters).
	meta := make([]byte, s.Layout.MetaSize)
	if err := s.DRAM.CopyOut(s.Layout.MetaOffset, meta); err != nil {
		return len(ackedVer), flushed, failures, err
	}
	if _, err := s.Driver.RecoverFromMetadata(meta); err != nil {
		failures = append(failures, fmt.Sprintf("driver recovery: %v", err))
	}
	if err := s.CheckHealth(); err != nil {
		failures = append(failures, fmt.Sprintf("post-crash health: %v", err))
	}
	return len(ackedVer), flushed, failures, nil
}

// crashPage builds a self-describing 4 KB payload: lpn and version in the
// header, a version-derived fill byte in the body, so the audit can detect
// wrong-page, stale and torn states from the page alone.
func crashPage(lpn int64, ver uint64) []byte {
	p := make([]byte, PageSize)
	binary.LittleEndian.PutUint64(p[0:8], uint64(lpn))
	binary.LittleEndian.PutUint64(p[8:16], ver)
	fill := crashFill(lpn, ver)
	for i := 16; i < PageSize; i++ {
		p[i] = fill
	}
	return p
}

func crashFill(lpn int64, ver uint64) byte {
	return byte(uint64(lpn)*131 + ver*31 + 7)
}

// crashPageVersion validates a page read back from the media against the
// crashPage format and returns the version it carries.
func crashPageVersion(p []byte, lpn int64) (uint64, error) {
	if len(p) < PageSize {
		return 0, fmt.Errorf("short page (%d B)", len(p))
	}
	if got := binary.LittleEndian.Uint64(p[0:8]); got != uint64(lpn) {
		return 0, fmt.Errorf("page tagged lpn %d, want %d", got, lpn)
	}
	v := binary.LittleEndian.Uint64(p[8:16])
	fill := crashFill(lpn, v)
	for i := 16; i < PageSize; i++ {
		if p[i] != fill {
			return 0, fmt.Errorf("torn page: v%d header but byte %d is %#x, want %#x", v, i, p[i], fill)
		}
	}
	return v, nil
}
