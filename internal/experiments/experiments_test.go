package experiments

import (
	"os"
	"runtime"
	"testing"
)

// optsQuick runs with the shard pool enabled so the whole suite — including
// the -race pass — exercises the parallel harness; output and results are
// byte-identical to serial by construction (see parallel_test.go).
func optsQuick(t *testing.T) Options {
	o := Options{Quick: true, Parallel: runtime.GOMAXPROCS(0)}
	if testing.Verbose() {
		o.Out = os.Stdout
	}
	return o
}

func TestFig7Shape(t *testing.T) {
	res, err := Fig7(optsQuick(t))
	if err != nil {
		t.Fatal(err)
	}
	// Free-slot phase: SSD-bound (paper 518 MB/s).
	if res.CachedMBps < 350 || res.CachedMBps > 540 {
		t.Fatalf("free-slot phase = %.0f MB/s, want ~518 (SSD-bound)", res.CachedMBps)
	}
	// Post-exhaustion: collapses by an order of magnitude (paper 68 MB/s).
	if res.UncachedMBps > res.CachedMBps/4 {
		t.Fatalf("no collapse: %.0f -> %.0f MB/s", res.CachedMBps, res.UncachedMBps)
	}
	if res.UncachedMBps < 30 || res.UncachedMBps > 140 {
		t.Fatalf("exhausted phase = %.0f MB/s, want ~68", res.UncachedMBps)
	}
	// Knee near the slot-capacity fraction (15/16 of cache / 1.25x file
	// ~ 0.75 of the copy).
	if res.KneeFraction < 0.5 || res.KneeFraction > 0.95 {
		t.Fatalf("knee at %.2f of the copy, want ~0.75", res.KneeFraction)
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(optsQuick(t))
	if err != nil {
		t.Fatal(err)
	}
	base := res.Get("baseline-read bandwidth")
	cached := res.Get("cached-read bandwidth")
	uncached := res.Get("uncached-read bandwidth")
	if !(base > cached && cached > uncached) {
		t.Fatalf("ordering broken: base=%.0f cached=%.0f uncached=%.0f", base, cached, uncached)
	}
	// Cached within 60-90% of baseline (paper: 70-76%).
	if r := cached / base; r < 0.55 || r > 0.95 {
		t.Fatalf("cached/baseline = %.2f, want ~0.70", r)
	}
	// Uncached orders of magnitude below (paper: ~57 vs 2606).
	if r := uncached / base; r > 0.08 {
		t.Fatalf("uncached/baseline = %.3f, want ~0.022", r)
	}
}

func TestFig12Shape(t *testing.T) {
	res, err := Fig12(optsQuick(t))
	if err != nil {
		t.Fatal(err)
	}
	v := func(i int) float64 { return res.Rows[i].Measured }
	// Monotonic: tD=0 fastest, then 1.85, 3.9, 7.8 slowest.
	if !(v(0) > v(3) && v(3) > v(2) && v(2) > v(1)) {
		t.Fatalf("ordering broken: %v", res.Rows)
	}
	// tD=1.85us must clear the paper's ~914 MB/s "balanced" bar within 35%.
	if v(3) < 590 || v(3) > 1250 {
		t.Fatalf("tD=1.85us = %.0f MB/s, want ~914", v(3))
	}
}

func TestFig13Shape(t *testing.T) {
	res, err := Fig13(optsQuick(t))
	if err != nil {
		t.Fatal(err)
	}
	v := func(i int) float64 { return res.Rows[i].Measured }
	// Non-increasing with refresh rate (the closed-loop model can dodge the
	// tREFI2 holds almost entirely, so allow a tie there within 1%).
	if v(1) > v(0)*1.01 || v(2) > v(1)*1.01 {
		t.Fatalf("bandwidth increasing with refresh rate: %v", res.Rows)
	}
	// tREFI4 keeps the large majority of host bandwidth (paper: -17%).
	if drop := 1 - v(2)/v(0); drop < 0.03 || drop > 0.40 {
		t.Fatalf("tREFI4 drop = %.0f%%, want ~17%%", 100*drop)
	}
	if res.Peak16T < v(2) {
		t.Fatalf("16T peak %.0f below 1T %.0f", res.Peak16T, v(2))
	}
}

func TestAgingClean(t *testing.T) {
	res, err := Aging(optsQuick(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inconsistencies != 0 || res.Collisions != 0 || res.FalsePositives != 0 {
		t.Fatalf("aging not clean: %+v", res)
	}
	if res.Evictions == 0 || res.WindowsSeen == 0 {
		t.Fatalf("aging had no NVMC traffic: %+v", res)
	}
}

func TestMixedLoadClean(t *testing.T) {
	res, err := MixedLoad(optsQuick(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.ValidationFailures != 0 {
		t.Fatalf("%d validation failures", res.ValidationFailures)
	}
	if res.Transactions == 0 {
		t.Fatal("no transactions ran")
	}
}

func TestLRUStudyBand(t *testing.T) {
	res, err := LRUStudy(optsQuick(t))
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.LRU[0], res.LRU[len(res.LRU)-1]
	if first < 0.60 || first > 0.95 {
		t.Fatalf("LRU @1GB-equiv = %.1f%%, want ~79%%", 100*first)
	}
	if last < first || last < 0.90 {
		t.Fatalf("LRU @16GB-equiv = %.1f%%, want ~95-99%%", 100*last)
	}
	for i := range res.LRU {
		if res.LRU[i]+0.02 < res.LRC[i] {
			t.Fatalf("LRC beats LRU at size %d", res.SizesGB[i])
		}
	}
}

func TestWindowsArithmetic(t *testing.T) {
	res, err := Windows(optsQuick(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.CachefillMinUS != 23.4 || res.PairMinUS != 46.8 {
		t.Fatalf("window minima wrong: %+v", res)
	}
	if res.WindowBWMBps < 500 || res.WindowBWMBps > 526 {
		t.Fatalf("window bandwidth = %.1f, want ~500.8-525", res.WindowBWMBps)
	}
	if res.MeasuredPairUS < 46.8 || res.MeasuredPairUS > 90 {
		t.Fatalf("measured pair = %.1f us, want 46.8-90 (PoC: 69.8)", res.MeasuredPairUS)
	}
}

func TestTablesPrint(t *testing.T) {
	Table1(optsQuick(t))
	Table2(optsQuick(t))
}

func TestFig11Shape(t *testing.T) {
	res, err := Fig11(optsQuick(t))
	if err != nil {
		t.Fatal(err)
	}
	// Quick mode runs Q1, Q6, Q20. Q1/Q6 are scan+compute bound (paper Q1:
	// ~3.3x); Q20 is the small-access storm (paper: ~78x).
	q1, q20 := res.Slowdown[0], res.Slowdown[len(res.Slowdown)-1]
	if q1 < 1.5 || q1 > 7 {
		t.Fatalf("Q1 slowdown = %.1fx, want ~3.3x", q1)
	}
	if q20 < 25 || q20 > 160 {
		t.Fatalf("Q20 slowdown = %.1fx, want ~78x", q20)
	}
	if q20 < q1*5 {
		t.Fatalf("Q20 (%.1fx) not dramatically worse than Q1 (%.1fx)", q20, q1)
	}
}

func TestAblationsImprove(t *testing.T) {
	res, err := Ablations(optsQuick(t))
	if err != nil {
		t.Fatal(err)
	}
	v := func(i int) float64 { return res.Rows[i].Measured }
	base := v(0)
	// Each §VII-C optimization layer must not regress, and the stack of
	// them must clearly beat the PoC.
	if v(1) < base {
		t.Fatalf("ack merge regressed: %.0f -> %.0f", base, v(1))
	}
	if v(2) < v(1) {
		t.Fatalf("combined command regressed: %.0f -> %.0f", v(1), v(2))
	}
	if v(4) < base*1.35 {
		t.Fatalf("full optimization stack %.0f < 1.35x PoC %.0f", v(4), base)
	}
	// Dirty tracking on a pure-read workload eliminates writebacks: big win.
	if v(5) < base*1.3 {
		t.Fatalf("dirty tracking %.0f < 1.3x PoC %.0f", v(5), base)
	}
}

func TestFrontendAnalysis(t *testing.T) {
	res := FrontendAnalysis(optsQuick(t))
	// The §III-A facts: budget ~51.6 ns; only DRAM and STT-MRAM fit; none
	// of the dense media do.
	if us := res.Budget.Nanoseconds(); us < 51 || us > 52 {
		t.Fatalf("budget = %v, want ~51.6ns", res.Budget)
	}
	for _, m := range res.Media {
		wantFeasible := m.Name == "DRAM" || m.Name == "STT-MRAM"
		if m.Feasible != wantFeasible {
			t.Fatalf("%s feasible=%v, want %v", m.Name, m.Feasible, wantFeasible)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(optsQuick(t))
	if err != nil {
		t.Fatal(err)
	}
	// Baseline must out-scale cached; cached must out-scale uncached by
	// orders of magnitude; and all three series must be non-trivial.
	_, basePeak := res.Peak("baseline-read")
	_, cachedPeak := res.Peak("cached-read")
	_, uncachedPeak := res.Peak("uncached-read")
	if !(basePeak > cachedPeak && cachedPeak > uncachedPeak*10) {
		t.Fatalf("peaks out of order: base=%.0f cached=%.0f uncached=%.0f",
			basePeak, cachedPeak, uncachedPeak)
	}
	// Paper: baseline ~8694, cached ~4341 — cached plateaus near half.
	if r := cachedPeak / basePeak; r < 0.3 || r > 0.75 {
		t.Fatalf("cached/baseline plateau = %.2f, want ~0.5", r)
	}
	// Scaling exists from 1 thread on baseline.
	s := res.Series["baseline-read"]
	if s[len(s)-1].MBps < s[0].MBps*1.8 {
		t.Fatalf("baseline did not scale: %v", s)
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10(optsQuick(t))
	if err != nil {
		t.Fatal(err)
	}
	// 128 B: NVDC-Cached beats the baseline (paper: 1.15x; accept >= 1.0x).
	b128 := res.At("baseline-read", 128).KIOPS
	c128 := res.At("cached-read", 128).KIOPS
	if c128 < b128 {
		t.Fatalf("no small-access advantage: cached %.0f < baseline %.0f KIOPS", c128, b128)
	}
	// At 4 KB the baseline wins (the Fig. 8 relation).
	b4k := res.At("baseline-read", 4096).KIOPS
	c4k := res.At("cached-read", 4096).KIOPS
	if c4k >= b4k {
		t.Fatalf("cached 4K (%.0f) not below baseline (%.0f)", c4k, b4k)
	}
	// Bandwidth grows with block size on the cached device (64 KB point,
	// paper: 3050 MB/s).
	c64k := res.At("cached-read", 65536)
	mbps := c64k.KIOPS * 65536 / 1000
	if mbps < 2000 || mbps > 5000 {
		t.Fatalf("cached 64K = %.0f MB/s, want ~3050 (+/-35%%)", mbps)
	}
}

func TestEnduranceShape(t *testing.T) {
	res, err := Endurance(optsQuick(t))
	if err != nil {
		t.Fatal(err)
	}
	// Random full-footprint overwrites with ~6% OP: write amplification
	// exists but stays sane, and wear-leveling keeps the spread tight.
	if res.WriteAmp < 1.0 || res.WriteAmp > 4.0 {
		t.Fatalf("write amplification = %.2f, want 1-4", res.WriteAmp)
	}
	if res.MaxWear == 0 {
		t.Fatal("no erases despite overwrite pressure")
	}
	if res.WearImbalance > 5 {
		t.Fatalf("wear imbalance %.1fx: wear-leveling ineffective", res.WearImbalance)
	}
}
