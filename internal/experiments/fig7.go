package experiments

import (
	"nvdimmc/internal/metrics"
	"nvdimmc/internal/report"
	"nvdimmc/internal/sim"
)

// Fig7Result holds the file-copy experiment (Fig. 7): sequential write
// bandwidth over progress while copying a large file from a SATA SSD onto
// the device. The paper copies 20 GB onto a 16 GB-cache module: ~518 MB/s
// while free slots last (SSD-bound; the PM863 reads ~520 MB/s sequential),
// collapsing to ~68 MB/s once every write needs a writeback+cachefill pair.
type Fig7Result struct {
	// Series is bandwidth (MB/s) per progress bucket.
	Series metrics.Series
	// CachedMBps is the mean bandwidth of the free-slot phase, UncachedMBps
	// of the post-exhaustion phase.
	CachedMBps, UncachedMBps float64
	// KneeFraction is where the collapse happened, as a fraction of the
	// copy (paper: at the ~15/20 = 0.75 mark).
	KneeFraction float64
}

// ssdMBps is the PM863's sequential read speed (Table I).
const ssdMBps = 520.0

// Fig7 runs the scaled copy: file size = 1.25x the cache (20 GB : 16 GB).
func Fig7(o Options) (Fig7Result, error) {
	var res Fig7Result
	s, err := coreSystem(nvdcConfig(o.pick(512, 256)))
	if err != nil {
		return res, err
	}
	// File = 1.25x the DRAM-cache module size, like 20 GB vs 16 GB.
	fileBytes := s.DRAM.Capacity() * 5 / 4
	if fileBytes > s.Driver.CapacityPages()*PageSize {
		fileBytes = s.Driver.CapacityPages() * PageSize
	}
	totalPages := int(fileBytes / PageSize)

	// The copy loop: read a chunk from the SSD (520 MB/s), write it to the
	// device, repeat. cp-style copy is synchronous chunk by chunk.
	const chunkPages = 16
	chunkBytes := int64(chunkPages * PageSize)
	ssdChunkTime := sim.Duration(float64(chunkBytes) / (ssdMBps * 1e6) * float64(sim.Second))

	tgt := s.NewFioTarget()
	tgt.Prepare(fileBytes)
	tgt.SetWalkFootprint(20 << 30)

	buckets := 40
	pagesPerBucket := totalPages / buckets
	if pagesPerBucket < chunkPages {
		pagesPerBucket = chunkPages
	}

	page := 0
	bucketStart := s.K.Now()
	bucketPages := 0
	copyDone := false
	var step func()
	step = func() {
		if page >= totalPages {
			copyDone = true
			return
		}
		n := chunkPages
		if page+n > totalPages {
			n = totalPages - page
		}
		off := int64(page) * PageSize
		page += n
		// SSD read of the chunk, then the device write.
		s.K.Schedule(ssdChunkTime, func() {
			tgt.Do(off, n*PageSize, true, func() {
				bucketPages += n
				if bucketPages >= pagesPerBucket {
					el := s.K.Now().Sub(bucketStart).Seconds()
					mbps := float64(bucketPages) * PageSize / 1e6 / el
					res.Series.Add(float64(page)/float64(totalPages), mbps)
					bucketStart = s.K.Now()
					bucketPages = 0
				}
				step()
			})
		})
	}
	step()
	if err := s.RunUntil(func() bool { return copyDone }, 600*sim.Second); err != nil {
		return res, err
	}
	if err := s.CheckHealth(); err != nil {
		return res, err
	}

	// Classify phases around the slot-exhaustion knee.
	knee := len(res.Series.Values)
	for i, v := range res.Series.Values {
		if v < ssdMBps/2 {
			knee = i
			break
		}
	}
	if knee < len(res.Series.Values) {
		res.KneeFraction = res.Series.X[knee]
	} else {
		res.KneeFraction = 1
	}
	var pre, post metrics.Series
	for i := range res.Series.Values {
		if i < knee {
			pre.Add(res.Series.X[i], res.Series.Values[i])
		} else {
			post.Add(res.Series.X[i], res.Series.Values[i])
		}
	}
	res.CachedMBps = pre.Mean()
	res.UncachedMBps = post.Mean()

	report.Line(o.out(), "  bandwidth over copy progress (MB/s)", res.Series.X, res.Series.Values, 8, "MB/s")
	printRows(o, "Fig. 7: 20GB-equivalent file copy", []Row{
		{Name: "free-slot (SSD-bound) bandwidth", Paper: 518, Measured: res.CachedMBps, Unit: "MB/s"},
		{Name: "cache-exhausted bandwidth", Paper: 68, Measured: res.UncachedMBps, Unit: "MB/s"},
		{Name: "knee position (fraction of copy)", Paper: 0.75, Measured: res.KneeFraction, Unit: "frac"},
	})
	return res, nil
}
