package experiments

import (
	"bytes"
	"fmt"

	"nvdimmc/internal/conform"
	"nvdimmc/internal/core"
	"nvdimmc/internal/sim"
)

// DefaultConformanceSeed is the fuzz sweep's master seed; every iteration's
// plan seed is derived from it with sim.SplitSeed, so any failure is
// replayable from the one number printed in the failure line.
const DefaultConformanceSeed uint64 = 0xC0F0_44D1

// conformLPNRange is the page-address range plans target: ~3x the slot
// count of the scaled system below, so the cache churns through evictions,
// writebacks and cachefills (the same pressure recipe as the crash sweep).
const conformLPNRange = 90

// ConformanceResult aggregates the randomized protocol-conformance sweep.
type ConformanceResult struct {
	Iterations int
	OpsRun     int    // ops executed across all iterations
	Events     uint64 // trace events the auditor checked
	Faulted    int    // iterations that ran with a fault schedule armed
	Seed       uint64
	// Failures holds one line per failing iteration, each ending with the
	// minimal reproducer: "REPRO: seed=<s> ops=<m>".
	Failures []string
}

// Conformance runs the randomized conformance fuzzer with the default seed:
// seeded plans (op mix + timing registers + fault schedule) against the
// full System, auditor strict, shrink-on-failure. See EXPERIMENTS.md for
// the reproducer workflow.
func Conformance(o Options) (*ConformanceResult, error) {
	return ConformanceSeeded(o, DefaultConformanceSeed)
}

// ConformanceSeeded is Conformance with an explicit master seed.
func ConformanceSeeded(o Options, seed uint64) (*ConformanceResult, error) {
	o.printf("== conformance: randomized protocol fuzz, auditor strict (seed %#x) ==\n", seed)
	res := &ConformanceResult{Iterations: o.pick(24, 6), Seed: seed}
	maxOps := o.pick(140, 60)

	type iterResult struct {
		ops     int
		events  uint64
		faulted bool
		fail    string
	}
	irs, err := runShards(res.Iterations, o.workers(), func(i int) (iterResult, error) {
		ps := sim.SplitSeed(seed, fmt.Sprintf("iter-%03d", i))
		withFaults := i%2 == 1
		plan := conform.NewPlan(ps, maxOps, conformLPNRange, withFaults)
		events, vio, err := conformancePoint(plan, len(plan.Ops), nil)
		if err != nil {
			return iterResult{}, fmt.Errorf("iter %d (%v): %w", i, plan, err)
		}
		ir := iterResult{ops: len(plan.Ops), events: events, faulted: withFaults}
		if vio != "" {
			min := conform.ShrinkOps(len(plan.Ops), func(m int) bool {
				_, v, perr := conformancePoint(plan, m, nil)
				return perr == nil && v != ""
			})
			ir.fail = fmt.Sprintf("iter %d: %s; REPRO: seed=%#x ops=%d", i, vio, plan.Seed, min)
		}
		return ir, nil
	})
	if err != nil {
		return res, err
	}
	for _, ir := range irs {
		res.OpsRun += ir.ops
		res.Events += ir.events
		if ir.faulted {
			res.Faulted++
		}
		if ir.fail != "" {
			res.Failures = append(res.Failures, ir.fail)
		}
	}
	o.printf("  %-42s %d\n", "iterations", res.Iterations)
	o.printf("  %-42s %d\n", "ops executed", res.OpsRun)
	o.printf("  %-42s %d\n", "trace events audited", res.Events)
	o.printf("  %-42s %d\n", "fault-armed iterations", res.Faulted)
	o.printf("  %-42s %d\n", "protocol violations", len(res.Failures))
	for _, f := range res.Failures {
		o.printf("  FAIL %s\n", f)
	}
	return res, nil
}

// conformanceConfig is the fuzz sweep's scaled system: the crash sweep's
// geometry (a one-row DRAM cache over a small Z-NAND array, so eviction
// pressure stays high) with the plan's randomized timing registers.
func conformanceConfig(plan conform.Plan) core.Config {
	cfg := core.DefaultConfig()
	cfg.CacheBytes = 128 << 10
	cfg.NAND.BlocksPerDie = 32
	cfg.NAND.PagesPerBlock = 16
	cfg.NAND.ProgramLatency = 20 * sim.Microsecond
	cfg.NAND.EraseLatency = 100 * sim.Microsecond
	cfg.TREFI = plan.TREFI
	cfg.TRFC = plan.TRFC
	cfg.Seed = sim.SplitSeed(plan.Seed, "system")
	if len(plan.Faults) > 0 {
		cfg.FaultSeed = sim.SplitSeed(plan.Seed, "faults")
	}
	return cfg
}

// conformPage renders the deterministic self-describing content of one
// written page, so reads can verify "every acked read returns the last
// acked write" without a byte-level mirror.
func conformPage(lpn int64, tag byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = tag ^ byte(i*13) ^ byte(lpn)
	}
	return p
}

// conformancePoint replays the first m ops of plan against a fresh system
// and reports how many trace events the auditor checked and the first
// protocol violation (empty if clean). perturb, when non-nil, sabotages the
// booted system before the workload runs — the hook the broken-build tests
// use to prove detection. A returned error means the run itself failed
// (setup error, op timeout, or an op error with no fault schedule armed to
// excuse it), not a protocol violation.
func conformancePoint(plan conform.Plan, m int, perturb func(*core.System)) (uint64, string, error) {
	s, err := core.NewSystem(conformanceConfig(plan))
	if err != nil {
		return 0, "", err
	}
	if s.FTL.LogicalPages() < plan.LPNRange {
		return 0, "", fmt.Errorf("conformance: media smaller (%d pages) than plan range %d",
			s.FTL.LogicalPages(), plan.LPNRange)
	}
	if s.Faults != nil {
		plan.Arm(s.Faults)
	}
	if perturb != nil {
		perturb(s)
	}
	tolerate := len(plan.Faults) > 0

	// written tracks the tag of the last acked write per lpn; entries are
	// invalidated when a write fails (content then indeterminate).
	written := map[int64]byte{}
	if m > len(plan.Ops) {
		m = len(plan.Ops)
	}
	for i := 0; i < m; i++ {
		op := plan.Ops[i]
		var opErr error
		doneFlag := false
		done := func(err error) { opErr = err; doneFlag = true }
		var buf []byte
		switch op.Kind {
		case conform.OpWrite:
			s.StoreErr(op.LPN*PageSize, conformPage(op.LPN, op.Tag), done)
		case conform.OpRead:
			buf = make([]byte, PageSize)
			s.LoadErr(op.LPN*PageSize, buf, done)
		case conform.OpFlush:
			s.Driver.FlushLPN(op.LPN, done)
		}
		if err := s.RunUntil(func() bool { return doneFlag }, 500*sim.Millisecond); err != nil {
			return s.Auditor.Events(), "", fmt.Errorf("op %d (%v lpn %d): %w", i, op.Kind, op.LPN, err)
		}
		switch {
		case opErr != nil && !tolerate:
			return s.Auditor.Events(), "", fmt.Errorf("op %d (%v lpn %d) failed with no faults armed: %w",
				i, op.Kind, op.LPN, opErr)
		case opErr != nil:
			// A legal outcome of the armed fault schedule (read-only mode,
			// exhausted retries, CP timeout); the page content is now
			// unknown to the application.
			delete(written, op.LPN)
		case op.Kind == conform.OpWrite:
			written[op.LPN] = op.Tag
		case op.Kind == conform.OpRead:
			if tag, ok := written[op.LPN]; ok && !bytes.Equal(buf, conformPage(op.LPN, tag)) {
				return s.Auditor.Events(), "",
					fmt.Errorf("op %d: read of lpn %d does not match last acked write", i, op.LPN)
			}
		}
	}
	// Let in-flight writebacks, retries and acks drain before judging.
	s.RunFor(5 * sim.Millisecond)

	if err := s.Auditor.Err(); err != nil {
		return s.Auditor.Events(), err.Error(), nil
	}
	if err := s.CheckHealth(); err != nil {
		return s.Auditor.Events(), err.Error(), nil
	}
	return s.Auditor.Events(), "", nil
}
