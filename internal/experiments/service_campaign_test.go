package experiments

import (
	"bytes"
	"testing"
)

// TestServiceCampaignConservation runs the quick service campaign — real
// HTTP servers on loopback sockets, 32 concurrent clients per admission
// policy — and checks the conservation surface the experiment gates on.
func TestServiceCampaignConservation(t *testing.T) {
	var out bytes.Buffer
	res, err := Service(Options{Quick: true, Out: &out})
	if err != nil {
		t.Fatalf("service campaign: %v\n%s", err, out.String())
	}
	if res.Points() != 3 {
		t.Fatalf("got %d points, want 3 (one per admission policy)", res.Points())
	}
	if got, want := res.OpsTotal(), 3*32*16; got != want {
		t.Fatalf("ops total %d, want %d (3 policies x 32 clients x 16 ops)", got, want)
	}
	if v := res.ViolationTotal(); v != 0 {
		t.Fatalf("%d conservation violations", v)
	}
	if l := res.AckedLostTotal(); l != 0 {
		t.Fatalf("writes-conservation residual %d", l)
	}
	for _, row := range res.Rows {
		if row.Health != "ok" {
			t.Fatalf("%v: drain audit %q", row.Policy, row.Health)
		}
		if row.Sent != row.Ops {
			t.Fatalf("%v: sent %d of %d ops", row.Policy, row.Sent, row.Ops)
		}
		// Every op must land in exactly one terminal counter.
		terminal := row.Completed + row.Shed + row.Expired + row.Failed + row.Throttled
		if terminal != uint64(row.Sent) {
			t.Fatalf("%v: %d terminal outcomes for %d sent ops", row.Policy, terminal, row.Sent)
		}
	}
}
