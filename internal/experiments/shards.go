// Shard fan-out for the experiment layer. The evaluation is dominated by
// matrices of *independent* sim runs — 64 seeded power-fail points, one
// system per thread-sweep point, one per tREFI setting, one per TPC-H query.
// Each shard builds its own System (seeded via sim.SplitSeed where
// randomness is involved), so shards share no mutable state and can run on
// any number of OS threads without perturbing each other's event streams.
//
// Determinism contract: runShards always executes every shard, returns
// results indexed by shard, and callers print only from the merged slice in
// shard order — so the output is byte-identical for any worker count,
// including the serial workers<=1 path.
package experiments

import (
	"errors"
	"sync"
	"sync/atomic"
)

// runShards runs fn(0..n-1) across at most `workers` goroutines and returns
// the n results in shard order. Every shard runs even if another fails; the
// returned error joins the per-shard errors in shard order (so the first
// line of the message is the lowest failing shard, matching what a serial
// loop would have reported first).
func runShards[T any](n, workers int, fn func(shard int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(i)
		}
		return results, errors.Join(errs...)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return results, errors.Join(errs...)
}
