package experiments

import (
	"fmt"

	"nvdimmc/internal/fault"
	"nvdimmc/internal/pool"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/openloop"
)

// The QoS campaign caps the multi-tenant request plane: a seeded
// noisy-neighbor mix — one zipfian-hot tenant offering 4x its token-bucket
// rate (1.6x the pool's measured mix capacity by itself) against three
// light uniform tenants with p99 SLOs — run with per-tenant isolation on
// and off, repeated under the faultpool failure schedules. The claim under
// test is performance isolation: with isolation on (token-bucket admission
// policing plus deficit-round-robin dispatch), every light tenant meets its
// p99 SLO while the hot tenant is throttled down to its contracted bucket
// rate; with isolation off the very same arrival stream drives at least one
// light tenant past its SLO. Conservation (per-tenant and pool-wide,
// including the throttled outcome) holds at every point, and the whole
// table is a pure function of the seeds — byte-identical serial, sharded,
// and under the lookahead scheduler.
//
// The mix spans two service regimes, so the campaign calibrates both: the
// hot tenant's zipfian working set largely hits the member caches (fast),
// while the lights' uniform accesses over a near-capacity footprint are
// miss-dominated (a cold miss costs near a millisecond). One capacity
// number cannot price both — the hot tenant's offered overload is a
// multiple of the *mix* capacity, and the lights' rates are a fraction of
// the *uniform* capacity so their load is feasible once isolation holds.

// qosHotX is the hot tenant's offered rate as a multiple of the measured
// mix capacity: 1.6x — enough overload that, unpoliced, its backlog queues
// everyone.
const qosHotX = 1.6

// qosBucketDiv divides the hot tenant's offered rate to size its token
// bucket: offered 4x over contract is the starvation-regression shape.
const qosBucketDiv = 4

// qosLightX is each light tenant's offered rate as a fraction of the
// measured uniform capacity: 3 x 0.1 = 0.3x their regime's capacity, light
// enough that the SLO is clearly feasible when the hot tenant is policed.
const qosLightX = 0.1

// qosSLOEpochs sizes the light tenants' p99 SLO in epochs (tREFI). The
// members run the near-capacity faultpool shape where a cold miss (dirty
// eviction, NAND program, then the read) costs near a millisecond, so the
// SLO must clear that service floor with queueing headroom — the isolated
// light tails land near 1.2 ms — while staying below the waits an unpoliced
// 2x-capacity backlog builds (2.2 ms and up, bounded only by admission
// backpressure). 200 epochs (~1.56 ms) splits those regimes with >25%
// margin each way.
const qosSLOEpochs = 200

// QoSTenantRow is one tenant's outcome at one campaign point.
type QoSTenantRow struct {
	Name       string
	OfferedOps float64 // this tenant's share of the offered arrival rate
	BucketOps  float64 // token-bucket rate (0: unpoliced)
	Completed  uint64
	Throttled  uint64
	Shed       uint64
	Expired    uint64
	Failed     uint64
	// GoodputOps is the tenant's completions per second over its completion
	// span.
	GoodputOps float64
	P99        sim.Duration
	P999       sim.Duration
	SLO        sim.Duration // p99 target (0: untracked)
	Violated   bool         // p99 over SLO at end of run
}

// QoSPoint is one campaign point: the noisy-neighbor mix under one
// (isolation, fault) combination. Tenants[0] is the hot tenant.
type QoSPoint struct {
	Point     int
	Isolation bool
	Fault     string // none | program | dietimeout

	OfferedOps float64
	// HotRatio is the hot tenant's goodput over its bucket rate — the
	// throttle-to-contract observable (only meaningful with isolation on).
	HotRatio  float64
	AckedLost uint64 // writes neither acked nor typed-terminal (must be 0)
	Tenants   []QoSTenantRow
}

// QoSResult is the noisy-neighbor campaign table.
type QoSResult struct {
	// CapacityOps is the measured saturating throughput of the campaign
	// pool shape (ops/sec), from the serial calibration run every point's
	// offered rate derives from.
	CapacityOps float64
	// UniformOps is the measured saturating throughput of the same pool
	// under a uniform (miss-dominated) probe — the light tenants' service
	// regime; their offered rates are a fraction of it.
	UniformOps float64
	// SLOTarget is the light tenants' p99 target.
	SLOTarget sim.Duration
	Rows      []QoSPoint
}

// Points returns the campaign size.
func (r QoSResult) Points() int { return len(r.Rows) }

// Find returns the campaign point for one (isolation, fault) combination,
// or nil.
func (r QoSResult) Find(isolation bool, faultKind string) *QoSPoint {
	for i := range r.Rows {
		if r.Rows[i].Isolation == isolation && r.Rows[i].Fault == faultKind {
			return &r.Rows[i]
		}
	}
	return nil
}

// LightViolations counts light tenants over their SLO at one point.
func (p *QoSPoint) LightViolations() int {
	n := 0
	for _, t := range p.Tenants[1:] {
		if t.Violated {
			n++
		}
	}
	return n
}

// HotThrottled returns the hot tenant's throttle count at one point.
func (p *QoSPoint) HotThrottled() uint64 { return p.Tenants[0].Throttled }

// WorstLightP99 returns the worst light-tenant p99 at one point.
func (p *QoSPoint) WorstLightP99() sim.Duration {
	var w sim.Duration
	for _, t := range p.Tenants[1:] {
		if t.P99 > w {
			w = t.P99
		}
	}
	return w
}

// AckedLostTotal sums acked-write loss across the campaign (must be zero).
func (r QoSResult) AckedLostTotal() uint64 {
	var t uint64
	for _, p := range r.Rows {
		t += p.AckedLost
	}
	return t
}

// qosFootSplit carves the pool footprint: the hot zipfian tenant works the
// first half, the lights split the rest, page-aligned.
func qosFootSplit(foot int64) (hotFoot, lightFoot int64) {
	hotFoot = (foot / 2) &^ 4095
	lightFoot = ((foot - hotFoot) / 3) &^ 4095
	return
}

// qosCalTenants is the calibration blend: the campaign's footprints and
// distributions at the nominal 12:1:1:1 traffic split (the hot tenant's
// ~80% share of the no-isolation arrival stream), no contracts — capacity
// is measured with QoS disarmed.
func qosCalTenants(foot int64) []openloop.Tenant {
	hotFoot, lightFoot := qosFootSplit(foot)
	ts := []openloop.Tenant{{
		Name: "hot", Dist: openloop.Zipfian, Weight: 12, ReadPct: 80, Footprint: hotFoot,
	}}
	for i := 0; i < 3; i++ {
		ts = append(ts, openloop.Tenant{
			Name: fmt.Sprintf("light%d", i), Dist: openloop.Uniform, Weight: 1, ReadPct: 80,
			Footprint: lightFoot, Offset: hotFoot + int64(i)*lightFoot,
		})
	}
	return ts
}

// qosTenants builds the campaign mix with the contracts armed. Arrival
// weights are the tenants' absolute offered rates (openloop normalizes, so
// weight ratios ARE the traffic split): the hot tenant at qosHotX x mix
// capacity with a token bucket at a quarter of that, each light at qosLightX
// x uniform capacity with a p99 SLO. DRR service weights stay equal — the
// fairness mechanism, not the arrival mix, is the campaign subject.
func qosTenants(foot int64, mixCap, uniCap float64, slo sim.Duration) []openloop.Tenant {
	hotFoot, lightFoot := qosFootSplit(foot)
	hotRate := qosHotX * mixCap
	lightRate := qosLightX * uniCap
	ts := []openloop.Tenant{{
		Name: "hot", Dist: openloop.Zipfian, Weight: hotRate, ReadPct: 80,
		Footprint:   hotFoot,
		LimitPerSec: hotRate / qosBucketDiv, Burst: 32,
	}}
	for i := 0; i < 3; i++ {
		ts = append(ts, openloop.Tenant{
			Name: fmt.Sprintf("light%d", i), Dist: openloop.Uniform, Weight: lightRate, ReadPct: 80,
			Footprint: lightFoot, Offset: hotFoot + int64(i)*lightFoot,
			SLOP99: slo,
		})
	}
	return ts
}

// qosPool builds one campaign pool: the overload campaign's member shape
// (small members, near-capacity footprints, heavy flash over-provisioning so
// the sweep stays off the GC write cliff) behind 3 channels + 1 hot spare,
// with the tenant QoS contracts armed or disarmed and the requested fault
// schedule on logical member 1.
func qosPool(seed uint64, tenants []openloop.Tenant, isolation bool, faultKind string, lockstep bool, notify func(pool.Completion)) (*pool.Pool, error) {
	cfg := pool.Config{
		Channels:        3,
		DIMMsPerChannel: 1,
		Interleave:      4096,
		Member:          overloadMemberCfg(),
		Workers:         1, // points are the parallel axis
		Seed:            seed,
		PrefillPages:    -1,
		Spares:          1,
		Notify:          notify,
		// The off arm drops enforcement but keeps per-tenant tracking
		// (QoSFromTenants carries the isolation switch), so both arms
		// report the same observables.
		QoS:              pool.QoSFromTenants(tenants, isolation),
		DisableLookahead: lockstep,
		// Same breaker shape as the fault and overload campaigns.
		BreakerWindow:      64,
		BreakerMinSamples:  6,
		BreakerErrRate:     0.4,
		BreakerCooldown:    8,
		BreakerCloseStreak: 4,
	}
	if faultKind != "none" {
		const victim = 1
		cfg.ArmFaults = func(member int, g *fault.Registry) {
			if member != victim {
				return
			}
			switch faultKind {
			case "program":
				g.OnOccurrence(fault.NANDProgramFail, 40).Times(1 << 30)
			case "dietimeout":
				g.Prob(fault.NANDDieTimeout, 0.25).Param(400)
			}
		}
	}
	return pool.New(cfg)
}

// qosFootprint rounds the pool capacity to the interleave, the campaign
// working-set base.
func qosFootprint(p *pool.Pool) int64 {
	foot := p.Capacity()
	return foot - foot%p.Cfg.Interleave
}

// qosCalibrateOne measures one saturating capacity number with the QoS
// contracts disarmed: completed requests per second over the post-warmup
// completion window (the overload campaign's accounting). One serial run
// per probe shape.
func qosCalibrateOne(label string, reqs int, lockstep bool,
	shape func(foot int64) []openloop.Tenant) (float64, error) {
	var recs []pool.Completion
	p, err := qosPool(sim.SplitSeed(23, "qos/cal/"+label), nil, false, "none", lockstep,
		func(c pool.Completion) { recs = append(recs, c) })
	if err != nil {
		return 0, fmt.Errorf("qos %s calibration: %w", label, err)
	}
	gen, err := openloop.New(openloop.Config{
		Seed:       sim.SplitSeed(23, "qos-load/cal/"+label),
		RatePerSec: 0,
		Tenants:    shape(qosFootprint(p)),
	})
	if err != nil {
		return 0, err
	}
	if err := p.RunOpenLoop(gen, reqs); err != nil {
		return 0, fmt.Errorf("qos %s calibration: %w", label, err)
	}
	if err := p.CheckHealth(); err != nil {
		return 0, fmt.Errorf("qos %s calibration: %w", label, err)
	}
	capacity := overloadGoodput(recs)
	if capacity <= 0 {
		return 0, fmt.Errorf("qos %s calibration: no completions to measure", label)
	}
	return capacity, nil
}

// qosCalibrate measures the campaign's two capacity references: the
// hot-dominated mix blend (the hot tenant's overload multiple) and a pure
// uniform probe (the lights' miss-dominated regime). Calibrating on the mix
// matters for the hot side — its zipfian working set is far more
// cache-friendly than a uniform probe, so a uniform capacity number would
// not overload the mix at any modest multiple — while the lights must be
// priced against the uniform number or their "light" load would itself
// exceed the miss-service rate.
func qosCalibrate(reqs int, lockstep bool) (mixCap, uniCap float64, err error) {
	mixCap, err = qosCalibrateOne("mix", reqs, lockstep, qosCalTenants)
	if err != nil {
		return 0, 0, err
	}
	uniCap, err = qosCalibrateOne("uniform", reqs, lockstep, func(foot int64) []openloop.Tenant {
		return []openloop.Tenant{
			{Name: "uni", Dist: openloop.Uniform, ReadPct: 80, Footprint: foot},
		}
	})
	if err != nil {
		return 0, 0, err
	}
	return mixCap, uniCap, nil
}

// qosPoint runs one campaign point. Each point is a fully independent pool
// (own seed splits for members, faults and workload), so points fan across
// shards with byte-identical merged output.
func qosPoint(pt, reqs int, faults []string, mixCap, uniCap float64, slo sim.Duration, lockstep bool) (QoSPoint, error) {
	isolation := pt%2 == 0
	kind := faults[pt/2]

	// Tenant shapes need the pool footprint, which needs the pool; build a
	// throwaway config first to size footprints, then the real pool with the
	// contracts armed. Footprint depends only on (member shape, seed), so
	// the two agree.
	seed := sim.SplitSeed(23, fmt.Sprintf("qos/%d", pt))
	probe, err := qosPool(seed, nil, false, "none", lockstep, nil)
	if err != nil {
		return QoSPoint{}, fmt.Errorf("qos point %d: %w", pt, err)
	}
	tenants := qosTenants(qosFootprint(probe), mixCap, uniCap, slo)
	// Tenant weights are absolute offered rates; the arrival clock runs at
	// their sum.
	offered := 0.0
	for _, t := range tenants {
		offered += t.Weight
	}
	p, err := qosPool(seed, tenants, isolation, kind, lockstep, nil)
	if err != nil {
		return QoSPoint{}, fmt.Errorf("qos point %d: %w", pt, err)
	}
	gen, err := openloop.New(openloop.Config{
		Seed:       sim.SplitSeed(23, fmt.Sprintf("qos-load/%d", pt)),
		RatePerSec: offered,
		Tenants:    tenants,
	})
	if err != nil {
		return QoSPoint{}, err
	}
	if err := p.RunOpenLoop(gen, reqs); err != nil {
		return QoSPoint{}, fmt.Errorf("qos point %d (iso=%v %s): %w", pt, isolation, kind, err)
	}
	// Conservation — pool-wide and per-tenant, including throttled —
	// asserted at every point, under every fault schedule.
	if err := p.CheckHealth(); err != nil {
		return QoSPoint{}, fmt.Errorf("qos point %d (iso=%v %s): %w", pt, isolation, kind, err)
	}
	s := p.Stats()
	row := QoSPoint{
		Point:      pt,
		Isolation:  isolation,
		Fault:      kind,
		OfferedOps: offered,
		AckedLost:  s.WritesIn - s.WritesAcked - s.WritesFailed - s.WritesShed - s.WritesExpired - s.WritesThrottled,
	}
	weightSum := 0.0
	for _, t := range tenants {
		weightSum += t.Weight
	}
	for i, ts := range s.PerTenant {
		tr := QoSTenantRow{
			Name:       ts.Name,
			OfferedOps: offered * tenants[i].Weight / weightSum,
			BucketOps:  ts.RatePerSec,
			Completed:  ts.Completed,
			Throttled:  ts.Throttled,
			Shed:       ts.Shed,
			Expired:    ts.Expired,
			Failed:     ts.Failed,
			P99:        ts.Lat.Percentile(99),
			P999:       ts.Lat.Percentile(99.9),
			SLO:        ts.SLOP99,
			Violated:   ts.SLOViolated(),
		}
		if sec := ts.Meter.Elapsed().Seconds(); sec > 0 {
			tr.GoodputOps = float64(ts.Meter.Ops()) / sec
		}
		row.Tenants = append(row.Tenants, tr)
	}
	if hot := row.Tenants[0]; hot.BucketOps > 0 {
		row.HotRatio = hot.GoodputOps / hot.BucketOps
	}
	return row, nil
}

// QoS is the multi-tenant noisy-neighbor campaign: measured capacity, then
// the hot-vs-lights mix at 2x offered load with per-tenant isolation
// (token buckets + deficit-round-robin dispatch) on and off, crossed with
// the faultpool failure schedules, tabling per-tenant goodput, throttles,
// p99/p999 and SLO verdicts. Points fan across o.Parallel shards;
// calibration is one serial run; the merged table is byte-identical at any
// worker count and with the lookahead scheduler on or off.
func QoS(o Options) (QoSResult, error) {
	var res QoSResult
	// Points must outlast the admission and service transients the SLO is
	// judged against; 2400 requests put the hot tenant thousands of bucket
	// refills past its burst.
	reqs := o.pick(2400, 1200)
	faults := []string{"none", "program", "dietimeout"}
	if o.Quick {
		faults = []string{"none", "program"}
	}
	points := 2 * len(faults)

	mixCap, uniCap, err := qosCalibrate(reqs, o.DisableLookahead)
	if err != nil {
		return res, err
	}
	res.CapacityOps = mixCap
	res.UniformOps = uniCap
	res.SLOTarget = qosSLOEpochs * overloadMemberCfg().TREFI

	rows, err := runShards(points, o.workers(), func(pt int) (QoSPoint, error) {
		return qosPoint(pt, reqs, faults, mixCap, uniCap, res.SLOTarget, o.DisableLookahead)
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows

	o.printf("== QoS: %d-point noisy-neighbor campaign (3ch + 1 spare, %d reqs/point, hot %.1fx mix capacity) ==\n",
		points, reqs, qosHotX)
	o.printf("  measured capacity: mix %.0f ops/s, uniform %.0f ops/s; light-tenant SLO p99 <= %v (%d epochs)\n",
		mixCap, uniCap, res.SLOTarget, qosSLOEpochs)
	for _, r := range res.Rows {
		iso := "isolation=off"
		if r.Isolation {
			iso = "isolation=on "
		}
		o.printf("  pt%02d %s %-10s offered=%8.0f ops/s hot-ratio=%.2f lost=%d\n",
			r.Point, iso, r.Fault, r.OfferedOps, r.HotRatio, r.AckedLost)
		for _, t := range r.Tenants {
			verdict := "-"
			if t.SLO > 0 {
				if t.Violated {
					verdict = "VIOLATED"
				} else {
					verdict = "met"
				}
			}
			o.printf("    %-7s offered=%8.0f bucket=%8.0f goodput=%8.0f ops/s done=%-5d thr=%-5d shed=%-4d exp=%-4d fail=%-3d p99=%-10v p999=%-10v slo=%s\n",
				t.Name, t.OfferedOps, t.BucketOps, t.GoodputOps, t.Completed, t.Throttled,
				t.Shed, t.Expired, t.Failed, t.P99, t.P999, verdict)
		}
	}
	if on, off := res.Find(true, "none"), res.Find(false, "none"); on != nil && off != nil {
		o.printf("  fault-free: isolation on -> %d/3 lights violated, hot throttled %d (%.2fx bucket); off -> %d/3 violated, worst light p99 %v\n",
			on.LightViolations(), on.HotThrottled(), on.HotRatio,
			off.LightViolations(), off.WorstLightP99())
	}
	return res, nil
}
