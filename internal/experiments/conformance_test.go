package experiments

import (
	"bytes"
	"strings"
	"testing"

	"nvdimmc/internal/conform"
	"nvdimmc/internal/core"
	"nvdimmc/internal/sim"
)

// TestConformanceQuickClean runs the quick fuzz sweep end-to-end: every
// seeded plan, faulted or not, must replay with zero protocol violations.
func TestConformanceQuickClean(t *testing.T) {
	var buf bytes.Buffer
	res, err := Conformance(Options{Quick: true, Out: &buf, Parallel: 4})
	if err != nil {
		t.Fatalf("conformance: %v\n%s", err, buf.String())
	}
	if len(res.Failures) != 0 {
		t.Fatalf("protocol violations on a stock build:\n%s", strings.Join(res.Failures, "\n"))
	}
	if res.Faulted == 0 {
		t.Fatal("no fault-armed iterations ran")
	}
	if res.Events == 0 {
		t.Fatal("auditor saw no events")
	}
	if res.OpsRun == 0 {
		t.Fatal("no ops executed")
	}
	if !strings.Contains(buf.String(), "protocol violations") {
		t.Fatalf("summary missing:\n%s", buf.String())
	}
}

// TestConformanceDeterministic re-runs one faulted plan and requires the
// audited event count to be identical — the property the shrinker's
// prefix-monotone bisection rests on.
func TestConformanceDeterministic(t *testing.T) {
	plan := conform.NewPlan(sim.SplitSeed(DefaultConformanceSeed, "iter-001"), 60, conformLPNRange, true)
	ev1, vio1, err1 := conformancePoint(plan, len(plan.Ops), nil)
	ev2, vio2, err2 := conformancePoint(plan, len(plan.Ops), nil)
	if err1 != nil || err2 != nil {
		t.Fatalf("point errors: %v / %v", err1, err2)
	}
	if ev1 != ev2 || vio1 != vio2 {
		t.Fatalf("nondeterministic replay: events %d/%d, violation %q/%q", ev1, ev2, vio1, vio2)
	}
}

// TestConformanceCatchesBrokenBuild sabotages the booted system with a rogue
// NVMC data-bus access outside any tRFC window — the bus-sharing violation
// the paper's design exists to prevent (§III-B) — and requires the auditor
// to flag it and the shrinker to bisect to a minimal reproducer.
func TestConformanceCatchesBrokenBuild(t *testing.T) {
	plan := conform.NewPlan(sim.SplitSeed(DefaultConformanceSeed, "sabotage"), 40, conformLPNRange, false)
	rogue := func(s *core.System) {
		// Just after boot, long before the first window opens mid-tREFI.
		s.K.Schedule(100*sim.Nanosecond, func() {
			buf := make([]byte, 64)
			_ = s.Channel.NVMCAccess(0, buf, true)
		})
	}
	_, vio, err := conformancePoint(plan, len(plan.Ops), rogue)
	if err != nil {
		t.Fatalf("point error: %v", err)
	}
	if vio == "" {
		t.Fatal("auditor missed a rogue NVMC access outside the window")
	}
	min := conform.ShrinkOps(len(plan.Ops), func(m int) bool {
		_, v, perr := conformancePoint(plan, m, rogue)
		return perr == nil && v != ""
	})
	if min != 1 {
		t.Fatalf("shrink of an op-independent violation should reach 1 op, got %d", min)
	}
	if _, v, perr := conformancePoint(plan, min, rogue); perr != nil || v == "" {
		t.Fatalf("minimal reproducer does not reproduce: vio=%q err=%v", v, perr)
	}
}

// TestShrinkOps checks the bisection against a few threshold oracles.
func TestShrinkOps(t *testing.T) {
	for _, tc := range []struct{ total, threshold int }{
		{1, 1}, {40, 1}, {40, 17}, {40, 40}, {129, 64},
	} {
		got := conform.ShrinkOps(tc.total, func(m int) bool { return m >= tc.threshold })
		if got != tc.threshold {
			t.Errorf("ShrinkOps(total=%d, threshold=%d) = %d", tc.total, tc.threshold, got)
		}
	}
}
