package experiments

import (
	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/fio"
)

// Fig13Result holds the refresh-rate cost study (§VII-D2): host-side
// (Cached) 4 KB random-read bandwidth as tREFI is shortened. More refreshes
// give the FPGA more windows but steal host bus time.
type Fig13Result struct {
	Rows []Row
	// Reduction16T is the 16-thread Cached bandwidth at tREFI4 (paper:
	// 3690 MB/s).
	Peak16T float64
}

// Fig13 sweeps tREFI over {7.8, 3.9, 1.95} us at one thread, plus the
// 16-thread point at tREFI4. Paper: 1835, 1691 (-8%), 1530 (-17%); 3690 @16T.
func Fig13(o Options) (Fig13Result, error) {
	var res Fig13Result
	cases := []struct {
		trefi sim.Duration
		paper float64
		name  string
	}{
		{ddr4.TREFI, 1835, "tREFI (7.8us)"},
		{ddr4.TREFIHot, 1691, "tREFI2 (3.9us)"},
		{1950 * sim.Nanosecond, 1530, "tREFI4 (1.95us)"},
	}
	ops := o.pick(1500, 300)

	run := func(trefi sim.Duration, jobs int) (float64, error) {
		cfg := nvdcConfig(0)
		cfg.TREFI = trefi
		s, err := coreSystem(cfg)
		if err != nil {
			return 0, err
		}
		pages := s.Layout.NumSlots * 9 / 10
		if err := prefillSlots(s, pages); err != nil {
			return 0, err
		}
		tgt := s.NewFioTarget()
		tgt.SetWalkFootprint(15 << 30)
		r, err := fio.Run(tgt, fio.Job{
			Pattern: fio.RandRead, BlockSize: PageSize, NumJobs: jobs,
			FileSize: int64(pages) * PageSize, OpsPerThread: ops / jobs * 2, WarmupOps: 50,
		})
		if err != nil {
			return 0, err
		}
		if err := s.CheckHealth(); err != nil {
			return 0, err
		}
		return r.BandwidthMBps(), nil
	}

	// The three 1T refresh-rate points and the 16T peak are independent
	// systems: shard all four, merge in case order.
	type trefiPoint struct {
		trefi sim.Duration
		jobs  int
	}
	pts := make([]trefiPoint, 0, len(cases)+1)
	for _, c := range cases {
		pts = append(pts, trefiPoint{trefi: c.trefi, jobs: 1})
	}
	pts = append(pts, trefiPoint{trefi: 1950 * sim.Nanosecond, jobs: 16})
	measured, err := runShards(len(pts), o.workers(), func(i int) (float64, error) {
		return run(pts[i].trefi, pts[i].jobs)
	})
	if err != nil {
		return res, err
	}
	for i, c := range cases {
		res.Rows = append(res.Rows, Row{Name: c.name + " cached 1T", Paper: c.paper, Measured: measured[i], Unit: "MB/s"})
	}
	res.Peak16T = measured[len(cases)]
	res.Rows = append(res.Rows, Row{Name: "tREFI4 cached 16T", Paper: 3690, Measured: res.Peak16T, Unit: "MB/s"})

	printRows(o, "Fig. 13: host-side DRAM bandwidth vs refresh rate", res.Rows)
	return res, nil
}
