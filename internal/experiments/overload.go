package experiments

import (
	"fmt"

	"nvdimmc/internal/core"
	"nvdimmc/internal/fault"
	"nvdimmc/internal/pool"
	"nvdimmc/internal/report"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/openloop"
)

// The overload campaign caps the request plane: a seeded sweep of offered
// load from 0.5x to 4x of the pool's measured capacity, crossed with the
// faultpool failure schedules, with and without deadlines and shedding. The
// claim under test is graceful degradation: with deadline-aware admission
// shedding, goodput (in-deadline completions per second) at 4x offered load
// stays within 10% of measured capacity — the plane sheds the infeasible
// excess typed at admission instead of queueing everything into uselessly
// late completions — while conservation (submitted = completed + shed +
// expired + typed-failed) holds at every point and no acked write is lost.

// overloadModes are the three front-end configurations each load level runs
// under: the unbounded PR-4 behavior ("block", no deadlines — late is
// invisible), deadlines without shedding ("deadline" — late work expires
// typed, but only after burning queue residency), and deadlines with
// deadline-aware admission shedding ("shed" — infeasible work is refused at
// the door).
var overloadModes = []string{"block", "deadline", "shed"}

// overloadDeadlineEpochs sizes each request's completion budget in epochs
// (tREFI): generous against the single-op service profile — the cold path
// (miss, dirty eviction, NAND program before the read) runs near 1 ms, and
// retries back off up to 8 epochs — hard against a 4x backlog, which queues
// multiples of this budget.
const overloadDeadlineEpochs = 256

// OverloadPoint is one campaign point: a 3-channel + 1-spare pool under one
// (load multiple, mode, fault) combination.
type OverloadPoint struct {
	Point int
	LoadX float64 // offered load as a multiple of measured capacity
	Mode  string  // block | deadline | shed
	Fault string  // none | program | dietimeout

	OfferedOps float64 // offered arrival rate, ops/sec
	// GoodputOps is in-deadline completions/sec over the post-warmup service
	// window: the first quarter of the completion span is excluded, covering
	// the cold-start transient while the per-channel service-interval
	// estimates converge from zero (admission is deliberately permissive on
	// ignorance, so early arrivals are admitted into a backlog the estimator
	// cannot yet price). Capacity is measured over the same window shape, so
	// the ratio compares steady states.
	GoodputOps float64
	// GoodputRatio is GoodputOps over the calibration capacity; the 4x shed
	// acceptance bound is >= 0.9. For the no-deadline "block" mode every
	// completion counts as good — late is invisible there by construction.
	GoodputRatio float64

	Completed uint64
	Late      uint64 // completed past deadline (counted in Completed, not in goodput)
	Shed      uint64
	Expired   uint64
	Failed    uint64
	AckedLost uint64 // writes neither acked nor typed-terminal (must be 0)

	P99      sim.Duration // completion latency p99
	MissP99  sim.Duration // lateness overshoot p99 of late completions (0: none)
	MissP999 sim.Duration
	HeldHW   int // deepest per-channel admission-held backlog
}

// OverloadResult is the saturation campaign table.
type OverloadResult struct {
	// CapacityOps is the measured saturating throughput of the campaign pool
	// shape (ops/sec), from the serial calibration run every point's offered
	// rate is a multiple of.
	CapacityOps float64
	// DeadlineBudget is the per-request completion budget the deadline and
	// shed modes stamp.
	DeadlineBudget sim.Duration
	Rows           []OverloadPoint
}

// Points returns the campaign size.
func (r OverloadResult) Points() int { return len(r.Rows) }

// AckedLostTotal sums acked-write loss across the campaign (must be zero).
func (r OverloadResult) AckedLostTotal() uint64 {
	var t uint64
	for _, p := range r.Rows {
		t += p.AckedLost
	}
	return t
}

// ShedTotal / ExpiredTotal sum the overload outcomes across the campaign.
func (r OverloadResult) ShedTotal() uint64 {
	var t uint64
	for _, p := range r.Rows {
		t += p.Shed
	}
	return t
}

func (r OverloadResult) ExpiredTotal() uint64 {
	var t uint64
	for _, p := range r.Rows {
		t += p.Expired
	}
	return t
}

// maxLoad returns the campaign's highest offered-load multiple.
func (r OverloadResult) maxLoad() float64 {
	m := 0.0
	for _, p := range r.Rows {
		if p.LoadX > m {
			m = p.LoadX
		}
	}
	return m
}

// ShedGoodputRatio returns the goodput/capacity ratio of the fault-free
// shed-mode point at the highest load level — the campaign's headline
// graceful-degradation bound (acceptance: >= 0.9). The bound is scoped to
// the fault-free point because capacity is the healthy pool's: a pool with
// a persistently failing member cannot deliver healthy-capacity goodput at
// any admission policy, and fault-mode degradation is the faultpool
// campaign's subject. Faulted shed points are instead held to the relative
// bound below.
func (r OverloadResult) ShedGoodputRatio() float64 {
	maxLoad := r.maxLoad()
	for _, p := range r.Rows {
		if p.Mode == "shed" && p.Fault == "none" && p.LoadX == maxLoad {
			return p.GoodputRatio
		}
	}
	return 0
}

// ShedBeatsQueueing reports whether, at the highest load level, the
// shed-mode goodput is at least the deadline-only (queue-then-expire)
// goodput for every fault schedule — the relative graceful-degradation
// claim that holds even where absolute capacity does not: refusing
// infeasible work at the door never yields less in-deadline throughput
// than queueing it into expiry.
func (r OverloadResult) ShedBeatsQueueing() error {
	maxLoad := r.maxLoad()
	byFault := map[string]map[string]float64{}
	for _, p := range r.Rows {
		if p.LoadX != maxLoad {
			continue
		}
		if byFault[p.Fault] == nil {
			byFault[p.Fault] = map[string]float64{}
		}
		byFault[p.Fault][p.Mode] = p.GoodputOps
	}
	for fault, modes := range byFault {
		if modes["shed"] < modes["deadline"] {
			return fmt.Errorf("overload: at %.0fx under %q faults, shed goodput %.0f ops/s below deadline-only %.0f ops/s",
				maxLoad, fault, modes["shed"], modes["deadline"])
		}
	}
	return nil
}

// overloadMemberCfg is the faultpool member shape (small module, capacity
// close to its cache so the campaign footprint forces real evictions) with
// one change: heavy flash over-provisioning. The fault campaign's 6.25%
// reserve leaves so few free pages after the 90% prefill that a couple of
// thousand requests cross the FTL's GC write cliff — every further program
// serializes behind valid-page migration and erases, service collapses to
// milliseconds per op, and the measured "capacity" the load sweep scales
// from becomes the cliff rate rather than the pool's. This campaign is
// about the request plane under overload, not flash wear, so the member
// reserves half the array and the whole sweep stays on the flat part of
// the write-cost curve.
func overloadMemberCfg() core.Config {
	cfg := faultMemberCfg()
	cfg.FTL.OverProvisionPct = 50
	return cfg
}

// overloadPool builds the campaign pool: the faultpool member shape (small
// members, near-capacity footprints, faults surfaced to the driver) behind
// 3 channels + 1 hot spare, with the requested admission policy and fault
// schedule on logical member 1.
func overloadPool(seed uint64, admission pool.AdmissionPolicy, faultKind string, lockstep bool, notify func(pool.Completion)) (*pool.Pool, error) {
	cfg := pool.Config{
		Channels:         3,
		DIMMsPerChannel:  1,
		Interleave:       4096,
		Member:           overloadMemberCfg(),
		Workers:          1, // points are the parallel axis
		Seed:             seed,
		PrefillPages:     -1,
		Spares:           1,
		Admission:        admission,
		Notify:           notify,
		DisableLookahead: lockstep,
		// Same breaker shape as the fault campaign: misses serialize on a
		// member's driver, so windows must span many epochs.
		BreakerWindow:      64,
		BreakerMinSamples:  6,
		BreakerErrRate:     0.4,
		BreakerCooldown:    8,
		BreakerCloseStreak: 4,
	}
	if faultKind != "none" {
		const victim = 1
		cfg.ArmFaults = func(member int, g *fault.Registry) {
			if member != victim {
				return
			}
			switch faultKind {
			case "program":
				g.OnOccurrence(fault.NANDProgramFail, 40).Times(1 << 30)
			case "dietimeout":
				g.Prob(fault.NANDDieTimeout, 0.25).Param(400)
			}
		}
	}
	return pool.New(cfg)
}

// overloadGen builds the campaign load: one mixed tenant over a
// near-capacity footprint (evictions map pages onto media, so faulted
// points exercise real NAND — see faultMemberCfg).
func overloadGen(p *pool.Pool, seed uint64, rate float64, deadline sim.Duration) (*openloop.Generator, error) {
	foot := p.Capacity()
	foot -= foot % p.Cfg.Interleave
	return openloop.New(openloop.Config{
		Seed:       seed,
		RatePerSec: rate,
		Deadline:   deadline,
		Tenants: []openloop.Tenant{
			{Name: "mix", Dist: openloop.Uniform, ReadPct: 70, Footprint: foot},
		},
	})
}

// overloadGoodput computes in-deadline completions per second over the
// post-warmup service window: the first quarter of the in-deadline
// completion span is excluded. That quarter holds the cold-start transient
// — the admission estimator has no service-interval signal until channels
// have completed work across two epochs, so the earliest arrivals are
// always admitted and, under overload, complete late. Steady-state behavior
// is the claim under test; the warmup cut makes every point (and the
// capacity reference, measured the same way) a steady-state rate. The span
// is framed by the completions goodput counts — in-deadline ones — because
// a late straggler behind a die timeout can land hundreds of milliseconds
// after the bulk, and a max-based span would push the whole measurement
// window past every countable completion.
func overloadGoodput(recs []pool.Completion) float64 {
	var first, last sim.Time
	seen := false
	for _, c := range recs {
		if c.Outcome != pool.OutcomeCompleted || c.Late {
			continue
		}
		if !seen || c.At < first {
			first = c.At
		}
		if !seen || c.At > last {
			last = c.At
		}
		seen = true
	}
	span := last.Sub(first)
	if !seen || span <= 0 {
		return 0
	}
	cut := first.Add(span / 4)
	good := 0
	for _, c := range recs {
		if c.Outcome == pool.OutcomeCompleted && !c.Late && c.At >= cut {
			good++
		}
	}
	window := (span - span/4).Seconds()
	if window <= 0 {
		return 0
	}
	return float64(good) / window
}

// overloadCalibrate measures the campaign pool's saturating throughput:
// completed requests per second over the post-warmup completion window (the
// same accounting every point uses). One serial run, the same shape and seed
// at any o.Parallel — every point's offered rate derives from it, so the
// whole table is a pure function of the seeds.
func overloadCalibrate(reqs int, lockstep bool) (float64, error) {
	var recs []pool.Completion
	p, err := overloadPool(sim.SplitSeed(17, "overload/cal"), pool.AdmitBlock, "none", lockstep,
		func(c pool.Completion) { recs = append(recs, c) })
	if err != nil {
		return 0, fmt.Errorf("overload calibration: %w", err)
	}
	gen, err := overloadGen(p, sim.SplitSeed(17, "overload-load/cal"), 0, 0)
	if err != nil {
		return 0, err
	}
	if err := p.RunOpenLoop(gen, reqs); err != nil {
		return 0, fmt.Errorf("overload calibration: %w", err)
	}
	if err := p.CheckHealth(); err != nil {
		return 0, fmt.Errorf("overload calibration: %w", err)
	}
	capacity := overloadGoodput(recs)
	if capacity <= 0 {
		return 0, fmt.Errorf("overload calibration: no completions to measure")
	}
	return capacity, nil
}

// overloadPoint runs one campaign point. Each point is a fully independent
// pool (own seed splits for members, faults and workload), so points fan
// across shards with byte-identical merged output.
func overloadPoint(pt, reqs int, loads []float64, faults []string, capacity float64, deadline sim.Duration, lockstep bool) (OverloadPoint, error) {
	loadX := loads[pt%len(loads)]
	mode := overloadModes[(pt/len(loads))%len(overloadModes)]
	kind := faults[pt/(len(loads)*len(overloadModes))]

	admission := pool.AdmitBlock
	budget := sim.Duration(0)
	switch mode {
	case "deadline":
		budget = deadline
	case "shed":
		admission = pool.AdmitDeadlineAware
		budget = deadline
	}
	var recs []pool.Completion
	p, err := overloadPool(sim.SplitSeed(17, fmt.Sprintf("overload/%d", pt)), admission, kind, lockstep,
		func(c pool.Completion) { recs = append(recs, c) })
	if err != nil {
		return OverloadPoint{}, fmt.Errorf("overload point %d: %w", pt, err)
	}
	offered := loadX * capacity
	gen, err := overloadGen(p, sim.SplitSeed(17, fmt.Sprintf("overload-load/%d", pt)), offered, budget)
	if err != nil {
		return OverloadPoint{}, err
	}
	if err := p.RunOpenLoop(gen, reqs); err != nil {
		return OverloadPoint{}, fmt.Errorf("overload point %d (%.1fx %s %s): %w", pt, loadX, mode, kind, err)
	}
	// Extended conservation — submitted = completed + shed + expired +
	// typed-failed — asserted at every point, under every policy and fault.
	if err := p.CheckHealth(); err != nil {
		return OverloadPoint{}, fmt.Errorf("overload point %d (%.1fx %s %s): %w", pt, loadX, mode, kind, err)
	}
	s := p.Stats()
	row := OverloadPoint{
		Point:      pt,
		LoadX:      loadX,
		Mode:       mode,
		Fault:      kind,
		OfferedOps: offered,
		Completed:  s.Completed,
		Late:       s.CompletedLate,
		Shed:       s.Shed,
		Expired:    s.Expired,
		Failed:     s.Failed,
		AckedLost:  s.WritesIn - s.WritesAcked - s.WritesFailed - s.WritesShed - s.WritesExpired,
		P99:        s.Lat.Percentile(99),
	}
	if s.LatMiss.Count() > 0 {
		row.MissP99 = s.LatMiss.Percentile(99)
		row.MissP999 = s.LatMiss.Percentile(99.9)
	}
	for _, ch := range s.PerChannel {
		if ch.HeldHW > row.HeldHW {
			row.HeldHW = ch.HeldHW
		}
	}
	row.GoodputOps = overloadGoodput(recs) // Late==0 under "block": all good
	if capacity > 0 {
		row.GoodputRatio = row.GoodputOps / capacity
	}
	return row, nil
}

// Overload is the saturation campaign capping the request plane: measured
// capacity, then offered loads of 0.5x–4x crossed with front-end modes
// (block / deadline / deadline-aware shed) and fault schedules (none /
// persistent program failure / probabilistic die timeouts), tabling goodput,
// shed and expired counts, the deadline-miss tail and the held high-water
// mark. Points fan across o.Parallel shards; calibration is one serial run;
// the merged table is byte-identical at any worker count.
func Overload(o Options) (OverloadResult, error) {
	var res OverloadResult
	// Points must reach steady state: the admission estimator converges over
	// the first few milliseconds (cold NAND paths, cache hit reservoir), and
	// the goodput claim is about what comes after. 2000 requests put the 4x
	// point's arrival span near 6x the convergence transient.
	reqs := o.pick(2000, 1500)
	loads := []float64{0.5, 1, 2, 4}
	faults := []string{"none", "program", "dietimeout"}
	if o.Quick {
		loads = []float64{1, 4}
		faults = []string{"none", "program"}
	}
	points := len(loads) * len(overloadModes) * len(faults)

	capacity, err := overloadCalibrate(reqs, o.DisableLookahead)
	if err != nil {
		return res, err
	}
	res.CapacityOps = capacity
	epoch := overloadMemberCfg().TREFI
	res.DeadlineBudget = overloadDeadlineEpochs * epoch

	rows, err := runShards(points, o.workers(), func(pt int) (OverloadPoint, error) {
		return overloadPoint(pt, reqs, loads, faults, capacity, res.DeadlineBudget, o.DisableLookahead)
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows

	o.printf("== Overload: %d-point saturation campaign (3ch + 1 spare, %d reqs/point) ==\n", points, reqs)
	o.printf("  measured capacity %.0f ops/s, deadline budget %v (%d epochs)\n",
		capacity, res.DeadlineBudget, overloadDeadlineEpochs)
	var ratios []float64
	for _, r := range res.Rows {
		ratios = append(ratios, r.GoodputRatio)
		miss := "-"
		if r.MissP99 > 0 {
			miss = fmt.Sprintf("%v/%v", r.MissP99, r.MissP999)
		}
		o.printf("  pt%02d %.1fx %-8s %-10s goodput=%8.0f ops/s (%.2fx cap) done=%-4d late=%-3d shed=%-4d expired=%-4d failed=%-3d "+
			"p99=%-10v miss-p99/999=%-21s heldHW=%-4d lost=%d\n",
			r.Point, r.LoadX, r.Mode, r.Fault, r.GoodputOps, r.GoodputRatio,
			r.Completed, r.Late, r.Shed, r.Expired, r.Failed, r.P99, miss, r.HeldHW, r.AckedLost)
	}
	o.printf("  goodput/capacity %s\n", report.Sparkline(ratios))
	o.printf("  4x deadline-aware goodput (fault-free): %.2fx capacity  shed: %d  expired: %d  acked writes lost: %d\n",
		res.ShedGoodputRatio(), res.ShedTotal(), res.ExpiredTotal(), res.AckedLostTotal())
	return res, nil
}
