package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// TestPoolParallelIdentical: the pooled experiment must print byte-identical
// output and return an identical result struct at any -parallel setting —
// here the workers drive the pool's epoch-lockstep engine itself, not just
// independent shards, so this is the end-to-end check of the pool's
// determinism contract. Deliberately not skipped under -short: the -race
// -short CI lane is where the lockstep barriers earn their keep.
func TestPoolParallelIdentical(t *testing.T) {
	run := func(parallel int) (PoolResult, string) {
		var buf bytes.Buffer
		res, err := Pool(Options{Quick: true, Out: &buf, Parallel: parallel})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		// The idle-segment wall clocks are host-time (documented
		// nondeterministic); everything else must match exactly.
		res.IdleWallLockstepMS, res.IdleWallLookaheadMS = 0, 0
		return res, buf.String()
	}
	serialRes, serialOut := run(1)
	for _, parallel := range []int{2, 8} {
		res, out := run(parallel)
		if out != serialOut {
			t.Fatalf("parallel=%d output diverged:\n--- serial ---\n%s\n--- parallel ---\n%s",
				parallel, serialOut, out)
		}
		if !reflect.DeepEqual(res, serialRes) {
			t.Fatalf("parallel=%d results diverged: %+v vs %+v", parallel, res, serialRes)
		}
	}
}

// TestPoolScalingFloor pins the acceptance criterion on the experiment
// itself: >= 3.5x read bandwidth from 1 to 6 channels at 4 KB interleave.
func TestPoolScalingFloor(t *testing.T) {
	res, err := Pool(Options{Quick: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if x := res.ScalingX(); x < 3.5 {
		t.Fatalf("1->6 channel scaling %.2fx, want >= 3.5x (rows: %+v)", x, res.Rows)
	}
	// The coarse-interleave column exists to show the granularity cliff:
	// 2 MB stripes must scale visibly worse than 4 KB under the same load.
	fine := res.At(6, 4).MBps / res.At(1, 4).MBps
	coarse := res.At(6, 2048).MBps / res.At(1, 2048).MBps
	if coarse >= fine {
		t.Fatalf("2 MB interleave scaled %.2fx >= 4 KB's %.2fx — granularity cliff missing", coarse, fine)
	}
}
