package experiments

import "testing"

// TestCrashSweep is the acceptance gate for the §V-C persistence promise:
// at every seeded power-fail point, zero acked writes lost and zero health
// violations. The full run (>= 50 points) is part of the normal tier-1
// suite; -short keeps the quick 8-point version for the race-enabled pass.
func TestCrashSweep(t *testing.T) {
	o := optsQuick(t)
	o.Quick = testing.Short()
	res, err := CrashSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if !testing.Short() && res.Points < 50 {
		t.Fatalf("full sweep ran %d points, want >= 50", res.Points)
	}
	if res.Acked == 0 {
		t.Fatal("sweep audited zero acked writes — the workload never ran")
	}
	if res.Flushed == 0 {
		t.Fatal("no point caught dirty slots — the crash instants miss the workload")
	}
	for _, f := range res.Failures {
		t.Errorf("%s", f)
	}
	if len(res.Failures) > 0 {
		t.Fatalf("%d acked writes lost or invariants violated (replay: seed %#x)",
			len(res.Failures), res.Seed)
	}
}

// TestCrashPointReproducible: one point seed fully determines the audit.
func TestCrashPointReproducible(t *testing.T) {
	const seed = 0xD1E_0001
	a1, f1, fails1, err1 := CrashPoint(seed)
	a2, f2, fails2, err2 := CrashPoint(seed)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a1 != a2 || f1 != f2 || len(fails1) != len(fails2) {
		t.Fatalf("same seed diverged: (%d acked, %d flushed, %d fails) vs (%d, %d, %d)",
			a1, f1, len(fails1), a2, f2, len(fails2))
	}
}
