package experiments

import (
	"fmt"

	"nvdimmc/internal/imdb"
	"nvdimmc/internal/pmem"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/tpch"
)

// Fig11Result holds the TPC-H-on-IMDB comparison (Fig. 11): per-query
// execution time on NVDIMM-C normalized to the pmem baseline.
type Fig11Result struct {
	// Slowdown[q-1] is time(nvdc)/time(baseline) for query q.
	Slowdown []float64
	// Elapsed times for inspection.
	NVDC, Baseline []sim.Duration
}

// Paper anchors: Q1 ~3.3x, Q20 ~78x (§VII-B5).
const (
	fig11PaperQ1  = 3.3
	fig11PaperQ20 = 78.0
)

// Fig11 builds the scaled dataset and runs the 22 queries, each on a
// freshly built pair of systems (NVDIMM-C and the pmem baseline) so every
// query starts from the identical post-build cache state. That makes the 22
// queries independent shards — they fan out across o.Parallel workers and
// merge in query order — and makes each query's time a function of its spec
// alone rather than of whichever queries happened to run before it. (The
// paper runs a power-run; the per-query cold start costs the later queries
// whatever residue the earlier ones would have left, which is well under
// the 3.3x-78x signal this figure is about.)
func Fig11(o Options) (Fig11Result, error) {
	var res Fig11Result

	// Scale: dataset ≈ 6.25x the DRAM cache, preserving the paper's
	// 100 GB : 16 GB ratio. Quick mode shrinks both.
	cacheBytes := int64(o.pick(16<<20, 6<<20))
	datasetBytes := cacheBytes * 25 / 4

	specs := tpch.Specs()
	if o.Quick {
		specs = []tpch.QuerySpec{specs[0], specs[5], specs[19]} // Q1, Q6, Q20
	}

	type queryTimes struct {
		nvdc, base sim.Duration
	}
	times, err := runShards(len(specs), o.workers(), func(i int) (queryTimes, error) {
		q := specs[i]
		nv, err := fig11QueryNVDC(o, q, cacheBytes, datasetBytes)
		if err != nil {
			return queryTimes{}, fmt.Errorf("fig11: %s (nvdc): %w", q.Name(), err)
		}
		base, err := fig11QueryBaseline(q, datasetBytes)
		if err != nil {
			return queryTimes{}, fmt.Errorf("fig11: %s (baseline): %w", q.Name(), err)
		}
		return queryTimes{nvdc: nv, base: base}, nil
	})
	if err != nil {
		return res, err
	}
	for _, t := range times {
		res.NVDC = append(res.NVDC, t.nvdc)
		res.Baseline = append(res.Baseline, t.base)
	}

	o.printf("== Fig. 11: TPC-H query time normalized to baseline ==\n")
	for i := range specs {
		sd := float64(res.NVDC[i]) / float64(res.Baseline[i])
		res.Slowdown = append(res.Slowdown, sd)
		o.printf("  %-4s nvdc=%-12v base=%-12v slowdown=%.1fx\n",
			specs[i].Name(), res.NVDC[i], res.Baseline[i], sd)
	}
	o.printf("  paper: Q1 ~3.3x, Q20 ~78x\n")
	return res, nil
}

// fig11QueryNVDC builds a fresh NVDIMM-C system, loads the dataset, and
// times one query on it.
func fig11QueryNVDC(o Options, q tpch.QuerySpec, cacheBytes, datasetBytes int64) (sim.Duration, error) {
	cfg := nvdcConfig(0)
	cfg.CacheBytes = cacheBytes
	// NAND must hold the dataset.
	for int64(cfg.NAND.Channels*cfg.NAND.DiesPerChan*cfg.NAND.BlocksPerDie*cfg.NAND.PagesPerBlock)*PageSize < datasetBytes*3/2 {
		cfg.NAND.BlocksPerDie *= 2
	}
	s, err := coreSystem(cfg)
	if err != nil {
		return 0, err
	}
	db := imdb.New(s, s.K, s.Driver.CapacityPages()*PageSize, imdb.DefaultCost())
	built := false
	var buildErr error
	tpch.BuildDataset(db, tpch.Scale{TotalBytes: datasetBytes}, func(err error) {
		built, buildErr = true, err
	})
	if err := s.RunUntil(func() bool { return built }, 3600*sim.Second); err != nil {
		return 0, err
	}
	if buildErr != nil {
		return 0, buildErr
	}
	el, err := fig11RunOne(db, s.K.Step, s.K, q, datasetBytes)
	if err != nil {
		return 0, err
	}
	if err := s.CheckHealth(); err != nil {
		return 0, err
	}
	return el, nil
}

// fig11QueryBaseline is fig11QueryNVDC against the pmem comparator.
func fig11QueryBaseline(q tpch.QuerySpec, datasetBytes int64) (sim.Duration, error) {
	bd, err := pmem.New(pmem.DefaultConfig())
	if err != nil {
		return 0, err
	}
	db := imdb.New(bd, bd.K, bd.Capacity(), imdb.DefaultCost())
	built := false
	var buildErr error
	tpch.BuildDataset(db, tpch.Scale{TotalBytes: datasetBytes}, func(err error) {
		built, buildErr = true, err
	})
	for !built {
		if !bd.K.Step() {
			return 0, fmt.Errorf("build stalled")
		}
	}
	if buildErr != nil {
		return 0, buildErr
	}
	return fig11RunOne(db, bd.K.Step, bd.K, q, datasetBytes)
}

// fig11RunOne times a single query to completion on an already-built DB.
func fig11RunOne(db *imdb.DB, step func() bool, k tpch.Kernel, q tpch.QuerySpec, datasetBytes int64) (sim.Duration, error) {
	var el sim.Duration
	var qerr error
	doneQ := false
	tpch.RunQuery(db, k, q, datasetBytes, func(e sim.Duration, err error) {
		el, qerr, doneQ = e, err, true
	})
	for !doneQ {
		if !step() {
			return 0, fmt.Errorf("query stalled")
		}
	}
	if qerr != nil {
		return 0, qerr
	}
	return el, nil
}
