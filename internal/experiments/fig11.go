package experiments

import (
	"fmt"

	"nvdimmc/internal/imdb"
	"nvdimmc/internal/pmem"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/tpch"
)

// Fig11Result holds the TPC-H-on-IMDB comparison (Fig. 11): per-query
// execution time on NVDIMM-C normalized to the pmem baseline.
type Fig11Result struct {
	// Slowdown[q-1] is time(nvdc)/time(baseline) for query q.
	Slowdown []float64
	// Elapsed times for inspection.
	NVDC, Baseline []sim.Duration
}

// Paper anchors: Q1 ~3.3x, Q20 ~78x (§VII-B5).
const (
	fig11PaperQ1  = 3.3
	fig11PaperQ20 = 78.0
)

// Fig11 builds the scaled dataset on both devices and runs the 22 queries
// back-to-back (power-run style, cache state carrying across queries).
func Fig11(o Options) (Fig11Result, error) {
	var res Fig11Result

	// Scale: dataset ≈ 6.25x the DRAM cache, preserving the paper's
	// 100 GB : 16 GB ratio. Quick mode shrinks both.
	cacheBytes := int64(o.pick(16<<20, 6<<20))
	datasetBytes := cacheBytes * 25 / 4

	specs := tpch.Specs()
	if o.Quick {
		specs = []tpch.QuerySpec{specs[0], specs[5], specs[19]} // Q1, Q6, Q20
	}

	// --- NVDIMM-C side ---
	cfg := nvdcConfig(0)
	cfg.CacheBytes = cacheBytes
	// NAND must hold the dataset.
	for int64(cfg.NAND.Channels*cfg.NAND.DiesPerChan*cfg.NAND.BlocksPerDie*cfg.NAND.PagesPerBlock)*PageSize < datasetBytes*3/2 {
		cfg.NAND.BlocksPerDie *= 2
	}
	s, err := coreSystem(cfg)
	if err != nil {
		return res, err
	}
	ndb := imdb.New(s, s.K, s.Driver.CapacityPages()*PageSize, imdb.DefaultCost())
	built := false
	var buildErr error
	tpch.BuildDataset(ndb, tpch.Scale{TotalBytes: datasetBytes}, func(err error) {
		built, buildErr = true, err
	})
	if err := s.RunUntil(func() bool { return built }, 3600*sim.Second); err != nil {
		return res, err
	}
	if buildErr != nil {
		return res, buildErr
	}

	// --- Baseline side ---
	bd, err := pmem.New(pmem.DefaultConfig())
	if err != nil {
		return res, err
	}
	bdb := imdb.New(bd, bd.K, bd.Capacity(), imdb.DefaultCost())
	built = false
	tpch.BuildDataset(bdb, tpch.Scale{TotalBytes: datasetBytes}, func(err error) {
		built, buildErr = true, err
	})
	for !built {
		if !bd.K.Step() {
			return res, fmt.Errorf("fig11: baseline build stalled")
		}
	}
	if buildErr != nil {
		return res, buildErr
	}

	runAll := func(db *imdb.DB, step func() bool, k tpch.Kernel) ([]sim.Duration, error) {
		var times []sim.Duration
		for _, q := range specs {
			var el sim.Duration
			var qerr error
			doneQ := false
			tpch.RunQuery(db, k, q, datasetBytes, func(e sim.Duration, err error) {
				el, qerr, doneQ = e, err, true
			})
			for !doneQ {
				if !step() {
					return nil, fmt.Errorf("fig11: %s stalled", q.Name())
				}
			}
			if qerr != nil {
				return nil, fmt.Errorf("fig11: %s: %w", q.Name(), qerr)
			}
			times = append(times, el)
		}
		return times, nil
	}

	res.NVDC, err = runAll(ndb, s.K.Step, s.K)
	if err != nil {
		return res, err
	}
	if err := s.CheckHealth(); err != nil {
		return res, err
	}
	res.Baseline, err = runAll(bdb, bd.K.Step, bd.K)
	if err != nil {
		return res, err
	}

	o.printf("== Fig. 11: TPC-H query time normalized to baseline ==\n")
	for i := range specs {
		sd := float64(res.NVDC[i]) / float64(res.Baseline[i])
		res.Slowdown = append(res.Slowdown, sd)
		o.printf("  %-4s nvdc=%-12v base=%-12v slowdown=%.1fx\n",
			specs[i].Name(), res.NVDC[i], res.Baseline[i], sd)
	}
	o.printf("  paper: Q1 ~3.3x, Q20 ~78x\n")
	return res, nil
}
