package experiments

import (
	"fmt"

	"nvdimmc/internal/fault"
	"nvdimmc/internal/numa"
	"nvdimmc/internal/pool"
	"nvdimmc/internal/report"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/openloop"
)

// numaKinds are the fabric campaign's three failure modes, cycled across
// points: a socket kill (persistent program failures on every member of the
// victim socket — quarantines, degraded positions, evacuation and
// cross-socket failover), a slow socket (probabilistic die timeouts on the
// victim's members — latency tails, no errors, the lattice must NOT
// evacuate), and an interconnect degrade (the victim's links lose latency
// and bandwidth mid-run — remote tails inflate, service continues).
var numaKinds = []string{"socket-kill", "slow-socket", "xconn-degrade"}

// NumaPoint is one seeded fabric campaign point: a 3-socket fabric with one
// victim socket and a socket-affine open-loop load with cross-socket
// roamers.
type NumaPoint struct {
	Point  int
	Kind   string
	Victim int // victim socket
	Onset  int // fault onset (site occurrence, or link-fault epoch x8)

	Availability float64 // completed / submitted
	P99          sim.Duration
	RemoteP99    sim.Duration // p99 of completions that crossed the interconnect
	MigrateP99   sim.Duration // p99 of foreground completions during migration (0: none)

	Failed      uint64
	AckedLost   uint64 // writes admitted but neither acked nor typed-terminal (must be 0)
	PostEvac    uint64 // foreground submissions past Evacuating (must be 0)
	Rehomed     uint64 // directory chunks re-homed to survivors
	MigPages    uint64 // resident pages migrated off the victim
	MigReadMiss uint64
	Retries     uint64 // cross-socket retry promotions
	VictimState string // final lattice state of the victim socket
}

// NumaResult is the fabric campaign table.
type NumaResult struct {
	Rows []NumaPoint
}

// Points returns the campaign size.
func (r NumaResult) Points() int { return len(r.Rows) }

// AckedLostTotal sums acked-write loss across the campaign (must be zero).
func (r NumaResult) AckedLostTotal() uint64 {
	var t uint64
	for _, p := range r.Rows {
		t += p.AckedLost
	}
	return t
}

// PostEvacTotal sums post-evacuation submissions (structurally zero).
func (r NumaResult) PostEvacTotal() uint64 {
	var t uint64
	for _, p := range r.Rows {
		t += p.PostEvac
	}
	return t
}

// MinAvailability returns the worst per-point availability.
func (r NumaResult) MinAvailability() float64 {
	min := 1.0
	for _, p := range r.Rows {
		if p.Availability < min {
			min = p.Availability
		}
	}
	if len(r.Rows) == 0 {
		return 0
	}
	return min
}

// Evacuations counts points whose victim ended Evacuated.
func (r NumaResult) Evacuations() int {
	n := 0
	for _, p := range r.Rows {
		if p.VictimState == "evacuated" {
			n++
		}
	}
	return n
}

// CheckLattice verifies the campaign's structural claims: every socket-kill
// point evacuated its victim and moved its resident set, and no
// slow-socket or interconnect point condemned one (tail pressure is not
// failure).
func (r NumaResult) CheckLattice() error {
	for _, p := range r.Rows {
		switch p.Kind {
		case "socket-kill":
			if p.VictimState != "evacuated" {
				return fmt.Errorf("numa pt%d: killed socket %d ended %q, want evacuated",
					p.Point, p.Victim, p.VictimState)
			}
			if p.Rehomed == 0 {
				return fmt.Errorf("numa pt%d: killed socket %d re-homed no chunks", p.Point, p.Victim)
			}
		default:
			if p.VictimState == "evacuating" || p.VictimState == "evacuated" {
				return fmt.Errorf("numa pt%d (%s): victim socket %d was condemned (%q) by a non-fatal fault",
					p.Point, p.Kind, p.Victim, p.VictimState)
			}
		}
	}
	return nil
}

// numaPoint runs one campaign point: a fully independent fabric (own seed
// splits for pool members, fault schedules and workload), so points fan
// across shards with byte-identical merged output.
func numaPoint(o Options, pt, reqs int) (NumaPoint, error) {
	kind := numaKinds[pt%len(numaKinds)]
	const sockets = 3
	victim := (pt / len(numaKinds)) % sockets
	onset := 1 + 7*(pt/(len(numaKinds)*sockets))

	cfg := numa.Config{
		Sockets: sockets,
		Pool: pool.Config{
			Channels:        2,
			DIMMsPerChannel: 1,
			Interleave:      4096,
			Member:          faultMemberCfg(),
			PrefillPages:    -1,
			// The pool fault-campaign breaker tuning (see faultpool).
			BreakerWindow:      64,
			BreakerMinSamples:  6,
			BreakerErrRate:     0.4,
			BreakerCooldown:    8,
			BreakerCloseStreak: 4,
		},
		ChunkBytes: 64 << 10,
		// A slow socket breeds sporadic suspicion (queueing delays bunch
		// completions); six consecutive suspect probes separate "condemn"
		// from "ride it out" while kills still evacuate immediately through
		// the degraded-position path.
		EvacuateAfterProbes: 6,
		Workers:             1, // points are the parallel axis
		Seed:                sim.SplitSeed(13, fmt.Sprintf("numa/%d", pt)),
		DisableLookahead:    o.DisableLookahead,
	}
	switch kind {
	case "socket-kill":
		cfg.ArmFaults = func(socket, member int, g *fault.Registry) {
			if socket == victim {
				g.OnOccurrence(fault.NANDProgramFail, uint64(onset)).Times(1 << 30)
			}
		}
	case "slow-socket":
		// x12 keeps a 100 us NAND program under the driver's 1.5 ms CP ack
		// deadline: the socket gets slow (latency tails, probe suspicion),
		// not broken (no transport errors) — the lattice must ride it out.
		cfg.ArmFaults = func(socket, member int, g *fault.Registry) {
			if socket == victim {
				g.Prob(fault.NANDDieTimeout, 0.25).Param(12)
			}
		}
	case "xconn-degrade":
		cfg.LinkFaults = []numa.LinkFault{
			{Epoch: onset * 8, Socket: victim, LatFactor: 20, BWDivide: 16},
		}
	}
	f, err := numa.New(cfg)
	if err != nil {
		return NumaPoint{}, fmt.Errorf("numa point %d: %w", pt, err)
	}

	// Socket-affine tenants plus a roamer spanning the fabric: local traffic
	// on every socket, guaranteed cross-socket requests paying the wire.
	ts := make([]openloop.Tenant, 0, sockets+1)
	for s := 0; s < sockets; s++ {
		ts = append(ts, openloop.Tenant{
			Name: fmt.Sprintf("s%d", s), Socket: s, Dist: openloop.Uniform,
			ReadPct: 20, Weight: 2, Footprint: f.Span(), Offset: int64(s) * f.Span(),
		})
	}
	ts = append(ts, openloop.Tenant{
		Name: "roam", Socket: 0, Dist: openloop.Uniform,
		ReadPct: 20, Weight: 1, Footprint: f.Capacity(),
	})
	gen, err := openloop.New(openloop.Config{
		Seed:       sim.SplitSeed(13, fmt.Sprintf("numa-load/%d", pt)),
		RatePerSec: 1.5e6,
		Tenants:    ts,
	})
	if err != nil {
		return NumaPoint{}, err
	}
	if err := f.RunOpenLoop(gen, reqs); err != nil {
		return NumaPoint{}, fmt.Errorf("numa point %d (%s s%d): %w", pt, kind, victim, err)
	}
	if err := f.CheckHealth(); err != nil {
		return NumaPoint{}, fmt.Errorf("numa point %d (%s s%d): %w", pt, kind, victim, err)
	}
	s := f.Stats()
	row := NumaPoint{
		Point:       pt,
		Kind:        kind,
		Victim:      victim,
		Onset:       onset,
		P99:         s.Lat.Percentile(99),
		RemoteP99:   s.LatRemote.Percentile(99),
		Failed:      s.Failed,
		AckedLost:   s.WritesIn - s.WritesAcked - s.WritesFailed - s.WritesShed - s.WritesExpired - s.WritesThrottled,
		PostEvac:    s.PostEvacSubmissions,
		Rehomed:     s.ChunksRehomed,
		MigPages:    s.MigPages,
		MigReadMiss: s.MigReadMiss,
		Retries:     s.Ctr.Get("fab-retry-promoted"),
		VictimState: s.PerSocket[victim].State.String(),
	}
	if s.Submitted > 0 {
		row.Availability = float64(s.Completed) / float64(s.Submitted)
	}
	if s.LatMigrate.Count() > 0 {
		row.MigrateP99 = s.LatMigrate.Percentile(99)
	}
	return row, nil
}

// Numa is the multi-socket fabric fault campaign capping the NUMA layer:
// seeded points cycling three failure modes (socket kill, slow socket,
// interconnect degrade) across three victim sockets and fault onsets. Per
// point it tables availability, local/remote/during-migration p99 and the
// evacuation counters; the campaign claims zero acked-write loss and zero
// post-evacuation submissions at every point, every killed socket ends
// Evacuated with its chunks re-homed, and no transiently slow socket is
// ever condemned. Points fan across o.Parallel shards; the merged table is
// byte-identical at any worker count.
func Numa(o Options) (NumaResult, error) {
	var res NumaResult
	points := o.pick(18, 9)
	reqs := o.pick(400, 250)

	rows, err := runShards(points, o.workers(), func(pt int) (NumaPoint, error) {
		return numaPoint(o, pt, reqs)
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows

	o.printf("== Numa: %d-point multi-socket fabric campaign (3 sockets x 2ch, %d reqs/point) ==\n",
		points, reqs)
	var avail []float64
	for _, r := range res.Rows {
		avail = append(avail, 100*r.Availability)
		mig := "-"
		if r.MigrateP99 > 0 {
			mig = fmt.Sprint(r.MigrateP99)
		}
		o.printf("  pt%02d %-13s s%d@%-2d avail=%6.2f%% p99=%-10v remote-p99=%-10v mig-p99=%-10s "+
			"failed=%-3d retries=%-2d rehomed=%-3d mig=%d/%d %-10s lost=%d postevac=%d\n",
			r.Point, r.Kind, r.Victim, r.Onset, 100*r.Availability, r.P99, r.RemoteP99, mig,
			r.Failed, r.Retries, r.Rehomed, r.MigPages, r.MigReadMiss, r.VictimState,
			r.AckedLost, r.PostEvac)
	}
	o.printf("  availability %s  min %.2f%%\n", report.Sparkline(avail), 100*res.MinAvailability())
	o.printf("  acked writes lost: %d  post-evacuation submissions: %d  evacuations: %d/%d points\n",
		res.AckedLostTotal(), res.PostEvacTotal(), res.Evacuations(), points)
	return res, nil
}
