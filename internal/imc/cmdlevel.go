package imc

import (
	"fmt"

	"nvdimmc/internal/bus"
	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/sim"
)

// Command-level host access: instead of the transfer-level occupancy model,
// this path drives real DDR4 command sequences — PRE/ACT/RD/WR per 64 B
// burst under an open-page policy — through the channel into the DRAM's
// bank state machines, which validate every timing rule. It is the
// protocol-fidelity mode: slower to simulate, used by the validation tests
// and available for paranoid runs; the two paths must agree on data and
// roughly on time.

// cmdBank tracks the scheduler's view of one bank.
type cmdBank struct {
	openRow int // -1 when precharged
	lastACT sim.Time
}

// CmdScheduler issues command-level host accesses on a controller's channel.
type CmdScheduler struct {
	c     *Controller
	banks []cmdBank

	// Stats.
	acts, pres, reads, writes uint64
	rowHits                   uint64
}

// NewCmdScheduler returns a scheduler that assumes all banks precharged
// (the state after any refresh, which PREAs everything).
func (c *Controller) NewCmdScheduler() *CmdScheduler {
	nb := c.ch.Device().Config().Banks
	s := &CmdScheduler{c: c, banks: make([]cmdBank, nb)}
	for i := range s.banks {
		s.banks[i].openRow = -1
		s.banks[i].lastACT = sim.Time(-1 << 50)
	}
	return s
}

// Stats reports command counts and the row-hit total.
func (s *CmdScheduler) Stats() (acts, pres, reads, writes, rowHits uint64) {
	return s.acts, s.pres, s.reads, s.writes, s.rowHits
}

// invalidateOnRefresh must be called when a REF occurred since the last
// access: the iMC PREAs all banks before REF, so the scheduler's open-row
// state resets. The controller tracks refresh counts for this.
func (s *CmdScheduler) syncRefresh(seenRefreshes *uint64) {
	if *seenRefreshes != s.c.refreshes {
		*seenRefreshes = s.c.refreshes
		for i := range s.banks {
			s.banks[i].openRow = -1
		}
	}
}

// ReadAt performs a command-level read of len(buf) bytes at addr. done runs
// when the last burst's data has crossed the bus.
func (s *CmdScheduler) ReadAt(addr int64, buf []byte, done func()) {
	s.access(addr, buf, false, done)
}

// WriteAt performs a command-level write.
func (s *CmdScheduler) WriteAt(addr int64, data []byte, done func()) {
	s.access(addr, data, true, done)
}

func (s *CmdScheduler) access(addr int64, buf []byte, write bool, done func()) {
	dev := s.c.ch.Device()
	if addr%ddr4.BurstBytes != 0 {
		panic(fmt.Sprintf("imc: command-level access at unaligned address %d", addr))
	}
	if len(buf)%ddr4.BurstBytes != 0 {
		panic(fmt.Sprintf("imc: command-level access of unaligned size %d", len(buf)))
	}
	tm := dev.Config().Timing
	nBursts := len(buf) / ddr4.BurstBytes
	var seenRefreshes uint64 = s.c.refreshes

	i := 0
	var next func()
	next = func() {
		if i >= nBursts {
			if done != nil {
				done()
			}
			return
		}
		burst := i
		i++
		a := addr + int64(burst)*ddr4.BurstBytes
		bnk, row, col := dev.AddrToBRC(a)

		// Build the command sequence and its duration, then occupy the bus
		// for it; refresh holds (which PREA the device) are excluded by the
		// FIFO bus resource, and syncRefresh re-syncs our row state.
		s.syncRefresh(&seenRefreshes)
		b := &s.banks[bnk]
		needPRE := b.openRow >= 0 && b.openRow != row
		needACT := b.openRow != row
		if !needACT {
			s.rowHits++
		}

		var hold sim.Duration = tm.TBL
		if needPRE {
			hold += tm.TRP
		}
		if needACT {
			// Hold the bus until the freshly opened row is legally
			// prechargeable: a refresh (PREA) may be queued right behind us
			// and must not violate tRAS.
			post := tm.TRCD + tm.TBL
			if tm.TRAS > post {
				hold += tm.TRAS - tm.TBL
			} else {
				hold += tm.TRCD
			}
		}
		// tRAS: a precharge may not come earlier than lastACT+tRAS.
		var preWait sim.Duration
		if needPRE {
			earliest := b.lastACT.Add(tm.TRAS)
			if now := s.c.k.Now(); earliest > now {
				preWait = earliest.Sub(now)
			}
		}
		hold += preWait

		s.c.ch.DataBus.Acquire(hold, func(start sim.Time) {
			// Refresh may have intervened while we queued.
			s.syncRefresh(&seenRefreshes)
			needPRE := s.banks[bnk].openRow >= 0 && s.banks[bnk].openRow != row
			needACT := s.banks[bnk].openRow != row
			t := start.Add(preWait)
			issue := func(at sim.Time, cmd ddr4.Command) {
				s.c.k.ScheduleAt(at, func() { s.c.ch.Issue(bus.HostIMC, cmd) })
			}
			if needPRE {
				issue(t, ddr4.Command{Kind: ddr4.CmdPrecharge, Bank: bnk})
				t = t.Add(tm.TRP)
				s.pres++
			}
			if needACT {
				issue(t, ddr4.Command{Kind: ddr4.CmdActivate, Bank: bnk, Row: row})
				at := t
				s.c.k.ScheduleAt(at, func() { s.banks[bnk].lastACT = at })
				t = t.Add(tm.TRCD)
				s.acts++
				s.banks[bnk].openRow = row
			}
			kind := ddr4.CmdRead
			if write {
				kind = ddr4.CmdWrite
				s.writes++
			} else {
				s.reads++
			}
			issue(t, ddr4.Command{Kind: kind, Bank: bnk, Col: col})
			// Data crosses the bus TCL after CAS; the burst slice moves at
			// completion.
			end := t.Add(tm.TBL)
			span := buf[burst*ddr4.BurstBytes : (burst+1)*ddr4.BurstBytes]
			s.c.k.ScheduleAt(end, func() {
				var err error
				if write {
					err = dev.CopyIn(a, span)
				} else {
					err = dev.CopyOut(a, span)
				}
				if err != nil {
					panic(fmt.Sprintf("imc: command-level data: %v", err))
				}
				next()
			})
		})
	}
	next()
}
