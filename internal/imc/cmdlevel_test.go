package imc

import (
	"bytes"
	"testing"

	"nvdimmc/internal/sim"
)

func TestCmdLevelReadWriteRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	k, ch, c := newSystem(cfg)
	c.StartRefresh()
	s := c.NewCmdScheduler()
	want := bytes.Repeat([]byte{0xA7, 0x19}, 2048) // 4 KB
	done := false
	s.WriteAt(64*1024, want, func() {
		got := make([]byte, len(want))
		s.ReadAt(64*1024, got, func() {
			if !bytes.Equal(got, want) {
				t.Error("command-level round trip mismatch")
			}
			done = true
		})
	})
	k.RunFor(5 * sim.Millisecond)
	if !done {
		t.Fatal("command-level ops did not complete")
	}
	// THE point of this mode: the DRAM's protocol checker saw every single
	// command and found nothing illegal.
	if n := ch.Device().ViolationCount(); n != 0 {
		t.Fatalf("%d protocol violations: %v", n, ch.Device().Violations()[:min(3, int(n))])
	}
	acts, _, reads, writes, _ := s.Stats()
	if reads != 64 || writes != 64 {
		t.Fatalf("reads/writes = %d/%d, want 64/64", reads, writes)
	}
	if acts == 0 {
		t.Fatal("no activates issued")
	}
}

func TestCmdLevelRowHits(t *testing.T) {
	// Sequential bursts within one 8 KB row: one ACT, then row hits.
	cfg := DefaultConfig()
	k, ch, c := newSystem(cfg)
	s := c.NewCmdScheduler()
	buf := make([]byte, 4096)
	done := false
	s.ReadAt(0, buf, func() { done = true })
	k.RunFor(sim.Millisecond)
	if !done {
		t.Fatal("read did not complete")
	}
	acts, pres, _, _, rowHits := s.Stats()
	if acts != 1 || pres != 0 {
		t.Fatalf("acts=%d pres=%d for a single-row sweep, want 1/0", acts, pres)
	}
	if rowHits != 63 {
		t.Fatalf("row hits = %d, want 63", rowHits)
	}
	if ch.Device().ViolationCount() != 0 {
		t.Fatal("violations on sequential sweep")
	}
}

func TestCmdLevelRowConflictPrecharges(t *testing.T) {
	// Two bursts in the same bank, different rows: PRE + ACT between them.
	cfg := DefaultConfig()
	k, ch, c := newSystem(cfg)
	s := c.NewCmdScheduler()
	dev := ch.Device()
	geo := dev.Config()
	rowBytes := int64(geo.BurstsPerRow * 64)
	// Same bank: same (bank) coordinate means addresses rowBytes*banks apart.
	a1 := int64(0)
	a2 := rowBytes * int64(geo.Banks)
	if b1, r1, _ := dev.AddrToBRC(a1); false {
		_ = b1
		_ = r1
	}
	done := false
	s.ReadAt(a1, make([]byte, 64), func() {
		s.ReadAt(a2, make([]byte, 64), func() { done = true })
	})
	k.RunFor(sim.Millisecond)
	if !done {
		t.Fatal("reads did not complete")
	}
	_, pres, _, _, _ := s.Stats()
	if pres != 1 {
		t.Fatalf("precharges = %d, want 1 (row conflict)", pres)
	}
	if ch.Device().ViolationCount() != 0 {
		t.Fatalf("violations: %v", ch.Device().Violations())
	}
}

func TestCmdLevelSurvivesRefreshStorm(t *testing.T) {
	// Long random command-level traffic under the fastest refresh rate:
	// the protocol checker must stay silent (the §VII-A property at the
	// command level).
	cfg := DefaultConfig()
	cfg.TREFI = 1950 * sim.Nanosecond
	k, ch, c := newSystem(cfg)
	c.StartRefresh()
	s := c.NewCmdScheduler()
	rng := sim.NewRand(21)
	capacity := ch.Device().Capacity()
	remaining := 300
	var issue func()
	issue = func() {
		if remaining == 0 {
			return
		}
		remaining--
		addr := (rng.Int63n(capacity-4096) / 64) * 64
		if rng.Intn(2) == 0 {
			s.ReadAt(addr, make([]byte, 256), issue)
		} else {
			s.WriteAt(addr, make([]byte, 256), issue)
		}
	}
	issue()
	k.RunFor(50 * sim.Millisecond)
	if remaining != 0 {
		t.Fatalf("%d ops still outstanding", remaining)
	}
	if n := ch.Device().ViolationCount(); n != 0 {
		t.Fatalf("%d violations under refresh storm: %v", n, ch.Device().Violations()[0])
	}
	if c.Refreshes() < 1000 {
		t.Fatalf("refresh storm too weak: %d refreshes", c.Refreshes())
	}
}

func TestCmdLevelAgreesWithTransferLevel(t *testing.T) {
	// Both host paths must return identical data for interleaved traffic.
	cfg := DefaultConfig()
	k, _, c := newSystem(cfg)
	c.StartRefresh()
	s := c.NewCmdScheduler()
	want := bytes.Repeat([]byte{0xEE, 0x11, 0x77}, 1024)[:2048]
	done := false
	// Write via transfer level, read via command level.
	c.Write(8192, want, func() {
		got := make([]byte, len(want))
		s.ReadAt(8192, got, func() {
			if !bytes.Equal(got, want) {
				t.Error("cross-path data mismatch")
			}
			done = true
		})
	})
	k.RunFor(5 * sim.Millisecond)
	if !done {
		t.Fatal("cross-path test did not complete")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
