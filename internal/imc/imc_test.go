package imc

import (
	"bytes"
	"testing"

	"nvdimmc/internal/bus"
	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/dram"
	"nvdimmc/internal/sim"
)

func newSystem(cfg Config) (*sim.Kernel, *bus.Channel, *Controller) {
	k := sim.NewKernel()
	dcfg := dram.DefaultConfig(ddr4.DDR4_1600)
	dcfg.Rows = 1024
	dcfg.Timing.TRFC = cfg.TRFC
	dcfg.Timing.TREFI = cfg.TREFI
	dev := dram.New(k, dcfg)
	ch := bus.New(k, dev)
	c := New(k, ch, cfg)
	return k, ch, c
}

func TestRefreshCadence(t *testing.T) {
	cfg := DefaultConfig()
	k, ch, c := newSystem(cfg)
	c.StartRefresh()
	k.RunFor(sim.Millisecond)
	// 1 ms / 7.8 us = ~128 refreshes.
	got := c.Refreshes()
	if got < 126 || got > 129 {
		t.Fatalf("refreshes in 1ms = %d, want ~128", got)
	}
	if ch.Device().RefreshCount() != got {
		t.Fatalf("DRAM saw %d REFs, iMC issued %d", ch.Device().RefreshCount(), got)
	}
	if n := ch.Device().ViolationCount(); n != 0 {
		t.Fatalf("violations = %d: %v", n, ch.Device().Violations())
	}
}

func TestRefreshCadenceDoubled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TREFI = ddr4.TREFIHot // 3.9 us
	k, _, c := newSystem(cfg)
	c.StartRefresh()
	k.RunFor(sim.Millisecond)
	got := c.Refreshes()
	if got < 254 || got > 258 {
		t.Fatalf("refreshes in 1ms at tREFI2 = %d, want ~256", got)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	k, _, c := newSystem(cfg)
	c.StartRefresh()
	msg := bytes.Repeat([]byte("nvdc"), 1024) // 4 KB
	wrote, read := false, false
	got := make([]byte, len(msg))
	c.Write(100*4096, msg, func() {
		wrote = true
		c.Read(100*4096, got, func() { read = true })
	})
	k.RunFor(100 * sim.Microsecond)
	if !wrote || !read {
		t.Fatalf("wrote=%v read=%v", wrote, read)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("data mismatch through iMC")
	}
}

func TestWPQDrains(t *testing.T) {
	cfg := DefaultConfig()
	k, _, c := newSystem(cfg)
	for i := 0; i < 10; i++ {
		c.Write(int64(i)*4096, make([]byte, 4096), nil)
	}
	if c.WPQDepth() != 10 {
		t.Fatalf("WPQ depth = %d immediately after posting, want 10", c.WPQDepth())
	}
	k.RunFor(100 * sim.Microsecond)
	if c.WPQDepth() != 0 {
		t.Fatalf("WPQ depth = %d after drain, want 0", c.WPQDepth())
	}
}

func TestADRFlush(t *testing.T) {
	cfg := DefaultConfig()
	k, ch, c := newSystem(cfg)
	data := bytes.Repeat([]byte{0x5A}, 4096)
	c.Write(4096, data, nil)
	// Power fails before the bus transaction completes.
	if n := c.ADRFlush(); n != 1 {
		t.Fatalf("ADR flushed %d entries, want 1", n)
	}
	got := make([]byte, 4096)
	if err := ch.Device().CopyOut(4096, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("ADR flush did not persist WPQ data")
	}
	_ = k
}

func TestRefreshDelaysReads(t *testing.T) {
	// A read arriving just after REF waits out the full programmed tRFC.
	cfg := DefaultConfig()
	k, _, c := newSystem(cfg)
	c.StartRefresh()
	var start, end sim.Time
	// First REF at 7.8 us. Issue a read at 7.9 us (inside the 1.25 us hold).
	k.ScheduleAt(sim.Time(7900*sim.Nanosecond), func() {
		start = k.Now()
		c.Read(0, make([]byte, 64), func() { end = k.Now() })
	})
	k.RunFor(20 * sim.Microsecond)
	lat := end.Sub(start)
	// Must wait until 7.8us+1.25us = 9.05us, i.e. >= 1.15 us latency.
	if lat < 1100*sim.Nanosecond {
		t.Fatalf("read latency through refresh = %v, want >= ~1.15us", lat)
	}
}

func TestRefreshOverhead(t *testing.T) {
	cfg := DefaultConfig()
	_, _, c := newSystem(cfg)
	got := c.RefreshOverhead()
	want := 1250.0 / 7800.0
	if got < want-0.001 || got > want+0.001 {
		t.Fatalf("overhead = %v, want %v", got, want)
	}
}

func TestStopRefresh(t *testing.T) {
	cfg := DefaultConfig()
	k, _, c := newSystem(cfg)
	c.StartRefresh()
	k.RunFor(100 * sim.Microsecond)
	n := c.Refreshes()
	c.StopRefresh()
	k.RunFor(100 * sim.Microsecond)
	if c.Refreshes() > n+1 {
		t.Fatalf("refreshes continued after stop: %d -> %d", n, c.Refreshes())
	}
}

func TestHostTransferTimeScalesWithSize(t *testing.T) {
	cfg := DefaultConfig()
	_, ch, _ := newSystem(cfg)
	t4k := ch.HostTransferTime(4096, 1)
	t64 := ch.HostTransferTime(64, 1)
	if t4k <= t64 {
		t.Fatalf("4KB transfer %v not longer than 64B %v", t4k, t64)
	}
	// 4 KB = 64 bursts * 5 ns = 320 ns of pure data at DDR4-1600.
	pure := 64 * 4 * ddr4.DDR4_1600.TCK()
	if t4k < pure {
		t.Fatalf("4KB transfer %v shorter than pure burst time %v", t4k, pure)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tRFC >= tREFI accepted")
		}
	}()
	cfg := DefaultConfig()
	cfg.TRFC = cfg.TREFI
	newSystem(cfg)
}

func TestSelfRefreshStopsREF(t *testing.T) {
	cfg := DefaultConfig()
	k, ch, c := newSystem(cfg)
	c.StartRefresh()
	k.RunFor(100 * sim.Microsecond)
	before := c.Refreshes()
	c.EnterSelfRefresh()
	k.RunFor(200 * sim.Microsecond)
	if got := c.Refreshes(); got > before+1 {
		t.Fatalf("REF issued during self-refresh: %d -> %d", before, got)
	}
	if !ch.Device().InSelfRefresh() {
		t.Fatal("device not in self-refresh")
	}
	c.ExitSelfRefresh()
	k.RunFor(100 * sim.Microsecond)
	if ch.Device().InSelfRefresh() {
		t.Fatal("device stuck in self-refresh")
	}
	if c.Refreshes() <= before+1 {
		t.Fatal("refresh did not resume after SRX")
	}
	if n := ch.Device().ViolationCount(); n != 0 {
		t.Fatalf("violations: %v", ch.Device().Violations())
	}
}

func TestPostponedRefreshCounter(t *testing.T) {
	cfg := DefaultConfig()
	k, _, c := newSystem(cfg)
	c.StartRefresh()
	// Saturate the bus with a long transfer so refreshes queue up late.
	c.Read(0, make([]byte, 1<<20), nil) // ~ms-scale hold
	k.RunFor(5 * sim.Millisecond)
	if c.PostponedRefreshes() == 0 {
		t.Fatal("no postponed refreshes recorded under a saturating transfer")
	}
}
