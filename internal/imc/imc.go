// Package imc models the host's integrated memory controller: the component
// NVDIMM-C deliberately does NOT modify. It issues PREA+REF on a strict
// tREFI cadence (the hook the NVMC's whole access mechanism hangs on), holds
// the data bus for the *programmed* tRFC after each REF, performs host reads
// and writes as serialized data-bus transactions, and models the write
// pending queue (WPQ) that delimits the platform persistence domain (§V-C).
//
// tREFI and tRFC are programmable, mirroring the Skylake MMIO configuration
// registers the paper uses to stretch tRFC to 1.25 us and to double or
// quadruple the refresh rate (Figs. 12/13).
package imc

import (
	"fmt"

	"nvdimmc/internal/bus"
	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/trace"
)

// Config parameterizes the controller.
type Config struct {
	// TREFI is the average refresh interval (default 7.8 us).
	TREFI sim.Duration
	// TRFC is the programmed refresh cycle time the controller keeps the
	// bus quiet for after REF. The PoC programs 1.25 us (§IV-A).
	TRFC sim.Duration
	// RowSwitchesPer4K approximates how many row activations a random 4 KB
	// transfer incurs (the 4 KB may straddle a row boundary and the row is
	// rarely already open under random traffic).
	RowSwitchesPer4K int
	// WPQCapacity bounds the write pending queue (64 entries on Skylake-SP
	// class parts; the exact value only matters to the persistence tests).
	WPQCapacity int
}

// DefaultConfig mirrors the PoC configuration from Table I.
func DefaultConfig() Config {
	return Config{
		TREFI:            ddr4.TREFI,
		TRFC:             1250 * sim.Nanosecond,
		RowSwitchesPer4K: 1,
		WPQCapacity:      64,
	}
}

type wpqEntry struct {
	id   uint64
	addr int64
	data []byte
}

// Controller is the host iMC for one memory channel.
type Controller struct {
	k   *sim.Kernel
	ch  *bus.Channel
	cfg Config

	refreshEnabled bool
	refreshes      uint64
	nextRefresh    sim.Time
	// refGen invalidates queued refresh closures: each closure captures the
	// generation it was scheduled under and becomes a no-op if a warp (see
	// WarpIdleRefreshes) advanced the engine past it in the meantime.
	refGen uint64

	wpq    []wpqEntry
	wpqSeq uint64
	// wpqDrained counts entries that reached the DRAM.
	wpqDrained uint64
	// adrFlushes counts power-fail flushes.
	adrFlushes uint64

	reads, writes uint64
	readBytes     uint64
	writeBytes    uint64

	// selfRefresh tracks the power-state the controller put the DIMM in.
	selfRefresh bool
	// postponed counts refreshes granted more than tREFI late (JEDEC allows
	// postponing up to 8).
	postponed uint64
}

// New wires a controller to the channel. Call StartRefresh to begin the
// refresh cadence (BIOS hands the machine over with refresh running).
func New(k *sim.Kernel, ch *bus.Channel, cfg Config) *Controller {
	if cfg.TREFI <= 0 || cfg.TRFC <= 0 {
		panic("imc: refresh timing must be positive")
	}
	if cfg.TRFC >= cfg.TREFI {
		panic(fmt.Sprintf("imc: tRFC %v >= tREFI %v", cfg.TRFC, cfg.TREFI))
	}
	if cfg.RowSwitchesPer4K <= 0 {
		cfg.RowSwitchesPer4K = 1
	}
	if cfg.WPQCapacity <= 0 {
		cfg.WPQCapacity = 64
	}
	return &Controller{k: k, ch: ch, cfg: cfg}
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Refreshes returns the number of REF commands issued.
func (c *Controller) Refreshes() uint64 { return c.refreshes }

// StartRefresh begins the periodic refresh engine. The first REF is issued
// one tREFI from now.
func (c *Controller) StartRefresh() {
	if c.refreshEnabled {
		return
	}
	c.refreshEnabled = true
	c.nextRefresh = c.k.Now().Add(c.cfg.TREFI)
	c.scheduleRefresh()
}

// StopRefresh halts the refresh engine (used by teardown and by the
// NVMC-frontend strawman experiments).
func (c *Controller) StopRefresh() { c.refreshEnabled = false }

func (c *Controller) scheduleRefresh() {
	if !c.refreshEnabled {
		return
	}
	gen := c.refGen
	c.k.ScheduleAt(c.nextRefresh, func() {
		if !c.refreshEnabled || gen != c.refGen {
			return
		}
		// Hold the data bus for the full programmed tRFC: no host command
		// can be issued during the refresh cycle (§II-B). The hold also
		// covers the extra window the NVMC uses.
		due := c.nextRefresh
		c.ch.DataBus.Acquire(c.cfg.TRFC, func(start sim.Time) {
			if c.selfRefresh {
				return // the DIMM refreshes itself
			}
			if start.Sub(due) > c.cfg.TREFI {
				c.postponed++
			}
			if c.ch.Trace.Active() {
				c.ch.Trace.Record(trace.Event{
					At: start, Kind: trace.KindRefreshHold,
					End: start.Add(c.cfg.TRFC),
				})
			}
			// DDR4 has no per-bank refresh: precharge all banks first
			// (§III-B), then issue REF.
			c.ch.Issue(bus.HostIMC, ddr4.Command{Kind: ddr4.CmdPrechargeAll})
			c.ch.Issue(bus.HostIMC, ddr4.Command{Kind: ddr4.CmdRefresh})
			c.refreshes++
		})
		// Fixed cadence: the next REF is due tREFI after this one was due,
		// regardless of queueing delay, so the average interval holds.
		c.nextRefresh = c.nextRefresh.Add(c.cfg.TREFI)
		c.scheduleRefresh()
	})
}

// NextRefreshAt reports when the next REF is due and whether the refresh
// engine is running. Idle-warp schedulers use it to identify the one
// pending kernel event on a quiescent member as the refresh closure.
func (c *Controller) NextRefreshAt() (sim.Time, bool) {
	return c.nextRefresh, c.refreshEnabled
}

// InSelfRefresh reports whether the controller has put the DIMM into
// self-refresh.
func (c *Controller) InSelfRefresh() bool { return c.selfRefresh }

// WarpIdleRefreshes credits m uncontended refresh cycles without running
// their events: counters and the cadence advance exactly as if each REF
// had been granted at its due instant on an otherwise idle channel (so
// none count as postponed). The previously queued refresh closure is
// invalidated via the generation counter and a fresh one is scheduled at
// the new cadence position; the stale closure drains as a no-op.
func (c *Controller) WarpIdleRefreshes(m uint64) {
	if m == 0 || !c.refreshEnabled {
		return
	}
	c.refreshes += m
	c.nextRefresh = c.nextRefresh.Add(sim.Duration(m) * c.cfg.TREFI)
	c.refGen++
	c.scheduleRefresh()
}

func (c *Controller) rowSwitches(n int) int {
	// Scale the per-4K estimate by transfer size, minimum one.
	s := (n*c.cfg.RowSwitchesPer4K + 4095) / 4096
	if s < 1 {
		s = 1
	}
	return s
}

// Read fetches len(buf) bytes at addr from the DRAM behind the channel.
// done runs when the data has fully crossed the bus.
func (c *Controller) Read(addr int64, buf []byte, done func()) {
	c.ReadRS(addr, buf, c.rowSwitches(len(buf)), done)
}

// ReadRS is Read with an explicit row-switch charge (chunked op models
// charge the row overhead once per op, not per chunk).
func (c *Controller) ReadRS(addr int64, buf []byte, rowSwitches int, done func()) {
	c.reads++
	c.readBytes += uint64(len(buf))
	c.ch.HostRead(addr, buf, rowSwitches, done)
}

// Write stores data at addr. The write enters the WPQ immediately (the CPU
// considers it posted) and drains to DRAM when the bus transaction is
// granted. done runs when the data is in the DRAM array.
func (c *Controller) Write(addr int64, data []byte, done func()) {
	c.WriteRS(addr, data, c.rowSwitches(len(data)), done)
}

// WriteRS is Write with an explicit row-switch charge.
func (c *Controller) WriteRS(addr int64, data []byte, rowSwitches int, done func()) {
	c.writes++
	c.writeBytes += uint64(len(data))
	owned := make([]byte, len(data))
	copy(owned, data)
	c.wpqSeq++
	id := c.wpqSeq
	c.wpq = append(c.wpq, wpqEntry{id: id, addr: addr, data: owned})
	c.ch.HostWrite(addr, owned, rowSwitches, func() {
		c.unqueue(id)
		if done != nil {
			done()
		}
	})
}

func (c *Controller) unqueue(id uint64) {
	for i := range c.wpq {
		if c.wpq[i].id == id {
			c.wpq = append(c.wpq[:i], c.wpq[i+1:]...)
			c.wpqDrained++
			return
		}
	}
}

// WPQDepth reports posted writes not yet in the DRAM array.
func (c *Controller) WPQDepth() int { return len(c.wpq) }

// ADRFlush models the asynchronous DRAM refresh power-fail flush: all WPQ
// entries are forced into the DRAM array immediately (the platform ensures
// stores in the WPQ reach the media on power failure, §V-C). It returns the
// number of entries flushed.
func (c *Controller) ADRFlush() int {
	n, _ := c.ADRFlushRacing(false)
	return n
}

// ADRFlushRacing models the §V-C caveat: on the PoC, the platform's WPQ
// drain and the FPGA's metadata-driven flush run in PARALLEL, so some WPQ
// stores may reach the DRAM cache only after the FPGA has already read the
// corresponding page — those writes are lost ("the precise persistence
// domain scales down to the DRAM cache, while the WPQ becomes a weak
// persistence domain"). With race=true, every other entry loses the race
// (a deterministic stand-in for the timing-dependent overlap); with
// race=false the drain wins everywhere (the ADR-detection future work).
func (c *Controller) ADRFlushRacing(race bool) (flushed, lost int) {
	for i, e := range c.wpq {
		if race && i%2 == 1 {
			lost++
			continue
		}
		// Direct copy: the ADR domain is powered just long enough for this.
		if err := c.ch.Device().CopyIn(e.addr, e.data); err != nil {
			panic(fmt.Sprintf("imc: ADR flush: %v", err))
		}
		flushed++
	}
	c.wpq = c.wpq[:0]
	c.adrFlushes++
	return flushed, lost
}

// Stats reports operation counters.
func (c *Controller) Stats() (reads, writes, readBytes, writeBytes uint64) {
	return c.reads, c.writes, c.readBytes, c.writeBytes
}

// PostponedRefreshes reports refreshes granted more than one tREFI late.
func (c *Controller) PostponedRefreshes() uint64 { return c.postponed }

// EnterSelfRefresh puts the DIMM into self-refresh (idle power state): the
// controller precharges all banks, issues SRE, and stops issuing REF. In
// this state the NVMC gets no windows — the §IV-A decode distinction between
// REF and SRE is what keeps it off the bus.
func (c *Controller) EnterSelfRefresh() {
	if c.selfRefresh {
		return
	}
	c.selfRefresh = true
	c.ch.DataBus.Acquire(c.cfg.TRFC, func(sim.Time) {
		c.ch.Issue(bus.HostIMC, ddr4.Command{Kind: ddr4.CmdPrechargeAll})
		c.ch.Issue(bus.HostIMC, ddr4.Command{Kind: ddr4.CmdSelfRefreshEntry})
	})
}

// ExitSelfRefresh wakes the DIMM (SRX) and resumes normal refresh.
func (c *Controller) ExitSelfRefresh() {
	if !c.selfRefresh {
		return
	}
	c.ch.DataBus.Acquire(c.cfg.TRFC, func(sim.Time) {
		c.ch.Issue(bus.HostIMC, ddr4.Command{Kind: ddr4.CmdSelfRefreshExit})
		c.selfRefresh = false
	})
}

// RefreshOverhead returns the fraction of bus time consumed by refresh at
// the programmed parameters: tRFC/tREFI.
func (c *Controller) RefreshOverhead() float64 {
	return float64(c.cfg.TRFC) / float64(c.cfg.TREFI)
}
