package server

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nvdimmc/internal/pool"
	"nvdimmc/internal/sim"
)

// TestShutdownTwice: the second drain request must answer 503 with a typed
// body, and Err must report the (clean) verdict after the first.
func TestShutdownTwice(t *testing.T) {
	s, c := newTestServer(t, nil)
	if err := s.Err(); err != nil {
		t.Fatalf("Err before shutdown: %v", err)
	}
	rep, err := c.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Health != "ok" {
		t.Fatalf("health %q", rep.Health)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("Err after clean shutdown: %v", err)
	}
	// Second call: handleShutdown's already-down branch.
	resp, err := c.HTTP.Post(c.Base+"/v1/shutdown", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second shutdown: HTTP %d, want 503", resp.StatusCode)
	}
	if _, err := s.Shutdown(); err == nil {
		t.Fatal("direct second Shutdown did not error")
	}
	// Typed-client error paths against a drained server.
	if _, err := c.Shutdown(); err == nil {
		t.Fatal("client Shutdown against a drained server did not error")
	}
	// Stream still answers, but every op fails typed as draining.
	if _, sum, err := c.Stream([]Op{{Op: "read", Off: 0}}); err != nil {
		t.Fatalf("Stream against a drained server: %v", err)
	} else if sum.Failed != 1 {
		t.Fatalf("stream summary on a drained server: %+v", sum)
	}
}

// TestShutdownDrainBoundWedge: a DrainEpochs cap smaller than the pending
// backlog must surface as a non-ok drain report, a 500 on the endpoint, and
// a non-nil Err — the "wedged" escape hatch instead of an infinite drain.
func TestShutdownDrainBoundWedge(t *testing.T) {
	s, c := newTestServer(t, func(cfg *Config) {
		p := testPoolCfg(1)
		// Writes ack only after the NAND program lands, and each program
		// takes ten sim-seconds: an uncached write is pinned in flight for
		// millions of epochs, so the drain bound trips deterministically.
		p.Member.NVMC.AckAfterProgram = true
		p.Member.NAND.ProgramLatency = 10 * sim.Second
		cfg.Pool = p
		cfg.DrainEpochs = 1
	})
	// Keep write-through writes in flight so the pool cannot be quiesced
	// when the 1-epoch drain bound is applied.
	join := startWedgeFeeder(t, s)
	rep, err := s.Shutdown()
	join()
	if err == nil || rep.Health == "ok" {
		t.Fatalf("drain under a 1-epoch cap did not wedge: health %q err %v", rep.Health, err)
	}
	if rep.Stats.Backlog == 0 {
		t.Fatalf("wedged drain report shows no backlog: %+v", rep.Stats)
	}
	if s.Err() == nil {
		t.Fatal("Err is nil after a wedged drain")
	}
	// The healthz endpoint reports unhealthy once the wedged drain landed.
	if err := c.Healthz(); err == nil {
		t.Fatal("healthz after wedged drain reported healthy")
	}
}

// TestShutdownEndpointReportsBadHealth: the HTTP route for the wedged drain
// must answer 500 and still carry the full report body.
func TestShutdownEndpointReportsBadHealth(t *testing.T) {
	s, c := newTestServer(t, func(cfg *Config) {
		p := testPoolCfg(1)
		// Same immortal-write setup as TestShutdownDrainBoundWedge.
		p.Member.NVMC.AckAfterProgram = true
		p.Member.NAND.ProgramLatency = 10 * sim.Second
		cfg.Pool = p
		cfg.DrainEpochs = 1
	})
	// The feeder keeps write-through writes in flight across the POST's
	// round trip, so the pool cannot be quiesced when the 1-epoch drain
	// bound is applied.
	join := startWedgeFeeder(t, s)
	resp, err := c.HTTP.Post(c.Base+"/v1/shutdown", "application/json", nil)
	join()
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("wedged shutdown: HTTP %d, want 500", resp.StatusCode)
	}
}

// startWedgeFeeder keeps overlapping write-through writes in flight on the
// sim loop — each is 1024 fragments, far larger than the 256-page DRAM
// cache, so every one is thousands of epochs of pending NAND programs and
// the pool never quiesces while the feeder runs. The feeder stops at the
// first draining refusal; the returned join waits for it to exit.
func startWedgeFeeder(t *testing.T, s *Server) (join func()) {
	t.Helper()
	feed := func() (ok, draining bool) {
		req, err := s.parseOp(Op{Op: "write", Off: 0, Len: 1024 * 4096})
		if err != nil {
			t.Errorf("feeder parseOp: %v", err)
			return false, false
		}
		ack := make(chan subResult, 1)
		if !s.offer(&submission{req: req, resp: ack}) {
			return false, true
		}
		select {
		case res := <-ack:
			if res.err != nil {
				// Draining refusals end the feeder; transient admission
				// errors (backpressure) just mean the pool is already busy.
				return false, errors.Is(res.err, errDraining)
			}
			return true, false
		case <-s.done:
			return false, true
		}
	}
	// The first write must be admitted before the caller initiates the
	// drain, or the shutdown can win the race against an empty pool.
	if ok, _ := feed(); !ok {
		t.Fatal("feeder could not admit the first write")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, draining := feed(); draining {
				return
			}
		}
	}()
	return func() { <-done }
}

// fakeStats serves a fixed /v1/stats body so client-side branches can be
// driven deterministically regardless of sim speed.
func fakeStats(t *testing.T, st Stats) *Client {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, st)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return &Client{Base: ts.URL, HTTP: ts.Client()}
}

// TestWaitQuiescedTimeout: a service that never quiesces must time out with
// the backlog in the error, and a service that is quiesced returns at once.
func TestWaitQuiescedTimeout(t *testing.T) {
	busy := fakeStats(t, Stats{Submitted: 10, Terminal: 4, Backlog: 6})
	if _, err := busy.WaitQuiesced(5 * time.Millisecond); err == nil {
		t.Fatal("no timeout against a never-quiescing service")
	} else if !strings.Contains(err.Error(), "not quiesced") {
		t.Fatalf("timeout error %q", err)
	}
	idle := fakeStats(t, Stats{Submitted: 10, Terminal: 10})
	if _, err := idle.WaitQuiesced(time.Second); err != nil {
		t.Fatalf("quiesced service: %v", err)
	}
	// Transport error branch: nothing listening on the base URL.
	dead := &Client{Base: "http://127.0.0.1:1"}
	if _, err := dead.WaitQuiesced(time.Millisecond); err == nil {
		t.Fatal("no error against a dead service")
	}
}

// TestLoadGenAllKnobs drives the generator with every option engaged —
// deadlines, multiple tenants, stream and sync mixes, explicit footprint
// and block size — against a shedding pool, and still demands a clean
// conservation ledger.
func TestLoadGenAllKnobs(t *testing.T) {
	_, c := newTestServer(t, func(cfg *Config) {
		p := testPoolCfg(2)
		p.Admission = pool.AdmitDeadlineAware
		p.PendingCap = 32
		cfg.Pool = p
	})
	rep, err := LoadGen(LoadConfig{
		Base:        c.Base,
		Clients:     8,
		Ops:         12,
		WritePct:    40,
		Footprint:   1 << 20,
		BlockSize:   4096,
		Tenants:     3,
		DeadlineUS:  1500,
		WaitEvery:   2,
		StreamEvery: 3,
		Seed:        99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("conservation violations:\n  %s", strings.Join(rep.Violations, "\n  "))
	}
	if rep.Sent != 8*12 {
		t.Fatalf("sent %d of %d", rep.Sent, 8*12)
	}
	if rep.Final.Submitted != uint64(rep.Sent) {
		t.Fatalf("server submitted %d for %d sent", rep.Final.Submitted, rep.Sent)
	}
}

// TestLoadGenUnreachable: mechanical failure (no service) is an error, not
// a violations list.
func TestLoadGenUnreachable(t *testing.T) {
	if _, err := LoadGen(LoadConfig{Base: "http://127.0.0.1:1", Clients: 1, Ops: 1}); err == nil {
		t.Fatal("LoadGen against a dead address did not error")
	}
}

// TestHandlerValidation: malformed inputs answer 400 with a typed body on
// every mutating endpoint, and poll's max parameter is validated.
func TestHandlerValidation(t *testing.T) {
	_, c := newTestServer(t, nil)
	for _, tc := range []struct {
		name, path, body string
	}{
		{"submit bad json", "/v1/submit", "{"},
		{"stream bad json", "/v1/stream", "{\"op\":\"read\"}\n{"},
		{"submit bad verb", "/v1/submit", `{"op":"erase","off":0}`},
		{"submit negative off", "/v1/submit", `{"op":"read","off":-4096}`},
		{"submit past capacity", "/v1/submit", fmt.Sprintf(`{"op":"read","off":%d}`, int64(1)<<60)},
		{"submit bad tenant", "/v1/submit", `{"op":"read","off":0,"tenant":-1}`},
		{"submit bad deadline", "/v1/submit", `{"op":"read","off":0,"deadline_us":-1}`},
	} {
		resp, err := c.HTTP.Post(c.Base+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: HTTP %d, want 400", tc.name, resp.StatusCode)
		}
	}
	resp, err := c.HTTP.Get(c.Base + "/v1/poll?max=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("poll bad max: HTTP %d, want 400", resp.StatusCode)
	}
	// Wrong method on a POST-only route: the method-pattern mux answers 405.
	resp, err = c.HTTP.Get(c.Base + "/v1/submit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/submit: HTTP %d, want 405", resp.StatusCode)
	}
}

// TestClientTransportErrors: every client verb must surface a transport
// failure as an error, not a zero-value success.
func TestClientTransportErrors(t *testing.T) {
	dead := &Client{Base: "http://127.0.0.1:1"}
	if _, _, err := dead.Stream([]Op{{Op: "read"}}); err == nil {
		t.Fatal("Stream against a dead address did not error")
	}
	if _, _, err := dead.Submit(Op{Op: "read"}, true); err == nil {
		t.Fatal("Submit against a dead address did not error")
	}
	if err := dead.Healthz(); err == nil {
		t.Fatal("Healthz against a dead address did not error")
	}
	if _, err := dead.Poll(0); err == nil {
		t.Fatal("Poll against a dead address did not error")
	}
	if _, err := dead.Shutdown(); err == nil {
		t.Fatal("Shutdown against a dead address did not error")
	}
	if _, err := dead.Stats(); err == nil {
		t.Fatal("Stats against a dead address did not error")
	}
}
