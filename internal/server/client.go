// client.go is the service's bundled client: a thin typed wrapper over the
// HTTP endpoints and a concurrent load generator that drives N clients at
// the service and cross-checks the conservation equation end to end — every
// op it sent must be accounted for in the server's terminal counters, and
// every async admit must come back exactly once through the poll ring.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"nvdimmc/internal/sim"
)

// RetryPolicy bounds automatic resubmission of refused Submits. Only 429
// (throttled) and 503 (shed / draining) are retried — both mean "the plane
// refused this op right now", the only refusals where trying again can
// succeed. Backoff is exponential from Base to Cap with seeded jitter, and
// the whole retry loop stays inside Budget — further capped by the op's own
// DeadlineUS, so a deadline-carrying op fails fast instead of retrying past
// the point where the server would expire it anyway.
type RetryPolicy struct {
	// Max is the retry attempt count after the first try (0 disables retry).
	Max int
	// Base is the first backoff step (default 2ms).
	Base time.Duration
	// Cap is the backoff ceiling (default 64ms).
	Cap time.Duration
	// Budget is the wall-clock allowance for the whole Submit including
	// backoff sleeps (default 250ms).
	Budget time.Duration
	// Seed drives the jitter RNG (default 1) — seeded so test runs are
	// reproducible.
	Seed uint64
}

// backoff returns the jittered exponential delay before retry `attempt`
// (1-based): half the step deterministic, half uniformly jittered by jit.
func (p *RetryPolicy) backoff(jit uint64, attempt int) time.Duration {
	base, cap := p.Base, p.Cap
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	if cap <= 0 {
		cap = 64 * time.Millisecond
	}
	d := base << (attempt - 1)
	if d > cap || d <= 0 {
		d = cap
	}
	return d/2 + time.Duration(jit%uint64(d/2+1))
}

// Client is a typed HTTP client for one service instance.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:8383".
	Base string
	// HTTP is the transport (default http.DefaultClient).
	HTTP *http.Client
	// Retry, when set with Max > 0, resubmits throttled/shed Submits with
	// bounded jittered backoff. Nil keeps the historical fail-fast behavior.
	Retry *RetryPolicy

	retryMu  sync.Mutex
	retryRNG *sim.Rand
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) post(path string, body any, out any) (int, error) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return 0, err
		}
	}
	resp, err := c.http().Post(c.Base+path, "application/json", &buf)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("%s: decode: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

func (c *Client) get(path string, out any) (int, error) {
	resp, err := c.http().Get(c.Base + path)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("%s: decode: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// Submit posts one op. The Result carries the admit/terminal status; the
// int is the HTTP status code (202 async accept, 200 sync complete, 429
// throttled, 503 shed, 504 expired, 500 failed, 400 invalid).
func (c *Client) Submit(op Op, wait bool) (Result, int, error) {
	path := "/v1/submit"
	if wait {
		path += "?wait=1"
	}
	var res Result
	code, err := c.post(path, op, &res)
	p := c.Retry
	if p == nil || p.Max <= 0 || err != nil || !retryable(code) {
		return res, code, err
	}
	start := time.Now()
	budget := p.Budget
	if budget <= 0 {
		budget = 250 * time.Millisecond
	}
	if op.DeadlineUS > 0 {
		if d := time.Duration(op.DeadlineUS * float64(time.Microsecond)); d < budget {
			budget = d
		}
	}
	for attempt := 1; attempt <= p.Max; attempt++ {
		delay := p.backoff(c.retryJitter(), attempt)
		if time.Since(start)+delay > budget {
			break
		}
		time.Sleep(delay)
		res = Result{}
		code, err = c.post(path, op, &res)
		if err != nil || !retryable(code) {
			break
		}
	}
	return res, code, err
}

// retryable: refusals where a later attempt can succeed. 504/500/400 are
// final for this op; 429/503 only describe the plane's current load.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// retryJitter draws the next jitter word; locked, since one Client may be
// shared by concurrent submitters.
func (c *Client) retryJitter() uint64 {
	c.retryMu.Lock()
	defer c.retryMu.Unlock()
	if c.retryRNG == nil {
		seed := c.Retry.Seed
		if seed == 0 {
			seed = 1
		}
		c.retryRNG = sim.NewRand(seed)
	}
	return c.retryRNG.Uint64()
}

// Stream posts a batch of ops and decodes the full JSON-lines response:
// per-op Results in completion order plus the final summary.
func (c *Client) Stream(ops []Op) ([]Result, StreamSummary, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, op := range ops {
		if err := enc.Encode(op); err != nil {
			return nil, StreamSummary{}, err
		}
	}
	resp, err := c.http().Post(c.Base+"/v1/stream", "application/json", &buf)
	if err != nil {
		return nil, StreamSummary{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		return nil, StreamSummary{}, fmt.Errorf("stream: HTTP %d: %s", resp.StatusCode, eb.Error)
	}
	dec := json.NewDecoder(resp.Body)
	var results []Result
	var sum StreamSummary
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			return results, sum, fmt.Errorf("stream: decode line: %w", err)
		}
		var probe struct {
			Summary bool `json:"summary"`
		}
		if json.Unmarshal(raw, &probe) == nil && probe.Summary {
			if err := json.Unmarshal(raw, &sum); err != nil {
				return results, sum, err
			}
			continue
		}
		var res Result
		if err := json.Unmarshal(raw, &res); err != nil {
			return results, sum, err
		}
		results = append(results, res)
	}
	return results, sum, nil
}

// Poll drains up to max (0: all) buffered async completions.
func (c *Client) Poll(max int) ([]Result, error) {
	path := "/v1/poll"
	if max > 0 {
		path = fmt.Sprintf("%s?max=%d", path, max)
	}
	resp, err := c.http().Get(c.Base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("poll: HTTP %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var out []Result
	for {
		var res Result
		if err := dec.Decode(&res); err == io.EOF {
			break
		} else if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// Stats fetches /v1/stats.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	code, err := c.get("/v1/stats", &st)
	if err != nil {
		return st, err
	}
	if code != http.StatusOK {
		return st, fmt.Errorf("stats: HTTP %d", code)
	}
	return st, nil
}

// Healthz returns nil while the service accepts submissions.
func (c *Client) Healthz() error {
	code, err := c.get("/v1/healthz", nil)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", code)
	}
	return nil
}

// Shutdown drains the service and returns its final report.
func (c *Client) Shutdown() (DrainReport, error) {
	var rep DrainReport
	code, err := c.post("/v1/shutdown", nil, &rep)
	if err != nil {
		return rep, err
	}
	if code != http.StatusOK {
		return rep, fmt.Errorf("shutdown: HTTP %d, health %q", code, rep.Health)
	}
	return rep, nil
}

// WaitQuiesced polls /v1/stats until every submission has a terminal
// outcome and the backlog is empty, or the wall-clock timeout passes.
func (c *Client) WaitQuiesced(timeout time.Duration) (Stats, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Stats()
		if err != nil {
			return st, err
		}
		if st.Terminal == st.Submitted && st.Backlog == 0 {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("service not quiesced after %v: %d/%d terminal, backlog %d",
				timeout, st.Terminal, st.Submitted, st.Backlog)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// LoadConfig shapes one generated load: Clients concurrent connections,
// each issuing Ops operations against a shared footprint.
type LoadConfig struct {
	// Base is the service root URL.
	Base string
	// Clients is the concurrent client count (default 32).
	Clients int
	// Ops per client (default 64).
	Ops int
	// WritePct is the write fraction in percent (default 50).
	WritePct int
	// Footprint bounds generated offsets (default: the service capacity,
	// fetched from /v1/stats).
	Footprint int64
	// BlockSize is the op size in bytes (default one page).
	BlockSize int
	// Tenants spreads clients round-robin over this many tenant IDs
	// (default 1).
	Tenants int
	// DeadlineUS attaches a relative deadline to every op; 0 means none.
	DeadlineUS float64
	// WaitEvery makes every Nth op a sync wait (0: all async).
	WaitEvery int
	// StreamEvery routes every Nth client's whole batch through /v1/stream
	// (0: none).
	StreamEvery int
	// Seed derives every client's op stream (default 1).
	Seed uint64
}

// LoadReport is what the generator observed, cross-checked against the
// server's own accounting. Violations lists every conservation breach; a
// clean run has none.
type LoadReport struct {
	// Sent counts ops that reached Submit (got an ID back); Invalid counts
	// client-side 400s (never submitted); HTTPErrors counts transport
	// failures (unaccountable — they fail the run).
	Sent       int
	Invalid    int
	HTTPErrors int
	// Accepted counts async admits (202); the rest are sync outcomes as
	// the client saw them.
	Accepted  int
	Completed int
	Shed      int
	Expired   int
	Failed    int
	Throttled int
	// Polled counts async completions drained via /v1/poll after quiesce.
	Polled int
	// Final is the server's post-quiesce stats snapshot.
	Final Stats
	// Violations: conservation breaches, empty on a clean run.
	Violations []string
}

// LoadGen drives the configured load and verifies conservation end to end.
// The returned error covers mechanical failure (service unreachable, never
// quiesced); accounting breaches land in Report.Violations so callers can
// distinguish "could not test" from "tested and failed".
func LoadGen(cfg LoadConfig) (LoadReport, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 32
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 64
	}
	if cfg.WritePct == 0 {
		cfg.WritePct = 50
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 4096
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	c := &Client{Base: cfg.Base}
	if cfg.Footprint <= 0 {
		st, err := c.Stats()
		if err != nil {
			return LoadReport{}, fmt.Errorf("loadgen: fetch capacity: %w", err)
		}
		cfg.Footprint = st.Capacity
	}
	blocks := cfg.Footprint / int64(cfg.BlockSize)
	if blocks <= 0 {
		return LoadReport{}, fmt.Errorf("loadgen: footprint %d below block size %d", cfg.Footprint, cfg.BlockSize)
	}

	var sent, invalid, httpErrs, accepted atomic.Int64
	var completed, shed, expired, failed, throttled atomic.Int64
	count := func(status string, id uint64) {
		if id != 0 {
			sent.Add(1)
		}
		switch status {
		case "accepted":
			accepted.Add(1)
		case "completed":
			completed.Add(1)
		case "shed":
			shed.Add(1)
		case "expired":
			expired.Add(1)
		case "throttled":
			throttled.Add(1)
		case "failed":
			failed.Add(1)
		}
	}

	var wg sync.WaitGroup
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl := &Client{Base: cfg.Base}
			rng := sim.NewRand(sim.SplitSeed(cfg.Seed, fmt.Sprintf("loadgen/%d", ci)))
			genOp := func(i int) Op {
				op := Op{
					Off:        int64(rng.Uint64()%uint64(blocks)) * int64(cfg.BlockSize),
					Len:        cfg.BlockSize,
					Tenant:     ci % cfg.Tenants,
					DeadlineUS: cfg.DeadlineUS,
					Seq:        ci*cfg.Ops + i + 1,
				}
				if int(rng.Uint64()%100) < cfg.WritePct {
					op.Op = "w"
				} else {
					op.Op = "r"
				}
				return op
			}
			if cfg.StreamEvery > 0 && (ci+1)%cfg.StreamEvery == 0 {
				ops := make([]Op, cfg.Ops)
				for i := range ops {
					ops[i] = genOp(i)
				}
				results, sum, err := cl.Stream(ops)
				if err != nil {
					httpErrs.Add(1)
					return
				}
				invalid.Add(int64(sum.Invalid))
				for _, res := range results {
					count(res.Status, res.ID)
				}
				return
			}
			for i := 0; i < cfg.Ops; i++ {
				wait := cfg.WaitEvery > 0 && (i+1)%cfg.WaitEvery == 0
				res, code, err := cl.Submit(genOp(i), wait)
				if err != nil {
					httpErrs.Add(1)
					continue
				}
				if code == http.StatusBadRequest {
					invalid.Add(1)
					continue
				}
				count(res.Status, res.ID)
			}
		}(ci)
	}
	wg.Wait()

	rep := LoadReport{
		Sent:       int(sent.Load()),
		Invalid:    int(invalid.Load()),
		HTTPErrors: int(httpErrs.Load()),
		Accepted:   int(accepted.Load()),
		Completed:  int(completed.Load()),
		Shed:       int(shed.Load()),
		Expired:    int(expired.Load()),
		Failed:     int(failed.Load()),
		Throttled:  int(throttled.Load()),
	}

	// Quiesce, then drain the poll ring: every async admit must come back
	// exactly once (or be an accounted ring drop).
	st, err := c.WaitQuiesced(30 * time.Second)
	if err != nil {
		return rep, err
	}
	for {
		recs, err := c.Poll(0)
		if err != nil {
			return rep, fmt.Errorf("loadgen: drain poll ring: %w", err)
		}
		if len(recs) == 0 {
			break
		}
		rep.Polled += len(recs)
	}
	st, err = c.Stats()
	if err != nil {
		return rep, err
	}
	rep.Final = st

	bad := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}
	if rep.HTTPErrors > 0 {
		bad("%d transport errors: ops unaccountable", rep.HTTPErrors)
	}
	// Every op that got an ID is in the server's submitted count — and
	// nothing else is (this generator owns the service).
	if uint64(rep.Sent) != st.Submitted {
		bad("sent %d ops with IDs but server submitted %d", rep.Sent, st.Submitted)
	}
	if st.Terminal != st.Submitted {
		bad("conservation: terminal %d != submitted %d", st.Terminal, st.Submitted)
	}
	if got := st.Completed + st.Failed + st.Shed + st.Expired + st.Throttled; got != st.Terminal {
		bad("terminal sum %d != reported terminal %d", got, st.Terminal)
	}
	wsum := st.WritesAcked + st.WritesFailed + st.WritesShed + st.WritesExpired + st.WritesThrottled
	if wsum != st.WritesIn {
		bad("acked-write loss: %d writes in, %d accounted", st.WritesIn, wsum)
	}
	// Async conservation: each 202 produces exactly one ring record.
	if got := uint64(rep.Polled) + st.PollDropped; got != uint64(rep.Accepted) {
		bad("async: %d accepted but %d polled + %d dropped", rep.Accepted, rep.Polled, st.PollDropped)
	}
	// Sync outcomes the clients saw can never exceed the server's counts.
	if uint64(rep.Throttled) != st.Throttled {
		bad("throttled: clients saw %d, server counted %d", rep.Throttled, st.Throttled)
	}
	if uint64(rep.Shed) > st.Shed {
		bad("shed: clients saw %d sync sheds, server counted %d", rep.Shed, st.Shed)
	}
	return rep, nil
}
