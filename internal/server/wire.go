// wire.go is the service's JSON wire layer: request/response shapes for
// every endpoint and the mapping from the plane's typed errors and terminal
// outcomes to HTTP status codes. Everything here is stdlib encoding/json;
// multi-record responses are JSON lines (one object per line) so both sides
// can stream without buffering a run's worth of completions.
package server

import (
	"errors"
	"net/http"

	"nvdimmc/internal/pool"
	"nvdimmc/internal/sim"
)

// Op is one submitted operation — the wire form of openloop.Request minus
// the arrival, which the server stamps at the epoch boundary that admits it.
type Op struct {
	// Op is "read"/"r" (default) or "write"/"w".
	Op string `json:"op,omitempty"`
	// Off is the byte offset into the pool's logical space.
	Off int64 `json:"off"`
	// Len is the transfer size in bytes (default: one 4 KB page).
	Len int `json:"len,omitempty"`
	// Tenant is the QoS tenant index (default 0).
	Tenant int `json:"tenant,omitempty"`
	// DeadlineUS is a relative deadline in microseconds of simulated time
	// (fractional for sub-microsecond budgets); zero means none.
	DeadlineUS float64 `json:"deadline_us,omitempty"`
	// Seq is a caller-chosen correlation tag echoed on the op's Result —
	// stream responses arrive in completion order, not submission order.
	Seq int `json:"seq,omitempty"`
}

// Result is one per-op response line, from /v1/submit, /v1/stream and
// /v1/poll alike. Status is "accepted" for an async admit; otherwise it is
// the terminal outcome ("completed", "shed", "expired", "failed",
// "throttled") with the plane's typed error chain in Error.
type Result struct {
	ID        uint64  `json:"id"`
	Seq       int     `json:"seq,omitempty"`
	Status    string  `json:"status"`
	Error     string  `json:"error,omitempty"`
	Tenant    int     `json:"tenant,omitempty"`
	Write     bool    `json:"write,omitempty"`
	LatencyUS float64 `json:"latency_us,omitempty"`
	Late      bool    `json:"late,omitempty"`
}

// StreamSummary is the final line of a /v1/stream response: the batch's
// conservation equation as the server retired it.
type StreamSummary struct {
	Summary   bool `json:"summary"`
	Ops       int  `json:"ops"`
	Invalid   int  `json:"invalid"`
	Completed int  `json:"completed"`
	Shed      int  `json:"shed"`
	Expired   int  `json:"expired"`
	Failed    int  `json:"failed"`
	Throttled int  `json:"throttled"`
}

// ChannelState is one channel's occupancy snapshot inside Stats.
type ChannelState struct {
	Held     int    `json:"held"`
	Queued   int    `json:"queued"`
	InFlight int    `json:"in_flight"`
	Breaker  string `json:"breaker"`
}

// Stats is the /v1/stats body: the pool's conservation counters plus the
// service's own accounting (poll ring occupancy, drops, drain state).
// Terminal == Submitted with Backlog == 0 means the plane is quiesced —
// clients use that to detect that every async submission has retired.
type Stats struct {
	Submitted     uint64 `json:"submitted"`
	Completed     uint64 `json:"completed"`
	Failed        uint64 `json:"failed"`
	Shed          uint64 `json:"shed"`
	Expired       uint64 `json:"expired"`
	Throttled     uint64 `json:"throttled"`
	Terminal      uint64 `json:"terminal"`
	CompletedLate uint64 `json:"completed_late"`

	WritesIn        uint64 `json:"writes_in"`
	WritesAcked     uint64 `json:"writes_acked"`
	WritesFailed    uint64 `json:"writes_failed"`
	WritesShed      uint64 `json:"writes_shed"`
	WritesExpired   uint64 `json:"writes_expired"`
	WritesThrottled uint64 `json:"writes_throttled"`

	LatMeanUS float64 `json:"lat_mean_us"`
	LatP50US  float64 `json:"lat_p50_us"`
	LatP99US  float64 `json:"lat_p99_us"`

	Epochs   int   `json:"epochs"`
	SimUS    float64 `json:"sim_us"`
	Backlog  int   `json:"backlog"`
	Capacity int64 `json:"capacity"`

	PollBuffered int    `json:"poll_buffered"`
	PollDropped  uint64 `json:"poll_dropped"`
	Captured     int    `json:"captured,omitempty"`
	Draining     bool   `json:"draining,omitempty"`

	Channels []ChannelState `json:"channels"`
}

// DrainReport is the /v1/shutdown body: the final stats after the plane
// drained, plus the pool's own conservation audit ("ok" or the CheckHealth
// error text).
type DrainReport struct {
	Stats  Stats  `json:"stats"`
	Health string `json:"health"`
}

// errorBody is the JSON shape of every non-Result error response.
type errorBody struct {
	Error string `json:"error"`
}

// errStatus maps a synchronous Submit refusal to its HTTP status: the
// request never entered the plane asynchronously, but throttles and sheds
// are still terminal outcomes in the conservation equation.
func errStatus(err error) int {
	switch {
	case errors.Is(err, pool.ErrTenantThrottled):
		return http.StatusTooManyRequests // 429
	case errors.Is(err, pool.ErrAdmissionFull):
		return http.StatusServiceUnavailable // 503
	case errors.Is(err, pool.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout // 504
	}
	return http.StatusInternalServerError // 500
}

// errResult is the Result line for a synchronous Submit refusal.
func errResult(id uint64, seq int, err error) Result {
	status := "failed"
	switch {
	case errors.Is(err, pool.ErrTenantThrottled):
		status = "throttled"
	case errors.Is(err, pool.ErrAdmissionFull):
		status = "shed"
	case errors.Is(err, pool.ErrDeadlineExceeded):
		status = "expired"
	}
	return Result{ID: id, Seq: seq, Status: status, Error: err.Error()}
}

// outcomeStatus maps a terminal Completion (a sync-wait submit's response)
// to its HTTP status.
func outcomeStatus(o pool.Outcome) int {
	switch o {
	case pool.OutcomeCompleted:
		return http.StatusOK // 200
	case pool.OutcomeThrottled:
		return http.StatusTooManyRequests // 429
	case pool.OutcomeShed:
		return http.StatusServiceUnavailable // 503
	case pool.OutcomeExpired:
		return http.StatusGatewayTimeout // 504
	}
	return http.StatusInternalServerError // 500
}

// resultOf renders a terminal Completion as a wire Result.
func resultOf(c pool.Completion, seq int) Result {
	r := Result{
		ID:        c.ID,
		Seq:       seq,
		Status:    c.Outcome.String(),
		Tenant:    c.Tenant,
		Write:     c.Write,
		LatencyUS: float64(c.Latency) / float64(sim.Microsecond),
		Late:      c.Late,
	}
	if c.Err != nil {
		r.Error = c.Err.Error()
	}
	return r
}
