// Package server exposes a pool's async request plane (pool/plane.go) as a
// network service: a stdlib HTTP/JSON front-end with submit, stream, poll,
// stats, healthz and shutdown endpoints, plus a concurrent load-generator
// client (client.go) that cross-checks the conservation equation end to end.
//
// Concurrency model. The plane is single-threaded by contract — Submit and
// Step only at epoch boundaries — so one sim-loop goroutine owns the pool
// outright. HTTP handlers never touch it: they hand submissions and control
// closures to the loop over channels and wait for the reply. The loop
// blocks when the plane is quiesced and nothing is queued, admits whatever
// arrived at the current boundary, then Steps; completions come back
// through the pool's Notify hook (still inside the loop goroutine) and are
// routed either to the sync waiter parked on that request ID or into a
// bounded poll ring for async callers. Simulated time therefore advances
// only while there is work, as fast as the host allows — this is a
// simulation service, not a real-time one; latencies in responses are
// simulated time.
//
// Determinism boundary. Admission instants depend on wall-clock
// interleaving of real HTTP clients, so two service runs are not
// byte-identical — but a Capture hook records the offered stream with its
// admitted arrivals, and replaying that trace (internal/replay) reproduces
// the run exactly.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"

	"nvdimmc/internal/pool"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/workload/openloop"
)

// errDraining refuses submissions once shutdown has begun.
var errDraining = errors.New("server: draining, no new submissions")

// Config configures a Server.
type Config struct {
	// Pool configures the owned pool. Notify must be nil — the server
	// installs its own completion router.
	Pool pool.Config
	// Capture, when non-nil, observes every offered request (arrival
	// already stamped) before it is submitted — including ones the plane
	// then sheds or throttles, so a replay reproduces those outcomes too.
	// It is called from the sim-loop goroutine only; a replay.Recorder's
	// Record method is the intended sink.
	Capture func(openloop.Request)
	// PollBuf bounds the async completion ring (default 65536). When full,
	// the oldest record is dropped and counted in Stats.PollDropped, so a
	// slow poller degrades observability, never the plane.
	PollBuf int
	// DrainEpochs bounds the shutdown drain, counted from the drain's
	// start (default 1<<22 epochs), so a wedged plane fails the drain
	// loudly instead of hanging shutdown.
	DrainEpochs int
}

// submission is one op handed from a handler to the sim loop.
type submission struct {
	req  openloop.Request
	seq  int
	wait bool
	// resp receives exactly one subResult per submission; it must have
	// capacity for every outstanding submission sharing it (stream
	// handlers fan many submissions into one channel) so the sim loop
	// never blocks sending.
	resp chan subResult
}

// subResult is the loop's answer: a synchronous typed refusal (err), an
// async admit (id only), or the terminal record (comp) for a sync wait.
type subResult struct {
	id   uint64
	seq  int
	err  error
	comp *pool.Completion
}

// Server owns a pool and serves its request plane over HTTP.
type Server struct {
	cfg      Config
	p        *pool.Pool
	capacity int64

	subs    chan *submission
	ctl     chan func()
	stopReq chan struct{} // closed by the shutdown closure, on the loop
	done    chan struct{} // closed when the loop exits

	draining atomic.Bool

	// Loop-owned state: touched only by the sim-loop goroutine (admit,
	// onCompletion and ctl closures all execute there).
	waiters     map[uint64]*submission
	ring        []pool.Completion
	ringDropped uint64
	captured    int
	healthErr   error
}

// New constructs the pool and starts the sim loop. The caller must
// eventually Shutdown to stop it.
func New(cfg Config) (*Server, error) {
	if cfg.Pool.Notify != nil {
		return nil, fmt.Errorf("server: Config.Pool.Notify is owned by the server")
	}
	if cfg.PollBuf <= 0 {
		cfg.PollBuf = 65536
	}
	if cfg.DrainEpochs <= 0 {
		cfg.DrainEpochs = 1 << 22
	}
	s := &Server{
		cfg:     cfg,
		subs:    make(chan *submission, 256),
		ctl:     make(chan func()),
		stopReq: make(chan struct{}),
		done:    make(chan struct{}),
		waiters: make(map[uint64]*submission),
	}
	cfg.Pool.Notify = s.onCompletion
	p, err := pool.New(cfg.Pool)
	if err != nil {
		return nil, err
	}
	s.p = p
	s.capacity = p.Capacity()
	go s.loop()
	return s, nil
}

// Done is closed once the sim loop has exited (after Shutdown).
func (s *Server) Done() <-chan struct{} { return s.done }

// stopped reports whether the shutdown closure has run.
func (s *Server) stopped() bool {
	select {
	case <-s.stopReq:
		return true
	default:
		return false
	}
}

// loop is the sim-loop goroutine: the only code that touches the pool.
func (s *Server) loop() {
	defer close(s.done)
	for {
		// Idle: block until work arrives. A control closure may not create
		// plane work (stats, poll), so re-check before stepping.
		if s.p.Quiesced() {
			select {
			case sub := <-s.subs:
				s.admit(sub)
			case fn := <-s.ctl:
				fn()
				if s.stopped() {
					return
				}
				continue
			}
		}
		// Busy: gather everything already queued at this boundary without
		// blocking, then advance one epoch.
		for gathering := true; gathering; {
			select {
			case sub := <-s.subs:
				s.admit(sub)
			case fn := <-s.ctl:
				fn()
				if s.stopped() {
					return
				}
			default:
				gathering = false
			}
		}
		if !s.p.Quiesced() {
			s.p.Step()
		}
	}
}

// admit stamps the arrival at the current boundary, captures, and submits.
func (s *Server) admit(sub *submission) {
	if s.draining.Load() {
		sub.resp <- subResult{seq: sub.seq, err: errDraining}
		return
	}
	r := sub.req
	r.Arrival = s.p.Now().Sub(s.p.Origin())
	if s.cfg.Capture != nil {
		s.cfg.Capture(r)
		s.captured++
	}
	id, err := s.p.Submit(r)
	if err != nil {
		sub.resp <- subResult{id: id, seq: sub.seq, err: err}
		return
	}
	if sub.wait {
		s.waiters[id] = sub
		return
	}
	sub.resp <- subResult{id: id, seq: sub.seq}
}

// onCompletion routes one terminal record: to the sync waiter parked on its
// ID, else into the poll ring (dropping the oldest when full). Runs inside
// Step, on the sim-loop goroutine.
func (s *Server) onCompletion(c pool.Completion) {
	if sub, ok := s.waiters[c.ID]; ok {
		delete(s.waiters, c.ID)
		cc := c
		sub.resp <- subResult{id: c.ID, seq: sub.seq, comp: &cc}
		return
	}
	if len(s.ring) >= s.cfg.PollBuf {
		drop := len(s.ring) - s.cfg.PollBuf + 1
		s.ring = s.ring[:copy(s.ring, s.ring[drop:])]
		s.ringDropped += uint64(drop)
	}
	s.ring = append(s.ring, c)
}

// call runs fn on the sim-loop goroutine and waits for it. It returns false
// when the loop has already exited (fn did not run).
func (s *Server) call(fn func()) bool {
	ran := make(chan struct{})
	select {
	case s.ctl <- func() { fn(); close(ran) }:
	case <-s.done:
		return false
	}
	select {
	case <-ran:
		return true
	case <-s.done:
		// The loop exits right after the shutdown closure: ran and done
		// close back to back, and a late waker sees both ready. fn ran iff
		// ran is closed — never report a completed closure as missed.
		select {
		case <-ran:
			return true
		default:
			return false
		}
	}
}

// statsLocked builds the wire Stats; sim-loop goroutine only.
func (s *Server) statsLocked() Stats {
	ps := s.p.Stats()
	us := 1 / float64(sim.Microsecond)
	st := Stats{
		Submitted:     ps.Submitted,
		Completed:     ps.Completed,
		Failed:        ps.Failed,
		Shed:          ps.Shed,
		Expired:       ps.Expired,
		Throttled:     ps.Throttled,
		Terminal:      ps.Completed + ps.Failed + ps.Shed + ps.Expired + ps.Throttled,
		CompletedLate: ps.CompletedLate,

		WritesIn:        ps.WritesIn,
		WritesAcked:     ps.WritesAcked,
		WritesFailed:    ps.WritesFailed,
		WritesShed:      ps.WritesShed,
		WritesExpired:   ps.WritesExpired,
		WritesThrottled: ps.WritesThrottled,

		LatMeanUS: float64(ps.Lat.Mean()) * us,
		LatP50US:  float64(ps.Lat.Percentile(50)) * us,
		LatP99US:  float64(ps.Lat.Percentile(99)) * us,

		Epochs:   ps.Epochs,
		SimUS:    float64(s.p.Now().Sub(s.p.Origin())) * us,
		Backlog:  s.p.Backlog(),
		Capacity: s.capacity,

		PollBuffered: len(s.ring),
		PollDropped:  s.ringDropped,
		Captured:     s.captured,
		Draining:     s.draining.Load(),
	}
	for _, ch := range s.p.Occupancy() {
		st.Channels = append(st.Channels, ChannelState{
			Held: ch.Held, Queued: ch.Queued, InFlight: ch.InFlight, Breaker: ch.Breaker,
		})
	}
	return st
}

// drainLocked steps the plane to quiescence, bounded by DrainEpochs from
// the drain's start; sim-loop goroutine only.
func (s *Server) drainLocked() error {
	for i := 0; !s.p.Quiesced(); i++ {
		if i >= s.cfg.DrainEpochs {
			return fmt.Errorf("server: %d drain epochs without quiescing (backlog %d) — wedged?",
				i, s.p.Backlog())
		}
		s.p.Step()
	}
	return nil
}

// Shutdown drains the plane, audits conservation, stops the sim loop, and
// returns the final report. The returned error is the pool's CheckHealth
// verdict (nil on a clean audit); the report is valid either way. Later
// calls return an error.
func (s *Server) Shutdown() (DrainReport, error) {
	if s.draining.Swap(true) {
		<-s.done
		return DrainReport{}, errors.New("server: already shut down")
	}
	var rep DrainReport
	ok := s.call(func() {
		drainErr := s.drainLocked()
		healthErr := s.p.CheckHealth()
		if healthErr == nil {
			healthErr = drainErr
		}
		s.healthErr = healthErr
		rep.Stats = s.statsLocked()
		if healthErr != nil {
			rep.Health = healthErr.Error()
		} else {
			rep.Health = "ok"
		}
		close(s.stopReq) // the loop exits right after this closure returns
	})
	if !ok {
		return DrainReport{}, errors.New("server: loop already stopped")
	}
	<-s.done
	return rep, s.healthErr
}

// Err returns the final CheckHealth verdict after shutdown (nil before).
func (s *Server) Err() error {
	select {
	case <-s.done:
		return s.healthErr
	default:
		return nil
	}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	mux.HandleFunc("POST /v1/stream", s.handleStream)
	mux.HandleFunc("GET /v1/poll", s.handlePoll)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/shutdown", s.handleShutdown)
	return mux
}

// usToDuration converts fractional microseconds to a sim.Duration,
// truncating below picosecond resolution.
func usToDuration(us float64) sim.Duration {
	return sim.Duration(us * float64(sim.Microsecond))
}

// parseOp validates a wire Op against the pool's geometry.
func (s *Server) parseOp(op Op) (openloop.Request, error) {
	var r openloop.Request
	switch op.Op {
	case "", "r", "read":
	case "w", "write":
		r.Write = true
	default:
		return r, fmt.Errorf("op %q: want read|r|write|w", op.Op)
	}
	r.Off = op.Off
	r.Len = op.Len
	if r.Len == 0 {
		r.Len = pool.PageSize
	}
	r.Tenant = op.Tenant
	switch {
	case r.Off < 0:
		return r, fmt.Errorf("off %d negative", r.Off)
	case r.Len < 0:
		return r, fmt.Errorf("len %d negative", r.Len)
	case r.Off+int64(r.Len) > s.capacity:
		return r, fmt.Errorf("[%d, %d) beyond pool capacity %d", r.Off, r.Off+int64(r.Len), s.capacity)
	case r.Tenant < 0:
		return r, fmt.Errorf("tenant %d negative", r.Tenant)
	case op.DeadlineUS < 0:
		return r, fmt.Errorf("deadline %v us negative", op.DeadlineUS)
	}
	r.Deadline = usToDuration(op.DeadlineUS)
	return r, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// offer hands one submission to the loop; false means the loop is gone.
func (s *Server) offer(sub *submission) bool {
	select {
	case s.subs <- sub:
		return true
	case <-s.done:
		return false
	}
}

// handleSubmit: POST /v1/submit[?wait=1] with one Op body. Async admits
// answer 202 immediately; wait=1 blocks for the terminal outcome and maps
// it onto the status code (200/429/503/504/500).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var op Op
	if err := json.NewDecoder(r.Body).Decode(&op); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad op: " + err.Error()})
		return
	}
	req, err := s.parseOp(op)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: errDraining.Error()})
		return
	}
	sub := &submission{req: req, seq: op.Seq, wait: r.URL.Query().Get("wait") == "1",
		resp: make(chan subResult, 1)}
	if !s.offer(sub) {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: errDraining.Error()})
		return
	}
	var res subResult
	select {
	case res = <-sub.resp:
	case <-s.done:
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: errDraining.Error()})
		return
	}
	switch {
	case errors.Is(res.err, errDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: res.err.Error()})
	case res.err != nil:
		writeJSON(w, errStatus(res.err), errResult(res.id, op.Seq, res.err))
	case res.comp != nil:
		writeJSON(w, outcomeStatus(res.comp.Outcome), resultOf(*res.comp, op.Seq))
	default:
		writeJSON(w, http.StatusAccepted, Result{ID: res.id, Seq: op.Seq, Status: "accepted"})
	}
}

// maxStreamOps bounds one /v1/stream batch so a single request cannot pin
// unbounded memory in the fan-in channel.
const maxStreamOps = 1 << 16

// handleStream: POST /v1/stream with a JSON-lines body of Ops. Every op is
// submitted sync; the response is a JSON-lines stream of Results in
// completion order (correlate with Seq; ops with Seq 0 get their 1-based
// input position), closed by a StreamSummary line.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	var ops []Op
	for {
		var op Op
		if err := dec.Decode(&op); err == io.EOF {
			break
		} else if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad op stream: " + err.Error()})
			return
		}
		if len(ops) >= maxStreamOps {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: fmt.Sprintf("stream exceeds %d ops", maxStreamOps)})
			return
		}
		ops = append(ops, op)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	sum := StreamSummary{Summary: true, Ops: len(ops)}

	// One shared fan-in channel sized for the whole batch, so the sim loop
	// never blocks delivering a result.
	results := make(chan subResult, len(ops))
	outstanding := 0
	for i, op := range ops {
		req, err := s.parseOp(op)
		if err != nil {
			sum.Invalid++
			enc.Encode(Result{Seq: op.Seq, Status: "invalid", Error: err.Error()})
			continue
		}
		seq := op.Seq
		if seq == 0 {
			seq = i + 1
		}
		if !s.offer(&submission{req: req, seq: seq, wait: true, resp: results}) {
			sum.Failed++
			enc.Encode(Result{Seq: seq, Status: "failed", Error: errDraining.Error()})
			continue
		}
		outstanding++
	}
	for ; outstanding > 0; outstanding-- {
		var res subResult
		select {
		case res = <-results:
		case <-s.done:
			res = subResult{err: errDraining}
		}
		var line Result
		switch {
		case res.comp != nil:
			line = resultOf(*res.comp, res.seq)
		case res.err != nil:
			line = errResult(res.id, res.seq, res.err)
		}
		switch line.Status {
		case "completed":
			sum.Completed++
		case "shed":
			sum.Shed++
		case "expired":
			sum.Expired++
		case "throttled":
			sum.Throttled++
		default:
			sum.Failed++
		}
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(sum)
}

// handlePoll: GET /v1/poll?max=N drains up to N (default: all) buffered
// async completions as JSON lines, oldest first.
func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	max := 0
	if q := r.URL.Query().Get("max"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad max: " + q})
			return
		}
		max = n
	}
	var recs []pool.Completion
	ok := s.call(func() {
		n := len(s.ring)
		if max > 0 && max < n {
			n = max
		}
		recs = make([]pool.Completion, n)
		copy(recs, s.ring)
		rest := copy(s.ring, s.ring[n:])
		s.ring = s.ring[:rest]
	})
	if !ok {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: errDraining.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	for _, c := range recs {
		enc.Encode(resultOf(c, 0))
	}
}

// handleStats: GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var st Stats
	if !s.call(func() { st = s.statsLocked() }) {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: errDraining.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleHealthz: GET /v1/healthz — 200 while serving, 503 once draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "serving"})
}

// handleShutdown: POST /v1/shutdown drains the plane and answers with the
// final DrainReport; the sim loop exits once the report is built. A report
// whose Health is not "ok" answers 500 so scripted clients fail loudly.
func (s *Server) handleShutdown(w http.ResponseWriter, r *http.Request) {
	rep, err := s.Shutdown()
	if err != nil && rep.Health == "" {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	status := http.StatusOK
	if rep.Health != "ok" {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, rep)
}
