package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakySubmit answers /v1/submit with `code` for the first `fails` requests,
// then 200s with a completed Result, counting every attempt.
func flakySubmit(code int, fails int64) (*httptest.Server, *atomic.Int64) {
	var hits atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if n <= fails {
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(errorBody{Error: "refused"})
			return
		}
		json.NewEncoder(w).Encode(Result{ID: uint64(n), Status: "completed"})
	})
	return httptest.NewServer(h), &hits
}

// TestClientRetryRecovers: a Submit refused with 503 twice then accepted
// must succeed transparently under the retry policy, in exactly
// fails+1 attempts.
func TestClientRetryRecovers(t *testing.T) {
	for _, code := range []int{http.StatusServiceUnavailable, http.StatusTooManyRequests} {
		srv, hits := flakySubmit(code, 2)
		c := &Client{Base: srv.URL, Retry: &RetryPolicy{
			Max: 4, Base: time.Millisecond, Cap: 4 * time.Millisecond, Seed: 7,
		}}
		res, got, err := c.Submit(Op{Off: 0, Len: 4096}, false)
		srv.Close()
		if err != nil {
			t.Fatalf("code %d: %v", code, err)
		}
		if got != http.StatusOK || res.Status != "completed" {
			t.Fatalf("code %d: got HTTP %d status %q, want recovered completion", code, got, res.Status)
		}
		if n := hits.Load(); n != 3 {
			t.Fatalf("code %d: %d attempts, want 3 (2 refusals + 1 success)", code, n)
		}
	}
}

// TestClientRetryExhausted: a server that never recovers uses exactly
// Max+1 attempts and surfaces the final refusal code.
func TestClientRetryExhausted(t *testing.T) {
	srv, hits := flakySubmit(http.StatusServiceUnavailable, 1<<30)
	defer srv.Close()
	c := &Client{Base: srv.URL, Retry: &RetryPolicy{
		Max: 3, Base: time.Millisecond, Cap: 2 * time.Millisecond, Seed: 7,
	}}
	_, got, err := c.Submit(Op{Len: 4096}, false)
	if err != nil {
		t.Fatal(err)
	}
	if got != http.StatusServiceUnavailable {
		t.Fatalf("got HTTP %d, want the final 503", got)
	}
	if n := hits.Load(); n != 4 {
		t.Fatalf("%d attempts, want 4 (1 + Max 3)", n)
	}
}

// TestClientRetryRespectsDeadline: an op carrying a deadline far below the
// backoff step must fail fast — no retry can land inside its budget.
func TestClientRetryRespectsDeadline(t *testing.T) {
	srv, hits := flakySubmit(http.StatusTooManyRequests, 1<<30)
	defer srv.Close()
	c := &Client{Base: srv.URL, Retry: &RetryPolicy{
		Max: 8, Base: 20 * time.Millisecond, Cap: 20 * time.Millisecond, Seed: 7,
	}}
	_, got, err := c.Submit(Op{Len: 4096, DeadlineUS: 100}, false) // 100us budget
	if err != nil {
		t.Fatal(err)
	}
	if got != http.StatusTooManyRequests {
		t.Fatalf("got HTTP %d, want 429", got)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("%d attempts, want 1 (deadline leaves no retry room)", n)
	}
}

// TestClientNoRetryByDefault: a nil policy keeps the historical fail-fast
// single attempt.
func TestClientNoRetryByDefault(t *testing.T) {
	srv, hits := flakySubmit(http.StatusServiceUnavailable, 1<<30)
	defer srv.Close()
	c := &Client{Base: srv.URL}
	_, got, err := c.Submit(Op{Len: 4096}, false)
	if err != nil {
		t.Fatal(err)
	}
	if got != http.StatusServiceUnavailable {
		t.Fatalf("got HTTP %d, want 503", got)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("%d attempts, want 1", n)
	}
}

// TestClientRetryNonRetryableFinal: 400/500/504 are final for the op — the
// policy must not resubmit them.
func TestClientRetryNonRetryableFinal(t *testing.T) {
	for _, code := range []int{http.StatusBadRequest, http.StatusInternalServerError, http.StatusGatewayTimeout} {
		srv, hits := flakySubmit(code, 1<<30)
		c := &Client{Base: srv.URL, Retry: &RetryPolicy{Max: 4, Base: time.Millisecond, Seed: 7}}
		_, got, err := c.Submit(Op{Len: 4096}, false)
		srv.Close()
		if err != nil {
			t.Fatalf("code %d: %v", code, err)
		}
		if got != code {
			t.Fatalf("got HTTP %d, want %d surfaced unretried", got, code)
		}
		if n := hits.Load(); n != 1 {
			t.Fatalf("code %d: %d attempts, want 1", code, n)
		}
	}
}
