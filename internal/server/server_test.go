package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nvdimmc/internal/core"
	"nvdimmc/internal/pool"
	"nvdimmc/internal/replay"
	"nvdimmc/internal/sim"
)

// testMember is the shrunken module shape the pool tests use.
func testMember() core.Config {
	cfg := core.DefaultConfig()
	cfg.CacheBytes = 1 << 20
	cfg.NAND.BlocksPerDie = 32
	cfg.NAND.PagesPerBlock = 16
	return cfg
}

func testPoolCfg(channels int) pool.Config {
	return pool.Config{
		Channels:        channels,
		DIMMsPerChannel: 1,
		Interleave:      4096,
		Member:          testMember(),
		Seed:            7,
		PrefillPages:    8,
	}
}

// newTestServer starts a Server plus an httptest front-end and returns the
// typed client. The server is shut down at test end if the test didn't.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *Client) {
	t.Helper()
	cfg := Config{Pool: testPoolCfg(3)}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		select {
		case <-s.Done():
		default:
			s.Shutdown()
		}
		ts.Close()
	})
	return s, &Client{Base: ts.URL, HTTP: ts.Client()}
}

func TestSubmitWaitCompletes(t *testing.T) {
	_, c := newTestServer(t, nil)
	res, code, err := c.Submit(Op{Op: "read", Off: 0, Len: 4096}, true)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || res.Status != "completed" {
		t.Fatalf("sync read: HTTP %d, status %q", code, res.Status)
	}
	if res.ID == 0 || res.LatencyUS <= 0 {
		t.Fatalf("sync read: id %d latency %v us", res.ID, res.LatencyUS)
	}
	res, code, err = c.Submit(Op{Op: "w", Off: 8192}, true) // default len
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || res.Status != "completed" || !res.Write {
		t.Fatalf("sync write: HTTP %d, %+v", code, res)
	}
}

func TestSubmitAsyncAndPoll(t *testing.T) {
	const n = 16
	_, c := newTestServer(t, nil)
	ids := map[uint64]bool{}
	for i := 0; i < n; i++ {
		res, code, err := c.Submit(Op{Off: int64(i) * 4096}, false)
		if err != nil {
			t.Fatal(err)
		}
		if code != http.StatusAccepted || res.Status != "accepted" {
			t.Fatalf("async submit %d: HTTP %d, status %q", i, code, res.Status)
		}
		if res.ID == 0 || ids[res.ID] {
			t.Fatalf("async submit %d: bad or duplicate id %d", i, res.ID)
		}
		ids[res.ID] = true
	}
	if _, err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		recs, err := c.Poll(4) // chunked drain
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		for _, r := range recs {
			if !ids[r.ID] {
				t.Fatalf("polled unknown id %d", r.ID)
			}
			if r.Status != "completed" {
				t.Fatalf("id %d: status %q", r.ID, r.Status)
			}
			delete(ids, r.ID)
			got++
		}
	}
	if got != n {
		t.Fatalf("polled %d completions, want %d", got, n)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, c := newTestServer(t, nil)
	cases := []Op{
		{Op: "x", Off: 0},                 // bad verb
		{Off: -4096},                      // negative offset
		{Off: 0, Len: -1},                 // negative length
		{Off: 1 << 60},                    // beyond capacity
		{Off: 0, Tenant: -1},              // negative tenant
		{Off: 0, DeadlineUS: -1},          // negative deadline
	}
	for i, op := range cases {
		_, code, err := c.Submit(op, false)
		if err != nil {
			t.Fatal(err)
		}
		if code != http.StatusBadRequest {
			t.Fatalf("case %d (%+v): HTTP %d, want 400", i, op, code)
		}
	}
	// Malformed JSON body.
	resp, err := c.http().Post(c.Base+"/v1/submit", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestThrottledMapsTo429: an isolated tenant over its token bucket gets the
// typed ErrTenantThrottled surfaced as 429 with status "throttled".
func TestThrottledMapsTo429(t *testing.T) {
	_, c := newTestServer(t, func(cfg *Config) {
		cfg.Pool.QoS = pool.QoSConfig{
			Isolation: true,
			Tenants: []pool.TenantQoS{
				{Name: "gated", RatePerSec: 1, Burst: 1},
			},
		}
	})
	res, code, err := c.Submit(Op{Off: 0}, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusAccepted {
		t.Fatalf("first op from a full bucket: HTTP %d", code)
	}
	// The bucket refills at 1 req/simulated second; the plane has advanced
	// microseconds at most, so the next submissions throttle.
	saw := 0
	for i := 0; i < 4; i++ {
		res, code, err = c.Submit(Op{Off: 4096}, false)
		if err != nil {
			t.Fatal(err)
		}
		if code == http.StatusTooManyRequests {
			if res.Status != "throttled" || res.ID == 0 || res.Error == "" {
				t.Fatalf("throttled result: %+v", res)
			}
			saw++
		}
	}
	if saw == 0 {
		t.Fatal("no submission throttled against a drained 1 req/s bucket")
	}
}

// TestShedMapsTo503: under a shedding admission policy, a single request
// whose fragment burst exceeds a channel's pending cap is refused at
// admission — typed ErrAdmissionFull, surfaced as 503 with status "shed".
func TestShedMapsTo503(t *testing.T) {
	_, c := newTestServer(t, func(cfg *Config) {
		cfg.Pool.Admission = pool.AdmitShedNewest
		cfg.Pool.PendingCap = 8
	})
	// 64 pages across 3 channels is ~21 fragments per channel: over the
	// write cap (PendingCap/2 = 4) in one submission, deterministically.
	res, code, err := c.Submit(Op{Op: "w", Off: 0, Len: 64 * 4096}, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusServiceUnavailable || res.Status != "shed" {
		t.Fatalf("oversized write under shed-newest: HTTP %d, status %q", code, res.Status)
	}
	if res.ID == 0 || res.Error == "" {
		t.Fatalf("shed result: %+v", res)
	}
}

// TestExpiredMapsTo504: a sync-wait request that cannot finish inside its
// deadline expires in the plane — typed ErrDeadlineExceeded, 504.
func TestExpiredMapsTo504(t *testing.T) {
	_, c := newTestServer(t, func(cfg *Config) {
		cfg.Pool = testPoolCfg(1) // one channel: the burst cannot spread
	})
	// 128 fragments on one channel: the window and queue hold ~96, so some
	// are still admission-held at the next boundary, where the 1 ns
	// deadline has long passed.
	res, code, err := c.Submit(Op{Op: "w", Off: 0, Len: 128 * 4096, DeadlineUS: 0.001}, true)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusGatewayTimeout || res.Status != "expired" {
		t.Fatalf("1ns-deadline burst: HTTP %d, status %q (err %q)", code, res.Status, res.Error)
	}
}

func TestStreamEndpoint(t *testing.T) {
	_, c := newTestServer(t, nil)
	ops := []Op{
		{Op: "r", Off: 0, Seq: 11},
		{Op: "w", Off: 4096, Seq: 22},
		{Op: "nope", Off: 0, Seq: 33}, // invalid: refused inline
		{Op: "r", Off: 8192},          // Seq 0: gets input position 4
	}
	results, sum, err := c.Stream(ops)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ops != 4 || sum.Invalid != 1 || sum.Completed != 3 {
		t.Fatalf("summary: %+v", sum)
	}
	seqs := map[int]string{}
	for _, r := range results {
		seqs[r.Seq] = r.Status
	}
	if seqs[11] != "completed" || seqs[22] != "completed" || seqs[33] != "invalid" || seqs[4] != "completed" {
		t.Fatalf("per-op results: %v", seqs)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	_, c := newTestServer(t, nil)
	if err := c.Healthz(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Submit(Op{Off: 0}, true); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 1 || st.Completed != 1 || st.Terminal != 1 {
		t.Fatalf("stats after one sync op: %+v", st)
	}
	if st.Capacity <= 0 || len(st.Channels) != 3 || st.Epochs == 0 {
		t.Fatalf("stats shape: capacity %d, %d channels, %d epochs",
			st.Capacity, len(st.Channels), st.Epochs)
	}
	if st.LatP50US <= 0 {
		t.Fatalf("latency percentiles missing: %+v", st)
	}
}

// TestPollRingDropsOldest: a slow poller loses the oldest records, counted,
// never blocking the plane.
func TestPollRingDropsOldest(t *testing.T) {
	_, c := newTestServer(t, func(cfg *Config) { cfg.PollBuf = 4 })
	const n = 10
	for i := 0; i < n; i++ {
		if _, code, err := c.Submit(Op{Off: int64(i) * 4096}, false); err != nil || code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d, %v", i, code, err)
		}
		// Quiesce between submissions so completion order is the
		// submission order and the drop set is deterministic.
		if _, err := c.WaitQuiesced(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := c.Poll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("ring held %d records, want 4", len(recs))
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.PollDropped != n-4 {
		t.Fatalf("dropped %d, want %d", st.PollDropped, n-4)
	}
	for i, r := range recs {
		if want := uint64(n - 4 + i + 1); r.ID != want {
			t.Fatalf("ring[%d] = id %d, want %d (newest-surviving order)", i, r.ID, want)
		}
	}
}

func TestShutdownDrainsAndRefuses(t *testing.T) {
	s, c := newTestServer(t, nil)
	const n = 12
	for i := 0; i < n; i++ {
		if _, code, err := c.Submit(Op{Op: "w", Off: int64(i) * 4096}, false); err != nil || code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d, %v", i, code, err)
		}
	}
	rep, err := c.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Health != "ok" {
		t.Fatalf("drain health: %q", rep.Health)
	}
	st := rep.Stats
	if st.Submitted != n || st.Terminal != n || st.Backlog != 0 {
		t.Fatalf("post-drain stats: %+v", st)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("sim loop still running after shutdown")
	}
	// The service now refuses everything politely.
	if err := c.Healthz(); err == nil {
		t.Fatal("healthz still 200 after shutdown")
	}
	if _, code, err := c.Submit(Op{Off: 0}, false); err != nil || code != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: HTTP %d, %v", code, err)
	}
	if _, err := c.Stats(); err == nil {
		t.Fatal("stats still served after shutdown")
	}
}

// TestCaptureReplayRoundTrip: a strictly sequential sync client makes the
// service's admission instants deterministic, so the captured trace driven
// through an identically configured offline pool must reproduce the
// service's final counters exactly — the service-to-replay half of the
// determinism contract.
func TestCaptureReplayRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := replay.NewWriter(&buf, replay.Binary)
	if err != nil {
		t.Fatal(err)
	}
	rec := replay.NewRecorder(w)
	_, c := newTestServer(t, func(cfg *Config) { cfg.Capture = rec.Record })

	rng := sim.NewRand(3)
	const n = 40
	for i := 0; i < n; i++ {
		op := Op{Off: int64(rng.Intn(128)) * 4096}
		if rng.Intn(2) == 0 {
			op.Op = "w"
		}
		if _, code, err := c.Submit(op, true); err != nil || code != http.StatusOK {
			t.Fatalf("op %d: HTTP %d, %v", i, code, err)
		}
	}
	rep, err := c.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if rec.Records() != n {
		t.Fatalf("captured %d of %d", rec.Records(), n)
	}

	p, err := pool.New(testPoolCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	rd, err := replay.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replay.Drive(p, rd, 0); err != nil {
		t.Fatal(err)
	}
	ps := p.Stats()
	live := rep.Stats
	// Compare on the wire-visible counters (the wire layer reports derived
	// latencies in float microseconds, so compare those separately).
	if ps.Submitted != live.Submitted || ps.Completed != live.Completed ||
		ps.WritesAcked != live.WritesAcked || ps.Epochs != live.Epochs {
		t.Fatalf("replay diverged from live service:\nlive:   %+v\nreplay: sub=%d comp=%d wracked=%d epochs=%d",
			live, ps.Submitted, ps.Completed, ps.WritesAcked, ps.Epochs)
	}
	wantMean := float64(ps.Lat.Mean()) / float64(sim.Microsecond)
	if diff := live.LatMeanUS - wantMean; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("replay mean latency %v us, live %v us", wantMean, live.LatMeanUS)
	}
}

// TestStatusMappingUnits pins the full error/outcome → status tables,
// including branches hard to reach end-to-end (failed → 500).
func TestStatusMappingUnits(t *testing.T) {
	errCases := map[int]error{
		429: fmt.Errorf("wrap: %w", pool.ErrTenantThrottled),
		503: fmt.Errorf("wrap: %w", pool.ErrAdmissionFull),
		504: fmt.Errorf("wrap: %w", pool.ErrDeadlineExceeded),
		500: errors.New("anything else"),
	}
	for want, err := range errCases {
		if got := errStatus(err); got != want {
			t.Fatalf("errStatus(%v) = %d, want %d", err, got, want)
		}
	}
	outCases := map[int]pool.Outcome{
		200: pool.OutcomeCompleted,
		429: pool.OutcomeThrottled,
		503: pool.OutcomeShed,
		504: pool.OutcomeExpired,
		500: pool.OutcomeFailed,
	}
	for want, o := range outCases {
		if got := outcomeStatus(o); got != want {
			t.Fatalf("outcomeStatus(%v) = %d, want %d", o, got, want)
		}
	}
	r := errResult(9, 2, fmt.Errorf("ctx: %w", pool.ErrAdmissionFull))
	if r.ID != 9 || r.Seq != 2 || r.Status != "shed" || r.Error == "" {
		t.Fatalf("errResult: %+v", r)
	}
}

// TestLoadGenConservation is the in-process version of the service
// campaign: concurrent clients, mixed sync/async/stream traffic, and the
// end-to-end conservation cross-check must hold.
func TestLoadGenConservation(t *testing.T) {
	_, c := newTestServer(t, func(cfg *Config) {
		cfg.Pool.Admission = pool.AdmitShedNewest
		cfg.Pool.PendingCap = 64
	})
	rep, err := LoadGen(LoadConfig{
		Base:        c.Base,
		Clients:     8,
		Ops:         24,
		WritePct:    50,
		WaitEvery:   4,
		StreamEvery: 3,
		Seed:        99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("conservation violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Sent != 8*24 {
		t.Fatalf("sent %d, want %d", rep.Sent, 8*24)
	}
	drain, err := c.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if drain.Health != "ok" {
		t.Fatalf("drain health: %q", drain.Health)
	}
}

// TestStreamBatchTooLarge guards the fan-in bound.
func TestStreamBatchTooLarge(t *testing.T) {
	_, c := newTestServer(t, nil)
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	for i := 0; i <= maxStreamOps; i++ {
		enc.Encode(Op{Off: 0})
	}
	resp, err := c.http().Post(c.Base+"/v1/stream", "application/json", &b)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized stream: HTTP %d, want 400", resp.StatusCode)
	}
}
