// Package refdet models the refresh-detector RTL of the NVDIMM-C FPGA
// (Fig. 4): six CA signals (CKE, CS_n, ACT_n, RAS_n, CAS_n, WE_n) each feed
// a 1:8 deserializer clocked by the DDR4 differential clock; the detector
// receives six 8-bit words per frame and asserts is_refresh when the sampled
// pin levels decode as a normal REFRESH command. Self-refresh entry/exit
// decode differently and must never fire the detector.
//
// The detector is the single component the whole conflict-avoidance scheme
// hangs on: a false positive lets the NVMC drive a bus the host still owns
// (a system-fatal conflict), and a missed REF merely costs one window. The
// model exposes an injectable sampling bit-error rate so tests can show both
// the clean-signal behaviour the paper validates by aging (§VII-A) and what
// marginal signal integrity would do.
package refdet

import (
	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/fault"
	"nvdimmc/internal/sim"
	"nvdimmc/internal/trace"
)

// FrameBits is the deserializer width: each CA pin is captured eight times
// per frame (1:8 serial-to-parallel conversion, §IV-A).
const FrameBits = 8

// NumPins is the number of snooped CA signals.
const NumPins = 6

// Deserializer is a 1:8 serial-to-parallel converter for one CA pin.
type Deserializer struct {
	shift uint8
	count int
}

// Push shifts one sampled bit in. When the eighth bit of a frame arrives it
// returns the completed 8-bit word and true.
func (d *Deserializer) Push(bit bool) (word uint8, ready bool) {
	d.shift <<= 1
	if bit {
		d.shift |= 1
	}
	d.count++
	if d.count == FrameBits {
		d.count = 0
		w := d.shift
		d.shift = 0
		return w, true
	}
	return 0, false
}

// Pending reports how many bits of the current frame have been captured.
func (d *Deserializer) Pending() int { return d.count }

// Stats aggregates detector behaviour for validation experiments.
type Stats struct {
	Samples        uint64 // CA states examined
	Detections     uint64 // is_refresh assertions
	TruePositives  uint64 // assertions on actual REF
	FalsePositives uint64 // assertions on non-REF states (fatal in hardware)
	MissedRefresh  uint64 // REF states that failed to assert
}

// Detector is the refresh-detector block.
type Detector struct {
	k *sim.Kernel

	// tck is the sampling clock period; detection latency is quantized to
	// the frame boundary plus a fixed decode pipeline.
	tck      sim.Duration
	pipeline sim.Duration

	// OnRefresh fires once per detected REFRESH, at the instant the decode
	// pipeline resolves. The argument is the time the REF was on the bus.
	OnRefresh func(refAt sim.Time)

	// BitErrorRate optionally flips each sampled pin level with this
	// probability, modelling marginal signal integrity (crosstalk,
	// impedance mismatch — the effects §VII-A says they mitigated with
	// terminations and impedance tuning). When a fault registry is
	// attached, the draw comes from the registry's single seeded RNG so
	// the whole run replays from one seed; otherwise from the detector's
	// own seeded generator.
	BitErrorRate float64
	rng          *sim.Rand

	// faults, when non-nil, additionally injects per-pin sample flips via
	// fault.RefdetSampleFlip — the registry-native home of the BER knob.
	faults *fault.Registry

	// Trace, when attached to sinks, publishes one KindRefDetect event per
	// resolved detection, carrying the claimed bus time of the REF. The
	// protocol auditor cross-checks that claim against the commands that
	// were actually on the bus: a false positive shows up as a detect
	// event whose RefAt matches no REF.
	Trace *trace.Recorder

	des   [NumPins]Deserializer
	stats Stats

	enabled bool
}

// New returns an enabled detector sampling at the channel's clock period.
func New(k *sim.Kernel, tck sim.Duration) *Detector {
	return &Detector{
		k:        k,
		tck:      tck,
		pipeline: 2 * tck,
		rng:      sim.NewRand(0xCA5),
		enabled:  true,
	}
}

// SetEnabled turns the detector on or off (the ablation with the mechanism
// disabled runs with the detector off and the NVMC free-running).
func (d *Detector) SetEnabled(v bool) { d.enabled = v }

// SetFaults attaches the fault-injection registry: sample flips can then be
// injected per-site (fault.RefdetSampleFlip) and the BitErrorRate knob draws
// from the registry's seeded RNG.
func (d *Detector) SetFaults(g *fault.Registry) { d.faults = g }

// SetSeed reseeds the detector's own sampling-noise RNG (used when no fault
// registry is attached); core plumbs its master seed here.
func (d *Detector) SetSeed(seed uint64) { d.rng = sim.NewRand(seed) }

// Enabled reports whether the detector is active.
func (d *Detector) Enabled() bool { return d.enabled }

// Stats returns the accumulated detection statistics.
func (d *Detector) Stats() Stats { return d.stats }

// WarpIdleRefreshCycles credits m clean PREA+REF refresh cycles without
// sampling them: two samples per cycle (PREA then REF), the REF decoding
// as a true-positive detection. Legal only on a noise-free detector
// (BitErrorRate zero, no fault registry) — the caller owns that proof —
// so no RNG draws are consumed and the deserializer state (untouched by
// the SampleCommand path) needs no adjustment. Detection events are not
// scheduled; the caller warps the downstream consumer directly.
func (d *Detector) WarpIdleRefreshCycles(m uint64) {
	if m == 0 || !d.enabled {
		return
	}
	d.stats.Samples += 2 * m
	d.stats.Detections += m
	d.stats.TruePositives += m
}

// Snoop returns the CA-bus observer to attach to the channel.
func (d *Detector) Snoop() func(at sim.Time, s ddr4.CAState) {
	return func(at sim.Time, s ddr4.CAState) { d.SampleCommand(at, s) }
}

func (d *Detector) noisy(s ddr4.CAState) ddr4.CAState {
	if d.BitErrorRate <= 0 && d.faults == nil {
		return s
	}
	rng := d.rng
	if d.faults != nil {
		rng = d.faults.Rand()
	}
	flip := func(b bool) bool {
		if d.faults.Fires(fault.RefdetSampleFlip) {
			return !b
		}
		if d.BitErrorRate > 0 && rng.Float64() < d.BitErrorRate {
			return !b
		}
		return b
	}
	return ddr4.CAState{
		CKE: flip(s.CKE), CSn: flip(s.CSn), ACTn: flip(s.ACTn),
		RASn: flip(s.RASn), CASn: flip(s.CASn), WEn: flip(s.WEn),
	}
}

// SampleCommand examines the CA state present on the bus at time at. In the
// full-system wiring the channel invokes this once per issued command; the
// deserializer frame boundary is derived from the wall-clock sample position
// so detection latency matches the RTL (up to one frame plus the decode
// pipeline).
func (d *Detector) SampleCommand(at sim.Time, s ddr4.CAState) {
	if !d.enabled {
		return
	}
	d.stats.Samples++
	isRef := ddr4.IsRefresh(s)
	seen := d.noisy(s)
	match := ddr4.IsRefresh(seen)
	switch {
	case match && isRef:
		d.stats.TruePositives++
	case match && !isRef:
		d.stats.FalsePositives++
	case !match && isRef:
		d.stats.MissedRefresh++
	}
	if !match {
		return
	}
	d.stats.Detections++
	// Position of this sample within its deserializer frame.
	pos := int((int64(at) / int64(d.tck)) % FrameBits)
	latency := sim.Duration(FrameBits-pos)*d.tck + d.pipeline
	refAt := at
	d.k.Schedule(latency, func() {
		if d.Trace.Active() {
			d.Trace.Record(trace.Event{
				At: d.k.Now(), Kind: trace.KindRefDetect, RefAt: refAt,
			})
		}
		if d.OnRefresh != nil {
			d.OnRefresh(refAt)
		}
	})
}

// PushSample drives the RTL-level path directly: one sampled level per pin,
// in pin order {CKE, CS_n, ACT_n, RAS_n, CAS_n, WE_n}. Every eighth push
// completes a frame; the detector then scans all eight bit positions of the
// six words for the REFRESH pattern and returns how many positions matched.
// This is the path the deserializer unit tests and the exhaustive pattern
// tests exercise.
func (d *Detector) PushSample(levels [NumPins]bool) (matchesInFrame int) {
	var words [NumPins]uint8
	ready := false
	for i := 0; i < NumPins; i++ {
		w, r := d.des[i].Push(levels[i])
		words[i] = w
		ready = r
	}
	if !ready {
		return 0
	}
	return ScanFrame(words)
}

// ScanFrame checks each of the eight bit positions across the six pin words
// for the REFRESH pattern: CKE, ACT_n, WE_n high; CS_n, RAS_n, CAS_n low
// (§IV-A). It returns the number of positions that match.
func ScanFrame(words [NumPins]uint8) int {
	matches := 0
	for bitIdx := 0; bitIdx < FrameBits; bitIdx++ {
		bit := func(pin int) bool { return words[pin]&(1<<uint(FrameBits-1-bitIdx)) != 0 }
		s := ddr4.CAState{
			CKE: bit(0), CSn: bit(1), ACTn: bit(2),
			RASn: bit(3), CASn: bit(4), WEn: bit(5),
		}
		if ddr4.IsRefresh(s) {
			matches++
		}
	}
	return matches
}

// PinLevels converts a CA state to the pin-order array PushSample expects.
func PinLevels(s ddr4.CAState) [NumPins]bool {
	return [NumPins]bool{s.CKE, s.CSn, s.ACTn, s.RASn, s.CASn, s.WEn}
}
