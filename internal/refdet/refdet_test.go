package refdet

import (
	"testing"
	"testing/quick"

	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/sim"
)

func TestDeserializer(t *testing.T) {
	var d Deserializer
	// Push 0b10110010: MSB first.
	bits := []bool{true, false, true, true, false, false, true, false}
	for i, b := range bits[:7] {
		if _, ready := d.Push(b); ready {
			t.Fatalf("frame ready after %d bits", i+1)
		}
	}
	w, ready := d.Push(bits[7])
	if !ready {
		t.Fatal("frame not ready after 8 bits")
	}
	if w != 0xB2 {
		t.Fatalf("word = %#x, want 0xB2", w)
	}
	if d.Pending() != 0 {
		t.Fatalf("pending = %d after frame", d.Pending())
	}
}

func TestScanFrameFindsREFAtEveryPosition(t *testing.T) {
	ref := ddr4.Encode(ddr4.CmdRefresh)
	des := ddr4.Encode(ddr4.CmdDeselect)
	for pos := 0; pos < FrameBits; pos++ {
		var words [NumPins]uint8
		for bit := 0; bit < FrameBits; bit++ {
			s := des
			if bit == pos {
				s = ref
			}
			lv := PinLevels(s)
			for p := 0; p < NumPins; p++ {
				words[p] <<= 1
				if lv[p] {
					words[p] |= 1
				}
			}
		}
		if got := ScanFrame(words); got != 1 {
			t.Errorf("REF at position %d: matches = %d, want 1", pos, got)
		}
	}
}

func TestScanFrameIgnoresOtherCommands(t *testing.T) {
	for _, kind := range ddr4.AllCommandKinds {
		if kind == ddr4.CmdRefresh {
			continue
		}
		s := ddr4.Encode(kind)
		var words [NumPins]uint8
		lv := PinLevels(s)
		for p := 0; p < NumPins; p++ {
			if lv[p] {
				words[p] = 0xFF
			}
		}
		if got := ScanFrame(words); got != 0 {
			t.Errorf("%v: matches = %d, want 0", kind, got)
		}
	}
}

func TestPushSampleFrameAssembly(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, 1250*sim.Picosecond)
	refLv := PinLevels(ddr4.Encode(ddr4.CmdRefresh))
	desLv := PinLevels(ddr4.Encode(ddr4.CmdDeselect))
	// Frame 1: REF at sample 3.
	total := 0
	for i := 0; i < FrameBits; i++ {
		lv := desLv
		if i == 3 {
			lv = refLv
		}
		total += d.PushSample(lv)
	}
	if total != 1 {
		t.Fatalf("frame matches = %d, want 1", total)
	}
	// Frame 2: all idle.
	total = 0
	for i := 0; i < FrameBits; i++ {
		total += d.PushSample(desLv)
	}
	if total != 0 {
		t.Fatalf("idle frame matches = %d, want 0", total)
	}
}

func TestSampleCommandDetectsOnlyREF(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, 1250*sim.Picosecond)
	fired := 0
	d.OnRefresh = func(sim.Time) { fired++ }
	for _, kind := range ddr4.AllCommandKinds {
		d.SampleCommand(k.Now(), ddr4.Encode(kind))
	}
	k.Run()
	if fired != 1 {
		t.Fatalf("OnRefresh fired %d times, want 1 (only for REF)", fired)
	}
	st := d.Stats()
	if st.TruePositives != 1 || st.FalsePositives != 0 || st.MissedRefresh != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSRESRXNeverDetected(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, 1250*sim.Picosecond)
	d.OnRefresh = func(sim.Time) { t.Error("detector fired on self-refresh command") }
	d.SampleCommand(k.Now(), ddr4.Encode(ddr4.CmdSelfRefreshEntry))
	d.SampleCommand(k.Now(), ddr4.Encode(ddr4.CmdSelfRefreshExit))
	k.Run()
}

func TestDetectionLatencyBounded(t *testing.T) {
	k := sim.NewKernel()
	tck := 1250 * sim.Picosecond
	d := New(k, tck)
	var detectedAt sim.Time
	d.OnRefresh = func(sim.Time) { detectedAt = k.Now() }
	issueAt := sim.Time(100 * sim.Nanosecond)
	k.ScheduleAt(issueAt, func() { d.SampleCommand(k.Now(), ddr4.Encode(ddr4.CmdRefresh)) })
	k.Run()
	lat := detectedAt.Sub(issueAt)
	if lat <= 0 || lat > sim.Duration(FrameBits+2)*tck {
		t.Fatalf("detection latency = %v, want (0, %v]", lat, sim.Duration(FrameBits+2)*tck)
	}
}

func TestDisabledDetectorIgnoresEverything(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, 1250*sim.Picosecond)
	d.OnRefresh = func(sim.Time) { t.Error("disabled detector fired") }
	d.SetEnabled(false)
	d.SampleCommand(k.Now(), ddr4.Encode(ddr4.CmdRefresh))
	k.Run()
	if d.Stats().Samples != 0 {
		t.Error("disabled detector sampled")
	}
}

func TestCleanSignalNeverFalsePositive(t *testing.T) {
	// The §VII-A property with ideal signal integrity: millions of samples,
	// zero false positives, zero misses.
	k := sim.NewKernel()
	d := New(k, 1250*sim.Picosecond)
	d.OnRefresh = func(sim.Time) {}
	rng := sim.NewRand(99)
	for i := 0; i < 200000; i++ {
		kind := ddr4.AllCommandKinds[rng.Intn(len(ddr4.AllCommandKinds))]
		d.SampleCommand(k.Now(), ddr4.Encode(kind))
	}
	k.Run()
	st := d.Stats()
	if st.FalsePositives != 0 || st.MissedRefresh != 0 {
		t.Fatalf("clean signal produced %d false positives, %d misses", st.FalsePositives, st.MissedRefresh)
	}
	if st.Detections != st.TruePositives {
		t.Fatalf("detections %d != true positives %d", st.Detections, st.TruePositives)
	}
}

func TestNoisySignalProducesErrors(t *testing.T) {
	// With a large injected bit-error rate the detector must start missing
	// refreshes and (eventually) false-positive — demonstrating why the
	// paper invested in impedance/termination tuning.
	k := sim.NewKernel()
	d := New(k, 1250*sim.Picosecond)
	d.BitErrorRate = 0.05
	d.OnRefresh = func(sim.Time) {}
	for i := 0; i < 50000; i++ {
		d.SampleCommand(k.Now(), ddr4.Encode(ddr4.CmdRefresh))
		d.SampleCommand(k.Now(), ddr4.Encode(ddr4.CmdRead))
	}
	k.Run()
	st := d.Stats()
	if st.MissedRefresh == 0 {
		t.Error("5% BER produced zero missed refreshes")
	}
	if st.FalsePositives == 0 {
		t.Error("5% BER produced zero false positives")
	}
}

// Property: for any random frame content, ScanFrame's match count equals the
// number of positions whose reassembled CA state is the REF encoding.
func TestScanFrameProperty(t *testing.T) {
	f := func(w0, w1, w2, w3, w4, w5 uint8) bool {
		words := [NumPins]uint8{w0, w1, w2, w3, w4, w5}
		want := 0
		for bit := 0; bit < FrameBits; bit++ {
			mask := uint8(1) << uint(FrameBits-1-bit)
			s := ddr4.CAState{
				CKE: w0&mask != 0, CSn: w1&mask != 0, ACTn: w2&mask != 0,
				RASn: w3&mask != 0, CASn: w4&mask != 0, WEn: w5&mask != 0,
			}
			if ddr4.IsRefresh(s) {
				want++
			}
		}
		return ScanFrame(words) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
