// Package dram models a DDR4 DRAM rank: per-bank row state machines, the
// refresh cycle, protocol legality checking and real data storage.
//
// The model serves two levels of fidelity:
//
//   - Command level: Apply executes one decoded DDR4 command, advancing the
//     bank state machines and recording protocol violations exactly where a
//     real device would glitch or corrupt (commands during refresh, CAS to a
//     closed row, ACT to an open bank, ...). The bus-conflict experiments and
//     the refresh-detector aging test run at this level.
//
//   - Transfer level: CopyIn/CopyOut move bytes to/from the backing store
//     with no timing; the callers (iMC and NVMC models) account for bus
//     occupancy themselves. Transfer-level access still enforces the refresh
//     window rules through InRefresh/InExtraWindow.
//
// Data is stored sparsely in 4 KB pages so a simulated 16 GB DIMM costs only
// what is actually touched.
package dram

import (
	"fmt"

	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/sim"
)

// PageSize is the data-store page granularity (also the NVDIMM-C cacheline).
const PageSize = 4096

// BankState is a bank's row-buffer state.
type BankState int

// Bank states.
const (
	BankIdle BankState = iota
	BankActive
)

type bank struct {
	state   BankState
	openRow int
	lastACT sim.Time
	lastPRE sim.Time
	readyAt sim.Time // earliest instant a CAS command is legal
}

// Violation records a protocol violation the device observed. Real silicon
// would corrupt data or lock up; the model records and (optionally) poisons
// the affected location so higher-level validation catches it.
type Violation struct {
	At   sim.Time
	Cmd  ddr4.Command
	Desc string
}

func (v Violation) String() string {
	return fmt.Sprintf("%v: %v: %s", v.At, v.Cmd, v.Desc)
}

// Config sizes a Device.
type Config struct {
	Timing ddr4.Timing
	// Banks is the number of banks (DDR4 x8: 16 in 4 bank groups).
	Banks int
	// Rows per bank.
	Rows int
	// Columns per row counted in 64-byte bursts.
	BurstsPerRow int
	// StandardTRFC is the time the device actually needs to complete a
	// refresh (350 ns for 8 Gb); the *programmed* tRFC in Timing.TRFC may be
	// longer — that surplus is the NVMC's access window.
	StandardTRFC sim.Duration
	// PoisonOnViolation makes violations overwrite the target burst with a
	// recognizable pattern, so data-validation workloads observe corruption
	// the way a real system would.
	PoisonOnViolation bool
}

// DefaultConfig returns an 8 Gb-component rank at the given grade: 16 banks,
// 64Ki rows... scaled down by default to keep tests light. Capacity is
// Banks*Rows*BurstsPerRow*64 bytes.
func DefaultConfig(g ddr4.SpeedGrade) Config {
	return Config{
		Timing:       ddr4.NewTiming(g),
		Banks:        16,
		Rows:         1 << 15,
		BurstsPerRow: 128, // 8 KB rows
		StandardTRFC: ddr4.Density8Gb.StandardTRFC(),
	}
}

// Device is one DRAM rank.
type Device struct {
	k    *sim.Kernel
	cfg  Config
	bank []bank

	// Refresh state.
	refreshStart sim.Time
	refreshBusy  bool // true during [refreshStart, refreshStart+StandardTRFC)
	refreshRow   int  // internal refresh address counter (§II-B)
	refreshCount uint64

	// Self-refresh: the device refreshes itself with CKE low; every command
	// except SRX is illegal until exit.
	selfRefresh bool

	pages map[int64]*[PageSize]byte

	violations []Violation
	// ViolationLimit caps recorded violations to bound memory in adversarial
	// tests; further violations are counted but not stored.
	ViolationLimit  int
	violationsTotal uint64

	reads, writes uint64
}

// New returns an idle device with all banks precharged.
func New(k *sim.Kernel, cfg Config) *Device {
	if cfg.Banks <= 0 || cfg.Rows <= 0 || cfg.BurstsPerRow <= 0 {
		panic("dram: invalid geometry")
	}
	d := &Device{
		k:              k,
		cfg:            cfg,
		bank:           make([]bank, cfg.Banks),
		pages:          make(map[int64]*[PageSize]byte),
		ViolationLimit: 1024,
	}
	// Banks come out of initialization precharged in the distant past so
	// that tRP checks do not fire on the first ACTIVATE.
	farPast := sim.Time(-1 << 50)
	for i := range d.bank {
		d.bank[i].lastPRE = farPast
		d.bank[i].lastACT = farPast
	}
	return d
}

// Capacity returns the device capacity in bytes.
func (d *Device) Capacity() int64 {
	return int64(d.cfg.Banks) * int64(d.cfg.Rows) * int64(d.cfg.BurstsPerRow) * ddr4.BurstBytes
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Violations returns the recorded protocol violations.
func (d *Device) Violations() []Violation { return d.violations }

// ViolationCount returns the total violations observed (including any beyond
// the recording cap).
func (d *Device) ViolationCount() uint64 { return d.violationsTotal }

// RefreshCount returns the number of REF commands executed.
func (d *Device) RefreshCount() uint64 { return d.refreshCount }

// Stats returns the read and write burst counts.
func (d *Device) Stats() (reads, writes uint64) { return d.reads, d.writes }

func (d *Device) violate(cmd ddr4.Command, format string, args ...interface{}) {
	d.violationsTotal++
	if len(d.violations) < d.ViolationLimit {
		d.violations = append(d.violations, Violation{
			At:   d.k.Now(),
			Cmd:  cmd,
			Desc: fmt.Sprintf(format, args...),
		})
	}
	if d.cfg.PoisonOnViolation && (cmd.Kind == ddr4.CmdRead || cmd.Kind == ddr4.CmdWrite) {
		addr := d.burstAddr(cmd.Bank, d.bank[cmd.Bank].openRow, cmd.Col)
		var poison [ddr4.BurstBytes]byte
		for i := range poison {
			poison[i] = 0xDE
		}
		d.copyIn(addr, poison[:])
	}
}

// InRefresh reports whether the device is internally busy refreshing (the
// standard-tRFC portion). No access of any kind is legal during this time.
func (d *Device) InRefresh() bool {
	return d.refreshBusy && d.k.Now() < d.refreshStart.Add(d.cfg.StandardTRFC)
}

// InExtraWindow reports whether now falls in the NVMC's access window: after
// the device finished its internal refresh but before the host's programmed
// tRFC expires (so the host iMC is still holding off).
func (d *Device) InExtraWindow() bool {
	if !d.refreshBusy {
		return false
	}
	now := d.k.Now()
	return now >= d.refreshStart.Add(d.cfg.StandardTRFC) &&
		now < d.refreshStart.Add(d.cfg.Timing.TRFC)
}

// LastRefreshStart returns when the most recent REF was received.
func (d *Device) LastRefreshStart() sim.Time { return d.refreshStart }

// ExtraWindow returns the [start, end) of the NVMC window for the most
// recent refresh.
func (d *Device) ExtraWindow() (start, end sim.Time) {
	return d.refreshStart.Add(d.cfg.StandardTRFC), d.refreshStart.Add(d.cfg.Timing.TRFC)
}

// Apply executes one command at the current simulation instant, enforcing
// the protocol rules relevant to the NVDIMM-C mechanism.
func (d *Device) Apply(cmd ddr4.Command) {
	now := d.k.Now()
	t := d.cfg.Timing

	// Rule: in self-refresh only SRX (and deselect/NOP) is legal.
	if d.selfRefresh {
		switch cmd.Kind {
		case ddr4.CmdSelfRefreshExit:
			d.selfRefresh = false
		case ddr4.CmdDeselect, ddr4.CmdNOP:
		default:
			d.violate(cmd, "command during self-refresh")
		}
		return
	}
	// Rule: during the device's internal refresh no command is valid
	// (§II-B: "any request to DRAM cannot be valid during the refresh").
	if d.InRefresh() && cmd.Kind != ddr4.CmdDeselect && cmd.Kind != ddr4.CmdNOP {
		d.violate(cmd, "command during internal refresh (refresh started %v)", d.refreshStart)
		return
	}
	if d.refreshBusy && now >= d.refreshStart.Add(t.TRFC) {
		d.refreshBusy = false
	}

	switch cmd.Kind {
	case ddr4.CmdDeselect, ddr4.CmdNOP:
		return

	case ddr4.CmdActivate:
		b := d.checkBank(cmd)
		if b == nil {
			return
		}
		if b.state == BankActive {
			d.violate(cmd, "ACT to bank with open row %d", b.openRow)
			return
		}
		if cmd.Row < 0 || cmd.Row >= d.cfg.Rows {
			d.violate(cmd, "row %d out of range", cmd.Row)
			return
		}
		if now < b.lastPRE.Add(t.TRP) {
			d.violate(cmd, "tRP violation: ACT %v after PRE (need %v)", now.Sub(b.lastPRE), t.TRP)
		}
		b.state = BankActive
		b.openRow = cmd.Row
		b.lastACT = now
		b.readyAt = now.Add(t.TRCD)

	case ddr4.CmdRead, ddr4.CmdWrite:
		b := d.checkBank(cmd)
		if b == nil {
			return
		}
		if b.state != BankActive {
			d.violate(cmd, "CAS to precharged bank")
			return
		}
		if now < b.readyAt {
			d.violate(cmd, "tRCD violation: CAS %v after ACT (need %v)", now.Sub(b.lastACT), t.TRCD)
		}
		if cmd.Col < 0 || cmd.Col >= d.cfg.BurstsPerRow {
			d.violate(cmd, "column %d out of range", cmd.Col)
			return
		}
		if cmd.Kind == ddr4.CmdRead {
			d.reads++
		} else {
			d.writes++
		}
		if cmd.AutoPrecharge {
			b.state = BankIdle
			b.lastPRE = now.Add(t.TRTP)
		}

	case ddr4.CmdPrecharge:
		b := d.checkBank(cmd)
		if b == nil {
			return
		}
		if b.state == BankActive && now < b.lastACT.Add(t.TRAS) {
			d.violate(cmd, "tRAS violation: PRE %v after ACT (need %v)", now.Sub(b.lastACT), t.TRAS)
		}
		b.state = BankIdle
		b.lastPRE = now

	case ddr4.CmdPrechargeAll:
		for i := range d.bank {
			b := &d.bank[i]
			if b.state == BankActive && now < b.lastACT.Add(t.TRAS) {
				d.violate(cmd, "tRAS violation on bank %d during PREA", i)
			}
			b.state = BankIdle
			b.lastPRE = now
		}

	case ddr4.CmdRefresh:
		// JEDEC: all banks must be precharged before REF (§III-B: DDR4 has
		// no per-bank refresh, controllers issue PREA first).
		for i := range d.bank {
			if d.bank[i].state == BankActive {
				d.violate(cmd, "REF with bank %d open", i)
				d.bank[i].state = BankIdle
			}
		}
		d.refreshBusy = true
		d.refreshStart = now
		d.refreshCount++
		d.refreshRow = (d.refreshRow + 1) % d.cfg.Rows

	case ddr4.CmdSelfRefreshEntry:
		// All banks must be precharged; the device then refreshes itself.
		for i := range d.bank {
			if d.bank[i].state == BankActive {
				d.violate(cmd, "SRE with bank %d open", i)
				d.bank[i].state = BankIdle
			}
		}
		d.selfRefresh = true

	case ddr4.CmdSelfRefreshExit:
		d.violate(cmd, "SRX while not in self-refresh")

	case ddr4.CmdZQCal, ddr4.CmdMRS:
		// Accepted; no state modeled beyond legality of timing (not needed
		// by the experiments).
	}
}

// WarpIdleRefreshCycles credits m idle PREA+REF cycles without applying
// the commands, the last REF landing at rLast: banks end precharged at
// rLast, the refresh engine ends mid-cycle at rLast (refreshBusy, as a
// real REF leaves it until the next command's lazy clear), the internal
// refresh address advances m rows, and pollBursts read bursts per cycle
// (the NVMC's window polls) are counted. The caller owns the proof that
// the warped cycles were violation-free: banks already precharged, no
// competing traffic.
func (d *Device) WarpIdleRefreshCycles(m uint64, rLast sim.Time, pollBursts uint64) {
	if m == 0 {
		return
	}
	for i := range d.bank {
		d.bank[i].state = BankIdle
		d.bank[i].lastPRE = rLast
	}
	d.refreshBusy = true
	d.refreshStart = rLast
	d.refreshCount += m
	d.refreshRow = int((int64(d.refreshRow) + int64(m%uint64(d.cfg.Rows))) % int64(d.cfg.Rows))
	d.reads += m * pollBursts
}

// Peek copies bytes out of the backing store with no access accounting and
// no protocol checks — a diagnostic read the simulated machine never sees.
// The idle-warp eligibility check uses it to decode CP slots without
// perturbing the burst counters.
func (d *Device) Peek(addr int64, buf []byte) error {
	if addr < 0 || addr+int64(len(buf)) > d.Capacity() {
		return fmt.Errorf("dram: peek [%d,%d) outside capacity %d", addr, addr+int64(len(buf)), d.Capacity())
	}
	d.copyOut(addr, buf)
	return nil
}

func (d *Device) checkBank(cmd ddr4.Command) *bank {
	if cmd.Bank < 0 || cmd.Bank >= d.cfg.Banks {
		d.violate(cmd, "bank %d out of range", cmd.Bank)
		return nil
	}
	return &d.bank[cmd.Bank]
}

// InSelfRefresh reports whether the device is in self-refresh.
func (d *Device) InSelfRefresh() bool { return d.selfRefresh }

// BankState returns the state and open row of bank i.
func (d *Device) BankState(i int) (BankState, int) {
	return d.bank[i].state, d.bank[i].openRow
}

// AddrToBRC inverts the burst address mapping: the (bank, row, column)
// coordinates whose burst covers flat byte address addr. Used by the
// command-level host path to drive real ACT/RD/WR/PRE sequences.
func (d *Device) AddrToBRC(addr int64) (bank, row, col int) {
	burst := addr / ddr4.BurstBytes
	col = int(burst % int64(d.cfg.BurstsPerRow))
	t := burst / int64(d.cfg.BurstsPerRow)
	bank = int(t % int64(d.cfg.Banks))
	row = int(t / int64(d.cfg.Banks))
	return
}

// burstAddr maps (bank,row,col) to a flat byte address.
func (d *Device) burstAddr(bankIdx, row, col int) int64 {
	return ((int64(row)*int64(d.cfg.Banks)+int64(bankIdx))*int64(d.cfg.BurstsPerRow) + int64(col)) * ddr4.BurstBytes
}

// --- Transfer-level data access -----------------------------------------

func (d *Device) page(addr int64) *[PageSize]byte {
	pn := addr / PageSize
	p := d.pages[pn]
	if p == nil {
		p = new([PageSize]byte)
		d.pages[pn] = p
	}
	return p
}

func (d *Device) copyIn(addr int64, data []byte) {
	for len(data) > 0 {
		p := d.page(addr)
		off := int(addr % PageSize)
		n := copy(p[off:], data)
		data = data[n:]
		addr += int64(n)
	}
}

func (d *Device) copyOut(addr int64, buf []byte) {
	for len(buf) > 0 {
		p := d.page(addr)
		off := int(addr % PageSize)
		n := copy(buf, p[off:])
		buf = buf[n:]
		addr += int64(n)
	}
}

// CopyIn writes data at the flat byte address. Callers are responsible for
// bus-occupancy accounting; the device only checks the address range.
func (d *Device) CopyIn(addr int64, data []byte) error {
	if addr < 0 || addr+int64(len(data)) > d.Capacity() {
		return fmt.Errorf("dram: write [%d,%d) outside capacity %d", addr, addr+int64(len(data)), d.Capacity())
	}
	d.writes += uint64((len(data) + ddr4.BurstBytes - 1) / ddr4.BurstBytes)
	d.copyIn(addr, data)
	return nil
}

// CopyOut reads len(buf) bytes from the flat byte address into buf.
func (d *Device) CopyOut(addr int64, buf []byte) error {
	if addr < 0 || addr+int64(len(buf)) > d.Capacity() {
		return fmt.Errorf("dram: read [%d,%d) outside capacity %d", addr, addr+int64(len(buf)), d.Capacity())
	}
	d.reads += uint64((len(buf) + ddr4.BurstBytes - 1) / ddr4.BurstBytes)
	d.copyOut(addr, buf)
	return nil
}

// TouchedPages reports how many 4 KB pages have backing storage allocated.
func (d *Device) TouchedPages() int { return len(d.pages) }
