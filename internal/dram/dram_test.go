package dram

import (
	"bytes"
	"testing"
	"testing/quick"

	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/sim"
)

func newDev() (*sim.Kernel, *Device) {
	k := sim.NewKernel()
	cfg := DefaultConfig(ddr4.DDR4_1600)
	cfg.Rows = 256 // keep tests small
	return k, New(k, cfg)
}

func at(k *sim.Kernel, d sim.Duration, fn func()) {
	k.Schedule(d, fn)
}

func TestActivateReadPrechargeLegal(t *testing.T) {
	k, d := newDev()
	tm := d.Config().Timing
	at(k, 0, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdActivate, Bank: 2, Row: 7}) })
	at(k, tm.TRCD, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdRead, Bank: 2, Col: 3}) })
	at(k, tm.TRAS+tm.TCK, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdPrecharge, Bank: 2}) })
	k.Run()
	if n := d.ViolationCount(); n != 0 {
		t.Fatalf("violations = %d: %v", n, d.Violations())
	}
	if r, _ := d.Stats(); r != 1 {
		t.Fatalf("reads = %d, want 1", r)
	}
}

func TestCASWithoutActivateViolates(t *testing.T) {
	k, d := newDev()
	at(k, 0, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdRead, Bank: 0, Col: 0}) })
	k.Run()
	if d.ViolationCount() != 1 {
		t.Fatalf("violations = %d, want 1", d.ViolationCount())
	}
}

func TestDoubleActivateViolates(t *testing.T) {
	k, d := newDev()
	at(k, 0, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdActivate, Bank: 0, Row: 1}) })
	at(k, 100*sim.Nanosecond, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdActivate, Bank: 0, Row: 2}) })
	k.Run()
	if d.ViolationCount() != 1 {
		t.Fatalf("violations = %d, want 1", d.ViolationCount())
	}
	// Fig 2 case C2: the original row must still be the open one.
	if st, row := d.BankState(0); st != BankActive || row != 1 {
		t.Fatalf("bank state = %v row %d, want active row 1", st, row)
	}
}

func TestTRCDViolation(t *testing.T) {
	k, d := newDev()
	at(k, 0, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdActivate, Bank: 0, Row: 1}) })
	at(k, sim.Nanosecond, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdRead, Bank: 0, Col: 0}) })
	k.Run()
	if d.ViolationCount() != 1 {
		t.Fatalf("violations = %d, want 1 (tRCD)", d.ViolationCount())
	}
}

func TestEarlyPrechargeViolatesTRAS(t *testing.T) {
	k, d := newDev()
	at(k, 0, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdActivate, Bank: 0, Row: 1}) })
	at(k, 2*sim.Nanosecond, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdPrecharge, Bank: 0}) })
	k.Run()
	if d.ViolationCount() != 1 {
		t.Fatalf("violations = %d, want 1 (tRAS)", d.ViolationCount())
	}
}

func TestRefreshBlocksAllCommands(t *testing.T) {
	k, d := newDev()
	at(k, 0, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdPrechargeAll}) })
	at(k, 10*sim.Nanosecond, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdRefresh}) })
	// 100 ns after REF: still inside the 350 ns internal refresh.
	at(k, 110*sim.Nanosecond, func() {
		if !d.InRefresh() {
			t.Error("expected InRefresh during standard tRFC")
		}
		d.Apply(ddr4.Command{Kind: ddr4.CmdActivate, Bank: 0, Row: 0})
	})
	k.Run()
	if d.ViolationCount() != 1 {
		t.Fatalf("violations = %d, want 1 (command during refresh)", d.ViolationCount())
	}
}

func TestExtraWindowAfterStandardTRFC(t *testing.T) {
	_, d := newDev()
	// Program an extended tRFC of 1250 ns like the PoC (§IV-A).
	cfg := d.Config()
	if cfg.Timing.TRFC != 350*sim.Nanosecond {
		t.Fatalf("default programmed tRFC = %v", cfg.Timing.TRFC)
	}
	k2 := sim.NewKernel()
	cfg.Timing.TRFC = 1250 * sim.Nanosecond
	d = New(k2, cfg)
	at(k2, 0, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdRefresh}) })
	at(k2, 100*sim.Nanosecond, func() {
		if d.InExtraWindow() {
			t.Error("extra window open during internal refresh")
		}
	})
	at(k2, 400*sim.Nanosecond, func() {
		if d.InRefresh() {
			t.Error("internal refresh should be done at 400ns")
		}
		if !d.InExtraWindow() {
			t.Error("extra window should be open at 400ns")
		}
	})
	at(k2, 1300*sim.Nanosecond, func() {
		if d.InExtraWindow() {
			t.Error("extra window should be closed at 1300ns")
		}
	})
	k2.Run()
	s, e := d.ExtraWindow()
	if e.Sub(s) != 900*sim.Nanosecond {
		t.Fatalf("extra window = %v, want 900ns", e.Sub(s))
	}
}

func TestRefreshWithOpenBankViolates(t *testing.T) {
	k, d := newDev()
	at(k, 0, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdActivate, Bank: 5, Row: 1}) })
	at(k, 100*sim.Nanosecond, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdRefresh}) })
	k.Run()
	if d.ViolationCount() != 1 {
		t.Fatalf("violations = %d, want 1 (REF with open bank)", d.ViolationCount())
	}
}

func TestPREAClosesAllBanks(t *testing.T) {
	k, d := newDev()
	at(k, 0, func() {
		d.Apply(ddr4.Command{Kind: ddr4.CmdActivate, Bank: 1, Row: 1})
		d.Apply(ddr4.Command{Kind: ddr4.CmdActivate, Bank: 9, Row: 2})
	})
	at(k, 40*sim.Nanosecond, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdPrechargeAll}) })
	k.Run()
	for i := 0; i < d.Config().Banks; i++ {
		if st, _ := d.BankState(i); st != BankIdle {
			t.Fatalf("bank %d still open after PREA", i)
		}
	}
	if d.ViolationCount() != 0 {
		t.Fatalf("violations = %d: %v", d.ViolationCount(), d.Violations())
	}
}

func TestCopyRoundTrip(t *testing.T) {
	_, d := newDev()
	msg := []byte("nvdimm-c dram frontend")
	if err := d.CopyIn(12345, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := d.CopyOut(12345, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip: got %q want %q", got, msg)
	}
}

func TestCopyCrossesPages(t *testing.T) {
	_, d := newDev()
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	addr := int64(PageSize - 100) // straddles boundaries
	if err := d.CopyIn(addr, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := d.CopyOut(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round trip mismatch")
	}
	if d.TouchedPages() < 3 {
		t.Fatalf("touched pages = %d, want >= 3", d.TouchedPages())
	}
}

func TestCopyOutOfRange(t *testing.T) {
	_, d := newDev()
	if err := d.CopyIn(d.Capacity()-10, make([]byte, 20)); err == nil {
		t.Error("write past capacity accepted")
	}
	if err := d.CopyOut(-1, make([]byte, 1)); err == nil {
		t.Error("negative read accepted")
	}
}

func TestUntouchedReadsZero(t *testing.T) {
	_, d := newDev()
	buf := make([]byte, 64)
	buf[0] = 0xFF
	if err := d.CopyOut(777777, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

// Property: any CopyIn/CopyOut sequence behaves like a flat byte array.
func TestCopyPropertyVsReference(t *testing.T) {
	type op struct {
		Addr uint32
		Data []byte
	}
	f := func(ops []op) bool {
		_, d := newDev()
		ref := make(map[int64]byte)
		capy := d.Capacity()
		for _, o := range ops {
			if len(o.Data) == 0 || len(o.Data) > 512 {
				continue
			}
			addr := int64(o.Addr) % (capy - int64(len(o.Data)))
			if addr < 0 {
				addr = 0
			}
			if err := d.CopyIn(addr, o.Data); err != nil {
				return false
			}
			for i, b := range o.Data {
				ref[addr+int64(i)] = b
			}
		}
		for a, want := range ref {
			var got [1]byte
			if err := d.CopyOut(a, got[:]); err != nil || got[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRefreshCounter(t *testing.T) {
	k, d := newDev()
	for i := 0; i < 5; i++ {
		at(k, sim.Duration(i)*10*sim.Microsecond, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdRefresh}) })
	}
	k.Run()
	if d.RefreshCount() != 5 {
		t.Fatalf("refresh count = %d, want 5", d.RefreshCount())
	}
}

func TestPoisonOnViolation(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig(ddr4.DDR4_1600)
	cfg.Rows = 64
	cfg.PoisonOnViolation = true
	d := New(k, cfg)
	// Write valid data at the burst that bank0/row0/col0 maps to.
	if err := d.CopyIn(0, bytes.Repeat([]byte{0xAB}, 64)); err != nil {
		t.Fatal(err)
	}
	// CAS to a precharged bank: violation, poisons target burst.
	at(k, 0, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdWrite, Bank: 0, Col: 0}) })
	k.Run()
	got := make([]byte, 64)
	if err := d.CopyOut(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xDE {
		t.Fatalf("expected poisoned data, got %#x", got[0])
	}
}

// Property: the device's legality verdicts match a simple reference model
// over random command sequences (commands spaced far enough apart that only
// structural rules — not fine timing — apply).
func TestProtocolVsReferenceProperty(t *testing.T) {
	type step struct {
		Kind byte
		Bank uint8
		Row  uint16
	}
	f := func(steps []step) bool {
		k := sim.NewKernel()
		cfg := DefaultConfig(ddr4.DDR4_1600)
		cfg.Rows = 128
		d := New(k, cfg)
		// Reference state: open row per bank, -1 closed; refresh in flight.
		open := make([]int, cfg.Banks)
		for i := range open {
			open[i] = -1
		}
		wantViolations := uint64(0)
		now := sim.Duration(0)
		for _, st := range steps {
			now += 10 * sim.Microsecond // beyond all fine timings and tRFC
			bank := int(st.Bank) % cfg.Banks
			row := int(st.Row) % cfg.Rows
			var cmd ddr4.Command
			switch st.Kind % 4 {
			case 0: // ACT
				cmd = ddr4.Command{Kind: ddr4.CmdActivate, Bank: bank, Row: row}
				if open[bank] >= 0 {
					wantViolations++
				} else {
					open[bank] = row
				}
			case 1: // RD
				cmd = ddr4.Command{Kind: ddr4.CmdRead, Bank: bank, Col: 0}
				if open[bank] < 0 {
					wantViolations++
				}
			case 2: // PRE
				cmd = ddr4.Command{Kind: ddr4.CmdPrecharge, Bank: bank}
				open[bank] = -1
			case 3: // REF (requires all banks closed)
				cmd = ddr4.Command{Kind: ddr4.CmdRefresh}
				for i := range open {
					if open[i] >= 0 {
						wantViolations++
						open[i] = -1
					}
				}
			}
			c := cmd
			k.Schedule(now, func() { d.Apply(c) })
		}
		k.Run()
		return d.ViolationCount() == wantViolations
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
