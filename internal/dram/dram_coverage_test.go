package dram

import (
	"strings"
	"testing"

	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/sim"
)

func TestViolationString(t *testing.T) {
	k, d := newDev()
	at(k, 0, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdRead, Bank: 0, Col: 0}) })
	k.Run()
	vs := d.Violations()
	if len(vs) != 1 {
		t.Fatalf("violations: %v", vs)
	}
	s := vs[0].String()
	if !strings.Contains(s, "precharged") {
		t.Fatalf("violation string %q missing description", s)
	}
}

func TestSelfRefreshLifecycle(t *testing.T) {
	k, d := newDev()
	at(k, 0, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdSelfRefreshEntry}) })
	at(k, 1*sim.Microsecond, func() {
		if !d.InSelfRefresh() {
			t.Error("not in self-refresh after SRE")
		}
		// NOP/deselect are the only legal commands besides SRX.
		d.Apply(ddr4.Command{Kind: ddr4.CmdNOP})
		d.Apply(ddr4.Command{Kind: ddr4.CmdDeselect})
		if d.ViolationCount() != 0 {
			t.Errorf("NOP/DES during self-refresh flagged: %v", d.Violations())
		}
		d.Apply(ddr4.Command{Kind: ddr4.CmdActivate, Bank: 0, Row: 0})
		if d.ViolationCount() != 1 {
			t.Errorf("ACT during self-refresh not flagged")
		}
	})
	at(k, 2*sim.Microsecond, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdSelfRefreshExit}) })
	at(k, 3*sim.Microsecond, func() {
		if d.InSelfRefresh() {
			t.Error("still in self-refresh after SRX")
		}
		// SRX with the device awake is itself illegal.
		d.Apply(ddr4.Command{Kind: ddr4.CmdSelfRefreshExit})
		if d.ViolationCount() != 2 {
			t.Errorf("stray SRX not flagged: %v", d.Violations())
		}
	})
	k.Run()
}

func TestSREWithOpenBankViolates(t *testing.T) {
	k, d := newDev()
	at(k, 0, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdActivate, Bank: 3, Row: 9}) })
	at(k, 100*sim.Nanosecond, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdSelfRefreshEntry}) })
	k.Run()
	if d.ViolationCount() != 1 {
		t.Fatalf("violations = %d, want 1: %v", d.ViolationCount(), d.Violations())
	}
	if st, _ := d.BankState(3); st != BankIdle {
		t.Fatal("SRE did not force the open bank idle")
	}
}

func TestLastRefreshStart(t *testing.T) {
	k, d := newDev()
	refAt := sim.Time(0).Add(5 * sim.Microsecond)
	at(k, 5*sim.Microsecond, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdRefresh}) })
	k.Run()
	if got := d.LastRefreshStart(); got != refAt {
		t.Fatalf("LastRefreshStart = %v, want %v", got, refAt)
	}
	start, end := d.ExtraWindow()
	if start != refAt.Add(d.Config().StandardTRFC) || end != refAt.Add(d.Config().Timing.TRFC) {
		t.Fatalf("ExtraWindow = [%v, %v)", start, end)
	}
}

func TestAddrToBRCRoundTrip(t *testing.T) {
	_, d := newDev()
	for _, addr := range []int64{0, ddr4.BurstBytes, d.Capacity() / 2, d.Capacity() - ddr4.BurstBytes} {
		bank, row, col := d.AddrToBRC(addr)
		if bank < 0 || bank >= d.Config().Banks || row < 0 || row >= d.Config().Rows || col < 0 || col >= d.Config().BurstsPerRow {
			t.Fatalf("AddrToBRC(%d) = %d/%d/%d out of geometry", addr, bank, row, col)
		}
		if back := d.burstAddr(bank, row, col); back != addr {
			t.Fatalf("round trip %d -> (%d,%d,%d) -> %d", addr, bank, row, col, back)
		}
	}
}

func TestBankOutOfRangeViolates(t *testing.T) {
	k, d := newDev()
	at(k, 0, func() {
		d.Apply(ddr4.Command{Kind: ddr4.CmdActivate, Bank: -1, Row: 0})
		d.Apply(ddr4.Command{Kind: ddr4.CmdRead, Bank: d.Config().Banks, Col: 0})
		d.Apply(ddr4.Command{Kind: ddr4.CmdPrecharge, Bank: 99})
	})
	k.Run()
	if d.ViolationCount() != 3 {
		t.Fatalf("violations = %d, want 3: %v", d.ViolationCount(), d.Violations())
	}
}

func TestRowColumnRangeViolations(t *testing.T) {
	k, d := newDev()
	tm := d.Config().Timing
	at(k, 0, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdActivate, Bank: 0, Row: d.Config().Rows}) })
	at(k, tm.TCK, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdActivate, Bank: 0, Row: 1}) })
	at(k, tm.TCK+tm.TRCD, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdRead, Bank: 0, Col: d.Config().BurstsPerRow}) })
	k.Run()
	if d.ViolationCount() != 2 {
		t.Fatalf("violations = %d, want 2 (row + column range): %v", d.ViolationCount(), d.Violations())
	}
}

func TestTRPViolation(t *testing.T) {
	k, d := newDev()
	tm := d.Config().Timing
	at(k, 0, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdActivate, Bank: 0, Row: 1}) })
	at(k, tm.TRAS+tm.TCK, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdPrecharge, Bank: 0}) })
	// Re-activate immediately: tRP cannot have elapsed.
	at(k, tm.TRAS+2*tm.TCK, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdActivate, Bank: 0, Row: 2}) })
	k.Run()
	if d.ViolationCount() != 1 || !strings.Contains(d.Violations()[0].Desc, "tRP") {
		t.Fatalf("violations: %v", d.Violations())
	}
}

func TestAutoPrechargeClosesBank(t *testing.T) {
	k, d := newDev()
	tm := d.Config().Timing
	at(k, 0, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdActivate, Bank: 1, Row: 4}) })
	at(k, tm.TRCD, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdWrite, Bank: 1, Col: 2, AutoPrecharge: true}) })
	k.Run()
	if st, _ := d.BankState(1); st != BankIdle {
		t.Fatal("WRA left the bank open")
	}
	if _, w := d.Stats(); w != 1 {
		t.Fatalf("writes = %d, want 1", w)
	}
	if d.ViolationCount() != 0 {
		t.Fatalf("violations: %v", d.Violations())
	}
}

func TestPREAEarlyTRASViolates(t *testing.T) {
	k, d := newDev()
	at(k, 0, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdActivate, Bank: 2, Row: 1}) })
	at(k, 1*sim.Nanosecond, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdPrechargeAll}) })
	k.Run()
	if d.ViolationCount() != 1 || !strings.Contains(d.Violations()[0].Desc, "tRAS") {
		t.Fatalf("violations: %v", d.Violations())
	}
	if st, _ := d.BankState(2); st != BankIdle {
		t.Fatal("PREA did not close the bank")
	}
}

func TestZQCalAndMRSAccepted(t *testing.T) {
	k, d := newDev()
	at(k, 0, func() {
		d.Apply(ddr4.Command{Kind: ddr4.CmdZQCal})
		d.Apply(ddr4.Command{Kind: ddr4.CmdMRS})
	})
	k.Run()
	if d.ViolationCount() != 0 {
		t.Fatalf("housekeeping commands flagged: %v", d.Violations())
	}
}

// TestRefreshBusyClearsAfterTRFC covers the lazy refreshBusy reset: the
// first command after the programmed tRFC expires clears the refresh state,
// so the extra window is provably closed.
func TestRefreshBusyClearsAfterTRFC(t *testing.T) {
	k, d := newDev()
	trfc := d.Config().Timing.TRFC
	at(k, 0, func() { d.Apply(ddr4.Command{Kind: ddr4.CmdRefresh}) })
	at(k, sim.Duration(trfc)+sim.Nanosecond, func() {
		if d.InExtraWindow() {
			t.Error("extra window still open past programmed tRFC")
		}
		d.Apply(ddr4.Command{Kind: ddr4.CmdActivate, Bank: 0, Row: 0})
	})
	k.Run()
	if d.ViolationCount() != 0 {
		t.Fatalf("post-tRFC ACT flagged: %v", d.Violations())
	}
}

func TestViolationRecordCap(t *testing.T) {
	k, d := newDev()
	d.ViolationLimit = 2
	at(k, 0, func() {
		for i := 0; i < 5; i++ {
			d.Apply(ddr4.Command{Kind: ddr4.CmdRead, Bank: 0, Col: 0})
		}
	})
	k.Run()
	if len(d.Violations()) != 2 || d.ViolationCount() != 5 {
		t.Fatalf("recorded %d / counted %d, want 2 / 5", len(d.Violations()), d.ViolationCount())
	}
}
