// Package fault is the deterministic fault-injection registry every device
// model in the simulated machine consults. The paper's contribution is a
// module that survives a hostile interface — collisions, stale cachelines, a
// weak persistence domain (§V-C) — and real PM studies show media/firmware
// error handling dominates tail behaviour, so the error paths need to be
// exercisable on demand, not just on the happy path.
//
// A Registry holds rules keyed by injection Site (a stable string naming one
// hardware failure point, e.g. "nand.program.fail"). Three rule shapes cover
// the fault-model space:
//
//   - point faults (Always): fire on every occurrence of the site;
//   - probabilistic faults (Prob): fire per-occurrence with probability p,
//     drawn from the registry's single seeded RNG;
//   - one-shot faults (OnOccurrence, AtTime): fire exactly once, at an exact
//     site occurrence count or at the first consult at/after an exact
//     sim.Time.
//
// Every random draw comes from one xorshift RNG seeded at construction, and
// consult order inside the discrete-event simulation is deterministic, so any
// fault run — including the crash-consistency sweep — is reproducible from
// the single seed the failure output prints.
//
// Models consult sites through the nil-safe Fires/FiresParam so an unfaulted
// build pays only a nil check.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"nvdimmc/internal/sim"
)

// Site names one injection point in a device model.
type Site string

// The site catalog. Each constant is consulted by exactly one model; the
// string form appears in failure output and in Registry.String().
const (
	// NANDReadBitFlip injects raw bit errors into one page read. The rule
	// param is the number of flipped bits (0 means one beyond the ECC
	// correction budget, i.e. an uncorrectable codeword).
	NANDReadBitFlip Site = "nand.read.bitflip"
	// NANDProgramFail fails one page program (grown-bad-block behaviour).
	NANDProgramFail Site = "nand.program.fail"
	// NANDEraseFail fails one block erase.
	NANDEraseFail Site = "nand.erase.fail"
	// NANDDieTimeout multiplies one die operation's latency by the rule
	// param (default 400x), modelling a die that stops responding for a
	// while — long enough to trip the driver's ack deadline.
	NANDDieTimeout Site = "nand.die.timeout"
	// CPAckDrop makes the NVMC complete a command without ever posting its
	// ack word (the driver's poll loop sees silence).
	CPAckDrop Site = "cp.ack.drop"
	// CPAckCorrupt flips one bit of the posted ack word so the driver's
	// checksum validation rejects it.
	CPAckCorrupt Site = "cp.ack.corrupt"
	// NVMCFirmwareStall freezes the firmware for param microseconds
	// (default 2000) between command poll and dispatch.
	NVMCFirmwareStall Site = "nvmc.firmware.stall"
	// NVMCWindowOverrun aborts one data transfer at the window boundary;
	// the FSM retries it in the next extra-tRFC window.
	NVMCWindowOverrun Site = "nvmc.window.overrun"
	// BusSnoopDrop drops one CA-bus sample before it reaches the snoop taps
	// (a transient deserializer glitch; a dropped REF costs one window).
	BusSnoopDrop Site = "bus.snoop.drop"
	// RefdetSampleFlip flips one sampled CA pin level inside the refresh
	// detector (the migrated home of refdet's ad-hoc bit-error-rate knob).
	RefdetSampleFlip Site = "refdet.sample.flip"
)

// Rule is one armed fault. Returned by the install methods so callers can
// chain Param/Times refinements.
type Rule struct {
	site  Site
	prob  float64 // probabilistic when > 0
	onNth uint64  // fires from the Nth occurrence (1-based) when > 0
	at    sim.Time
	hasAt bool
	param int64

	maxFires uint64 // 0 = unlimited
	fired    uint64
}

// Param attaches a site-specific payload to the rule (bit count for
// NANDReadBitFlip, latency multiplier for NANDDieTimeout, stall microseconds
// for NVMCFirmwareStall). Returns the rule for chaining.
func (r *Rule) Param(v int64) *Rule {
	r.param = v
	return r
}

// Times caps how often the rule fires. One-shot rules default to 1; Always
// and Prob rules default to unlimited. OnOccurrence(n).Times(3) fires on
// occurrences n, n+1 and n+2.
func (r *Rule) Times(n uint64) *Rule {
	r.maxFires = n
	return r
}

// Fired reports how many times this rule has fired.
func (r *Rule) Fired() uint64 { return r.fired }

func (r *Rule) String() string {
	switch {
	case r.prob > 0:
		return fmt.Sprintf("%s prob=%g", r.site, r.prob)
	case r.onNth > 0:
		return fmt.Sprintf("%s on-occurrence=%d times=%d", r.site, r.onNth, r.maxFires)
	case r.hasAt:
		return fmt.Sprintf("%s at=%v", r.site, r.at)
	default:
		return fmt.Sprintf("%s always", r.site)
	}
}

// Registry holds the armed rules and the one seeded RNG all probabilistic
// draws come from. The zero value is not usable; a nil *Registry is inert
// (all consults report no fault), so models hold one unconditionally.
type Registry struct {
	k    *sim.Kernel
	seed uint64
	rng  *sim.Rand

	rules      map[Site][]*Rule
	hits       map[Site]uint64
	firedTotal uint64
}

// NewRegistry returns an empty registry bound to kernel k (AtTime rules read
// its clock) and seeded with seed.
func NewRegistry(k *sim.Kernel, seed uint64) *Registry {
	return &Registry{
		k:     k,
		seed:  seed,
		rng:   sim.NewRand(seed),
		rules: make(map[Site][]*Rule),
		hits:  make(map[Site]uint64),
	}
}

// Seed returns the construction seed — print it in any failure output so the
// run can be replayed.
func (g *Registry) Seed() uint64 { return g.seed }

// Rand exposes the registry's seeded RNG for injectors that need payload
// randomness (e.g. which ack bit to corrupt) tied to the same seed.
func (g *Registry) Rand() *sim.Rand { return g.rng }

// Always arms a point fault: every occurrence of site fires.
func (g *Registry) Always(site Site) *Rule {
	return g.install(&Rule{site: site})
}

// Prob arms a probabilistic fault firing with probability p per occurrence.
func (g *Registry) Prob(site Site, p float64) *Rule {
	return g.install(&Rule{site: site, prob: p})
}

// OnOccurrence arms a one-shot fault firing at the site's nth consult
// (1-based) since the registry was armed.
func (g *Registry) OnOccurrence(site Site, n uint64) *Rule {
	return g.install(&Rule{site: site, onNth: n, maxFires: 1})
}

// AtTime arms a one-shot fault firing at the first consult of site at or
// after simulated instant t.
func (g *Registry) AtTime(site Site, t sim.Time) *Rule {
	return g.install(&Rule{site: site, at: t, hasAt: true, maxFires: 1})
}

func (g *Registry) install(r *Rule) *Rule {
	g.rules[r.site] = append(g.rules[r.site], r)
	return r
}

// Clear disarms every rule on site.
func (g *Registry) Clear(site Site) {
	delete(g.rules, site)
}

// Fires reports whether an armed rule fires for this occurrence of site.
// Each call counts one occurrence. Nil-safe: a nil registry never fires.
func (g *Registry) Fires(site Site) bool {
	ok, _ := g.FiresParam(site)
	return ok
}

// FiresParam is Fires plus the firing rule's param payload (0 if none).
func (g *Registry) FiresParam(site Site) (bool, int64) {
	if g == nil {
		return false, 0
	}
	g.hits[site]++
	n := g.hits[site]
	for _, r := range g.rules[site] {
		if r.maxFires > 0 && r.fired >= r.maxFires {
			continue
		}
		match := false
		switch {
		case r.prob > 0:
			match = g.rng.Float64() < r.prob
		case r.onNth > 0:
			match = n >= r.onNth
		case r.hasAt:
			match = g.k.Now() >= r.at
		default:
			match = true
		}
		if match {
			r.fired++
			g.firedTotal++
			return true, r.param
		}
	}
	return false, 0
}

// Hits reports how many times site has been consulted.
func (g *Registry) Hits(site Site) uint64 {
	if g == nil {
		return 0
	}
	return g.hits[site]
}

// Fired reports how many faults have fired on site.
func (g *Registry) Fired(site Site) uint64 {
	if g == nil {
		return 0
	}
	var n uint64
	for _, r := range g.rules[site] {
		n += r.fired
	}
	return n
}

// TotalFired reports faults fired across all sites. CheckHealth uses it to
// decide whether nonzero driver error counters are legitimate.
func (g *Registry) TotalFired() uint64 {
	if g == nil {
		return 0
	}
	return g.firedTotal
}

// String renders the registry for failure output: the replay seed plus every
// armed rule with its fire count.
func (g *Registry) String() string {
	if g == nil {
		return "fault registry: none"
	}
	var sites []string
	for s := range g.rules {
		sites = append(sites, string(s))
	}
	sort.Strings(sites)
	var b strings.Builder
	fmt.Fprintf(&b, "fault registry seed=%#x", g.seed)
	for _, s := range sites {
		for _, r := range g.rules[Site(s)] {
			fmt.Fprintf(&b, "; %v fired=%d/%d hits", r, r.fired, g.hits[Site(s)])
		}
	}
	return b.String()
}
