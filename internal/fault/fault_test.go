package fault

import (
	"strings"
	"testing"

	"nvdimmc/internal/sim"
)

func TestNilRegistryIsInert(t *testing.T) {
	var g *Registry
	if g.Fires(NANDProgramFail) {
		t.Fatal("nil registry fired")
	}
	if ok, _ := g.FiresParam(NANDReadBitFlip); ok {
		t.Fatal("nil registry fired with param")
	}
	if g.Hits(NANDProgramFail) != 0 || g.Fired(NANDProgramFail) != 0 || g.TotalFired() != 0 {
		t.Fatal("nil registry reported activity")
	}
	if !strings.Contains(g.String(), "none") {
		t.Fatalf("nil registry string: %q", g.String())
	}
}

func TestAlwaysFiresEveryOccurrence(t *testing.T) {
	g := NewRegistry(sim.NewKernel(), 1)
	g.Always(NANDProgramFail).Param(7)
	for i := 0; i < 5; i++ {
		ok, p := g.FiresParam(NANDProgramFail)
		if !ok || p != 7 {
			t.Fatalf("occurrence %d: fires=%v param=%d", i, ok, p)
		}
	}
	if g.Fired(NANDProgramFail) != 5 || g.Hits(NANDProgramFail) != 5 {
		t.Fatalf("fired=%d hits=%d", g.Fired(NANDProgramFail), g.Hits(NANDProgramFail))
	}
	// Unrelated sites stay silent.
	if g.Fires(NANDEraseFail) {
		t.Fatal("unarmed site fired")
	}
}

func TestOnOccurrenceIsOneShotAtExactCount(t *testing.T) {
	g := NewRegistry(sim.NewKernel(), 1)
	g.OnOccurrence(CPAckDrop, 3)
	var fires []int
	for i := 1; i <= 6; i++ {
		if g.Fires(CPAckDrop) {
			fires = append(fires, i)
		}
	}
	if len(fires) != 1 || fires[0] != 3 {
		t.Fatalf("fired at %v, want exactly [3]", fires)
	}
}

func TestTimesExtendsOneShot(t *testing.T) {
	g := NewRegistry(sim.NewKernel(), 1)
	g.OnOccurrence(CPAckDrop, 2).Times(3)
	var fires []int
	for i := 1; i <= 8; i++ {
		if g.Fires(CPAckDrop) {
			fires = append(fires, i)
		}
	}
	want := []int{2, 3, 4}
	if len(fires) != len(want) {
		t.Fatalf("fired at %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fires, want)
		}
	}
}

func TestAtTimeFiresOnceAfterDeadline(t *testing.T) {
	k := sim.NewKernel()
	g := NewRegistry(k, 1)
	g.AtTime(NVMCFirmwareStall, sim.Time(100))
	if g.Fires(NVMCFirmwareStall) {
		t.Fatal("fired before the scheduled instant")
	}
	k.Schedule(150*sim.Picosecond, func() {})
	k.Run()
	if !g.Fires(NVMCFirmwareStall) {
		t.Fatal("did not fire after the scheduled instant")
	}
	if g.Fires(NVMCFirmwareStall) {
		t.Fatal("one-shot fired twice")
	}
}

func TestProbIsSeedReproducible(t *testing.T) {
	run := func(seed uint64) []bool {
		g := NewRegistry(sim.NewKernel(), seed)
		g.Prob(RefdetSampleFlip, 0.3)
		out := make([]bool, 64)
		for i := range out {
			out[i] = g.Fires(RefdetSampleFlip)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at consult %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams (suspicious)")
	}
	// The rate should be in the right ballpark for p=0.3 over 64 draws.
	n := 0
	for _, v := range a {
		if v {
			n++
		}
	}
	if n == 0 || n == len(a) {
		t.Fatalf("probabilistic rule fired %d/64 times at p=0.3", n)
	}
}

func TestClearDisarms(t *testing.T) {
	g := NewRegistry(sim.NewKernel(), 1)
	g.Always(BusSnoopDrop)
	if !g.Fires(BusSnoopDrop) {
		t.Fatal("armed rule did not fire")
	}
	g.Clear(BusSnoopDrop)
	if g.Fires(BusSnoopDrop) {
		t.Fatal("cleared rule fired")
	}
}

func TestStringCarriesSeedAndRules(t *testing.T) {
	g := NewRegistry(sim.NewKernel(), 0xDEAD)
	g.Always(NANDProgramFail)
	g.Fires(NANDProgramFail)
	s := g.String()
	if !strings.Contains(s, "0xdead") {
		t.Fatalf("seed missing from %q", s)
	}
	if !strings.Contains(s, string(NANDProgramFail)) {
		t.Fatalf("rule missing from %q", s)
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	g := NewRegistry(sim.NewKernel(), 1)
	g.OnOccurrence(NANDReadBitFlip, 2).Param(11)
	g.Always(NANDReadBitFlip).Param(22)
	// Occurrence 1: one-shot not yet eligible, Always fires.
	if ok, p := g.FiresParam(NANDReadBitFlip); !ok || p != 22 {
		t.Fatalf("occurrence 1: ok=%v p=%d", ok, p)
	}
	// Occurrence 2: the one-shot is installed first and fires with its param.
	if ok, p := g.FiresParam(NANDReadBitFlip); !ok || p != 11 {
		t.Fatalf("occurrence 2: ok=%v p=%d", ok, p)
	}
}
