// Package pmem models the paper's baseline: the Linux emulated NVDIMM
// (/dev/pmem0, §VI) — a plain DRAM module reserved via memmap and exposed
// through fsdax. It has no NVM behind it and no cache layer: every access is
// a direct DRAM access, which is why the paper treats it as the upper bound
// for NVDIMM-C. Table I gives it the same 1.25 us programmed tRFC as the
// NVDIMM-C channel.
package pmem

import (
	"fmt"

	"nvdimmc/internal/bus"
	"nvdimmc/internal/ddr4"
	"nvdimmc/internal/dram"
	"nvdimmc/internal/hostcost"
	"nvdimmc/internal/imc"
	"nvdimmc/internal/sim"
)

// Config sizes the emulated device.
type Config struct {
	Grade ddr4.SpeedGrade
	TREFI sim.Duration
	TRFC  sim.Duration
	// Bytes is the module capacity (128 GB on the testbed; sparse storage
	// makes full size affordable).
	Bytes int64
	Cost  hostcost.Model
}

// DefaultConfig mirrors Table I.
func DefaultConfig() Config {
	return Config{
		Grade: ddr4.DDR4_1600,
		TREFI: ddr4.TREFI,
		TRFC:  1250 * sim.Nanosecond,
		Bytes: 128 << 30,
		Cost:  hostcost.Default(),
	}
}

// Device is the emulated pmem module with its own channel and iMC.
type Device struct {
	K       *sim.Kernel
	DRAM    *dram.Device
	Channel *bus.Channel
	IMC     *imc.Controller
	cfg     Config

	footprint int64
}

// New builds and boots the device (refresh running).
func New(cfg Config) (*Device, error) {
	k := sim.NewKernel()
	timing := ddr4.NewTiming(cfg.Grade)
	timing.TRFC = cfg.TRFC
	timing.TREFI = cfg.TREFI
	if err := timing.Validate(); err != nil {
		return nil, fmt.Errorf("pmem: %w", err)
	}
	const banks, burstsPerRow = 16, 128
	rows := cfg.Bytes / (int64(banks) * int64(burstsPerRow) * ddr4.BurstBytes)
	if rows < 1 {
		return nil, fmt.Errorf("pmem: capacity %d too small", cfg.Bytes)
	}
	dcfg := dram.Config{
		Timing:       timing,
		Banks:        banks,
		Rows:         int(rows),
		BurstsPerRow: burstsPerRow,
		StandardTRFC: ddr4.Density8Gb.StandardTRFC(),
	}
	dev := dram.New(k, dcfg)
	ch := bus.New(k, dev)
	imcCfg := imc.DefaultConfig()
	imcCfg.TREFI = cfg.TREFI
	imcCfg.TRFC = cfg.TRFC
	mc := imc.New(k, ch, imcCfg)
	mc.StartRefresh()
	return &Device{K: k, DRAM: dev, Channel: ch, IMC: mc, cfg: cfg}, nil
}

// Name identifies the target in reports.
func (d *Device) Name() string { return "pmem0-baseline" }

// Kernel returns the device's simulation kernel.
func (d *Device) Kernel() *sim.Kernel { return d.K }

// Capacity returns the device size in bytes.
func (d *Device) Capacity() int64 { return d.cfg.Bytes }

// Prepare records the workload footprint (drives page-walk cost).
func (d *Device) Prepare(footprint int64) { d.footprint = footprint }

// ThreadCPU is the pre-op host CPU cost on the issuing thread; the copy
// cost is interleaved with the transfer inside Do.
func (d *Device) ThreadCPU(n int, write bool) sim.Duration {
	return d.cfg.Cost.DispatchCPU(n, write, d.footprint)
}

// Do performs one I/O against the device: the memcpy through the iMC,
// modelled as interleaved CPU/bus chunks so refresh holds intersect the op
// the way they do a real copy loop.
func (d *Device) Do(off int64, n int, write bool, done func()) {
	if off < 0 || off+int64(n) > d.cfg.Bytes {
		panic(fmt.Sprintf("pmem: access [%d,%d) out of range", off, off+int64(n)))
	}
	chunks := hostcost.CopyChunks(n)
	cpuSlice := d.cfg.Cost.CopyCPU(n) / sim.Duration(chunks)
	per := n / chunks
	i := 0
	var step func()
	step = func() {
		if i >= chunks {
			done()
			return
		}
		i++
		last := i == chunks
		sz := per
		if last {
			sz = n - per*(chunks-1)
		}
		buf := make([]byte, sz)
		cont := step
		rs := 0
		if i == 1 {
			rs = 1 // the op's row-activation overhead, charged once
		}
		o := off + int64((i-1)*per)
		d.K.Schedule(cpuSlice, func() {
			if write {
				d.IMC.WriteRS(o, buf, rs, cont)
			} else {
				d.IMC.ReadRS(o, buf, rs, cont)
			}
		})
	}
	step()
}

// Load and Store give the functional byte path (used by integration tests).
func (d *Device) Load(off int64, buf []byte, done func()) {
	d.IMC.Read(off, buf, done)
}

// Store writes data at off.
func (d *Device) Store(off int64, data []byte, done func()) {
	d.IMC.Write(off, data, done)
}
