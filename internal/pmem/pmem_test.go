package pmem

import (
	"bytes"
	"testing"

	"nvdimmc/internal/sim"
)

func newDev(t *testing.T, bytes int64) *Device {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Bytes = bytes
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFullSizeSparse(t *testing.T) {
	// The Table I baseline is 128 GB; sparse storage must make it cheap.
	d := newDev(t, 128<<30)
	if d.Capacity() != 128<<30 {
		t.Fatalf("capacity = %d", d.Capacity())
	}
	if d.DRAM.TouchedPages() != 0 {
		t.Fatal("untouched device allocated pages")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	d := newDev(t, 1<<30)
	want := []byte("pmem0 emulated nvdimm")
	done := false
	d.Store(123456, want, func() {
		got := make([]byte, len(want))
		d.Load(123456, got, func() {
			if !bytes.Equal(got, want) {
				t.Error("round trip mismatch")
			}
			done = true
		})
	})
	d.K.RunFor(sim.Millisecond)
	if !done {
		t.Fatal("ops did not complete")
	}
}

func TestDoChunksCompleteOnce(t *testing.T) {
	d := newDev(t, 1<<30)
	calls := 0
	d.Prepare(1 << 30)
	d.Do(0, 65536, false, func() { calls++ })
	d.K.RunFor(10 * sim.Millisecond)
	if calls != 1 {
		t.Fatalf("done called %d times", calls)
	}
}

func TestDoOutOfRangePanics(t *testing.T) {
	d := newDev(t, 1<<20)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range op accepted")
		}
	}()
	d.Do(1<<20-100, 4096, false, func() {})
}

func TestRefreshRuns(t *testing.T) {
	d := newDev(t, 1<<30)
	d.K.RunFor(sim.Millisecond)
	if d.IMC.Refreshes() < 100 {
		t.Fatalf("refreshes = %d in 1 ms, want ~128", d.IMC.Refreshes())
	}
	if d.DRAM.ViolationCount() != 0 {
		t.Fatal("protocol violations on baseline")
	}
}

func TestThreadCPUUsesFootprint(t *testing.T) {
	d := newDev(t, 128<<30)
	d.Prepare(1 << 30)
	small := d.ThreadCPU(4096, false)
	d.Prepare(120 << 30)
	big := d.ThreadCPU(4096, false)
	if big <= small {
		t.Fatal("footprint not reflected in per-op cost")
	}
}
