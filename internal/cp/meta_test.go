package cp

import (
	"testing"
	"testing/quick"
)

func TestMetaRoundTrip(t *testing.T) {
	entries := []MetaEntry{
		{NANDPage: 100, Dirty: true, Valid: true},
		{NANDPage: 200, Dirty: false, Valid: true},
		{NANDPage: 0, Dirty: false, Valid: false},
	}
	buf := make([]byte, 4096)
	if err := EncodeMeta(buf, entries); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMeta(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range got {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, got[i], entries[i])
		}
	}
}

func TestMetaDetectsUninitialized(t *testing.T) {
	if _, err := DecodeMeta(make([]byte, 4096)); err == nil {
		t.Fatal("zeroed metadata accepted")
	}
}

func TestMetaDetectsCorruption(t *testing.T) {
	buf := make([]byte, 4096)
	if err := EncodeMeta(buf, []MetaEntry{{NANDPage: 9, Valid: true}}); err != nil {
		t.Fatal(err)
	}
	buf[metaHeaderSize] ^= 0xFF
	if _, err := DecodeMeta(buf); err == nil {
		t.Fatal("corrupted metadata accepted")
	}
}

func TestMetaBufferTooSmall(t *testing.T) {
	if err := EncodeMeta(make([]byte, 10), make([]MetaEntry, 4)); err == nil {
		t.Fatal("tiny buffer accepted")
	}
	if _, err := DecodeMeta(make([]byte, 4)); err == nil {
		t.Fatal("tiny decode accepted")
	}
}

func TestMaxMetaEntries(t *testing.T) {
	// The paper's 16 MB metadata area must cover the ~3.9 Mi slots of the
	// PoC's 15 GB cache (§IV-B, §V-C).
	if got := MaxMetaEntries(16 << 20); got < (15<<30)/4096 {
		t.Fatalf("16 MB metadata holds only %d entries, need %d", got, (15<<30)/4096)
	}
	if MaxMetaEntries(4) != 0 {
		t.Fatal("tiny area reports entries")
	}
}

func TestIncrementalUpdateMatchesFullEncode(t *testing.T) {
	entries := make([]MetaEntry, 32)
	full := make([]byte, MetaSizeFor(len(entries)))
	inc := make([]byte, MetaSizeFor(len(entries)))
	if err := EncodeMeta(full, entries); err != nil {
		t.Fatal(err)
	}
	copy(inc, full)
	// Mutate entry 7 both ways.
	entries[7] = MetaEntry{NANDPage: 1234, Dirty: true, Valid: true}
	if err := EncodeMeta(full, entries); err != nil {
		t.Fatal(err)
	}
	if err := EncodeMetaEntry(inc, 7, entries[7]); err != nil {
		t.Fatal(err)
	}
	if err := EncodeMetaHeader(inc, entries); err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if full[i] != inc[i] {
			t.Fatalf("byte %d differs between full and incremental encode", i)
		}
	}
	if _, err := DecodeMeta(inc); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeMetaEntryBounds(t *testing.T) {
	buf := make([]byte, MetaSizeFor(2))
	if err := EncodeMetaEntry(buf, 2, MetaEntry{}); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
}

func TestMetaRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) > 500 {
			raw = raw[:500]
		}
		entries := make([]MetaEntry, len(raw))
		for i, v := range raw {
			entries[i] = MetaEntry{
				NANDPage: v & pageMask,
				Dirty:    v&1 != 0,
				Valid:    v&2 != 0,
			}
		}
		buf := make([]byte, MetaSizeFor(len(entries)))
		if err := EncodeMeta(buf, entries); err != nil {
			return false
		}
		got, err := DecodeMeta(buf)
		if err != nil || len(got) != len(entries) {
			return false
		}
		for i := range got {
			if got[i] != entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
