package cp

import (
	"testing"
	"testing/quick"
)

func TestCommandRoundTrip(t *testing.T) {
	c := Command{Phase: true, Opcode: OpWriteback, DRAMSlot: 0xABCDE, NANDPage: 0xDEADBEEF}
	got := Decode(c.Encode(), 0)
	if got.Phase != c.Phase || got.Opcode != c.Opcode || got.DRAMSlot != c.DRAMSlot || got.NANDPage != c.NANDPage {
		t.Fatalf("round trip: got %+v want %+v", got, c)
	}
}

func TestCombinedRoundTrip(t *testing.T) {
	c := Command{
		Phase: true, Opcode: OpCombined,
		DRAMSlot: 1, NANDPage: 2, DRAMSlot2: 3, NANDPage2: 4,
	}
	got := Decode(c.Encode(), c.EncodeSecondary())
	if got.DRAMSlot2 != 3 || got.NANDPage2 != 4 {
		t.Fatalf("secondary pair lost: %+v", got)
	}
}

func TestCommandRoundTripProperty(t *testing.T) {
	f := func(phase bool, op uint8, slot, page, slot2, page2 uint32) bool {
		c := Command{
			Phase:     phase,
			Opcode:    Opcode(op & 0x7F),
			DRAMSlot:  slot & 0xFFFFFF,
			NANDPage:  page,
			DRAMSlot2: slot2 & 0xFFFFFF,
			NANDPage2: page2,
		}
		got := Decode(c.Encode(), c.EncodeSecondary())
		return got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlotFieldWidth(t *testing.T) {
	// 24-bit slot field: a 16 GB cache has 4 Mi slots, needing 22 bits.
	slots16GB := uint32(16 << 30 / 4096)
	c := Command{DRAMSlot: slots16GB - 1}
	if Decode(c.Encode(), 0).DRAMSlot != slots16GB-1 {
		t.Fatal("slot field cannot address a 16 GB cache")
	}
}

func TestAckRoundTrip(t *testing.T) {
	for _, s := range []Status{StatusIdle, StatusBusy, StatusDone, StatusError} {
		for _, p := range []bool{false, true} {
			a := Ack{Phase: p, Status: s}
			if got := DecodeAck(a.EncodeAck()); got != a {
				t.Fatalf("ack round trip: got %+v want %+v", got, a)
			}
		}
	}
}

func TestPhaseFlipDistinguishesCommands(t *testing.T) {
	a := Command{Phase: false, Opcode: OpCachefill, DRAMSlot: 1, NANDPage: 1}
	b := a
	b.Phase = true
	if a.Encode() == b.Encode() {
		t.Fatal("phase flip not visible in encoding")
	}
}

func TestStrings(t *testing.T) {
	if OpCachefill.String() != "cachefill" || OpWriteback.String() != "writeback" {
		t.Fatal("opcode strings")
	}
	if StatusDone.String() != "done" {
		t.Fatal("status strings")
	}
	c := Command{Phase: true, Opcode: OpCachefill, DRAMSlot: 5, NANDPage: 9}
	if c.String() != "cp{phase=true op=cachefill slot=5 page=9}" {
		t.Fatalf("command string = %q", c.String())
	}
}

func TestAreaLayoutDisjoint(t *testing.T) {
	// Command and ack cachelines must not share a cacheline: the driver
	// flushes/invalidates them independently.
	if CommandOffset/64 == AckOffset/64 {
		t.Fatal("command and ack share a cacheline")
	}
	if AckOffset+8 > AreaSize {
		t.Fatal("ack outside CP area")
	}
}
