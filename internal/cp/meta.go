package cp

import (
	"encoding/binary"
	"fmt"
)

// MetaEntry describes one DRAM cache slot in the metadata area's
// slot-indexed mapping table (Fig. 5, §IV-C). On power failure the firmware
// reads this table directly — ignoring the tRFC serialization rule — to
// flush valid dirty DRAM cache pages into Z-NAND (§V-C), so the format is
// part of the driver/firmware contract.
//
// Entries are packed to 4 bytes so the paper's 16 MB metadata area covers
// the ~3.9 Mi slots of a 15 GB cache: bit 31 = valid, bit 30 = dirty,
// bits 29:0 = NAND logical page (30 bits of 4 KB pages = 4 TB of media).
type MetaEntry struct {
	NANDPage uint32 // 30 bits used
	Dirty    bool
	Valid    bool
}

const (
	metaMagic      = uint32(0x4E564443) // "NVDC"
	metaHeaderSize = 16
	metaEntrySize  = 4

	validBit = uint32(1) << 31
	dirtyBit = uint32(1) << 30
	pageMask = dirtyBit - 1
)

// MaxMetaEntries returns how many slot entries fit in a metadata area of n
// bytes.
func MaxMetaEntries(n int64) int {
	if n < metaHeaderSize {
		return 0
	}
	return int((n - metaHeaderSize) / metaEntrySize)
}

// MetaSizeFor returns the metadata area size needed for n slots.
func MetaSizeFor(n int) int64 {
	return metaHeaderSize + int64(n)*metaEntrySize
}

// EncodeMeta serializes the slot-indexed table into buf.
func EncodeMeta(buf []byte, entries []MetaEntry) error {
	need := MetaSizeFor(len(entries))
	if int64(len(buf)) < need {
		return fmt.Errorf("cp: metadata buffer %d < %d", len(buf), need)
	}
	binary.LittleEndian.PutUint32(buf[0:], metaMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(entries)))
	binary.LittleEndian.PutUint64(buf[8:], checksum(entries))
	off := metaHeaderSize
	for _, e := range entries {
		binary.LittleEndian.PutUint32(buf[off:], e.pack())
		off += metaEntrySize
	}
	return nil
}

func (e MetaEntry) pack() uint32 {
	w := e.NANDPage & pageMask
	if e.Dirty {
		w |= dirtyBit
	}
	if e.Valid {
		w |= validBit
	}
	return w
}

func unpack(w uint32) MetaEntry {
	return MetaEntry{
		NANDPage: w & pageMask,
		Dirty:    w&dirtyBit != 0,
		Valid:    w&validBit != 0,
	}
}

// EncodeMetaEntry writes just slot i's entry bytes (an in-place update the
// driver performs on each mapping change; the header must be rewritten too
// for the checksum — see EncodeMetaHeader).
func EncodeMetaEntry(buf []byte, i int, e MetaEntry) error {
	off := metaHeaderSize + int64(i)*metaEntrySize
	if off+metaEntrySize > int64(len(buf)) {
		return fmt.Errorf("cp: entry %d outside metadata area", i)
	}
	binary.LittleEndian.PutUint32(buf[off:], e.pack())
	return nil
}

// EncodeMetaHeader rewrites the header for the given (full, authoritative)
// entry table.
func EncodeMetaHeader(buf []byte, entries []MetaEntry) error {
	if len(buf) < metaHeaderSize {
		return fmt.Errorf("cp: metadata buffer too small for header")
	}
	binary.LittleEndian.PutUint32(buf[0:], metaMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(entries)))
	binary.LittleEndian.PutUint64(buf[8:], checksum(entries))
	return nil
}

// DecodeMeta parses a metadata area. It verifies the magic and checksum so a
// torn or never-written table is detected rather than replayed.
func DecodeMeta(buf []byte) ([]MetaEntry, error) {
	if len(buf) < metaHeaderSize {
		return nil, fmt.Errorf("cp: metadata area %d bytes too small", len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:]) != metaMagic {
		return nil, fmt.Errorf("cp: metadata magic missing")
	}
	n := int(binary.LittleEndian.Uint32(buf[4:]))
	want := binary.LittleEndian.Uint64(buf[8:])
	if MetaSizeFor(n) > int64(len(buf)) {
		return nil, fmt.Errorf("cp: metadata claims %d entries beyond area", n)
	}
	entries := make([]MetaEntry, n)
	off := metaHeaderSize
	for i := range entries {
		entries[i] = unpack(binary.LittleEndian.Uint32(buf[off:]))
		off += metaEntrySize
	}
	if checksum(entries) != want {
		return nil, fmt.Errorf("cp: metadata checksum mismatch (torn write?)")
	}
	return entries, nil
}

// checksum is an order-sensitive FNV-style fold over the packed entries.
func checksum(entries []MetaEntry) uint64 {
	h := uint64(1469598103934665603)
	for _, e := range entries {
		h ^= uint64(e.pack())
		h *= 1099511628211
	}
	return h
}
