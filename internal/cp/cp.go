// Package cp defines the communication protocol between the nvdc driver and
// the NVMC firmware (§IV-C): a 64-bit command word written into the first
// 4 KB physical page of the reserved region (the CP area), and an
// acknowledgment word the FPGA writes back when the command completes.
//
// A command has four bit-fields: Phase (distinguishes a new command from a
// stale one the FPGA has already seen), Opcode (cachefill or writeback),
// DRAM_Slot_ID and NAND_Page_ID. Multi-command operation is not supported by
// the PoC (queue depth 1); the CommandDepth knob exists for the future-work
// ablation (§VII-C item 2).
package cp

import "fmt"

// Opcode selects the operation the NVMC performs.
type Opcode uint8

// Opcodes (§IV-C).
const (
	OpNone Opcode = iota
	// OpCachefill loads a NAND page into a DRAM cache slot.
	OpCachefill
	// OpWriteback stores a DRAM cache slot into a NAND page.
	OpWriteback
	// OpFlushAll orders a power-fail flush of all dirty slots (the firmware
	// normally triggers this itself on the power-loss interrupt; the opcode
	// lets software request it for orderly shutdown).
	OpFlushAll
	// OpCombined merges an independent writeback and cachefill into a single
	// command so the device processes them in parallel (future work (4)).
	OpCombined
)

func (o Opcode) String() string {
	switch o {
	case OpNone:
		return "none"
	case OpCachefill:
		return "cachefill"
	case OpWriteback:
		return "writeback"
	case OpFlushAll:
		return "flushall"
	case OpCombined:
		return "wb+cf"
	default:
		return fmt.Sprintf("Opcode(%d)", uint8(o))
	}
}

// Command is the decoded 64-bit CP command word.
//
// Bit layout (LSB first):
//
//	[0]      Phase
//	[7:1]    Opcode
//	[31:8]   DRAMSlot  (24 bits: enough for 16 GB of 4 KB slots)
//	[63:32]  NANDPage  (32 bits: enough for 16 TB of 4 KB pages)
//
// For OpCombined, DRAMSlot/NANDPage describe the cachefill and the second
// pair describes the writeback; the second pair rides in the adjacent
// cacheline of the CP area and is carried alongside here for convenience.
type Command struct {
	Phase    bool
	Opcode   Opcode
	DRAMSlot uint32 // 24 bits used
	NANDPage uint32

	// Secondary pair for OpCombined.
	DRAMSlot2 uint32
	NANDPage2 uint32
}

// Encode packs the primary fields into the 64-bit command word.
func (c Command) Encode() uint64 {
	var w uint64
	if c.Phase {
		w |= 1
	}
	w |= uint64(c.Opcode&0x7F) << 1
	w |= uint64(c.DRAMSlot&0xFFFFFF) << 8
	w |= uint64(c.NANDPage) << 32
	return w
}

// EncodeSecondary packs the OpCombined secondary pair into its word.
func (c Command) EncodeSecondary() uint64 {
	return uint64(c.DRAMSlot2&0xFFFFFF)<<8 | uint64(c.NANDPage2)<<32
}

// Decode unpacks a command word (and an optional secondary word).
func Decode(w, secondary uint64) Command {
	return Command{
		Phase:     w&1 != 0,
		Opcode:    Opcode((w >> 1) & 0x7F),
		DRAMSlot:  uint32((w >> 8) & 0xFFFFFF),
		NANDPage:  uint32(w >> 32),
		DRAMSlot2: uint32((secondary >> 8) & 0xFFFFFF),
		NANDPage2: uint32(secondary >> 32),
	}
}

func (c Command) String() string {
	return fmt.Sprintf("cp{phase=%t op=%v slot=%d page=%d}", c.Phase, c.Opcode, c.DRAMSlot, c.NANDPage)
}

// Status is the FPGA's acknowledgment word.
type Status uint8

// Acknowledgment states.
const (
	StatusIdle Status = iota
	StatusBusy
	StatusDone
	StatusError
)

func (s Status) String() string {
	switch s {
	case StatusIdle:
		return "idle"
	case StatusBusy:
		return "busy"
	case StatusDone:
		return "done"
	case StatusError:
		return "error"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Ack is the acknowledgment record the FPGA writes into the CP area's ack
// region after finishing a command.
type Ack struct {
	Phase  bool // echoes the command phase so the driver can match
	Status Status
}

// ackSumMask is XORed into the payload byte to form the checksum, so that
// neither an all-zero nor an all-ones word validates.
const ackSumMask = 0xA5

// ackSum computes the 8-bit checksum over an ack word's payload byte.
func ackSum(payload uint8) uint8 { return payload ^ ackSumMask }

// EncodeAck packs an Ack into its word: Phase in bit 0, Status in bits
// [7:1], and an 8-bit checksum over that payload byte in bits [15:8]. The
// checksum lets the driver reject a corrupted ack cacheline instead of
// acting on a garbled status (the bus carries no ECC on this path).
func (a Ack) EncodeAck() uint64 {
	var w uint64
	if a.Phase {
		w |= 1
	}
	w |= uint64(a.Status) << 1
	w |= uint64(ackSum(uint8(w))) << 8
	return w
}

// DecodeAck unpacks an acknowledgment word.
func DecodeAck(w uint64) Ack {
	return Ack{Phase: w&1 != 0, Status: Status((w >> 1) & 0x7F)}
}

// AckChecksumOK reports whether the ack word's stored checksum matches its
// payload. The idle (all-zero) word does not validate — the driver must keep
// polling — and any single-bit corruption of the low 16 bits is detected.
func AckChecksumOK(w uint64) bool {
	return uint8(w>>8) == ackSum(uint8(w))
}

// Area layout constants within the reserved region's first 4 KB page
// (Fig. 5). Commands and acks each occupy one 64-byte cacheline so that a
// single clflush covers them.
const (
	// AreaSize is the CP area size: one physical page.
	AreaSize = 4096
	// CommandOffset is the byte offset of the command word.
	CommandOffset = 0
	// CommandOffset2 is the secondary word for OpCombined.
	CommandOffset2 = 8
	// AckOffset is the byte offset of the acknowledgment cacheline.
	AckOffset = 64
)
